package bypassd

import (
	"os"
	"testing"
)

// direct4KRead is one iteration of BenchmarkDirect4KRead: boot a
// system, create a file, and issue one warm 4 KiB BypassD read.
func direct4KRead(t testing.TB) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	Run(sys, "alloc-check", func(p *Proc) {
		pr := sys.NewProcess(RootCred)
		fd, err := pr.Create(p, "/bench", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, 1<<20); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		io, err := sys.NewFileIO(p, sys.NewProcess(RootCred), EngineBypassD)
		if err != nil {
			t.Error(err)
			return
		}
		f, _ := io.Open(p, "/bench", false)
		buf := make([]byte, 4096)
		_, _ = io.Pread(p, f, buf, 0) // warm
		if _, err := io.Pread(p, f, buf, 4096); err != nil {
			t.Error(err)
		}
	})
	sys.Sim.Shutdown()
}

// TestDirect4KReadAllocBudget is the `make bench-check` regression
// gate: the end-to-end 4 KiB read path must not creep back above its
// allocation budget (BENCH_PR4.json records the measured trajectory).
// Gated behind BENCH_CHECK=1 so ordinary `go test ./...` runs — which
// share the process with unrelated parallel tests — don't flake on
// cross-test allocation noise.
func TestDirect4KReadAllocBudget(t *testing.T) {
	if os.Getenv("BENCH_CHECK") == "" {
		t.Skip("set BENCH_CHECK=1 to enforce the allocation budget (make bench-check)")
	}
	const budget = 412
	direct4KRead(t) // warm sync.Pools and lazy global state
	allocs := testing.AllocsPerRun(5, func() { direct4KRead(t) })
	t.Logf("Direct4KRead: %.0f allocs/op (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("Direct4KRead allocates %.0f objects/op, budget is %d — the hot path regressed", allocs, budget)
	}
}
