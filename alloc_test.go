package bypassd

import (
	"os"
	"testing"
)

// bootDirect4K boots a system, creates and preallocates /bench, opens
// it through the BypassD engine, and issues one warm read so every
// lazy structure (file table, IOTLB, queue pair, DMA buffer) exists.
// The returned handles drive steady-state reads: the system is live
// and the caller owns sys.Close().
func bootDirect4K(t testing.TB) (sys *System, io FileIO, fd int, buf []byte) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 4096)
	Run(sys, "boot", func(p *Proc) {
		pr := sys.NewProcess(RootCred)
		f, err := pr.Create(p, "/bench", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, f, 1<<20); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, f)
		_ = pr.Close(p, f)
		io, err = sys.NewFileIO(p, sys.NewProcess(RootCred), EngineBypassD)
		if err != nil {
			t.Error(err)
			return
		}
		fd, _ = io.Open(p, "/bench", false)
		_, _ = io.Pread(p, fd, buf, 0) // warm
		if _, err := io.Pread(p, fd, buf, 4096); err != nil {
			t.Error(err)
		}
	})
	return sys, io, fd, buf
}

// direct4KRead is one boot-inclusive iteration: boot a system, create
// a file, issue one warm 4 KiB BypassD read, tear down.
func direct4KRead(t testing.TB) {
	sys, _, _, _ := bootDirect4K(t)
	sys.Close()
}

// TestDirect4KReadAllocBudget is the `make bench-check` regression
// gate: a steady-state 4 KiB read (system booted once, pools warm)
// must stay within single digits of heap allocations per op — the
// zero-alloc dispatch work's contract. Gated behind BENCH_CHECK=1 so
// ordinary `go test ./...` runs — which share the process with
// unrelated parallel tests — don't flake on cross-test allocation
// noise.
func TestDirect4KReadAllocBudget(t *testing.T) {
	if os.Getenv("BENCH_CHECK") == "" {
		t.Skip("set BENCH_CHECK=1 to enforce the allocation budget (make bench-check)")
	}
	const budget = 10
	sys, io, fd, buf := bootDirect4K(t)
	defer sys.Close()
	read := func(p *Proc) {
		if _, err := io.Pread(p, fd, buf, 4096); err != nil {
			t.Error(err)
		}
	}
	Run(sys, "alloc-warm", read) // warm sync.Pools and the proc free list
	allocs := testing.AllocsPerRun(20, func() { Run(sys, "alloc-check", read) })
	t.Logf("Direct4KRead steady state: %.0f allocs/op (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("steady-state Direct4KRead allocates %.0f objects/op, budget is %d — the hot path regressed", allocs, budget)
	}
}

// TestBootDirect4KReadAllocBudget bounds the boot-inclusive path —
// Mkfs, Mount, page tables, queues, one read, teardown — so boot-cost
// regressions stay visible even though the steady-state gate above
// no longer sees them. (The seed measured ~2900; pooling through
// PR 6 brought it under 200.)
func TestBootDirect4KReadAllocBudget(t *testing.T) {
	if os.Getenv("BENCH_CHECK") == "" {
		t.Skip("set BENCH_CHECK=1 to enforce the allocation budget (make bench-check)")
	}
	const budget = 250
	direct4KRead(t) // warm sync.Pools and lazy global state
	allocs := testing.AllocsPerRun(5, func() { direct4KRead(t) })
	t.Logf("BootDirect4KRead: %.0f allocs/op (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("BootDirect4KRead allocates %.0f objects/op, budget is %d — the boot path regressed", allocs, budget)
	}
}
