// Quickstart: boot a simulated machine, create a file through the
// kernel, then read and write it directly from "userspace" through
// the BypassD interface — and see where the time goes compared with
// the synchronous kernel path.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := bypassd.New(1 << 30) // 1 GiB Optane-class device
	if err != nil {
		log.Fatal(err)
	}

	bypassd.Run(sys, "quickstart", func(p *bypassd.Proc) {
		// Metadata operations go through the kernel, as always.
		pr := sys.NewProcess(bypassd.RootCred)
		fd, err := pr.Create(p, "/hello.dat", 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if err := pr.Fallocate(p, fd, 1<<20); err != nil {
			log.Fatal(err)
		}
		if err := pr.Fsync(p, fd); err != nil {
			log.Fatal(err)
		}
		if err := pr.Close(p, fd); err != nil {
			log.Fatal(err)
		}

		// Data operations: compare the kernel path with BypassD.
		buf := make([]byte, 4096)
		for _, engine := range []bypassd.Engine{bypassd.EngineSync, bypassd.EngineBypassD} {
			io, err := sys.NewFileIO(p, sys.NewProcess(bypassd.RootCred), engine)
			if err != nil {
				log.Fatal(err)
			}
			f, err := io.Open(p, "/hello.dat", true)
			if err != nil {
				log.Fatal(err)
			}
			copy(buf, []byte("written via "+engine))
			if _, err := io.Pwrite(p, f, buf, 0); err != nil {
				log.Fatal(err)
			}

			start := p.Now()
			const ops = 100
			for i := 0; i < ops; i++ {
				if _, err := io.Pread(p, f, buf, int64(i%256)*4096); err != nil {
					log.Fatal(err)
				}
			}
			lat := (p.Now() - start) / ops
			fmt.Printf("%-8s 4KiB random read: %v per op\n", engine, lat)
			if err := io.Close(p, f); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("\nBypassD reads skip the kernel entirely: the IOMMU translates the")
		fmt.Println("file-offset VBA to device blocks and checks permissions in hardware.")
	})
}
