// VMs (paper §5.2): the host carves SR-IOV-style virtual functions
// out of the SSD and boots two guest machines over them. Each guest
// runs its own kernel, ext4, and IOMMU context, and its processes use
// the BypassD interface exactly as on bare metal — the IOMMU performs
// a nested translation and the device enforces the VF's block window.
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/userlib"
)

func main() {
	s := sim.New()
	host, err := kernel.NewMachine(s, kernel.DefaultConfig(), device.OptaneP5800X(1<<30), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Carve two 192 MiB virtual functions and boot guests on them.
	guests := make([]*kernel.Machine, 2)
	for i := range guests {
		vf, err := device.Carve(s, host.Dev, fmt.Sprintf("vf%d", i+1), uint8(10+i),
			int64(512+192*i)<<20/512, (192<<20)/512)
		if err != nil {
			log.Fatal(err)
		}
		guests[i], err = kernel.NewGuestMachine(s, kernel.DefaultConfig(), host, vf, 300*sim.Nanosecond)
		if err != nil {
			log.Fatal(err)
		}
	}

	for i, g := range guests {
		i, g := i, g
		s.Spawn(fmt.Sprintf("guest%d", i+1), func(p *sim.Proc) {
			pr := g.NewProcess(ext4.Root)
			fd, err := pr.Create(p, "/vm.dat", 0o644)
			if err != nil {
				log.Fatal(err)
			}
			if err := pr.Fallocate(p, fd, 8<<20); err != nil {
				log.Fatal(err)
			}
			_ = pr.Fsync(p, fd)
			_ = pr.Close(p, fd)

			lib := userlib.New(g.NewProcess(ext4.Root), userlib.DefaultConfig())
			th, err := lib.NewThread(p)
			if err != nil {
				log.Fatal(err)
			}
			lfd, err := lib.Open(p, "/vm.dat", true)
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, 4096)
			for j := range buf {
				buf[j] = byte(i + 1)
			}
			if _, err := th.Pwrite(p, lfd, buf, 0); err != nil {
				log.Fatal(err)
			}
			start := p.Now()
			const ops = 200
			for n := 0; n < ops; n++ {
				if _, err := th.Pread(p, lfd, buf, int64(n%2048)*4096); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("guest %d: 4KiB direct read %v per op (bare metal: 5.16µs + nested walk)\n",
				i+1, (p.Now()-start)/ops)
		})
	}
	s.Run()

	fmt.Println("\nboth guests ran the userspace fast path inside their VF windows;")
	fmt.Println("block-level isolation means no file sharing across VMs (paper §5.2).")
}
