// Sharing: the scenarios SPDK cannot express and BypassD handles
// (paper §4.5, §5.3) —
//
//  1. two processes read the same device, each confined to its own
//     files by hardware permission checks;
//  2. a process with read-only rights is denied writes by the IOMMU;
//  3. a kernel-interface open revokes another process's direct
//     access, which transparently falls back to the kernel path.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/nvme"
)

func main() {
	sys, err := bypassd.New(1 << 30)
	if err != nil {
		log.Fatal(err)
	}

	alice := bypassd.Cred{UID: 100, GID: 100}
	bob := bypassd.Cred{UID: 200, GID: 200}

	bypassd.Run(sys, "sharing", func(p *bypassd.Proc) {
		// Root prepares a world area and per-user files.
		root := sys.NewProcess(bypassd.RootCred)
		must(root.Mkdir(p, "/home", 0o777))
		for user, cred := range map[string]bypassd.Cred{"alice": alice, "bob": bob} {
			fd, err := root.Create(p, "/home/"+user, 0o600)
			must(err)
			// chown by re-creating with the user's cred would be the
			// realistic path; here root writes and hands over via
			// permissions on a fresh file owned by the user:
			must(root.Close(p, fd))
			must(root.Unlink(p, "/home/"+user))
			pr := sys.NewProcess(cred)
			fd, err = pr.Create(p, "/home/"+user, 0o640)
			must(err)
			must(pr.Fallocate(p, fd, 1<<20))
			must(pr.Fsync(p, fd))
			must(pr.Close(p, fd))
		}

		// 1. Both users access the device directly, concurrently.
		prA := sys.NewProcess(alice)
		prB := sys.NewProcess(bob)
		ioA, err := sys.NewFileIO(p, prA, bypassd.EngineBypassD)
		must(err)
		ioB, err := sys.NewFileIO(p, prB, bypassd.EngineBypassD)
		must(err)
		fa, err := ioA.Open(p, "/home/alice", true)
		must(err)
		fb, err := ioB.Open(p, "/home/bob", true)
		must(err)
		buf := make([]byte, 4096)
		_, err = ioA.Pwrite(p, fa, buf, 0)
		must(err)
		_, err = ioB.Pwrite(p, fb, buf, 0)
		must(err)
		fmt.Println("1. alice and bob both write their own files directly — device shared ✓")

		// 2. Bob cannot open alice's 0640 file at all...
		if _, err := ioB.Open(p, "/home/alice", false); err == nil {
			log.Fatal("bob opened alice's private file!")
		}
		fmt.Println("2. bob denied at open() on alice's file ✓")

		// ...and raw queue access buys him nothing: VBAs resolve
		// through *his* page tables, so a "stolen" VBA value from
		// alice's process reaches only his own mappings, and an
		// unmapped VBA faults in the IOMMU (paper §5.3).
		q, err := prB.CreateUserQueue(p, 8)
		must(err)
		submit := func(vba uint64) string {
			must(q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true,
				VBA: vba, Sectors: 8, Buf: buf}))
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status.String()
				}
				q.CQReady.Wait(p)
			}
		}
		fmt.Printf("   bob reuses alice's VBA value -> %s (his own file, not hers) ✓\n",
			submit(0x5000_0000_0000))
		fmt.Printf("   bob reads an unmapped VBA    -> %s ✓\n",
			submit(0x5000_0000_0000+(1<<30)))

		// 3. Revocation: a kernel-interface open of alice's file (by
		// alice herself, e.g. a backup process) revokes the direct
		// mapping; the first process falls back transparently.
		prA2 := sys.NewProcess(alice)
		kfd, err := prA2.Open(p, "/home/alice", false)
		must(err)
		info, err := prA.FDInfo(fa)
		must(err)
		if !sys.M.Revoked(info.Ino) {
			log.Fatal("kernel open did not revoke direct access")
		}
		if _, err := ioA.Pread(p, fa, buf, 0); err != nil {
			log.Fatalf("fallback read failed: %v", err)
		}
		lib := sys.Lib(prA)
		fmt.Printf("3. direct access revoked; reads continue via the kernel (refmaps=%d, fallbacks=%d) ✓\n",
			lib.Refmaps, lib.FallbackOps)
		must(prA2.Close(p, kfd))
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
