// YCSB on the WiredTiger-like storage engine (the paper's Fig. 13
// workload): a B-tree with 512-byte pages over one file, a
// byte-budgeted page cache, and an I/O path selectable between the
// synchronous kernel interface, XRP, and BypassD.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/wtiger"
	"repro/internal/ycsb"
)

const (
	keys  = 100_000
	ops   = 2_000
	cache = 400 << 10 // ~13% of the store, the paper's cache:data ratio
)

func main() {
	fmt.Printf("WiredTiger-like engine, %d keys, YCSB-B (95%% read / 5%% update)\n\n", keys)
	for _, system := range []string{"sync", "xrp", "bypassd"} {
		kops, hitRatio, err := run(system)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7.1f Kops/s (cache hit ratio %.2f)\n", system, kops, hitRatio)
	}
	fmt.Println("\nBypassD accelerates every cache miss; XRP only chains of misses.")
}

func run(system string) (kops, hitRatio float64, err error) {
	sys, err := bypassd.New(1 << 30)
	if err != nil {
		return 0, 0, err
	}
	defer sys.Sim.Shutdown()

	var st *wtiger.Store
	var runErr error
	bypassd.Run(sys, "ycsb", func(p *bypassd.Proc) {
		st, runErr = wtiger.Build(p, sys, sys.M.CPU, wtiger.Config{
			Keys: keys, CacheBytes: cache, Path: "/wt.db",
		})
		if runErr != nil {
			return
		}
		pr := sys.NewProcess(bypassd.RootCred)
		var conn *wtiger.Conn
		switch system {
		case "xrp":
			conn, runErr = st.NewXRPConn(p, pr)
		default:
			io, err := sys.NewFileIO(p, pr, core.Engine(system))
			if err != nil {
				runErr = err
				return
			}
			conn, runErr = st.NewConn(p, io)
		}
		if runErr != nil {
			return
		}
		gen := ycsb.NewGenerator(ycsb.B, keys, 42)
		// Warm the cache, then measure.
		for i := 0; i < ops; i++ {
			if _, _, err := conn.Lookup(p, gen.Next().Key); err != nil {
				runErr = err
				return
			}
		}
		start := p.Now()
		for i := 0; i < ops; i++ {
			op := gen.Next()
			var err error
			switch op.Type {
			case ycsb.Update:
				err = conn.Update(p, op.Key, wtiger.ValueOf(op.Key+1))
			default:
				_, _, err = conn.Lookup(p, op.Key)
			}
			if err != nil {
				runErr = err
				return
			}
		}
		elapsed := p.Now() - start
		kops = float64(ops) / elapsed.Seconds() / 1000
		hitRatio = st.CacheHitRatio()
	})
	return kops, hitRatio, runErr
}
