// BPF-KV lookups across all four I/O paths (the paper's Fig. 15
// setup): a 6-level B+-tree index of 512-byte nodes over an object
// log, no caching, so every lookup costs exactly 7 device reads. The
// per-lookup latency differences are pure software-stack cost.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bpfkv"
	"repro/internal/core"
)

const (
	objects = 100_000
	lookups = 500
)

func main() {
	fmt.Printf("BPF-KV: %d objects, 6 index levels -> 7 I/Os per lookup\n\n", objects)
	fmt.Printf("%-8s %12s %14s\n", "system", "avg/lookup", "per-I/O cost")
	for _, mode := range []string{"sync", "xrp", "bypassd", "spdk"} {
		avg, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %14v\n", mode, avg, avg/7)
	}
	fmt.Println("\nsync pays 7 full syscalls; xrp enters the kernel once and chains in")
	fmt.Println("the driver; bypassd never enters the kernel (spdk + VBA translation).")
}

func run(mode string) (bypassd.Time, error) {
	sys, err := bypassd.New(1 << 30)
	if err != nil {
		return 0, err
	}
	defer sys.Sim.Shutdown()
	st, err := bpfkv.Plan(objects, 6)
	if err != nil {
		return 0, err
	}

	var avg bypassd.Time
	var runErr error
	bypassd.Run(sys, "kvstore", func(p *bypassd.Proc) {
		pr := sys.NewProcess(bypassd.RootCred)
		var conn *bpfkv.Conn
		switch mode {
		case "spdk":
			d, err := sys.SPDK()
			if err != nil {
				runErr = err
				return
			}
			q, err := d.NewQueue(p)
			if err != nil {
				runErr = err
				return
			}
			if err := st.LoadSPDK(p, d, q, "/kv.db"); err != nil {
				runErr = err
				return
			}
			io, err := sys.NewFileIO(p, pr, core.EngineSPDK)
			if err != nil {
				runErr = err
				return
			}
			conn, runErr = st.NewConn(p, io)
		case "xrp":
			if runErr = st.LoadFS(p, sys, "/kv.db"); runErr != nil {
				return
			}
			conn, runErr = st.NewXRPConn(p, pr)
		default:
			if runErr = st.LoadFS(p, sys, "/kv.db"); runErr != nil {
				return
			}
			io, err := sys.NewFileIO(p, pr, core.Engine(mode))
			if err != nil {
				runErr = err
				return
			}
			conn, runErr = st.NewConn(p, io)
		}
		if runErr != nil {
			return
		}
		start := p.Now()
		for i := 0; i < lookups; i++ {
			key := uint64(i*2654435761) % objects
			v, ios, err := conn.Get(p, key)
			if err != nil {
				runErr = err
				return
			}
			if v != bpfkv.ValueOf(key) || ios != 7 {
				runErr = fmt.Errorf("lookup %d: wrong value or %d I/Os", key, ios)
				return
			}
		}
		avg = (p.Now() - start) / lookups
	})
	return avg, runErr
}
