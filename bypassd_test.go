package bypassd

import (
	"bytes"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade the way the README's
// quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello, direct userspace I/O")
	var roundTrip Time
	Run(sys, "quickstart", func(p *Proc) {
		pr := sys.NewProcess(RootCred)
		fd, err := pr.Create(p, "/data", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, 4096); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)

		io, err := sys.NewFileIO(p, sys.NewProcess(RootCred), EngineBypassD)
		if err != nil {
			t.Error(err)
			return
		}
		f, err := io.Open(p, "/data", true)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		copy(buf, payload)
		if _, err := io.Pwrite(p, f, buf, 0); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 4096)
		start := p.Now()
		if _, err := io.Pread(p, f, got, 0); err != nil {
			t.Error(err)
			return
		}
		roundTrip = p.Now() - start
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Error("payload mismatch")
		}
	})
	if roundTrip < 4*Microsecond || roundTrip > 6*Microsecond {
		t.Fatalf("4K direct read = %v, want ~5µs", roundTrip)
	}
	sys.Sim.Shutdown()
}

func TestSnapshotAPI(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	var img *Store
	Run(sys, "build", func(p *Proc) {
		pr := sys.NewProcess(RootCred)
		fd, _ := pr.Create(p, "/kept", 0o644)
		_, _ = pr.Pwrite(p, fd, []byte("kept"), 0)
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		snap, err := sys.Snapshot(p)
		if err != nil {
			t.Error(err)
			return
		}
		img = snap
	})
	sys.Sim.Shutdown()
	if img == nil {
		t.Fatal("no snapshot")
	}

	sys2, err := NewFromImage(1<<30, img)
	if err != nil {
		t.Fatal(err)
	}
	Run(sys2, "check", func(p *Proc) {
		pr := sys2.NewProcess(RootCred)
		fd, err := pr.Open(p, "/kept", false)
		if err != nil {
			t.Errorf("file lost across snapshot: %v", err)
			return
		}
		buf := make([]byte, 4)
		_, _ = pr.Pread(p, fd, buf, 0)
		if string(buf) != "kept" {
			t.Errorf("data = %q", buf)
		}
	})
	sys2.Sim.Shutdown()
}
