// Package bypassd is a full-system reproduction of "BypassD: Enabling
// fast userspace access to shared SSDs" (Yadalam et al., ASPLOS '24).
//
// It implements the paper's I/O architecture end to end on a
// deterministic simulated machine: an Optane-class NVMe SSD, an IOMMU
// extended to translate Virtual Block Addresses through File Table
// Entries, an ext4-like kernel file system with fmap() and
// revocation, BypassD's UserLib, and the baselines the paper compares
// against (synchronous kernel I/O, libaio, io_uring SQPOLL, SPDK,
// XRP). All latencies are virtual nanoseconds, calibrated to the
// paper's measurements, so experiments are exact and reproducible.
//
// # Quick start
//
//	sys, err := bypassd.New(1 << 30) // 1 GiB device
//	if err != nil { ... }
//	bypassd.Run(sys, "app", func(p *bypassd.Proc) {
//		pr := sys.NewProcess(bypassd.RootCred)
//		io, _ := sys.NewFileIO(p, pr, bypassd.EngineBypassD)
//		fd, _ := io.Open(p, "/data", true)
//		io.Pwrite(p, fd, payload, 0)   // direct from "userspace"
//		io.Pread(p, fd, buf, 0)        // ~5µs on the virtual clock
//	})
//
// The benchmark harness behind every table and figure of the paper's
// evaluation lives in internal/experiments and is driven by
// cmd/bypassd-bench and the Benchmark* functions in this package.
package bypassd

import (
	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Re-exported core types. The simulation kernel's Proc is the handle
// every I/O call threads through: it is the simulated thread.
type (
	// System is a booted simulated machine.
	System = core.System
	// Engine selects one of the compared I/O systems.
	Engine = core.Engine
	// FileIO is the uniform per-thread file interface.
	FileIO = core.FileIO
	// Proc is a simulated thread.
	Proc = sim.Proc
	// Time is virtual nanoseconds.
	Time = sim.Time
	// Cred is a user identity for permission checks.
	Cred = ext4.Cred
	// Store is a raw device image (for snapshots).
	Store = storage.Store
)

// The evaluated engines.
const (
	EngineSync    = core.EngineSync
	EngineLibaio  = core.EngineLibaio
	EngineUring   = core.EngineUring
	EngineSPDK    = core.EngineSPDK
	EngineBypassD = core.EngineBypassD
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// RootCred is the superuser credential.
var RootCred = ext4.Root

// AllEngines lists every engine in the paper's comparison order.
var AllEngines = core.AllEngines

// New boots a fresh system: formatted file system, Optane-class
// device model, IOMMU with the BypassD extension, and the calibrated
// kernel stack.
func New(capacityBytes int64) (*System, error) {
	return core.New(capacityBytes)
}

// NewFromImage boots a system over an existing storage image (e.g. a
// snapshot from System.Snapshot).
func NewFromImage(capacityBytes int64, img *Store) (*System, error) {
	return core.NewOn(sim.New(), capacityBytes, img)
}

// Run spawns fn as a simulated thread and drives the simulation until
// all work completes. It is the usual entry point for examples and
// tests; fn may spawn further threads via sys.Sim.Spawn.
func Run(sys *System, name string, fn func(p *Proc)) {
	sys.Sim.Spawn(name, fn)
	sys.Sim.Run()
}
