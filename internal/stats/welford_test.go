package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestWelfordMatchesNaive: the online accumulator must agree with the
// two-pass textbook formulas across randomized sample sets.
func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*1e5 + 5e5
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(n-1)
		if w.Count() != int64(n) {
			t.Fatalf("count = %d, want %d", w.Count(), n)
		}
		if relErr(w.Mean(), mean) > 1e-9 {
			t.Fatalf("mean = %v, naive %v", w.Mean(), mean)
		}
		if relErr(w.Variance(), variance) > 1e-9 {
			t.Fatalf("variance = %v, naive %v", w.Variance(), variance)
		}
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatalf("single sample: mean=%v var=%v ci=%v", w.Mean(), w.Variance(), w.CI95())
	}
	if w.Lower95() != 42 || w.Upper95() != 42 {
		t.Fatal("single-sample CI bounds must collapse to the mean")
	}
	// Constant samples: zero variance, zero CI.
	for i := 0; i < 10; i++ {
		w.Add(42)
	}
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Fatalf("constant samples: var=%v ci=%v", w.Variance(), w.CI95())
	}
}

// TestWelfordCI95: the 5-trial case is the one the statistical gates
// run at — pin its critical value and the hand-computed half-width.
func TestWelfordCI95(t *testing.T) {
	var w Welford
	for _, x := range []float64{10, 12, 14, 16, 18} {
		w.Add(x)
	}
	// mean 14, sample sd sqrt(10), t(4) = 2.776
	want := 2.776 * math.Sqrt(10) / math.Sqrt(5)
	if got := w.CI95(); relErr(got, want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if lo, hi := w.Lower95(), w.Upper95(); lo >= 14 || hi <= 14 || relErr(hi-lo, 2*w.CI95()) > 1e-12 {
		t.Fatalf("bounds %v..%v inconsistent", lo, hi)
	}
}

func TestTCrit95(t *testing.T) {
	cases := map[int]float64{
		1: 12.706, 4: 2.776, 29: 2.045, 30: 2.042,
		35: 2.042, 40: 2.021, 59: 2.021, 60: 2.000,
		119: 2.000, 120: 1.980, 999: 1.980, 1000: 1.960,
	}
	for df, want := range cases {
		if got := TCrit95(df); got != want {
			t.Errorf("TCrit95(%d) = %v, want %v", df, got, want)
		}
	}
	// Monotone non-increasing in df: more data never widens the CI.
	prev := TCrit95(1)
	for df := 2; df <= 2000; df++ {
		cur := TCrit95(df)
		if cur > prev {
			t.Fatalf("TCrit95 increased at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TCrit95(0) did not panic")
		}
	}()
	TCrit95(0)
}

func TestAggregateSummaries(t *testing.T) {
	mk := func(vals ...sim.Time) Summary {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(v)
		}
		return h.Summarize()
	}
	ss := []Summary{
		mk(100, 200, 300),
		mk(1000, 2000, 3000),
	}
	ts := AggregateSummaries(ss)
	if ts.Trials != 2 {
		t.Fatalf("trials = %d", ts.Trials)
	}
	if ts.P99.Count() != 2 || ts.Mean.Count() != 2 {
		t.Fatal("per-metric accumulators missing samples")
	}
	if ts.P99Lo != ss[0].P99 || ts.P99Hi != ss[1].P99 {
		t.Fatalf("p99 spread %v..%v, want %v..%v", ts.P99Lo, ts.P99Hi, ss[0].P99, ss[1].P99)
	}
	if ts.P999Lo > ts.P999Hi {
		t.Fatalf("p999 spread inverted: %v..%v", ts.P999Lo, ts.P999Hi)
	}
	wantMean := (float64(ss[0].Mean) + float64(ss[1].Mean)) / 2
	if relErr(ts.Mean.Mean(), wantMean) > 1e-9 {
		t.Fatalf("mean of means = %v, want %v", ts.Mean.Mean(), wantMean)
	}
	if empty := AggregateSummaries(nil); empty.Trials != 0 {
		t.Fatalf("empty aggregation trials = %d", empty.Trials)
	}
}

func TestFmtMatchesAddRow(t *testing.T) {
	for _, v := range []float64{0, 0.123, 5.16, 39.4, 451, 12345.6} {
		tb := NewTable("x", "v")
		tb.AddRow(v)
		if got := Fmt(v); got != tb.Rows[0][0] {
			t.Errorf("Fmt(%v) = %q, AddRow renders %q", v, got, tb.Rows[0][0])
		}
	}
}
