// Package stats provides the measurement machinery used by the
// benchmark harness: log-bucketed latency histograms with percentile
// queries, throughput counters, per-interval time series, and plain
// text table rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/sim"
)

// Histogram records latency samples in logarithmic buckets
// (HDR-histogram style: power-of-two major buckets each split into 32
// linear sub-buckets), giving <3.2% relative error across the full
// nanosecond-to-second range with constant memory. Bucket counts live
// in a dense slice indexed by bucket number, so percentile queries are
// a single allocation-free scan.
type Histogram struct {
	counts []int64
	total  int64
	sum    float64
	min    sim.Time
	max    sim.Time
}

const subBuckets = 32

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v sim.Time) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// major = floor(log2(v)) relative to subBuckets scale
	major := bits.Len64(uint64(v)) - 1
	shift := major - 5 // log2(subBuckets)
	sub := int(v >> uint(shift) & (subBuckets - 1))
	return (major-4)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket index b.
func bucketLow(b int) sim.Time {
	if b < subBuckets {
		return sim.Time(b)
	}
	major := b/subBuckets + 4
	sub := b % subBuckets
	shift := major - 5
	return sim.Time((int64(1)<<uint(major) + int64(sub)<<uint(shift)))
}

// grow extends the dense bucket slice to hold index n-1, with slack
// so repeated growth is amortized.
func (h *Histogram) grow(n int) {
	if c := 2 * len(h.counts); n < c {
		n = c
	}
	counts := make([]int64, n)
	copy(counts, h.counts)
	h.counts = counts
}

// Add records one sample.
func (h *Histogram) Add(v sim.Time) {
	b := bucketOf(v)
	if b >= len(h.counts) {
		h.grow(b + 1)
	}
	h.counts[b]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean reports the arithmetic mean of all samples.
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.total))
}

// Min reports the smallest sample, or 0 if empty.
func (h *Histogram) Min() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile reports the value at quantile q in [0,100], e.g. 99.9.
// The value returned is the lower bound of the bucket containing the
// quantile sample. The dense bucket slice is already in value order,
// so this is one allocation-free scan.
func (h *Histogram) Percentile(q float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return bucketLow(b)
		}
	}
	return h.max
}

// PercentileMulti reports the values at each quantile in qs (each in
// [0,100]) with a single scan of the bucket slice, index-aligned with
// qs. Each result is exactly what Percentile would return for the
// same quantile; the one-pass form exists so SLO summaries that need
// p50/p99/p999 together do not pay three scans. qs must be sorted
// ascending.
func (h *Histogram) PercentileMulti(qs ...float64) []sim.Time {
	out := make([]sim.Time, len(qs))
	if h.total == 0 {
		return out
	}
	ranks := make([]int64, len(qs))
	for i, q := range qs {
		if i > 0 && q < qs[i-1] {
			panic("stats: PercentileMulti quantiles must be ascending")
		}
		r := int64(math.Ceil(q / 100 * float64(h.total)))
		if r < 1 {
			r = 1
		}
		ranks[i] = r
	}
	qi := 0
	var seen int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		for qi < len(qs) && seen >= ranks[qi] {
			out[qi] = bucketLow(b)
			qi++
		}
		if qi == len(qs) {
			return out
		}
	}
	for ; qi < len(qs); qi++ {
		out[qi] = h.max
	}
	return out
}

// Summary is a fixed percentile digest of a histogram — the surface
// the tenancy plane's SLO accounting reports per tenant.
type Summary struct {
	Count int64
	Mean  sim.Time
	P50   sim.Time
	P99   sim.Time
	P999  sim.Time
	Max   sim.Time
}

// Summarize computes the standard digest in one bucket scan.
func (h *Histogram) Summarize() Summary {
	p := h.PercentileMulti(50, 99, 99.9)
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   p[0],
		P99:   p[1],
		P999:  p[2],
		Max:   h.Max(),
	}
}

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.counts) > len(h.counts) {
		h.grow(len(other.counts))
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Throughput converts an operation count over a virtual duration into
// operations per second.
func Throughput(ops int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(ops) / dur.Seconds()
}

// BytesPerSec converts a byte count over a virtual duration into MB/s
// (decimal megabytes, as used in the paper's bandwidth plots).
func BytesPerSec(bytes int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(bytes) / dur.Seconds()
}

// Series accumulates per-interval counts for time-series plots such as
// the Fig. 12 revocation timeline.
type Series struct {
	Interval sim.Time
	buckets  []int64
}

// NewSeries returns a series with the given bucket width.
func NewSeries(interval sim.Time) *Series {
	if interval <= 0 {
		panic("stats: series interval must be positive")
	}
	return &Series{Interval: interval}
}

// Record adds n to the bucket containing virtual time t.
func (s *Series) Record(t sim.Time, n int64) {
	idx := int(t / s.Interval)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += n
}

// Buckets returns the per-interval totals.
func (s *Series) Buckets() []int64 { return s.buckets }

// Rate returns bucket i's count expressed per second.
func (s *Series) Rate(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return float64(s.buckets[i]) / s.Interval.Seconds()
}

// Table renders experiment results as aligned plain text, mirroring
// the row/column structure of the paper's tables and figures.
//
// AddRow and String are safe for concurrent use, so a table shared by
// fanned-out sweep workers cannot be corrupted — though callers who
// need a deterministic row order (every experiment harness does)
// should still collect per-cell results and append from one
// goroutine.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string

	mu sync.Mutex
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells format with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.mu.Lock()
	t.Rows = append(t.Rows, row)
	t.mu.Unlock()
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += "== " + t.Title + " ==\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			s += pad(c, widths[i])
		}
		return s + "\n"
	}
	out += line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	out += line(sep)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
