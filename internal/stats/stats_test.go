package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 49 || m > 52 {
		t.Fatalf("mean = %v, want ~50.5", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1000000)) + 1
		samples = append(samples, v)
		h.Add(sim.Time(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(q/100*float64(len(samples)))-1]
		got := int64(h.Percentile(q))
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.05 || relErr > 0.05 {
			t.Errorf("p%.1f = %d, exact %d (err %.2f%%)", q, got, exact, relErr*100)
		}
	}
}

// Property: bucketLow(bucketOf(v)) <= v and the bucket's relative
// width stays below ~2/32.
func TestBucketBoundsProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := sim.Time(raw)
		b := bucketOf(v)
		low := bucketLow(b)
		if low > v {
			return false
		}
		if v >= 64 {
			// relative error bound: bucket width / value
			if float64(v-low)/float64(v) > 2.0/subBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBucketInverseFullRange walks every bucket index the encoding can
// produce and checks bucketOf and bucketLow stay exact inverses, so a
// change to either (e.g. the math/bits major computation) cannot skew
// one end of the range silently.
func TestBucketInverseFullRange(t *testing.T) {
	maxIdx := bucketOf(sim.Time(math.MaxInt64))
	for b := 0; b <= maxIdx; b++ {
		low := bucketLow(b)
		if got := bucketOf(low); got != b {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", b, got)
		}
		if b > 0 && bucketLow(b-1) >= low {
			t.Fatalf("bucketLow not strictly increasing at %d: %v >= %v", b, bucketLow(b-1), low)
		}
	}
	// Boundary samples land in the bucket whose [low, nextLow) range
	// contains them, across the whole 63-bit domain.
	for shift := uint(5); shift < 63; shift++ {
		for _, v := range []sim.Time{1<<shift - 1, 1 << shift, 1<<shift + 1} {
			b := bucketOf(v)
			if low := bucketLow(b); low > v {
				t.Fatalf("bucketLow(%d) = %v > sample %v", b, low, v)
			}
			if b < maxIdx {
				if next := bucketLow(b + 1); next <= v {
					t.Fatalf("sample %v at bucket %d overlaps next bucket (low %v)", v, b, next)
				}
			}
		}
	}
}

// Percentile must not allocate: it used to rebuild and sort the bucket
// key set on every call.
func TestPercentileAllocFree(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		h.Add(sim.Time(rng.Intn(1 << 30)))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = h.Percentile(99)
	}); allocs != 0 {
		t.Fatalf("Percentile allocates %v per call, want 0", allocs)
	}
}

func BenchmarkPercentile(b *testing.B) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		h.Add(sim.Time(rng.Intn(1 << 30)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(99.9)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Add(sim.Time(10))
		b.Add(sim.Time(1000))
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if p := a.Percentile(25); p > 50 {
		t.Fatalf("p25 = %v, want low bucket", p)
	}
	if p := a.Percentile(75); p < 500 {
		t.Fatalf("p75 = %v, want high bucket", p)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, sim.Second); got != 1000 {
		t.Fatalf("throughput = %f, want 1000", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("throughput over zero duration = %f, want 0", got)
	}
	if got := BytesPerSec(4096, sim.Millisecond); got != 4096000 {
		t.Fatalf("bytes/sec = %f, want 4096000", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(sim.Second)
	s.Record(0, 5)
	s.Record(sim.Second/2, 5)
	s.Record(sim.Second+1, 7)
	s.Record(3*sim.Second, 1)
	b := s.Buckets()
	if len(b) != 4 {
		t.Fatalf("buckets = %d, want 4", len(b))
	}
	if b[0] != 10 || b[1] != 7 || b[2] != 0 || b[3] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if s.Rate(0) != 10 {
		t.Fatalf("rate(0) = %f, want 10", s.Rate(0))
	}
	if s.Rate(99) != 0 {
		t.Fatalf("rate out of range = %f, want 0", s.Rate(99))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 12345.6)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "12346") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestSeriesInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewSeries(0)
}

func TestTableConcurrentAddRow(t *testing.T) {
	tb := NewTable("c", "worker", "i")
	var wg sync.WaitGroup
	const workers, rows = 8, 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				tb.AddRow(w, i)
			}
		}()
	}
	wg.Wait()
	if got := len(tb.Rows); got != workers*rows {
		t.Fatalf("rows = %d, want %d", got, workers*rows)
	}
	// Rendering under concurrent appends must not race or corrupt.
	_ = tb.String()
}

// TestPercentileMultiMatchesPercentile: the one-pass multi-quantile
// scan must agree exactly with repeated single-quantile scans, across
// randomized histograms of varying size and value range.
func TestPercentileMultiMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram()
		n := 1 + rng.Intn(5000)
		span := int64(1) << (1 + rng.Intn(40))
		for i := 0; i < n; i++ {
			h.Add(sim.Time(rng.Int63n(span) + 1))
		}
		qs := []float64{1, 25, 50, 90, 99, 99.9, 99.99, 100}
		got := h.PercentileMulti(qs...)
		for i, q := range qs {
			if want := h.Percentile(q); got[i] != want {
				t.Fatalf("trial %d (n=%d): p%v = %v via multi, %v via single", trial, n, q, got[i], want)
			}
		}
	}
}

func TestPercentileMultiEdgeCases(t *testing.T) {
	h := NewHistogram()
	if got := h.PercentileMulti(50, 99); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty histogram PercentileMulti = %v, want zeros", got)
	}
	h.Add(7)
	if got := h.PercentileMulti(50, 99, 99.9); got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("single-sample quantiles differ: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("descending quantiles did not panic")
		}
	}()
	h.PercentileMulti(99, 50)
}

// TestHistogramMergeEquivalenceProperty: merging any partition of a
// sample set must be indistinguishable from adding every sample to a
// single histogram — Count, Mean, Min, Max, and every quantile of
// PercentileMulti. Randomized over partition shapes that include
// empty histograms (zero-sample parts) and single-bucket parts
// (all-equal samples), the edge cases a merge that mishandles
// min/max sentinels or bucket growth would get wrong.
func TestHistogramMergeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{1, 25, 50, 90, 99, 99.9, 100}
	for trial := 0; trial < 60; trial++ {
		parts := 1 + rng.Intn(6)
		hs := make([]*Histogram, parts)
		for i := range hs {
			hs[i] = NewHistogram()
		}
		whole := NewHistogram()
		span := int64(1) << (1 + rng.Intn(40))
		for i, h := range hs {
			var n int
			switch rng.Intn(4) {
			case 0:
				n = 0 // empty part
			case 1:
				n = 1
			default:
				n = rng.Intn(800)
			}
			if rng.Intn(5) == 0 {
				// Single-bucket part: every sample identical.
				v := sim.Time(rng.Int63n(span) + 1)
				for j := 0; j < n; j++ {
					h.Add(v)
					whole.Add(v)
				}
				continue
			}
			_ = i
			for j := 0; j < n; j++ {
				v := sim.Time(rng.Int63n(span) + 1)
				h.Add(v)
				whole.Add(v)
			}
		}
		merged := NewHistogram()
		for _, h := range hs {
			merged.Merge(h)
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("trial %d: count %d != %d", trial, merged.Count(), whole.Count())
		}
		if merged.Mean() != whole.Mean() {
			t.Fatalf("trial %d: mean %v != %v", trial, merged.Mean(), whole.Mean())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: min/max %v/%v != %v/%v", trial,
				merged.Min(), merged.Max(), whole.Min(), whole.Max())
		}
		mp := merged.PercentileMulti(qs...)
		wp := whole.PercentileMulti(qs...)
		for i, q := range qs {
			if mp[i] != wp[i] {
				t.Fatalf("trial %d: p%v = %v merged, %v whole", trial, q, mp[i], wp[i])
			}
		}
	}
}

// TestHistogramMergeEmptyBothWays: merging an empty histogram in
// either direction must not disturb min/max or the digest.
func TestHistogramMergeEmptyBothWays(t *testing.T) {
	full := NewHistogram()
	for i := 1; i <= 10; i++ {
		full.Add(sim.Time(i * 100))
	}
	before := full.Summarize()
	full.Merge(NewHistogram())
	if got := full.Summarize(); got != before {
		t.Fatalf("merging empty changed digest: %+v -> %+v", before, got)
	}
	empty := NewHistogram()
	empty.Merge(full)
	if got := empty.Summarize(); got != before {
		t.Fatalf("merge into empty digest = %+v, want %+v", got, before)
	}
}

// TestSummarize: Summary mirrors the individual accessors.
func TestSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Time(i))
	}
	s := h.Summarize()
	if s.Count != h.Count() || s.Max != h.Max() {
		t.Fatalf("summary count/max = %d/%v, want %d/%v", s.Count, s.Max, h.Count(), h.Max())
	}
	if s.P50 != h.Percentile(50) || s.P99 != h.Percentile(99) || s.P999 != h.Percentile(99.9) {
		t.Fatalf("summary percentiles %v/%v/%v disagree with Percentile", s.P50, s.P99, s.P999)
	}
	if s.Mean != h.Mean() {
		t.Fatalf("summary mean = %v, want %v", s.Mean, h.Mean())
	}
}
