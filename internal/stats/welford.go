package stats

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Welford is a numerically stable online mean/variance accumulator
// (Welford's algorithm). The experiment plane feeds it one value per
// seeded trial, so its confidence interval speaks about run-to-run
// variation — the error bars behind every multi-trial table column
// and statistical gate.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean reports the running mean, 0 when empty.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased sample variance (n-1 denominator),
// 0 with fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 reports the half-width of the two-sided 95% Student-t
// confidence interval for the mean: t(n-1) * s / sqrt(n). With fewer
// than two samples there is no variance estimate and the half-width
// is 0 — callers gating on CI bounds must require n >= 2 trials.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return TCrit95(int(w.n-1)) * w.StdDev() / math.Sqrt(float64(w.n))
}

// Lower95 and Upper95 are the 95% confidence bounds for the mean.
// Statistical gates compare one side's Upper95 against the other's
// Lower95: non-overlap is the CI-enforceable form of "A beats B".
func (w *Welford) Lower95() float64 { return w.mean - w.CI95() }

// Upper95 reports the upper 95% confidence bound for the mean.
func (w *Welford) Upper95() float64 { return w.mean + w.CI95() }

// tCrit95 holds two-sided 95% Student-t critical values for degrees
// of freedom 1..30 (index df-1).
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Beyond the tabulated 30 it steps down through
// the standard anchors (40, 60, 120, ∞), always using the value for
// the largest anchor not exceeding df — conservative (never narrower
// than the exact interval). df must be >= 1.
func TCrit95(df int) float64 {
	switch {
	case df < 1:
		panic(fmt.Sprintf("stats: TCrit95 df=%d, need >= 1", df))
	case df <= 30:
		return tCrit95[df-1]
	case df < 40:
		return tCrit95[29]
	case df < 60:
		return 2.021
	case df < 120:
		return 2.000
	case df < 1000:
		return 1.980
	}
	return 1.960
}

// TrialSet aggregates per-seed Summary digests across repeated trials
// of one experiment cell: a Welford accumulator per metric (all in
// nanoseconds) plus the observed min..max spread of the tail
// percentiles. It is the cross-seed surface behind the multi-trial
// report columns — mean ± CI95 and p99/p999 spread.
type TrialSet struct {
	Trials int
	Mean   Welford
	P50    Welford
	P99    Welford
	P999   Welford

	P99Lo, P99Hi   sim.Time
	P999Lo, P999Hi sim.Time
}

// AggregateSummaries folds one Summary per trial into a TrialSet.
func AggregateSummaries(ss []Summary) TrialSet {
	var t TrialSet
	for _, s := range ss {
		t.Trials++
		t.Mean.Add(float64(s.Mean))
		t.P50.Add(float64(s.P50))
		t.P99.Add(float64(s.P99))
		t.P999.Add(float64(s.P999))
		if t.Trials == 1 {
			t.P99Lo, t.P99Hi = s.P99, s.P99
			t.P999Lo, t.P999Hi = s.P999, s.P999
			continue
		}
		if s.P99 < t.P99Lo {
			t.P99Lo = s.P99
		}
		if s.P99 > t.P99Hi {
			t.P99Hi = s.P99
		}
		if s.P999 < t.P999Lo {
			t.P999Lo = s.P999
		}
		if s.P999 > t.P999Hi {
			t.P999Hi = s.P999
		}
	}
	return t
}

// Fmt renders a float with the same precision rules Table.AddRow
// applies to float64 cells, for harnesses that compose cells like
// "±1.2" or "4.9..5.6" out of numbers.
func Fmt(v float64) string { return formatFloat(v) }
