package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// The refactor contract: Interarrival must reproduce the historical
// internal/tenants draw stream bit for bit — same rng consumption,
// same rounding — for both processes, across seeds and rates. The
// reference below is the pre-refactor tenants implementation,
// verbatim.
func TestInterarrivalMatchesHistoricalTenantsFormula(t *testing.T) {
	reference := func(rng *rand.Rand, fixed bool, rateOps float64) sim.Time {
		period := 1e9 / rateOps
		if fixed {
			return sim.Time(period)
		}
		return sim.Time(rng.ExpFloat64() * period)
	}
	for seed := int64(1); seed <= 20; seed++ {
		for _, rate := range []float64{1, 999.5, 20_000, 1.49e6} {
			for _, proc := range []Process{Poisson, "", Fixed} {
				a := rand.New(rand.NewSource(seed))
				b := rand.New(rand.NewSource(seed))
				for i := 0; i < 200; i++ {
					got := Interarrival(a, proc, rate)
					want := reference(b, proc == Fixed, rate)
					if got != want {
						t.Fatalf("seed %d rate %g proc %q draw %d: got %v want %v",
							seed, rate, proc, i, got, want)
					}
				}
			}
		}
	}
}

// Zipf shape: with theta 0.99 over n keys, rank 0 must be by far the
// most popular, frequency must fall monotonically over the first few
// ranks, and the top ranks must hold a large share of all draws —
// the head-heavy profile the YCSB generator is defined by.
func TestZipfDistributionShape(t *testing.T) {
	const n = 10_000
	const draws = 200_000
	z := NewZipf(n, DefaultZipfTheta)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next(rng)
		if r >= n {
			t.Fatalf("rank %d outside [0, %d)", r, n)
		}
		counts[r]++
	}
	if counts[0] < counts[1] || counts[1] < counts[4] || counts[4] < counts[100] {
		t.Fatalf("head not monotone: c0=%d c1=%d c4=%d c100=%d",
			counts[0], counts[1], counts[4], counts[100])
	}
	// Theory: P(rank 0) = 1/zetan ~ 9.5% at n=10k, theta .99.
	p0 := float64(counts[0]) / draws
	if p0 < 0.06 || p0 > 0.14 {
		t.Fatalf("rank-0 mass %.3f outside the theta=0.99 envelope", p0)
	}
	top100 := 0
	for _, c := range counts[:100] {
		top100 += c
	}
	if frac := float64(top100) / draws; frac < 0.45 {
		t.Fatalf("top-100 ranks hold only %.2f of the mass; want head-heavy skew", frac)
	}
}

// Determinism: the same seed must replay the same rank sequence run
// after run (the property every table's byte-identity rests on), and
// the scrambled variant must stay inside [0, n).
func TestZipfDeterministicAcrossRuns(t *testing.T) {
	sample := func() []uint64 {
		z := NewZipf(5000, DefaultZipfTheta)
		rng := rand.New(rand.NewSource(42))
		out := make([]uint64, 2000)
		for i := range out {
			if i%2 == 0 {
				out[i] = z.Next(rng)
			} else {
				out[i] = z.NextScrambled(rng)
			}
			if out[i] >= 5000 {
				t.Fatalf("draw %d: rank %d out of range", i, out[i])
			}
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

// Scramble must be the YCSB FNV-1a fold: stable values, and a
// bijection-grade spread (no collisions over a large sequential
// range would be too strong; distinctness over a modest one is the
// regression guard).
func TestScrambleSpread(t *testing.T) {
	if Scramble(0) == Scramble(1) {
		t.Fatal("scramble collides immediately")
	}
	seen := make(map[uint64]bool, 100_000)
	for i := uint64(0); i < 100_000; i++ {
		h := Scramble(i)
		if seen[h] {
			t.Fatalf("scramble collision at %d", i)
		}
		seen[h] = true
	}
}

// Shaped streams must (a) be deterministic for a seed, (b) hit their
// configured mean rate within a few percent when averaged over many
// periods, and (c) actually vary: the diurnal peak-phase rate must
// exceed the trough, and a bursty stream's gap distribution must be
// burstier (higher CV) than steady Poisson.
func TestStreamShapes(t *testing.T) {
	run := func(cfg StreamConfig, n int, seed int64) []sim.Time {
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var now sim.Time
		out := make([]sim.Time, n)
		for i := range out {
			gap := s.Next(rng, now)
			now += gap
			out[i] = now
		}
		return out
	}
	const rate = 100_000
	for _, shape := range []Shape{Steady, Diurnal, Bursty} {
		cfg := StreamConfig{RateOps: rate, Shape: shape}
		a := run(cfg, 20_000, 9)
		b := run(cfg, 20_000, 9)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d diverged between identical runs", shape, i)
			}
		}
		span := a[len(a)-1] - a[0]
		got := float64(len(a)-1) / span.Seconds()
		if got < rate*0.9 || got > rate*1.1 {
			t.Fatalf("%s: achieved mean rate %.0f, want ~%d", shape, got, rate)
		}
	}

	// Burstiness: coefficient of variation of gaps. Poisson CV = 1;
	// the two-state burst process must sit clearly above it.
	cv := func(arr []sim.Time) float64 {
		var sum, sq float64
		for i := 1; i < len(arr); i++ {
			g := float64(arr[i] - arr[i-1])
			sum += g
			sq += g * g
		}
		n := float64(len(arr) - 1)
		mean := sum / n
		return math.Sqrt(sq/n-mean*mean) / mean
	}
	steady := run(StreamConfig{RateOps: rate}, 30_000, 3)
	bursty := run(StreamConfig{RateOps: rate, Shape: Bursty}, 30_000, 3)
	if cvS, cvB := cv(steady), cv(bursty); cvB < cvS*1.2 {
		t.Fatalf("bursty CV %.2f not above steady CV %.2f", cvB, cvS)
	}

	// Diurnal modulation: compare arrival counts in the peak quarter
	// of the period against the trough quarter.
	period := 10 * sim.Millisecond
	arr := run(StreamConfig{RateOps: rate, Shape: Diurnal, Amp: 0.8, Period: period}, 30_000, 5)
	var peakN, troughN int
	for _, at := range arr {
		switch (at % period) * 4 / period {
		case 0: // rising/peak quadrant of sin
			peakN++
		case 2: // falling/trough quadrant
			troughN++
		}
	}
	if peakN < troughN*2 {
		t.Fatalf("diurnal peak quadrant %d arrivals vs trough %d: modulation too weak", peakN, troughN)
	}
}

func TestStreamValidation(t *testing.T) {
	for _, cfg := range []StreamConfig{
		{RateOps: 0},
		{RateOps: -5},
		{RateOps: 10, Proc: "weibull"},
		{RateOps: 10, Shape: "square"},
		{RateOps: 10, Shape: Diurnal, Amp: 1.5},
		{RateOps: 10, Shape: Bursty, Factor: 0.5},
	} {
		if _, err := NewStream(cfg); err == nil {
			t.Fatalf("NewStream(%+v) accepted invalid config", cfg)
		}
	}
	if !ValidProcess("") || !ValidProcess(Poisson) || ValidProcess("x") {
		t.Fatal("ValidProcess broken")
	}
	if !ValidShape("") || !ValidShape(Bursty) || ValidShape("x") {
		t.Fatal("ValidShape broken")
	}
}
