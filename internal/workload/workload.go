// Package workload is the shared traffic-generation toolkit: seeded
// arrival processes, bounded Zipf popularity, and time-varying load
// shapes, all on the virtual clock.
//
// Both traffic tiers draw from here — internal/tenants (tens of
// tenants, each a full process) and internal/frontend (millions of
// simulated users over a bounded worker pool) — so an arrival process
// has exactly one implementation and one determinism argument: every
// draw comes from a caller-owned *rand.Rand seeded from the scenario,
// consumed only by the generator that owns it, so a fixed seed
// replays every arrival instant at any host parallelism. The Zipf
// sampler is the YCSB generator (Gray et al.'s algorithm) that
// internal/ycsb has always used, now shared so key-popularity skew in
// the service tier and in the KV benchmarks is the same distribution.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Process selects an arrival process.
type Process string

// Supported arrival processes.
const (
	// Poisson draws exponential interarrival gaps — the open-system
	// model whose tail exposes queueing delay.
	Poisson Process = "poisson"
	// Fixed spaces arrivals exactly 1/rate apart.
	Fixed Process = "fixed"
)

// Interarrival draws the next gap for an arrival process offering
// rateOps requests/sec. An empty (or unknown) process is Poisson, the
// historical tenants default. Poisson consumes exactly one ExpFloat64
// draw from rng; Fixed consumes none.
func Interarrival(rng *rand.Rand, proc Process, rateOps float64) sim.Time {
	period := 1e9 / rateOps
	if proc == Fixed {
		return sim.Time(period)
	}
	return sim.Time(rng.ExpFloat64() * period)
}

// ValidProcess reports whether name is a supported arrival process
// ("" reads as Poisson).
func ValidProcess(name Process) bool {
	switch name {
	case "", Poisson, Fixed:
		return true
	}
	return false
}

// DefaultZipfTheta is the YCSB skew parameter.
const DefaultZipfTheta = 0.99

// Zipf samples ranks in [0, n) with Zipfian skew: rank 0 is the most
// popular. The algorithm and constants are the standard YCSB
// generator; internal/ycsb delegates here. Each Next consumes exactly
// one Float64 draw from the caller's rng.
type Zipf struct {
	n     uint64
	theta float64
	zetan float64
	zeta2 float64
	alpha float64
	eta   float64
}

// zeta computes the generalized harmonic number H_{n,th}.
func zeta(n uint64, th float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), th)
	}
	return sum
}

// NewZipf builds a bounded Zipf sampler over [0, n) with skew theta
// (DefaultZipfTheta for YCSB's 0.99). Setup is O(n) — the zeta sum —
// so build once per stream, not per draw.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: empty zipf key space")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// N reports the sampler's key-space size.
func (z *Zipf) N() uint64 { return z.n }

// Next samples a rank in [0, z.n).
func (z *Zipf) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scramble spreads sequential values over the 64-bit space (FNV-1a
// over the 8 little-endian bytes), the YCSB trick that keeps hot Zipf
// ranks from clustering in one region of the key space. Deterministic
// and stateless.
func Scramble(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// NextScrambled samples a Zipf rank and scrambles it into [0, n): hot
// keys spread over the key space instead of clustering at 0.
func (z *Zipf) NextScrambled(rng *rand.Rand) uint64 {
	return Scramble(z.Next(rng)) % z.n
}

// Shape selects a load shape — how the offered rate varies over the
// virtual clock.
type Shape string

// Supported load shapes.
const (
	// Steady offers a constant rate.
	Steady Shape = "steady"
	// Diurnal modulates the rate sinusoidally around its mean —
	// rate(t) = mean * (1 + Amp*sin(2*pi*t/Period)) — the day/night
	// swing of a user-facing service, compressed onto the virtual
	// clock.
	Diurnal Shape = "diurnal"
	// Bursty alternates calm and burst phases (a two-state modulated
	// Poisson process): calm offers the base rate, bursts multiply it
	// by Factor for an exponentially distributed burst length.
	Bursty Shape = "bursty"
)

// ValidShape reports whether name is a supported shape ("" reads as
// Steady).
func ValidShape(name Shape) bool {
	switch name {
	case "", Steady, Diurnal, Bursty:
		return true
	}
	return false
}

// StreamConfig describes one arrival stream.
type StreamConfig struct {
	Proc    Process // default Poisson
	RateOps float64 // mean offered rate, requests/sec
	Shape   Shape   // default Steady

	// Diurnal knobs.
	Amp    float64  // modulation depth in [0, 1); default 0.5
	Period sim.Time // one "day"; default 100ms of virtual time

	// Bursty knobs.
	Factor    float64  // burst rate multiplier; default 8
	BurstLen  sim.Time // mean burst length; default 200µs
	BurstOff  sim.Time // mean calm gap between bursts; default 2ms
	BurstProc Process  // unused; reserved
}

// Stream generates one seeded arrival stream with a (possibly
// time-varying) rate on the virtual clock. Non-steady shapes are
// sampled by thinning a Poisson process at the shape's peak rate, so
// every accepted arrival instant is a pure function of the rng
// stream and the config — independent of service order and host
// scheduling. A Stream must only be advanced by the single generator
// proc that owns it.
type Stream struct {
	cfg  StreamConfig
	peak float64 // thinning envelope rate

	// Bursty phase state, advanced lazily as the clock passes it.
	inBurst  bool
	phaseEnd sim.Time
}

// NewStream validates cfg, fills shape defaults, and returns the
// stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.RateOps <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", cfg.RateOps)
	}
	if !ValidProcess(cfg.Proc) {
		return nil, fmt.Errorf("workload: unknown arrival process %q", cfg.Proc)
	}
	if !ValidShape(cfg.Shape) {
		return nil, fmt.Errorf("workload: unknown load shape %q", cfg.Shape)
	}
	switch cfg.Shape {
	case Diurnal:
		if cfg.Amp == 0 {
			cfg.Amp = 0.5
		}
		if cfg.Amp < 0 || cfg.Amp >= 1 {
			return nil, fmt.Errorf("workload: diurnal amplitude %g outside [0, 1)", cfg.Amp)
		}
		if cfg.Period <= 0 {
			cfg.Period = 100 * sim.Millisecond
		}
	case Bursty:
		if cfg.Factor == 0 {
			cfg.Factor = 8
		}
		if cfg.Factor < 1 {
			return nil, fmt.Errorf("workload: burst factor %g < 1", cfg.Factor)
		}
		if cfg.BurstLen <= 0 {
			cfg.BurstLen = 200 * sim.Microsecond
		}
		if cfg.BurstOff <= 0 {
			cfg.BurstOff = 2 * sim.Millisecond
		}
	}
	s := &Stream{cfg: cfg, peak: cfg.RateOps}
	switch cfg.Shape {
	case Diurnal:
		s.peak = cfg.RateOps * (1 + cfg.Amp)
	case Bursty:
		// The mean rate is RateOps; solve for the calm-phase base so
		// that time-averaging calm and burst phases lands back on it:
		// mean = base * (off + factor*len) / (off + len).
		s.peak = s.burstBase() * cfg.Factor
	}
	return s, nil
}

// burstBase is the calm-phase rate of a bursty stream.
func (s *Stream) burstBase() float64 {
	off, ln := float64(s.cfg.BurstOff), float64(s.cfg.BurstLen)
	return s.cfg.RateOps * (off + ln) / (off + s.cfg.Factor*ln)
}

// rateAt evaluates the instantaneous offered rate at virtual time t,
// advancing bursty phase state up to t.
func (s *Stream) rateAt(rng *rand.Rand, t sim.Time) float64 {
	switch s.cfg.Shape {
	case Diurnal:
		phase := 2 * math.Pi * float64(t%s.cfg.Period) / float64(s.cfg.Period)
		return s.cfg.RateOps * (1 + s.cfg.Amp*math.Sin(phase))
	case Bursty:
		for t >= s.phaseEnd {
			var mean sim.Time
			if s.inBurst {
				mean = s.cfg.BurstOff
			} else {
				mean = s.cfg.BurstLen
			}
			s.inBurst = !s.inBurst
			gap := sim.Time(rng.ExpFloat64() * float64(mean))
			if gap < 1 {
				gap = 1
			}
			s.phaseEnd += gap
		}
		if s.inBurst {
			return s.burstBase() * s.cfg.Factor
		}
		return s.burstBase()
	default:
		return s.cfg.RateOps
	}
}

// Next returns the gap from now to the stream's next arrival. Steady
// streams are exactly Interarrival; shaped streams thin a Poisson
// envelope at the peak rate, so Fixed pacing only applies to the
// steady shape.
func (s *Stream) Next(rng *rand.Rand, now sim.Time) sim.Time {
	if s.cfg.Shape == "" || s.cfg.Shape == Steady {
		return Interarrival(rng, s.cfg.Proc, s.cfg.RateOps)
	}
	t := now
	for {
		t += Interarrival(rng, Poisson, s.peak)
		if rng.Float64()*s.peak <= s.rateAt(rng, t) {
			return t - now
		}
	}
}
