// Package device implements the simulated low-latency NVMe SSD.
//
// The model is calibrated to the Intel Optane P5800X used in the
// paper: ~4.0 µs device time for a 4 KiB read (Table 1), ~7 GB/s
// streaming reads, and ~1.5 M IOPS of internal parallelism (Fig. 9's
// saturation point). Commands are fetched from submission queues by a
// pluggable arbiter (flat round-robin by default — the device-side
// scheduling the paper relies on for fairness once the kernel I/O
// scheduler is bypassed (Fig. 11) — with WRR and strict-priority +
// token-bucket variants for the tenancy plane, see arbiter.go) and
// served by a bounded pool of internal channels.
//
// BypassD extension: a submission entry may carry a VBA, in which case
// the device issues an ATS translation to the attached IOMMU before
// (reads) or concurrently with (writes) the media access (paper §4.3).
package device

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/iommu"
	"repro/internal/metrics"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config holds the device performance model.
type Config struct {
	Name          string
	DevID         uint8
	CapacityBytes int64

	// Shard is the simulation event shard the device's procs run on
	// (sim.AddShard). Topology boot assigns one shard per device so
	// each device's command stream lives in its own lane; 0 — shard 0 —
	// is the single-device default.
	Shard int

	Channels int // internal parallelism (concurrent media ops)

	ReadBase  sim.Time // fixed portion of a read's media time
	WriteBase sim.Time // fixed portion of a write's media time
	ReadBW    float64  // streaming read bandwidth, bytes/ns
	WriteBW   float64  // streaming write bandwidth, bytes/ns

	FlushLatency sim.Time // cache flush time once writes drain
	MaxQueues    int      // NVMe allows 64K; bound for sanity

	// SerializeWriteTranslation disables the write-path overlap of
	// VBA translation and data transfer (ablation for paper §4.3).
	SerializeWriteTranslation bool
}

// OptaneP5800X returns the calibration used throughout the
// reproduction: 4 KiB read = 3435 + 4096/7.0 ≈ 4020 ns (Table 1);
// six channels ≈ 1.49 M IOPS.
func OptaneP5800X(capacity int64) Config {
	return Config{
		Name:          "optane-p5800x",
		DevID:         1,
		CapacityBytes: capacity,
		Channels:      6,
		ReadBase:      3435 * sim.Nanosecond,
		WriteBase:     3800 * sim.Nanosecond,
		ReadBW:        7.0, // bytes per nanosecond = GB/s
		WriteBW:       6.2,
		FlushLatency:  5 * sim.Microsecond,
		MaxQueues:     65536,
	}
}

// ZSSD models a Samsung Z-SSD-class low-latency NAND device (paper
// §2's second device class): ~12 µs 4 KiB reads, DRAM-buffered
// writes.
func ZSSD(capacity int64) Config {
	return Config{
		Name:          "z-ssd",
		DevID:         2,
		CapacityBytes: capacity,
		Channels:      8,
		ReadBase:      11 * sim.Microsecond,
		WriteBase:     9 * sim.Microsecond,
		ReadBW:        3.2,
		WriteBW:       3.0,
		FlushLatency:  20 * sim.Microsecond,
		MaxQueues:     65536,
	}
}

// TLCFlash models a mainstream TLC NVMe SSD: ~80 µs reads — the
// regime where kernel software costs were negligible (paper §1/§2's
// motivation runs backwards on slow devices).
func TLCFlash(capacity int64) Config {
	return Config{
		Name:          "tlc-nvme",
		DevID:         3,
		CapacityBytes: capacity,
		Channels:      16,
		ReadBase:      78 * sim.Microsecond,
		WriteBase:     18 * sim.Microsecond, // SLC-cache absorbed
		ReadBW:        3.5,
		WriteBW:       2.8,
		FlushLatency:  100 * sim.Microsecond,
		MaxQueues:     65536,
	}
}

// command is an admitted SQE with its originating queue.
type command struct {
	sqe nvme.SQE
	q   *nvme.QueuePair
}

// Stats aggregates device activity.
type Stats struct {
	Reads, Writes, Flushes int64
	BytesRead, BytesWrite  int64
	Faults                 int64 // commands completed with error status
}

// SSD is the simulated device.
type SSD struct {
	sim   *sim.Sim
	cfg   Config
	store *storage.Store
	mmu   *iommu.IOMMU // nil when no VBA support is modelled

	queues   []*nvme.QueuePair
	arrival  *sim.Cond // doorbell for all queues
	arb      Arbiter   // queue arbitration policy (FlatRR by default)
	arbRR    *FlatRR   // devirtualized fast path when arb is the default
	wakeAt   sim.Time  // pending token-refill re-arbitration, 0 = none
	channels *sim.Resource

	writesInFlight int
	writesDrained  *sim.Cond

	stats   Stats
	opsByQ  map[int]int64
	stopped bool
	claimer string

	// segFree recycles per-command segment buffers between serve
	// invocations so the resolve→moveData path allocates nothing in
	// steady state. Safe without locks: the simulation runs exactly
	// one goroutine at a time.
	segFree [][]iommu.Segment

	// Per-command spawn path, precomputed once so dispatch allocates
	// nothing in steady state: the channel-proc name (the old
	// cfg.Name+"-chan" concat allocated per command), a shared serve
	// trampoline for sim.SpawnArg (no per-command closure), and a free
	// list of command boxes handed through the trampoline's arg.
	chanName string
	serveFn  func(p *sim.Proc, arg any)
	cmdFree  []*command

	// window offsets every media sector: non-zero for an SR-IOV-style
	// virtual function carved out of a parent device (§5.2).
	window int64

	// inj is the machine's fault plane (nil = inert). Site names are
	// precomputed so the served path stays allocation-free.
	inj         *faults.Injector
	siteMedia   string
	siteTimeout string
	siteDelay   string

	// Metrics handles, resolved once at boot; nil (inert) when no
	// registry is active, like the fault plane.
	mReads, mWrites, mFlushes *metrics.Counter
	mBytesRead, mBytesWrite   *metrics.Counter
	mErrors                   *metrics.Counter
	mQueues                   *metrics.Gauge
}

// New creates a device backed by a fresh sparse store and starts its
// dispatcher.
func New(s *sim.Sim, cfg Config) *SSD {
	return NewWithStore(s, cfg, storage.NewBytes(cfg.CapacityBytes))
}

// NewWithStore creates a device over an existing store (used to boot
// prebuilt images).
func NewWithStore(s *sim.Sim, cfg Config, st *storage.Store) *SSD {
	if cfg.Channels <= 0 {
		panic("device: channel count must be positive")
	}
	d := &SSD{
		sim:           s,
		cfg:           cfg,
		store:         st,
		arrival:       s.NewCond(),
		arb:           NewFlatRR(),
		channels:      s.NewResourceOn(cfg.Shard, cfg.Name+"-channels", cfg.Channels),
		writesDrained: s.NewCond(),
		opsByQ:        make(map[int]int64),
	}
	d.initSites()
	d.initMetrics()
	d.initHotPath()
	// The dispatch proc anchors the device's shard: serve procs spawn
	// from it (inheriting the shard) and doorbell wakeups route to it.
	s.SpawnOn(cfg.Shard, cfg.Name+"-dispatch", d.dispatch)
	return d
}

// initHotPath precomputes the per-command spawn machinery and the
// devirtualized arbiter pointer.
func (d *SSD) initHotPath() {
	d.chanName = d.cfg.Name + "-chan"
	d.serveFn = func(p *sim.Proc, arg any) {
		cb := arg.(*command)
		c := *cb
		d.putCmd(cb) // box is free for the next admission; serve owns a copy
		d.serve(p, c)
	}
	d.arbRR, _ = d.arb.(*FlatRR)
}

// getCmd hands out a command box for one admission.
func (d *SSD) getCmd() *command {
	if n := len(d.cmdFree); n > 0 {
		c := d.cmdFree[n-1]
		d.cmdFree[n-1] = nil
		d.cmdFree = d.cmdFree[:n-1]
		return c
	}
	return &command{}
}

// putCmd retires a command box, dropping its Buf/Span references.
func (d *SSD) putCmd(c *command) {
	*c = command{}
	d.cmdFree = append(d.cmdFree, c)
}

// initSites precomputes the device's fault-site names.
func (d *SSD) initSites() {
	d.siteMedia = faults.DeviceSite(d.cfg.Name, faults.KindMedia)
	d.siteTimeout = faults.DeviceSite(d.cfg.Name, faults.KindTimeout)
	d.siteDelay = faults.DeviceSite(d.cfg.Name, faults.KindDelay)
}

// initMetrics resolves the device's metric series from the active
// registry (nil handles when metrics are off).
func (d *SSD) initMetrics() {
	d.mReads = metrics.GetCounter("device_ops_total", "dev", d.cfg.Name, "op", "read")
	d.mWrites = metrics.GetCounter("device_ops_total", "dev", d.cfg.Name, "op", "write")
	d.mFlushes = metrics.GetCounter("device_ops_total", "dev", d.cfg.Name, "op", "flush")
	d.mBytesRead = metrics.GetCounter("device_bytes_total", "dev", d.cfg.Name, "dir", "read")
	d.mBytesWrite = metrics.GetCounter("device_bytes_total", "dev", d.cfg.Name, "dir", "write")
	d.mErrors = metrics.GetCounter("device_errors_total", "dev", d.cfg.Name)
	d.mQueues = metrics.GetGauge("device_queues", "dev", d.cfg.Name)
}

// SetInjector attaches the machine's fault plane. Virtual functions
// carved afterwards inherit it.
func (d *SSD) SetInjector(inj *faults.Injector) { d.inj = inj }

// Carve creates an SR-IOV-style virtual function: an SSD exposing the
// sector window [baseSector, baseSector+sectors) of parent as an
// isolated device with its own queues and DevID, while sharing the
// parent's media channels (contention is real) and backing store.
// Block-level isolation between VFs is exactly the paper's §5.2 model
// — file sharing across VMs is impossible by construction.
func Carve(s *sim.Sim, parent *SSD, name string, devID uint8, baseSector, sectors int64) (*SSD, error) {
	if baseSector < 0 || sectors <= 0 || baseSector+sectors > parent.Sectors() {
		return nil, fmt.Errorf("device: VF window [%d,+%d) outside parent %d", baseSector, sectors, parent.Sectors())
	}
	cfg := parent.cfg
	cfg.Name = name
	cfg.DevID = devID
	cfg.CapacityBytes = sectors * storage.SectorSize
	vf := &SSD{
		sim:           s,
		cfg:           cfg,
		store:         parent.store,
		mmu:           parent.mmu,
		arrival:       s.NewCond(),
		arb:           NewFlatRR(),
		channels:      parent.channels, // VFs contend for the same media
		writesDrained: s.NewCond(),
		opsByQ:        make(map[int]int64),
		window:        parent.window + baseSector,
		inj:           parent.inj, // VFs share the machine's fault plane
	}
	vf.initSites()
	vf.initMetrics()
	vf.initHotPath()
	s.SpawnOn(cfg.Shard, cfg.Name+"-dispatch", vf.dispatch)
	return vf, nil
}

// WindowedStore returns the sector space this device actually
// addresses — the parent store for a physical function, a bounded
// view for a virtual function. Boot-time tooling (mkfs, mount) uses
// it so a guest's file system lands inside its window.
func (d *SSD) WindowedStore() storage.SectorIO {
	if d.window == 0 && d.Sectors() == d.store.Sectors() {
		return d.store
	}
	v, err := storage.NewView(d.store, d.window, d.Sectors())
	if err != nil {
		panic(err) // Carve validated the window
	}
	return v
}

// AttachIOMMU wires the device's ATS port to an IOMMU, enabling VBA
// commands.
func (d *SSD) AttachIOMMU(u *iommu.IOMMU) { d.mmu = u }

// IOMMU returns the attached translation agent, or nil.
func (d *SSD) IOMMU() *iommu.IOMMU { return d.mmu }

// Config returns the device configuration.
func (d *SSD) Config() Config { return d.cfg }

// Store exposes the backing medium (for image building and tests).
func (d *SSD) Store() *storage.Store { return d.store }

// Stats returns a copy of the activity counters.
func (d *SSD) Stats() Stats { return d.stats }

// OpsOnQueue reports commands served from queue id (fairness tests).
func (d *SSD) OpsOnQueue(id int) int64 { return d.opsByQ[id] }

// Sectors reports the device capacity in sectors.
func (d *SSD) Sectors() int64 { return d.cfg.CapacityBytes / storage.SectorSize }

// Claim binds the device exclusively to one userspace driver. A
// second claim fails — this is why SPDK cannot share the device
// between processes (paper §2, Fig. 10).
func (d *SSD) Claim(owner string) error {
	if d.claimer != "" {
		return fmt.Errorf("device %s: already claimed by %s", d.cfg.Name, d.claimer)
	}
	d.claimer = owner
	return nil
}

// Release drops an exclusive claim.
func (d *SSD) Release(owner string) {
	if d.claimer == owner {
		d.claimer = ""
	}
}

// Claimer reports the current exclusive owner, if any.
func (d *SSD) Claimer() string { return d.claimer }

// CreateQueue registers a new queue pair with the device. The PASID
// is bound to the queue at creation time, as the BypassD kernel driver
// does, so the IOMMU knows whose page tables to walk (paper §3.3).
func (d *SSD) CreateQueue(pasid uint32, depth int) (*nvme.QueuePair, error) {
	if len(d.queues) >= d.cfg.MaxQueues {
		return nil, fmt.Errorf("device %s: queue limit reached", d.cfg.Name)
	}
	q := nvme.NewQueuePair(d.sim, len(d.queues)+1, pasid, depth)
	// All queues ring the shared arrival doorbell so the dispatcher
	// wakes regardless of which queue was written.
	q.Doorbell = d.arrival
	d.queues = append(d.queues, q)
	d.mQueues.Add(1)
	return q, nil
}

// DestroyQueue closes a queue pair.
func (d *SSD) DestroyQueue(q *nvme.QueuePair) {
	for i, x := range d.queues {
		if x == q {
			d.queues = append(d.queues[:i], d.queues[i+1:]...)
			d.mQueues.Add(-1)
			break
		}
	}
	q.Close()
}

// SetArbiter installs a queue arbitration policy. Call it at machine
// setup, before traffic: swapping arbiters mid-flight is legal but
// the new policy starts with fresh state (cursor, credits, buckets).
func (d *SSD) SetArbiter(a Arbiter) {
	if a == nil {
		a = NewFlatRR()
	}
	d.arb = a
	d.arbRR, _ = a.(*FlatRR)
	d.arrival.Broadcast() // re-arbitrate under the new policy
}

// ArbiterName reports the installed arbitration policy.
func (d *SSD) ArbiterName() string { return d.arb.Name() }

// arbitrate pops the next command the arbiter grants, reporting
// ok=false when nothing is eligible (and the refill instant to retry
// at, if the arbiter is holding back a rate-limited queue).
func (d *SSD) arbitrate() (command, bool, sim.Time) {
	for {
		var (
			idx     int
			ok      bool
			retryAt sim.Time
		)
		if d.arbRR != nil {
			// Concrete-type fast path for the default policy: this runs
			// once per admitted command, and the interface dispatch (plus
			// the inlining it blocks) is measurable at Fig. 9 rates.
			idx, ok, retryAt = d.arbRR.Next(d.now(), d.queues)
		} else {
			idx, ok, retryAt = d.arb.Next(d.now(), d.queues)
		}
		if !ok {
			return command{}, false, retryAt
		}
		q := d.queues[idx]
		if e, popped := q.PopSQE(); popped {
			return command{sqe: e, q: q}, true, 0
		}
		// The arbiter granted an empty queue (a buggy policy); spin
		// once more rather than fetch garbage.
	}
}

// scheduleWake arms a timer that rings the arrival doorbell at t, so
// a dispatcher parked on an all-throttled queue set re-arbitrates
// when the earliest token refills. Earlier pending timers win; a
// stale later timer fires a harmless spurious broadcast.
func (d *SSD) scheduleWake(t sim.Time) {
	if d.wakeAt != 0 && d.wakeAt <= t {
		return
	}
	d.wakeAt = t
	d.sim.AtOn(d.cfg.Shard, t, func() {
		if d.wakeAt == t {
			d.wakeAt = 0
		}
		d.arrival.Broadcast()
	})
}

// now is the device's local virtual time: its shard's clock. Under
// the coupled scheduler this equals the global clock; in a parallel
// epoch it is the correct per-device time.
func (d *SSD) now() sim.Time { return d.sim.ShardNow(d.cfg.Shard) }

// dispatch is the device's command-fetch engine: admit one command at
// a time, each onto a free internal channel.
func (d *SSD) dispatch(p *sim.Proc) {
	for {
		cmd, ok, retryAt := d.arbitrate()
		if !ok {
			if retryAt > 0 {
				d.scheduleWake(retryAt)
			}
			d.arrival.Wait(p)
			continue
		}
		if cmd.sqe.Opcode == nvme.OpWrite {
			// Counted at admission so a flush admitted later on
			// cannot overtake an in-flight write.
			d.writesInFlight++
		}
		d.channels.Acquire(p)
		cb := d.getCmd()
		*cb = cmd
		p.SpawnArg(d.chanName, d.serveFn, cb)
	}
}

// serviceTime returns the media time for a transfer.
func (d *SSD) serviceTime(op nvme.Opcode, bytes int64) sim.Time {
	switch op {
	case nvme.OpRead:
		return d.cfg.ReadBase + sim.Time(float64(bytes)/d.cfg.ReadBW)
	case nvme.OpWrite:
		return d.cfg.WriteBase + sim.Time(float64(bytes)/d.cfg.WriteBW)
	case nvme.OpWriteZeroes:
		return d.cfg.WriteBase // metadata-only on the device
	default:
		return 0
	}
}

// serve executes one admitted command on an internal channel.
func (d *SSD) serve(p *sim.Proc, cmd command) {
	e := cmd.sqe
	status := nvme.StatusSuccess
	sp := e.Span
	sp.ServiceStart(p.Now())
	// effTr is the translation time exposed inside the service window
	// (Fig. 5's "translate" phase): the full walk on reads and
	// serialized writes, only the non-overlapped excess on overlapped
	// writes, zero when no VBA is involved.
	var effTr sim.Time

	switch e.Opcode {
	case nvme.OpFlush:
		d.channels.Release() // flush does not occupy a media channel
		for d.writesInFlight > 0 {
			d.writesDrained.Wait(p)
		}
		p.Sleep(d.cfg.FlushLatency)
		d.stats.Flushes++
		d.mFlushes.Inc()
		sp.ServiceEnd(p.Now(), 0)
		d.complete(cmd, nvme.StatusSuccess)
		return

	case nvme.OpRead, nvme.OpWrite, nvme.OpWriteZeroes:
		if dl, ok := d.inj.FireDelayQ(d.siteDelay, cmd.q.ID); ok {
			// Injected latency spike: the command still succeeds.
			if dl == 0 {
				dl = 50 * sim.Microsecond
			}
			p.Sleep(dl)
		}
		if dl, ok := d.inj.FireDelayQ(d.siteTimeout, cmd.q.ID); ok {
			// Injected command timeout: the command hangs on the
			// channel, then completes with an error and no media
			// access, like a controller-side abort.
			if dl == 0 {
				dl = 500 * sim.Microsecond
			}
			p.Sleep(dl)
			status = nvme.StatusCommandTimeout
			break
		}
		segs, tlat, st := d.resolve(e, cmd.q.PASID)
		if st != nvme.StatusSuccess {
			// Translation failed: the error returns to the process
			// after the ATS exchange, without media access (§5.3).
			p.Sleep(tlat)
			effTr = tlat
			status = st
			break
		}
		bytes := e.Sectors * storage.SectorSize
		svc := d.serviceTime(e.Opcode, bytes)
		if e.Opcode == nvme.OpRead {
			// Reads serialize translation before media access: the
			// device needs block addresses before reading (§4.3).
			p.Sleep(tlat + svc)
			effTr = tlat
		} else if d.cfg.SerializeWriteTranslation {
			p.Sleep(tlat + svc)
			effTr = tlat
		} else {
			// Writes overlap translation with the host-to-device
			// data transfer, so they see no VBA overhead (§4.3);
			// only a walk outlasting the transfer is exposed.
			if tlat > svc {
				effTr = tlat - svc
				svc = tlat
			}
			p.Sleep(svc)
		}
		if d.inj.FireQ(d.siteMedia, cmd.q.ID) {
			// Injected media error after full service time. The
			// transfer does not happen, so a failed write leaves the
			// medium untouched and a retry observes a clean slate.
			status = nvme.StatusMediaError
			d.putSegs(segs)
			break
		}
		status = d.moveData(e, segs)
		d.putSegs(segs)

	default:
		status = nvme.StatusInvalidField
	}

	if e.Opcode == nvme.OpWrite {
		d.writesInFlight--
		if d.writesInFlight == 0 {
			d.writesDrained.Broadcast()
		}
	}
	d.channels.Release()
	sp.ServiceEnd(p.Now(), effTr)
	d.complete(cmd, status)
}

// getSegs returns an empty segment buffer, reusing a retired one when
// available.
func (d *SSD) getSegs() []iommu.Segment {
	if n := len(d.segFree); n > 0 {
		s := d.segFree[n-1]
		d.segFree = d.segFree[:n-1]
		return s[:0]
	}
	return make([]iommu.Segment, 0, 4)
}

// putSegs retires a segment buffer handed out by resolve.
func (d *SSD) putSegs(s []iommu.Segment) {
	if cap(s) > 0 {
		d.segFree = append(d.segFree, s[:0])
	}
}

// resolve produces the sector segments for a command, translating
// VBAs through the IOMMU when needed. The PASID comes from the queue
// the command arrived on, never from the (untrusted) SQE itself. It
// returns the translation latency the device must account for. The
// returned segments borrow a recycled buffer; the caller releases it
// with putSegs when the command retires.
func (d *SSD) resolve(e nvme.SQE, pasid uint32) ([]iommu.Segment, sim.Time, nvme.Status) {
	if !e.UseVBA {
		if e.SLBA < 0 || e.SLBA+e.Sectors > d.Sectors() {
			return nil, 0, nvme.StatusLBAOutOfRange
		}
		return append(d.getSegs(), iommu.Segment{Sector: d.window + e.SLBA, Sectors: e.Sectors}), 0, nvme.StatusSuccess
	}
	if d.mmu == nil {
		return nil, 0, nvme.StatusInvalidField
	}
	buf := d.getSegs()
	r := d.mmu.TranslateInto(iommu.Request{
		PASID: pasid,
		DevID: d.cfg.DevID,
		VBA:   e.VBA,
		Bytes: e.Sectors * storage.SectorSize,
		Write: e.Opcode != nvme.OpRead,
	}, buf)
	switch r.Status {
	case iommu.OK:
		// Translated addresses are device-relative (a guest's LBA
		// space); bound them to this function's window, then shift in
		// place.
		for i, s := range r.Segments {
			if s.Sector < 0 || s.Sector+s.Sectors > d.Sectors() {
				d.putSegs(r.Segments)
				return nil, r.Latency, nvme.StatusLBAOutOfRange
			}
			r.Segments[i].Sector = d.window + s.Sector
		}
		return r.Segments, r.Latency, nvme.StatusSuccess
	case iommu.Denied:
		d.putSegs(buf)
		return nil, r.Latency, nvme.StatusAccessDenied
	default:
		d.putSegs(buf)
		return nil, r.Latency, nvme.StatusTranslationFault
	}
}

// moveData performs the actual transfer between the DMA buffer and
// the medium.
func (d *SSD) moveData(e nvme.SQE, segs []iommu.Segment) nvme.Status {
	off := int64(0)
	for _, s := range segs {
		n := s.Sectors * storage.SectorSize
		var err error
		switch e.Opcode {
		case nvme.OpRead:
			err = d.store.ReadSectors(s.Sector, s.Sectors, e.Buf[off:off+n])
			d.stats.Reads++
			d.stats.BytesRead += n
			d.mReads.Inc()
			d.mBytesRead.Add(n)
		case nvme.OpWrite:
			err = d.store.WriteSectors(s.Sector, s.Sectors, e.Buf[off:off+n])
			d.stats.Writes++
			d.stats.BytesWrite += n
			d.mWrites.Inc()
			d.mBytesWrite.Add(n)
		case nvme.OpWriteZeroes:
			err = d.store.Zero(s.Sector, s.Sectors)
			d.stats.Writes++
			d.mWrites.Inc()
		}
		if err != nil {
			return nvme.StatusInternalError
		}
		off += n
	}
	return nvme.StatusSuccess
}

func (d *SSD) complete(cmd command, status nvme.Status) {
	if !status.OK() {
		d.stats.Faults++
		d.mErrors.Inc()
	}
	d.opsByQ[cmd.q.ID]++
	cmd.q.PostCQE(nvme.CQE{CID: cmd.sqe.CID, Status: status})
}
