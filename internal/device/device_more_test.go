package device

import (
	"testing"

	"repro/internal/nvme"
	"repro/internal/sim"
)

func TestQueueLimit(t *testing.T) {
	s := sim.New()
	cfg := OptaneP5800X(1 << 28)
	cfg.MaxQueues = 3
	d := New(s, cfg)
	for i := 0; i < 3; i++ {
		if _, err := d.CreateQueue(0, 4); err != nil {
			t.Fatalf("queue %d: %v", i, err)
		}
	}
	if _, err := d.CreateQueue(0, 4); err == nil {
		t.Fatal("queue beyond MaxQueues created")
	}
	s.Shutdown()
}

func TestInvalidOpcodeRejected(t *testing.T) {
	s := sim.New()
	d := New(s, OptaneP5800X(1<<28))
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 4)
		c := doIO(p, q, nvme.SQE{Opcode: nvme.Opcode(99), CID: 1})
		if c.Status != nvme.StatusInvalidField {
			t.Errorf("status = %v, want invalid-field", c.Status)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestZSSDAndTLCProfiles(t *testing.T) {
	for _, tc := range []struct {
		cfg     Config
		lo, hi  sim.Time
		devName string
	}{
		{ZSSD(1 << 28), 11 * sim.Microsecond, 13 * sim.Microsecond, "z-ssd"},
		{TLCFlash(1 << 28), 78 * sim.Microsecond, 81 * sim.Microsecond, "tlc-nvme"},
	} {
		s := sim.New()
		d := New(s, tc.cfg)
		var lat sim.Time
		s.Spawn("app", func(p *sim.Proc) {
			q, _ := d.CreateQueue(0, 4)
			buf := make([]byte, 4096)
			start := p.Now()
			doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 8, Buf: buf})
			lat = p.Now() - start
		})
		s.Run()
		if lat < tc.lo || lat > tc.hi {
			t.Errorf("%s 4K read = %v, want [%v, %v]", tc.devName, lat, tc.lo, tc.hi)
		}
		s.Shutdown()
	}
}

func TestCarveValidation(t *testing.T) {
	s := sim.New()
	parent := New(s, OptaneP5800X(1<<28))
	if _, err := Carve(s, parent, "bad", 9, -1, 100); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := Carve(s, parent, "bad", 9, 0, parent.Sectors()+1); err == nil {
		t.Error("oversized window accepted")
	}
	if _, err := Carve(s, parent, "ok", 9, 0, 1024); err != nil {
		t.Errorf("valid carve rejected: %v", err)
	}
	s.Shutdown()
}

func TestNestedCarveWindowsCompose(t *testing.T) {
	// A VF of a VF: windows add up.
	s := sim.New()
	parent := New(s, OptaneP5800X(1<<28))
	vf1, err := Carve(s, parent, "vf1", 9, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	vf2, err := Carve(s, vf1, "vf2", 10, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := vf2.CreateQueue(0, 4)
		w := make([]byte, 512)
		w[0] = 0x42
		doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 1, SLBA: 7, Sectors: 1, Buf: w})
		// vf2 sector 7 = parent sector 1000+500+7.
		r := make([]byte, 512)
		if err := parent.Store().ReadSectors(1507, 1, r); err != nil {
			t.Error(err)
			return
		}
		if r[0] != 0x42 {
			t.Errorf("nested window write landed wrong (byte %#x)", r[0])
		}
	})
	s.Run()
	s.Shutdown()
}

func TestWindowedStoreIdentityForPF(t *testing.T) {
	s := sim.New()
	d := New(s, OptaneP5800X(1<<28))
	if d.WindowedStore() != d.Store() {
		t.Fatal("physical function's windowed store should be the raw store")
	}
	vf, _ := Carve(s, d, "vf", 9, 64, 128)
	ws := vf.WindowedStore()
	if ws == nil || ws.Sectors() != 128 {
		t.Fatal("VF windowed store wrong span")
	}
	s.Shutdown()
}
