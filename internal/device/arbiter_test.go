package device

import (
	"testing"

	"repro/internal/nvme"
	"repro/internal/sim"
)

// preload creates n queues with depth entries each and submits depth
// 512 B reads per queue, so every queue is persistently non-empty
// until drained.
func preload(t *testing.T, d *SSD, qos []nvme.QoS, depth int) []*nvme.QueuePair {
	t.Helper()
	qs := make([]*nvme.QueuePair, len(qos))
	for i := range qos {
		q, err := d.CreateQueue(0, depth)
		if err != nil {
			t.Fatal(err)
		}
		q.QoS = qos[i]
		qs[i] = q
	}
	buf := make([]byte, 512)
	for _, q := range qs {
		for n := 0; n < depth; n++ {
			if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: uint16(n), SLBA: int64(n), Sectors: 1, Buf: buf}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return qs
}

// TestFlatRRSaturatedEqualService is the fairness regression test for
// the default arbiter: with every queue persistently non-empty, the
// starting-index rotation must hand out equal service counts — a scan
// that always restarted at index 0 would drain queue 1 first.
func TestFlatRRSaturatedEqualService(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	const depth = 256
	qs := preload(t, d, make([]nvme.QoS, 4), depth)

	// Mid-drain: roughly half the commands are done; every queue is
	// still backlogged, so service counts must match to within the
	// commands still in flight on the six channels.
	s.RunUntil(300 * sim.Microsecond)
	lo, hi := int64(1<<62), int64(0)
	for _, q := range qs {
		c := d.OpsOnQueue(q.ID)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi-lo > int64(d.Config().Channels) {
		t.Fatalf("saturated RR service counts spread [%d,%d], want equal within %d", lo, hi, d.Config().Channels)
	}

	s.Run()
	for _, q := range qs {
		if c := d.OpsOnQueue(q.ID); c != depth {
			t.Fatalf("queue %d served %d, want %d", q.ID, c, depth)
		}
	}
	s.Shutdown()
}

// TestWRRWeightedShares: backlogged queues receive grants in
// proportion to their QoS weights.
func TestWRRWeightedShares(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	d.SetArbiter(NewWRR())
	qs := preload(t, d, []nvme.QoS{{Weight: 3}, {Weight: 1}}, 400)

	// Short of the heavy queue's drain point, so both stay backlogged.
	s.RunUntil(150 * sim.Microsecond)
	heavy, light := d.OpsOnQueue(qs[0].ID), d.OpsOnQueue(qs[1].ID)
	if light == 0 {
		t.Fatal("light queue starved under WRR")
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("WRR share ratio = %.2f (%d/%d), want ~3", ratio, heavy, light)
	}
	s.Run()
	s.Shutdown()
}

// TestWRREqualWeightsEqualService: with uniform weights the fair
// arbiter degenerates to round-robin service counts.
func TestWRREqualWeightsEqualService(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	d.SetArbiter(NewWRR())
	qs := preload(t, d, make([]nvme.QoS, 4), 256)

	s.RunUntil(300 * sim.Microsecond)
	lo, hi := int64(1<<62), int64(0)
	for _, q := range qs {
		c := d.OpsOnQueue(q.ID)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi-lo > int64(d.Config().Channels) {
		t.Fatalf("equal-weight WRR service counts spread [%d,%d]", lo, hi)
	}
	s.Run()
	s.Shutdown()
}

// TestTokenPrioStrictPriority: a backlogged priority-0 queue starves a
// backlogged priority-1 queue until it drains.
func TestTokenPrioStrictPriority(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	d.SetArbiter(NewTokenPrio())
	qs := preload(t, d, []nvme.QoS{{Priority: 0}, {Priority: 1}}, 64)

	// ~42 grants fit in 25µs on six 3.5µs channels: all must go to
	// the high-priority queue while it is still backlogged.
	s.RunUntil(25 * sim.Microsecond)
	if hi := d.OpsOnQueue(qs[0].ID); hi < 30 {
		t.Fatalf("priority-0 queue served %d in 25µs, want ≥30", hi)
	}
	if lo := d.OpsOnQueue(qs[1].ID); lo != 0 {
		t.Fatalf("priority-1 queue served %d while priority-0 backlogged, want 0", lo)
	}
	s.Run()
	if a, b := d.OpsOnQueue(qs[0].ID), d.OpsOnQueue(qs[1].ID); a != 64 || b != 64 {
		t.Fatalf("final service counts %d/%d, want 64/64", a, b)
	}
	s.Shutdown()
}

// TestTokenPrioRateLimit: a rate-capped queue is held to its token
// rate while an uncapped queue soaks up the rest of the device.
func TestTokenPrioRateLimit(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	d.SetArbiter(NewTokenPrio())
	qs := preload(t, d, []nvme.QoS{
		{Priority: 1},
		{Priority: 0, RateOps: 100_000, Burst: 4},
	}, 400)

	const window = 1 * sim.Millisecond
	s.RunUntil(window)
	capped := d.OpsOnQueue(qs[1].ID)
	// 100k ops/s over 1ms = 100 tokens, plus the burst allowance.
	if capped < 90 || capped > 110 {
		t.Fatalf("rate-capped queue served %d in %v, want ~100-104", capped, window)
	}
	if open := d.OpsOnQueue(qs[0].ID); open < 3*capped {
		t.Fatalf("uncapped queue served %d vs capped %d, want the spare bandwidth", open, capped)
	}
	s.Run()
	s.Shutdown()
}

// TestTokenPrioRefillWake: when every backlogged queue is throttled,
// the dispatcher must arm a refill timer and finish the work — a
// doorbell-only dispatcher would park forever.
func TestTokenPrioRefillWake(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	d.SetArbiter(NewTokenPrio())
	// Burst 1 and one token per 10µs: after the first command the
	// queue is always throttled when the dispatcher looks.
	qs := preload(t, d, []nvme.QoS{{RateOps: 100_000, Burst: 1}}, 8)

	s.Run()
	if c := d.OpsOnQueue(qs[0].ID); c != 8 {
		t.Fatalf("served %d of 8 through refill wakes", c)
	}
	// Seven refills at 10µs each bound the finish time from below.
	if s.Now() < 70*sim.Microsecond {
		t.Fatalf("finished at %v, want ≥70µs (rate limit not enforced)", s.Now())
	}
	s.Shutdown()
}

// TestArbiterZeroAllocHotPath asserts the QoS plane adds zero
// allocations per grant in steady state, for every arbiter. Part of
// the bench-check gate (see Makefile).
func TestArbiterZeroAllocHotPath(t *testing.T) {
	s := sim.New()
	defer s.Shutdown()
	buf := make([]byte, 512)
	for _, arb := range []Arbiter{
		NewFlatRR(),
		NewWRR(),
		NewTokenPrio(),
	} {
		qs := make([]*nvme.QueuePair, 4)
		for i := range qs {
			qs[i] = nvme.NewQueuePair(s, i+1, 0, 64)
			qs[i].QoS = nvme.QoS{Weight: i + 1, Priority: i % 2, RateOps: 1e9, Burst: 8}
			for n := 0; n < 8; n++ {
				if err := qs[i].Submit(nvme.SQE{Opcode: nvme.OpRead, CID: uint16(n), SLBA: 0, Sectors: 1, Buf: buf}); err != nil {
					t.Fatal(err)
				}
			}
		}
		now := sim.Time(0)
		grant := func() {
			now += 100
			idx, ok, _ := arb.Next(now, qs)
			if !ok {
				t.Fatalf("%s: no grant with backlogged queues", arb.Name())
			}
			e, _ := qs[idx].PopSQE()
			if err := qs[idx].Submit(e); err != nil {
				t.Fatal(err)
			}
		}
		grant() // warm lazily created per-queue state
		if avg := testing.AllocsPerRun(200, grant); avg != 0 {
			t.Errorf("%s: %.1f allocs per grant in steady state, want 0", arb.Name(), avg)
		}
	}
}
