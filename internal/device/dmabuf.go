package device

import "sync"

// DMA buffer recycling. Every UserLib thread and SPDK queue pins a
// megabyte-class DMA buffer; experiment sweeps boot thousands of them,
// and allocating (and zeroing) each one dominated boot cost. Buffers
// recycle dirty — every path copies into the buffer before the device
// (or the user) reads back out of it — so reuse needs no clearing.
//
// One pool per size class (size -> *sync.Pool of *[]byte); distinct
// configs see distinct pools, and an odd one-off size simply misses.
var dmaPools sync.Map

// GetDMABuf returns a buffer of the given size, recycled when one is
// free. Contents are unspecified.
func GetDMABuf(size int) []byte {
	pv, _ := dmaPools.Load(size)
	if pv == nil {
		pv, _ = dmaPools.LoadOrStore(size, &sync.Pool{})
	}
	if v := pv.(*sync.Pool).Get(); v != nil {
		return *(v.(*[]byte))
	}
	return make([]byte, size)
}

// PutDMABuf returns a buffer obtained from GetDMABuf to its pool. The
// caller must not use the buffer afterwards.
func PutDMABuf(b []byte) {
	if len(b) == 0 {
		return
	}
	pv, _ := dmaPools.Load(len(b))
	if pv != nil {
		pv.(*sync.Pool).Put(&b)
	}
}

// ReleaseResources returns the device's recyclable boot-time
// structures — every registered queue pair's rings — to their shared
// pools. Only a teardown path that owns the whole machine
// (core.System.Close) may call it; the device must not be used
// afterwards.
func (d *SSD) ReleaseResources() {
	for _, q := range d.queues {
		q.ReleaseRings()
	}
	d.queues = nil
}
