package device

import "fmt"

// Fleet DevID assignment. FTEs carry a DevID precisely so "a
// malicious process does not use the VBA to access files on another
// device" (paper §3.4, Fig. 3) — but the check compares IDs, so two
// devices sharing one make it a silent no-op. The presets hardcode
// DevIDs (OptaneP5800X = 1, ZSSD = 2, TLCFlash = 3), which is exactly
// the trap: any fleet built from N copies of one preset collides.
// Topology boot routes every fleet through AssignDevIDs before
// construction and ValidateDevIDs after, so a duplicate can never
// reach a running machine.

// AssignDevIDs gives every config in a fleet a unique device
// identifier. A fleet whose caller-set IDs are already pairwise
// distinct and nonzero keeps them (mixed-preset fleets, and the
// single-device default — byte-identity with the historical boot);
// any collision or zero reassigns the whole fleet sequentially from 1
// in fleet order, so the result never depends on which entries
// clashed. Errors on an empty fleet or one larger than a uint8 can
// name.
func AssignDevIDs(cfgs []Config) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("device: empty fleet")
	}
	if len(cfgs) > 255 {
		return fmt.Errorf("device: fleet of %d devices exceeds the 255 DevIDs a uint8 carries", len(cfgs))
	}
	if ValidateDevIDs(cfgs) == nil {
		return nil
	}
	for i := range cfgs {
		cfgs[i].DevID = uint8(i + 1)
	}
	return nil
}

// ValidateDevIDs returns an error when any config carries DevID 0 or
// two configs share an ID — the condition under which the Fig. 3
// cross-device VBA denial can never fire between those devices.
func ValidateDevIDs(cfgs []Config) error {
	seen := make(map[uint8]string, len(cfgs))
	for _, c := range cfgs {
		if c.DevID == 0 {
			return fmt.Errorf("device: %s has no DevID", c.Name)
		}
		if prev, dup := seen[c.DevID]; dup {
			return fmt.Errorf("device: duplicate DevID %d (%s and %s) — cross-device VBA denial would be a no-op", c.DevID, prev, c.Name)
		}
		seen[c.DevID] = c.Name
	}
	return nil
}
