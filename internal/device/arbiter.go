// Device-side queue arbitration. The paper bypasses the kernel I/O
// scheduler and leans on NVMe queue arbitration for inter-process
// fairness (§3.7); this file makes that mechanism pluggable so the
// tenancy plane can ablate it: flat round-robin (the NVMe default and
// this simulator's historical behaviour), weighted round-robin over
// per-queue nvme.QoS weights (NVMe's optional WRR arbitration), and a
// strict-priority arbiter with per-queue token-bucket rate limiting
// (the shape of an SSD enforcing tenant rate caps in hardware).
//
// Arbiters only pick WHICH queue the dispatcher fetches from next;
// admission to a media channel, service timing, and completion are
// unchanged. The default FlatRR arbiter reproduces the pre-arbiter
// scan exactly — same grant order, same virtual-time behaviour, zero
// allocations per grant — so every experiment that does not opt into
// QoS is byte-identical to the flat model.
package device

import (
	"repro/internal/nvme"
	"repro/internal/sim"
)

// Arbiter selects the next submission queue the device fetches from.
// Implementations are consulted with the full queue slice each time a
// grant is possible; they must not retain the slice. The simulation
// runs one goroutine at a time, so arbiters need no locking, but they
// must be deterministic: state may depend only on the sequence of
// Next calls and the queue contents observed through them.
type Arbiter interface {
	Name() string
	// Next returns the index of the queue to fetch from. ok=false
	// means no queue is currently eligible. When ok=false and some
	// queue is non-empty but rate-limited, retryAt is the earliest
	// virtual time a token refill makes a queue eligible (0 when
	// there is nothing to wait for); the dispatcher re-arbitrates
	// then even without a new doorbell.
	Next(now sim.Time, queues []*nvme.QueuePair) (idx int, ok bool, retryAt sim.Time)
}

// FlatRR is the default arbiter: scan queues round-robin from a
// cursor, grant the first non-empty one, restart the next scan just
// past it. This is exactly the device's historical arbitrate() loop.
type FlatRR struct {
	cursor int
}

// NewFlatRR returns the default flat round-robin arbiter.
func NewFlatRR() *FlatRR { return &FlatRR{} }

func (a *FlatRR) Name() string { return "rr" }

func (a *FlatRR) Next(_ sim.Time, queues []*nvme.QueuePair) (int, bool, sim.Time) {
	n := len(queues)
	for i := 0; i < n; i++ {
		idx := (a.cursor + i) % n
		if queues[idx].SQLen() > 0 {
			a.cursor = (idx + 1) % n
			return idx, true, 0
		}
	}
	return 0, false, 0
}

// WRR is weighted fair arbitration over per-queue QoS weights,
// implemented as start-time fair queueing: each queue carries a
// virtual tag that advances by 1/weight per grant, and the non-empty
// queue with the smallest prospective finish tag wins (round-robin
// tie-break). A queue with weight w therefore receives w/Σweights of
// the grants when all queues are backlogged — and, unlike credit-per-
// visit WRR, a lightly loaded high-weight queue still jumps ahead of
// backlogged weight-1 queues even when it never holds more than one
// command (the shape of this simulator's synchronous per-thread
// queues). Idle queues earn nothing: a stale tag is clamped to the
// current virtual time on reactivation, so there is no catch-up
// monopoly.
type WRR struct {
	cursor int
	vtime  float64
	st     map[*nvme.QueuePair]*wrrState
}

// wrrState is a queue's fair-queueing tag. The tag is clamped to the
// arbiter's virtual time only on an idle→active transition — while a
// queue stays backlogged its tag is its service credit, and losing a
// scan must not erase it (re-clamping every scan starves low-weight
// queues).
type wrrState struct {
	tag    float64
	active bool
}

// NewWRR returns a weighted fair arbiter; weights come from each
// queue's QoS class (absent/zero weight counts as 1).
func NewWRR() *WRR { return &WRR{st: make(map[*nvme.QueuePair]*wrrState)} }

func (a *WRR) Name() string { return "wrr" }

func weightOf(q *nvme.QueuePair) int {
	if w := q.QoS.Weight; w > 0 {
		return w
	}
	return 1
}

func (a *WRR) Next(_ sim.Time, queues []*nvme.QueuePair) (int, bool, sim.Time) {
	n := len(queues)
	if n == 0 {
		return 0, false, 0
	}
	if a.cursor >= n {
		a.cursor = 0
	}
	best := -1
	var bestState *wrrState
	var bestFinish float64
	for i := 0; i < n; i++ {
		idx := (a.cursor + i) % n
		q := queues[idx]
		st := a.st[q]
		if st == nil {
			st = &wrrState{}
			a.st[q] = st
		}
		if q.SQLen() == 0 {
			st.active = false
			continue
		}
		if !st.active {
			if st.tag < a.vtime {
				st.tag = a.vtime
			}
			st.active = true
		}
		finish := st.tag + 1/float64(weightOf(q))
		if best == -1 || finish < bestFinish {
			best, bestState, bestFinish = idx, st, finish
		}
	}
	if best == -1 {
		return 0, false, 0
	}
	if bestState.tag > a.vtime {
		a.vtime = bestState.tag
	}
	bestState.tag = bestFinish
	a.cursor = (best + 1) % n
	return best, true, 0
}

// TokenPrio is strict-priority arbitration with per-queue token-bucket
// rate limiting: among non-empty queues whose bucket holds a token
// (queues without a RateOps cap always do), the lowest QoS.Priority
// wins, round-robin within a priority level. When every backlogged
// queue is throttled, Next reports the earliest refill instant so the
// dispatcher can sleep exactly until a token appears.
type TokenPrio struct {
	cursor  int
	buckets map[*nvme.QueuePair]*bucket
}

// DefaultBurst is the token-bucket depth for rate-limited queues that
// leave QoS.Burst unset.
const DefaultBurst = 16

type bucket struct {
	tokens float64
	last   sim.Time
}

// NewTokenPrio returns a strict-priority + token-bucket arbiter.
func NewTokenPrio() *TokenPrio {
	return &TokenPrio{buckets: make(map[*nvme.QueuePair]*bucket)}
}

func (a *TokenPrio) Name() string { return "prio" }

// eligible reports whether q may be granted at now; when throttled it
// returns the virtual time its next token arrives.
func (a *TokenPrio) eligible(q *nvme.QueuePair, now sim.Time) (bool, sim.Time) {
	rate := q.QoS.RateOps
	if rate <= 0 {
		return true, 0
	}
	b := a.buckets[q]
	burst := q.QoS.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	if b == nil {
		b = &bucket{tokens: float64(burst), last: now}
		a.buckets[q] = b
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * rate / 1e9
		if b.tokens > float64(burst) {
			b.tokens = float64(burst)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		return true, 0
	}
	// Nanoseconds until the deficit refills, rounded up.
	need := (1 - b.tokens) * 1e9 / rate
	at := now + sim.Time(need) + 1
	return false, at
}

func (a *TokenPrio) Next(now sim.Time, queues []*nvme.QueuePair) (int, bool, sim.Time) {
	n := len(queues)
	if n == 0 {
		return 0, false, 0
	}
	if a.cursor >= n {
		a.cursor = 0
	}
	best := -1
	bestPrio := 0
	var retryAt sim.Time
	for i := 0; i < n; i++ {
		idx := (a.cursor + i) % n
		q := queues[idx]
		if q.SQLen() == 0 {
			continue
		}
		ok, at := a.eligible(q, now)
		if !ok {
			if retryAt == 0 || at < retryAt {
				retryAt = at
			}
			continue
		}
		if best == -1 || q.QoS.Priority < bestPrio {
			best, bestPrio = idx, q.QoS.Priority
		}
	}
	if best == -1 {
		return 0, false, retryAt
	}
	q := queues[best]
	if q.QoS.RateOps > 0 {
		a.buckets[q].tokens--
	}
	a.cursor = (best + 1) % n
	return best, true, 0
}

// ArbiterByName maps a config string to a fresh arbiter: "" or "rr"
// (flat round-robin, the default), "wrr", "prio". Unknown names fall
// back to flat round-robin.
func ArbiterByName(name string) Arbiter {
	switch name {
	case "wrr":
		return NewWRR()
	case "prio":
		return NewTokenPrio()
	default:
		return NewFlatRR()
	}
}
