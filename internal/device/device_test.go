package device

import (
	"bytes"
	"testing"

	"repro/internal/iommu"
	"repro/internal/nvme"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/storage"
)

const capBytes = 1 << 30

func newSSD(s *sim.Sim) *SSD {
	return New(s, OptaneP5800X(capBytes))
}

// doIO submits one command and busy-waits for its completion.
func doIO(p *sim.Proc, q *nvme.QueuePair, e nvme.SQE) nvme.CQE {
	if err := q.Submit(e); err != nil {
		panic(err)
	}
	for {
		if c, ok := q.PopCQE(); ok {
			return c
		}
		q.CQReady.Wait(p)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	var got []byte
	s.Spawn("app", func(p *sim.Proc) {
		q, err := d.CreateQueue(0, 16)
		if err != nil {
			t.Error(err)
			return
		}
		w := make([]byte, 4096)
		for i := range w {
			w[i] = byte(i * 7)
		}
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 1, SLBA: 80, Sectors: 8, Buf: w})
		if !c.Status.OK() {
			t.Errorf("write status %v", c.Status)
		}
		r := make([]byte, 4096)
		c = doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 2, SLBA: 80, Sectors: 8, Buf: r})
		if !c.Status.OK() {
			t.Errorf("read status %v", c.Status)
		}
		got = r
		if !bytes.Equal(w, r) {
			t.Error("data mismatch through device")
		}
	})
	s.Run()
	if got == nil {
		t.Fatal("app never completed")
	}
	s.Shutdown()
}

func Test4KReadDeviceTime(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	var lat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		start := p.Now()
		doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 8, Buf: buf})
		lat = p.Now() - start
	})
	s.Run()
	// Table 1: device time for a 4 KiB read ≈ 4020 ns.
	if lat < 4000 || lat > 4100 {
		t.Fatalf("4K read device time = %v, want ~4.02µs", lat)
	}
	s.Shutdown()
}

func TestLargeReadBandwidth(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	var lat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 128*1024)
		start := p.Now()
		doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 256, Buf: buf})
		lat = p.Now() - start
	})
	s.Run()
	// 3435 + 131072/7.0 ≈ 22.2µs
	if lat < 21*sim.Microsecond || lat > 24*sim.Microsecond {
		t.Fatalf("128K read time = %v, want ~22µs", lat)
	}
	s.Shutdown()
}

func TestIOPSSaturation(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	const threads = 24
	const opsEach = 200
	done := 0
	for i := 0; i < threads; i++ {
		s.Spawn("worker", func(p *sim.Proc) {
			q, _ := d.CreateQueue(0, 16)
			buf := make([]byte, 4096)
			for n := 0; n < opsEach; n++ {
				doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: uint16(n), SLBA: int64(n * 8), Sectors: 8, Buf: buf})
			}
			done++
		})
	}
	s.Run()
	if done != threads {
		t.Fatalf("done = %d", done)
	}
	iops := float64(threads*opsEach) / s.Now().Seconds()
	// Six channels at 4.02µs each => ~1.49M IOPS ceiling.
	if iops < 1.3e6 || iops > 1.6e6 {
		t.Fatalf("saturated IOPS = %.0f, want ~1.49M", iops)
	}
	s.Shutdown()
}

func TestRoundRobinFairness(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	// One process floods with deep queues; another issues QD-1 reads.
	// Round-robin arbitration must keep the light process's latency
	// bounded near (channels busy) not (queue drained).
	var lightLat sim.Time
	var lightOps int
	s.Spawn("flood", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 256)
		buf := make([]byte, 4096)
		outstanding := 0
		for n := 0; n < 2000; n++ {
			for outstanding >= 64 {
				if _, ok := q.PopCQE(); ok {
					outstanding--
					continue
				}
				q.CQReady.Wait(p)
			}
			if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: uint16(n), SLBA: int64(n%1000) * 8, Sectors: 8, Buf: buf}); err != nil {
				t.Error(err)
				return
			}
			outstanding++
		}
	})
	s.Spawn("light", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		p.Sleep(100 * sim.Microsecond) // let the flood build up
		var total sim.Time
		const ops = 50
		for n := 0; n < ops; n++ {
			st := p.Now()
			doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: uint16(n), SLBA: 8, Sectors: 8, Buf: buf})
			total += p.Now() - st
			lightOps++
		}
		lightLat = total / ops
	})
	s.Run()
	if lightOps != 50 {
		t.Fatalf("light process finished %d ops", lightOps)
	}
	// With RR arbitration the light queue waits at most ~one grant
	// cycle; without it, it would sit behind 64 queued commands
	// (~40µs+). Allow generous headroom.
	if lightLat > 25*sim.Microsecond {
		t.Fatalf("light process latency %v under flood, want < 25µs (RR fairness)", lightLat)
	}
	s.Shutdown()
}

func TestFlushWaitsForWrites(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	var flushDone, writeDone sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		if err := q.Submit(nvme.SQE{Opcode: nvme.OpWrite, CID: 1, SLBA: 0, Sectors: 8, Buf: buf}); err != nil {
			t.Error(err)
			return
		}
		if err := q.Submit(nvme.SQE{Opcode: nvme.OpFlush, CID: 2}); err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < 2; {
			c, ok := q.PopCQE()
			if !ok {
				q.CQReady.Wait(p)
				continue
			}
			n++
			switch c.CID {
			case 1:
				writeDone = p.Now()
			case 2:
				flushDone = p.Now()
			}
		}
	})
	s.Run()
	if flushDone <= writeDone {
		t.Fatalf("flush (%v) completed before write (%v)", flushDone, writeDone)
	}
	if d.Stats().Flushes != 1 {
		t.Fatalf("flushes = %d", d.Stats().Flushes)
	}
	s.Shutdown()
}

func TestLBAOutOfRange(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: d.Sectors(), Sectors: 8, Buf: buf})
		if c.Status != nvme.StatusLBAOutOfRange {
			t.Errorf("status = %v, want lba-out-of-range", c.Status)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestWriteZeroes(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		w := make([]byte, 4096)
		for i := range w {
			w[i] = 0xee
		}
		doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 1, SLBA: 16, Sectors: 8, Buf: w})
		doIO(p, q, nvme.SQE{Opcode: nvme.OpWriteZeroes, CID: 2, SLBA: 16, Sectors: 8, Buf: w})
		r := make([]byte, 4096)
		doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 3, SLBA: 16, Sectors: 8, Buf: r})
		for i, b := range r {
			if b != 0 {
				t.Errorf("byte %d = %#x after write-zeroes", i, b)
				return
			}
		}
	})
	s.Run()
	s.Shutdown()
}

// vbaSetup creates a device with IOMMU, a process page table mapping
// a 4-page file at base, and a queue bound to the PASID.
func vbaSetup(s *sim.Sim, rw bool) (*SSD, *nvme.QueuePair, uint64) {
	d := newSSD(s)
	u := iommu.New(iommu.DefaultConfig())
	d.AttachIOMMU(u)
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(d.Config().DevID, []int64{80, 88, 96, 104})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, rw); err != nil {
		panic(err)
	}
	u.RegisterPASID(7, tab)
	q, err := d.CreateQueue(7, 16)
	if err != nil {
		panic(err)
	}
	return d, q, base
}

func TestVBAReadWrite(t *testing.T) {
	s := sim.New()
	d, q, base := vbaSetup(s, true)
	s.Spawn("app", func(p *sim.Proc) {
		w := make([]byte, 4096)
		for i := range w {
			w[i] = byte(i)
		}
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 1, UseVBA: true, VBA: base + 4096, Sectors: 8, Buf: w})
		if !c.Status.OK() {
			t.Errorf("VBA write = %v", c.Status)
			return
		}
		// The write landed at the file's second page => sector 88.
		r := make([]byte, 4096)
		if err := d.Store().ReadSectors(88, 8, r); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(w, r) {
			t.Error("VBA write landed at wrong sectors")
		}
		// And reads back through the VBA path.
		r2 := make([]byte, 4096)
		c = doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 2, UseVBA: true, VBA: base + 4096, Sectors: 8, Buf: r2})
		if !c.Status.OK() || !bytes.Equal(w, r2) {
			t.Errorf("VBA read = %v", c.Status)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestVBAReadSerializesTranslation(t *testing.T) {
	s := sim.New()
	_, q, base := vbaSetup(s, true)
	var readLat, writeLat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		st := p.Now()
		doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf})
		readLat = p.Now() - st
		st = p.Now()
		doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 2, UseVBA: true, VBA: base, Sectors: 8, Buf: buf})
		writeLat = p.Now() - st
	})
	s.Run()
	// Read: 550ns translation + ~4020ns media, serialized (§4.3).
	if readLat < 4500 || readLat > 4700 {
		t.Fatalf("VBA read latency = %v, want ~4.57µs", readLat)
	}
	// Write: translation overlaps the transfer => no added delay.
	if writeLat > 4600 {
		t.Fatalf("VBA write latency = %v, want media time only", writeLat)
	}
	s.Shutdown()
}

func TestVBAPermissionDenied(t *testing.T) {
	s := sim.New()
	_, q, base := vbaSetup(s, false) // read-only mapping
	s.Spawn("app", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpWrite, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf})
		if c.Status != nvme.StatusAccessDenied {
			t.Errorf("status = %v, want access-denied", c.Status)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestVBAUnmappedFaults(t *testing.T) {
	s := sim.New()
	d, q, base := vbaSetup(s, true)
	s.Spawn("app", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		// Far beyond the 4-page file: no FTE.
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + 512*4096, Sectors: 8, Buf: buf})
		if c.Status != nvme.StatusTranslationFault {
			t.Errorf("status = %v, want translation-fault", c.Status)
		}
	})
	s.Run()
	if d.Stats().Faults != 1 {
		t.Fatalf("device fault count = %d", d.Stats().Faults)
	}
	s.Shutdown()
}

func TestVBAWithoutIOMMURejected(t *testing.T) {
	s := sim.New()
	d := newSSD(s) // no IOMMU attached
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		c := doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: 0x1000, Sectors: 8, Buf: buf})
		if c.Status != nvme.StatusInvalidField {
			t.Errorf("status = %v, want invalid-field", c.Status)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestQueueAccounting(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	s.Spawn("app", func(p *sim.Proc) {
		q1, _ := d.CreateQueue(0, 16)
		q2, _ := d.CreateQueue(0, 16)
		buf := make([]byte, 4096)
		doIO(p, q1, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 8, Buf: buf})
		doIO(p, q2, nvme.SQE{Opcode: nvme.OpRead, CID: 2, SLBA: 0, Sectors: 8, Buf: buf})
		doIO(p, q2, nvme.SQE{Opcode: nvme.OpRead, CID: 3, SLBA: 0, Sectors: 8, Buf: buf})
	})
	s.Run()
	if d.OpsOnQueue(1) != 1 || d.OpsOnQueue(2) != 2 {
		t.Fatalf("queue ops = %d/%d, want 1/2", d.OpsOnQueue(1), d.OpsOnQueue(2))
	}
	st := d.Stats()
	if st.Reads != 3 || st.BytesRead != 3*4096 {
		t.Fatalf("stats = %+v", st)
	}
	s.Shutdown()
}

func TestDestroyQueue(t *testing.T) {
	s := sim.New()
	d := newSSD(s)
	q, _ := d.CreateQueue(0, 4)
	d.DestroyQueue(q)
	if !q.Closed() {
		t.Fatal("queue not closed")
	}
	if err := q.Submit(nvme.SQE{Opcode: nvme.OpFlush}); err == nil {
		t.Fatal("submit to destroyed queue succeeded")
	}
	s.Shutdown()
}

func TestBootFromExistingStore(t *testing.T) {
	st := storage.NewBytes(capBytes)
	w := make([]byte, 512)
	w[0] = 0x42
	if err := st.WriteSectors(9, 1, w); err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	d := NewWithStore(s, OptaneP5800X(capBytes), st)
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.CreateQueue(0, 4)
		r := make([]byte, 512)
		doIO(p, q, nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 9, Sectors: 1, Buf: r})
		if r[0] != 0x42 {
			t.Error("prebuilt image not visible through device")
		}
	})
	s.Run()
	s.Shutdown()
}
