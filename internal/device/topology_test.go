package device

import (
	"strings"
	"testing"
)

func TestAssignDevIDsSamePresetFleet(t *testing.T) {
	cfgs := []Config{OptaneP5800X(1 << 28), OptaneP5800X(1 << 28), OptaneP5800X(1 << 28)}
	if err := AssignDevIDs(cfgs); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint8]bool)
	for i, c := range cfgs {
		if c.DevID == 0 {
			t.Errorf("config %d left with zero DevID", i)
		}
		if seen[c.DevID] {
			t.Errorf("config %d duplicates DevID %d", i, c.DevID)
		}
		seen[c.DevID] = true
	}
	if err := ValidateDevIDs(cfgs); err != nil {
		t.Fatalf("assigned fleet fails validation: %v", err)
	}
}

// Distinct caller-set IDs survive assignment untouched: mixed-preset
// fleets and the single-device default keep their historical identity.
func TestAssignDevIDsKeepsDistinctIDs(t *testing.T) {
	cfgs := []Config{OptaneP5800X(1 << 28), ZSSD(1 << 28), TLCFlash(1 << 28)}
	want := []uint8{cfgs[0].DevID, cfgs[1].DevID, cfgs[2].DevID}
	if err := AssignDevIDs(cfgs); err != nil {
		t.Fatal(err)
	}
	for i, c := range cfgs {
		if c.DevID != want[i] {
			t.Errorf("config %d DevID rewritten %d -> %d despite being distinct", i, want[i], c.DevID)
		}
	}
}

// Any collision reassigns the whole fleet in fleet order, so the
// outcome is independent of which entries clashed.
func TestAssignDevIDsReassignsWholeFleetOnCollision(t *testing.T) {
	cfgs := []Config{ZSSD(1 << 28), OptaneP5800X(1 << 28), ZSSD(1 << 28)}
	if err := AssignDevIDs(cfgs); err != nil {
		t.Fatal(err)
	}
	for i, c := range cfgs {
		if c.DevID != uint8(i+1) {
			t.Errorf("config %d DevID = %d, want sequential %d", i, c.DevID, i+1)
		}
	}
}

func TestAssignDevIDsErrors(t *testing.T) {
	if err := AssignDevIDs(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	big := make([]Config, 256)
	for i := range big {
		big[i] = OptaneP5800X(1 << 28)
	}
	if err := AssignDevIDs(big); err == nil {
		t.Error("fleet larger than the uint8 DevID space accepted")
	}
}

func TestValidateDevIDs(t *testing.T) {
	a, b := OptaneP5800X(1<<28), OptaneP5800X(1<<28)
	b.Name = "optane-2"
	if err := ValidateDevIDs([]Config{a, b}); err == nil {
		t.Error("duplicate DevIDs validated")
	} else if !strings.Contains(err.Error(), a.Name) || !strings.Contains(err.Error(), b.Name) {
		t.Errorf("duplicate error %q does not name both devices", err)
	}
	z := ZSSD(1 << 28)
	z.DevID = 0
	if err := ValidateDevIDs([]Config{z}); err == nil {
		t.Error("zero DevID validated")
	}
	if err := ValidateDevIDs([]Config{a, ZSSD(1 << 28)}); err != nil {
		t.Errorf("distinct fleet rejected: %v", err)
	}
}
