package device

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/nvme"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// TestCrossDeviceVBADenied verifies the DevID check of paper Fig. 3:
// two SSDs share one IOMMU; a file's FTEs carry device 1's ID, so a
// request carrying that VBA on device 2's queue must be denied — "a
// malicious process does not use the VBA to access files on another
// device" (§3.4).
func TestCrossDeviceVBADenied(t *testing.T) {
	s := sim.New()
	u := iommu.New(iommu.DefaultConfig())

	cfg1 := OptaneP5800X(1 << 28)
	cfg2 := OptaneP5800X(1 << 28)
	cfg2.Name = "optane-2"
	cfg2.DevID = 2
	d1 := New(s, cfg1)
	d2 := New(s, cfg2)
	d1.AttachIOMMU(u)
	d2.AttachIOMMU(u)

	// Map a file on device 1 into the process.
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(cfg1.DevID, []int64{80, 88})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(7, tab)

	// Put recognizable data at the same sectors of both devices.
	fill := func(d *SSD, b byte) {
		buf := make([]byte, 4096)
		for i := range buf {
			buf[i] = b
		}
		if err := d.Store().WriteSectors(80, 8, buf); err != nil {
			t.Fatal(err)
		}
	}
	fill(d1, 0x11)
	fill(d2, 0x22)

	s.Spawn("app", func(p *sim.Proc) {
		q1, _ := d1.CreateQueue(7, 8)
		q2, _ := d2.CreateQueue(7, 8)
		buf := make([]byte, 4096)
		do := func(q *nvme.QueuePair) nvme.Status {
			if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf}); err != nil {
				t.Error(err)
				return nvme.StatusInternalError
			}
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status
				}
				q.CQReady.Wait(p)
			}
		}
		// Legitimate device: success, device 1's data.
		if st := do(q1); !st.OK() {
			t.Errorf("read on owning device: %v", st)
			return
		}
		if buf[0] != 0x11 {
			t.Errorf("read returned %#x, want device 1's data", buf[0])
			return
		}
		// Same VBA on the other device: denied, no data moved.
		buf[0] = 0
		if st := do(q2); st != nvme.StatusAccessDenied {
			t.Errorf("cross-device read = %v, want access-denied", st)
			return
		}
		if buf[0] == 0x22 {
			t.Error("cross-device read leaked device 2's data")
		}
	})
	s.Run()
	if d2.Stats().BytesRead != 0 {
		t.Fatalf("device 2 moved %d bytes despite denial", d2.Stats().BytesRead)
	}
	s.Shutdown()
}

// TestTwoDevicesIndependentArbitration checks devices do not share
// dispatch state: saturating one leaves the other's latency intact.
func TestTwoDevicesIndependentArbitration(t *testing.T) {
	s := sim.New()
	d1 := New(s, OptaneP5800X(1<<28))
	cfg2 := OptaneP5800X(1 << 28)
	cfg2.Name = "optane-2"
	d2 := New(s, cfg2)

	var quietLat sim.Time
	s.Spawn("flood", func(p *sim.Proc) {
		q, _ := d1.CreateQueue(0, 256)
		buf := make([]byte, 4096)
		for i := 0; i < 500; i++ {
			if q.SQLen() < 128 {
				_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: uint16(i), SLBA: int64(i % 100 * 8), Sectors: 8, Buf: buf})
			}
			if _, ok := q.PopCQE(); !ok {
				q.CQReady.Wait(p)
			}
		}
	})
	s.Spawn("quiet", func(p *sim.Proc) {
		q, _ := d2.CreateQueue(0, 8)
		buf := make([]byte, 4096)
		p.Sleep(50 * sim.Microsecond)
		start := p.Now()
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 8, Buf: buf})
		for {
			if _, ok := q.PopCQE(); ok {
				break
			}
			q.CQReady.Wait(p)
		}
		quietLat = p.Now() - start
	})
	s.Run()
	if quietLat > 4200*sim.Nanosecond {
		t.Fatalf("idle device latency %v inflated by the other device's load", quietLat)
	}
	s.Shutdown()
}
