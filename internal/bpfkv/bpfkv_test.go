package bpfkv

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/sim"
)

func TestPlanGeometry(t *testing.T) {
	st, err := Plan(200000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != 6 {
		t.Fatalf("levels = %d", st.Levels)
	}
	if pow(uint64(st.Fanout), 6) < 200000 {
		t.Fatalf("fanout %d too small", st.Fanout)
	}
	if st.levelNodes[0] != 1 {
		t.Fatalf("root nodes = %d", st.levelNodes[0])
	}
	// Near the paper's scale: ~887M objects (31^6) fit a 6-level
	// index at our node capacity (the paper's 920M squeezes one more
	// entry per node by omitting the count header).
	big, err := Plan(880_000_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if big.Fanout > MaxFan {
		t.Fatalf("near-paper-scale fanout %d exceeds node capacity %d", big.Fanout, MaxFan)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(0, 6); err == nil {
		t.Fatal("empty store accepted")
	}
	if _, err := Plan(1<<40, 2); err == nil {
		t.Fatal("impossible geometry accepted")
	}
}

func TestLookupsAllModes(t *testing.T) {
	const objects = 5000
	for _, mode := range []string{"sync", "bypassd", "xrp", "spdk"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			sys, err := core.New(1 << 30)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Plan(objects, 6)
			if err != nil {
				t.Fatal(err)
			}
			sys.Sim.Spawn("main", func(p *sim.Proc) {
				pr := sys.NewProcess(ext4.Root)
				var c *Conn
				if mode == "spdk" {
					d, err := sys.SPDK()
					if err != nil {
						t.Error(err)
						return
					}
					q, err := d.NewQueue(p)
					if err != nil {
						t.Error(err)
						return
					}
					if err := st.LoadSPDK(p, d, q, "/kv.db"); err != nil {
						t.Error(err)
						return
					}
					io, err := sys.NewFileIO(p, pr, core.EngineSPDK)
					if err != nil {
						t.Error(err)
						return
					}
					c, err = st.NewConn(p, io)
					if err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := st.LoadFS(p, sys, "/kv.db"); err != nil {
						t.Error(err)
						return
					}
					if mode == "xrp" {
						var err error
						c, err = st.NewXRPConn(p, pr)
						if err != nil {
							t.Error(err)
							return
						}
					} else {
						io, err := sys.NewFileIO(p, pr, core.Engine(mode))
						if err != nil {
							t.Error(err)
							return
						}
						c, err = st.NewConn(p, io)
						if err != nil {
							t.Error(err)
							return
						}
					}
				}
				for _, k := range []uint64{0, 1, 4999, 2500, 371} {
					v, ios, err := c.Get(p, k)
					if err != nil {
						t.Errorf("get %d: %v", k, err)
						return
					}
					if v != ValueOf(k) {
						t.Errorf("get %d wrong value", k)
						return
					}
					if ios != st.Levels+1 {
						t.Errorf("get %d cost %d I/Os, want %d", k, ios, st.Levels+1)
					}
				}
				if _, _, err := c.Get(p, objects+1); err == nil {
					t.Error("out-of-range key succeeded")
				}
			})
			sys.Sim.Run()
			sys.Sim.Shutdown()
		})
	}
}

func TestLatencyOrderingPerLookup(t *testing.T) {
	const objects = 5000
	lat := map[string]sim.Time{}
	for _, mode := range []string{"sync", "xrp", "bypassd", "spdk"} {
		sys, err := core.New(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Plan(objects, 6)
		if err != nil {
			t.Fatal(err)
		}
		mode := mode
		sys.Sim.Spawn("main", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			var c *Conn
			switch mode {
			case "spdk":
				d, _ := sys.SPDK()
				q, _ := d.NewQueue(p)
				if err := st.LoadSPDK(p, d, q, "/kv.db"); err != nil {
					t.Error(err)
					return
				}
				io, _ := sys.NewFileIO(p, pr, core.EngineSPDK)
				c, _ = st.NewConn(p, io)
			case "xrp":
				if err := st.LoadFS(p, sys, "/kv.db"); err != nil {
					t.Error(err)
					return
				}
				c, _ = st.NewXRPConn(p, pr)
			default:
				if err := st.LoadFS(p, sys, "/kv.db"); err != nil {
					t.Error(err)
					return
				}
				io, _ := sys.NewFileIO(p, pr, core.Engine(mode))
				c, _ = st.NewConn(p, io)
			}
			const ops = 20
			start := p.Now()
			for i := 0; i < ops; i++ {
				if _, _, err := c.Get(p, uint64(i*251)%objects); err != nil {
					t.Error(err)
					return
				}
			}
			lat[mode] = (p.Now() - start) / ops
		})
		sys.Sim.Run()
		sys.Sim.Shutdown()
	}
	t.Logf("7-I/O lookup latency: %v", lat)
	// Fig. 15 ordering: spdk < bypassd < xrp < sync.
	if !(lat["spdk"] < lat["bypassd"] && lat["bypassd"] < lat["xrp"] && lat["xrp"] < lat["sync"]) {
		t.Fatalf("ordering violated: %v", lat)
	}
	// BypassD pays ~550ns per I/O over SPDK: ~4µs for 7 I/Os (§6.5).
	gap := lat["bypassd"] - lat["spdk"]
	if gap < 3*sim.Microsecond || gap > 5500*sim.Nanosecond {
		t.Fatalf("bypassd-spdk gap = %v, want ~4µs over 7 I/Os", gap)
	}
}

// Property: every key in a small store resolves to its exact value
// through the arithmetic index.
func TestAllKeysResolveProperty(t *testing.T) {
	sys, err := core.New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	const objects = 700 // not a power of the fanout: exercises partial nodes
	st, err := Plan(objects, 4)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	sys.Sim.Spawn("main", func(p *sim.Proc) {
		if err := st.LoadFS(p, sys, "/kv.db"); err != nil {
			t.Error(err)
			return
		}
		io, _ := sys.NewFileIO(p, sys.NewProcess(ext4.Root), core.EngineSync)
		c, err := st.NewConn(p, io)
		if err != nil {
			t.Error(err)
			return
		}
		for k := uint64(0); k < objects; k++ {
			v, _, err := c.Get(p, k)
			if err != nil || v != ValueOf(k) {
				t.Errorf("key %d: err=%v", k, err)
				failed = true
				return
			}
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
	if failed {
		t.Fatal("resolution failed")
	}
}

func TestPowQuick(t *testing.T) {
	f := func(b uint8, e uint8) bool {
		base, exp := uint64(b%7)+1, int(e%6)
		want := uint64(1)
		for i := 0; i < exp; i++ {
			want *= base
		}
		return pow(base, exp) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
