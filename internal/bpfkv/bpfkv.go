// Package bpfkv reimplements BPF-KV, the key-value store used to
// evaluate XRP (Zhong et al., OSDI '22) and reused by the paper for
// Fig. 15: a B+-tree index of 512-byte nodes over an unsorted log of
// small objects, all in one large file, with caching disabled so
// every lookup costs a fixed chain of I/Os (6 index levels + 1 data
// read = 7 I/Os in the paper's configuration).
package bpfkv

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/spdk"
	"repro/internal/storage"
)

// Geometry.
const (
	NodeSize = 512
	ValSize  = 64 // 8 B key + 56 B payload, as in BPF-KV
	MaxFan   = (NodeSize - 2) / 16
)

// Store describes a built BPF-KV image.
type Store struct {
	Path    string
	Objects uint64
	Fanout  int
	Levels  int // index levels; lookups cost Levels+1 I/Os

	levelStart []int64 // byte offset of each level's node array (0 = root level)
	levelNodes []int64 // node count per level
	logStart   int64
	FileBytes  int64
}

// ValueOf is the deterministic payload for key k.
func ValueOf(k uint64) [ValSize]byte {
	var v [ValSize]byte
	binary.LittleEndian.PutUint64(v[:], k)
	binary.LittleEndian.PutUint64(v[8:], k*0x9e3779b97f4a7c15)
	return v
}

// Plan computes the index geometry: the smallest fanout (>= 2) whose
// Levels-level index covers objects, mirroring the paper's 6-level
// index over 920 M objects at fanout ~31.
func Plan(objects uint64, levels int) (*Store, error) {
	if objects == 0 || levels < 1 {
		return nil, fmt.Errorf("bpfkv: bad plan")
	}
	fan := 2
	for pow(uint64(fan), levels) < objects {
		fan++
		if fan > MaxFan {
			return nil, fmt.Errorf("bpfkv: %d objects need more than %d levels", objects, levels)
		}
	}
	st := &Store{Objects: objects, Fanout: fan, Levels: levels}

	// Node counts bottom-up: the deepest index level points at
	// objects; each higher level points at the one below.
	counts := make([]int64, levels)
	n := int64(objects)
	for i := levels - 1; i >= 0; i-- {
		n = (n + int64(fan) - 1) / int64(fan)
		counts[i] = n
	}
	if counts[0] != 1 {
		// Fanout search guarantees the root fits one node.
		counts[0] = 1
	}
	st.levelNodes = counts
	st.levelStart = make([]int64, levels)
	off := int64(0)
	for i := 0; i < levels; i++ {
		st.levelStart[i] = off
		off += counts[i] * NodeSize
	}
	st.logStart = off
	st.FileBytes = off + int64(objects)*ValSize
	// Round to sector multiple.
	st.FileBytes = (st.FileBytes + storage.SectorSize - 1) &^ (storage.SectorSize - 1)
	return st, nil
}

func pow(b uint64, e int) uint64 {
	r := uint64(1)
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// BuildImage produces the file contents.
func (st *Store) BuildImage() []byte {
	img := make([]byte, st.FileBytes)
	le := binary.LittleEndian

	// Log: objects in key order (the "unsorted log" order is
	// irrelevant to the access path; dense keys keep the build
	// simple).
	for k := uint64(0); k < st.Objects; k++ {
		v := ValueOf(k)
		copy(img[st.logStart+int64(k)*ValSize:], v[:])
	}

	// Index levels bottom-up. Entry = (firstKey u64, ptr u64); at
	// the deepest level ptr is an object index, above it a node
	// index within the next level.
	keysPer := make([]uint64, st.Levels) // keys covered per node at each level
	span := uint64(st.Fanout)
	for i := st.Levels - 1; i >= 0; i-- {
		keysPer[i] = span
		span *= uint64(st.Fanout)
	}
	for lvl := st.Levels - 1; lvl >= 0; lvl-- {
		childSpan := keysPer[lvl] / uint64(st.Fanout)
		for node := int64(0); node < st.levelNodes[lvl]; node++ {
			base := st.levelStart[lvl] + node*NodeSize
			firstKey := uint64(node) * keysPer[lvl]
			cnt := 0
			for i := 0; i < st.Fanout; i++ {
				key := firstKey + uint64(i)*childSpan
				if key >= st.Objects {
					break
				}
				entOff := base + 2 + int64(cnt)*16
				le.PutUint64(img[entOff:], key)
				var ptr uint64
				if lvl == st.Levels-1 {
					ptr = key // object index
				} else {
					ptr = key / keysPer[lvl+1] // node index one level down
				}
				le.PutUint64(img[entOff+8:], ptr)
				cnt++
			}
			le.PutUint16(img[base:], uint16(cnt))
		}
	}
	return img
}

// searchNode returns the ptr of the last entry with key <= want.
func searchNode(node []byte, want uint64) uint64 {
	le := binary.LittleEndian
	n := int(le.Uint16(node))
	lo, hi, best := 0, n-1, 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if le.Uint64(node[2+mid*16:]) <= want {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return le.Uint64(node[2+best*16+8:])
}

// LoadFS writes the image into the kernel file system at path.
func (st *Store) LoadFS(p *sim.Proc, sys *core.System, path string) error {
	return st.LoadFSOn(p, sys, 0, path)
}

// LoadFSOn is LoadFS on topology node devIdx, for multi-SSD callers
// that keep one image per device; node 0 is exactly the historical
// LoadFS.
func (st *Store) LoadFSOn(p *sim.Proc, sys *core.System, devIdx int, path string) error {
	st.Path = path
	img := st.BuildImage()
	pr := sys.NewProcessOn(ext4.Root, devIdx)
	fd, err := pr.Create(p, path, 0o666)
	if err != nil {
		return err
	}
	const chunk = 1 << 20
	for off := 0; off < len(img); off += chunk {
		end := off + chunk
		if end > len(img) {
			end = len(img)
		}
		if _, err := pr.Pwrite(p, fd, img[off:end], int64(off)); err != nil {
			return err
		}
	}
	if err := pr.Fsync(p, fd); err != nil {
		return err
	}
	return pr.Close(p, fd)
}

// LoadSPDK writes the image into a raw SPDK region named path.
func (st *Store) LoadSPDK(p *sim.Proc, d *spdk.Driver, q *spdk.Queue, path string) error {
	st.Path = path
	img := st.BuildImage()
	r, err := d.CreateFile(path, int64(len(img)))
	if err != nil {
		return err
	}
	const chunk = 1 << 20
	for off := 0; off < len(img); off += chunk {
		end := off + chunk
		if end > len(img) {
			end = len(img)
		}
		if _, err := q.WriteAt(p, r, img[off:end], int64(off)); err != nil {
			return err
		}
	}
	return nil
}

// Conn is a per-thread handle. Exactly one of io / pr is used.
type Conn struct {
	st  *Store
	io  core.FileIO
	fd  int
	pr  *kernel.Process
	kfd int
	xrp bool
	buf []byte
}

// NewConn opens through a FileIO engine (sync, bypassd, spdk, ...).
func (st *Store) NewConn(p *sim.Proc, io core.FileIO) (*Conn, error) {
	fd, err := io.Open(p, st.Path, false)
	if err != nil {
		return nil, err
	}
	return &Conn{st: st, io: io, fd: fd, buf: make([]byte, NodeSize)}, nil
}

// NewXRPConn opens for in-driver chained lookups.
func (st *Store) NewXRPConn(p *sim.Proc, pr *kernel.Process) (*Conn, error) {
	fd, err := pr.Open(p, st.Path, false)
	if err != nil {
		return nil, err
	}
	return &Conn{st: st, pr: pr, kfd: fd, xrp: true, buf: make([]byte, NodeSize)}, nil
}

// logRead computes the sector-aligned read covering object idx.
func (st *Store) logRead(idx uint64) (off int64, inner int64) {
	byteOff := st.logStart + int64(idx)*ValSize
	off = byteOff &^ (storage.SectorSize - 1)
	return off, byteOff - off
}

// Get looks up key, returning its value and the number of I/Os.
func (c *Conn) Get(p *sim.Proc, key uint64) ([ValSize]byte, int, error) {
	var v [ValSize]byte
	if key >= c.st.Objects {
		return v, 0, fmt.Errorf("bpfkv: key %d out of range", key)
	}
	if c.xrp {
		return c.getXRP(p, key)
	}
	ios := 0
	ptr := uint64(0) // root node index
	for lvl := 0; lvl < c.st.Levels; lvl++ {
		off := c.st.levelStart[lvl] + int64(ptr)*NodeSize
		if _, err := c.io.Pread(p, c.fd, c.buf[:NodeSize], off); err != nil {
			return v, ios, err
		}
		ios++
		ptr = searchNode(c.buf[:NodeSize], key)
	}
	off, inner := c.st.logRead(ptr)
	if _, err := c.io.Pread(p, c.fd, c.buf[:storage.SectorSize], off); err != nil {
		return v, ios, err
	}
	ios++
	copy(v[:], c.buf[inner:inner+ValSize])
	return v, ios, nil
}

// getXRP performs the whole descent plus the data read as one
// in-driver chain: a single kernel crossing for 7 I/Os.
func (c *Conn) getXRP(p *sim.Proc, key uint64) ([ValSize]byte, int, error) {
	var v [ValSize]byte
	st := c.st
	var inner int64
	ios, err := c.pr.XRPChain(p, c.kfd, st.levelStart[0], NodeSize, c.buf, func(step int, b []byte) (int64, int64, bool) {
		if step == st.Levels {
			return 0, 0, true // data block fetched
		}
		ptr := searchNode(b[:NodeSize], key)
		if step == st.Levels-1 {
			off, in := st.logRead(ptr)
			inner = in
			return off, storage.SectorSize, false
		}
		return st.levelStart[step+1] + int64(ptr)*NodeSize, NodeSize, false
	})
	if err != nil {
		return v, ios, err
	}
	copy(v[:], c.buf[inner:inner+ValSize])
	return v, ios, nil
}
