package sim

// Resource is a counted resource with FIFO admission, modelling a
// server pool (device channels, lock, bus). Acquire blocks the calling
// proc while all units are in use; Release hands a unit to the oldest
// waiter.
//
// A resource is shard-resident: its busy-time accounting reads the
// clock of the shard it was created for, and in a parallel (epoch)
// run both its holders and its waiters must live on that shard.
// Device channel pools and per-inode locks are naturally shard-local;
// create them with NewResourceOn.
type Resource struct {
	sim      *Sim
	name     string
	shard    int
	capacity int
	inUse    int
	waiters  []*Proc

	// busy-time integration for utilisation reporting
	lastChange Time
	busyArea   float64 // integral of inUse over time
}

// NewResource returns a resource with the given unit count, resident
// on the current coupled dispatch context's shard.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	return s.NewResourceOn(s.curShard(), name, capacity)
}

// NewResourceOn is NewResource with an explicit shard residence —
// topology boot pins each device's pools to the device's shard.
func (s *Sim) NewResourceOn(shardIdx int, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		panic("sim: NewResourceOn shard out of range")
	}
	return &Resource{sim: s, name: name, shard: shardIdx, capacity: capacity}
}

// now is the resource's local time: its shard clock or the global
// clock, whichever is ahead (equal to the global clock under the
// coupled scheduler).
func (r *Resource) now() Time {
	return r.sim.ShardNow(r.shard)
}

func (r *Resource) account() {
	now := r.now()
	r.busyArea += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}

// Acquire blocks p until a unit is available, then claims it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park() // woken already holding the unit
}

// TryAcquire claims a unit if one is free, reporting whether it did.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit. If procs are waiting, ownership transfers
// directly to the oldest waiter (the unit never becomes free).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.sim.wakeAt(r.now(), p) // unit passes to p; inUse unchanged
		return
	}
	r.account()
	r.inUse--
}

// Use acquires a unit, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the unit count.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen reports the number of procs waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Utilization reports mean units-in-use divided by capacity since the
// start of the simulation.
func (r *Resource) Utilization() float64 {
	r.account()
	if r.lastChange == 0 {
		return 0
	}
	return r.busyArea / float64(r.lastChange) / float64(r.capacity)
}
