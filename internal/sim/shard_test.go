package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// shardScenario drives one randomized workload across a sharded
// topology and returns its full execution trace. Procs are pinned
// round-robin across shards (the way a multi-device machine pins each
// device's procs to its lane), and the workload stresses exactly the
// cross-shard cases the (at, seq) merge must get right: same-instant
// posts landing in different lanes, handlers that post into other
// procs' shards via cond wakeups, zero-length sleeps, and spawn
// bursts whose children inherit the spawner's shard.
func shardScenario(seed int64, shards int, noShard bool) []string {
	s := New()
	for s.Shards() < shards {
		s.AddShard()
	}
	s.noShard = noShard
	var log []string
	trace := func(tag string, p *Proc) {
		log = append(log, fmt.Sprintf("%d:%s", p.Now(), tag))
	}
	cond := s.NewCond()
	waiting := 0

	const procs = 8
	for i := 0; i < procs; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		s.SpawnOn(i%shards, fmt.Sprintf("p%d", i), func(p *Proc) {
			for step := 0; step < 30; step++ {
				tag := fmt.Sprintf("p%d.%d", i, step)
				switch rng.Intn(6) {
				case 0: // same-instant resume through the scheduler
					p.Sleep(0)
					trace(tag+":sleep0", p)
				case 1: // clock advance
					p.Sleep(Time(1 + rng.Intn(3)))
					trace(tag+":sleep", p)
				case 2: // cross-post: a handler that posts another handler
					step := step
					s.After(0, func() {
						log = append(log, fmt.Sprintf("%d:p%d.%d:post", s.Now(), i, step))
						s.After(0, func() {
							log = append(log, fmt.Sprintf("%d:p%d.%d:post2", s.Now(), i, step))
						})
					})
					trace(tag+":after", p)
				case 3: // same-instant spawn burst (children inherit the shard)
					for k := 0; k < 2; k++ {
						k := k
						s.Spawn("child", func(c *Proc) {
							trace(fmt.Sprintf("p%d.%d:child%d", i, step, k), c)
							c.Sleep(0)
							trace(fmt.Sprintf("p%d.%d:child%d-end", i, step, k), c)
						})
					}
					trace(tag+":spawned", p)
				case 4: // park on the shared cond (cross-shard wakeups)
					if waiting < 3 {
						waiting++
						cond.Wait(p)
						waiting--
						trace(tag+":woke", p)
					} else {
						cond.Broadcast()
						trace(tag+":broadcast", p)
					}
				case 5: // wake one waiter, possibly on another shard
					cond.Signal()
					trace(tag+":signal", p)
				}
			}
			trace(fmt.Sprintf("p%d:done", i), p)
		})
	}
	s.Run()
	s.Shutdown()
	return log
}

// TestShardDispatchEquivalenceProperty pins the coupled scheduler's
// properties under the canonical (at, shard, seq) key. The noShard
// reference mode — everything routed through shard 0's stream in
// program order — is observationally identical to a true single-shard
// simulation for any nominal shard count: shard 0's per-shard seq
// stream alone IS the historical single-queue order (this is the
// argument that single-device results stayed byte-identical across
// the per-shard-seq retirement of the global counter). And the
// sharded dispatch itself is exactly reproducible: the key is a total
// order, so two runs of the same seed produce byte-identical traces.
// (Sharded vs noShard full-log identity is no longer a property of
// the coupled scheduler — simultaneous events on different shards
// order by shard index rather than global post order; the parallel
// equivalence property test in parallel_test.go pins the cross-mode
// guarantees on workloads that are honest about that.)
func TestShardDispatchEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		for _, shards := range []int{2, 4, 8} {
			ref := shardScenario(seed, shards, true)
			single := shardScenario(seed, 1, false)
			if len(ref) != len(single) {
				t.Fatalf("seed %d shards %d: trace lengths %d (noShard) %d (single)",
					seed, shards, len(ref), len(single))
			}
			for i := range ref {
				if ref[i] != single[i] {
					t.Fatalf("seed %d shards %d: noShard vs single-shard diverge at step %d: %q vs %q",
						seed, shards, i, ref[i], single[i])
				}
			}
			a := shardScenario(seed, shards, false)
			b := shardScenario(seed, shards, false)
			if len(a) != len(b) {
				t.Fatalf("seed %d shards %d: sharded dispatch not reproducible: lengths %d vs %d",
					seed, shards, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d shards %d: sharded dispatch not reproducible at step %d: %q vs %q",
						seed, shards, i, a[i], b[i])
				}
			}
		}
	}
}

// TestShardAffinity checks the routing contract: SpawnOn pins a proc's
// lane, Spawn inherits the spawning context's shard, and timers posted
// from a proc land on its shard — so a device's whole event stream
// stays in its lane without any caller bookkeeping.
func TestShardAffinity(t *testing.T) {
	s := New()
	if got := s.AddShard(); got != 1 {
		t.Fatalf("AddShard = %d, want 1", got)
	}
	if got := s.Shards(); got != 2 {
		t.Fatalf("Shards = %d, want 2", got)
	}
	var childShard, timerShard int
	s.SpawnOn(1, "dev", func(p *Proc) {
		if p.shard != 1 {
			t.Errorf("SpawnOn proc on shard %d, want 1", p.shard)
		}
		s.Spawn("serve", func(c *Proc) {
			childShard = c.shard
		})
		s.After(5, func() {
			timerShard = s.cur
		})
		p.Sleep(10)
	})
	s.Run()
	if childShard != 1 {
		t.Errorf("inherited child shard = %d, want 1", childShard)
	}
	if timerShard != 1 {
		t.Errorf("timer dispatched with current shard %d, want 1", timerShard)
	}
	s.Shutdown()
}

// TestShardRunUntil checks the cross-shard peek used by RunUntil: the
// earliest event must be found in whichever shard holds it.
func TestShardRunUntil(t *testing.T) {
	s := New()
	s.AddShard()
	var order []string
	s.SpawnOn(1, "late", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "late")
	})
	s.SpawnOn(0, "early", func(p *Proc) {
		p.Sleep(5)
		order = append(order, "early")
	})
	if n := s.RunUntil(10); n == 0 {
		t.Fatal("RunUntil processed nothing")
	}
	if len(order) != 1 || order[0] != "early" {
		t.Fatalf("order after RunUntil(10) = %v, want [early]", order)
	}
	s.Run()
	if len(order) != 2 || order[1] != "late" {
		t.Fatalf("order after Run = %v, want [early late]", order)
	}
	s.Shutdown()
}
