package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// epochScenario drives one randomized, epoch-legal workload — procs
// pinned per shard, shard-local conds, cross-shard posts that respect
// the lookahead window — and returns the per-shard execution traces.
// Traces are collected per shard (each appended only by that shard's
// events), so collection itself is race-free at any worker count and
// the returned value is exactly the object the determinism contract
// speaks about: each shard's ordered event stream.
func epochScenario(seed int64, shards, workers int, lookahead Time) [][]string {
	s := New()
	for s.Shards() < shards {
		s.AddShard()
	}
	s.SetLookahead(lookahead)
	s.SetWorkers(workers)

	logs := make([][]string, shards)
	tr := func(k int, at Time, tag string) {
		logs[k] = append(logs[k], fmt.Sprintf("%d:%s", at, tag))
	}

	// One cond per shard: waiters and signalers stay on the shard, the
	// contract Cond documents for parallel runs.
	conds := make([]*Cond, shards)
	waiting := make([]int, shards)
	for k := range conds {
		conds[k] = s.NewCond()
	}

	const procs = 12
	for i := 0; i < procs; i++ {
		i := i
		k := i % shards
		rng := rand.New(rand.NewSource(seed*1777 + int64(i)))
		s.SpawnOn(k, fmt.Sprintf("p%d", i), func(p *Proc) {
			for step := 0; step < 40; step++ {
				tag := fmt.Sprintf("p%d.%d", i, step)
				switch rng.Intn(7) {
				case 0:
					p.Yield()
					tr(k, p.Now(), tag+":yield")
				case 1:
					p.Sleep(Time(1 + rng.Intn(int(lookahead))))
					tr(k, p.Now(), tag+":sleep")
				case 2: // same-shard timer
					at := p.Now()
					p.After(Time(rng.Intn(int(lookahead))), func() {
						tr(k, p.sim.ShardNow(k), tag+":after")
					})
					tr(k, at, tag+":armed")
				case 3: // same-shard spawn burst
					for c := 0; c < 2; c++ {
						c := c
						p.Spawn("child", func(q *Proc) {
							tr(k, q.Now(), fmt.Sprintf("%s:child%d", tag, c))
							q.Sleep(Time(1 + rng.Intn(3)))
							tr(k, q.Now(), fmt.Sprintf("%s:child%d-end", tag, c))
						})
					}
					tr(k, p.Now(), tag+":spawned")
				case 4: // shard-local cond traffic
					if waiting[k] == 0 && rng.Intn(2) == 0 {
						waiting[k]++
						conds[k].Wait(p)
						waiting[k]--
						tr(k, p.Now(), tag+":woke")
					} else {
						conds[k].Broadcast()
						tr(k, p.Now(), tag+":broadcast")
					}
				case 5: // cross-shard post, at least one window out
					dst := rng.Intn(shards)
					d := lookahead + Time(rng.Intn(int(lookahead)))
					p.PostOn(dst, d, func() {
						tr(dst, p.sim.ShardNow(dst), tag+":xpost")
					})
					tr(k, p.Now(), tag+":xsent")
				case 6:
					p.Sleep(0)
					tr(k, p.Now(), tag+":sleep0")
				}
			}
			tr(k, p.Now(), fmt.Sprintf("p%d:done", i))
		})
	}
	s.Run()
	s.Shutdown()
	return logs
}

// TestParallelEquivalenceProperty is the tentpole determinism gate:
// for 20 random workloads, the epoch engine produces byte-identical
// per-shard event streams at every worker count. Workers only change
// which host goroutine executes a shard's epoch slice — never what
// runs, when, or in which order within a shard. Run with -race to
// additionally verify the engine is data-race-free at W > 1.
func TestParallelEquivalenceProperty(t *testing.T) {
	const lookahead = 20
	for seed := int64(1); seed <= 20; seed++ {
		for _, shards := range []int{2, 4} {
			ref := epochScenario(seed, shards, 1, lookahead)
			for _, workers := range []int{2, 4, 8} {
				got := epochScenario(seed, shards, workers, lookahead)
				for k := range ref {
					if len(got[k]) != len(ref[k]) {
						t.Fatalf("seed %d shards %d workers %d: shard %d stream length %d, want %d",
							seed, shards, workers, k, len(got[k]), len(ref[k]))
					}
					for j := range ref[k] {
						if got[k][j] != ref[k][j] {
							t.Fatalf("seed %d shards %d workers %d: shard %d diverges at step %d: %q vs %q",
								seed, shards, workers, k, j, got[k][j], ref[k][j])
						}
					}
				}
			}
		}
	}
}

// TestEpochSequentialMatchesRerun pins that the armed engine is also
// reproducible against itself across independent simulations (fresh
// heaps, fresh proc IDs, fresh pools).
func TestEpochSequentialMatchesRerun(t *testing.T) {
	a := epochScenario(42, 4, 1, 25)
	b := epochScenario(42, 4, 1, 25)
	for k := range a {
		if strings.Join(a[k], "\n") != strings.Join(b[k], "\n") {
			t.Fatalf("shard %d: epoch-sequential run not reproducible", k)
		}
	}
}

// TestEpochLookaheadViolationPanics checks the soundness backstop: a
// cross-shard post that lands below the target shard's clock — i.e. a
// workload that broke the lookahead promise — must panic at the
// barrier merge instead of silently reordering history.
func TestEpochLookaheadViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("merge accepted a cross-shard post below the target shard clock")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead contract violated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s := New()
	s.AddShard()
	s.SetLookahead(1000)
	s.SetWorkers(1)
	// Shard 1 burns through the whole first epoch one tick at a time,
	// running its clock to the horizon.
	s.SpawnOn(1, "ahead", func(p *Proc) {
		for i := 0; i < 900; i++ {
			p.Sleep(1)
		}
	})
	// Shard 0 posts into shard 1 with a delay far inside the window.
	s.SpawnOn(0, "cheat", func(p *Proc) {
		p.PostOn(1, 10, func() {})
	})
	s.Run()
	s.Shutdown()
}
