package sim

// Conservative parallel shard execution (DESIGN.md §15).
//
// When armed (SetLookahead > 0 with more than one shard), Run drives
// the simulation in epochs instead of one global pop at a time. Each
// epoch:
//
//  1. The epoch floor is the minimum next-event time across shards;
//     the horizon is floor + lookahead.
//  2. Every shard independently drains its own queue up to (but not
//     including) the horizon. With workers > 1, shards are striped
//     round-robin over real host goroutines and drain concurrently.
//  3. Cross-shard posts made during the epoch are buffered in the
//     source shard's outbox. At the barrier they are merged into
//     their target shards in canonical order — source shard
//     ascending, then the order the source generated them — with
//     each delivered event taking the next seq from its target's
//     stream.
//
// Determinism does not depend on the worker count: inside an epoch a
// shard's execution is a function of its own queue only (workers
// share no simulation state), outboxes are keyed by source shard
// rather than by scheduling accident, and the merge order is fixed.
// Epoch-parallel and epoch-sequential runs therefore produce
// byte-identical event streams — the equivalence property test pins
// this under the race detector.
//
// Soundness is the conservative-lookahead argument: an event executed
// in this epoch has at < horizon, and any cross-shard effect it emits
// arrives at or after at + lookahead >= floor + lookahead = horizon,
// so no event merged at the barrier can land below a clock any shard
// reached during the epoch. The barrier asserts this (a delivered
// post below its target's clock panics) — the lookahead contract is
// checked, not trusted.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// epochCtl is the shared state between the main epoch loop and its
// helper workers. gate publishes the epoch number (helpers start epoch
// e once gate >= e); done counts completed helper-epochs cumulatively,
// so the main loop's barrier wait is a single monotone comparison with
// no reset race. horizon and stop are plain fields: they are written
// by the main loop before the gate store and read by helpers after the
// gate load, so the atomic pair orders them.
type epochCtl struct {
	gate    atomic.Uint64
	done    atomic.Uint64
	horizon Time
	stop    bool
}

// spinUntil waits for a to reach target, spinning briefly before
// yielding the OS thread — barrier waits are usually short, but on a
// host with fewer cores than workers a pure spin would starve the very
// goroutines it is waiting for.
func spinUntil(a *atomic.Uint64, target uint64) {
	for i := 0; a.Load() < target; i++ {
		if i > 64 {
			runtime.Gosched()
		}
	}
}

// minNextAt scans shard heads for the epoch floor; ok is false when
// every shard is idle.
func (s *Sim) minNextAt() (Time, bool) {
	best := Time(0)
	found := false
	for i := range s.shards {
		if at, _, ok := s.shards[i].peek(); ok {
			if !found || at < best {
				best, found = at, true
			}
		}
	}
	return best, found
}

// drainShard executes shard k's events with at < horizon, advancing
// its local clock. It runs on whichever context owns k this epoch and
// touches only shard-local state (plus whatever the events themselves
// touch — the cross-package contract audited in DESIGN.md §15).
func (s *Sim) drainShard(k int, horizon Time) {
	sh := &s.shards[k]
	for {
		at, _, ok := sh.peek()
		if !ok || at >= horizon {
			return
		}
		e := sh.next()
		sh.now = e.at
		sh.processed++
		if e.p != nil {
			if e.pgen == e.p.gen {
				s.resume(e.p)
			}
			continue
		}
		e.fn()
	}
}

// mergeOutboxes delivers every epoch-buffered cross-shard post:
// source shards in ascending order, each outbox in generation order,
// each delivery taking the next seq from the target's stream. The
// causality check enforces the lookahead contract.
func (s *Sim) mergeOutboxes() {
	for src := range s.shards {
		sh := &s.shards[src]
		for i := range sh.outbox {
			op := &sh.outbox[i]
			tsh := &s.shards[op.target]
			if op.e.at < tsh.now {
				panic("sim: cross-shard post below target shard clock — lookahead contract violated")
			}
			tsh.seq++
			op.e.seq = tsh.seq
			tsh.events.push(op.e)
			sh.outbox[i] = outPost{}
		}
		sh.outbox = sh.outbox[:0]
	}
}

// runEpochs is Run's epoch-mode body. On exit the global clock is
// synced to the maximum shard clock so post-run harness reads (metrics
// snapshots, utilization integrals) see final time.
func (s *Sim) runEpochs() {
	s.winner = -1
	s.runnerOK = false
	s.epochActive = true
	defer func() {
		s.epochActive = false
		for i := range s.shards {
			if sn := s.shards[i].now; sn > s.now {
				s.now = sn
			}
		}
	}()

	k := len(s.shards)
	w := s.workers
	if w > k {
		w = k
	}
	if w <= 1 {
		for {
			floor, ok := s.minNextAt()
			if !ok {
				return
			}
			s.now = floor
			horizon := floor + s.lookahead
			for i := 0; i < k; i++ {
				s.drainShard(i, horizon)
			}
			s.mergeOutboxes()
		}
	}

	// Parallel: shard i is owned by worker i%w every epoch. Worker 0
	// is the main loop; the rest are persistent helpers that wait on
	// the gate, drain their shards, and bump the cumulative counter.
	ctl := &epochCtl{}
	helpers := w - 1
	var wg sync.WaitGroup
	for h := 1; h <= helpers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for e := uint64(1); ; e++ {
				spinUntil(&ctl.gate, e)
				if ctl.stop {
					return
				}
				for i := h; i < k; i += w {
					s.drainShard(i, ctl.horizon)
				}
				ctl.done.Add(1)
			}
		}(h)
	}
	epoch := uint64(0)
	for {
		floor, ok := s.minNextAt()
		if !ok {
			break
		}
		s.now = floor
		ctl.horizon = floor + s.lookahead
		epoch++
		ctl.gate.Store(epoch)
		for i := 0; i < k; i += w {
			s.drainShard(i, ctl.horizon)
		}
		spinUntil(&ctl.done, uint64(helpers)*epoch)
		s.mergeOutboxes()
	}
	ctl.stop = true
	ctl.gate.Store(epoch + 1)
	wg.Wait()
}
