package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("new sim clock = %v, want 0", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		at = p.Now()
	})
	s.Run()
	if at != 5*Microsecond {
		t.Fatalf("woke at %v, want 5µs", at)
	}
}

func TestZeroSleepRunsLaterEventsFirst(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	s.Run()
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	s := New()
	var fired []Time
	times := []Time{30, 10, 20, 10, 40}
	for _, d := range times {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	s := New()
	panicked := make(chan bool, 1)
	s.Spawn("bad", func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			panic(killed{}) // unwind cleanly
		}()
		p.Sleep(-1)
	})
	s.Run()
	if !<-panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestCondSignalWakesOneFIFO(t *testing.T) {
	s := New()
	c := s.NewCond()
	var woke []string
	for _, n := range []string{"w1", "w2", "w3"} {
		n := n
		s.Spawn(n, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, n)
		})
	}
	s.Spawn("sig", func(p *Proc) {
		p.Sleep(10)
		c.Signal()
		p.Sleep(10)
		c.Signal()
	})
	s.Run()
	if len(woke) != 2 || woke[0] != "w1" || woke[1] != "w2" {
		t.Fatalf("woke = %v, want [w1 w2]", woke)
	}
	if c.Waiters() != 1 {
		t.Fatalf("waiters = %d, want 1", c.Waiters())
	}
	s.Shutdown()
}

func TestCondBroadcastWakesAll(t *testing.T) {
	s := New()
	c := s.NewCond()
	n := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	s.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		c.Broadcast()
	})
	s.Run()
	if n != 5 {
		t.Fatalf("woke %d waiters, want 5", n)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	s.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done times = %v, want %v", done, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	s.Run()
	// two at a time: finish at 10,10,20,20
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done times = %v, want %v", done, want)
		}
	}
}

func TestResourceFIFOHandoff(t *testing.T) {
	s := New()
	r := s.NewResource("lock", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.SpawnAt(Time(i), "u", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order = %v, want FIFO", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New()
	r := s.NewResource("x", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	s := New()
	r := s.NewResource("x", 1)
	r.Release()
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.After(10, func() { fired++ })
	s.After(20, func() { fired++ })
	s.After(30, func() { fired++ })
	n := s.RunUntil(20)
	if n != 2 || fired != 2 {
		t.Fatalf("RunUntil(20) processed %d events (fired=%d), want 2", n, fired)
	}
	if s.Now() != 20 {
		t.Fatalf("clock = %v, want 20", s.Now())
	}
	s.Run()
	if fired != 3 {
		t.Fatalf("after Run fired = %d, want 3", fired)
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	s := New()
	c := s.NewCond()
	for i := 0; i < 8; i++ {
		s.Spawn("idle", func(p *Proc) { c.Wait(p) })
	}
	s.Run()
	if s.Live() != 8 {
		t.Fatalf("live = %d, want 8 parked", s.Live())
	}
	s.Shutdown()
	if s.Live() != 0 {
		t.Fatalf("live after shutdown = %d, want 0", s.Live())
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New()
	var childRan bool
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		p.sim.Spawn("child", func(q *Proc) {
			q.Sleep(5)
			childRan = true
		})
		p.Sleep(20)
	})
	s.Run()
	if !childRan {
		t.Fatal("child proc did not run")
	}
}

func TestCPUNoDilationUnderSubscription(t *testing.T) {
	s := New()
	c := s.NewCPUSet(4)
	var end Time
	s.Spawn("w", func(p *Proc) {
		c.Compute(p, 100)
		end = p.Now()
	})
	s.Run()
	if end != 100 {
		t.Fatalf("compute took %v, want 100ns", end)
	}
}

func TestCPUDilationWhenOversubscribed(t *testing.T) {
	s := New()
	c := s.NewCPUSet(2)
	ends := make([]Time, 0, 4)
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			c.Compute(p, 100)
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	// The last proc to enter sees demand=4 on 2 cores: 2x dilation.
	max := ends[0]
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	if max < 150 {
		t.Fatalf("no dilation observed: max end %v", max)
	}
}

func TestCPUBusyWaitPenaltyOnlyWhenOversubscribed(t *testing.T) {
	s := New()
	c := s.NewCPUSet(2)
	cond := s.NewCond()
	var woke Time
	s.Spawn("waiter", func(p *Proc) {
		c.BusyWait(p, cond)
		woke = p.Now()
	})
	s.Spawn("sig", func(p *Proc) {
		p.Sleep(10)
		cond.Broadcast()
	})
	s.Run()
	if woke != 10 {
		t.Fatalf("undersubscribed busy wait woke at %v, want 10", woke)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := New()
		rng := rand.New(rand.NewSource(seed))
		r := s.NewResource("dev", 3)
		var out []Time
		for i := 0; i < 50; i++ {
			d := Time(rng.Intn(100) + 1)
			s.SpawnAt(Time(rng.Intn(50)), "w", func(p *Proc) {
				r.Use(p, d)
				out = append(out, p.Now())
			})
		}
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of jobs on a capacity-1 resource, total busy
// time equals the sum of service times (work conservation) and no two
// jobs overlap.
func TestResourceWorkConservationProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		s := New()
		r := s.NewResource("dev", 1)
		type span struct{ start, end Time }
		var spans []span
		var total Time
		for _, d := range durs {
			d := Time(d%50) + 1
			total += d
			s.Spawn("j", func(p *Proc) {
				r.Acquire(p)
				st := p.Now()
				p.Sleep(d)
				r.Release()
				spans = append(spans, span{st, p.Now()})
			})
		}
		s.Run()
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		var busy Time
		for i, sp := range spans {
			busy += sp.end - sp.start
			if i > 0 && sp.start < spans[i-1].end {
				return false // overlap on capacity-1 resource
			}
		}
		return busy == total && s.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{4020, "4.02µs"},
		{1500000, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestUtilization(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	s.Spawn("u", func(p *Proc) {
		r.Use(p, 50)
		p.Sleep(50)
	})
	s.Run()
	u := r.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}
