package sim

// CPUSet models a pool of cores with processor-sharing semantics.
//
// The BypassD evaluation machine has 24 hardware threads (paper §6.1).
// Compute segments dilate when more threads demand CPU than there are
// cores, and busy-polling threads additionally pay a descheduling
// penalty when oversubscribed — this is what makes io_uring's SQPOLL
// mode collapse past 12 application threads in Fig. 9 (each ring
// needs an extra polling core).
//
// The pool is provisioned per shard: each event shard (one per device
// node in a topology) gets its own bank of cores and its own demand
// counter, so compute dilation is a function of shard-local state
// only — which keeps it deterministic when shards execute on separate
// host cores. A single-shard machine has exactly one lane and behaves
// as the historical global pool. Create the set after the topology's
// shards exist (NewCPUSet sizes one lane per shard).
type CPUSet struct {
	sim   *Sim
	cores int
	// demand[k] is shard k's instantaneous count of threads computing
	// or busy-polling.
	demand []int

	// DeschedulePenalty approximates the scheduler-quantum stall a
	// busy-polling thread suffers per wait when demand exceeds cores.
	// The penalty applied is penalty * (demand-cores)/demand.
	DeschedulePenalty Time
}

// NewCPUSet returns a CPU pool with the given core count per shard.
func (s *Sim) NewCPUSet(cores int) *CPUSet {
	if cores <= 0 {
		panic("sim: core count must be positive")
	}
	return &CPUSet{
		sim:               s,
		cores:             cores,
		demand:            make([]int, len(s.shards)),
		DeschedulePenalty: 50 * Microsecond,
	}
}

// lane maps p to its shard's demand slot. A proc on a shard added
// after the set was created charges lane 0 (the historical global
// pool) — topologies avoid this by creating the set last.
func (c *CPUSet) lane(p *Proc) *int {
	k := p.shard
	if k >= len(c.demand) {
		k = 0
	}
	return &c.demand[k]
}

// Cores reports the per-shard core count.
func (c *CPUSet) Cores() int { return c.cores }

// Demand reports the instantaneous CPU demand summed across shards.
func (c *CPUSet) Demand() int {
	n := 0
	for _, d := range c.demand {
		n += d
	}
	return n
}

// dilation returns the processor-sharing slowdown factor for the
// given demand level.
func (c *CPUSet) dilation(demand int) float64 {
	if demand <= c.cores {
		return 1
	}
	return float64(demand) / float64(c.cores)
}

// Compute burns d nanoseconds of CPU on the calling proc, dilated by
// the oversubscription factor sampled at entry.
func (c *CPUSet) Compute(p *Proc, d Time) {
	if d <= 0 {
		return
	}
	lane := c.lane(p)
	*lane++
	f := c.dilation(*lane)
	p.Sleep(Time(float64(d) * f))
	*lane--
}

// BusyWait parks p on cond while charging it as CPU demand (the thread
// spins on a completion queue rather than blocking). When the machine
// is oversubscribed the waker's signal is additionally delayed by a
// share of the descheduling penalty, modelling the spinning thread
// losing its core to the scheduler.
func (c *CPUSet) BusyWait(p *Proc, cond *Cond) {
	lane := c.lane(p)
	*lane++
	cond.Wait(p)
	if *lane > c.cores {
		over := *lane - c.cores
		p.Sleep(c.DeschedulePenalty * Time(over) / Time(*lane))
	}
	*lane--
}

// BusyUntil spins until pred() is true, re-checking after every wakeup
// of cond. The predicate is evaluated before the first wait.
func (c *CPUSet) BusyUntil(p *Proc, cond *Cond, pred func() bool) {
	for !pred() {
		c.BusyWait(p, cond)
	}
}

// BlockedWait parks p on cond without charging CPU demand (the thread
// sleeps in the kernel awaiting an interrupt).
func (c *CPUSet) BlockedWait(p *Proc, cond *Cond) {
	cond.Wait(p)
}

// Occupy marks the calling thread as permanently CPU-hungry until
// Vacate — a pinned polling thread that never yields its core
// (io_uring SQPOLL+IOPOLL). While occupied, use Penalty instead of
// BusyWait to avoid double-counting demand.
func (c *CPUSet) Occupy(p *Proc) { *c.lane(p)++ }

// Vacate releases an Occupy.
func (c *CPUSet) Vacate(p *Proc) { *c.lane(p)-- }

// Penalty charges p the descheduling share an always-spinning thread
// suffers when the machine is oversubscribed. Call it after each unit
// of work (or wakeup) of an Occupy'd thread.
func (c *CPUSet) Penalty(p *Proc) {
	lane := c.lane(p)
	if *lane > c.cores {
		over := *lane - c.cores
		p.Sleep(c.DeschedulePenalty * Time(over) / Time(*lane))
	}
}
