package sim

// CPUSet models a pool of cores with processor-sharing semantics.
//
// The BypassD evaluation machine has 24 hardware threads (paper §6.1).
// Compute segments dilate when more threads demand CPU than there are
// cores, and busy-polling threads additionally pay a descheduling
// penalty when oversubscribed — this is what makes io_uring's SQPOLL
// mode collapse past 12 application threads in Fig. 9 (each ring
// needs an extra polling core).
type CPUSet struct {
	sim    *Sim
	cores  int
	demand int // threads currently computing or busy-polling

	// DeschedulePenalty approximates the scheduler-quantum stall a
	// busy-polling thread suffers per wait when demand exceeds cores.
	// The penalty applied is penalty * (demand-cores)/demand.
	DeschedulePenalty Time
}

// NewCPUSet returns a CPU pool with the given core count.
func (s *Sim) NewCPUSet(cores int) *CPUSet {
	if cores <= 0 {
		panic("sim: core count must be positive")
	}
	return &CPUSet{sim: s, cores: cores, DeschedulePenalty: 50 * Microsecond}
}

// Cores reports the core count.
func (c *CPUSet) Cores() int { return c.cores }

// Demand reports the instantaneous CPU demand.
func (c *CPUSet) Demand() int { return c.demand }

// dilation returns the processor-sharing slowdown factor for the
// current demand level.
func (c *CPUSet) dilation() float64 {
	if c.demand <= c.cores {
		return 1
	}
	return float64(c.demand) / float64(c.cores)
}

// Compute burns d nanoseconds of CPU on the calling proc, dilated by
// the oversubscription factor sampled at entry.
func (c *CPUSet) Compute(p *Proc, d Time) {
	if d <= 0 {
		return
	}
	c.demand++
	f := c.dilation()
	p.Sleep(Time(float64(d) * f))
	c.demand--
}

// BusyWait parks p on cond while charging it as CPU demand (the thread
// spins on a completion queue rather than blocking). When the machine
// is oversubscribed the waker's signal is additionally delayed by a
// share of the descheduling penalty, modelling the spinning thread
// losing its core to the scheduler.
func (c *CPUSet) BusyWait(p *Proc, cond *Cond) {
	c.demand++
	cond.Wait(p)
	if c.demand > c.cores {
		over := c.demand - c.cores
		p.Sleep(c.DeschedulePenalty * Time(over) / Time(c.demand))
	}
	c.demand--
}

// BusyUntil spins until pred() is true, re-checking after every wakeup
// of cond. The predicate is evaluated before the first wait.
func (c *CPUSet) BusyUntil(p *Proc, cond *Cond, pred func() bool) {
	for !pred() {
		c.BusyWait(p, cond)
	}
}

// BlockedWait parks p on cond without charging CPU demand (the thread
// sleeps in the kernel awaiting an interrupt).
func (c *CPUSet) BlockedWait(p *Proc, cond *Cond) {
	cond.Wait(p)
}

// Occupy marks the calling thread as permanently CPU-hungry until
// Vacate — a pinned polling thread that never yields its core
// (io_uring SQPOLL+IOPOLL). While occupied, use PenaltyWait instead
// of BusyWait to avoid double-counting demand.
func (c *CPUSet) Occupy() { c.demand++ }

// Vacate releases an Occupy.
func (c *CPUSet) Vacate() { c.demand-- }

// Penalty charges p the descheduling share an always-spinning thread
// suffers when the machine is oversubscribed. Call it after each unit
// of work (or wakeup) of an Occupy'd thread.
func (c *CPUSet) Penalty(p *Proc) {
	if c.demand > c.cores {
		over := c.demand - c.cores
		p.Sleep(c.DeschedulePenalty * Time(over) / Time(c.demand))
	}
}
