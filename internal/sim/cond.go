package sim

// Cond is a virtual-time condition variable. Waiters park until
// another proc (or an event) signals or broadcasts. As with
// sync.Cond, callers should re-check their predicate in a loop around
// Wait because wakeups are not tied to predicate changes.
type Cond struct {
	sim     *Sim
	waiters []*Proc
}

// NewCond returns a condition variable bound to s.
func (s *Sim) NewCond() *Cond { return &Cond{sim: s} }

// Wait parks the calling proc until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// wakeTime is the virtual instant a wakeup for p fires at: p's shard
// clock or the global clock, whichever is ahead. Under the coupled
// scheduler the global clock is always ahead, reproducing the
// historical "wake at now" exactly; under the epoch engine the shard
// clock is the correct local time for a shard-local signal. Signaling
// a cond whose waiters live on another shard from inside an epoch run
// is out of contract (the signaler would race the waiter's shard) —
// the race detector and the equivalence gate catch violations.
func (c *Cond) wakeTime(p *Proc) Time {
	at := c.sim.now
	if sn := c.sim.shards[p.shard].now; sn > at {
		at = sn
	}
	return at
}

// Signal wakes the earliest waiter, if any. It may be called from any
// proc or from scheduler context.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.sim.wakeAt(c.wakeTime(p), p)
}

// Broadcast wakes every waiter in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.sim.wakeAt(c.wakeTime(p), p)
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports the number of procs currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
