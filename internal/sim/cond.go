package sim

// Cond is a virtual-time condition variable. Waiters park until
// another proc (or an event) signals or broadcasts. As with
// sync.Cond, callers should re-check their predicate in a loop around
// Wait because wakeups are not tied to predicate changes.
type Cond struct {
	sim     *Sim
	waiters []*Proc
}

// NewCond returns a condition variable bound to s.
func (s *Sim) NewCond() *Cond { return &Cond{sim: s} }

// Wait parks the calling proc until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the earliest waiter, if any. It may be called from any
// proc or from scheduler context.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.sim.wakeAt(c.sim.now, p)
}

// Broadcast wakes every waiter in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.sim.wakeAt(c.sim.now, p)
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports the number of procs currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
