package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapOrderingProperty drives the hand-rolled heap with
// random timestamps and checks it pops in (at, seq) order.
func TestEventHeapOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newEventHeap()
	var want []Time
	for i := 0; i < 500; i++ {
		at := Time(rng.Intn(100))
		h.push(event{at: at, seq: uint64(i)})
		want = append(want, at)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var lastAt Time
	var lastSeq uint64
	for i := 0; len(h) > 0; i++ {
		e := h.pop()
		if e.at != want[i] {
			t.Fatalf("pop %d: at=%v, want %v", i, e.at, want[i])
		}
		if e.at == lastAt && e.seq < lastSeq {
			t.Fatalf("pop %d: FIFO tie-break violated (seq %d after %d)", i, e.seq, lastSeq)
		}
		lastAt, lastSeq = e.at, e.seq
	}
}

// TestHeapPoolRecycling runs many New/Run/Shutdown cycles and checks
// the backing array is recycled: steady-state cycles should not grow
// allocations per event. This is a behavioral check (the sim still
// works across recycled heaps), not an exact alloc count.
func TestHeapPoolRecycling(t *testing.T) {
	for cycle := 0; cycle < 50; cycle++ {
		s := New()
		total := 0
		for i := 0; i < 20; i++ {
			i := i
			s.Spawn("p", func(p *Proc) {
				p.Sleep(Time(i) * Microsecond)
				total++
			})
		}
		s.Run()
		if total != 20 {
			t.Fatalf("cycle %d: %d/20 procs ran", cycle, total)
		}
		s.Shutdown()
	}
}
