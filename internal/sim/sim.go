// Package sim provides a deterministic discrete-event simulation kernel.
//
// All latencies in the BypassD reproduction are virtual: the simulated
// machine (SSD, IOMMU, kernel, applications) advances a virtual
// nanosecond clock instead of wall-clock time, so results are exact and
// reproducible regardless of the Go runtime's scheduling behaviour.
//
// The kernel runs simulated processes (Proc) cooperatively: exactly one
// proc executes at any moment, and control transfers between the
// scheduler and procs through a strict channel handshake. Events that
// fire at the same virtual instant run in the order they were posted.
package sim

import (
	"fmt"
	"sync"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "4.02µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
	// p, when non-nil, marks a proc-resume event: the scheduler calls
	// resume(p) directly instead of going through a closure. Sleeps and
	// wakeups dominate the event stream, and allocating a closure for
	// each showed up at the top of -benchmem profiles.
	p *Proc
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift
// routines are hand-rolled rather than going through container/heap:
// the interface-based API boxes every pushed and popped event, which
// dominated simulator allocations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the closure
	q = q[:n]
	*h = q
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// heapPool recycles event-heap backing arrays across Sim instances:
// every experiment cell boots (and shuts down) its own machine, and
// regrowing the heap from scratch each time showed up in -benchmem.
var heapPool = sync.Pool{}

func newEventHeap() eventHeap {
	if v := heapPool.Get(); v != nil {
		return (*(v.(*eventHeap)))[:0]
	}
	return make(eventHeap, 0, 64)
}

func releaseEventHeap(h eventHeap) {
	h = h[:cap(h)]
	for i := range h {
		h[i] = event{} // drop closure references before pooling
	}
	h = h[:0]
	heapPool.Put(&h)
}

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

// Proc is a simulated thread of execution. A Proc may only call
// blocking methods (Sleep, Cond.Wait, Resource.Acquire, ...) from its
// own goroutine while it is the running proc.
type Proc struct {
	sim   *Sim
	name  string
	wake  chan struct{}
	state procState
	trace any
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// SetTraceCtx attaches an opaque per-request trace context to the
// proc (the observability plane's span, threaded through layers that
// don't pass request structs). Procs run cooperatively, so the slot
// needs no synchronization. Set nil to clear.
func (p *Proc) SetTraceCtx(v any) { p.trace = v }

// TraceCtx returns the context set by SetTraceCtx, or nil.
func (p *Proc) TraceCtx() any { return p.trace }

// killed is the panic payload used to unwind procs during Shutdown.
type killed struct{}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with New.
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	procs   []*Proc
	killing bool
	running bool
}

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{}), events: newEventHeap()}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// post schedules fn to run at time at. fn executes on the scheduler
// goroutine; it must not block.
func (s *Sim) post(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, s.now))
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, fn: fn})
}

// postResume schedules p to be resumed at time at without allocating a
// closure. Ordering is identical to post: the shared seq counter keeps
// resume and function events in one posted-order stream.
func (s *Sim) postResume(at Time, p *Proc) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, s.now))
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, p: p})
}

// At schedules fn to run at absolute virtual time at. fn runs in
// scheduler context and must not block; spawn a proc for blocking work.
func (s *Sim) At(at Time, fn func()) { s.post(at, fn) }

// After schedules fn to run d nanoseconds from now. fn runs in
// scheduler context and must not block.
func (s *Sim) After(d Time, fn func()) { s.post(s.now+d, fn) }

// Spawn creates a proc that begins executing fn at the current virtual
// time. It may be called before Run or from inside a running proc.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt creates a proc that begins executing fn at virtual time at.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.procs = append(s.procs, p)
	go func() {
		<-p.wake
		if s.killing {
			s.finish(p)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r)
				}
			}
			s.finish(p)
		}()
		p.state = procRunning
		fn(p)
	}()
	s.postResume(at, p)
	return p
}

// finish marks p done and returns control to the scheduler.
func (s *Sim) finish(p *Proc) {
	p.state = procDone
	s.yield <- struct{}{}
}

// resume hands control to p and blocks the scheduler until p parks or
// finishes. It must only run on the scheduler goroutine.
func (s *Sim) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.wake <- struct{}{}
	<-s.yield
}

// park suspends the calling proc until it is resumed. The proc must
// already have arranged for a wakeup (an event, cond membership, ...).
func (p *Proc) park() {
	s := p.sim
	p.state = procParked
	s.yield <- struct{}{}
	<-p.wake
	if s.killing {
		panic(killed{})
	}
	p.state = procRunning
}

// Sleep advances the proc's virtual time by d. d must be >= 0.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	s := p.sim
	s.postResume(s.now+d, p)
	p.park()
}

// Yield lets all other events scheduled at the current instant run
// before the proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// wakeAt schedules p to be resumed at absolute time at.
func (s *Sim) wakeAt(at Time, p *Proc) {
	s.postResume(at, p)
}

// Run processes events until the event queue is empty. Procs parked on
// conditions with no pending wakeups remain parked (idle servers); call
// Shutdown to unwind them.
func (s *Sim) Run() {
	if s.running {
		panic("sim: Run is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		e := s.events.pop()
		s.now = e.at
		if e.p != nil {
			s.resume(e.p)
		} else {
			e.fn()
		}
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock
// to t. It returns the number of events processed.
func (s *Sim) RunUntil(t Time) int {
	if s.running {
		panic("sim: RunUntil is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	n := 0
	for len(s.events) > 0 && s.events[0].at <= t {
		e := s.events.pop()
		s.now = e.at
		if e.p != nil {
			s.resume(e.p)
		} else {
			e.fn()
		}
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}

// Shutdown unwinds every parked or not-yet-started proc so their
// goroutines exit. Pending events are discarded. The simulation must
// not be used afterwards. Procs must not park inside deferred
// functions, or Shutdown will deadlock.
func (s *Sim) Shutdown() {
	s.killing = true
	if s.events != nil {
		releaseEventHeap(s.events)
		s.events = nil
	}
	for _, p := range s.procs {
		if p.state == procParked || p.state == procNew {
			p.wake <- struct{}{}
			<-s.yield
		}
	}
}

// Live reports the number of procs that have not finished.
func (s *Sim) Live() int {
	n := 0
	for _, p := range s.procs {
		if p.state != procDone {
			n++
		}
	}
	return n
}
