// Package sim provides a deterministic discrete-event simulation kernel.
//
// All latencies in the BypassD reproduction are virtual: the simulated
// machine (SSD, IOMMU, kernel, applications) advances a virtual
// nanosecond clock instead of wall-clock time, so results are exact and
// reproducible regardless of the Go runtime's scheduling behaviour.
//
// The kernel runs simulated processes (Proc) cooperatively: exactly one
// proc executes at any moment, and control transfers between the
// scheduler and procs through a strict channel handshake. Events that
// fire at the same virtual instant run in the order they were posted.
//
// The dispatch hot path is built for throughput (DESIGN.md §12):
// same-instant events go through a FIFO staging lane instead of the
// heap (no sift traffic for wakeup storms), finished procs park their
// goroutines in a free pool for reuse by later Spawns (no goroutine,
// stack, or channel churn in steady state), and SpawnArg avoids the
// per-spawn closure allocation on the device's per-command path.
//
// Multi-device topologies partition the event stream into shards
// (DESIGN.md §14): each shard owns its own heap + staging lane, and
// the scheduler pops the global minimum by the exact (at, seq) key
// across shards — virtual-clock lockstep. Because seq is a single
// global counter, the merged dispatch order is identical to a
// single-queue scheduler's by construction, so sharding never changes
// results; a noShard reference mode and a randomized equivalence
// property test (shard_test.go) pin this the same way noLane pins the
// staging lane.
package sim

import (
	"fmt"
	"sync"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "4.02µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
	// p, when non-nil, marks a proc-resume event: the scheduler calls
	// resume(p) directly instead of going through a closure. Sleeps and
	// wakeups dominate the event stream, and allocating a closure for
	// each showed up at the top of -benchmem profiles. pgen snapshots
	// p's generation at post time; a mismatch at dispatch marks a stale
	// wakeup for a proc that finished and was recycled.
	p    *Proc
	pgen uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift
// routines are hand-rolled rather than going through container/heap:
// the interface-based API boxes every pushed and popped event, which
// dominated simulator allocations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// heapShrinkMin is the smallest backing array the pop-time shrink
// policy bothers reallocating; below it the memory is noise.
const heapShrinkMin = 256

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // nil out fn and p so dead closures/procs aren't pinned
	q = q[:n]
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	// Shrink policy: long-running scenarios spike the heap (a burst of
	// tenants, a broadcast storm) and then idle; without a shrink the
	// oversized backing array — and the stale events beyond len() that
	// append will not overwrite until the next spike — lives for the
	// rest of the simulation.
	if cap(q) >= heapShrinkMin && n <= cap(q)/4 {
		nq := make(eventHeap, n, cap(q)/2)
		copy(nq, q)
		q = nq
	}
	*h = q
	return top
}

// heapPool recycles event-heap backing arrays across Sim instances:
// every experiment cell boots (and shuts down) its own machine, and
// regrowing the heap from scratch each time showed up in -benchmem.
var heapPool = sync.Pool{}

func newEventHeap() eventHeap {
	if v := heapPool.Get(); v != nil {
		return (*(v.(*eventHeap)))[:0]
	}
	return make(eventHeap, 0, 64)
}

func releaseEventHeap(h eventHeap) {
	h = h[:cap(h)]
	for i := range h {
		h[i] = event{} // drop closure references before pooling
	}
	h = h[:0]
	heapPool.Put(&h)
}

// shard is one partition of the event stream: a heap for future posts
// plus the same-instant staging lane, both ordered by the global
// (at, seq) key. A single-device simulation has exactly one shard; a
// topology gives each device its own via AddShard.
type shard struct {
	events  eventHeap
	lane    []event
	laneOff int
}

// peek reports the shard's earliest queued (at, seq), merging the
// lane front against the heap top; ok is false when the shard is idle.
func (sh *shard) peek() (at Time, seq uint64, ok bool) {
	hasLane := sh.laneOff < len(sh.lane)
	hasHeap := len(sh.events) > 0
	if hasLane {
		le := &sh.lane[sh.laneOff]
		if !hasHeap || le.at < sh.events[0].at ||
			(le.at == sh.events[0].at && le.seq < sh.events[0].seq) {
			return le.at, le.seq, true
		}
	}
	if hasHeap {
		return sh.events[0].at, sh.events[0].seq, true
	}
	return 0, 0, false
}

// next pops the shard's earliest event by (at, seq); the shard must
// not be idle.
func (sh *shard) next() event {
	if sh.laneOff < len(sh.lane) {
		le := sh.lane[sh.laneOff]
		// Lane entries hold at == now; only a heap entry at the same
		// instant with an older seq may precede them.
		if len(sh.events) == 0 || le.at < sh.events[0].at ||
			(le.at == sh.events[0].at && le.seq < sh.events[0].seq) {
			sh.lane[sh.laneOff] = event{} // release the closure/proc ref
			sh.laneOff++
			if sh.laneOff == len(sh.lane) {
				sh.lane = sh.lane[:0]
				sh.laneOff = 0
			}
			return le
		}
	}
	return sh.events.pop()
}

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
	// procIdle marks a finished proc whose goroutine is parked in the
	// spawn pool, waiting for a later Spawn to reuse it.
	procIdle
)

// Proc is a simulated thread of execution. A Proc may only call
// blocking methods (Sleep, Cond.Wait, Resource.Acquire, ...) from its
// own goroutine while it is the running proc.
//
// Proc objects (and their goroutines) are recycled: when fn returns,
// the proc parks in the owning Sim's free pool and a later Spawn may
// hand it a new identity. ID() distinguishes logical spawns across
// reuse — two spawns never share an ID even when they share a *Proc.
type Proc struct {
	sim   *Sim
	name  string
	wake  chan struct{}
	state procState
	trace any

	// shard is the event lane the proc's resumes route to, inherited
	// from the spawning context (or pinned with SpawnOn).
	shard int

	// id is unique per logical spawn; gen increments on every recycle
	// so resume events posted for a previous life are dropped.
	id  uint64
	gen uint64

	// Exactly one of fn / fnArg is set per assignment. fnArg+arg is the
	// closure-free spawn variant (SpawnArg).
	fn    func(p *Proc)
	fnArg func(p *Proc, arg any)
	arg   any
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// ID returns the proc's logical spawn identity: unique per Spawn for
// the lifetime of the Sim, even when the underlying Proc object is
// recycled. Layers that intern per-thread state (the trace plane's
// tids) key on it instead of the pointer.
func (p *Proc) ID() uint64 { return p.id }

// SetTraceCtx attaches an opaque per-request trace context to the
// proc (the observability plane's span, threaded through layers that
// don't pass request structs). Procs run cooperatively, so the slot
// needs no synchronization. Set nil to clear.
func (p *Proc) SetTraceCtx(v any) { p.trace = v }

// TraceCtx returns the context set by SetTraceCtx, or nil.
func (p *Proc) TraceCtx() any { return p.trace }

// killed is the panic payload used to unwind procs during Shutdown.
type killed struct{}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with New.
type Sim struct {
	now Time
	// seq is the single global post counter. Every shard's events carry
	// seqs from this one stream, which is what makes the cross-shard
	// (at, seq) merge reproduce single-queue dispatch order exactly.
	seq uint64

	// shards partitions the event stream; shards[0] always exists and
	// is where everything routes in a single-device simulation. Each
	// shard keeps the same-instant staging FIFO in front of its heap:
	// events posted at exactly the current virtual time append in O(1)
	// and pop in O(1), skipping both heap sifts. Because every lane
	// entry carries at == now and a seq greater than anything posted
	// before it, draining the lane front against the heap top by
	// (at, seq) reproduces exact posted-order FIFO semantics — the
	// property test in batch_test.go pins this against a heap-only
	// reference scheduler. A lane empties before the clock advances
	// (the global pop is the (at, seq) minimum, so the clock cannot
	// pass a queued at == now entry), so entries never go stale.
	shards []shard
	// cur is the shard of the currently dispatching context: fn events
	// post to it, and spawned procs inherit it as their affinity.
	cur int
	// noLane forces every post through the heap — the one-at-a-time
	// reference dispatcher the lane equivalence test compares against.
	noLane bool
	// noShard routes every post to shard 0 regardless of affinity —
	// the single-queue reference dispatcher the shard equivalence test
	// compares against.
	noShard bool

	yield chan struct{}
	procs []*Proc
	// free holds finished procs whose goroutines are parked awaiting
	// reuse by a later Spawn.
	free       []*Proc
	nextProcID uint64
	processed  uint64

	killing bool
	running bool
}

// New returns an empty simulation with the clock at zero and a single
// event shard.
func New() *Sim {
	return &Sim{yield: make(chan struct{}), shards: []shard{{events: newEventHeap()}}}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Processed reports the number of events dispatched so far — the
// simulator's unit of work, used by the throughput benchmarks to
// report simulated events per wall second.
func (s *Sim) Processed() uint64 { return s.processed }

// AddShard grows the topology by one event shard and returns its
// index. Shard 0 exists from construction; a multi-device machine
// adds one shard per additional device so each device's command
// stream lives in its own lane, merged deterministically by (at, seq).
func (s *Sim) AddShard() int {
	s.shards = append(s.shards, shard{events: newEventHeap()})
	return len(s.shards) - 1
}

// Shards reports the number of event shards.
func (s *Sim) Shards() int { return len(s.shards) }

// enqueue routes one event to the target shard's staging lane
// (same-instant posts) or heap (future posts).
func (s *Sim) enqueue(shardIdx int, e event) {
	if s.noShard {
		shardIdx = 0
	}
	sh := &s.shards[shardIdx]
	if e.at == s.now && !s.noLane {
		sh.lane = append(sh.lane, e)
		return
	}
	sh.events.push(e)
}

// post schedules fn to run at time at on the current context's shard.
// fn executes on the scheduler goroutine; it must not block.
func (s *Sim) post(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, s.now))
	}
	s.seq++
	s.enqueue(s.cur, event{at: at, seq: s.seq, fn: fn})
}

// postResume schedules p to be resumed at time at without allocating a
// closure, on p's shard. Ordering is identical to post: the shared seq
// counter keeps resume and function events in one posted-order stream.
func (s *Sim) postResume(at Time, p *Proc) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, s.now))
	}
	s.seq++
	s.enqueue(p.shard, event{at: at, seq: s.seq, p: p, pgen: p.gen})
}

// pending reports whether any event is queued in any shard.
func (s *Sim) pending() bool {
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.laneOff < len(sh.lane) || len(sh.events) > 0 {
			return true
		}
	}
	return false
}

// peekAt returns the timestamp of the earliest queued event; pending
// must be true.
func (s *Sim) peekAt() Time {
	best := Time(0)
	var bestSeq uint64
	found := false
	for i := range s.shards {
		if at, seq, ok := s.shards[i].peek(); ok {
			if !found || at < best || (at == best && seq < bestSeq) {
				best, bestSeq, found = at, seq, true
			}
		}
	}
	return best
}

// next pops the globally earliest event by (at, seq) across shards and
// records its shard as the current dispatch context; pending must be
// true. With one shard this is the historical single-queue pop.
func (s *Sim) next() event {
	if len(s.shards) == 1 {
		s.cur = 0
		return s.shards[0].next()
	}
	best := -1
	var bAt Time
	var bSeq uint64
	for i := range s.shards {
		at, seq, ok := s.shards[i].peek()
		if !ok {
			continue
		}
		if best < 0 || at < bAt || (at == bAt && seq < bSeq) {
			best, bAt, bSeq = i, at, seq
		}
	}
	s.cur = best
	return s.shards[best].next()
}

// dispatch runs one event.
func (s *Sim) dispatch(e event) {
	s.processed++
	if e.p != nil {
		if e.pgen == e.p.gen {
			s.resume(e.p)
		}
		return
	}
	e.fn()
}

// At schedules fn to run at absolute virtual time at. fn runs in
// scheduler context and must not block; spawn a proc for blocking work.
func (s *Sim) At(at Time, fn func()) { s.post(at, fn) }

// After schedules fn to run d nanoseconds from now. fn runs in
// scheduler context and must not block.
func (s *Sim) After(d Time, fn func()) { s.post(s.now+d, fn) }

// Spawn creates a proc that begins executing fn at the current virtual
// time. It may be called before Run or from inside a running proc. The
// proc inherits the spawning context's shard.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnOn is Spawn with an explicit shard affinity: the proc's resume
// events route through that shard's lane. Topology boot pins each
// device's procs (and their tenants' workers) to the device's shard.
func (s *Sim) SpawnOn(shardIdx int, name string, fn func(p *Proc)) *Proc {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		panic(fmt.Sprintf("sim: SpawnOn shard %d of %d", shardIdx, len(s.shards)))
	}
	p := s.allocProc(s.now, name)
	p.shard = shardIdx
	p.fn = fn
	s.postResume(s.now, p)
	return p
}

// SpawnAt creates a proc that begins executing fn at virtual time at.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := s.allocProc(at, name)
	p.fn = fn
	s.postResume(at, p)
	return p
}

// SpawnArg is Spawn for hot paths: fn is a shared, pre-built function
// value and arg carries the per-spawn state, so spawning allocates no
// closure. Pointer-typed args avoid the interface boxing allocation.
func (s *Sim) SpawnArg(name string, fn func(p *Proc, arg any), arg any) *Proc {
	p := s.allocProc(s.now, name)
	p.fnArg = fn
	p.arg = arg
	s.postResume(s.now, p)
	return p
}

// allocProc hands out a proc for a new logical spawn, recycling a
// finished proc's object and goroutine when one is free.
func (s *Sim) allocProc(at Time, name string) *Proc {
	var p *Proc
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		p.name = name
		p.state = procNew
	} else {
		p = &Proc{sim: s, name: name, wake: make(chan struct{}), state: procNew}
		s.procs = append(s.procs, p)
		go s.procLoop(p)
	}
	p.shard = s.cur
	s.nextProcID++
	p.id = s.nextProcID
	return p
}

// procLoop is the body of every proc goroutine: serve one assignment,
// then park in the free pool until the next Spawn reuses the proc (or
// Shutdown unwinds it).
func (s *Sim) procLoop(p *Proc) {
	for {
		<-p.wake
		if s.killing {
			s.finish(p)
			return
		}
		if !s.runAssignment(p) {
			return
		}
	}
}

// runAssignment executes p's current fn, reporting whether the
// goroutine should keep serving recycled assignments.
func (s *Sim) runAssignment(p *Proc) (again bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				panic(r)
			}
			s.finish(p) // unwound by Shutdown mid-run
			return
		}
		if s.killing {
			s.finish(p)
			return
		}
		// Normal completion: recycle before yielding so the scheduler
		// may hand the proc straight to the next Spawn. The goroutine
		// re-parks on p.wake, which the strict handshake guarantees it
		// reaches before any wake is sent.
		p.state = procIdle
		p.gen++
		p.fn = nil
		p.fnArg = nil
		p.arg = nil
		p.trace = nil
		s.free = append(s.free, p)
		again = true
		s.yield <- struct{}{}
	}()
	p.state = procRunning
	if p.fnArg != nil {
		p.fnArg(p, p.arg)
	} else {
		p.fn(p)
	}
	return
}

// finish marks p done and returns control to the scheduler.
func (s *Sim) finish(p *Proc) {
	p.state = procDone
	s.yield <- struct{}{}
}

// resume hands control to p and blocks the scheduler until p parks or
// finishes. It must only run on the scheduler goroutine.
func (s *Sim) resume(p *Proc) {
	if p.state == procDone || p.state == procIdle {
		return
	}
	p.state = procRunning
	p.wake <- struct{}{}
	<-s.yield
}

// park suspends the calling proc until it is resumed. The proc must
// already have arranged for a wakeup (an event, cond membership, ...).
func (p *Proc) park() {
	s := p.sim
	p.state = procParked
	s.yield <- struct{}{}
	<-p.wake
	if s.killing {
		panic(killed{})
	}
	p.state = procRunning
}

// Sleep advances the proc's virtual time by d. d must be >= 0.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	s := p.sim
	s.postResume(s.now+d, p)
	p.park()
}

// Yield lets all other events scheduled at the current instant run
// before the proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// wakeAt schedules p to be resumed at absolute time at.
func (s *Sim) wakeAt(at Time, p *Proc) {
	s.postResume(at, p)
}

// Run processes events until the event queue is empty. Procs parked on
// conditions with no pending wakeups remain parked (idle servers); call
// Shutdown to unwind them.
func (s *Sim) Run() {
	if s.running {
		panic("sim: Run is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.pending() {
		e := s.next()
		s.now = e.at
		s.dispatch(e)
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock
// to t. It returns the number of events processed.
func (s *Sim) RunUntil(t Time) int {
	if s.running {
		panic("sim: RunUntil is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	n := 0
	for s.pending() && s.peekAt() <= t {
		e := s.next()
		s.now = e.at
		s.dispatch(e)
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}

// Shutdown unwinds every parked, idle, or not-yet-started proc so
// their goroutines exit. Pending events are discarded. The simulation
// must not be used afterwards. Procs must not park inside deferred
// functions, or Shutdown will deadlock.
func (s *Sim) Shutdown() {
	s.killing = true
	for si := range s.shards {
		sh := &s.shards[si]
		if sh.events != nil {
			releaseEventHeap(sh.events)
			sh.events = nil
		}
		for i := range sh.lane {
			sh.lane[i] = event{}
		}
		sh.lane = sh.lane[:0]
		sh.laneOff = 0
	}
	s.free = nil
	for _, p := range s.procs {
		if p.state == procParked || p.state == procNew || p.state == procIdle {
			p.wake <- struct{}{}
			<-s.yield
		}
	}
}

// Live reports the number of procs that have not finished (idle pooled
// procs are not live: their assignment completed).
func (s *Sim) Live() int {
	n := 0
	for _, p := range s.procs {
		if p.state != procDone && p.state != procIdle {
			n++
		}
	}
	return n
}
