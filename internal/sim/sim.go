// Package sim provides a deterministic discrete-event simulation kernel.
//
// All latencies in the BypassD reproduction are virtual: the simulated
// machine (SSD, IOMMU, kernel, applications) advances a virtual
// nanosecond clock instead of wall-clock time, so results are exact and
// reproducible regardless of the Go runtime's scheduling behaviour.
//
// The kernel runs simulated processes (Proc) cooperatively: control
// transfers between a scheduler context and procs through a strict
// channel handshake. Events that fire at the same virtual instant run
// in the order they were posted.
//
// The dispatch hot path is built for throughput (DESIGN.md §12):
// same-instant events go through a FIFO staging lane instead of the
// heap (no sift traffic for wakeup storms), finished procs park their
// goroutines in a free pool for reuse by later Spawns (no goroutine,
// stack, or channel churn in steady state), and SpawnArg avoids the
// per-spawn closure allocation on the device's per-command path.
//
// Multi-device topologies partition the event stream into shards
// (DESIGN.md §14): each shard owns its own heap + staging lane, clock,
// and seq stream, and the scheduler pops the global minimum by the
// canonical (at, shard, seq) key — virtual-clock lockstep. A
// single-shard simulation sees only the shard-0 stream, so its
// dispatch order is the historical single-queue order exactly. On top
// of the coupled scheduler sits an epoch-based conservative parallel
// engine (DESIGN.md §15, parallel.go): arm it with SetLookahead +
// SetWorkers and Run executes shards on real host cores, with
// cross-shard posts buffered per epoch and merged at barriers in a
// canonical order that makes results identical at any worker count.
package sim

import (
	"fmt"
	"sync"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "4.02µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
	// p, when non-nil, marks a proc-resume event: the scheduler calls
	// resume(p) directly instead of going through a closure. Sleeps and
	// wakeups dominate the event stream, and allocating a closure for
	// each showed up at the top of -benchmem profiles. pgen snapshots
	// p's generation at post time; a mismatch at dispatch marks a stale
	// wakeup for a proc that finished and was recycled.
	p    *Proc
	pgen uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift
// routines are hand-rolled rather than going through container/heap:
// the interface-based API boxes every pushed and popped event, which
// dominated simulator allocations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// heapShrinkMin is the smallest backing array the pop-time shrink
// policy bothers reallocating; below it the memory is noise.
const heapShrinkMin = 256

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // nil out fn and p so dead closures/procs aren't pinned
	q = q[:n]
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	// Shrink policy: long-running scenarios spike the heap (a burst of
	// tenants, a broadcast storm) and then idle; without a shrink the
	// oversized backing array — and the stale events beyond len() that
	// append will not overwrite until the next spike — lives for the
	// rest of the simulation.
	if cap(q) >= heapShrinkMin && n <= cap(q)/4 {
		nq := make(eventHeap, n, cap(q)/2)
		copy(nq, q)
		q = nq
	}
	*h = q
	return top
}

// heapPool recycles event-heap backing arrays across Sim instances:
// every experiment cell boots (and shuts down) its own machine, and
// regrowing the heap from scratch each time showed up in -benchmem.
var heapPool = sync.Pool{}

func newEventHeap() eventHeap {
	if v := heapPool.Get(); v != nil {
		return (*(v.(*eventHeap)))[:0]
	}
	return make(eventHeap, 0, 64)
}

func releaseEventHeap(h eventHeap) {
	h = h[:cap(h)]
	for i := range h {
		h[i] = event{} // drop closure references before pooling
	}
	h = h[:0]
	heapPool.Put(&h)
}

// outPost is a cross-shard post buffered during an epoch (parallel.go):
// the event plus its destination shard. Its seq is assigned when the
// barrier merge delivers it, in canonical order.
type outPost struct {
	target int
	e      event
}

// shard is one partition of the event stream and its private runtime
// state: a heap for future posts, the same-instant staging lane, a
// local clock and seq stream, and the proc pool whose resumes route
// here. A single-device simulation has exactly one shard; a topology
// gives each device its own via AddShard. In an epoch run (DESIGN.md
// §15) each shard is owned by exactly one worker per epoch, so none of
// these fields need locks.
type shard struct {
	events  eventHeap
	lane    []event
	laneOff int

	// now is the shard's local clock: the timestamp of the last event
	// dispatched on it. Under the coupled scheduler it trails the
	// global clock; under the epoch engine it runs ahead of it, up to
	// the epoch horizon.
	now Time
	// seq is the shard's post counter. The canonical event key is
	// (at, shard, seq): per-shard streams with the shard index as the
	// tiebreak give multi-shard runs a total order that no longer
	// depends on a global counter — which is what lets shards execute
	// on separate host cores — while shard 0's stream alone reproduces
	// the historical single-queue order exactly.
	seq       uint64
	processed uint64

	// Proc machinery: the handshake channel and the pools of procs
	// whose resume events route through this shard. Per-shard pools
	// keep spawn/park/finish free of cross-shard traffic in parallel
	// runs; proc goroutines are shard-resident for their lifetime.
	yield      chan struct{}
	procs      []*Proc
	free       []*Proc
	nextProcID uint64

	// outbox buffers cross-shard posts made during an epoch; the
	// barrier merge drains it in source-shard order.
	outbox []outPost
}

func newShard() shard {
	return shard{events: newEventHeap(), yield: make(chan struct{})}
}

// peek reports the shard's earliest queued (at, seq), merging the
// lane front against the heap top; ok is false when the shard is idle.
func (sh *shard) peek() (at Time, seq uint64, ok bool) {
	hasLane := sh.laneOff < len(sh.lane)
	hasHeap := len(sh.events) > 0
	if hasLane {
		le := &sh.lane[sh.laneOff]
		if !hasHeap || le.at < sh.events[0].at ||
			(le.at == sh.events[0].at && le.seq < sh.events[0].seq) {
			return le.at, le.seq, true
		}
	}
	if hasHeap {
		return sh.events[0].at, sh.events[0].seq, true
	}
	return 0, 0, false
}

// next pops the shard's earliest event by (at, seq); the shard must
// not be idle.
func (sh *shard) next() event {
	if sh.laneOff < len(sh.lane) {
		le := sh.lane[sh.laneOff]
		// Lane entries hold at == the shard clock at post time; only a
		// heap entry at the same instant with an older seq may precede
		// them.
		if len(sh.events) == 0 || le.at < sh.events[0].at ||
			(le.at == sh.events[0].at && le.seq < sh.events[0].seq) {
			sh.lane[sh.laneOff] = event{} // release the closure/proc ref
			sh.laneOff++
			if sh.laneOff == len(sh.lane) {
				sh.lane = sh.lane[:0]
				sh.laneOff = 0
			}
			return le
		}
	}
	return sh.events.pop()
}

// idle reports whether the shard has no queued events.
func (sh *shard) idle() bool {
	return sh.laneOff >= len(sh.lane) && len(sh.events) == 0
}

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
	// procIdle marks a finished proc whose goroutine is parked in the
	// spawn pool, waiting for a later Spawn to reuse it.
	procIdle
)

// Proc is a simulated thread of execution. A Proc may only call
// blocking methods (Sleep, Cond.Wait, Resource.Acquire, ...) from its
// own goroutine while it is the running proc.
//
// Proc objects (and their goroutines) are recycled: when fn returns,
// the proc parks in its shard's free pool and a later Spawn may hand
// it a new identity. ID() distinguishes logical spawns across reuse —
// two spawns never share an ID even when they share a *Proc.
type Proc struct {
	sim   *Sim
	name  string
	wake  chan struct{}
	state procState
	trace any

	// shard is the event lane the proc's resumes route to. Procs are
	// shard-resident: the shard is fixed at first allocation (from the
	// spawning context, or pinned with SpawnOn) and recycling reuses
	// the proc only for spawns on the same shard.
	shard int

	// id is unique per logical spawn; gen increments on every recycle
	// so resume events posted for a previous life are dropped.
	id  uint64
	gen uint64

	// Exactly one of fn / fnArg is set per assignment. fnArg+arg is the
	// closure-free spawn variant (SpawnArg).
	fn    func(p *Proc)
	fnArg func(p *Proc, arg any)
	arg   any
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the proc's current virtual time: its shard's clock or
// the global clock, whichever is ahead. Under the coupled scheduler
// this equals the global clock whenever the proc is running; under
// the epoch engine it is the correct local time while the global
// clock trails at the epoch floor.
func (p *Proc) Now() Time { return p.sim.ShardNow(p.shard) }

// Shard reports the event shard the proc's resumes route through.
func (p *Proc) Shard() int { return p.shard }

// ID returns the proc's logical spawn identity: unique per Spawn for
// the lifetime of the Sim, even when the underlying Proc object is
// recycled. Layers that intern per-thread state (the trace plane's
// tids) key on it instead of the pointer. IDs are tagged with the
// shard in the high bits, so shard 0's IDs — the only shard of a
// single-device simulation — are the historical 1, 2, 3, ...
func (p *Proc) ID() uint64 { return p.id }

// SetTraceCtx attaches an opaque per-request trace context to the
// proc (the observability plane's span, threaded through layers that
// don't pass request structs). Procs run cooperatively, so the slot
// needs no synchronization. Set nil to clear.
func (p *Proc) SetTraceCtx(v any) { p.trace = v }

// TraceCtx returns the context set by SetTraceCtx, or nil.
func (p *Proc) TraceCtx() any { return p.trace }

// killed is the panic payload used to unwind procs during Shutdown.
type killed struct{}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with New.
type Sim struct {
	now Time

	// shards partitions the event stream; shards[0] always exists and
	// is where everything routes in a single-device simulation. Each
	// shard keeps the same-instant staging FIFO in front of its heap:
	// events posted at exactly the shard's current time append in O(1)
	// and pop in O(1), skipping both heap sifts. Because every lane
	// entry carries at == the shard clock and a seq greater than
	// anything posted on the shard before it, draining the lane front
	// against the heap top by (at, seq) reproduces exact posted-order
	// FIFO semantics — the property test in batch_test.go pins this
	// against a heap-only reference scheduler. A lane empties before
	// the shard clock advances (pops take the (at, seq) minimum, so
	// the clock cannot pass a queued at == now entry), so entries
	// never go stale.
	shards []shard
	// cur is the shard of the currently dispatching context under the
	// coupled scheduler: contextless fn posts route to it, and spawned
	// procs inherit it as their affinity. The parallel engine never
	// reads it — armed workloads use the Proc-context posting APIs.
	cur int
	// noLane forces every post through the heap — the one-at-a-time
	// reference dispatcher the lane equivalence test compares against.
	noLane bool
	// noShard routes every post to shard 0 regardless of affinity —
	// the single-queue reference dispatcher the shard equivalence test
	// compares against.
	noShard bool

	// Winner cache for the coupled cross-shard pop: next() remembers
	// which shard won the last scan and the best key seen anywhere
	// else (the runner-up). As long as the winner's head stays below
	// the runner-up the pop is O(1) instead of O(shards); enqueues to
	// other shards min-update the runner-up incrementally, and only a
	// winner switch pays a full rescan.
	winner      int
	runnerOK    bool
	runnerAt    Time
	runnerShard int
	runnerSeq   uint64

	// Parallel-engine knobs (parallel.go). lookahead > 0 with more
	// than one shard arms the epoch engine for Run; workers is the
	// number of host goroutines that execute shards inside an epoch.
	lookahead Time
	workers   int
	// epochActive is true while runEpochs is driving the simulation;
	// cross-shard posts divert to the source shard's outbox.
	epochActive bool

	killing bool
	running bool
}

// New returns an empty simulation with the clock at zero and a single
// event shard.
func New() *Sim {
	return &Sim{shards: []shard{newShard()}, winner: -1, workers: 1}
}

// Now returns the current virtual time of the coupled scheduler. Under
// the epoch engine this is the epoch floor — procs should use
// Proc.Now (their shard clock) instead; after Run returns it is the
// maximum across shards.
func (s *Sim) Now() Time { return s.now }

// ShardNow reports virtual time as seen from the given shard: the
// shard clock or the global clock, whichever is ahead. Under the
// coupled scheduler this equals Now(); under the epoch engine it is
// the shard's local time.
func (s *Sim) ShardNow(k int) Time {
	if sn := s.shards[k].now; sn > s.now {
		return sn
	}
	return s.now
}

// ShardClock returns a closure over ShardNow(k) — the time source
// layers with a stored clock function (the filesystem's mtimes) use
// so that each device's timestamps come from its own shard.
func (s *Sim) ShardClock(k int) func() Time {
	return func() Time { return s.ShardNow(k) }
}

// Processed reports the number of events dispatched so far — the
// simulator's unit of work, used by the throughput benchmarks to
// report simulated events per wall second.
func (s *Sim) Processed() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].processed
	}
	return n
}

// AddShard grows the topology by one event shard and returns its
// index. Shard 0 exists from construction; a multi-device machine
// adds one shard per additional device so each device's command
// stream lives in its own lane, merged deterministically by the
// canonical (at, shard, seq) key.
func (s *Sim) AddShard() int {
	s.shards = append(s.shards, newShard())
	s.winner = -1
	s.runnerOK = false
	return len(s.shards) - 1
}

// Shards reports the number of event shards.
func (s *Sim) Shards() int { return len(s.shards) }

// SetLookahead sets the epoch window for the conservative parallel
// engine: with more than one shard and lookahead > 0, Run executes
// epochs of width lookahead instead of the coupled one-event-at-a-time
// loop. The caller asserts that while armed, no cross-shard post
// travels less than the window — the barrier merge panics on a
// violation. Topology boot derives a hardware floor from the machine's
// configured latencies; phases that additionally promise cross-shard
// quiescence (device-affine tenant traffic) may widen the window to
// amortize barriers. Set 0 to disarm.
func (s *Sim) SetLookahead(d Time) {
	if d < 0 {
		panic("sim: negative lookahead")
	}
	s.lookahead = d
}

// Lookahead reports the current epoch window (0 = coupled dispatch).
func (s *Sim) Lookahead() Time { return s.lookahead }

// SetWorkers sets how many host goroutines execute shards inside an
// epoch. It only matters while the epoch engine is armed
// (SetLookahead > 0, shards > 1); results are identical at any worker
// count by construction. n < 1 is treated as 1.
func (s *Sim) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers reports the configured worker count.
func (s *Sim) Workers() int { return s.workers }

// keyLess orders the canonical (at, shard, seq) event key.
func keyLess(a1 Time, s1 int, q1 uint64, a2 Time, s2 int, q2 uint64) bool {
	if a1 != a2 {
		return a1 < a2
	}
	if s1 != s2 {
		return s1 < s2
	}
	return q1 < q2
}

// routePost is the single enqueue path: e goes to shard tgt with a seq
// from tgt's stream; src is the posting context's shard. During an
// epoch run cross-shard posts divert to the source shard's outbox and
// get their seq at the barrier merge — that deferred, canonical
// assignment is what makes parallel execution order-identical to
// sequential.
func (s *Sim) routePost(src, tgt int, e event) {
	if s.noShard {
		src, tgt = 0, 0
	}
	if s.epochActive && tgt != src {
		sh := &s.shards[src]
		sh.outbox = append(sh.outbox, outPost{target: tgt, e: e})
		return
	}
	sh := &s.shards[tgt]
	sh.seq++
	e.seq = sh.seq
	if e.at == sh.now && !s.noLane {
		sh.lane = append(sh.lane, e)
	} else {
		sh.events.push(e)
	}
	if !s.epochActive {
		s.noteEnqueue(tgt, e.at, e.seq)
	}
}

// noteEnqueue keeps the coupled pop's runner-up key fresh: an enqueue
// to a non-winner shard can only lower that shard's head, so folding
// its key into the cached runner-up preserves "runner-up ≤ every
// non-winner head" without rescanning.
func (s *Sim) noteEnqueue(k int, at Time, seq uint64) {
	w := s.winner
	if w < 0 || k == w {
		return
	}
	if !s.runnerOK || keyLess(at, k, seq, s.runnerAt, s.runnerShard, s.runnerSeq) {
		s.runnerAt, s.runnerShard, s.runnerSeq, s.runnerOK = at, k, seq, true
	}
}

// postFloor is the earliest legal timestamp for a post targeting shard
// k: the shard clock, and — outside an epoch run, where the global
// clock is the true frontier — the global clock too. (Inside an epoch
// shard clocks legitimately run ahead of s.now.)
func (s *Sim) postFloor(k int) Time {
	floor := s.shards[k].now
	if !s.epochActive && s.now > floor {
		floor = s.now
	}
	return floor
}

// post schedules fn to run at time at on the current coupled dispatch
// context's shard. fn executes on the scheduler goroutine; it must not
// block. Not for use from parallel (epoch-armed) workloads — those
// post through a Proc context.
func (s *Sim) post(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, s.now))
	}
	s.routePost(s.cur, s.cur, event{at: at, fn: fn})
}

// postResume schedules p to be resumed at time at without allocating a
// closure, on p's shard.
func (s *Sim) postResume(at Time, p *Proc) {
	if floor := s.postFloor(p.shard); at < floor {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, floor))
	}
	s.routePost(p.shard, p.shard, event{at: at, p: p, pgen: p.gen})
}

// pending reports whether any event is queued in any shard.
func (s *Sim) pending() bool {
	for i := range s.shards {
		if !s.shards[i].idle() {
			return true
		}
	}
	return false
}

// peekAt returns the timestamp of the earliest queued event; pending
// must be true.
func (s *Sim) peekAt() Time {
	best := Time(0)
	found := false
	for i := range s.shards {
		if at, _, ok := s.shards[i].peek(); ok {
			if !found || at < best {
				best, found = at, true
			}
		}
	}
	return best
}

// next pops the globally earliest event by the canonical
// (at, shard, seq) key and records its shard as the current dispatch
// context; pending must be true. With one shard this is the historical
// single-queue pop. With several, the winner cache makes the common
// case — the same shard winning repeatedly — O(1): the full scan runs
// only when the cached winner empties or its head falls behind the
// cached runner-up.
func (s *Sim) next() event {
	if len(s.shards) == 1 {
		s.cur = 0
		return s.shards[0].next()
	}
	if w := s.winner; w >= 0 {
		if at, seq, ok := s.shards[w].peek(); ok &&
			(!s.runnerOK || keyLess(at, w, seq, s.runnerAt, s.runnerShard, s.runnerSeq)) {
			s.cur = w
			return s.shards[w].next()
		}
	}
	best, second := -1, -1
	var bAt, rAt Time
	var bSeq, rSeq uint64
	for i := range s.shards {
		at, seq, ok := s.shards[i].peek()
		if !ok {
			continue
		}
		if best < 0 || keyLess(at, i, seq, bAt, best, bSeq) {
			second, rAt, rSeq = best, bAt, bSeq
			best, bAt, bSeq = i, at, seq
		} else if second < 0 || keyLess(at, i, seq, rAt, second, rSeq) {
			second, rAt, rSeq = i, at, seq
		}
	}
	s.winner = best
	s.runnerOK = second >= 0
	if s.runnerOK {
		s.runnerAt, s.runnerShard, s.runnerSeq = rAt, second, rSeq
	}
	s.cur = best
	return s.shards[best].next()
}

// dispatch runs one event on sh.
func (s *Sim) dispatch(sh *shard, e event) {
	sh.processed++
	if e.p != nil {
		if e.pgen == e.p.gen {
			s.resume(e.p)
		}
		return
	}
	e.fn()
}

// At schedules fn to run at absolute virtual time at, on the current
// coupled dispatch context's shard. fn runs in scheduler context and
// must not block; spawn a proc for blocking work.
func (s *Sim) At(at Time, fn func()) { s.post(at, fn) }

// After schedules fn to run d nanoseconds from now, on the current
// coupled dispatch context's shard.
func (s *Sim) After(d Time, fn func()) { s.post(s.now+d, fn) }

// AtOn schedules fn at absolute time at on an explicit shard. It is
// the shard-safe variant for layers that hold a shard index rather
// than a Proc context (a device's wakeup timer): in an epoch run the
// caller must be executing on that same shard.
func (s *Sim) AtOn(k int, at Time, fn func()) {
	if floor := s.postFloor(k); at < floor {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, floor))
	}
	s.routePost(k, k, event{at: at, fn: fn})
}

// Spawn creates a proc that begins executing fn at the current virtual
// time. It may be called before Run or from inside coupled dispatch.
// The proc inherits the spawning context's shard. From a running proc
// in a parallel workload, use Proc.Spawn instead.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnOn is Spawn with an explicit shard affinity: the proc's resume
// events route through that shard's lane. Topology boot pins each
// device's procs (and their tenants' workers) to the device's shard.
func (s *Sim) SpawnOn(shardIdx int, name string, fn func(p *Proc)) *Proc {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		panic(fmt.Sprintf("sim: SpawnOn shard %d of %d", shardIdx, len(s.shards)))
	}
	p := s.allocProcOn(shardIdx, name)
	p.fn = fn
	s.postResume(s.now, p)
	return p
}

// SpawnAt creates a proc that begins executing fn at virtual time at.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := s.allocProcOn(s.curShard(), name)
	p.fn = fn
	s.postResume(at, p)
	return p
}

// SpawnArg is Spawn for hot paths: fn is a shared, pre-built function
// value and arg carries the per-spawn state, so spawning allocates no
// closure. Pointer-typed args avoid the interface boxing allocation.
func (s *Sim) SpawnArg(name string, fn func(p *Proc, arg any), arg any) *Proc {
	p := s.allocProcOn(s.curShard(), name)
	p.fnArg = fn
	p.arg = arg
	s.postResume(s.now, p)
	return p
}

// curShard is the spawn affinity of the coupled dispatch context.
func (s *Sim) curShard() int {
	if s.noShard {
		return 0
	}
	return s.cur
}

// Spawn creates a proc on the calling proc's shard, starting at the
// calling proc's current time. This is the spawn to use from procs in
// parallel workloads: it touches only shard-local state.
func (p *Proc) Spawn(name string, fn func(q *Proc)) *Proc {
	s := p.sim
	q := s.allocProcOn(p.shard, name)
	q.fn = fn
	s.postResume(p.Now(), q)
	return q
}

// SpawnArg is the closure-free Spawn from a proc context.
func (p *Proc) SpawnArg(name string, fn func(q *Proc, arg any), arg any) *Proc {
	s := p.sim
	q := s.allocProcOn(p.shard, name)
	q.fnArg = fn
	q.arg = arg
	s.postResume(p.Now(), q)
	return q
}

// After schedules fn d nanoseconds after the calling proc's current
// time, on the proc's shard. fn runs in scheduler context.
func (p *Proc) After(d Time, fn func()) {
	p.At(p.Now()+d, fn)
}

// At schedules fn at absolute time at on the calling proc's shard.
func (p *Proc) At(at Time, fn func()) {
	s := p.sim
	if floor := s.postFloor(p.shard); at < floor {
		panic(fmt.Sprintf("sim: event posted in the past (%v < %v)", at, floor))
	}
	s.routePost(p.shard, p.shard, event{at: at, fn: fn})
}

// PostOn schedules fn on another shard, delay nanoseconds after the
// calling proc's current time. It is the one cross-shard primitive
// legal inside an epoch run: the post lands in the source shard's
// outbox and is merged at the next barrier, so delay must be at least
// the armed lookahead. Outside an epoch run it is an ordinary
// cross-shard post.
func (p *Proc) PostOn(dst int, delay Time, fn func()) {
	s := p.sim
	if delay < 0 {
		panic("sim: negative PostOn delay")
	}
	s.routePost(p.shard, dst, event{at: p.Now() + delay, fn: fn})
}

// allocProcOn hands out a proc resident on shard k for a new logical
// spawn, recycling a finished proc's object and goroutine when one is
// free. Must run on a context that owns shard k (the coupled
// scheduler, or k's worker during an epoch).
func (s *Sim) allocProcOn(k int, name string) *Proc {
	sh := &s.shards[k]
	var p *Proc
	if n := len(sh.free); n > 0 {
		p = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		p.name = name
		p.state = procNew
	} else {
		p = &Proc{sim: s, name: name, wake: make(chan struct{}), state: procNew, shard: k}
		sh.procs = append(sh.procs, p)
		go s.procLoop(p)
	}
	sh.nextProcID++
	p.id = uint64(k)<<48 | sh.nextProcID
	return p
}

// procLoop is the body of every proc goroutine: serve one assignment,
// then park in the shard's free pool until the next Spawn reuses the
// proc (or Shutdown unwinds it).
func (s *Sim) procLoop(p *Proc) {
	for {
		<-p.wake
		if s.killing {
			s.finish(p)
			return
		}
		if !s.runAssignment(p) {
			return
		}
	}
}

// runAssignment executes p's current fn, reporting whether the
// goroutine should keep serving recycled assignments.
func (s *Sim) runAssignment(p *Proc) (again bool) {
	sh := &s.shards[p.shard]
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				panic(r)
			}
			s.finish(p) // unwound by Shutdown mid-run
			return
		}
		if s.killing {
			s.finish(p)
			return
		}
		// Normal completion: recycle before yielding so the scheduler
		// may hand the proc straight to the next Spawn. The goroutine
		// re-parks on p.wake, which the strict handshake guarantees it
		// reaches before any wake is sent.
		p.state = procIdle
		p.gen++
		p.fn = nil
		p.fnArg = nil
		p.arg = nil
		p.trace = nil
		sh.free = append(sh.free, p)
		again = true
		sh.yield <- struct{}{}
	}()
	p.state = procRunning
	if p.fnArg != nil {
		p.fnArg(p, p.arg)
	} else {
		p.fn(p)
	}
	return
}

// finish marks p done and returns control to the scheduler.
func (s *Sim) finish(p *Proc) {
	p.state = procDone
	s.shards[p.shard].yield <- struct{}{}
}

// resume hands control to p and blocks the dispatching context until p
// parks or finishes. It must only run on the context that owns p's
// shard.
func (s *Sim) resume(p *Proc) {
	if p.state == procDone || p.state == procIdle {
		return
	}
	p.state = procRunning
	p.wake <- struct{}{}
	<-s.shards[p.shard].yield
}

// park suspends the calling proc until it is resumed. The proc must
// already have arranged for a wakeup (an event, cond membership, ...).
func (p *Proc) park() {
	s := p.sim
	p.state = procParked
	s.shards[p.shard].yield <- struct{}{}
	<-p.wake
	if s.killing {
		panic(killed{})
	}
	p.state = procRunning
}

// Sleep advances the proc's virtual time by d. d must be >= 0.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	s := p.sim
	s.postResume(p.Now()+d, p)
	p.park()
}

// Yield lets all other events scheduled at the current instant on the
// proc's shard run before the proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// wakeAt schedules p to be resumed at absolute time at. Wakeups route
// through p's shard; a cross-shard waker inside an epoch run is out of
// contract (see Cond).
func (s *Sim) wakeAt(at Time, p *Proc) {
	s.postResume(at, p)
}

// Run processes events until the event queue is empty. Procs parked on
// conditions with no pending wakeups remain parked (idle servers); call
// Shutdown to unwind them.
//
// With more than one shard and a non-zero lookahead, Run uses the
// conservative epoch engine (parallel.go); otherwise it is the coupled
// loop popping the global (at, shard, seq) minimum one event at a time.
// Eligibility is re-checked between dispatches, so a harness may arm
// the engine mid-run (SetLookahead from inside an event handler, e.g.
// after a setup phase that needs coupled cross-shard freedom) and the
// remaining events execute in epochs.
func (s *Sim) Run() {
	if s.running {
		panic("sim: Run is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.pending() {
		if len(s.shards) > 1 && s.lookahead > 0 {
			s.runEpochs()
			continue
		}
		e := s.next()
		s.now = e.at
		sh := &s.shards[s.cur]
		sh.now = e.at
		s.dispatch(sh, e)
	}
}

// ParallelArmed reports whether the epoch engine is armed: the next
// Run (or the remainder of the current one) will execute in epochs.
// Control planes consult this to confine cross-shard side effects to
// coupled phases.
func (s *Sim) ParallelArmed() bool {
	return len(s.shards) > 1 && s.lookahead > 0
}

// RunUntil processes events with timestamps <= t, then sets the clock
// to t. It returns the number of events processed. RunUntil always
// dispatches coupled (no epoch engine): it is a harness-stepping API.
func (s *Sim) RunUntil(t Time) int {
	if s.running {
		panic("sim: RunUntil is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	n := 0
	for s.pending() && s.peekAt() <= t {
		e := s.next()
		s.now = e.at
		sh := &s.shards[s.cur]
		sh.now = e.at
		s.dispatch(sh, e)
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}

// Shutdown unwinds every parked, idle, or not-yet-started proc so
// their goroutines exit. Pending events are discarded. The simulation
// must not be used afterwards. Procs must not park inside deferred
// functions, or Shutdown will deadlock.
func (s *Sim) Shutdown() {
	s.killing = true
	s.winner = -1
	s.runnerOK = false
	for si := range s.shards {
		sh := &s.shards[si]
		if sh.events != nil {
			releaseEventHeap(sh.events)
			sh.events = nil
		}
		for i := range sh.lane {
			sh.lane[i] = event{}
		}
		sh.lane = sh.lane[:0]
		sh.laneOff = 0
		for i := range sh.outbox {
			sh.outbox[i] = outPost{}
		}
		sh.outbox = sh.outbox[:0]
		sh.free = nil
	}
	for si := range s.shards {
		sh := &s.shards[si]
		for _, p := range sh.procs {
			if p.state == procParked || p.state == procNew || p.state == procIdle {
				p.wake <- struct{}{}
				<-s.shards[p.shard].yield
			}
		}
	}
}

// Live reports the number of procs that have not finished (idle pooled
// procs are not live: their assignment completed).
func (s *Sim) Live() int {
	n := 0
	for si := range s.shards {
		for _, p := range s.shards[si].procs {
			if p.state != procDone && p.state != procIdle {
				n++
			}
		}
	}
	return n
}
