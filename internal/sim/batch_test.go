package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// laneScenario drives one randomized workload and returns its full
// execution trace: every logged step tagged with the virtual time it
// ran at. The workload deliberately stresses the staging lane's edge
// cases — bursts of same-timestamp posts, events that post more
// same-instant events from inside their handlers, zero-length sleeps,
// and cond-based resume ordering.
func laneScenario(seed int64, noLane bool) []string {
	s := New()
	s.noLane = noLane
	var log []string
	trace := func(tag string, p *Proc) {
		log = append(log, fmt.Sprintf("%d:%s", p.Now(), tag))
	}
	cond := s.NewCond()
	waiting := 0

	const procs = 8
	for i := 0; i < procs; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for step := 0; step < 30; step++ {
				tag := fmt.Sprintf("p%d.%d", i, step)
				switch rng.Intn(6) {
				case 0: // same-instant resume through the scheduler
					p.Sleep(0)
					trace(tag+":sleep0", p)
				case 1: // clock advance
					p.Sleep(Time(1 + rng.Intn(3)))
					trace(tag+":sleep", p)
				case 2: // cross-post: a handler that posts another handler
					step := step
					s.After(0, func() {
						log = append(log, fmt.Sprintf("%d:p%d.%d:post", s.Now(), i, step))
						s.After(0, func() {
							log = append(log, fmt.Sprintf("%d:p%d.%d:post2", s.Now(), i, step))
						})
					})
					trace(tag+":after", p)
				case 3: // same-instant spawn burst
					for k := 0; k < 2; k++ {
						k := k
						s.Spawn("child", func(c *Proc) {
							trace(fmt.Sprintf("p%d.%d:child%d", i, step, k), c)
							c.Sleep(0)
							trace(fmt.Sprintf("p%d.%d:child%d-end", i, step, k), c)
						})
					}
					trace(tag+":spawned", p)
				case 4: // park on the shared cond
					if waiting < 3 {
						waiting++
						cond.Wait(p)
						waiting--
						trace(tag+":woke", p)
					} else {
						cond.Broadcast()
						trace(tag+":broadcast", p)
					}
				case 5: // wake one waiter
					cond.Signal()
					trace(tag+":signal", p)
				}
			}
			trace(fmt.Sprintf("p%d:done", i), p)
		})
	}
	s.Run()
	// Unwind any procs still parked on the cond.
	s.Shutdown()
	return log
}

// TestLaneDispatchEquivalenceProperty pins the staging lane's defining
// property: batched same-instant dispatch is observationally identical
// to the heap-only reference scheduler. Any divergence in event order
// cascades through the per-proc RNGs, so a single out-of-order wake
// diverges the whole trace.
func TestLaneDispatchEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		lane := laneScenario(seed, false)
		ref := laneScenario(seed, true)
		if len(lane) != len(ref) {
			t.Fatalf("seed %d: lane trace has %d steps, reference %d", seed, len(lane), len(ref))
		}
		for i := range lane {
			if lane[i] != ref[i] {
				t.Fatalf("seed %d: traces diverge at step %d: lane %q, reference %q", seed, i, lane[i], ref[i])
			}
		}
	}
}

// TestHeapPopReleasesAndShrinks checks the two pop-side hygiene
// properties: the vacated tail slot drops its closure/proc references
// (so finished events don't pin memory until overwritten), and the
// backing array shrinks once occupancy falls to a quarter.
func TestHeapPopReleasesAndShrinks(t *testing.T) {
	h := newEventHeap()
	fn := func() {}
	const n = 1024
	for i := 0; i < n; i++ {
		h.push(event{at: Time(i), seq: uint64(i), fn: fn})
	}
	grown := cap(h)
	if grown < n {
		t.Fatalf("cap %d after %d pushes", grown, n)
	}
	for i := 0; i < n-1; i++ {
		h.pop()
		full := h[:cap(h)]
		if tail := full[len(h)]; tail.fn != nil || tail.p != nil {
			t.Fatalf("pop %d: vacated slot still holds fn/proc references", i)
		}
	}
	if cap(h) >= grown {
		t.Fatalf("cap %d did not shrink from %d after draining to %d events", cap(h), grown, len(h))
	}
	if e := h.pop(); e.at != Time(n-1) {
		t.Fatalf("last event at %v, want %v", e.at, Time(n-1))
	}
}

// TestProcReuseKeepsIdentity checks the proc pool's no-aliasing
// contract: recycled *Proc values must present fresh logical
// identities (distinct IDs) and stale resume events posted against a
// dead generation must never wake the proc's next tenant.
func TestProcReuseKeepsIdentity(t *testing.T) {
	s := New()
	seen := make(map[uint64]string)
	var order []string
	for round := 0; round < 5; round++ {
		round := round
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn("r", func(p *Proc) {
				name := fmt.Sprintf("r%d.%d", round, i)
				if prev, dup := seen[p.ID()]; dup {
					t.Errorf("proc ID %d reused: %s then %s", p.ID(), prev, name)
				}
				seen[p.ID()] = name
				p.Sleep(Time(i))
				order = append(order, name)
			})
		}
		s.Run() // drain: procs recycle into the free list between rounds
	}
	if len(seen) != 20 {
		t.Fatalf("%d distinct proc IDs, want 20", len(seen))
	}
	if len(order) != 20 {
		t.Fatalf("%d completions, want 20", len(order))
	}
	s.Shutdown()
}
