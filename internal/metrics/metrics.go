// Package metrics is the process-wide metrics registry of the
// observability plane: a unified Counter/Gauge/Histogram API with
// labeled series behind the ad-hoc tallies the subsystems kept before
// (userlib.Stats, device/IOMMU counters, fault-plane aggregates).
//
// The registry follows the faults package's activation pattern:
// bypassd-bench (or a test) calls Activate before booting machines,
// and constructors resolve their series handles once at boot via
// GetCounter/GetGauge/GetHistogram. When no registry is active the
// handles are nil, and every method on a nil handle is a no-op — the
// disabled configuration stays structurally identical to a build
// without metrics: no locks, no atomics, no allocations.
//
// Series values are sums of per-machine contributions. Machines boot
// concurrently under parallel sweeps, so Counter/Gauge use atomics and
// Histogram takes a lock; all of them accumulate commutatively
// (integer adds, bucket counts), so Render output is byte-identical at
// any -j, like the experiment reports.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Counter is a monotonically increasing series. A nil *Counter — the
// handle subsystems hold when no registry is active — is inert.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can move both ways (queue depths, live
// objects). A nil *Gauge is inert.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a latency series over the virtual clock. Observations
// land in a shared log-bucketed stats.Histogram; the running sum is
// kept in integer nanoseconds so the rendered mean does not depend on
// the order concurrent machines observed samples in (float addition is
// not associative; integer addition is). A nil *Histogram is inert.
type Histogram struct {
	mu  sync.Mutex
	h   *stats.Histogram
	sum int64
}

// Observe records one sample.
func (h *Histogram) Observe(v sim.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.sum += int64(v)
	h.mu.Unlock()
}

// HistogramSummary is a histogram's rendered state.
type HistogramSummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

func (h *Histogram) summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.h.Count()}
	if s.Count > 0 {
		s.MeanNS = h.sum / s.Count
		s.P50NS = int64(h.h.Percentile(50))
		s.P99NS = int64(h.h.Percentile(99))
		s.MaxNS = int64(h.h.Max())
	}
	return s
}

// DefaultSeriesCap bounds the number of distinct label-value
// combinations one metric name may hold. The frontend tier simulates
// millions of users; a per-user label would otherwise grow the
// registry without bound and OOM the host. The first cap distinct
// label-sets resolved for a name keep their own series; every later
// combination folds into that name's single "_overflow" bucket, so
// adds are never lost — only aggregated. In a deterministic run the
// surviving label-sets are deterministic too (series are resolved at
// machine boot or from generator procs, in simulation order), so
// Render stays byte-identical with the cap engaged.
const DefaultSeriesCap = 512

// overflowKey is the fold-target series for a name past its cap.
func overflowKey(name string) string { return name + `{label="_overflow"}` }

// Registry holds every series created while it was active.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	seriesCap int
	perName   map[string]int // distinct labeled series per metric name
}

// NewRegistry returns an empty registry (tests; Activate for the
// process-global one).
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		seriesCap: DefaultSeriesCap,
		perName:   make(map[string]int),
	}
}

// SetSeriesCap overrides the per-name labeled-series cap (tests, or
// deployments that know their cardinality). Series already created
// are kept; values below 1 restore the default.
func (r *Registry) SetSeriesCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = DefaultSeriesCap
	}
	r.seriesCap = n
}

// resolveKey maps (name, labels) to the series key to use, folding
// new label-sets into the name's overflow bucket once the cap is
// reached. known reports whether a candidate key already has a series
// (existing series always resolve to themselves). Callers hold r.mu.
func (r *Registry) resolveKey(name string, labels []string, known func(string) bool) string {
	key := seriesKey(name, labels)
	if len(labels) == 0 || known(key) {
		return key
	}
	if r.perName[name] >= r.seriesCap {
		return overflowKey(name)
	}
	r.perName[name]++
	return key
}

var active atomic.Pointer[Registry]

// Activate installs a fresh process-global registry and returns it.
// Subsystem constructors resolve their handles from it at boot.
func Activate() *Registry {
	r := NewRegistry()
	active.Store(r)
	return r
}

// Deactivate removes the global registry; subsequently booted
// machines get nil (inert) handles.
func Deactivate() { active.Store(nil) }

// Active returns the global registry, or nil when metrics are off.
func Active() *Registry { return active.Load() }

// seriesKey renders "name{k1="v1",k2="v2"}" with labels sorted by key,
// from an alternating key, value list.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must alternate key, value")
	}
	pairs := make([]string, len(labels)/2)
	for i := range pairs {
		pairs[i] = labels[2*i] + `="` + labels[2*i+1] + `"`
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// Counter resolves (creating on first use) a counter series.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.resolveKey(name, labels, func(k string) bool { _, ok := r.counters[k]; return ok })
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge resolves (creating on first use) a gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.resolveKey(name, labels, func(k string) bool { _, ok := r.gauges[k]; return ok })
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram resolves (creating on first use) a histogram series.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.resolveKey(name, labels, func(k string) bool { _, ok := r.hists[k]; return ok })
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{h: stats.NewHistogram()}
		r.hists[key] = h
	}
	return h
}

// GetCounter resolves a counter on the active registry, or nil (an
// inert handle) when metrics are off.
func GetCounter(name string, labels ...string) *Counter {
	if r := Active(); r != nil {
		return r.Counter(name, labels...)
	}
	return nil
}

// GetGauge resolves a gauge on the active registry, or nil.
func GetGauge(name string, labels ...string) *Gauge {
	if r := Active(); r != nil {
		return r.Gauge(name, labels...)
	}
	return nil
}

// GetHistogram resolves a histogram on the active registry, or nil.
func GetHistogram(name string, labels ...string) *Histogram {
	if r := Active(); r != nil {
		return r.Histogram(name, labels...)
	}
	return nil
}

// Render returns the registry as sorted plain text, one series per
// line. Deterministic for a deterministic run at any parallelism.
func (r *Registry) Render() string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		keys = append(keys, k)
	}
	for k := range r.gauges {
		keys = append(keys, k)
	}
	for k := range r.hists {
		keys = append(keys, k)
	}
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("== metrics ==\n")
	for _, k := range keys {
		switch {
		case counters[k] != nil:
			fmt.Fprintf(&b, "%s %d\n", k, counters[k].Value())
		case gauges[k] != nil:
			fmt.Fprintf(&b, "%s %d\n", k, gauges[k].Value())
		default:
			s := hists[k].summary()
			fmt.Fprintf(&b, "%s count=%d mean=%d p50=%d p99=%d max=%d\n",
				k, s.Count, s.MeanNS, s.P50NS, s.P99NS, s.MaxNS)
		}
	}
	return b.String()
}

// Snapshot is the -json embedding of a registry.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot captures every series value for machine-readable output.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()

	var s Snapshot
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSummary, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.summary()
		}
	}
	return s
}
