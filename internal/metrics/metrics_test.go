package metrics

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestSeriesKeySortsLabels(t *testing.T) {
	a := seriesKey("io_ops_total", []string{"engine", "bypassd", "op", "read"})
	b := seriesKey("io_ops_total", []string{"op", "read", "engine", "bypassd"})
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if want := `io_ops_total{engine="bypassd",op="read"}`; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := seriesKey("plain", nil); got != "plain" {
		t.Fatalf("unlabeled key = %q", got)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	Deactivate()
	c := GetCounter("c")
	g := GetGauge("g")
	h := GetHistogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("inactive registry must hand out nil handles")
	}
	// Every method on a nil handle is a no-op, not a crash.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops", "eng", "a").Add(3)
	r.Counter("ops", "eng", "a").Add(2) // same series, resolved twice
	r.Counter("ops", "eng", "b").Inc()
	r.Gauge("depth").Set(7)
	r.Histogram("lat").Observe(1000)
	r.Histogram("lat").Observe(3000)

	if got := r.Counter("ops", "eng", "a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	out := r.Render()
	for _, want := range []string{
		`ops{eng="a"} 5`,
		`ops{eng="b"} 1`,
		"depth 7",
		"lat count=2 mean=2000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	s := r.Snapshot()
	if s.Counters[`ops{eng="a"}`] != 5 || s.Gauges["depth"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if h := s.Histograms["lat"]; h.Count != 2 || h.MeanNS != 2000 {
		t.Fatalf("snapshot histogram = %+v", h)
	}
}

// TestConcurrentCells drives one registry from many goroutines the way
// parallel sweep cells do — racing to resolve the same series and to
// update it — and checks the totals are exact. Run under -race this is
// the observability plane's thread-safety gate.
func TestConcurrentCells(t *testing.T) {
	r := Activate()
	defer Deactivate()

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each "cell" resolves its handles at boot, like machine
			// constructors do, including one series shared by all.
			shared := GetCounter("shared_total")
			own := GetCounter("per_cell_total", "cell", string(rune('a'+w)))
			gauge := GetGauge("depth")
			hist := GetHistogram("lat")
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				own.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				hist.Observe(sim.Time(1000 + i))
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("per_cell_total", "cell", string(rune('a'+w))).Value(); got != perWorker {
			t.Fatalf("cell %d = %d, want %d", w, got, perWorker)
		}
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	s := r.Snapshot()
	if s.Histograms["lat"].Count != workers*perWorker {
		t.Fatalf("hist count = %d", s.Histograms["lat"].Count)
	}
	// The integer sum makes the rendered mean independent of the
	// interleaving the workers happened to run in.
	if mean := s.Histograms["lat"].MeanNS; mean != 1000+(perWorker-1)/2 {
		t.Fatalf("hist mean = %d", mean)
	}
}

// TestSeriesCapFoldsOverflow engages the per-name cardinality cap the
// way a per-user label from the frontend's million-user population
// would: the first cap label-sets keep their own series, every later
// one folds into the name's "_overflow" bucket (adds aggregated, not
// lost), other metric names are unaffected, and two identical runs
// render byte-identically with the cap engaged.
func TestSeriesCapFoldsOverflow(t *testing.T) {
	const cap = 8
	const users = 100
	build := func() *Registry {
		r := NewRegistry()
		r.SetSeriesCap(cap)
		for u := 0; u < users; u++ {
			r.Counter("frontend_user_ops", "user", string(rune('A'+u%26))+string(rune('a'+u/26))).Add(int64(u + 1))
			r.Histogram("frontend_user_lat", "user", string(rune('A'+u%26))+string(rune('a'+u/26))).Observe(sim.Time(1000 * (u + 1)))
		}
		r.Counter("other_total").Add(int64(users))
		r.Gauge("depth", "dev", "0").Set(3)
		return r
	}
	r := build()

	s := r.Snapshot()
	var own, total int64
	overflow := int64(-1)
	for k, v := range s.Counters {
		if !strings.HasPrefix(k, "frontend_user_ops{") {
			continue
		}
		total += v
		if k == `frontend_user_ops{label="_overflow"}` {
			overflow = v
		} else {
			own++
		}
	}
	if own != cap {
		t.Fatalf("kept %d dedicated series, want exactly the cap %d", own, cap)
	}
	if overflow < 0 {
		t.Fatal("no _overflow bucket despite exceeding the cap")
	}
	if want := int64(users * (users + 1) / 2); total != want {
		t.Fatalf("adds lost under the cap: total %d, want %d", total, want)
	}
	if s.Histograms[`frontend_user_lat{label="_overflow"}`].Count != users-cap {
		t.Fatalf("histogram overflow count = %d, want %d",
			s.Histograms[`frontend_user_lat{label="_overflow"}`].Count, users-cap)
	}
	// Uncapped names keep resolving normally alongside a capped one.
	if s.Counters["other_total"] != users || s.Gauges[`depth{dev="0"}`] != 3 {
		t.Fatalf("unrelated series disturbed by the cap: %+v", s)
	}
	// Re-resolving a surviving label-set must still hit its own series,
	// not the overflow bucket.
	before := r.Counter("frontend_user_ops", "user", "Aa").Value()
	r.Counter("frontend_user_ops", "user", "Aa").Inc()
	if got := r.Counter("frontend_user_ops", "user", "Aa").Value(); got != before+1 {
		t.Fatalf("surviving series lost identity under the cap: %d -> %d", before, got)
	}

	// Determinism: identical runs render identically, and the render
	// stays sorted with the cap engaged.
	out := build().Render()
	if out != build().Render() {
		t.Fatal("render diverged between identical capped runs")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")[1:]
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("capped render not sorted:\n%s", out)
	}
}

func TestRenderDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(1)
	a.Counter("y", "k", "v").Add(2)
	a.Histogram("h").Observe(10)
	b.Histogram("h").Observe(10)
	b.Counter("y", "k", "v").Add(2)
	b.Counter("x").Add(1)
	if a.Render() != b.Render() {
		t.Fatalf("render depends on creation order:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}
