package core

import (
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

// TestFreedBlocksConfidentiality exercises the §3.6/§5.3 rule end to
// end: blocks freed by one user's truncate are zeroed before another
// user's file can expose them through the direct path.
func TestFreedBlocksConfidentiality(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	alice := sys.NewProcess(ext4.Cred{UID: 100, GID: 100})
	bob := sys.NewProcess(ext4.Cred{UID: 200, GID: 200})
	var checked int
	sys.Sim.Spawn("app", func(p *sim.Proc) {
		root := sys.NewProcess(ext4.Root)
		if err := root.Mkdir(p, "/home", 0o777); err != nil {
			t.Error(err)
			return
		}
		// Alice writes a secret, truncates it away, and syncs (the
		// §3.6 sync point after which her blocks become reusable).
		afd, err := alice.Create(p, "/home/secret", 0o600)
		if err != nil {
			t.Error(err)
			return
		}
		secret := make([]byte, 64*4096)
		for i := range secret {
			secret[i] = 0xAA
		}
		if _, err := alice.Pwrite(p, afd, secret, 0); err != nil {
			t.Error(err)
			return
		}
		if err := alice.Ftruncate(p, afd, 0); err != nil {
			t.Error(err)
			return
		}
		if err := alice.Fsync(p, afd); err != nil {
			t.Error(err)
			return
		}
		if err := alice.Close(p, afd); err != nil {
			t.Error(err)
			return
		}

		// Bob's new file reuses those blocks; he scans it through the
		// BypassD interface.
		bfd, err := bob.Create(p, "/home/bob", 0o600)
		if err != nil {
			t.Error(err)
			return
		}
		if err := bob.Fallocate(p, bfd, 64*4096); err != nil {
			t.Error(err)
			return
		}
		_ = bob.Fsync(p, bfd)
		_ = bob.Close(p, bfd)

		lib := sys.Lib(bob)
		th, err := lib.NewThread(p)
		if err != nil {
			t.Error(err)
			return
		}
		fd, err := lib.Open(p, "/home/bob", true)
		if err != nil {
			t.Error(err)
			return
		}
		fs, _ := lib.State(fd)
		if !fs.Direct() {
			t.Error("bob's file not direct-mapped")
			return
		}
		buf := make([]byte, 4096)
		for pg := int64(0); pg < 64; pg++ {
			if _, err := th.Pread(p, fd, buf, pg*4096); err != nil {
				t.Error(err)
				return
			}
			for i, b := range buf {
				if b != 0 {
					t.Errorf("bob read alice's data: page %d byte %d = %#x", pg, i, b)
					return
				}
			}
			checked++
		}
	})
	sys.Sim.Run()
	if checked != 64 {
		t.Fatalf("checked %d/64 pages", checked)
	}
}
