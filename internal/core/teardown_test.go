package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

// Machines recycle chunk arrays, DMA buffers, and queue rings through
// shared sync.Pools at teardown. An early or double Put would hand
// one machine's live buffer to another — cross-machine aliasing that
// shows up as data corruption (and as races under -race). This pins
// the teardown discipline: many multi-device machines booting,
// writing distinct patterns, verifying them, and tearing down
// concurrently must never see each other's bytes.
func TestConcurrentMachineTeardownNoAliasing(t *testing.T) {
	const (
		workers = 8
		rounds  = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sys, err := NewN(1<<27, 2)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Per-(worker, round) pattern: any pooled buffer that
				// escaped into another live machine shows up as a
				// mismatched fill byte.
				fill := byte(1 + w*rounds + r)
				data := bytes.Repeat([]byte{fill}, 64*1024)
				sys.Sim.Spawn("main", func(p *sim.Proc) {
					for d := 0; d < sys.Devices(); d++ {
						pr := sys.NewProcessOn(ext4.Root, d)
						path := fmt.Sprintf("/w%d", w)
						fd, err := pr.Create(p, path, 0o644)
						if err != nil {
							t.Errorf("worker %d dev %d: %v", w, d, err)
							return
						}
						if _, err := pr.Pwrite(p, fd, data, 0); err != nil {
							t.Errorf("worker %d dev %d: %v", w, d, err)
							return
						}
						_ = pr.Fsync(p, fd)
						got := make([]byte, len(data))
						if n, err := pr.Pread(p, fd, got, 0); err != nil || n != len(data) {
							t.Errorf("worker %d dev %d read: n=%d err=%v", w, d, n, err)
							return
						}
						if !bytes.Equal(got, data) {
							t.Errorf("worker %d dev %d: read back another machine's bytes (want fill %#x)", w, d, fill)
							return
						}
						_ = pr.Close(p, fd)
					}
				})
				sys.Sim.Run()
				sys.Close()
			}
		}(w)
	}
	wg.Wait()
}

// Teardown must be idempotent: every Release path nils what it puts,
// so a second Close (harness bugs do this) cannot double-Put a buffer
// into a shared pool and alias it into the next machine.
func TestDoubleCloseDoesNotDoublePut(t *testing.T) {
	sys, err := NewN(1<<27, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys.Sim.Spawn("main", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/f", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := pr.Pwrite(p, fd, make([]byte, 8192), 0); err != nil {
			t.Error(err)
		}
		_ = pr.Close(p, fd)
	})
	sys.Sim.Run()
	sys.Close()
	sys.Close() // must be a no-op, not a second round of pool Puts
	sys.M.ReleaseResources()
}
