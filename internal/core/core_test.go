package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

func TestAllEnginesAgreeOnData(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(5)).Read(data)

	sys.Sim.Spawn("main", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		// Seed through the kernel FS.
		fd, err := pr.Create(p, "/common", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := pr.Pwrite(p, fd, data, 0); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)

		for _, e := range []Engine{EngineSync, EngineLibaio, EngineUring, EngineBypassD} {
			pr2 := sys.NewProcess(ext4.Root)
			io, err := sys.NewFileIO(p, pr2, e)
			if err != nil {
				t.Errorf("%s: %v", e, err)
				return
			}
			f, err := io.Open(p, "/common", false)
			if err != nil {
				t.Errorf("%s open: %v", e, err)
				return
			}
			got := make([]byte, len(data))
			n, err := io.Pread(p, f, got, 0)
			if err != nil || n != len(data) {
				t.Errorf("%s read: n=%d err=%v", e, n, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s returned different data", e)
			}
			if err := io.Close(p, f); err != nil {
				t.Errorf("%s close: %v", e, err)
			}
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestLatencyOrdering(t *testing.T) {
	// The paper's Fig. 6 ordering for 4 KiB reads:
	// spdk < bypassd < io_uring < sync <= libaio.
	lat := map[Engine]sim.Time{}
	for _, e := range AllEngines {
		e := e
		sys, err := New(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		sys.Sim.Spawn("main", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			// Seed (engine-specific namespace for spdk).
			if e == EngineSPDK {
				d, err := sys.SPDK()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := d.CreateFile("/f", 1<<20); err != nil {
					t.Error(err)
					return
				}
			} else {
				fd, err := pr.Create(p, "/f", 0o644)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := pr.Pwrite(p, fd, make([]byte, 1<<20), 0); err != nil {
					t.Error(err)
					return
				}
				_ = pr.Fsync(p, fd)
				_ = pr.Close(p, fd)
			}
			io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), e)
			if err != nil {
				t.Error(err)
				return
			}
			f, err := io.Open(p, "/f", false)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 4096)
			// Warm up, then measure.
			_, _ = io.Pread(p, f, buf, 0)
			start := p.Now()
			const ops = 8
			for i := 0; i < ops; i++ {
				if _, err := io.Pread(p, f, buf, int64(i)*4096); err != nil {
					t.Errorf("%s: %v", e, err)
					return
				}
			}
			lat[e] = (p.Now() - start) / ops
		})
		sys.Sim.Run()
		sys.Sim.Shutdown()
	}
	t.Logf("4K read latencies: %v", lat)
	if !(lat[EngineSPDK] < lat[EngineBypassD] &&
		lat[EngineBypassD] < lat[EngineUring] &&
		lat[EngineUring] < lat[EngineSync] &&
		lat[EngineSync] <= lat[EngineLibaio]) {
		t.Fatalf("latency ordering violated: %v", lat)
	}
	// BypassD ≈ SPDK + ~550ns VBA translation (paper §6.3).
	gap := lat[EngineBypassD] - lat[EngineSPDK]
	if gap < 400 || gap > 800 {
		t.Fatalf("bypassd-spdk gap = %v, want ~550ns", gap)
	}
	// BypassD reads ≥ 30%% faster than sync (paper: 30.5%% average).
	if float64(lat[EngineBypassD]) > 0.72*float64(lat[EngineSync]) {
		t.Fatalf("bypassd %v not ≥28%% under sync %v", lat[EngineBypassD], lat[EngineSync])
	}
}

func TestSPDKCannotCoexistWithSharing(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SPDK(); err != nil {
		t.Fatal(err)
	}
	// Second system component claiming the device fails.
	if err := sys.M.Dev.Claim("another-process"); err == nil {
		t.Fatal("device claimed twice")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	sys.Sim.Spawn("main", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, _ := pr.Create(p, "/persist", 0o644)
		_, _ = pr.Pwrite(p, fd, []byte("snapshot me"), 0)
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		st, err := sys.Snapshot(p)
		if err != nil {
			t.Error(err)
			return
		}
		// Boot a second system from the snapshot on a fresh sim.
		s2 := sim.New()
		sys2, err := NewOn(s2, 1<<30, st)
		if err != nil {
			t.Error(err)
			return
		}
		s2.Spawn("check", func(q *sim.Proc) {
			pr2 := sys2.NewProcess(ext4.Root)
			fd2, err := pr2.Open(q, "/persist", false)
			if err != nil {
				t.Errorf("snapshot lost file: %v", err)
				return
			}
			buf := make([]byte, 11)
			if _, err := pr2.Pread(q, fd2, buf, 0); err != nil {
				t.Error(err)
				return
			}
			if string(buf) != "snapshot me" {
				t.Errorf("snapshot data = %q", buf)
			}
		})
		s2.Run()
		s2.Shutdown()
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}
