package core

import (
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

func TestUnknownEngine(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		if _, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), Engine("nonsense")); err == nil {
			t.Error("unknown engine accepted")
		}
	})
	sys.Sim.Run()
}

func TestEngineNamesStable(t *testing.T) {
	// The engine identifiers are part of the public API (used by the
	// CLI flags and the harness tables).
	want := map[Engine]string{
		EngineSync:    "sync",
		EngineLibaio:  "libaio",
		EngineUring:   "io_uring",
		EngineSPDK:    "spdk",
		EngineBypassD: "bypassd",
	}
	for e, s := range want {
		if string(e) != s {
			t.Errorf("engine %q renamed", s)
		}
	}
	if len(AllEngines) != 5 || len(KernelEngines) != 3 {
		t.Fatalf("engine lists changed: %v / %v", AllEngines, KernelEngines)
	}
}

func TestEngineReportsItsKind(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		for _, e := range []Engine{EngineSync, EngineLibaio, EngineUring, EngineBypassD} {
			io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), e)
			if err != nil {
				t.Errorf("%s: %v", e, err)
				continue
			}
			if io.Engine() != e {
				t.Errorf("engine %s reports %s", e, io.Engine())
			}
		}
	})
	sys.Sim.Run()
}

func TestSPDKOpenUnregisteredFails(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), EngineSPDK)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := io.Open(p, "/nope", false); err == nil {
			t.Error("spdk opened an unregistered region")
		}
		if _, err := io.Pread(p, 42, make([]byte, 512), 0); err == nil {
			t.Error("spdk read on bad fd succeeded")
		}
	})
	sys.Sim.Run()
}

func TestWriteOnReadOnlyFD(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/ro", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		for _, e := range []Engine{EngineSync, EngineBypassD} {
			io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), e)
			if err != nil {
				t.Error(err)
				return
			}
			f, err := io.Open(p, "/ro", false) // read-only
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := io.Pwrite(p, f, make([]byte, 512), 0); err == nil {
				t.Errorf("%s wrote through a read-only descriptor", e)
			}
		}
	})
	sys.Sim.Run()
}

func TestFsyncAllEngines(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, _ := pr.Create(p, "/f", 0o666)
		_ = pr.Fallocate(p, fd, 1<<20)
		_ = pr.Close(p, fd)
		for _, e := range []Engine{EngineSync, EngineLibaio, EngineUring, EngineBypassD} {
			io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), e)
			if err != nil {
				t.Errorf("%s: %v", e, err)
				continue
			}
			f, err := io.Open(p, "/f", true)
			if err != nil {
				t.Errorf("%s open: %v", e, err)
				continue
			}
			if _, err := io.Pwrite(p, f, make([]byte, 4096), 0); err != nil {
				t.Errorf("%s write: %v", e, err)
				continue
			}
			if err := io.Fsync(p, f); err != nil {
				t.Errorf("%s fsync: %v", e, err)
			}
			if err := io.Close(p, f); err != nil {
				t.Errorf("%s close: %v", e, err)
			}
		}
	})
	sys.Sim.Run()
}
