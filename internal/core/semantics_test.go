package core

import (
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

// TestTimestampSemantics checks §4.4: kernel-interface writes update
// mtime immediately (in memory), while BypassD-interface writes defer
// the update to close/fsync, as POSIX permits for mapped files.
func TestTimestampSemantics(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, _ := pr.Create(p, "/ts", 0o666)
		_ = pr.Fallocate(p, fd, 1<<20)
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		in, _ := sys.M.FS.Lookup(p, "/ts", ext4.Root)

		// Kernel path: mtime moves with the write.
		kfd, _ := pr.Open(p, "/ts", true)
		before := in.Mtime
		p.Sleep(time10ms())
		if _, err := pr.Pwrite(p, kfd, make([]byte, 4096), 0); err != nil {
			t.Error(err)
			return
		}
		if in.Mtime == before {
			t.Error("kernel write did not update mtime")
		}
		_ = pr.Close(p, kfd)

		// BypassD path: mtime deferred until fsync.
		lib := sys.Lib(sys.NewProcess(ext4.Root))
		th, _ := lib.NewThread(p)
		bfd, err := lib.Open(p, "/ts", true)
		if err != nil {
			t.Error(err)
			return
		}
		before = in.Mtime
		p.Sleep(time10ms())
		if _, err := th.Pwrite(p, bfd, make([]byte, 4096), 0); err != nil {
			t.Error(err)
			return
		}
		if in.Mtime != before {
			t.Error("direct write updated mtime immediately (should defer)")
		}
		if err := th.Fsync(p, bfd); err != nil {
			t.Error(err)
			return
		}
		if in.Mtime == before {
			t.Error("fsync did not apply the deferred mtime")
		}
	})
	sys.Sim.Run()
}

func time10ms() sim.Time { return 10 * sim.Millisecond }

// TestShortReadsAtEOF checks read clamping across engines.
func TestShortReadsAtEOF(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, _ := pr.Create(p, "/small", 0o666)
		if _, err := pr.Pwrite(p, fd, make([]byte, 5000), 0); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)

		for _, e := range []Engine{EngineSync, EngineBypassD} {
			io, err := sys.NewFileIO(p, sys.NewProcess(ext4.Root), e)
			if err != nil {
				t.Error(err)
				return
			}
			f, _ := io.Open(p, "/small", false)
			buf := make([]byte, 4096)
			// Straddling EOF: short read.
			n, err := io.Pread(p, f, buf, 4096)
			if err != nil || n != 5000-4096 {
				t.Errorf("%s straddling read: n=%d err=%v", e, n, err)
			}
			// Past EOF: zero.
			n, err = io.Pread(p, f, buf, 8192)
			if err != nil || n != 0 {
				t.Errorf("%s past-eof read: n=%d err=%v", e, n, err)
			}
		}
	})
	sys.Sim.Run()
}

// TestOffsetAdvancingIO checks the Read/Write (non-positional) calls
// share one offset per descriptor in both interfaces.
func TestOffsetAdvancingIO(t *testing.T) {
	sys, err := New(1 << 28)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	sys.Sim.Spawn("m", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, _ := pr.Create(p, "/seq", 0o666)
		if _, err := pr.Write(p, fd, []byte("first-")); err != nil {
			t.Error(err)
			return
		}
		if _, err := pr.Write(p, fd, []byte("second")); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 12)
		if _, err := pr.Pread(p, fd, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if string(buf) != "first-second" {
			t.Errorf("sequential writes produced %q", buf)
		}
	})
	sys.Sim.Run()
}
