package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

// TestFullStackStress runs many processes with mixed engines doing
// concurrent reads, overwrites, appends, truncates, fsyncs, and
// closes against shared and private files, then verifies every file's
// content against an in-memory model and runs fsck. This is the
// whole-system invariant check: no engine may ever observe or produce
// bytes that diverge from the model, regardless of interleaving.
func TestFullStackStress(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runStress(t, seed)
		})
	}
}

func runStress(t *testing.T, seed int64) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()

	const (
		workers  = 8
		files    = 4
		opsEach  = 60
		fileSize = 1 << 20
	)
	// model holds the expected content of each private file. Shared
	// files get disjoint per-worker stripes so the model stays exact
	// without modelling write races.
	type stripe struct {
		path   string
		base   int64 // worker's stripe start
		size   int64
		model  []byte
		worker int
	}

	var stripes []*stripe
	var runErr error
	done := 0

	sys.Sim.Spawn("setup", func(p *sim.Proc) {
		root := sys.NewProcess(ext4.Root)
		for f := 0; f < files; f++ {
			path := fmt.Sprintf("/shared%d", f)
			fd, err := root.Create(p, path, 0o666)
			if err != nil {
				runErr = err
				return
			}
			if err := root.Fallocate(p, fd, fileSize*int64(workers/files)); err != nil {
				runErr = err
				return
			}
			if err := root.Close(p, fd); err != nil {
				runErr = err
				return
			}
		}
		if err := root.Sync(p); err != nil {
			runErr = err
			return
		}

		engines := []Engine{EngineSync, EngineLibaio, EngineUring, EngineBypassD}
		for w := 0; w < workers; w++ {
			w := w
			st := &stripe{
				path:   fmt.Sprintf("/shared%d", w%files),
				base:   int64(w/files) * fileSize,
				size:   fileSize,
				model:  make([]byte, fileSize),
				worker: w,
			}
			stripes = append(stripes, st)
			engine := engines[w%len(engines)]
			pr := sys.NewProcess(ext4.Root)
			sys.Sim.Spawn(fmt.Sprintf("worker-%d", w), func(wp *sim.Proc) {
				defer func() { done++ }()
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				io, err := sys.NewFileIO(wp, pr, engine)
				if err != nil {
					runErr = err
					return
				}
				fd, err := io.Open(wp, st.path, true)
				if err != nil {
					runErr = err
					return
				}
				buf := make([]byte, 16384)
				for op := 0; op < opsEach; op++ {
					if runErr != nil {
						return
					}
					off := rng.Int63n(st.size-16384) &^ 511 // sector aligned
					n := (rng.Int63n(15) + 1) * 512
					switch rng.Intn(4) {
					case 0, 1: // write
						rng.Read(buf[:n])
						if _, err := io.Pwrite(wp, fd, buf[:n], st.base+off); err != nil {
							runErr = fmt.Errorf("worker %d write: %w", w, err)
							return
						}
						copy(st.model[off:], buf[:n])
					case 2: // read + verify
						if _, err := io.Pread(wp, fd, buf[:n], st.base+off); err != nil {
							runErr = fmt.Errorf("worker %d read: %w", w, err)
							return
						}
						if !bytes.Equal(buf[:n], st.model[off:off+n]) {
							runErr = fmt.Errorf("worker %d (engine %s) diverged from model at off %d", w, engine, off)
							return
						}
					case 3: // fsync occasionally
						if op%16 == 5 {
							if err := io.Fsync(wp, fd); err != nil {
								runErr = fmt.Errorf("worker %d fsync: %w", w, err)
								return
							}
						}
					}
				}
				if err := io.Close(wp, fd); err != nil {
					runErr = fmt.Errorf("worker %d close: %w", w, err)
				}
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if done != workers {
		t.Fatalf("only %d/%d workers finished", done, workers)
	}

	// Final verification pass: every stripe through the sync engine,
	// then fsck.
	sys.Sim.Spawn("verify", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		for _, st := range stripes {
			fd, err := pr.Open(p, st.path, false)
			if err != nil {
				runErr = err
				return
			}
			got := make([]byte, st.size)
			if _, err := pr.Pread(p, fd, got, st.base); err != nil {
				runErr = err
				return
			}
			if !bytes.Equal(got, st.model) {
				runErr = fmt.Errorf("final content of %s stripe %d diverged", st.path, st.worker)
				return
			}
			_ = pr.Close(p, fd)
		}
		if err := pr.Sync(p); err != nil {
			runErr = err
			return
		}
		if err := sys.M.FS.Check(p); err != nil {
			runErr = fmt.Errorf("fsck after stress: %w", err)
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestRevocationStorm interleaves direct access with repeated
// kernel-interface opens, forcing revocation/fallback cycles, and
// checks data integrity throughout.
func TestRevocationStorm(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()
	var runErr error
	readsDone := 0

	sys.Sim.Spawn("main", func(p *sim.Proc) {
		root := sys.NewProcess(ext4.Root)
		data := make([]byte, 1<<20)
		rand.New(rand.NewSource(4)).Read(data)
		fd, err := root.Create(p, "/storm", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if _, err := root.Pwrite(p, fd, data, 0); err != nil {
			runErr = err
			return
		}
		_ = root.Fsync(p, fd)
		_ = root.Close(p, fd)

		// The reader keeps reading through UserLib while an opener
		// process repeatedly opens and closes the file through the
		// kernel interface.
		stop := false
		sys.Sim.Spawn("opener", func(q *sim.Proc) {
			opener := sys.NewProcess(ext4.Root)
			for i := 0; i < 10; i++ {
				ofd, err := opener.Open(q, "/storm", false)
				if err != nil {
					runErr = err
					return
				}
				q.Sleep(200 * sim.Microsecond)
				if err := opener.Close(q, ofd); err != nil {
					runErr = err
					return
				}
				q.Sleep(200 * sim.Microsecond)
			}
			stop = true
		})

		reader := sys.NewProcess(ext4.Root)
		lib := sys.Lib(reader)
		th, err := lib.NewThread(p)
		if err != nil {
			runErr = err
			return
		}
		rfd, err := lib.Open(p, "/storm", false)
		if err != nil {
			runErr = err
			return
		}
		buf := make([]byte, 4096)
		rng := rand.New(rand.NewSource(5))
		for !stop {
			off := rng.Int63n(1<<20-4096) &^ 4095
			if _, err := th.Pread(p, rfd, buf, off); err != nil {
				runErr = fmt.Errorf("read during storm: %w", err)
				return
			}
			if !bytes.Equal(buf, data[off:off+4096]) {
				runErr = fmt.Errorf("wrong data during revocation storm at %d", off)
				return
			}
			readsDone++
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readsDone < 100 {
		t.Fatalf("only %d reads completed", readsDone)
	}
}

// TestRevokeRestoreStorm is the revocation-storm property test: writer
// threads on the direct path race a storm process that explicitly
// revokes and restores their files' direct access. The invariant is
// that every I/O completes — via the direct path or via the permanent
// kernel fallback — with no error and no stale data, and that
// descriptors reopened mid-storm re-attach cleanly rather than reusing
// a detached mapping.
func TestRevokeRestoreStorm(t *testing.T) {
	sys, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Sim.Shutdown()

	const (
		workers  = 6
		opsEach  = 80
		fileSize = int64(1 << 20)
	)
	var runErr error
	var totalFallbacks int64
	done := 0

	sys.Sim.Spawn("main", func(p *sim.Proc) {
		root := sys.NewProcess(ext4.Root)
		paths := make([]string, workers)
		inodes := make([]*ext4.Inode, workers)
		for w := 0; w < workers; w++ {
			paths[w] = fmt.Sprintf("/storm%d", w)
			fd, err := root.Create(p, paths[w], 0o666)
			if err != nil {
				runErr = err
				return
			}
			if err := root.Fallocate(p, fd, fileSize); err != nil {
				runErr = err
				return
			}
			if err := root.Close(p, fd); err != nil {
				runErr = err
				return
			}
			in, err := sys.M.FS.Lookup(p, paths[w], ext4.Root)
			if err != nil {
				runErr = err
				return
			}
			inodes[w] = in
		}
		if err := root.Sync(p); err != nil {
			runErr = err
			return
		}

		stop := false
		sys.Sim.Spawn("storm", func(q *sim.Proc) {
			for round := 0; round < 25; round++ {
				for _, in := range inodes {
					sys.M.Revoke(in)
				}
				q.Sleep(150 * sim.Microsecond)
				for _, in := range inodes {
					sys.M.Restore(in)
				}
				q.Sleep(150 * sim.Microsecond)
			}
			stop = true
		})

		for w := 0; w < workers; w++ {
			w := w
			pr := sys.NewProcess(ext4.Root)
			model := make([]byte, fileSize)
			sys.Sim.Spawn(fmt.Sprintf("writer-%d", w), func(wp *sim.Proc) {
				defer func() { done++ }()
				lib := sys.Lib(pr)
				defer func() { totalFallbacks += lib.Stats.Fallbacks }()
				th, err := lib.NewThread(wp)
				if err != nil {
					runErr = err
					return
				}
				fd, err := lib.Open(wp, paths[w], true)
				if err != nil {
					runErr = err
					return
				}
				rng := rand.New(rand.NewSource(int64(w) + 77))
				buf := make([]byte, 8192)
				for op := 0; op < opsEach || !stop; op++ {
					if runErr != nil || op > 100*opsEach {
						return
					}
					var off, n int64
					if op%5 == 4 {
						// Sub-sector write: partial-write RMW under storm.
						off = rng.Int63n(fileSize - 512)
						n = rng.Int63n(400) + 1
					} else {
						off = rng.Int63n(fileSize-8192) &^ 511
						n = (rng.Int63n(15) + 1) * 512
					}
					rng.Read(buf[:n])
					if _, err := th.Pwrite(wp, fd, buf[:n], off); err != nil {
						runErr = fmt.Errorf("writer %d pwrite at %d: %w", w, off, err)
						return
					}
					copy(model[off:], buf[:n])
					if _, err := th.Pread(wp, fd, buf[:n], off); err != nil {
						runErr = fmt.Errorf("writer %d pread at %d: %w", w, off, err)
						return
					}
					if !bytes.Equal(buf[:n], model[off:off+n]) {
						runErr = fmt.Errorf("writer %d stale read at %d during storm", w, off)
						return
					}
					if op%17 == 16 {
						// Reopen mid-storm: exercises fmap() re-attach
						// after the previous mapping was revoked.
						if err := lib.Close(wp, fd); err != nil {
							runErr = fmt.Errorf("writer %d close: %w", w, err)
							return
						}
						if fd, err = lib.Open(wp, paths[w], true); err != nil {
							runErr = fmt.Errorf("writer %d reopen: %w", w, err)
							return
						}
					}
				}
				if err := th.Fsync(wp, fd); err != nil {
					runErr = fmt.Errorf("writer %d fsync: %w", w, err)
					return
				}
				if err := lib.Close(wp, fd); err != nil {
					runErr = fmt.Errorf("writer %d close: %w", w, err)
					return
				}

				// Final check through the kernel interface: committed
				// writes must be visible regardless of path taken.
				got := make([]byte, fileSize)
				kfd, err := pr.Open(wp, paths[w], false)
				if err != nil {
					runErr = err
					return
				}
				if _, err := pr.Pread(wp, kfd, got, 0); err != nil {
					runErr = err
					return
				}
				if !bytes.Equal(got, model) {
					runErr = fmt.Errorf("writer %d: final content diverged from model", w)
					return
				}
				_ = pr.Close(wp, kfd)
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if done != workers {
		t.Fatalf("only %d/%d writers finished", done, workers)
	}

	sys.Sim.Spawn("fsck", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		if err := pr.Sync(p); err != nil {
			runErr = err
			return
		}
		if err := sys.M.FS.Check(p); err != nil {
			runErr = fmt.Errorf("fsck after revoke storm: %w", err)
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	t.Logf("storm stats: %d fallbacks across %d writers", totalFallbacks, workers)
}
