// Package core assembles the full BypassD system — simulated machine,
// Optane-class SSD, IOMMU, ext4, kernel, and UserLib — and exposes a
// uniform per-thread file I/O interface over every system evaluated
// in the paper: the synchronous kernel path, libaio, io_uring
// (SQPOLL), SPDK, and BypassD itself.
package core

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/spdk"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/userlib"
)

// Engine identifies one of the compared I/O systems.
type Engine string

// The engines of the paper's evaluation (§6.3).
const (
	EngineSync    Engine = "sync"
	EngineLibaio  Engine = "libaio"
	EngineUring   Engine = "io_uring"
	EngineSPDK    Engine = "spdk"
	EngineBypassD Engine = "bypassd"
)

// KernelEngines lists the engines that go through the kernel FS.
var KernelEngines = []Engine{EngineSync, EngineLibaio, EngineUring}

// AllEngines lists every engine in the paper's comparison order.
var AllEngines = []Engine{EngineSync, EngineLibaio, EngineUring, EngineSPDK, EngineBypassD}

// System is a booted machine.
type System struct {
	Sim *sim.Sim
	M   *kernel.Machine

	// libsMu guards libs: per-tenant workers on different event
	// shards create their libraries concurrently at the start of an
	// armed (parallel) traffic phase.
	libsMu sync.Mutex
	libs   map[*kernel.Process]*userlib.Lib
	spdk   *spdk.Driver

	// ownStore marks a system booted on a fresh store (not a caller's
	// prebuilt image); only then may Close recycle the chunks.
	ownStore bool
}

// New boots a fresh system with the paper's device and kernel
// calibration on a new simulation.
func New(capacityBytes int64) (*System, error) {
	return NewOn(sim.New(), capacityBytes, nil)
}

// NewOn boots a system on an existing simulation, optionally from a
// prebuilt storage image.
func NewOn(s *sim.Sim, capacityBytes int64, st *storage.Store) (*System, error) {
	m, err := kernel.NewMachine(s, kernel.DefaultConfig(), device.OptaneP5800X(capacityBytes), st)
	if err != nil {
		return nil, err
	}
	return &System{Sim: s, M: m, libs: make(map[*kernel.Process]*userlib.Lib), ownStore: st == nil}, nil
}

// NewN boots a fresh system with devices Optane-class SSDs of
// capacityBytes each behind one shared IOMMU, on a new simulation.
// devices == 1 is exactly New (byte-identical event stream).
func NewN(capacityBytes int64, devices int) (*System, error) {
	return NewOnN(sim.New(), capacityBytes, devices)
}

// NewOnN is NewN on an existing simulation. Every device boots with
// its own fresh store; unique DevIDs are assigned at machine boot.
func NewOnN(s *sim.Sim, capacityBytes int64, devices int) (*System, error) {
	if devices < 1 {
		return nil, fmt.Errorf("core: %d devices", devices)
	}
	dcfgs := make([]device.Config, devices)
	for i := range dcfgs {
		dcfgs[i] = device.OptaneP5800X(capacityBytes)
	}
	m, err := kernel.NewMachineN(s, kernel.DefaultConfig(), dcfgs, nil)
	if err != nil {
		return nil, err
	}
	return &System{Sim: s, M: m, libs: make(map[*kernel.Process]*userlib.Lib), ownStore: true}, nil
}

// Devices reports the number of SSDs in the system's topology.
func (sys *System) Devices() int { return len(sys.M.Nodes) }

// Close shuts the simulation down and, when the system owns its
// backing store (booted fresh rather than from a caller's image),
// returns the store's chunks to the shared pool. Harnesses that boot
// and discard a machine per run call this instead of Sim.Shutdown;
// callers that remount the image afterwards (crash-recovery tests)
// must stick to Sim.Shutdown.
func (sys *System) Close() {
	sys.Sim.Shutdown()
	sys.M.ReleaseResources()
	if sys.spdk != nil {
		sys.spdk.ReleaseResources()
	}
	if sys.ownStore {
		for _, n := range sys.M.Nodes {
			n.Dev.Store().Release()
		}
	}
}

// NewProcess creates a process with the given credentials on device
// node 0.
func (sys *System) NewProcess(cred ext4.Cred) *kernel.Process {
	return sys.M.NewProcess(cred)
}

// NewProcessOn creates a process bound to topology node devIdx; its
// files, queues, and direct mappings all live on that device.
func (sys *System) NewProcessOn(cred ext4.Cred, devIdx int) *kernel.Process {
	return sys.M.NewProcessOn(cred, devIdx)
}

// Lib returns the process's UserLib instance, creating it on first
// use (one shim library per process, shared by its threads).
func (sys *System) Lib(pr *kernel.Process) *userlib.Lib {
	sys.libsMu.Lock()
	defer sys.libsMu.Unlock()
	l, ok := sys.libs[pr]
	if !ok {
		l = userlib.New(pr, userlib.DefaultConfig())
		sys.libs[pr] = l
	}
	return l
}

// SPDK returns the system's SPDK driver, claiming the device
// exclusively on first use. It fails if the device is already shared.
func (sys *System) SPDK() (*spdk.Driver, error) {
	if sys.spdk == nil {
		d, err := spdk.Claim(sys.M.CPU, sys.M.Dev, spdk.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sys.spdk = d
	}
	return sys.spdk, nil
}

// Snapshot commits outstanding metadata and returns a deep copy of
// the storage image, used to rerun application benchmarks from the
// same starting state.
func (sys *System) Snapshot(p *sim.Proc) (*storage.Store, error) {
	if err := sys.M.FS.Unmount(p); err != nil {
		return nil, err
	}
	return sys.M.Dev.Store().Clone(), nil
}

// FileIO is the uniform per-thread interface over all engines. A
// FileIO must only be used from the thread (sim.Proc) it was created
// for.
type FileIO interface {
	Engine() Engine
	Open(p *sim.Proc, path string, write bool) (int, error)
	Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error)
	Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error)
	Fsync(p *sim.Proc, fd int) error
	Close(p *sim.Proc, fd int) error
}

// NewFileIO creates a per-thread handle for the given engine. All
// threads of a workload should share pr (one process) unless the
// experiment is about inter-process sharing.
func (sys *System) NewFileIO(p *sim.Proc, pr *kernel.Process, e Engine) (FileIO, error) {
	var inner FileIO
	switch e {
	case EngineSync:
		inner = &syncIO{pr: pr}
	case EngineLibaio:
		inner = &aioIO{pr: pr, ctx: pr.NewAioContext()}
	case EngineUring:
		inner = &uringIO{pr: pr, u: pr.NewUring(p)}
	case EngineBypassD:
		lib := sys.Lib(pr)
		th, err := lib.NewThread(p)
		if err != nil {
			return nil, err
		}
		inner = &bypassIO{lib: lib, th: th}
	case EngineSPDK:
		d, err := sys.SPDK()
		if err != nil {
			return nil, err
		}
		q, err := d.NewQueue(p)
		if err != nil {
			return nil, err
		}
		inner = &spdkIO{d: d, q: q}
	default:
		return nil, fmt.Errorf("core: unknown engine %q", e)
	}
	if tr := sys.M.Trace; tr != nil {
		return &tracedIO{inner: inner, tr: tr}, nil
	}
	return inner, nil
}

// tracedIO decorates a FileIO with per-request spans: each Pread /
// Pwrite / Fsync opens an IOSpan, threads it down the stack via the
// proc's trace context, and finishes it on return. Installed by
// NewFileIO when the machine has a tracer attached.
type tracedIO struct {
	inner FileIO
	tr    *trace.Tracer
}

func (io *tracedIO) Engine() Engine { return io.inner.Engine() }
func (io *tracedIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	return io.inner.Open(p, path, write)
}
func (io *tracedIO) traced(p *sim.Proc, op string, fn func() (int, error)) (int, error) {
	sp := io.tr.StartIO(p, string(io.inner.Engine()), op)
	p.SetTraceCtx(sp)
	n, err := fn()
	p.SetTraceCtx(nil)
	sp.Finish(p.Now())
	return n, err
}
func (io *tracedIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	return io.traced(p, "read", func() (int, error) { return io.inner.Pread(p, fd, buf, off) })
}
func (io *tracedIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	return io.traced(p, "write", func() (int, error) { return io.inner.Pwrite(p, fd, data, off) })
}
func (io *tracedIO) Fsync(p *sim.Proc, fd int) error {
	_, err := io.traced(p, "fsync", func() (int, error) { return 0, io.inner.Fsync(p, fd) })
	return err
}
func (io *tracedIO) Close(p *sim.Proc, fd int) error { return io.inner.Close(p, fd) }

// syncIO: synchronous kernel path.
type syncIO struct{ pr *kernel.Process }

func (io *syncIO) Engine() Engine { return EngineSync }
func (io *syncIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	return io.pr.Open(p, path, write)
}
func (io *syncIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	return io.pr.Pread(p, fd, buf, off)
}
func (io *syncIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	return io.pr.Pwrite(p, fd, data, off)
}
func (io *syncIO) Fsync(p *sim.Proc, fd int) error { return io.pr.Fsync(p, fd) }
func (io *syncIO) Close(p *sim.Proc, fd int) error { return io.pr.Close(p, fd) }

// aioIO: libaio at queue depth 1 behind the FileIO interface (deeper
// queues use kernel.AioContext directly, as KVell does).
type aioIO struct {
	pr  *kernel.Process
	ctx *kernel.AioContext
}

func (io *aioIO) Engine() Engine { return EngineLibaio }
func (io *aioIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	return io.pr.Open(p, path, write)
}
func (io *aioIO) rw(p *sim.Proc, fd int, buf []byte, off int64, write bool) (int, error) {
	if err := io.ctx.Submit(p, []kernel.AioOp{{FD: fd, Write: write, Off: off, Buf: buf}}); err != nil {
		return 0, err
	}
	res := io.ctx.GetEvents(p, 1, 1)
	if len(res) != 1 {
		return 0, fmt.Errorf("core: libaio reaped %d events", len(res))
	}
	return res[0].N, res[0].Err
}
func (io *aioIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	return io.rw(p, fd, buf, off, false)
}
func (io *aioIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	return io.rw(p, fd, data, off, true)
}
func (io *aioIO) Fsync(p *sim.Proc, fd int) error { return io.pr.Fsync(p, fd) }
func (io *aioIO) Close(p *sim.Proc, fd int) error { return io.pr.Close(p, fd) }

// uringIO: io_uring SQPOLL at queue depth 1.
type uringIO struct {
	pr *kernel.Process
	u  *kernel.Uring
}

func (io *uringIO) Engine() Engine { return EngineUring }
func (io *uringIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	return io.pr.Open(p, path, write)
}
func (io *uringIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	io.u.SubmitRead(p, fd, buf, off, nil)
	r := io.u.Wait(p)
	return r.N, r.Err
}
func (io *uringIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	io.u.SubmitWrite(p, fd, data, off, nil)
	r := io.u.Wait(p)
	return r.N, r.Err
}
func (io *uringIO) Fsync(p *sim.Proc, fd int) error { return io.pr.Fsync(p, fd) }
func (io *uringIO) Close(p *sim.Proc, fd int) error { return io.pr.Close(p, fd) }

// bypassIO: UserLib over the BypassD interface.
type bypassIO struct {
	lib *userlib.Lib
	th  *userlib.Thread
}

func (io *bypassIO) Engine() Engine { return EngineBypassD }
func (io *bypassIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	return io.lib.Open(p, path, write)
}
func (io *bypassIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	return io.th.Pread(p, fd, buf, off)
}
func (io *bypassIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	return io.th.Pwrite(p, fd, data, off)
}
func (io *bypassIO) Fsync(p *sim.Proc, fd int) error { return io.th.Fsync(p, fd) }
func (io *bypassIO) Close(p *sim.Proc, fd int) error { return io.lib.Close(p, fd) }

// Thread exposes the underlying UserLib thread for breakdown stats.
func (io *bypassIO) Thread() *userlib.Thread { return io.th }

// BypassThread extracts the UserLib thread from a FileIO when the
// engine is bypassd (Fig. 7 breakdown instrumentation).
func BypassThread(io FileIO) (*userlib.Thread, bool) {
	if t, ok := io.(*tracedIO); ok {
		io = t.inner
	}
	b, ok := io.(*bypassIO)
	if !ok {
		return nil, false
	}
	return b.th, true
}

// spdkIO: raw userspace driver; "files" are registered regions.
type spdkIO struct {
	d       *spdk.Driver
	q       *spdk.Queue
	regions []spdk.Region
}

func (io *spdkIO) Engine() Engine { return EngineSPDK }

// Open resolves a region registered with Driver.CreateFile. SPDK has
// no file system: opening an unregistered name fails.
func (io *spdkIO) Open(p *sim.Proc, path string, write bool) (int, error) {
	r, ok := io.d.Lookup(path)
	if !ok {
		return 0, fmt.Errorf("core: spdk region %q not registered", path)
	}
	io.regions = append(io.regions, r)
	return len(io.regions) - 1, nil
}

func (io *spdkIO) region(fd int) (spdk.Region, error) {
	if fd < 0 || fd >= len(io.regions) {
		return spdk.Region{}, fmt.Errorf("core: bad spdk fd %d", fd)
	}
	return io.regions[fd], nil
}

func (io *spdkIO) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	r, err := io.region(fd)
	if err != nil {
		return 0, err
	}
	return io.q.ReadAt(p, r, buf, off)
}
func (io *spdkIO) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	r, err := io.region(fd)
	if err != nil {
		return 0, err
	}
	return io.q.WriteAt(p, r, data, off)
}
func (io *spdkIO) Fsync(p *sim.Proc, fd int) error { return io.q.Flush(p) }
func (io *spdkIO) Close(p *sim.Proc, fd int) error { return nil }
