package storage

import (
	"bytes"
	"testing"
)

func TestViewWindowing(t *testing.T) {
	s := New(1000)
	v, err := NewView(s, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sectors() != 200 {
		t.Fatalf("view sectors = %d", v.Sectors())
	}
	w := make([]byte, SectorSize)
	w[0] = 0x7b
	if err := v.WriteSectors(5, 1, w); err != nil {
		t.Fatal(err)
	}
	// View sector 5 is parent sector 105.
	r := make([]byte, SectorSize)
	if err := s.ReadSectors(105, 1, r); err != nil {
		t.Fatal(err)
	}
	if r[0] != 0x7b {
		t.Fatalf("view write landed at wrong parent sector")
	}
	// Read back through the view.
	r2 := make([]byte, SectorSize)
	if err := v.ReadSectors(5, 1, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, r2) {
		t.Fatal("view read mismatch")
	}
}

func TestViewBounds(t *testing.T) {
	s := New(1000)
	v, _ := NewView(s, 100, 200)
	buf := make([]byte, SectorSize)
	if err := v.ReadSectors(200, 1, buf); err == nil {
		t.Fatal("read past window succeeded")
	}
	if err := v.WriteSectors(-1, 1, buf); err == nil {
		t.Fatal("negative write succeeded")
	}
	if err := v.Zero(199, 2); err == nil {
		t.Fatal("zero straddling window end succeeded")
	}
	if err := v.Zero(0, 200); err != nil {
		t.Fatalf("full-window zero: %v", err)
	}
}

func TestViewIsolationBetweenViews(t *testing.T) {
	s := New(1000)
	a, _ := NewView(s, 0, 500)
	b, _ := NewView(s, 500, 500)
	w := make([]byte, SectorSize)
	w[0] = 1
	if err := a.WriteSectors(10, 1, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, SectorSize)
	if err := b.ReadSectors(10, 1, r); err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 {
		t.Fatal("views alias the same sectors")
	}
}

func TestViewZeroAppliesWindow(t *testing.T) {
	s := New(1000)
	w := make([]byte, SectorSize)
	w[0] = 0xff
	_ = s.WriteSectors(150, 1, w)
	_ = s.WriteSectors(50, 1, w)
	v, _ := NewView(s, 100, 200)
	if err := v.Zero(50, 1); err != nil { // parent 150
		t.Fatal(err)
	}
	r := make([]byte, SectorSize)
	_ = s.ReadSectors(150, 1, r)
	if r[0] != 0 {
		t.Fatal("view zero missed its target")
	}
	_ = s.ReadSectors(50, 1, r)
	if r[0] != 0xff {
		t.Fatal("view zero leaked outside the window")
	}
}

func TestNewViewValidation(t *testing.T) {
	s := New(1000)
	for _, c := range []struct{ base, span int64 }{
		{-1, 10}, {0, 0}, {990, 20}, {1000, 1},
	} {
		if _, err := NewView(s, c.base, c.span); err == nil {
			t.Errorf("view [%d,+%d) accepted", c.base, c.span)
		}
	}
}
