package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnwrittenReadsZero(t *testing.T) {
	s := New(1000)
	buf := make([]byte, 3*SectorSize)
	for i := range buf {
		buf[i] = 0xff
	}
	if err := s.ReadSectors(10, 3, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New(1000)
	w := make([]byte, 5*SectorSize)
	rand.New(rand.NewSource(7)).Read(w)
	if err := s.WriteSectors(123, 5, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 5*SectorSize)
	if err := s.ReadSectors(123, 5, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteStraddlesChunks(t *testing.T) {
	s := New(10 * chunkSectors)
	w := make([]byte, 4*SectorSize)
	for i := range w {
		w[i] = byte(i)
	}
	start := int64(chunkSectors - 2) // straddle chunk boundary
	if err := s.WriteSectors(start, 4, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 4*SectorSize)
	if err := s.ReadSectors(start, 4, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("chunk-straddling write corrupted")
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(100)
	buf := make([]byte, SectorSize)
	if err := s.ReadSectors(100, 1, buf); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := s.WriteSectors(-1, 1, buf); err == nil {
		t.Fatal("negative write succeeded")
	}
	if err := s.ReadSectors(99, 2, make([]byte, 2*SectorSize)); err == nil {
		t.Fatal("straddling-end read succeeded")
	}
}

func TestShortBuffer(t *testing.T) {
	s := New(100)
	if err := s.ReadSectors(0, 2, make([]byte, SectorSize)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := s.WriteSectors(0, 2, make([]byte, SectorSize)); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestZero(t *testing.T) {
	s := New(10 * chunkSectors)
	w := make([]byte, SectorSize)
	for i := range w {
		w[i] = 0xab
	}
	for sec := int64(0); sec < 3*chunkSectors; sec++ {
		if err := s.WriteSectors(sec, 1, w); err != nil {
			t.Fatal(err)
		}
	}
	// Zero a range that partially covers chunk 0 and fully covers chunk 1.
	if err := s.Zero(chunkSectors/2, chunkSectors+chunkSectors/2); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, SectorSize)
	checks := []struct {
		sec  int64
		zero bool
	}{
		{0, false},
		{chunkSectors/2 - 1, false},
		{chunkSectors / 2, true},
		{chunkSectors, true},
		{2*chunkSectors - 1, true},
		{2 * chunkSectors, false},
	}
	for _, c := range checks {
		if err := s.ReadSectors(c.sec, 1, r); err != nil {
			t.Fatal(err)
		}
		isZero := true
		for _, b := range r {
			if b != 0 {
				isZero = false
				break
			}
		}
		if isZero != c.zero {
			t.Errorf("sector %d zero=%v, want %v", c.sec, isZero, c.zero)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	s := New(100)
	w := []byte{1, 2, 3}
	buf := make([]byte, SectorSize)
	copy(buf, w)
	if err := s.WriteSectors(5, 1, buf); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	buf2 := make([]byte, SectorSize)
	buf2[0] = 99
	if err := c.WriteSectors(5, 1, buf2); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, SectorSize)
	if err := s.ReadSectors(5, 1, r); err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 {
		t.Fatalf("clone write leaked to original: %d", r[0])
	}
	if err := c.ReadSectors(5, 1, r); err != nil {
		t.Fatal(err)
	}
	if r[0] != 99 {
		t.Fatalf("clone lost its write: %d", r[0])
	}
}

func TestNewBytesAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned capacity did not panic")
		}
	}()
	NewBytes(SectorSize + 1)
}

func TestCounters(t *testing.T) {
	s := New(100)
	buf := make([]byte, 4*SectorSize)
	_ = s.WriteSectors(0, 4, buf)
	_ = s.ReadSectors(0, 2, buf)
	if s.WriteCount != 4 || s.ReadCount != 2 {
		t.Fatalf("counters = %d/%d, want 4/2", s.WriteCount, s.ReadCount)
	}
}

// Property: a random sequence of writes followed by reads behaves like
// a flat byte array.
func TestStoreMatchesFlatArrayProperty(t *testing.T) {
	const sectors = 256
	f := func(ops []struct {
		Sec  uint8
		N    uint8
		Seed int64
	}) bool {
		s := New(sectors)
		ref := make([]byte, sectors*SectorSize)
		for _, op := range ops {
			sec := int64(op.Sec) % sectors
			n := int64(op.N)%8 + 1
			if sec+n > sectors {
				n = sectors - sec
			}
			buf := make([]byte, n*SectorSize)
			rand.New(rand.NewSource(op.Seed)).Read(buf)
			if err := s.WriteSectors(sec, n, buf); err != nil {
				return false
			}
			copy(ref[sec*SectorSize:], buf)
		}
		got := make([]byte, sectors*SectorSize)
		if err := s.ReadSectors(0, sectors, got); err != nil {
			return false
		}
		return bytes.Equal(ref, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPopulatedBytes(t *testing.T) {
	s := New(10 * chunkSectors)
	if s.PopulatedBytes() != 0 {
		t.Fatal("fresh store populated")
	}
	buf := make([]byte, SectorSize)
	_ = s.WriteSectors(0, 1, buf)
	_ = s.WriteSectors(5*chunkSectors, 1, buf)
	want := int64(2 * chunkSectors * SectorSize)
	if got := s.PopulatedBytes(); got != want {
		t.Fatalf("populated = %d, want %d", got, want)
	}
}
