package storage

import "sync"

// Scratch-buffer recycling for boot-time structures whose size repeats
// across the thousands of systems an experiment sweep brings up —
// ext4's block bitmap is the main client. Buffers recycle dirty; a
// caller that needs zeroed contents clears what it uses.
//
// One pool per size class (size -> *sync.Pool of *[]byte), mirroring
// the device package's DMA-buffer pool.
var bufPools sync.Map

// GetBuf returns a buffer of the given size, recycled when one is
// free. Contents are unspecified.
func GetBuf(size int) []byte {
	pv, _ := bufPools.Load(size)
	if pv == nil {
		pv, _ = bufPools.LoadOrStore(size, &sync.Pool{})
	}
	if v := pv.(*sync.Pool).Get(); v != nil {
		return *(v.(*[]byte))
	}
	return make([]byte, size)
}

// PutBuf returns a buffer obtained from GetBuf to its pool. The caller
// must not use the buffer afterwards.
func PutBuf(b []byte) {
	if len(b) == 0 {
		return
	}
	pv, _ := bufPools.Load(len(b))
	if pv != nil {
		pv.(*sync.Pool).Put(&b)
	}
}
