// Package storage implements the persistent medium behind the
// simulated SSD: a sparse, sector-addressed block store holding real
// bytes. Every layer above (file system, key-value stores) moves
// actual data through it, so functional correctness is testable even
// though latencies are virtual.
//
// The store is deliberately unsynchronized: the simulation kernel
// guarantees only one simulated process executes at a time.
package storage

import (
	"fmt"
)

// SectorSize is the device logical block size in bytes. The Intel
// Optane P5800X used in the paper exposes 512-byte sectors (the
// WiredTiger experiment configures 512 B B-tree pages to match).
const SectorSize = 512

// chunkSectors is the allocation granularity of the sparse store.
const chunkSectors = 128 // 64 KiB chunks

// Store is a sparse array of sectors. Unwritten sectors read as
// zeroes, like a freshly trimmed SSD.
type Store struct {
	sectors int64
	chunks  map[int64][]byte

	// WriteCount and ReadCount track media accesses for tests.
	WriteCount int64
	ReadCount  int64
}

// New returns a store with the given capacity in sectors.
func New(sectors int64) *Store {
	if sectors <= 0 {
		panic("storage: capacity must be positive")
	}
	return &Store{sectors: sectors, chunks: make(map[int64][]byte)}
}

// NewBytes returns a store with the given capacity in bytes, which
// must be a multiple of SectorSize.
func NewBytes(bytes int64) *Store {
	if bytes%SectorSize != 0 {
		panic("storage: capacity must be sector aligned")
	}
	return New(bytes / SectorSize)
}

// Sectors reports the capacity in sectors.
func (s *Store) Sectors() int64 { return s.sectors }

// Bytes reports the capacity in bytes.
func (s *Store) Bytes() int64 { return s.sectors * SectorSize }

// check validates a sector range.
func (s *Store) check(sector, count int64) error {
	if sector < 0 || count < 0 || sector+count > s.sectors {
		return fmt.Errorf("storage: range [%d,+%d) outside capacity %d", sector, count, s.sectors)
	}
	return nil
}

// ReadSectors copies count sectors starting at sector into buf, which
// must be at least count*SectorSize long.
func (s *Store) ReadSectors(sector, count int64, buf []byte) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	if int64(len(buf)) < count*SectorSize {
		return fmt.Errorf("storage: buffer %d too small for %d sectors", len(buf), count)
	}
	s.ReadCount += count
	for i := int64(0); i < count; i++ {
		s.readSector(sector+i, buf[i*SectorSize:(i+1)*SectorSize])
	}
	return nil
}

// WriteSectors copies count sectors from buf to the store.
func (s *Store) WriteSectors(sector, count int64, buf []byte) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	if int64(len(buf)) < count*SectorSize {
		return fmt.Errorf("storage: buffer %d too small for %d sectors", len(buf), count)
	}
	s.WriteCount += count
	for i := int64(0); i < count; i++ {
		s.writeSector(sector+i, buf[i*SectorSize:(i+1)*SectorSize])
	}
	return nil
}

func (s *Store) readSector(sector int64, dst []byte) {
	chunk, off := sector/chunkSectors, sector%chunkSectors
	data, ok := s.chunks[chunk]
	if !ok {
		for i := range dst[:SectorSize] {
			dst[i] = 0
		}
		return
	}
	copy(dst[:SectorSize], data[off*SectorSize:])
}

func (s *Store) writeSector(sector int64, src []byte) {
	chunk, off := sector/chunkSectors, sector%chunkSectors
	data, ok := s.chunks[chunk]
	if !ok {
		data = make([]byte, chunkSectors*SectorSize)
		s.chunks[chunk] = data
	}
	copy(data[off*SectorSize:(off+1)*SectorSize], src)
}

// Zero clears count sectors starting at sector (like an NVMe
// write-zeroes command). Chunks fully covered are dropped from the
// sparse map.
func (s *Store) Zero(sector, count int64) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	var zero [SectorSize]byte
	for i := int64(0); i < count; i++ {
		sec := sector + i
		if sec%chunkSectors == 0 && count-i >= chunkSectors {
			delete(s.chunks, sec/chunkSectors)
			i += chunkSectors - 1
			continue
		}
		if _, ok := s.chunks[sec/chunkSectors]; ok {
			s.writeSector(sec, zero[:])
		}
	}
	return nil
}

// Clone returns a deep copy, used to reuse prebuilt images (database
// files, file-system layouts) across benchmark runs.
func (s *Store) Clone() *Store {
	c := New(s.sectors)
	for k, v := range s.chunks {
		dup := make([]byte, len(v))
		copy(dup, v)
		c.chunks[k] = dup
	}
	return c
}

// PopulatedBytes reports the bytes of backing memory in use, for
// memory-overhead accounting.
func (s *Store) PopulatedBytes() int64 {
	return int64(len(s.chunks)) * chunkSectors * SectorSize
}

// SectorIO is the sector-level access contract shared by a raw Store
// and windowed Views of it.
type SectorIO interface {
	ReadSectors(sector, count int64, buf []byte) error
	WriteSectors(sector, count int64, buf []byte) error
	Zero(sector, count int64) error
	Sectors() int64
}

var _ SectorIO = (*Store)(nil)

// View exposes a contiguous window of a Store as an isolated sector
// space — the medium behind an SR-IOV virtual function: sector 0 of
// the view is Base of the parent, and nothing outside [Base,
// Base+Span) is reachable.
type View struct {
	St   *Store
	Base int64
	Span int64 // sectors
}

var _ SectorIO = (*View)(nil)

// NewView carves a window out of s.
func NewView(s *Store, base, span int64) (*View, error) {
	if base < 0 || span <= 0 || base+span > s.Sectors() {
		return nil, fmt.Errorf("storage: view [%d,+%d) outside store of %d sectors", base, span, s.Sectors())
	}
	return &View{St: s, Base: base, Span: span}, nil
}

func (v *View) check(sector, count int64) error {
	if sector < 0 || count < 0 || sector+count > v.Span {
		return fmt.Errorf("storage: view range [%d,+%d) outside window %d", sector, count, v.Span)
	}
	return nil
}

// ReadSectors implements SectorIO.
func (v *View) ReadSectors(sector, count int64, buf []byte) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.ReadSectors(v.Base+sector, count, buf)
}

// WriteSectors implements SectorIO.
func (v *View) WriteSectors(sector, count int64, buf []byte) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.WriteSectors(v.Base+sector, count, buf)
}

// Zero implements SectorIO.
func (v *View) Zero(sector, count int64) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.Zero(v.Base+sector, count)
}

// Sectors reports the window size.
func (v *View) Sectors() int64 { return v.Span }
