// Package storage implements the persistent medium behind the
// simulated SSD: a sparse, sector-addressed block store holding real
// bytes. Every layer above (file system, key-value stores) moves
// actual data through it, so functional correctness is testable even
// though latencies are virtual.
//
// The store is deliberately unsynchronized: the simulation kernel
// guarantees only one simulated process executes at a time. The chunk
// pool below is the one shared piece of state, and sync.Pool makes it
// safe across the parallel experiment runner's machines.
package storage

import (
	"fmt"
	"sync"
)

// SectorSize is the device logical block size in bytes. The Intel
// Optane P5800X used in the paper exposes 512-byte sectors (the
// WiredTiger experiment configures 512 B B-tree pages to match).
const SectorSize = 512

// chunkSectors is the allocation granularity of the sparse store.
const chunkSectors = 128 // 64 KiB chunks

const chunkBytes = chunkSectors * SectorSize

// chunkPool recycles 64 KiB chunk arrays across stores. Allocating —
// and above all zeroing — a fresh chunk per first-touch write was the
// single largest CPU item in the simulator profile; pooled chunks are
// returned dirty and the writer zeroes only the bytes its write does
// not cover.
// The pool traffics in array pointers, not slices: a *[chunkBytes]byte
// fits in an interface without boxing a slice header, so putChunk does
// not allocate.
var chunkPool sync.Pool

func getChunk() []byte {
	if v := chunkPool.Get(); v != nil {
		return v.(*[chunkBytes]byte)[:]
	}
	return make([]byte, chunkBytes)
}

func putChunk(b []byte) {
	if len(b) != chunkBytes {
		return
	}
	chunkPool.Put((*[chunkBytes]byte)(b))
}

// Store is a sparse array of sectors. Unwritten sectors read as
// zeroes, like a freshly trimmed SSD.
type Store struct {
	sectors int64
	chunks  map[int64][]byte

	// WriteCount and ReadCount track media accesses for tests.
	WriteCount int64
	ReadCount  int64
}

// New returns a store with the given capacity in sectors.
func New(sectors int64) *Store {
	if sectors <= 0 {
		panic("storage: capacity must be positive")
	}
	return &Store{sectors: sectors, chunks: make(map[int64][]byte)}
}

// NewBytes returns a store with the given capacity in bytes, which
// must be a multiple of SectorSize.
func NewBytes(bytes int64) *Store {
	if bytes%SectorSize != 0 {
		panic("storage: capacity must be sector aligned")
	}
	return New(bytes / SectorSize)
}

// Sectors reports the capacity in sectors.
func (s *Store) Sectors() int64 { return s.sectors }

// Bytes reports the capacity in bytes.
func (s *Store) Bytes() int64 { return s.sectors * SectorSize }

// check validates a sector range.
func (s *Store) check(sector, count int64) error {
	if sector < 0 || count < 0 || sector+count > s.sectors {
		return fmt.Errorf("storage: range [%d,+%d) outside capacity %d", sector, count, s.sectors)
	}
	return nil
}

// ReadSectors copies count sectors starting at sector into buf, which
// must be at least count*SectorSize long. The copy is coalesced per
// chunk: one map lookup and one memmove per 64 KiB run instead of per
// 512 B sector.
func (s *Store) ReadSectors(sector, count int64, buf []byte) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	if int64(len(buf)) < count*SectorSize {
		return fmt.Errorf("storage: buffer %d too small for %d sectors", len(buf), count)
	}
	s.ReadCount += count
	for count > 0 {
		chunk, off := sector/chunkSectors, sector%chunkSectors
		n := chunkSectors - off // sectors available in this chunk
		if n > count {
			n = count
		}
		dst := buf[:n*SectorSize]
		if data, ok := s.chunks[chunk]; ok {
			copy(dst, data[off*SectorSize:])
		} else {
			clear(dst)
		}
		buf = buf[n*SectorSize:]
		sector += n
		count -= n
	}
	return nil
}

// WriteSectors copies count sectors from buf to the store, coalescing
// the copy per chunk. First-touch chunks come from the shared pool and
// only the bytes outside the written range are zeroed.
func (s *Store) WriteSectors(sector, count int64, buf []byte) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	if int64(len(buf)) < count*SectorSize {
		return fmt.Errorf("storage: buffer %d too small for %d sectors", len(buf), count)
	}
	s.WriteCount += count
	for count > 0 {
		chunk, off := sector/chunkSectors, sector%chunkSectors
		n := chunkSectors - off
		if n > count {
			n = count
		}
		data, ok := s.chunks[chunk]
		if !ok {
			data = getChunk()
			clear(data[:off*SectorSize])
			clear(data[(off+n)*SectorSize:])
			s.chunks[chunk] = data
		}
		copy(data[off*SectorSize:(off+n)*SectorSize], buf)
		buf = buf[n*SectorSize:]
		sector += n
		count -= n
	}
	return nil
}

// Zero clears count sectors starting at sector (like an NVMe
// write-zeroes command). Chunks fully covered are dropped from the
// sparse map and recycled.
func (s *Store) Zero(sector, count int64) error {
	if err := s.check(sector, count); err != nil {
		return err
	}
	for count > 0 {
		chunk, off := sector/chunkSectors, sector%chunkSectors
		n := chunkSectors - off
		if n > count {
			n = count
		}
		if data, ok := s.chunks[chunk]; ok {
			if n == chunkSectors {
				delete(s.chunks, chunk)
				putChunk(data)
			} else {
				clear(data[off*SectorSize : (off+n)*SectorSize])
			}
		}
		sector += n
		count -= n
	}
	return nil
}

// Release returns every chunk to the shared pool and empties the
// store. Only an exclusive owner discarding the store (a benchmark
// harness tearing down its machine) may call it: after Release the
// store reads as all zeroes, and aliased Views see the same wipe.
func (s *Store) Release() {
	for k, v := range s.chunks {
		putChunk(v)
		delete(s.chunks, k)
	}
}

// Clone returns a deep copy, used to reuse prebuilt images (database
// files, file-system layouts) across benchmark runs.
func (s *Store) Clone() *Store {
	c := New(s.sectors)
	for k, v := range s.chunks {
		dup := getChunk()
		copy(dup, v)
		c.chunks[k] = dup
	}
	return c
}

// PopulatedBytes reports the bytes of backing memory in use, for
// memory-overhead accounting.
func (s *Store) PopulatedBytes() int64 {
	return int64(len(s.chunks)) * chunkSectors * SectorSize
}

// SectorIO is the sector-level access contract shared by a raw Store
// and windowed Views of it.
type SectorIO interface {
	ReadSectors(sector, count int64, buf []byte) error
	WriteSectors(sector, count int64, buf []byte) error
	Zero(sector, count int64) error
	Sectors() int64
}

var _ SectorIO = (*Store)(nil)

// View exposes a contiguous window of a Store as an isolated sector
// space — the medium behind an SR-IOV virtual function: sector 0 of
// the view is Base of the parent, and nothing outside [Base,
// Base+Span) is reachable.
type View struct {
	St   *Store
	Base int64
	Span int64 // sectors
}

var _ SectorIO = (*View)(nil)

// NewView carves a window out of s.
func NewView(s *Store, base, span int64) (*View, error) {
	if base < 0 || span <= 0 || base+span > s.Sectors() {
		return nil, fmt.Errorf("storage: view [%d,+%d) outside store of %d sectors", base, span, s.Sectors())
	}
	return &View{St: s, Base: base, Span: span}, nil
}

func (v *View) check(sector, count int64) error {
	if sector < 0 || count < 0 || sector+count > v.Span {
		return fmt.Errorf("storage: view range [%d,+%d) outside window %d", sector, count, v.Span)
	}
	return nil
}

// ReadSectors implements SectorIO.
func (v *View) ReadSectors(sector, count int64, buf []byte) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.ReadSectors(v.Base+sector, count, buf)
}

// WriteSectors implements SectorIO.
func (v *View) WriteSectors(sector, count int64, buf []byte) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.WriteSectors(v.Base+sector, count, buf)
}

// Zero implements SectorIO.
func (v *View) Zero(sector, count int64) error {
	if err := v.check(sector, count); err != nil {
		return err
	}
	return v.St.Zero(v.Base+sector, count)
}

// Sectors reports the window size.
func (v *View) Sectors() int64 { return v.Span }
