package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Fire("device/x/media") {
		t.Fatal("nil injector fired")
	}
	if _, ok := inj.FireDelayQ("device/x/delay", 3); ok {
		t.Fatal("nil injector fired delay")
	}
	if inj.Total() != 0 || inj.Counts() != nil || inj.ProfileName() != "" {
		t.Fatal("nil injector reported state")
	}
}

func TestPeriodAndOneShot(t *testing.T) {
	inj := NewInjector(1, []Rule{
		{Site: "a", Period: 3},
		{Site: "b", Count: 1},
		{Site: "c", Start: 2},
	})
	var fires []bool
	for i := 0; i < 9; i++ {
		fires = append(fires, inj.Fire("a"))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	if !reflect.DeepEqual(fires, want) {
		t.Fatalf("period fires = %v, want %v", fires, want)
	}
	if !inj.Fire("b") || inj.Fire("b") || inj.Fire("b") {
		t.Fatal("one-shot rule did not fire exactly once")
	}
	if inj.Fire("c") || inj.Fire("c") {
		t.Fatal("rule fired before Start decisions passed")
	}
	if !inj.Fire("c") {
		t.Fatal("rule did not fire after Start")
	}
}

func TestDefaultRuleFiresAlways(t *testing.T) {
	inj := NewInjector(1, []Rule{{Site: "x"}})
	for i := 0; i < 5; i++ {
		if !inj.Fire("x") {
			t.Fatalf("decision %d did not fire", i)
		}
	}
	if inj.Total() != 5 {
		t.Fatalf("total = %d, want 5", inj.Total())
	}
}

func TestGlobMatchAndQueueFilter(t *testing.T) {
	inj := NewInjector(1, []Rule{
		{Site: "device/*", Queue: 2},
	})
	if inj.FireQ("device/optane/media", 1) {
		t.Fatal("fired on wrong queue")
	}
	if !inj.FireQ("device/optane/media", 2) || !inj.FireQ("device/zssd/timeout", 2) {
		t.Fatal("glob rule did not match device sites on queue 2")
	}
	if inj.Fire("iommu/fault") {
		t.Fatal("glob rule leaked outside its prefix")
	}

	mid := NewInjector(1, []Rule{{Site: "device/*/media"}})
	if !mid.Fire("device/optane-p5800x/media") {
		t.Fatal("mid-glob did not match a device media site")
	}
	if mid.Fire("device/optane-p5800x/timeout") {
		t.Fatal("mid-glob matched the wrong site kind")
	}
	if mid.Fire("device/media") {
		t.Fatal("mid-glob matched a site missing the wildcard segment")
	}
}

func TestDelayPayload(t *testing.T) {
	inj := NewInjector(1, []Rule{{Site: "d", Delay: 50 * sim.Microsecond}})
	dl, ok := inj.FireDelay("d")
	if !ok || dl != 50*sim.Microsecond {
		t.Fatalf("delay = %v, %v", dl, ok)
	}
}

func TestProbabilityDeterministicReplay(t *testing.T) {
	run := func() []bool {
		inj := NewInjector(42, []Rule{{Site: "p", Prob: 0.3}})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.Fire("p"))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times", fired, len(a))
	}
	c := NewInjector(43, []Rule{{Site: "p", Prob: 0.3}})
	var other []bool
	for i := 0; i < 200; i++ {
		other = append(other, c.Fire("p"))
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestProbabilityStreamIndependentOfOtherSites(t *testing.T) {
	// Decisions on unrelated sites must not consume PRNG draws.
	a := NewInjector(7, []Rule{{Site: "p", Prob: 0.5}})
	b := NewInjector(7, []Rule{{Site: "p", Prob: 0.5}})
	var sa, sb []bool
	for i := 0; i < 100; i++ {
		a.Fire("unrelated/site")
		sa = append(sa, a.Fire("p"))
		sb = append(sb, b.Fire("p"))
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("unrelated decisions perturbed the probability stream")
	}
}

func TestCounts(t *testing.T) {
	inj := NewInjector(1, []Rule{{Site: "a"}, {Site: "b", Period: 2}})
	inj.Fire("a")
	inj.Fire("a")
	inj.Fire("b")
	inj.Fire("b")
	got := inj.Counts()
	if got["a"] != 2 || got["b"] != 1 || inj.Total() != 3 {
		t.Fatalf("counts = %v, total = %d", got, inj.Total())
	}
}

func TestActivateDeactivate(t *testing.T) {
	defer Deactivate()
	if err := Activate("no-such-profile", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if inj := NewFromActive(); inj != nil {
		t.Fatal("injector built with no active profile")
	}
	if err := Activate("flaky-media", 9); err != nil {
		t.Fatal(err)
	}
	if ActiveName() != "flaky-media" {
		t.Fatalf("active = %q", ActiveName())
	}
	inj := NewFromActive()
	if inj == nil || inj.ProfileName() != "flaky-media" {
		t.Fatalf("injector = %+v", inj)
	}
	Deactivate()
	if ActiveName() != "" || NewFromActive() != nil {
		t.Fatal("deactivate did not disarm")
	}
}

func TestGlobalCountersAggregate(t *testing.T) {
	ResetGlobal()
	a := NewInjector(1, []Rule{{Site: "g"}})
	b := NewInjector(2, []Rule{{Site: "g"}})
	a.Fire("g")
	b.Fire("g")
	b.Fire("g")
	if GlobalTotal() != 3 {
		t.Fatalf("global total = %d", GlobalTotal())
	}
	if GlobalCounts()["g"] != 3 {
		t.Fatalf("global counts = %v", GlobalCounts())
	}
	ResetGlobal()
	if GlobalTotal() != 0 || len(GlobalCounts()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestProfilesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.Name == "" || p.Desc == "" || len(p.Rules) == 0 {
			t.Fatalf("malformed profile %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		for _, r := range p.Rules {
			if r.Prob < 0 || r.Prob > 1 {
				t.Fatalf("profile %s rule %q has prob %v", p.Name, r.Site, r.Prob)
			}
			if r.Site == "" {
				t.Fatalf("profile %s has an empty site", p.Name)
			}
		}
		if _, ok := ProfileByName(p.Name); !ok {
			t.Fatalf("ProfileByName(%q) failed", p.Name)
		}
	}
}
