// Package faults is the deterministic fault-injection plane of the
// simulated machine. An Injector evaluates named injection sites
// ("device/optane-p5800x/media", "kernel/revoke", ...) against a rule
// list; every decision is driven by a seeded PRNG plus per-rule
// counters, so a run with a fixed seed and profile replays
// byte-for-byte. A nil *Injector is valid and never fires, which keeps
// the disabled configuration structurally identical to a build without
// fault injection: no RNG draws, no time charges, no allocations.
//
// The plane has two halves:
//
//   - Injector: per-machine state, created by kernel.NewMachine and
//     threaded into the device, IOMMU, file system and UserLib. The
//     simulation runs one goroutine at a time per machine, so the
//     injector needs no locks for its own counters.
//   - The process-global active profile (Activate/Deactivate) plus
//     aggregated fire counters. Machines boot deep inside experiment
//     harnesses, so the profile is handed down globally rather than
//     plumbed through every constructor; the aggregate counters are
//     what bypassd-bench reports.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Injection sites with fixed names. Device sites are per-device; see
// DeviceSite.
const (
	SiteIOMMUFault      = "iommu/fault"      // spurious translation fault
	SiteIOMMUInvalidate = "iommu/invalidate" // IOTLB invalidation storm
	SiteIOMMUATSDelay   = "iommu/ats_delay"  // delayed ATS response

	SiteKernelRevoke   = "kernel/revoke"    // revoke direct access to the inode
	SiteKernelFmapZero = "kernel/fmap_zero" // fmap() declines with VBA 0

	SiteQueueFull     = "userlib/queue_full"     // submission backpressure
	SiteRefmapExhaust = "userlib/refmap_exhaust" // give up refmap retries

	// SiteTenantBurst fires in the tenancy plane's open-loop
	// generators: a hit compresses the next run of arrivals to a
	// single instant (a correlated arrival spike), the classic way
	// multi-tenant SLOs die.
	SiteTenantBurst = "tenants/burst"

	SiteCrashPreJournal     = "ext4/crash_pre_journal"     // before any journal write
	SiteCrashPreCommit      = "ext4/crash_pre_commit"      // log written, no commit record
	SiteCrashPostCommit     = "ext4/crash_post_commit"     // committed, not checkpointed
	SiteCrashPostCheckpoint = "ext4/crash_post_checkpoint" // checkpointed, journal not clean
)

// Device site kinds (third path component of DeviceSite).
const (
	KindMedia   = "media"   // command fails with media error
	KindTimeout = "timeout" // command hangs, then fails with timeout
	KindDelay   = "delay"   // latency spike, command still succeeds
)

// DeviceSite names a device injection site, e.g.
// "device/optane-p5800x/media". Rules may use a trailing '*' to match
// every device: "device/*".
func DeviceSite(dev, kind string) string {
	return "device/" + dev + "/" + kind
}

// Rule arms one injection site (or a prefix of sites).
type Rule struct {
	// Site is an exact site name, or a glob with one '*' matching any
	// run of characters ("device/*" arms every device site,
	// "device/*/media" arms media errors on every device).
	Site string
	// Queue restricts the rule to one queue ID on queue-aware sites
	// (device commands); 0 matches any queue.
	Queue int
	// Prob fires the rule on each matching decision with this
	// probability, drawn from the injector's seeded PRNG.
	Prob float64
	// Period, when Prob is 0, fires the rule on every Period-th
	// matching decision (1 = every decision). A rule with neither
	// Prob nor Period set fires on every matching decision.
	Period int64
	// Start skips the first Start matching decisions before the rule
	// becomes eligible.
	Start int64
	// Count caps the number of fires; 0 = unlimited, 1 = one-shot.
	Count int64
	// Delay is the payload for delay-style sites (latency spikes,
	// ATS delays, timeout hang time). Zero lets the site pick its
	// default.
	Delay sim.Time
}

// ruleState is a Rule plus its decision counters.
type ruleState struct {
	Rule
	seen  int64 // matching decisions observed
	fired int64
}

// matches reports whether the rule covers the (site, queue) decision.
// A single '*' in the pattern matches any run of characters, so both
// "device/*" (prefix) and "device/*/media" (wildcard device name) work.
func (r *ruleState) matches(site string, queue int) bool {
	if r.Queue != 0 && r.Queue != queue {
		return false
	}
	if i := strings.IndexByte(r.Site, '*'); i >= 0 {
		pre, suf := r.Site[:i], r.Site[i+1:]
		return len(site) >= len(pre)+len(suf) &&
			strings.HasPrefix(site, pre) && strings.HasSuffix(site, suf)
	}
	return r.Site == site
}

// Injector evaluates injection sites for one simulated machine. The
// zero value of *Injector (nil) is inert; all methods are nil-safe.
type Injector struct {
	profile string
	rules   []*ruleState
	rng     *rand.Rand
	counts  map[string]int64
	total   int64
}

// NewInjector builds an injector from a rule list. Decisions draw from
// a PRNG seeded with seed, so two injectors with equal seeds and rules
// replay identically given the same decision sequence.
func NewInjector(seed int64, rules []Rule) *Injector {
	inj := &Injector{
		rng:    rand.New(rand.NewSource(seed ^ 0x0fa17_b1a5e)),
		counts: make(map[string]int64),
	}
	for _, r := range rules {
		rc := r
		inj.rules = append(inj.rules, &ruleState{Rule: rc})
	}
	return inj
}

// Active reports whether the injector carries any rules. An inactive
// injector's Fire path reads no mutable state (decide's rule loop is
// empty), so it is safe to call from parallel shard workers; harnesses
// consult Active to fall back to sequential dispatch when a fault
// profile is armed, since rule bookkeeping and the PRNG are shared.
func (inj *Injector) Active() bool { return inj != nil && len(inj.rules) > 0 }

// decide runs the (site, queue) decision against every rule in order
// and returns the first firing rule. PRNG draws happen only for
// probability rules that match the site, keeping the stream
// independent of unrelated sites.
func (inj *Injector) decide(site string, queue int) *ruleState {
	if inj == nil {
		return nil
	}
	var hit *ruleState
	for _, r := range inj.rules {
		if !r.matches(site, queue) {
			continue
		}
		r.seen++
		if r.seen <= r.Start {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		fire := false
		switch {
		case r.Prob > 0:
			// Consume a draw even if an earlier rule already fired,
			// so the stream depends only on the decision sequence.
			fire = inj.rng.Float64() < r.Prob
		case r.Period > 1:
			fire = (r.seen-r.Start)%r.Period == 0
		default:
			fire = true
		}
		if fire && hit == nil {
			r.fired++
			hit = r
		}
	}
	if hit != nil {
		inj.counts[site]++
		inj.total++
		recordGlobal(site)
	}
	return hit
}

// Fire evaluates a queue-less site and reports whether it fired.
func (inj *Injector) Fire(site string) bool { return inj.FireQ(site, 0) }

// FireQ evaluates a queue-aware site.
func (inj *Injector) FireQ(site string, queue int) bool {
	return inj.decide(site, queue) != nil
}

// FireDelay evaluates a delay-style site, returning the firing rule's
// Delay payload (possibly 0: the site applies its default).
func (inj *Injector) FireDelay(site string) (sim.Time, bool) {
	return inj.FireDelayQ(site, 0)
}

// FireDelayQ is FireDelay with a queue ID.
func (inj *Injector) FireDelayQ(site string, queue int) (sim.Time, bool) {
	if r := inj.decide(site, queue); r != nil {
		return r.Delay, true
	}
	return 0, false
}

// Total reports how many times this injector fired.
func (inj *Injector) Total() int64 {
	if inj == nil {
		return 0
	}
	return inj.total
}

// Counts returns a copy of the per-site fire counters.
func (inj *Injector) Counts() map[string]int64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]int64, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// ProfileName reports the profile this injector was built from ("" for
// hand-built injectors).
func (inj *Injector) ProfileName() string {
	if inj == nil {
		return ""
	}
	return inj.profile
}

// Profile is a named rule set selectable with bypassd-bench -faults.
type Profile struct {
	Name  string
	Desc  string
	Rules []Rule
}

// Built-in profiles. Every machine draws the same seeded stream (see
// NewFromActive), so probabilities are sized for the ~100-1000
// decisions a typical quick-mode machine makes: high enough that the
// shared stream reliably fires inside that window, low enough that the
// bounded retries (3 per layer) almost never exhaust — experiments
// complete with shifted numbers rather than erroring. Crash sites are
// deliberately absent: they freeze a file system mid-commit and belong
// to the crash-recovery tests, not to benchmark profiles.
var builtins = []Profile{
	{
		Name: "flaky-media",
		Desc: "sporadic media errors and command timeouts on every device",
		Rules: []Rule{
			{Site: "device/*/media", Prob: 0.05},
			{Site: "device/*/timeout", Prob: 0.01, Delay: 200 * sim.Microsecond},
		},
	},
	{
		Name: "latency-spikes",
		Desc: "occasional device latency spikes and slow ATS responses",
		Rules: []Rule{
			{Site: "device/*/delay", Prob: 0.05, Delay: 50 * sim.Microsecond},
			{Site: SiteIOMMUATSDelay, Prob: 0.05, Delay: 2 * sim.Microsecond},
		},
	},
	{
		Name: "revoke-storm",
		Desc: "kernel keeps revoking direct access and declining fmap()",
		Rules: []Rule{
			{Site: SiteKernelRevoke, Prob: 0.02},
			{Site: SiteKernelFmapZero, Prob: 0.05},
		},
	},
	{
		Name: "iommu-storm",
		Desc: "spurious translation faults and IOTLB invalidation storms",
		Rules: []Rule{
			{Site: SiteIOMMUFault, Prob: 0.02},
			{Site: SiteIOMMUInvalidate, Prob: 0.05},
			{Site: SiteIOMMUATSDelay, Prob: 0.05, Delay: 1 * sim.Microsecond},
		},
	},
	{
		Name: "queue-pressure",
		Desc: "submission backpressure and refmap retry exhaustion",
		Rules: []Rule{
			{Site: SiteQueueFull, Prob: 0.05, Delay: 1 * sim.Microsecond},
			{Site: SiteRefmapExhaust, Prob: 0.005},
		},
	},
	{
		Name: "tenant-storm",
		Desc: "bursty tenant arrival spikes plus queue-full backpressure",
		Rules: []Rule{
			{Site: SiteTenantBurst, Prob: 0.01},
			{Site: SiteQueueFull, Prob: 0.05, Delay: 1 * sim.Microsecond},
		},
	},
	{
		Name: "chaos",
		Desc: "a little of everything at once",
		Rules: []Rule{
			{Site: "device/*/media", Prob: 0.01},
			{Site: "device/*/delay", Prob: 0.02, Delay: 20 * sim.Microsecond},
			{Site: SiteIOMMUFault, Prob: 0.01},
			{Site: SiteIOMMUInvalidate, Prob: 0.02},
			{Site: SiteKernelRevoke, Prob: 0.005},
			{Site: SiteKernelFmapZero, Prob: 0.01},
			{Site: SiteQueueFull, Prob: 0.02},
		},
	},
}

// Profiles lists the built-in profiles sorted by name.
func Profiles() []Profile {
	out := append([]Profile(nil), builtins...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range builtins {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// activeSpec is the process-global fault configuration new machines
// pick up at boot.
type activeSpec struct {
	prof Profile
	seed int64
}

var active atomic.Pointer[activeSpec]

// Activate arms the named profile for every machine booted until
// Deactivate. It resets the global fire counters so a run's report
// covers exactly that run. An unknown name is an error.
func Activate(name string, seed int64) error {
	p, ok := ProfileByName(name)
	if !ok {
		var names []string
		for _, b := range Profiles() {
			names = append(names, b.Name)
		}
		return fmt.Errorf("faults: unknown profile %q (have %s)", name, strings.Join(names, ", "))
	}
	ResetGlobal()
	active.Store(&activeSpec{prof: p, seed: seed})
	return nil
}

// Deactivate disarms fault injection for subsequently booted machines.
func Deactivate() { active.Store(nil) }

// ActiveName reports the armed profile name, or "".
func ActiveName() string {
	if s := active.Load(); s != nil {
		return s.prof.Name
	}
	return ""
}

// NewFromActive builds a machine's injector from the armed profile,
// or returns nil (inert) when no profile is active. Every machine gets
// the same seed and rules, so a machine's fault stream depends only on
// its own deterministic decision sequence — never on how many machines
// boot or on scheduling across them.
func NewFromActive() *Injector {
	s := active.Load()
	if s == nil {
		return nil
	}
	inj := NewInjector(s.seed, s.prof.Rules)
	inj.profile = s.prof.Name
	return inj
}

// Global aggregated fire counters, reported by bypassd-bench. Machines
// boot concurrently under parallel sweeps, so these take a lock; the
// per-injector counters stay lock-free.
var (
	globalMu     sync.Mutex
	globalCounts = make(map[string]int64)
	globalTotal  int64
)

func recordGlobal(site string) {
	globalMu.Lock()
	globalCounts[site]++
	globalTotal++
	globalMu.Unlock()
}

// ResetGlobal zeroes the aggregated counters.
func ResetGlobal() {
	globalMu.Lock()
	globalCounts = make(map[string]int64)
	globalTotal = 0
	globalMu.Unlock()
}

// GlobalTotal reports the process-wide fire count since the last
// reset.
func GlobalTotal() int64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalTotal
}

// GlobalCounts returns a copy of the process-wide per-site counters.
func GlobalCounts() map[string]int64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	out := make(map[string]int64, len(globalCounts))
	for k, v := range globalCounts {
		out[k] = v
	}
	return out
}
