// Package nvme defines the NVMe protocol surface shared by the
// simulated SSD, the kernel driver, and BypassD's UserLib: submission
// and completion queue entries, status codes, and in-memory queue
// pairs with doorbell semantics.
//
// BypassD extends the command format with Virtual Block Addresses
// (VBAs): a submission entry may carry a process-virtual address in
// place of a Logical Block Address, in which case the device asks the
// IOMMU to translate it (paper §3.5). The PASID needed for that walk
// is a property of the queue pair, linked at queue-creation time by
// the kernel driver (paper §3.3).
package nvme

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Opcode identifies an NVMe I/O command.
type Opcode uint8

// Supported commands.
const (
	OpRead Opcode = iota
	OpWrite
	OpFlush
	OpWriteZeroes
)

func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpWriteZeroes:
		return "write-zeroes"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is an NVMe completion status code.
type Status uint16

// Completion statuses. TranslationFault and AccessDenied are the
// BypassD additions: the IOMMU could not translate the VBA (no FTE —
// access revoked or never granted) or the permission/DevID check
// failed. The SSD returns the error to the submitter without touching
// media (paper §5.3).
const (
	StatusSuccess Status = iota
	StatusLBAOutOfRange
	StatusInvalidField
	StatusTranslationFault
	StatusAccessDenied
	StatusInternalError
	// StatusMediaError and StatusCommandTimeout model transient device
	// failures (injected by the fault plane); submitters may retry.
	StatusMediaError
	StatusCommandTimeout
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusLBAOutOfRange:
		return "lba-out-of-range"
	case StatusInvalidField:
		return "invalid-field"
	case StatusTranslationFault:
		return "translation-fault"
	case StatusAccessDenied:
		return "access-denied"
	case StatusInternalError:
		return "internal-error"
	case StatusMediaError:
		return "media-error"
	case StatusCommandTimeout:
		return "command-timeout"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// OK reports whether the status is a success.
func (s Status) OK() bool { return s == StatusSuccess }

// Transient reports whether the status models a transient device
// condition that a submitter may reasonably retry.
func (s Status) Transient() bool {
	return s == StatusMediaError || s == StatusCommandTimeout
}

// SQE is a submission queue entry.
type SQE struct {
	Opcode  Opcode
	CID     uint16 // command identifier, echoed in the CQE
	Sectors int64  // transfer length in 512 B sectors

	// Exactly one addressing mode is used:
	// UseVBA=false: SLBA is a device sector number.
	// UseVBA=true: VBA is a process-virtual byte address that the
	// device must have translated by the IOMMU before media access.
	UseVBA bool
	SLBA   int64
	VBA    uint64

	// Buf is the DMA target/source. Its length must be
	// Sectors*SectorSize. In hardware this would be a PRP/SGL; the
	// simulation passes the pinned buffer directly.
	Buf []byte

	// Span is the observability plane's per-request context; the
	// device marks its service window on it. Nil when tracing is off
	// (every span method is a nil-safe no-op).
	Span *trace.IOSpan
}

// CQE is a completion queue entry.
type CQE struct {
	CID    uint16
	Status Status
}

// QoS is the service class a queue pair carries through device
// arbitration. The paper delegates inter-process fairness to NVMe
// queue arbitration once the kernel I/O scheduler is bypassed (§3.7);
// QoS is the per-queue state that arbitration consults. The kernel
// driver stamps it at queue-registration time from the owning
// process, so every UserLib per-thread queue inherits its tenant's
// class. The zero value is the default class: weight 1, priority 0,
// no rate limit — under the default flat round-robin arbiter it is
// never consulted at all.
type QoS struct {
	// Weight is the queue's weighted-fair share; values <= 0 mean 1.
	Weight int `json:"weight,omitempty"`
	// Priority orders strict-priority arbitration; lower values are
	// served first. Ignored by the round-robin arbiters.
	Priority int `json:"priority,omitempty"`
	// RateOps, when > 0, caps the rate at which commands are fetched
	// from this queue (commands per second of virtual time) via a
	// token bucket in the arbiter.
	RateOps float64 `json:"rate_ops,omitempty"`
	// Burst is the token-bucket depth; values <= 0 mean the arbiter's
	// default.
	Burst int `json:"burst,omitempty"`
}

// QueuePair is an in-memory NVMe submission/completion queue pair.
// The kernel driver creates queue pairs and may map them into a
// process (the BypassD interface); each pair carries the PASID of the
// owning process so the IOMMU can locate its page tables, and the QoS
// class of the owning process so the device arbiter knows its share.
type QueuePair struct {
	ID    int
	PASID uint32
	QoS   QoS

	sq       []SQE
	sqHead   int
	sqTail   int
	sqCount  int
	cq       []CQE
	cqHead   int
	cqTail   int
	cqCount  int
	Doorbell *sim.Cond // device waits here for submissions
	CQReady  *sim.Cond // submitters wait here for completions

	closed bool
}

// rings is a recycled SQ/CQ array pair. Machines boot (and discard)
// queue pairs constantly under the experiment sweeps, and allocating —
// and zeroing — a fresh 4096-entry kernel ring per machine was a top
// boot cost. Rings recycle dirty: ring protocol only ever reads
// entries after writing them (head/tail/count live on the QueuePair
// and start fresh), so stale entries are unreachable.
type rings struct {
	sq []SQE
	cq []CQE
}

// ringPools holds one free list per ring depth (depth -> *sync.Pool
// of *rings); experiments run machines in parallel, hence sync.
var ringPools sync.Map

func getRings(depth int) *rings {
	pv, _ := ringPools.Load(depth)
	if pv == nil {
		pv, _ = ringPools.LoadOrStore(depth, &sync.Pool{})
	}
	if v := pv.(*sync.Pool).Get(); v != nil {
		return v.(*rings)
	}
	return &rings{sq: make([]SQE, depth), cq: make([]CQE, depth)}
}

// ReleaseRings returns the pair's ring arrays to the shared pool. Only
// teardown paths that own the whole machine (core.System.Close) may
// call it: any later use of the pair would alias a recycled ring.
func (q *QueuePair) ReleaseRings() {
	if q.sq == nil {
		return
	}
	pv, _ := ringPools.Load(len(q.sq))
	if pv != nil {
		pv.(*sync.Pool).Put(&rings{sq: q.sq, cq: q.cq})
	}
	q.sq, q.cq = nil, nil
}

// NewQueuePair returns a queue pair with the given ring depth.
func NewQueuePair(s *sim.Sim, id int, pasid uint32, depth int) *QueuePair {
	if depth <= 0 {
		panic("nvme: queue depth must be positive")
	}
	r := getRings(depth)
	return &QueuePair{
		ID:       id,
		PASID:    pasid,
		sq:       r.sq,
		cq:       r.cq,
		Doorbell: s.NewCond(),
		CQReady:  s.NewCond(),
	}
}

// Depth reports the ring size.
func (q *QueuePair) Depth() int { return len(q.sq) }

// SQLen reports the number of submitted, unconsumed commands.
func (q *QueuePair) SQLen() int { return q.sqCount }

// CQLen reports the number of posted, unreaped completions.
func (q *QueuePair) CQLen() int { return q.cqCount }

// Closed reports whether the pair has been shut down.
func (q *QueuePair) Closed() bool { return q.closed }

// Close marks the pair unusable and wakes any waiters.
func (q *QueuePair) Close() {
	q.closed = true
	q.Doorbell.Broadcast()
	q.CQReady.Broadcast()
}

// Submit places e on the submission queue and rings the doorbell.
// It reports an error if the ring is full or the queue is closed;
// callers enforce queue depth and must not spin on a full ring.
func (q *QueuePair) Submit(e SQE) error {
	if q.closed {
		return fmt.Errorf("nvme: queue %d closed", q.ID)
	}
	if q.sqCount == len(q.sq) {
		return fmt.Errorf("nvme: queue %d submission ring full", q.ID)
	}
	if e.Opcode != OpFlush && e.Opcode != OpWriteZeroes && int64(len(e.Buf)) != e.Sectors*SectorSize {
		return fmt.Errorf("nvme: buffer length %d != %d sectors", len(e.Buf), e.Sectors)
	}
	q.sq[q.sqTail] = e
	q.sqTail = (q.sqTail + 1) % len(q.sq)
	q.sqCount++
	q.Doorbell.Signal()
	return nil
}

// PopSQE removes the oldest submission, reporting false if empty.
// Called by the device during arbitration.
func (q *QueuePair) PopSQE() (SQE, bool) {
	if q.sqCount == 0 {
		return SQE{}, false
	}
	e := q.sq[q.sqHead]
	q.sqHead = (q.sqHead + 1) % len(q.sq)
	q.sqCount--
	return e, true
}

// PostCQE places a completion on the completion queue and signals
// pollers. The CQ cannot overflow because completions never exceed
// outstanding submissions on a same-depth ring.
func (q *QueuePair) PostCQE(c CQE) {
	if q.cqCount == len(q.cq) {
		panic("nvme: completion ring overflow")
	}
	q.cq[q.cqTail] = c
	q.cqTail = (q.cqTail + 1) % len(q.cq)
	q.cqCount++
	q.CQReady.Broadcast()
}

// PopCQE removes the oldest completion, reporting false if empty.
func (q *QueuePair) PopCQE() (CQE, bool) {
	if q.cqCount == 0 {
		return CQE{}, false
	}
	c := q.cq[q.cqHead]
	q.cqHead = (q.cqHead + 1) % len(q.cq)
	q.cqCount--
	return c, true
}

// SectorSize re-exports the device sector size for convenience.
const SectorSize = 512
