package nvme

import (
	"testing"

	"repro/internal/sim"
)

func newQP(depth int) *QueuePair {
	return NewQueuePair(sim.New(), 1, 42, depth)
}

func TestSubmitPopOrder(t *testing.T) {
	q := newQP(4)
	for i := 0; i < 3; i++ {
		e := SQE{Opcode: OpFlush, CID: uint16(i)}
		if err := q.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if q.SQLen() != 3 {
		t.Fatalf("sqlen = %d, want 3", q.SQLen())
	}
	for i := 0; i < 3; i++ {
		e, ok := q.PopSQE()
		if !ok || e.CID != uint16(i) {
			t.Fatalf("pop %d: got cid %d ok=%v", i, e.CID, ok)
		}
	}
	if _, ok := q.PopSQE(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestRingWraparound(t *testing.T) {
	q := newQP(2)
	for round := 0; round < 5; round++ {
		if err := q.Submit(SQE{Opcode: OpFlush, CID: uint16(round)}); err != nil {
			t.Fatal(err)
		}
		e, ok := q.PopSQE()
		if !ok || e.CID != uint16(round) {
			t.Fatalf("round %d: cid %d", round, e.CID)
		}
	}
}

func TestSubmitFullRing(t *testing.T) {
	q := newQP(2)
	_ = q.Submit(SQE{Opcode: OpFlush})
	_ = q.Submit(SQE{Opcode: OpFlush})
	if err := q.Submit(SQE{Opcode: OpFlush}); err == nil {
		t.Fatal("submit to full ring succeeded")
	}
}

func TestSubmitBufferValidation(t *testing.T) {
	q := newQP(4)
	e := SQE{Opcode: OpRead, Sectors: 2, Buf: make([]byte, SectorSize)} // too short
	if err := q.Submit(e); err == nil {
		t.Fatal("short buffer accepted")
	}
	e.Buf = make([]byte, 2*SectorSize)
	if err := q.Submit(e); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionFlow(t *testing.T) {
	q := newQP(4)
	q.PostCQE(CQE{CID: 7, Status: StatusSuccess})
	q.PostCQE(CQE{CID: 8, Status: StatusAccessDenied})
	c, ok := q.PopCQE()
	if !ok || c.CID != 7 || !c.Status.OK() {
		t.Fatalf("cqe 1 = %+v ok=%v", c, ok)
	}
	c, ok = q.PopCQE()
	if !ok || c.CID != 8 || c.Status.OK() {
		t.Fatalf("cqe 2 = %+v ok=%v", c, ok)
	}
	if _, ok := q.PopCQE(); ok {
		t.Fatal("pop on empty cq succeeded")
	}
}

func TestDoorbellSignalsDevice(t *testing.T) {
	s := sim.New()
	q := NewQueuePair(s, 1, 0, 8)
	var got uint16
	s.Spawn("device", func(p *sim.Proc) {
		for {
			e, ok := q.PopSQE()
			if ok {
				got = e.CID
				return
			}
			q.Doorbell.Wait(p)
		}
	})
	s.Spawn("app", func(p *sim.Proc) {
		p.Sleep(100)
		if err := q.Submit(SQE{Opcode: OpFlush, CID: 55}); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if got != 55 {
		t.Fatalf("device consumed cid %d, want 55", got)
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	q := newQP(4)
	q.Close()
	if !q.Closed() {
		t.Fatal("not closed")
	}
	if err := q.Submit(SQE{Opcode: OpFlush}); err == nil {
		t.Fatal("submit on closed queue succeeded")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusSuccess.String() != "success" || StatusAccessDenied.String() != "access-denied" {
		t.Fatal("status string mismatch")
	}
	if !StatusSuccess.OK() || StatusTranslationFault.OK() {
		t.Fatal("OK() mismatch")
	}
	if OpRead.String() != "read" || OpWriteZeroes.String() != "write-zeroes" {
		t.Fatal("opcode string mismatch")
	}
}

// TestRingPoolReuseNoAliasing pins the ring pool's safety contract:
// a released pair's arrays may be recycled into a new pair, but the
// new pair must present fresh queue state, and entries left over from
// the previous tenant must never surface as commands.
func TestRingPoolReuseNoAliasing(t *testing.T) {
	q1 := newQP(8)
	for i := 0; i < 5; i++ {
		if err := q1.Submit(SQE{Opcode: OpRead, CID: uint16(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	q1.PopSQE() // leave the ring dirty mid-stream
	q1.ReleaseRings()

	q2 := newQP(8) // recycles q1's arrays when the pool hands them back
	if q2.SQLen() != 0 || q2.CQLen() != 0 {
		t.Fatalf("recycled pair not empty: sq=%d cq=%d", q2.SQLen(), q2.CQLen())
	}
	if _, ok := q2.PopSQE(); ok {
		t.Fatal("recycled pair popped a stale command")
	}
	// Fresh submissions must round-trip their own payloads.
	for i := 0; i < 8; i++ {
		if err := q2.Submit(SQE{Opcode: OpWrite, CID: uint16(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		e, ok := q2.PopSQE()
		if !ok || e.CID != uint16(i) || e.Opcode != OpWrite {
			t.Fatalf("pop %d: cid=%d op=%v ok=%v — stale entry surfaced", i, e.CID, e.Opcode, ok)
		}
	}
	// Double release must be a no-op, not a double Put.
	q2.ReleaseRings()
	q2.ReleaseRings()
}
