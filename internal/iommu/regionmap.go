package iommu

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/storage"
)

// Region maps: the §5.1 "alternate data structures" enhancement.
//
// Storing VBA translations in page tables makes fmap() cost linear in
// file size (Table 5's cold-fmap column). The paper suggests a
// different structure with a new hardware walker (rIOMMU-style) could
// reduce that cost. This implements one: the kernel registers a
// per-mapping *extent table* — a sorted array of (offset, sector,
// length) runs — and the IOMMU resolves VBAs with a binary search.
// Registration is O(extents) instead of O(pages), and a whole file is
// usually a handful of extents.

// RegionSeg maps region-relative bytes [Off, Off+Bytes) to device
// sectors starting at Sector.
type RegionSeg struct {
	Off    uint64
	Sector int64
	Bytes  int64
}

// regionMap is one registered mapping.
type regionMap struct {
	pasid    uint32
	devID    uint8
	base     uint64
	span     uint64
	writable bool
	segs     []RegionSeg // sorted by Off, contiguous coverage
}

// RegisterRegion installs an extent-table mapping for
// [base, base+span) in pasid's I/O address space. Segments must be
// sorted, non-overlapping, and contiguous from offset 0.
func (u *IOMMU) RegisterRegion(pasid uint32, devID uint8, base, span uint64, writable bool, segs []RegionSeg) error {
	var off uint64
	for _, s := range segs {
		if s.Off != off || s.Bytes <= 0 || s.Bytes%storage.SectorSize != 0 {
			return fmt.Errorf("iommu: region segments not dense at %#x", off)
		}
		off += uint64(s.Bytes)
	}
	if off > span {
		return fmt.Errorf("iommu: segments (%d bytes) exceed span (%d)", off, span)
	}
	u.UnregisterRegion(pasid, base)
	u.regions = append(u.regions, &regionMap{
		pasid: pasid, devID: devID, base: base, span: span,
		writable: writable, segs: segs,
	})
	return nil
}

// UnregisterRegion removes the mapping at base (revocation/close).
func (u *IOMMU) UnregisterRegion(pasid uint32, base uint64) {
	for i, r := range u.regions {
		if r.pasid == pasid && r.base == base {
			u.regions = append(u.regions[:i], u.regions[i+1:]...)
			return
		}
	}
}

// regionFor finds a registered mapping containing va.
func (u *IOMMU) regionFor(pasid uint32, va uint64) *regionMap {
	for _, r := range u.regions {
		if r.pasid == pasid && va >= r.base && va < r.base+r.span {
			return r
		}
	}
	return nil
}

// translateRegion resolves a request against an extent table,
// appending segments to out (which may be a caller-reused buffer).
func (u *IOMMU) translateRegion(r *regionMap, req Request, out []Segment) Result {
	lookups := 0
	lat := func() sim.Time {
		if u.cfg.FixedVBALatency >= 0 {
			return u.cfg.FixedVBALatency
		}
		// Binary search over the extent array: one cacheline-ish
		// probe per halving. Cheaper than a 4-level page walk and
		// with no 8-entries-per-cacheline leaf constraint.
		probes := 1
		for n := len(r.segs); n > 1; n /= 2 {
			probes++
		}
		d := u.cfg.PCIeRoundTrip + sim.Time(probes*int(u.cfg.CachelineFetch)) +
			sim.Time(lookups-1)*u.cfg.CachelineFetch
		if d < u.cfg.PCIeRoundTrip+50*sim.Nanosecond {
			d = u.cfg.PCIeRoundTrip + 50*sim.Nanosecond
		}
		return d
	}

	if req.DevID != r.devID {
		u.countDenial()
		return Result{Status: Denied, Latency: lat()}
	}
	if req.Write && !r.writable {
		u.countDenial()
		return Result{Status: Denied, Latency: lat()}
	}
	off := req.VBA - r.base
	end := off + uint64(req.Bytes)
	if off%storage.SectorSize != 0 || req.Bytes%storage.SectorSize != 0 {
		u.countFault()
		return Result{Status: Fault, Latency: lat()}
	}
	for off < end {
		i := sort.Search(len(r.segs), func(i int) bool {
			return r.segs[i].Off+uint64(r.segs[i].Bytes) > off
		})
		if i == len(r.segs) || r.segs[i].Off > off {
			u.countFault()
			return Result{Status: Fault, Latency: lat()}
		}
		lookups++
		s := r.segs[i]
		inner := off - s.Off
		n := uint64(s.Bytes) - inner
		if n > end-off {
			n = end - off
		}
		sector := s.Sector + int64(inner)/storage.SectorSize
		cnt := int64(n) / storage.SectorSize
		if k := len(out); k > 0 && out[k-1].Sector+out[k-1].Sectors == sector {
			out[k-1].Sectors += cnt
		} else {
			out = append(out, Segment{Sector: sector, Sectors: cnt})
		}
		off += n
	}
	return Result{Status: OK, Segments: out, Latency: lat()}
}
