package iommu

import "testing"

// TestTLBStatsZeroWhenCachingOff pins the default-path behavior: with
// CacheFTEs off (the paper's default) the IOTLB is never probed, so
// the stats stay at zero and the hot path skips the map lookup.
func TestTLBStatsZeroWhenCachingOff(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CacheFTEs {
		t.Fatal("default config should not cache FTEs")
	}
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80, 88, 96}, true)
	for i := 0; i < 5; i++ {
		for pg := 0; pg < 3; pg++ {
			r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
			if r.Status != OK {
				t.Fatalf("unexpected fault at pg %d: %v", pg, r.Status)
			}
		}
	}
	hits, misses := u.TLBStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("TLBStats = %d/%d with caching off, want 0/0", hits, misses)
	}
}

// TestIOTLBRingStaysBounded drives many distinct pages through a tiny
// IOTLB and checks that the FIFO's live window and the map never
// exceed capacity, and that the ring's backing slice is compacted
// rather than leaked by reslicing.
func TestIOTLBRingStaysBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	cfg.IOTLBEntries = 4
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	lbas := make([]int64, 64)
	for i := range lbas {
		lbas[i] = int64(80 + 8*i)
	}
	buildMapping(u, 1, base, lbas, true)
	for pg := 0; pg < 64; pg++ {
		_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
		if live := len(u.tlbFIFO) - u.tlbHead; live > cfg.IOTLBEntries {
			t.Fatalf("pg %d: live FIFO window %d > capacity %d", pg, live, cfg.IOTLBEntries)
		}
		if len(u.iotlb) > cfg.IOTLBEntries {
			t.Fatalf("pg %d: iotlb map %d > capacity %d", pg, len(u.iotlb), cfg.IOTLBEntries)
		}
		if len(u.tlbFIFO) >= 2*cfg.IOTLBEntries {
			t.Fatalf("pg %d: FIFO slice len %d never compacted", pg, len(u.tlbFIFO))
		}
	}
	// The most recent IOTLBEntries pages must still hit.
	hits0, _ := u.TLBStats()
	for pg := 64 - cfg.IOTLBEntries; pg < 64; pg++ {
		_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
	}
	hits1, _ := u.TLBStats()
	if int(hits1-hits0) != cfg.IOTLBEntries {
		t.Fatalf("recent pages hit %d times, want %d", hits1-hits0, cfg.IOTLBEntries)
	}
}

// TestTranslateIntoReusesBuffer checks the zero-alloc path: a caller
// supplied buffer with enough capacity is used in place, and the
// result matches a fresh Translate.
func TestTranslateIntoReusesBuffer(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80, 96, 112, 128}, true)
	req := Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4 * 4096}

	fresh := u.Translate(req)
	buf := make([]Segment, 0, 8)
	reused := u.TranslateInto(req, buf)
	if reused.Status != OK {
		t.Fatalf("unexpected fault: %v", reused.Status)
	}
	if len(reused.Segments) == 0 || &reused.Segments[0] != &buf[:1][0] {
		t.Fatal("TranslateInto did not use the caller's buffer")
	}
	if len(fresh.Segments) != len(reused.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(fresh.Segments), len(reused.Segments))
	}
	for i := range fresh.Segments {
		if fresh.Segments[i] != reused.Segments[i] {
			t.Fatalf("segment %d differs: %+v vs %+v", i, fresh.Segments[i], reused.Segments[i])
		}
	}
	if fresh.Latency != reused.Latency {
		t.Fatalf("latency differs: %v vs %v", fresh.Latency, reused.Latency)
	}
}
