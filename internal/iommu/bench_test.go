package iommu

import "testing"

// benchSetup maps nPasids address spaces of nPages pages each and
// warms every translation into the IOTLB (CacheFTEs on).
func benchSetup(nPasids, nPages int) (*IOMMU, uint64) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	cfg.IOTLBEntries = nPasids * nPages
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	lbas := make([]int64, nPages)
	for i := range lbas {
		lbas[i] = int64(80 + 8*i)
	}
	for p := 1; p <= nPasids; p++ {
		buildMapping(u, uint32(p), base, lbas, true)
		for pg := 0; pg < nPages; pg++ {
			u.Translate(Request{PASID: uint32(p), DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
		}
	}
	return u, base
}

// BenchmarkInvalidateRangeStorm models a revocation storm: a full
// IOTLB shared by many PASIDs, with small ranges invalidated and
// re-warmed over and over. Pre-index this scanned the whole TLB per
// invalidation; the per-PASID page index makes it proportional to the
// entries actually dropped.
func BenchmarkInvalidateRangeStorm(b *testing.B) {
	u, base := benchSetup(32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pasid := uint32(i%32 + 1)
		va := base + uint64(i%64)*4096
		u.InvalidateRange(pasid, va, 4096)
		u.Translate(Request{PASID: pasid, DevID: testDev, VBA: va, Bytes: 4096}) // re-warm
	}
}

// BenchmarkUnregisterPASID measures process-exit teardown with a busy
// shared IOTLB: each iteration re-registers and warms one PASID, then
// tears it down while 31 others stay cached.
func BenchmarkUnregisterPASID(b *testing.B) {
	u, base := benchSetup(32, 64)
	lbas := make([]int64, 64)
	for i := range lbas {
		lbas[i] = int64(80 + 8*i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildMapping(u, 999, base, lbas, true)
		for pg := 0; pg < 64; pg++ {
			u.Translate(Request{PASID: 999, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
		}
		u.UnregisterPASID(999)
	}
}

// BenchmarkTranslate2MiB exercises the leaf-resident segment walker: a
// single 512-page request used to cost 512 independent root→leaf
// descents and now costs one.
func BenchmarkTranslate2MiB(b *testing.B) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	lbas := make([]int64, 512)
	for i := range lbas {
		lbas[i] = int64(80 + 8*i)
	}
	buildMapping(u, 1, base, lbas, true)
	segs := make([]Segment, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := u.TranslateInto(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 512 * 4096}, segs)
		if r.Status != OK {
			b.Fatal(r.Status)
		}
		segs = r.Segments[:0]
	}
}

// BenchmarkTranslate4KWarm is the small-I/O hot path: repeated 4 KiB
// translations in one 2 MiB region, served by the paging-structure
// cache after the first descent.
func BenchmarkTranslate4KWarm(b *testing.B) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	lbas := make([]int64, 64)
	for i := range lbas {
		lbas[i] = int64(80 + 8*i)
	}
	buildMapping(u, 1, base, lbas, true)
	segs := make([]Segment, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := u.TranslateInto(Request{PASID: 1, DevID: testDev, VBA: base + uint64(i%64)*4096, Bytes: 4096}, segs)
		if r.Status != OK {
			b.Fatal(r.Status)
		}
		segs = r.Segments[:0]
	}
}
