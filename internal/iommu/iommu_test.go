package iommu

import (
	"testing"
	"testing/quick"

	"repro/internal/pagetable"
	"repro/internal/sim"
)

const testDev = 3

// buildMapping registers a PASID whose address space maps a file of
// nPages pages starting at VBA base, with the given per-page LBAs.
func buildMapping(u *IOMMU, pasid uint32, base uint64, lbas []int64, rw bool) *pagetable.Table {
	ft := pagetable.BuildFileTable(testDev, lbas)
	t := pagetable.New()
	if _, err := ft.Attach(t, base, rw); err != nil {
		panic(err)
	}
	u.RegisterPASID(pasid, t)
	return t
}

func TestTranslateContiguous(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	// 4 pages, physically contiguous: sectors 80,88,96,104.
	buildMapping(u, 1, base, []int64{80, 88, 96, 104}, true)

	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 16384})
	if r.Status != OK {
		t.Fatalf("status = %v", r.Status)
	}
	if len(r.Segments) != 1 {
		t.Fatalf("segments = %+v, want 1 coalesced", r.Segments)
	}
	if r.Segments[0] != (Segment{Sector: 80, Sectors: 32}) {
		t.Fatalf("segment = %+v", r.Segments[0])
	}
	if r.Walks != 4 {
		t.Fatalf("walks = %d, want 4", r.Walks)
	}
}

func TestTranslateFragmented(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80, 800, 808}, true)
	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 3 * 4096})
	if r.Status != OK || len(r.Segments) != 2 {
		t.Fatalf("result = %+v", r)
	}
	if r.Segments[0] != (Segment{80, 8}) || r.Segments[1] != (Segment{800, 16}) {
		t.Fatalf("segments = %+v", r.Segments)
	}
}

func TestTranslateSubPageOffset(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	// Read 512 bytes at offset 1024 within the page: sector 80+2.
	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + 1024, Bytes: 512})
	if r.Status != OK || len(r.Segments) != 1 {
		t.Fatalf("result = %+v", r)
	}
	if r.Segments[0] != (Segment{82, 1}) {
		t.Fatalf("segment = %+v", r.Segments[0])
	}
}

func TestTranslateUnalignedFaults(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + 100, Bytes: 512}); r.Status == OK {
		t.Fatal("unaligned VBA translated")
	}
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 100}); r.Status == OK {
		t.Fatal("unaligned length translated")
	}
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 0}); r.Status == OK {
		t.Fatal("zero length translated")
	}
}

func TestUnknownPASIDFaults(t *testing.T) {
	u := New(DefaultConfig())
	r := u.Translate(Request{PASID: 99, DevID: testDev, VBA: 0, Bytes: 4096})
	if r.Status != Fault {
		t.Fatalf("status = %v, want fault", r.Status)
	}
}

func TestRevokedMappingFaults(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(testDev, []int64{80, 88})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)

	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != OK {
		t.Fatalf("pre-revocation status = %v", r.Status)
	}
	// Kernel revokes direct access: detach, then invalidate — the same
	// IOTLB + paging-structure-cache invalidation a real IOMMU needs
	// after any page-table update (the kernel's revoke path always
	// pairs the two).
	ft.Detach(tab, base)
	u.InvalidateRange(1, base, 8192)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("post-revocation status = %v, want fault", r.Status)
	}
}

// TestPWCStaleTranslation pins the paging-structure cache's hardware
// semantics: a detach that skips the invalidation leaves the cached
// upper-level path live (the stale fragment still translates), and
// InvalidateRange purges it. This is exactly why every kernel
// detach/attach path must invalidate.
func TestPWCStaleTranslation(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(testDev, []int64{80, 88})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)

	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != OK {
		t.Fatalf("warmup status = %v", r.Status)
	}
	ft.Detach(tab, base) // buggy kernel: no invalidation
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != OK {
		t.Fatalf("without invalidation the PWC should still serve the stale path, got %v", r.Status)
	}
	u.InvalidateRange(1, base, 8192)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("post-invalidate status = %v, want fault", r.Status)
	}
	if hits, _ := u.PWCStats(); hits == 0 {
		t.Fatal("expected at least one PWC hit in this sequence")
	}
}

// TestPWCDisabled checks that PWCEntries <= 0 turns the cache off
// entirely: no stats move and stale paths are never served.
func TestPWCDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PWCEntries = 0
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(testDev, []int64{80})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)
	_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	ft.Detach(tab, base)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("with PWC off a detach faults immediately, got %v", r.Status)
	}
	if hits, misses := u.PWCStats(); hits != 0 || misses != 0 {
		t.Fatalf("PWCStats = %d/%d with cache off, want 0/0", hits, misses)
	}
}

// TestPWCLatencyKnobs exercises the modeled side: with explicit
// PWCHitWalkLatency/PWCMinTranslation a warm same-region access is
// charged the shorter walk, while the defaults (-1 sentinels) keep the
// classic numbers — the byte-identity invariant of DESIGN.md §10.
func TestPWCLatencyKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PWCHitWalkLatency = 50 * sim.Nanosecond
	cfg.PWCMinTranslation = 400 * sim.Nanosecond
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80, 88}, true)

	cold := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	if cold.Latency != 550*sim.Nanosecond {
		t.Fatalf("cold latency = %v, want the 550ns floor (full walk)", cold.Latency)
	}
	warm := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + 4096, Bytes: 4096})
	// 345ns PCIe + 50ns leaf fetch = 395ns, floored at the PWC floor.
	if warm.Latency != 400*sim.Nanosecond {
		t.Fatalf("warm latency = %v, want 400ns (PWC floor)", warm.Latency)
	}

	// Default sentinels: warm or cold, the classic model applies.
	ud := New(DefaultConfig())
	buildMapping(ud, 1, base, []int64{80, 88}, true)
	c2 := ud.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	w2 := ud.Translate(Request{PASID: 1, DevID: testDev, VBA: base + 4096, Bytes: 4096})
	if c2.Latency != w2.Latency || w2.Latency != 550*sim.Nanosecond {
		t.Fatalf("default config latencies = %v/%v, want 550ns/550ns", c2.Latency, w2.Latency)
	}
}

// TestPWCEvictionFIFO bounds the cache: with 2 entries, touching a
// third region evicts the oldest, so re-touching it misses again.
func TestPWCEvictionFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PWCEntries = 2
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	// Three 2 MiB regions: pages 0, 512, 1024 of one file table.
	ft := pagetable.NewFileTable(testDev)
	for _, pg := range []int{0, 512, 1024} {
		ft.SetPage(pg, int64(80+pg*8))
	}
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)

	touch := func(region int) {
		r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(region)*pagetable.PMDSpan, Bytes: 4096})
		if r.Status != OK {
			t.Fatalf("region %d: %v", region, r.Status)
		}
	}
	touch(0)
	touch(1)
	touch(2) // evicts region 0
	touch(0) // must miss again
	hits, misses := u.PWCStats()
	if hits != 0 || misses != 4 {
		t.Fatalf("PWCStats = %d/%d, want 0 hits / 4 misses", hits, misses)
	}
	touch(2) // still resident
	if h, _ := u.PWCStats(); h != 1 {
		t.Fatalf("hits = %d after re-touching resident region, want 1", h)
	}
}

// TestInvalidateRangePartialPage is the alignment regression test: a
// byte range that starts or ends mid-page must still drop every
// translation it overlaps (lo rounds down, hi rounds up), matching how
// fmap attach spans are always page-covering.
func TestInvalidateRangePartialPage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(testDev, []int64{80, 88, 96})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)
	for pg := 0; pg < 3; pg++ {
		_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
	}
	if _, misses := u.TLBStats(); misses != 3 {
		t.Fatalf("warmup misses = %d, want 3", misses)
	}

	// 512 bytes starting mid-page 0, ending within page 0: drops page 0
	// only. Then 512 bytes straddling the page 1/2 boundary: drops both.
	u.InvalidateRange(1, base+1024, 512)
	u.InvalidateRange(1, base+2*4096-256, 512)
	hits0, misses0 := u.TLBStats()
	for pg := 0; pg < 3; pg++ {
		_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
	}
	hits1, misses1 := u.TLBStats()
	if misses1-misses0 != 3 || hits1 != hits0 {
		t.Fatalf("after partial-page invalidates: hits +%d misses +%d, want +0/+3 (all pages dropped)",
			hits1-hits0, misses1-misses0)
	}
}

func TestDevIDMismatchDenied(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	r := u.Translate(Request{PASID: 1, DevID: testDev + 1, VBA: base, Bytes: 4096})
	if r.Status != Denied {
		t.Fatalf("status = %v, want denied (cross-device VBA use)", r.Status)
	}
}

func TestWritePermissionDenied(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, false) // read-only attach
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != OK {
		t.Fatalf("read on RO mapping = %v", r.Status)
	}
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096, Write: true}); r.Status != Denied {
		t.Fatalf("write on RO mapping = %v, want denied", r.Status)
	}
	_, denials := u.FaultStats()
	if denials != 1 {
		t.Fatalf("denials = %d, want 1", denials)
	}
}

func TestRegularPTEIsNotAValidVBA(t *testing.T) {
	u := New(DefaultConfig())
	tab := pagetable.New()
	va := uint64(0x2000_0000_0000)
	tab.Map(va, pagetable.MakePTE(1234, true)) // ordinary memory page
	u.RegisterPASID(1, tab)
	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: va, Bytes: 4096})
	if r.Status != Fault {
		t.Fatalf("status = %v, want fault: PTE without FT bit must not translate", r.Status)
	}
}

func TestLatencyFloor(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	if r.Latency != 550*sim.Nanosecond {
		t.Fatalf("latency = %v, want 550ns floor", r.Latency)
	}
}

func TestLatencyGrowsSlowlyWithTranslations(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	lbas := make([]int64, 32)
	for i := range lbas {
		lbas[i] = int64(80 + i*8)
	}
	buildMapping(u, 1, base, lbas, true)

	// The total charged to the device is floored at 550 ns and must
	// never shrink as the request grows.
	var prev sim.Time
	for pages := 1; pages <= 32; pages++ {
		r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: int64(pages) * 4096})
		if r.Status != OK {
			t.Fatalf("status at %d pages = %v", pages, r.Status)
		}
		if r.Latency < 550*sim.Nanosecond || r.Latency < prev {
			t.Fatalf("latency at %d pages = %v (prev %v)", pages, r.Latency, prev)
		}
		prev = r.Latency
	}

	// Fig. 5 plots the IOMMU-internal overhead: flat for 1-2
	// translations, a small step at 3, flat again to 8 (one
	// cacheline holds 8 PTEs), then one fetch per extra cacheline.
	l1, l2, l3, l8, l12 := u.WalkOverhead(1), u.WalkOverhead(2), u.WalkOverhead(3), u.WalkOverhead(8), u.WalkOverhead(12)
	if l1 != l2 {
		t.Fatalf("1 vs 2 translations: %v vs %v, want equal (Fig. 5)", l1, l2)
	}
	if l3 <= l2 {
		t.Fatalf("3 translations %v not above 2 (%v)", l3, l2)
	}
	if l8 != l3 {
		t.Fatalf("3..8 translations should be flat: %v vs %v", l3, l8)
	}
	if l12 <= l8 || l12-l8 > 50*sim.Nanosecond {
		t.Fatalf("9th translation adds one cacheline: l8=%v l12=%v", l8, l12)
	}
}

func TestFixedVBALatencyOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FixedVBALatency = 1350 * sim.Nanosecond
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	if r.Latency != 1350*sim.Nanosecond {
		t.Fatalf("latency = %v, want fixed 1350ns", r.Latency)
	}
	u.SetFixedVBALatency(0)
	r = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	if r.Latency != 0 {
		t.Fatalf("latency = %v, want 0 (no-delay point)", r.Latency)
	}
}

func TestFTECachingAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)

	r1 := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	if r1.Latency < 550*sim.Nanosecond {
		t.Fatalf("cold translation = %v, want >= 550ns", r1.Latency)
	}
	r2 := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	want := cfg.PCIeRoundTrip + cfg.IOTLBLookup // ~352ns: the Fig. 8 "350ns" point
	if r2.Latency != want {
		t.Fatalf("cached translation = %v, want %v", r2.Latency, want)
	}
	hits, _ := u.TLBStats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestCachedEntryRespectsReadOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, false) // read-only
	// Warm the cache with a read...
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != OK {
		t.Fatalf("read = %v", r.Status)
	}
	// ...then ensure a write through the cached entry is still denied.
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096, Write: true}); r.Status != Denied {
		t.Fatalf("cached write = %v, want denied", r.Status)
	}
}

func TestInvalidateRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	ft := pagetable.BuildFileTable(testDev, []int64{80, 88})
	tab := pagetable.New()
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	u.RegisterPASID(1, tab)
	_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 8192})

	// Revoke: detach + invalidate. A stale IOTLB entry must not let
	// the device through.
	ft.Detach(tab, base)
	u.InvalidateRange(1, base, 8192)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("post-invalidate = %v, want fault", r.Status)
	}
}

func TestIOTLBEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFTEs = true
	cfg.IOTLBEntries = 2
	u := New(cfg)
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80, 88, 96}, true)
	for pg := 0; pg < 3; pg++ {
		_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(pg)*4096, Bytes: 4096})
	}
	// Page 0 was evicted (FIFO): re-translating it misses.
	_, missesBefore := u.TLBStats()
	_ = u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096})
	_, missesAfter := u.TLBStats()
	if missesAfter != missesBefore+1 {
		t.Fatalf("expected FIFO eviction miss: misses %d -> %d", missesBefore, missesAfter)
	}
}

func TestUnregisterPASID(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x2000_0000_0000)
	buildMapping(u, 1, base, []int64{80}, true)
	u.UnregisterPASID(1)
	if r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("status after unregister = %v", r.Status)
	}
}

// Property: translated segments always cover exactly the requested
// byte count, and every sector falls inside some mapped page's range.
func TestSegmentsCoverRequestProperty(t *testing.T) {
	base := uint64(0x2000_0000_0000)
	f := func(rawPages uint8, rawOff, rawLen uint16, seed int64) bool {
		nPages := int(rawPages)%16 + 1
		lbas := make([]int64, nPages)
		x := seed
		for i := range lbas {
			x = x*6364136223846793005 + 1442695040888963407
			lbas[i] = (x >> 33 & 0xffff) * 8 // 4KB-aligned sectors
			if lbas[i] < 0 {
				lbas[i] = -lbas[i]
			}
		}
		u := New(DefaultConfig())
		buildMapping(u, 1, base, lbas, true)

		off := (int64(rawOff) % (int64(nPages) * 4096 / 512)) * 512
		maxLen := int64(nPages)*4096 - off
		length := (int64(rawLen)%(maxLen/512) + 1) * 512
		r := u.Translate(Request{PASID: 1, DevID: testDev, VBA: base + uint64(off), Bytes: length})
		if r.Status != OK {
			return false
		}
		var total int64
		for _, s := range r.Segments {
			total += s.Sectors * 512
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDMAEngineTable4(t *testing.T) {
	u := New(DefaultConfig())
	e := NewDMAEngine(u)

	// Row 1: IOMMU off.
	e.Enabled = false
	if got := e.Copy(1, 0x1000, 0x2000); got != 1120*sim.Nanosecond {
		t.Fatalf("IOMMU off = %v, want 1120ns", got)
	}

	// Row 2: IOMMU on, constant src/dest => IOTLB hits after warmup.
	e.Enabled = true
	e.FlushTLB()
	_ = e.Copy(1, 0x1000, 0x2000) // warm
	hit := e.Copy(1, 0x1000, 0x2000)
	if hit != 1134*sim.Nanosecond {
		t.Fatalf("IOTLB hit = %v, want 1134ns", hit)
	}

	// Row 3: varying src => one miss per copy.
	miss := e.Copy(1, 0x9000, 0x2000)
	if miss != 1317*sim.Nanosecond {
		t.Fatalf("IOTLB miss = %v, want 1317ns", miss)
	}
}
