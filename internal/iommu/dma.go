package iommu

import (
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// DMAEngine models Intel's IOAT DMA copy engine, used by the paper to
// measure IOMMU translation overheads on real hardware (Table 4). The
// engine copies between buffers addressed by I/O virtual addresses;
// when the IOMMU is enabled each buffer address is looked up in the
// IOTLB and walked on a miss.
type DMAEngine struct {
	iommu   *IOMMU
	Enabled bool // IOMMU interposed on the engine's DMAs

	// BaseCopyLatency is the engine's copy time with the IOMMU off
	// (Table 4 row 1: 1120 ns for the probe transfer size).
	BaseCopyLatency sim.Time

	tlb map[tlbKey]bool // engine-visible IOTLB state
}

// NewDMAEngine returns an engine attached to u.
func NewDMAEngine(u *IOMMU) *DMAEngine {
	return &DMAEngine{
		iommu:           u,
		Enabled:         true,
		BaseCopyLatency: 1120 * sim.Nanosecond,
		tlb:             make(map[tlbKey]bool),
	}
}

// FlushTLB empties the engine's IOTLB (forces misses, as the paper
// does by varying the source buffer address).
func (d *DMAEngine) FlushTLB() { d.tlb = make(map[tlbKey]bool) }

// Copy models one DMA copy of a buffer at srcVA to dstVA within the
// address space registered for pasid, returning the end-to-end
// latency. Regular PTEs (not FTEs) translate the buffers; unlike
// FTEs they are always IOTLB-cacheable.
func (d *DMAEngine) Copy(pasid uint32, srcVA, dstVA uint64) sim.Time {
	lat := d.BaseCopyLatency
	if !d.Enabled {
		return lat
	}
	for _, va := range []uint64{srcVA, dstVA} {
		key := tlbKey{pasid, va / pagetable.PageSize}
		lat += d.iommu.cfg.IOTLBLookup
		if d.tlb[key] {
			d.iommu.countTLBHit()
			continue
		}
		d.iommu.countTLBMiss()
		lat += d.iommu.cfg.WalkLatency
		d.tlb[key] = true
	}
	return lat
}
