// Package iommu models the IOMMU with BypassD's proposed extension:
// translating Virtual Block Addresses (VBAs) in device requests to
// device Logical Block Addresses by walking process page tables and
// interpreting File Table Entries (paper §3.5, §4.3).
//
// The latency model follows the paper's measurements (§6.2, Table 4,
// Fig. 5): a 345 ns PCIe round trip for the ATS exchange, ~183 ns for
// a page walk that misses the IOTLB, a small per-cacheline cost for
// requests needing many leaf entries (8 PTEs fit one cacheline), and
// a 550 ns floor on the total VBA translation delay. Per the paper,
// FTEs are not cached in the IOTLB by default (no temporal locality;
// avoids IOTLB pollution) — the CacheFTEs knob exists for the Fig. 8
// 350 ns ablation point.
package iommu

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config holds the IOMMU latency and caching parameters.
type Config struct {
	PCIeRoundTrip  sim.Time // ATS request/response bus time
	WalkLatency    sim.Time // page walk on IOTLB miss
	IOTLBLookup    sim.Time // IOTLB probe cost
	CachelineFetch sim.Time // each extra leaf cacheline beyond the first
	MultiStep      sim.Time // step observed going from 2 to 3 translations (Fig. 5)
	MinTranslation sim.Time // floor on total VBA translation time (§6.2)

	// CacheFTEs enables caching file table entries in the IOTLB
	// (off by default, per §4.3).
	CacheFTEs bool
	// IOTLBEntries bounds the IOTLB (FIFO eviction).
	IOTLBEntries int

	// PWCEntries bounds the per-PASID paging-structure cache: upper-
	// level walk results (resident leaf node + path permission) keyed
	// by VA>>21, FIFO eviction, 0 disables. Real IOMMUs amortize the
	// upper levels of repeated walks this way (the cost structure
	// §3.4/§6.2 assumes when pricing a walk at ~183 ns); the simulator
	// additionally uses the cached node to skip the host-side descent.
	PWCEntries int
	// PWCHitWalkLatency replaces WalkLatency for a request whose walks
	// were all served by the PWC (only the leaf level is fetched).
	// Negative means "same as WalkLatency", which keeps the latency
	// model — and every figure — identical to the pre-PWC simulator.
	PWCHitWalkLatency sim.Time
	// PWCMinTranslation replaces MinTranslation for PWC-hit-only
	// requests: the 550 ns floor is an end-to-end measurement that
	// includes a full walk, so modeling faster upper levels may lower
	// it. Negative means "same as MinTranslation" (the default).
	PWCMinTranslation sim.Time

	// FixedVBALatency, when >= 0, overrides the computed total VBA
	// translation latency — used by the Fig. 8 sensitivity sweep
	// exactly like the paper's injected nop() delay. A value of 0
	// means "no translation delay"; negative means "compute".
	FixedVBALatency sim.Time
}

// DefaultConfig returns the calibration from the paper.
func DefaultConfig() Config {
	return Config{
		PCIeRoundTrip:   345 * sim.Nanosecond,
		WalkLatency:     183 * sim.Nanosecond,
		IOTLBLookup:     7 * sim.Nanosecond,
		CachelineFetch:  10 * sim.Nanosecond,
		MultiStep:       17 * sim.Nanosecond,
		MinTranslation:  550 * sim.Nanosecond,
		IOTLBEntries:    256,
		FixedVBALatency: -1,

		// The PWC holds upper-level paths but charges nothing extra by
		// default: with the sentinel latencies below, figures are
		// byte-identical to the pre-PWC model (DESIGN.md §10).
		PWCEntries:        32,
		PWCHitWalkLatency: -1,
		PWCMinTranslation: -1,
	}
}

// Request is an ATS translation request from a device.
type Request struct {
	PASID uint32
	DevID uint8 // requesting device, checked against FTE DevID
	VBA   uint64
	Bytes int64
	Write bool
}

// Status is the outcome of a translation.
type Status int

// Translation outcomes.
const (
	OK Status = iota
	// Fault: no valid FTE for some page — the file was never mapped,
	// the mapping was revoked, or the entry is not a file table entry.
	Fault
	// Denied: a valid FTE exists but the permission or device-ID
	// check failed.
	Denied
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Fault:
		return "fault"
	case Denied:
		return "denied"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Segment is one contiguous run of device sectors in a translation
// response; the IOMMU coalesces adjacent runs (paper §4.3).
type Segment struct {
	Sector  int64
	Sectors int64
}

// Result is a completed translation.
type Result struct {
	Status   Status
	Segments []Segment
	// Latency is the total VBA translation delay the device observes,
	// including the PCIe round trip. The device serializes this before
	// media access for reads and overlaps it for writes.
	Latency sim.Time
	// Walks is the number of page walks performed (stats/tests).
	Walks int
}

type tlbKey struct {
	pasid uint32
	vpn   uint64
}

// tlbVal is a cached translation plus the insertion sequence number
// that ties it to its FIFO record. Invalidation deletes map entries
// without editing the FIFO; a FIFO record whose seq no longer matches
// the live entry (or whose key is gone) is a ghost and is skipped at
// eviction time.
type tlbVal struct {
	e   pagetable.Entry
	seq uint64
}

// tlbRec is one FIFO eviction-order record.
type tlbRec struct {
	k   tlbKey
	seq uint64
}

// pwcEntry caches the result of the three upper walk levels for one
// 2 MiB region: the resident leaf node and the AND of the R/W bits on
// the path to it.
type pwcEntry struct {
	leaf  *pagetable.Node
	effRW bool
}

// pwcCache is one PASID's paging-structure cache. fifo holds exactly
// the keys of entries in insertion order (no ghosts): the cache is
// small (tens of entries) so precise removal is a short memmove.
type pwcCache struct {
	entries map[uint64]pwcEntry
	fifo    []uint64
}

// IOMMU is the translation agent. All methods are pure state
// transitions; time is charged by callers using Result.Latency so the
// device model controls serialization vs. overlap.
type IOMMU struct {
	cfg     Config
	pasids  map[uint32]*pagetable.Table
	regions []*regionMap // §5.1 extent-table mappings

	iotlb map[tlbKey]tlbVal
	// tlbByPasid indexes live IOTLB keys by PASID so InvalidateRange
	// and UnregisterPASID touch only the entries they actually drop
	// instead of scanning the whole TLB.
	tlbByPasid map[uint32]map[uint64]struct{}
	// tlbFIFO[tlbHead:] is the eviction queue, oldest first. Evicting
	// advances tlbHead instead of reslicing so the backing array is
	// reused; the dead prefix is compacted once it reaches the IOTLB
	// capacity and ghost records (see tlbVal) are compacted away once
	// they outnumber the capacity, keeping eviction O(1) amortized and
	// the array bounded.
	tlbFIFO   []tlbRec
	tlbHead   int
	tlbGhosts int
	tlbSeq    uint64
	tlbHits   int64
	tlbMisses int64
	faults    int64
	denials   int64

	// pwc is the per-PASID paging-structure cache (Config.PWCEntries).
	pwc       map[uint32]*pwcCache
	pwcHits   int64
	pwcMisses int64

	inj *faults.Injector // machine fault plane; nil = inert

	// Metrics handles, resolved once at construction; nil (inert)
	// when no registry is active.
	mHits, mMisses       *metrics.Counter
	mFaults, mDenials    *metrics.Counter
	mWalks               *metrics.Counter
	mPWCHits, mPWCMisses *metrics.Counter
}

// New returns an IOMMU with the given configuration.
func New(cfg Config) *IOMMU {
	return &IOMMU{
		cfg:        cfg,
		pasids:     make(map[uint32]*pagetable.Table),
		iotlb:      make(map[tlbKey]tlbVal),
		tlbByPasid: make(map[uint32]map[uint64]struct{}),
		pwc:        make(map[uint32]*pwcCache),
		mHits:      metrics.GetCounter("iommu_iotlb_total", "event", "hit"),
		mMisses:    metrics.GetCounter("iommu_iotlb_total", "event", "miss"),
		mFaults:    metrics.GetCounter("iommu_translations_total", "result", "fault"),
		mDenials:   metrics.GetCounter("iommu_translations_total", "result", "denied"),
		mWalks:     metrics.GetCounter("iommu_walks_total"),
		mPWCHits:   metrics.GetCounter("iommu_pwc_total", "event", "hit"),
		mPWCMisses: metrics.GetCounter("iommu_pwc_total", "event", "miss"),
	}
}

// Counter helpers keep the long-standing int64 tallies and the metrics
// plane in lockstep from every site that records an event.
func (u *IOMMU) countTLBHit()  { u.tlbHits++; u.mHits.Inc() }
func (u *IOMMU) countTLBMiss() { u.tlbMisses++; u.mMisses.Inc() }
func (u *IOMMU) countFault()   { u.faults++; u.mFaults.Inc() }
func (u *IOMMU) countDenial()  { u.denials++; u.mDenials.Inc() }

// Config returns the active configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// SetFixedVBALatency adjusts the Fig. 8 override at runtime.
func (u *IOMMU) SetFixedVBALatency(d sim.Time) { u.cfg.FixedVBALatency = d }

// SetCacheFTEs toggles FTE caching in the IOTLB (ablation; paper
// §4.3 argues it is unnecessary).
func (u *IOMMU) SetCacheFTEs(on bool) { u.cfg.CacheFTEs = on }

// SetPWCConfig adjusts the paging-structure-cache model at runtime
// (the Fig. 8-style sensitivity sweeps). entries <= 0 disables the
// cache; hitWalk and minTranslation follow the Config sentinel rule
// (negative = same as WalkLatency / MinTranslation). Cached paths are
// dropped so a sweep cell starts cold.
func (u *IOMMU) SetPWCConfig(entries int, hitWalk, minTranslation sim.Time) {
	u.cfg.PWCEntries = entries
	u.cfg.PWCHitWalkLatency = hitWalk
	u.cfg.PWCMinTranslation = minTranslation
	for p := range u.pwc {
		delete(u.pwc, p)
	}
}

// SetInjector attaches the machine's fault plane.
func (u *IOMMU) SetInjector(inj *faults.Injector) { u.inj = inj }

// RegisterPASID binds a process page table to a PASID, as the kernel
// driver does when creating user queue pairs (paper §3.3).
func (u *IOMMU) RegisterPASID(pasid uint32, t *pagetable.Table) {
	u.pasids[pasid] = t
}

// UnregisterPASID removes a binding and drops its cached translations
// and extent-table mappings. Work is proportional to the PASID's own
// cached entries, not the whole IOTLB, thanks to the per-PASID index.
func (u *IOMMU) UnregisterPASID(pasid uint32) {
	delete(u.pasids, pasid)
	if set := u.tlbByPasid[pasid]; set != nil {
		for vpn := range set {
			delete(u.iotlb, tlbKey{pasid, vpn})
			u.tlbGhosts++
		}
		delete(u.tlbByPasid, pasid)
		u.tlbMaybeCompact()
	}
	delete(u.pwc, pasid)
	kept := u.regions[:0]
	for _, r := range u.regions {
		if r.pasid != pasid {
			kept = append(kept, r)
		}
	}
	u.regions = kept
}

// InvalidateRange drops cached translations covering [va, va+bytes)
// for pasid — both IOTLB leaf entries and the PWC's upper-level paths.
// The kernel issues this when detaching FTEs (revocation) and when
// (re)attaching fragments, exactly as real IOMMUs require explicit
// paging-structure-cache invalidation after page-table updates. The
// byte range is widened to page granularity (lo rounds down, hi up) so
// a partial-page range still drops every overlapped translation. Cost
// is O(min(pages, cached entries)) for the PASID, not O(TLB).
func (u *IOMMU) InvalidateRange(pasid uint32, va uint64, bytes int64) {
	lo := va / pagetable.PageSize
	hi := (va + uint64(bytes) + pagetable.PageSize - 1) / pagetable.PageSize
	if set := u.tlbByPasid[pasid]; set != nil {
		if uint64(len(set)) <= hi-lo {
			for vpn := range set {
				if vpn >= lo && vpn < hi {
					delete(u.iotlb, tlbKey{pasid, vpn})
					delete(set, vpn)
					u.tlbGhosts++
				}
			}
		} else {
			for vpn := lo; vpn < hi; vpn++ {
				if _, ok := set[vpn]; ok {
					delete(u.iotlb, tlbKey{pasid, vpn})
					delete(set, vpn)
					u.tlbGhosts++
				}
			}
		}
		if len(set) == 0 {
			delete(u.tlbByPasid, pasid)
		}
		u.tlbMaybeCompact()
	}
	u.pwcInvalidateRange(pasid, va, bytes)
}

// flushTranslationCaches empties the IOTLB and every PWC, as after a
// global shootdown (the invalidation-storm fault).
func (u *IOMMU) flushTranslationCaches() {
	for k := range u.iotlb {
		delete(u.iotlb, k)
	}
	for p := range u.tlbByPasid {
		delete(u.tlbByPasid, p)
	}
	for i := range u.tlbFIFO {
		u.tlbFIFO[i] = tlbRec{}
	}
	u.tlbFIFO = u.tlbFIFO[:0]
	u.tlbHead = 0
	u.tlbGhosts = 0
	for p := range u.pwc {
		delete(u.pwc, p)
	}
}

// tlbMaybeCompact rebuilds the FIFO without dead records once the dead
// prefix or the ghost population reaches the IOTLB capacity, bounding
// the backing array at O(capacity).
func (u *IOMMU) tlbMaybeCompact() {
	cap := u.cfg.IOTLBEntries
	if cap <= 0 || (u.tlbHead < cap && u.tlbGhosts <= cap) {
		return
	}
	u.tlbCompact()
}

func (u *IOMMU) tlbCompact() {
	kept := u.tlbFIFO[:0]
	for _, rec := range u.tlbFIFO[u.tlbHead:] {
		if v, ok := u.iotlb[rec.k]; ok && v.seq == rec.seq {
			kept = append(kept, rec)
		}
	}
	for i := len(kept); i < len(u.tlbFIFO); i++ {
		u.tlbFIFO[i] = tlbRec{}
	}
	u.tlbFIFO = kept
	u.tlbHead = 0
	u.tlbGhosts = 0
}

func (u *IOMMU) tlbInsert(k tlbKey, e pagetable.Entry) {
	if u.cfg.IOTLBEntries <= 0 {
		return
	}
	// Evict by FIFO order until there is room, skipping ghost records
	// left behind by invalidation (their live entry is already gone).
	for len(u.iotlb) >= u.cfg.IOTLBEntries {
		rec := u.tlbFIFO[u.tlbHead]
		u.tlbFIFO[u.tlbHead] = tlbRec{}
		u.tlbHead++
		if v, ok := u.iotlb[rec.k]; ok && v.seq == rec.seq {
			delete(u.iotlb, rec.k)
			if set := u.tlbByPasid[rec.k.pasid]; set != nil {
				delete(set, rec.k.vpn)
				if len(set) == 0 {
					delete(u.tlbByPasid, rec.k.pasid)
				}
			}
		} else {
			u.tlbGhosts--
		}
		if u.tlbHead >= u.cfg.IOTLBEntries {
			u.tlbCompact()
		}
	}
	u.tlbSeq++
	u.iotlb[k] = tlbVal{e: e, seq: u.tlbSeq}
	u.tlbFIFO = append(u.tlbFIFO, tlbRec{k: k, seq: u.tlbSeq})
	set := u.tlbByPasid[k.pasid]
	if set == nil {
		set = make(map[uint64]struct{})
		u.tlbByPasid[k.pasid] = set
	}
	set[k.vpn] = struct{}{}
}

// pwcLookup resolves the leaf node covering region (va>>21) for pasid,
// consulting the paging-structure cache first. fromPWC reports whether
// the upper levels were served from the cache; a miss performs the
// host-side descent and caches a successful path. Failed descents are
// not negatively cached, so attaching a brand-new region needs no
// invalidation — only updates to an existing path do.
func (u *IOMMU) pwcLookup(table *pagetable.Table, pasid uint32, region uint64) (leaf *pagetable.Node, effRW bool, fromPWC, ok bool) {
	if u.cfg.PWCEntries > 0 {
		if c := u.pwc[pasid]; c != nil {
			if e, hit := c.entries[region]; hit {
				u.pwcHits++
				u.mPWCHits.Inc()
				return e.leaf, e.effRW, true, true
			}
		}
		u.pwcMisses++
		u.mPWCMisses.Inc()
	}
	leaf, effRW, _, ok = table.LeafFor(region * pagetable.PMDSpan)
	if !ok {
		return nil, false, false, false
	}
	if u.cfg.PWCEntries > 0 {
		u.pwcInsert(pasid, region, leaf, effRW)
	}
	return leaf, effRW, false, true
}

func (u *IOMMU) pwcInsert(pasid uint32, region uint64, leaf *pagetable.Node, effRW bool) {
	c := u.pwc[pasid]
	if c == nil {
		c = &pwcCache{entries: make(map[uint64]pwcEntry)}
		u.pwc[pasid] = c
	}
	if _, ok := c.entries[region]; ok {
		c.entries[region] = pwcEntry{leaf: leaf, effRW: effRW}
		return
	}
	for len(c.entries) >= u.cfg.PWCEntries {
		old := c.fifo[0]
		copy(c.fifo, c.fifo[1:])
		c.fifo = c.fifo[:len(c.fifo)-1]
		delete(c.entries, old)
	}
	c.entries[region] = pwcEntry{leaf: leaf, effRW: effRW}
	c.fifo = append(c.fifo, region)
}

func (c *pwcCache) remove(region uint64) {
	if _, ok := c.entries[region]; !ok {
		return
	}
	delete(c.entries, region)
	for i, r := range c.fifo {
		if r == region {
			copy(c.fifo[i:], c.fifo[i+1:])
			c.fifo = c.fifo[:len(c.fifo)-1]
			break
		}
	}
}

// pwcInvalidateRange drops cached upper-level paths for every 2 MiB
// region overlapping [va, va+bytes).
func (u *IOMMU) pwcInvalidateRange(pasid uint32, va uint64, bytes int64) {
	c := u.pwc[pasid]
	if c == nil || len(c.entries) == 0 {
		return
	}
	lo := va / pagetable.PMDSpan
	hi := (va + uint64(bytes) + pagetable.PMDSpan - 1) / pagetable.PMDSpan
	if hi-lo > uint64(len(c.entries)) {
		// Wide range: scan the fifo (== the key set) back to front so
		// removals never disturb the indexes still to visit.
		for i := len(c.fifo) - 1; i >= 0; i-- {
			if r := c.fifo[i]; r >= lo && r < hi {
				c.remove(r)
			}
		}
	} else {
		for r := lo; r < hi; r++ {
			c.remove(r)
		}
	}
}

// Translate resolves a VBA request to device sectors, enforcing the
// FT, DevID and R/W checks. It never touches media. Extent-table
// mappings (§5.1 enhancement) take precedence over page-table walks.
func (u *IOMMU) Translate(req Request) Result {
	return u.TranslateInto(req, nil)
}

// TranslateInto is Translate with a caller-supplied segment buffer:
// the result's Segments reuse segs' backing array (appended from
// segs[:0]), letting hot callers such as the device model avoid a
// per-request allocation. Pass nil to allocate fresh.
func (u *IOMMU) TranslateInto(req Request, segs []Segment) Result {
	if u.inj != nil {
		if u.inj.Fire(faults.SiteIOMMUInvalidate) {
			// Invalidation storm: every cached translation drops, as
			// after a global TLB shootdown; subsequent requests walk.
			u.flushTranslationCaches()
		}
		var extra sim.Time
		if dl, ok := u.inj.FireDelay(faults.SiteIOMMUATSDelay); ok {
			if dl == 0 {
				dl = 2 * sim.Microsecond
			}
			extra = dl // slow ATS completion on the PCIe fabric
		}
		if u.inj.Fire(faults.SiteIOMMUFault) {
			// Spurious translation fault: the device sees the same
			// response as a revocation and the submitter must
			// refault/refmap (paper §3.6's recovery path).
			u.countFault()
			return Result{Status: Fault, Latency: u.latency(0, 0, 0, 1) + extra}
		}
		r := u.translateInto(req, segs)
		r.Latency += extra
		return r
	}
	return u.translateInto(req, segs)
}

// translateInto is the injection-free translation path. It is a fused
// single pass: the page-table descent happens once per 2 MiB leaf node
// (served by the PWC when warm), entries stream out of the resident
// node, and LBA-contiguity coalescing builds the segment list in the
// same loop — an N-page request costs ~N/512 descents, not N.
func (u *IOMMU) translateInto(req Request, segs []Segment) Result {
	segs = segs[:0]
	if r := u.regionFor(req.PASID, req.VBA); r != nil {
		return u.translateRegion(r, req, segs)
	}
	table, ok := u.pasids[req.PASID]
	if !ok {
		u.countFault()
		return Result{Status: Fault, Latency: u.latency(0, 0, 0, 1)}
	}
	if req.Bytes <= 0 {
		return Result{Status: Fault, Latency: u.latency(0, 0, 0, 0)}
	}

	firstPage := req.VBA / pagetable.PageSize
	lastPage := (req.VBA + uint64(req.Bytes) - 1) / pagetable.PageSize
	nPages := int(lastPage - firstPage + 1)

	// walks counts per-page leaf loads (the paper's unit for Fig. 5
	// accounting: eight leaf entries per cacheline); fullWalks counts
	// host descents that the PWC could not serve.
	walks, fullWalks, hits := 0, 0, 0
	remaining := req.Bytes
	off := req.VBA % pagetable.PageSize
	if off%storage.SectorSize != 0 || req.Bytes%storage.SectorSize != 0 {
		return Result{Status: Fault, Latency: u.latency(0, 0, 0, 0)}
	}

	// Resident-leaf state, valid while pg stays in leafRegion.
	var leaf *pagetable.Node
	var leafRW, leafOK bool
	leafRegion := ^uint64(0)

	for pg := firstPage; pg <= lastPage; pg++ {
		var entry pagetable.Entry
		var effRW bool
		inTLB := false
		if u.cfg.CacheFTEs {
			// FTEs are only looked up in the IOTLB when caching is on
			// (paper §4.3 keeps them out by default); with the cache
			// off the probe is skipped entirely and TLBStats stays 0/0.
			var cached tlbVal
			if cached, inTLB = u.iotlb[tlbKey{req.PASID, pg}]; inTLB {
				u.countTLBHit()
				hits++
				entry = cached.e
				effRW = cached.e.RW()
			}
		}
		if !inTLB {
			walks++
			u.mWalks.Inc()
			if u.cfg.CacheFTEs {
				u.countTLBMiss()
			}
			if region := pg / pagetable.EntriesPer; region != leafRegion {
				leafRegion = region
				var fromPWC bool
				leaf, leafRW, fromPWC, leafOK = u.pwcLookup(table, req.PASID, region)
				if !fromPWC {
					fullWalks++
				}
			}
			found := false
			if leafOK {
				if e := leaf.Entry(int(pg % pagetable.EntriesPer)); e.Present() {
					entry = e
					effRW = leafRW && e.RW()
					found = true
				}
			}
			if !found || !entry.FT() {
				u.countFault()
				return Result{Status: Fault, Latency: u.latency(walks, fullWalks, hits, nPages), Walks: walks}
			}
			if u.cfg.CacheFTEs {
				// Encode the effective permission into the cached copy.
				c := entry
				if !effRW {
					c &^= pagetable.FlagRW
				}
				u.tlbInsert(tlbKey{req.PASID, pg}, c)
			}
		}
		if entry.DevID() != req.DevID {
			u.countDenial()
			return Result{Status: Denied, Latency: u.latency(walks, fullWalks, hits, nPages), Walks: walks}
		}
		if req.Write && !effRW {
			u.countDenial()
			return Result{Status: Denied, Latency: u.latency(walks, fullWalks, hits, nPages), Walks: walks}
		}

		inPage := int64(pagetable.PageSize) - int64(off)
		if inPage > remaining {
			inPage = remaining
		}
		sector := entry.LBA() + int64(off)/storage.SectorSize
		sectors := inPage / storage.SectorSize
		if n := len(segs); n > 0 && segs[n-1].Sector+segs[n-1].Sectors == sector {
			segs[n-1].Sectors += sectors // coalesce
		} else {
			segs = append(segs, Segment{Sector: sector, Sectors: sectors})
		}
		remaining -= inPage
		off = 0
	}
	return Result{
		Status:   OK,
		Segments: segs,
		Latency:  u.latency(walks, fullWalks, hits, nPages),
		Walks:    walks,
	}
}

// latency computes the total VBA translation delay for a request that
// performed the given number of per-page walks (fullWalks of which
// needed a full host descent; the rest were PWC-assisted) and IOTLB
// hits across nPages page translations. With the default sentinel
// config (PWCHitWalkLatency/PWCMinTranslation < 0) the PWC terms
// collapse to the classic model and the output is bit-identical to the
// pre-PWC simulator.
func (u *IOMMU) latency(walks, fullWalks, hits, nPages int) sim.Time {
	if u.cfg.FixedVBALatency >= 0 {
		return u.cfg.FixedVBALatency
	}
	d := u.cfg.PCIeRoundTrip
	if hits > 0 {
		d += u.cfg.IOTLBLookup
	}
	if walks > 0 {
		wl, floor := u.cfg.WalkLatency, u.cfg.MinTranslation
		if fullWalks == 0 {
			// Every upper-level path came out of the paging-structure
			// cache; only leaf entries were fetched.
			if u.cfg.PWCHitWalkLatency >= 0 {
				wl = u.cfg.PWCHitWalkLatency
			}
			if u.cfg.PWCMinTranslation >= 0 {
				floor = u.cfg.PWCMinTranslation
			}
		}
		d += wl
		if nPages >= 3 {
			d += u.cfg.MultiStep
		}
		// Eight leaf entries share a cacheline; each extra line costs
		// one more fetch (Fig. 5 flattens because of this).
		lines := (walks + 7) / 8
		if lines > 1 {
			d += sim.Time(lines-1) * u.cfg.CachelineFetch
		}
		if d < floor {
			d = floor
		}
	}
	return d
}

// WalkOverhead reports the IOMMU-internal translation cost (excluding
// the PCIe round trip and the floor) for a single ATS request that
// needs n page translations — the quantity plotted in Fig. 5.
func (u *IOMMU) WalkOverhead(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	d := u.cfg.WalkLatency
	if n >= 3 {
		d += u.cfg.MultiStep
	}
	if lines := (n + 7) / 8; lines > 1 {
		d += sim.Time(lines-1) * u.cfg.CachelineFetch
	}
	return d
}

// TLBStats reports IOTLB hits and misses.
func (u *IOMMU) TLBStats() (hits, misses int64) { return u.tlbHits, u.tlbMisses }

// PWCStats reports paging-structure-cache hits and misses (a miss is
// a host-side root→leaf descent).
func (u *IOMMU) PWCStats() (hits, misses int64) { return u.pwcHits, u.pwcMisses }

// FaultStats reports translation faults and permission denials.
func (u *IOMMU) FaultStats() (faults, denials int64) { return u.faults, u.denials }
