// Package iommu models the IOMMU with BypassD's proposed extension:
// translating Virtual Block Addresses (VBAs) in device requests to
// device Logical Block Addresses by walking process page tables and
// interpreting File Table Entries (paper §3.5, §4.3).
//
// The latency model follows the paper's measurements (§6.2, Table 4,
// Fig. 5): a 345 ns PCIe round trip for the ATS exchange, ~183 ns for
// a page walk that misses the IOTLB, a small per-cacheline cost for
// requests needing many leaf entries (8 PTEs fit one cacheline), and
// a 550 ns floor on the total VBA translation delay. Per the paper,
// FTEs are not cached in the IOTLB by default (no temporal locality;
// avoids IOTLB pollution) — the CacheFTEs knob exists for the Fig. 8
// 350 ns ablation point.
package iommu

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config holds the IOMMU latency and caching parameters.
type Config struct {
	PCIeRoundTrip  sim.Time // ATS request/response bus time
	WalkLatency    sim.Time // page walk on IOTLB miss
	IOTLBLookup    sim.Time // IOTLB probe cost
	CachelineFetch sim.Time // each extra leaf cacheline beyond the first
	MultiStep      sim.Time // step observed going from 2 to 3 translations (Fig. 5)
	MinTranslation sim.Time // floor on total VBA translation time (§6.2)

	// CacheFTEs enables caching file table entries in the IOTLB
	// (off by default, per §4.3).
	CacheFTEs bool
	// IOTLBEntries bounds the IOTLB (FIFO eviction).
	IOTLBEntries int

	// FixedVBALatency, when >= 0, overrides the computed total VBA
	// translation latency — used by the Fig. 8 sensitivity sweep
	// exactly like the paper's injected nop() delay. A value of 0
	// means "no translation delay"; negative means "compute".
	FixedVBALatency sim.Time
}

// DefaultConfig returns the calibration from the paper.
func DefaultConfig() Config {
	return Config{
		PCIeRoundTrip:   345 * sim.Nanosecond,
		WalkLatency:     183 * sim.Nanosecond,
		IOTLBLookup:     7 * sim.Nanosecond,
		CachelineFetch:  10 * sim.Nanosecond,
		MultiStep:       17 * sim.Nanosecond,
		MinTranslation:  550 * sim.Nanosecond,
		IOTLBEntries:    256,
		FixedVBALatency: -1,
	}
}

// Request is an ATS translation request from a device.
type Request struct {
	PASID uint32
	DevID uint8 // requesting device, checked against FTE DevID
	VBA   uint64
	Bytes int64
	Write bool
}

// Status is the outcome of a translation.
type Status int

// Translation outcomes.
const (
	OK Status = iota
	// Fault: no valid FTE for some page — the file was never mapped,
	// the mapping was revoked, or the entry is not a file table entry.
	Fault
	// Denied: a valid FTE exists but the permission or device-ID
	// check failed.
	Denied
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Fault:
		return "fault"
	case Denied:
		return "denied"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Segment is one contiguous run of device sectors in a translation
// response; the IOMMU coalesces adjacent runs (paper §4.3).
type Segment struct {
	Sector  int64
	Sectors int64
}

// Result is a completed translation.
type Result struct {
	Status   Status
	Segments []Segment
	// Latency is the total VBA translation delay the device observes,
	// including the PCIe round trip. The device serializes this before
	// media access for reads and overlaps it for writes.
	Latency sim.Time
	// Walks is the number of page walks performed (stats/tests).
	Walks int
}

type tlbKey struct {
	pasid uint32
	vpn   uint64
}

// IOMMU is the translation agent. All methods are pure state
// transitions; time is charged by callers using Result.Latency so the
// device model controls serialization vs. overlap.
type IOMMU struct {
	cfg     Config
	pasids  map[uint32]*pagetable.Table
	regions []*regionMap // §5.1 extent-table mappings

	iotlb map[tlbKey]pagetable.Entry
	// tlbFIFO[tlbHead:] is the eviction queue, oldest first. Evicting
	// advances tlbHead instead of reslicing so the backing array is
	// reused; it is compacted once the dead prefix reaches the IOTLB
	// capacity, keeping eviction O(1) amortized and the array bounded.
	tlbFIFO   []tlbKey
	tlbHead   int
	tlbHits   int64
	tlbMisses int64
	faults    int64
	denials   int64

	inj *faults.Injector // machine fault plane; nil = inert

	// Metrics handles, resolved once at construction; nil (inert)
	// when no registry is active.
	mHits, mMisses    *metrics.Counter
	mFaults, mDenials *metrics.Counter
	mWalks            *metrics.Counter
}

// New returns an IOMMU with the given configuration.
func New(cfg Config) *IOMMU {
	return &IOMMU{
		cfg:      cfg,
		pasids:   make(map[uint32]*pagetable.Table),
		iotlb:    make(map[tlbKey]pagetable.Entry),
		mHits:    metrics.GetCounter("iommu_iotlb_total", "event", "hit"),
		mMisses:  metrics.GetCounter("iommu_iotlb_total", "event", "miss"),
		mFaults:  metrics.GetCounter("iommu_translations_total", "result", "fault"),
		mDenials: metrics.GetCounter("iommu_translations_total", "result", "denied"),
		mWalks:   metrics.GetCounter("iommu_walks_total"),
	}
}

// Counter helpers keep the long-standing int64 tallies and the metrics
// plane in lockstep from every site that records an event.
func (u *IOMMU) countTLBHit()  { u.tlbHits++; u.mHits.Inc() }
func (u *IOMMU) countTLBMiss() { u.tlbMisses++; u.mMisses.Inc() }
func (u *IOMMU) countFault()   { u.faults++; u.mFaults.Inc() }
func (u *IOMMU) countDenial()  { u.denials++; u.mDenials.Inc() }

// Config returns the active configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// SetFixedVBALatency adjusts the Fig. 8 override at runtime.
func (u *IOMMU) SetFixedVBALatency(d sim.Time) { u.cfg.FixedVBALatency = d }

// SetCacheFTEs toggles FTE caching in the IOTLB (ablation; paper
// §4.3 argues it is unnecessary).
func (u *IOMMU) SetCacheFTEs(on bool) { u.cfg.CacheFTEs = on }

// SetInjector attaches the machine's fault plane.
func (u *IOMMU) SetInjector(inj *faults.Injector) { u.inj = inj }

// RegisterPASID binds a process page table to a PASID, as the kernel
// driver does when creating user queue pairs (paper §3.3).
func (u *IOMMU) RegisterPASID(pasid uint32, t *pagetable.Table) {
	u.pasids[pasid] = t
}

// UnregisterPASID removes a binding and drops its cached translations
// and extent-table mappings.
func (u *IOMMU) UnregisterPASID(pasid uint32) {
	delete(u.pasids, pasid)
	u.invalidate(func(k tlbKey) bool { return k.pasid == pasid })
	kept := u.regions[:0]
	for _, r := range u.regions {
		if r.pasid != pasid {
			kept = append(kept, r)
		}
	}
	u.regions = kept
}

// InvalidateRange drops cached translations covering [va, va+bytes)
// for pasid. The kernel issues this when detaching FTEs (revocation).
func (u *IOMMU) InvalidateRange(pasid uint32, va uint64, bytes int64) {
	lo := va / pagetable.PageSize
	hi := (va + uint64(bytes) + pagetable.PageSize - 1) / pagetable.PageSize
	u.invalidate(func(k tlbKey) bool {
		return k.pasid == pasid && k.vpn >= lo && k.vpn < hi
	})
}

func (u *IOMMU) invalidate(match func(tlbKey) bool) {
	kept := u.tlbFIFO[:0]
	for _, k := range u.tlbFIFO[u.tlbHead:] {
		if match(k) {
			delete(u.iotlb, k)
		} else {
			kept = append(kept, k)
		}
	}
	u.tlbFIFO = kept
	u.tlbHead = 0
}

func (u *IOMMU) tlbInsert(k tlbKey, e pagetable.Entry) {
	if u.cfg.IOTLBEntries <= 0 {
		return
	}
	if len(u.tlbFIFO)-u.tlbHead >= u.cfg.IOTLBEntries {
		old := u.tlbFIFO[u.tlbHead]
		u.tlbFIFO[u.tlbHead] = tlbKey{}
		u.tlbHead++
		delete(u.iotlb, old)
		if u.tlbHead >= u.cfg.IOTLBEntries {
			n := copy(u.tlbFIFO, u.tlbFIFO[u.tlbHead:])
			u.tlbFIFO = u.tlbFIFO[:n]
			u.tlbHead = 0
		}
	}
	u.iotlb[k] = e
	u.tlbFIFO = append(u.tlbFIFO, k)
}

// Translate resolves a VBA request to device sectors, enforcing the
// FT, DevID and R/W checks. It never touches media. Extent-table
// mappings (§5.1 enhancement) take precedence over page-table walks.
func (u *IOMMU) Translate(req Request) Result {
	return u.TranslateInto(req, nil)
}

// TranslateInto is Translate with a caller-supplied segment buffer:
// the result's Segments reuse segs' backing array (appended from
// segs[:0]), letting hot callers such as the device model avoid a
// per-request allocation. Pass nil to allocate fresh.
func (u *IOMMU) TranslateInto(req Request, segs []Segment) Result {
	if u.inj != nil {
		if u.inj.Fire(faults.SiteIOMMUInvalidate) {
			// Invalidation storm: every cached translation drops, as
			// after a global TLB shootdown; subsequent requests walk.
			u.invalidate(func(tlbKey) bool { return true })
		}
		var extra sim.Time
		if dl, ok := u.inj.FireDelay(faults.SiteIOMMUATSDelay); ok {
			if dl == 0 {
				dl = 2 * sim.Microsecond
			}
			extra = dl // slow ATS completion on the PCIe fabric
		}
		if u.inj.Fire(faults.SiteIOMMUFault) {
			// Spurious translation fault: the device sees the same
			// response as a revocation and the submitter must
			// refault/refmap (paper §3.6's recovery path).
			u.countFault()
			return Result{Status: Fault, Latency: u.latency(0, 0, 1) + extra}
		}
		r := u.translateInto(req, segs)
		r.Latency += extra
		return r
	}
	return u.translateInto(req, segs)
}

// translateInto is the injection-free translation path.
func (u *IOMMU) translateInto(req Request, segs []Segment) Result {
	segs = segs[:0]
	if r := u.regionFor(req.PASID, req.VBA); r != nil {
		return u.translateRegion(r, req, segs)
	}
	table, ok := u.pasids[req.PASID]
	if !ok {
		u.countFault()
		return Result{Status: Fault, Latency: u.latency(0, 0, 1)}
	}
	if req.Bytes <= 0 {
		return Result{Status: Fault, Latency: u.latency(0, 0, 0)}
	}

	firstPage := req.VBA / pagetable.PageSize
	lastPage := (req.VBA + uint64(req.Bytes) - 1) / pagetable.PageSize
	nPages := int(lastPage - firstPage + 1)

	walks, hits := 0, 0
	remaining := req.Bytes
	off := req.VBA % pagetable.PageSize
	if off%storage.SectorSize != 0 || req.Bytes%storage.SectorSize != 0 {
		return Result{Status: Fault, Latency: u.latency(0, 0, 0)}
	}
	for pg := firstPage; pg <= lastPage; pg++ {
		var entry pagetable.Entry
		var effRW bool
		cached, inTLB := pagetable.Entry(0), false
		if u.cfg.CacheFTEs {
			// FTEs are only looked up in the IOTLB when caching is on
			// (paper §4.3 keeps them out by default); with the cache
			// off the probe is skipped entirely and TLBStats stays 0/0.
			cached, inTLB = u.iotlb[tlbKey{req.PASID, pg}]
		}
		if inTLB {
			u.countTLBHit()
			hits++
			entry = cached
			effRW = cached.RW()
		} else {
			walks++
			u.mWalks.Inc()
			if u.cfg.CacheFTEs {
				u.countTLBMiss()
			}
			r := table.Walk(pg * pagetable.PageSize)
			if !r.Found || !r.Entry.FT() {
				u.countFault()
				return Result{Status: Fault, Latency: u.latency(walks, hits, nPages), Walks: walks}
			}
			entry = r.Entry
			effRW = r.EffRW
			if u.cfg.CacheFTEs {
				// Encode the effective permission into the cached copy.
				c := entry
				if !effRW {
					c &^= pagetable.FlagRW
				}
				u.tlbInsert(tlbKey{req.PASID, pg}, c)
			}
		}
		if entry.DevID() != req.DevID {
			u.countDenial()
			return Result{Status: Denied, Latency: u.latency(walks, hits, nPages), Walks: walks}
		}
		if req.Write && !effRW {
			u.countDenial()
			return Result{Status: Denied, Latency: u.latency(walks, hits, nPages), Walks: walks}
		}

		inPage := int64(pagetable.PageSize) - int64(off)
		if inPage > remaining {
			inPage = remaining
		}
		sector := entry.LBA() + int64(off)/storage.SectorSize
		sectors := inPage / storage.SectorSize
		if n := len(segs); n > 0 && segs[n-1].Sector+segs[n-1].Sectors == sector {
			segs[n-1].Sectors += sectors // coalesce
		} else {
			segs = append(segs, Segment{Sector: sector, Sectors: sectors})
		}
		remaining -= inPage
		off = 0
	}
	return Result{
		Status:   OK,
		Segments: segs,
		Latency:  u.latency(walks, hits, nPages),
		Walks:    walks,
	}
}

// latency computes the total VBA translation delay for a request that
// performed the given number of walks and IOTLB hits across nPages
// page translations.
func (u *IOMMU) latency(walks, hits, nPages int) sim.Time {
	if u.cfg.FixedVBALatency >= 0 {
		return u.cfg.FixedVBALatency
	}
	d := u.cfg.PCIeRoundTrip
	if hits > 0 {
		d += u.cfg.IOTLBLookup
	}
	if walks > 0 {
		d += u.cfg.WalkLatency
		if nPages >= 3 {
			d += u.cfg.MultiStep
		}
		// Eight leaf entries share a cacheline; each extra line costs
		// one more fetch (Fig. 5 flattens because of this).
		lines := (walks + 7) / 8
		if lines > 1 {
			d += sim.Time(lines-1) * u.cfg.CachelineFetch
		}
		if d < u.cfg.MinTranslation {
			d = u.cfg.MinTranslation
		}
	}
	return d
}

// WalkOverhead reports the IOMMU-internal translation cost (excluding
// the PCIe round trip and the floor) for a single ATS request that
// needs n page translations — the quantity plotted in Fig. 5.
func (u *IOMMU) WalkOverhead(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	d := u.cfg.WalkLatency
	if n >= 3 {
		d += u.cfg.MultiStep
	}
	if lines := (n + 7) / 8; lines > 1 {
		d += sim.Time(lines-1) * u.cfg.CachelineFetch
	}
	return d
}

// TLBStats reports IOTLB hits and misses.
func (u *IOMMU) TLBStats() (hits, misses int64) { return u.tlbHits, u.tlbMisses }

// FaultStats reports translation faults and permission denials.
func (u *IOMMU) FaultStats() (faults, denials int64) { return u.faults, u.denials }
