package iommu

import (
	"testing"
	"testing/quick"

	"repro/internal/pagetable"
	"repro/internal/sim"
)

func TestRegionRegisterValidation(t *testing.T) {
	u := New(DefaultConfig())
	// Non-dense segments rejected.
	err := u.RegisterRegion(1, 1, 0x1000_0000, 1<<20, true, []RegionSeg{
		{Off: 0, Sector: 0, Bytes: 4096},
		{Off: 8192, Sector: 100, Bytes: 4096}, // gap
	})
	if err == nil {
		t.Fatal("gapped segments accepted")
	}
	// Segments exceeding span rejected.
	err = u.RegisterRegion(1, 1, 0x1000_0000, 4096, true, []RegionSeg{
		{Off: 0, Sector: 0, Bytes: 8192},
	})
	if err == nil {
		t.Fatal("oversized segments accepted")
	}
}

func TestRegionReplaceAndUnregister(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x1000_0000)
	seg := []RegionSeg{{Off: 0, Sector: 80, Bytes: 4096}}
	if err := u.RegisterRegion(1, 1, base, 1<<20, true, seg); err != nil {
		t.Fatal(err)
	}
	// Re-register replaces in place (no duplicates).
	seg2 := []RegionSeg{{Off: 0, Sector: 160, Bytes: 4096}}
	if err := u.RegisterRegion(1, 1, base, 1<<20, true, seg2); err != nil {
		t.Fatal(err)
	}
	r := u.Translate(Request{PASID: 1, DevID: 1, VBA: base, Bytes: 4096})
	if r.Status != OK || r.Segments[0].Sector != 160 {
		t.Fatalf("replacement not effective: %+v", r)
	}
	u.UnregisterRegion(1, base)
	if r := u.Translate(Request{PASID: 1, DevID: 1, VBA: base, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("post-unregister = %v, want fault", r.Status)
	}
}

func TestRegionPermissionChecks(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x1000_0000)
	if err := u.RegisterRegion(1, 1, base, 1<<20, false, []RegionSeg{{Off: 0, Sector: 80, Bytes: 8192}}); err != nil {
		t.Fatal(err)
	}
	if r := u.Translate(Request{PASID: 1, DevID: 1, VBA: base, Bytes: 4096, Write: true}); r.Status != Denied {
		t.Fatalf("write on RO region = %v", r.Status)
	}
	if r := u.Translate(Request{PASID: 1, DevID: 2, VBA: base, Bytes: 4096}); r.Status != Denied {
		t.Fatalf("cross-device region access = %v", r.Status)
	}
	if r := u.Translate(Request{PASID: 1, DevID: 1, VBA: base + 8192, Bytes: 4096}); r.Status != Fault {
		t.Fatalf("read past segments = %v", r.Status)
	}
}

func TestRegionLatencyCheaperThanWalk(t *testing.T) {
	u := New(DefaultConfig())
	base := uint64(0x1000_0000)
	if err := u.RegisterRegion(1, 1, base, 1<<20, true, []RegionSeg{{Off: 0, Sector: 80, Bytes: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	r := u.Translate(Request{PASID: 1, DevID: 1, VBA: base, Bytes: 4096})
	if r.Status != OK {
		t.Fatal(r.Status)
	}
	if r.Latency >= 550*sim.Nanosecond || r.Latency <= u.cfg.PCIeRoundTrip {
		t.Fatalf("region translation latency = %v, want (PCIe, 550ns)", r.Latency)
	}
}

// Property: for any block layout, the extent-table walker and the
// page-table walker translate every aligned request to identical
// device sectors.
func TestRegionEquivalenceProperty(t *testing.T) {
	base := uint64(0x2000_0000_0000)
	f := func(rawRuns []uint16, offSel, lenSel uint16, seed int64) bool {
		if len(rawRuns) == 0 {
			return true
		}
		if len(rawRuns) > 12 {
			rawRuns = rawRuns[:12]
		}
		// Build a block layout of contiguous runs at random disk
		// locations.
		x := uint64(seed)*2654435761 + 12345
		next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }

		var lbas []int64
		var segs []RegionSeg
		off := uint64(0)
		for _, rr := range rawRuns {
			runPages := int(rr)%5 + 1
			diskBlock := int64(next() % (1 << 20))
			segs = append(segs, RegionSeg{
				Off:    off,
				Sector: diskBlock * 8,
				Bytes:  int64(runPages) * 4096,
			})
			for i := 0; i < runPages; i++ {
				lbas = append(lbas, (diskBlock+int64(i))*8)
			}
			off += uint64(runPages) * 4096
		}
		totalBytes := int64(len(lbas)) * 4096

		// Page-table mapping under PASID 1.
		u := New(DefaultConfig())
		ft := pagetable.BuildFileTable(1, lbas)
		tab := pagetable.New()
		if _, err := ft.Attach(tab, base, true); err != nil {
			return false
		}
		u.RegisterPASID(1, tab)
		// Extent-table mapping under PASID 2.
		if err := u.RegisterRegion(2, 1, base, uint64(totalBytes), true, segs); err != nil {
			return false
		}

		reqOff := (int64(offSel) * 512) % totalBytes
		maxLen := totalBytes - reqOff
		reqLen := (int64(lenSel)*512)%maxLen + 512
		if reqOff+reqLen > totalBytes {
			reqLen = totalBytes - reqOff
		}

		r1 := u.Translate(Request{PASID: 1, DevID: 1, VBA: base + uint64(reqOff), Bytes: reqLen})
		r2 := u.Translate(Request{PASID: 2, DevID: 1, VBA: base + uint64(reqOff), Bytes: reqLen})
		if r1.Status != OK || r2.Status != OK {
			return false
		}
		if len(r1.Segments) != len(r2.Segments) {
			return false
		}
		for i := range r1.Segments {
			if r1.Segments[i] != r2.Segments[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
