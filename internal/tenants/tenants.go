// Package tenants is the multi-tenant QoS plane: open-loop per-tenant
// traffic generation, device-side weighted arbitration, and SLO
// accounting.
//
// The paper evaluates sharing with symmetric closed-loop fio jobs
// (Figs. 10/11) and delegates inter-process fairness to NVMe queue
// arbitration (§3.7). This package models the part that evaluation
// leaves open: many competing clients with different priorities,
// rates, and latency SLOs. Each tenant is its own OS process with its
// own files and interface (sync/libaio/io_uring/SPDK/BypassD); a
// seeded arrival process (Poisson or fixed-interval) generates
// requests on the virtual clock independently of completions, so —
// unlike internal/fio's closed loop — queueing delay is visible: a
// request's sojourn time is measured from its generated arrival
// instant to its completion, and a saturated tenant's backlog grows
// instead of throttling the offered load.
//
// Determinism: a scenario runs on one fresh simulation; every random
// draw (interarrival gaps, offsets, read/write mix) comes from a
// per-tenant rand.Source seeded from the scenario seed and the tenant
// index, drawn only by that tenant's generator proc. Replaying the
// same seed reproduces every arrival and completion instant exactly,
// at any host parallelism.
package tenants

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/fio"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/userlib"
	"repro/internal/workload"
)

// Arrival selects a tenant's arrival process. The implementations
// live in internal/workload, shared with the frontend service tier.
type Arrival = workload.Process

// Supported arrival processes.
const (
	// Poisson draws exponential interarrival gaps at RateOps — the
	// open-system model whose tail exposes queueing delay.
	Poisson = workload.Poisson
	// Fixed spaces arrivals exactly 1/RateOps apart.
	Fixed = workload.Fixed
)

// Tenant describes one client of the shared device.
type Tenant struct {
	Name   string      `json:"name"`
	Engine core.Engine `json:"engine"`

	Arrival   Arrival  `json:"arrival,omitempty"` // default Poisson
	RateOps   float64  `json:"rate_ops"`          // offered load, requests/sec
	Ops       int      `json:"ops"`               // arrivals to generate
	BS        int      `json:"bs"`                // request size, bytes
	WriteFrac float64  `json:"write_frac,omitempty"`
	FileBytes int64    `json:"file_bytes"`
	QD        int      `json:"qd,omitempty"` // service contexts; default 1
	QoS       nvme.QoS `json:"qos,omitempty"`
	SLO       sim.Time `json:"slo_ns,omitempty"` // per-request target; 0 = none
}

// Scenario is a complete multi-tenant run.
type Scenario struct {
	Name string `json:"name"`
	// Arbiter selects the device arbitration policy: "rr" (default),
	// "wrr", or "prio" (see device.ArbiterByName); every device of the
	// topology runs the same policy.
	Arbiter  string `json:"arbiter,omitempty"`
	Capacity int64  `json:"capacity,omitempty"` // per-device bytes; 0 = auto
	// Devices is the number of SSDs in the machine (0 or 1 = the
	// single-device machine every earlier scenario ran on). Tenants
	// stripe across devices round-robin by tenant index; each device
	// gets its own file system, queues, and arbiter instance.
	Devices int      `json:"devices,omitempty"`
	Tenants []Tenant `json:"tenants"`
}

// NumDevices is the scenario's device count with the default made
// explicit.
func (sc Scenario) NumDevices() int {
	if sc.Devices < 1 {
		return 1
	}
	return sc.Devices
}

// placement maps a tenant index to its device node: round-robin
// striping, the deterministic tenant → device policy.
func (sc Scenario) placement(ti int) int { return ti % sc.NumDevices() }

// Result aggregates one tenant's run.
type Result struct {
	Tenant Tenant

	Ops   int64
	Bytes int64
	Start sim.Time // first arrival
	End   sim.Time // last completion

	// Sojourn is the arrival-to-completion latency distribution; on an
	// open-loop tenant this includes time spent queued behind the
	// tenant's own backlog, which closed-loop harnesses cannot see.
	Sojourn *stats.Histogram

	Compliant   int64 // requests with sojourn <= SLO (when SLO > 0)
	PeakBacklog int   // largest generated-but-unclaimed backlog observed
	Bursts      int64 // injected arrival spikes (faults.SiteTenantBurst)

	// Lib is the tenant's UserLib degradation counters (BypassD
	// tenants only; zero value otherwise).
	Lib userlib.Stats
}

// Elapsed is the tenant's active window.
func (r *Result) Elapsed() sim.Time { return r.End - r.Start }

// IOPS reports achieved throughput over the active window.
func (r *Result) IOPS() float64 { return stats.Throughput(r.Ops, r.Elapsed()) }

// Bandwidth reports achieved bytes/sec over the active window.
func (r *Result) Bandwidth() float64 { return stats.BytesPerSec(r.Bytes, r.Elapsed()) }

// Compliance reports the fraction of requests inside the SLO, in
// percent; 100 when no SLO was set.
func (r *Result) Compliance() float64 {
	if r.Tenant.SLO <= 0 || r.Ops == 0 {
		return 100
	}
	return 100 * float64(r.Compliant) / float64(r.Ops)
}

// burstArrivals is the number of consecutive arrivals an injected
// tenant-storm spike compresses to a single instant.
const burstArrivals = 32

// request is one generated arrival.
type request struct {
	at    sim.Time
	off   int64
	write bool
}

// tenantState is the generator→worker hand-off queue. The simulation
// runs one goroutine at a time, so plain fields suffice.
type tenantState struct {
	queue   []request
	head    int
	genDone bool
	abort   bool
	more    *sim.Cond
}

func (t *Tenant) validate() error {
	if t.Name == "" {
		return fmt.Errorf("tenants: tenant needs a name")
	}
	if t.BS <= 0 || t.BS%storage.SectorSize != 0 {
		return fmt.Errorf("tenants: %s: block size %d not sector aligned", t.Name, t.BS)
	}
	if t.FileBytes < int64(t.BS) {
		return fmt.Errorf("tenants: %s: file smaller than one request", t.Name)
	}
	if t.RateOps <= 0 {
		return fmt.Errorf("tenants: %s: rate must be positive", t.Name)
	}
	if t.Ops <= 0 {
		return fmt.Errorf("tenants: %s: ops must be positive", t.Name)
	}
	if !workload.ValidProcess(t.Arrival) {
		return fmt.Errorf("tenants: %s: unknown arrival process %q", t.Name, t.Arrival)
	}
	return nil
}

// Run executes a scenario on one freshly booted system and returns
// per-tenant results in tenant order.
func Run(seed int64, sc Scenario) ([]*Result, error) {
	results, _, err := RunCounted(seed, sc)
	return results, err
}

// RunWorkers is Run with the traffic phase executing on the given
// number of host workers (multi-device scenarios only; see
// RunCountedWorkers). Results are identical at any worker count.
func RunWorkers(seed int64, sc Scenario, workers int) ([]*Result, error) {
	results, _, err := RunCountedWorkers(seed, sc, workers)
	return results, err
}

// RunCounted is Run, additionally reporting the number of simulator
// events the scenario dispatched — the numerator of the throughput
// suite's events/sec metric (BenchmarkSimThroughputTenantStorm).
func RunCounted(seed int64, sc Scenario) ([]*Result, uint64, error) {
	return RunCountedWorkers(seed, sc, 1)
}

// RunCountedWorkers executes the scenario with its traffic phase under
// the simulator's conservative epoch engine on up to workers host
// goroutines. The setup phase (mkdirs, file preallocation, syncs,
// process creation) always runs coupled; the engine arms right before
// the tenant pipelines spawn. On a multi-device scenario the engine is
// armed even at workers == 1, so a scenario's results are one schedule
// — byte-identical at every worker count; single-device scenarios
// never arm and keep their historical coupled schedule.
func RunCountedWorkers(seed int64, sc Scenario, workers int) ([]*Result, uint64, error) {
	if len(sc.Tenants) == 0 {
		return nil, 0, fmt.Errorf("tenants: scenario %q has no tenants", sc.Name)
	}
	ndev := sc.NumDevices()
	for i := range sc.Tenants {
		if err := sc.Tenants[i].validate(); err != nil {
			return nil, 0, err
		}
		if ndev > 1 && sc.Tenants[i].Engine == core.EngineSPDK {
			// SPDK claims a device exclusively through the node-0
			// driver; it has no multi-device story here.
			return nil, 0, fmt.Errorf("tenants: %s: SPDK tenants need a single-device scenario", sc.Tenants[i].Name)
		}
	}
	capacity := sc.Capacity
	if capacity == 0 {
		// Auto-size every device to the largest per-device demand so
		// striping never changes a tenant's file layout headroom. At
		// one device this is exactly the historical sum-of-all formula.
		var need int64
		for d := 0; d < ndev; d++ {
			var devNeed int64 = 64 << 20
			for ti, t := range sc.Tenants {
				if sc.placement(ti) == d {
					devNeed += t.FileBytes
				}
			}
			if devNeed > need {
				need = devNeed
			}
		}
		capacity = need*3/2 + (64 << 20)
		capacity = (capacity + storage.SectorSize - 1) &^ (storage.SectorSize - 1)
	}
	sys, err := core.NewN(capacity, ndev)
	if err != nil {
		return nil, 0, err
	}
	defer sys.Close()
	for _, n := range sys.M.Nodes {
		n.Dev.SetArbiter(device.ArbiterByName(sc.Arbiter))
	}

	results := make([]*Result, len(sc.Tenants))
	procs := make([]*kernel.Process, len(sc.Tenants))
	for i := range sc.Tenants {
		results[i] = &Result{Tenant: sc.Tenants[i], Sojourn: stats.NewHistogram()}
	}
	// fail records the first error. Workers on different shards may
	// race to report during a parallel traffic phase, hence the lock
	// (the happy path never takes it).
	var errMu sync.Mutex
	var runErr error
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}

	sys.Sim.Spawn("tenants-setup", func(p *sim.Proc) {
		// One superuser process per device: a process's file-system
		// view is its node's mount, so each device gets its own
		// /tenants tree. At one device this is the historical setup
		// sequence, event for event.
		roots := make([]*kernel.Process, ndev)
		for d := 0; d < ndev; d++ {
			roots[d] = sys.NewProcessOn(ext4.Root, d)
			if err := roots[d].Mkdir(p, "/tenants", 0o777); err != nil {
				fail(err)
				return
			}
		}
		for ti := range sc.Tenants {
			t := &sc.Tenants[ti]
			if err := fio.SetupFile(p, sys, roots[sc.placement(ti)], tenantPath(ti), t.Engine, t.FileBytes); err != nil {
				fail(err)
				return
			}
		}
		for d := 0; d < ndev; d++ {
			if err := roots[d].Sync(p); err != nil {
				fail(err)
				return
			}
		}
		for ti := range sc.Tenants {
			// Each tenant is its own process: own address space, own
			// PASID, own QoS class on every queue it registers — bound
			// to the device the striping policy placed it on.
			pr := sys.NewProcessOn(ext4.Root, sc.placement(ti))
			pr.QoS = sc.Tenants[ti].QoS
			procs[ti] = pr
			startTenant(sys, pr, &sc.Tenants[ti], ti, seed, results[ti], fail)
		}
		// Setup is done; arm the epoch engine for the traffic phase.
		// Tenant pipelines are device-affine (everything a tenant does
		// happens on its device's shard), which is exactly the
		// contract the engine's barrier merge enforces. Arming takes
		// effect once this proc yields — every event up to here ran
		// coupled.
		if ndev > 1 {
			sys.M.ArmParallel(workers)
		}
	})
	sys.Sim.Run()
	sys.M.DisarmParallel()
	if runErr != nil {
		return nil, 0, runErr
	}
	for ti := range sc.Tenants {
		if sc.Tenants[ti].Engine == core.EngineBypassD {
			results[ti].Lib = sys.Lib(procs[ti]).Stats
		}
	}
	return results, sys.Sim.Processed(), nil
}

func tenantPath(ti int) string { return fmt.Sprintf("/tenants/t%d", ti) }

// startTenant spawns one tenant's generator and its QD service
// workers on the scenario's simulation. The tenant's procs run on its
// device's event shard, keeping each device's whole stream — arrivals,
// submissions, completions — in one lane of the deterministic merge.
func startTenant(sys *core.System, pr *kernel.Process, t *Tenant, ti int, seed int64, res *Result, fail func(error)) {
	shard := sys.M.Nodes[pr.Node()].Shard
	st := &tenantState{more: sys.Sim.NewCond()}
	path := tenantPath(ti)
	writable := t.WriteFrac > 0
	qd := t.QD
	if qd < 1 {
		qd = 1
	}
	mOps := metrics.GetCounter("tenant_ops_total", "tenant", t.Name)
	mMiss := metrics.GetCounter("tenant_slo_miss_total", "tenant", t.Name)
	mSojourn := metrics.GetHistogram("tenant_sojourn_ns", "tenant", t.Name)

	sys.Sim.SpawnOn(shard, "tenant-gen-"+t.Name, func(g *sim.Proc) {
		// One stream per tenant, drawn only here: arrival instants and
		// request contents never depend on service order.
		rng := rand.New(rand.NewSource(seed*7919 + int64(ti)*104729 + 17))
		blocks := t.FileBytes / int64(t.BS)
		inj := sys.M.Faults
		burst := 0
		for i := 0; i < t.Ops && !st.abort; i++ {
			if burst > 0 {
				burst--
			} else {
				if gap := workload.Interarrival(rng, t.Arrival, t.RateOps); gap > 0 {
					g.Sleep(gap)
				}
				if inj.Fire(faults.SiteTenantBurst) {
					// Arrival spike: this and the next burstArrivals-1
					// requests land at one instant.
					burst = burstArrivals - 1
					res.Bursts++
				}
			}
			if res.Start == 0 {
				res.Start = g.Now()
			}
			st.queue = append(st.queue, request{
				at:    g.Now(),
				off:   rng.Int63n(blocks) * int64(t.BS),
				write: rng.Float64() < t.WriteFrac,
			})
			if backlog := len(st.queue) - st.head; backlog > res.PeakBacklog {
				res.PeakBacklog = backlog
			}
			st.more.Signal()
		}
		st.genDone = true
		st.more.Broadcast()
	})

	for wi := 0; wi < qd; wi++ {
		sys.Sim.SpawnOn(shard, fmt.Sprintf("tenant-%s-w%d", t.Name, wi), func(w *sim.Proc) {
			abort := func(err error) {
				fail(err)
				st.abort = true
				st.more.Broadcast()
			}
			io, err := sys.NewFileIO(w, pr, t.Engine)
			if err != nil {
				abort(err)
				return
			}
			fd, err := io.Open(w, path, writable)
			if err != nil {
				abort(err)
				return
			}
			buf := make([]byte, t.BS)
			for !st.abort {
				if st.head < len(st.queue) {
					req := st.queue[st.head]
					st.head++
					var err error
					if req.write {
						_, err = io.Pwrite(w, fd, buf, req.off)
					} else {
						_, err = io.Pread(w, fd, buf, req.off)
					}
					if err != nil {
						abort(fmt.Errorf("tenants: %s: %w", t.Name, err))
						return
					}
					now := w.Now()
					soj := now - req.at
					res.Sojourn.Add(soj)
					res.Ops++
					res.Bytes += int64(t.BS)
					mOps.Inc()
					mSojourn.Observe(soj)
					if t.SLO > 0 {
						if soj <= t.SLO {
							res.Compliant++
						} else {
							mMiss.Inc()
						}
					}
					if now > res.End {
						res.End = now
					}
					continue
				}
				if st.genDone {
					return
				}
				st.more.Wait(w)
			}
		})
	}
}
