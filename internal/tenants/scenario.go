package tenants

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NoisyNeighbor builds the canonical contention scenario: one
// latency-sensitive 4 KiB tenant against hogs large-block bandwidth
// tenants, under the given arbiter. The victim carries weight 16 /
// priority 0; hogs carry weight 1 / priority 1 and, for the "prio"
// arbiter, a per-queue token-bucket rate cap — so the same scenario
// ablates all three policies.
func NoisyNeighbor(arbiter string, hogs, victimOps, hogOps int) Scenario {
	sc := Scenario{
		Name:    fmt.Sprintf("noisy-neighbor-%s-%d", arbiterLabel(arbiter), hogs),
		Arbiter: arbiter,
		Tenants: []Tenant{{
			Name:      "victim",
			Engine:    core.EngineBypassD,
			RateOps:   20_000,
			Ops:       victimOps,
			BS:        4096,
			FileBytes: 8 << 20,
			QD:        2,
			QoS:       nvme.QoS{Weight: 16, Priority: 0},
			SLO:       30 * sim.Microsecond,
		}},
	}
	for i := 0; i < hogs; i++ {
		sc.Tenants = append(sc.Tenants, Tenant{
			Name:      fmt.Sprintf("hog%d", i),
			Engine:    core.EngineBypassD,
			RateOps:   60_000,
			Ops:       hogOps,
			BS:        64 << 10,
			FileBytes: 16 << 20,
			QD:        4,
			QoS: nvme.QoS{
				Weight:   1,
				Priority: 1,
				// Only the "prio" arbiter reads the rate cap; ~1/3 of
				// the offered hog load passes when it is enforced.
				RateOps: 20_000,
			},
		})
	}
	return sc
}

func arbiterLabel(arbiter string) string {
	if arbiter == "" {
		return "rr"
	}
	return arbiter
}

// ArbiterName is the scenario's arbiter with the default made
// explicit ("" reads as flat round-robin).
func (sc Scenario) ArbiterName() string { return arbiterLabel(sc.Arbiter) }

// SLOLoad builds the offered-load scenario behind table T8: tenants
// equal tenants splitting totalRate of 4 KiB reads with a latency SLO.
func SLOLoad(engine core.Engine, tenants int, totalRate float64, opsPer int) Scenario {
	sc := Scenario{
		Name: fmt.Sprintf("slo-load-%s", engine),
	}
	for i := 0; i < tenants; i++ {
		sc.Tenants = append(sc.Tenants, Tenant{
			Name:      fmt.Sprintf("t%d", i),
			Engine:    engine,
			RateOps:   totalRate / float64(tenants),
			Ops:       opsPer,
			BS:        4096,
			FileBytes: 8 << 20,
			QD:        8,
			SLO:       25 * sim.Microsecond,
		})
	}
	return sc
}

// ScaleOut builds the T9 weak-scaling scenario: every device gets one
// latency-sensitive 4 KiB victim and one large-block bandwidth hog.
// Tenant order interleaves with the round-robin striping so tenant d
// (victim) and tenant devices+d (hog) both land on device d. Aggregate
// throughput should scale with the device count while each victim's
// tail stays flat: the fleet shares an IOMMU and the host CPUs, but
// queues, arbitration, and media are per-device.
func ScaleOut(devices, victimOps, hogOps int) Scenario {
	sc := Scenario{
		Name:    fmt.Sprintf("scale-out-%d", devices),
		Arbiter: "wrr",
		Devices: devices,
	}
	for d := 0; d < devices; d++ {
		sc.Tenants = append(sc.Tenants, Tenant{
			Name:      fmt.Sprintf("victim%d", d),
			Engine:    core.EngineBypassD,
			RateOps:   20_000,
			Ops:       victimOps,
			BS:        4096,
			FileBytes: 8 << 20,
			QD:        2,
			QoS:       nvme.QoS{Weight: 16, Priority: 0},
			SLO:       30 * sim.Microsecond,
		})
	}
	for d := 0; d < devices; d++ {
		sc.Tenants = append(sc.Tenants, Tenant{
			Name:      fmt.Sprintf("hog%d", d),
			Engine:    core.EngineBypassD,
			RateOps:   60_000,
			Ops:       hogOps,
			BS:        64 << 10,
			FileBytes: 16 << 20,
			QD:        4,
			QoS:       nvme.QoS{Weight: 1, Priority: 1},
		})
	}
	return sc
}

// Builtins lists the named scenarios bypassd-bench can run directly.
func Builtins() []Scenario {
	return []Scenario{
		NoisyNeighbor("rr", 8, 2000, 2000),
		NoisyNeighbor("wrr", 8, 2000, 2000),
		NoisyNeighbor("prio", 8, 2000, 2000),
		SLOLoad(core.EngineBypassD, 4, 800_000, 2000),
	}
}

// ByName resolves a builtin scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Load reads a scenario from a JSON file (the bypassd-bench -tenants
// config format; see EXPERIMENTS.md for the schema).
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("tenants: %s: %w", path, err)
	}
	return sc, nil
}

// ReportTable renders per-tenant results — achieved load, sojourn
// percentiles, SLO compliance, degradation counters — in tenant
// order.
func ReportTable(sc Scenario, results []*Result) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("tenants: %s (arbiter %s)", sc.Name, arbiterLabel(sc.Arbiter)),
		"tenant", "engine", "offered_kiops", "achieved_kiops", "MB/s",
		"p50_us", "p99_us", "p999_us", "slo_us", "compliance_%",
		"peak_backlog", "retries", "fallbacks",
	)
	for _, r := range results {
		s := r.Sojourn.Summarize()
		slo := "-"
		compliance := "-"
		if r.Tenant.SLO > 0 {
			slo = fmt.Sprintf("%.1f", float64(r.Tenant.SLO)/1e3)
			compliance = fmt.Sprintf("%.1f", r.Compliance())
		}
		tb.AddRow(
			r.Tenant.Name, string(r.Tenant.Engine),
			r.Tenant.RateOps/1e3, r.IOPS()/1e3, r.Bandwidth()/1e6,
			float64(s.P50)/1e3, float64(s.P99)/1e3, float64(s.P999)/1e3,
			slo, compliance,
			r.PeakBacklog, r.Lib.Retries, r.Lib.Fallbacks,
		)
	}
	return tb
}
