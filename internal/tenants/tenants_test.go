package tenants

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// small builds a quick noisy-neighbor scenario for tests.
func small(arbiter string, hogs int) Scenario {
	return NoisyNeighbor(arbiter, hogs, 400, 400)
}

func run(t *testing.T, seed int64, sc Scenario) []*Result {
	t.Helper()
	res, err := Run(seed, sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res
}

// TestOpenLoopCompletes: every generated arrival is served, for both
// arrival processes and a writing tenant.
func TestOpenLoopCompletes(t *testing.T) {
	sc := Scenario{
		Name: "basic",
		Tenants: []Tenant{
			{Name: "poisson", Engine: core.EngineBypassD, RateOps: 50_000, Ops: 300, BS: 4096, FileBytes: 4 << 20, QD: 2, SLO: 20 * sim.Microsecond},
			{Name: "fixed", Engine: core.EngineBypassD, Arrival: Fixed, RateOps: 50_000, Ops: 300, BS: 4096, FileBytes: 4 << 20},
			{Name: "writer", Engine: core.EngineSync, RateOps: 20_000, Ops: 200, BS: 8192, WriteFrac: 0.5, FileBytes: 4 << 20},
		},
	}
	for i, r := range run(t, 1, sc) {
		want := int64(sc.Tenants[i].Ops)
		if r.Ops != want {
			t.Errorf("%s: served %d of %d arrivals", r.Tenant.Name, r.Ops, want)
		}
		if r.Sojourn.Count() != want {
			t.Errorf("%s: histogram has %d samples", r.Tenant.Name, r.Sojourn.Count())
		}
		if r.End <= r.Start {
			t.Errorf("%s: window [%v,%v]", r.Tenant.Name, r.Start, r.End)
		}
	}
}

// TestOpenLoopSeesQueueing: driving one tenant far over device
// capacity must surface queueing delay — mean sojourn well above the
// uncontended service time, and a backlog — which a closed-loop
// harness cannot produce.
func TestOpenLoopSeesQueueing(t *testing.T) {
	sc := Scenario{
		Name: "overload",
		Tenants: []Tenant{{
			// 2M ops/s offered against a ~1.49M ops/s device.
			Name: "hot", Engine: core.EngineBypassD, RateOps: 2_000_000,
			Ops: 2000, BS: 4096, FileBytes: 8 << 20, QD: 8,
		}},
	}
	r := run(t, 1, sc)[0]
	if r.PeakBacklog < 50 {
		t.Errorf("peak backlog %d under 134%% load, want a growing queue", r.PeakBacklog)
	}
	if mean := r.Sojourn.Mean(); mean < 50*sim.Microsecond {
		t.Errorf("mean sojourn %v under overload, want queueing delay ≫ 5µs service time", mean)
	}
}

// TestArbiterProtectsVictim is the tentpole acceptance check: under
// ≥8 noisy neighbors, the WRR and token-bucket arbiters must hold the
// latency-sensitive tenant's p99 below flat round-robin's.
func TestArbiterProtectsVictim(t *testing.T) {
	p99 := map[string]sim.Time{}
	for _, arb := range []string{"rr", "wrr", "prio"} {
		res := run(t, 1, small(arb, 8))
		victim := res[0]
		if victim.Tenant.Name != "victim" {
			t.Fatal("victim not first")
		}
		if victim.Ops != int64(victim.Tenant.Ops) {
			t.Fatalf("%s: victim served %d", arb, victim.Ops)
		}
		p99[arb] = victim.Sojourn.Percentile(99)
	}
	if p99["wrr"] >= p99["rr"] {
		t.Errorf("victim p99: wrr %v !< rr %v", p99["wrr"], p99["rr"])
	}
	if p99["prio"] >= p99["rr"] {
		t.Errorf("victim p99: prio %v !< rr %v", p99["prio"], p99["rr"])
	}
}

// TestReplayByteIdentical: the same seed renders the same report,
// down to the byte, across runs.
func TestReplayByteIdentical(t *testing.T) {
	sc := small("wrr", 4)
	a := ReportTable(sc, run(t, 7, sc)).String()
	b := ReportTable(sc, run(t, 7, sc)).String()
	if a != b {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a, b)
	}
	c := ReportTable(sc, run(t, 8, sc)).String()
	if a == c {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestTenantStorm: the tenant-storm fault profile injects arrival
// spikes and queue-full backpressure; the run must complete every
// arrival while the degradation counters record the events.
func TestTenantStorm(t *testing.T) {
	if err := faults.Activate("tenant-storm", 3); err != nil {
		t.Fatal(err)
	}
	defer faults.Deactivate()
	sc := Scenario{
		Name: "storm",
		Tenants: []Tenant{{
			Name: "t0", Engine: core.EngineBypassD, RateOps: 100_000,
			Ops: 1500, BS: 4096, FileBytes: 8 << 20, QD: 4,
			SLO: 30 * sim.Microsecond,
		}},
	}
	r := run(t, 3, sc)[0]
	if r.Ops != 1500 {
		t.Fatalf("storm run served %d of 1500 (degradation was not graceful)", r.Ops)
	}
	if r.Bursts == 0 {
		t.Error("no arrival bursts fired under tenant-storm")
	}
	if r.Lib.InjectedFaults == 0 {
		t.Error("userlib.Stats.InjectedFaults = 0 under queue-full backpressure")
	}
	if r.Lib.Fallbacks > 0 && r.Ops != 1500 {
		t.Error("fallbacks lost requests")
	}
	if r.PeakBacklog < burstArrivals {
		t.Errorf("peak backlog %d, want ≥ burst size %d", r.PeakBacklog, burstArrivals)
	}
}

// TestConcurrentScenarios drives tenant submission through every
// arbiter from parallel goroutines (each on its own simulation) — the
// satellite -race check for the QoS plane.
func TestConcurrentScenarios(t *testing.T) {
	var wg sync.WaitGroup
	for _, arb := range []string{"rr", "wrr", "prio", "rr"} {
		arb := arb
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(5, small(arb, 4))
			if err != nil {
				t.Errorf("%s: %v", arb, err)
				return
			}
			if res[0].Ops != int64(res[0].Tenant.Ops) {
				t.Errorf("%s: victim served %d", arb, res[0].Ops)
			}
		}()
	}
	wg.Wait()
}

// TestScenarioJSON: the -tenants config format round-trips and loads.
func TestScenarioJSON(t *testing.T) {
	sc := Scenario{
		Name:    "from-file",
		Arbiter: "prio",
		Tenants: []Tenant{{
			Name: "a", Engine: core.EngineBypassD, RateOps: 10_000, Ops: 50,
			BS: 4096, FileBytes: 1 << 20,
			QoS: nvme.QoS{Weight: 8, RateOps: 5_000},
			SLO: 25 * sim.Microsecond,
		}},
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || got.Arbiter != sc.Arbiter || len(got.Tenants) != 1 {
		t.Fatalf("loaded %+v", got)
	}
	if got.Tenants[0].QoS != sc.Tenants[0].QoS || got.Tenants[0].SLO != sc.Tenants[0].SLO {
		t.Fatalf("tenant fields lost: %+v", got.Tenants[0])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestBuiltinsRunnable: every named scenario validates and resolves.
func TestBuiltinsRunnable(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Builtins() {
		if seen[sc.Name] {
			t.Errorf("duplicate builtin %q", sc.Name)
		}
		seen[sc.Name] = true
		for i := range sc.Tenants {
			if err := sc.Tenants[i].validate(); err != nil {
				t.Errorf("builtin %s: %v", sc.Name, err)
			}
		}
		if _, ok := ByName(sc.Name); !ok {
			t.Errorf("ByName(%q) failed", sc.Name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName resolved a bogus name")
	}
}
