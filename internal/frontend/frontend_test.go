package frontend

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testFleet is a small two-device fleet sized so every test cell runs
// in well under a second.
func testFleet(policy Policy, frac float64) Fleet {
	return ServiceFleet(policy, frac, 2, 8, 4000, 8000)
}

func TestFleetValidation(t *testing.T) {
	base := testFleet(AdmitAll, 1)
	cases := []struct {
		name string
		mut  func(*Fleet)
	}{
		{"zero pool", func(fl *Fleet) { fl.Pool = 0 }},
		{"pool above cap", func(fl *Fleet) { fl.Pool = MaxPool + 1 }},
		{"pool under devices", func(fl *Fleet) { fl.Pool = 1; fl.Devices = 2 }},
		{"users under devices", func(fl *Fleet) { fl.Users = 1; fl.Devices = 2 }},
		{"no rate", func(fl *Fleet) { fl.RateOps = 0 }},
		{"bad shape", func(fl *Fleet) { fl.Shape = "square" }},
		{"bad policy", func(fl *Fleet) { fl.Admission = "lifo" }},
		{"token without rate", func(fl *Fleet) { fl.Admission = AdmitToken; fl.TokenRate = 0 }},
		{"bad hot frac", func(fl *Fleet) { fl.HotFrac = 1.5 }},
		{"bad write frac", func(fl *Fleet) { fl.WriteFrac = -0.1 }},
		{"spdk engine", func(fl *Fleet) { fl.Engine = core.EngineSPDK }},
		{"unknown backend", func(fl *Fleet) { fl.Backend = "rocks" }},
	}
	for _, tc := range cases {
		fl := base
		tc.mut(&fl)
		if _, err := Run(1, fl); err == nil {
			t.Errorf("%s: fleet accepted", tc.name)
		}
	}
	// The read-only backend silently forces WriteFrac to zero rather
	// than erroring.
	fl := base
	fl.Backend = "bpfkv"
	fl.WriteFrac = 0.5
	fl.Users, fl.Requests = 400, 800
	if _, err := Run(1, fl); err != nil {
		t.Fatalf("bpfkv fleet with writes requested: %v", err)
	}
}

func TestFleetJSONRoundTrip(t *testing.T) {
	fl := testFleet(AdmitToken, 2)
	fl.Shape = workload.Bursty
	data, err := json.MarshalIndent(fl, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != fl {
		t.Fatalf("round trip changed the fleet:\n%+v\nvs\n%+v", got, fl)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// render runs a fleet and renders its report — the byte-level
// fingerprint the determinism tests compare.
func render(t *testing.T, seed int64, fl Fleet, workers int) string {
	t.Helper()
	res, err := RunWorkers(seed, fl, workers)
	if err != nil {
		t.Fatal(err)
	}
	return ReportTable(fl, res).String()
}

// TestWorkerInvariance is the tentpole determinism gate: a
// multi-device fleet must render byte-identically at every epoch
// worker count, for each admission policy (they exercise different
// event interleavings: door sheds, dequeue drops, condition waits).
func TestWorkerInvariance(t *testing.T) {
	for _, policy := range []Policy{AdmitAll, AdmitToken, AdmitCoDel} {
		fl := testFleet(policy, 2)
		ref := render(t, 42, fl, 1)
		for _, w := range []int{2, 4} {
			if got := render(t, 42, fl, w); got != ref {
				t.Errorf("%s: report at workers=%d differs from workers=1:\n%s\nvs\n%s",
					policy, w, got, ref)
			}
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	fl := testFleet(AdmitCoDel, 2)
	if render(t, 7, fl, 1) != render(t, 7, fl, 2) {
		t.Fatal("same seed diverged")
	}
	if render(t, 7, fl, 1) == render(t, 8, fl, 1) {
		t.Fatal("different seeds produced identical fleets")
	}
}

// TestUserCoverage checks the tier's population guarantee: with flat
// admission and enough requests, every one of the fleet's distinct
// users is served at least once — including an odd population that
// does not divide evenly across devices.
func TestUserCoverage(t *testing.T) {
	fl := testFleet(AdmitAll, 0.8)
	fl.Users = 4001
	fl.Requests = int(fl.Users) * 13 / 10
	res, err := Run(3, fl)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UsersServed(); got != int64(fl.Users) {
		t.Fatalf("served %d distinct users, want all %d", got, fl.Users)
	}
	if res.Offered() != int64(fl.Requests) {
		t.Fatalf("offered %d, want %d", res.Offered(), fl.Requests)
	}
	if res.Completed() != res.Admitted() {
		t.Fatalf("admitted %d but completed %d", res.Admitted(), res.Completed())
	}
}

// TestAdmissionAtSaturation is the satellite acceptance gate: at 2x
// the pool's capacity, flat admission must violate the SLO (its
// sojourn is pure backlog), while both real policies shed load and
// keep the admitted tail at or near the SLO — token pacing strictly
// inside it.
func TestAdmissionAtSaturation(t *testing.T) {
	run := func(policy Policy) *Result {
		res, err := Run(42, testFleet(policy, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slo := testFleet(AdmitAll, 2).SLO

	flat := run(AdmitAll)
	if flat.Shed() != 0 {
		t.Fatalf("flat admission shed %d requests", flat.Shed())
	}
	if p99 := flat.Sojourn().Summarize().P99; p99 <= slo {
		t.Fatalf("flat baseline p99 %v inside the %v SLO: the cell is not saturated", p99, slo)
	}
	if c := flat.SLOCompliance(); c > 50 {
		t.Fatalf("flat baseline SLO compliance %.1f%%, want a clear violation", c)
	}

	token := run(AdmitToken)
	if token.Shed() == 0 {
		t.Fatal("token policy shed nothing at 2x saturation")
	}
	if p99 := token.Sojourn().Summarize().P99; p99 > slo {
		t.Fatalf("token admitted p99 %v outside the %v SLO", p99, slo)
	}

	codel := run(AdmitCoDel)
	if codel.Shed() == 0 {
		t.Fatal("codel policy shed nothing at 2x saturation")
	}
	if c := codel.SLOCompliance(); c < 95 {
		t.Fatalf("codel SLO compliance %.1f%%, want >= 95%%", c)
	}
	if codel.Goodput() <= token.Goodput() {
		t.Fatalf("codel goodput %.0f <= token %.0f: dequeue shedding should serve more than door pacing",
			codel.Goodput(), token.Goodput())
	}
}

// TestBackends smokes each KV backend end to end, with writes where
// the store supports them.
func TestBackends(t *testing.T) {
	for _, bk := range []string{"wtiger", "kvell", "bpfkv"} {
		fl := testFleet(AdmitAll, 0.2)
		fl.Backend = bk
		fl.Users, fl.Requests = 600, 1200
		fl.WriteFrac = 0.3
		fl.StoreKeys = 512
		res, err := Run(11, fl)
		if err != nil {
			t.Fatalf("%s: %v", bk, err)
		}
		if res.Completed() != int64(fl.Requests) {
			t.Fatalf("%s: completed %d of %d", bk, res.Completed(), fl.Requests)
		}
		if res.Sojourn().Summarize().P50 <= 0 {
			t.Fatalf("%s: no sojourn signal", bk)
		}
	}
}

// TestLoadShapes runs the shaped builtin fleets: the diurnal and
// bursty streams must deliver the full request count deterministically.
func TestLoadShapes(t *testing.T) {
	for _, name := range []string{"fleet-diurnal", "fleet-bursty"} {
		fl, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not a builtin", name)
		}
		fl.Users, fl.Requests = 2000, 4000
		res, err := Run(5, fl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Offered() != int64(fl.Requests) {
			t.Fatalf("%s: offered %d, want %d", name, res.Offered(), fl.Requests)
		}
		if render(t, 5, fl, 1) != render(t, 5, fl, 2) {
			t.Fatalf("%s: shaped fleet not worker-invariant", name)
		}
	}
}

// TestTenantStorm degrades the fleet gracefully under the arrival
// fault profile: spikes fire, the policy sheds harder, and the run
// still completes without error.
func TestTenantStorm(t *testing.T) {
	fl := testFleet(AdmitCoDel, 1)
	faults.Activate("tenant-storm", 42)
	defer faults.Deactivate()
	res, err := Run(42, fl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts() == 0 {
		t.Fatal("tenant-storm injected no arrival spikes")
	}
	if res.Completed() == 0 {
		t.Fatal("fleet served nothing under the storm")
	}
	if res.Completed()+res.Shed() != res.Offered() {
		t.Fatalf("accounting leak: %d completed + %d shed != %d offered",
			res.Completed(), res.Shed(), res.Offered())
	}
	// Spike transients ride through CoDel's interval hysteresis before
	// the controller trips, so compliance dips below the steady-state
	// figure — graceful means the served tail stays mostly protected.
	if c := res.SLOCompliance(); c < 80 {
		t.Fatalf("storm compliance %.1f%% among admitted: shedding did not protect the served tail", c)
	}
}

// TestBuiltins resolves every builtin by name and rejects unknowns.
func TestBuiltins(t *testing.T) {
	for _, fl := range Builtins() {
		got, ok := ByName(fl.Name)
		if !ok || got.Name != fl.Name {
			t.Fatalf("builtin %q does not resolve", fl.Name)
		}
	}
	if _, ok := ByName("no-such-fleet"); ok {
		t.Fatal("unknown fleet resolved")
	}
}

// TestMillionUsers is the headline scale check at a size CI can
// afford: one full-scale arithmetic pass plus a scaled end-to-end run.
// The partition walk must cover 2^20 users exactly (full T10 relies
// on it), verified here structurally per device.
func TestMillionUsers(t *testing.T) {
	const users = 1 << 20
	const ndev = 4
	var total uint64
	for d := 0; d < ndev; d++ {
		total += partSize(users, ndev, d)
	}
	if total != users {
		t.Fatalf("partitions cover %d users, want %d", total, users)
	}
	if testing.Short() {
		return
	}
	// An end-to-end slice: a fleet with a 2^20 population in quick
	// proportions would take minutes, so cover 2^17 users here; the
	// full T10 table (docs/results-full.md) runs the 2^20 cells.
	fl := ServiceFleet(AdmitAll, 0.8, ndev, 16, 1<<17, (1<<17)*13/10)
	res, err := Run(42, fl)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UsersServed(); got != 1<<17 {
		t.Fatalf("served %d distinct users, want %d", got, 1<<17)
	}
}

var _ = sim.Time(0)
