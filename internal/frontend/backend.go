package frontend

import (
	"fmt"

	"repro/internal/bpfkv"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kvell"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wtiger"
)

// backend adapts one KV store to the service tier: one store per
// device (built in device order during setup), one server per pool
// worker. A backend instance belongs to a single run.
type backend interface {
	// writable reports whether the store supports updates (bpfkv is
	// read-only, so the tier forces WriteFrac to 0 on it).
	writable() bool
	// capacity is the per-device byte size the machine boots with.
	capacity(fl Fleet) int64
	// build creates device devIdx's store. Called once per device, in
	// device order, from the coupled setup phase.
	build(p *sim.Proc, sys *core.System, devIdx int, fl Fleet) error
	// newServer opens a per-worker connection through the worker's own
	// process (its own PASID and queue pair when the engine is
	// BypassD).
	newServer(w *sim.Proc, sys *core.System, pr *kernel.Process, devIdx int, fl Fleet) (server, error)
}

// server executes one request end to end on the virtual clock.
type server interface {
	do(w *sim.Proc, key uint64, write bool) error
}

// backendByName returns a fresh backend instance for one run.
func backendByName(name string) (backend, error) {
	switch name {
	case "wtiger":
		return &wtigerBackend{}, nil
	case "kvell":
		return &kvellBackend{}, nil
	case "bpfkv":
		return &bpfkvBackend{}, nil
	}
	return nil, fmt.Errorf("frontend: unknown backend %q (want wtiger, kvell, or bpfkv)", name)
}

// storePath is the per-device store file; each device node mounts its
// own file system, so the same path names a distinct file per device.
const storePath = "/frontend/db"

// deviceCapacity pads a store's on-disk footprint into a device size:
// double the data for fs metadata and write headroom, floored at
// 256 MiB so tiny quick-mode stores still get a realistically sized
// device.
func deviceCapacity(storeBytes int64) int64 {
	c := storeBytes*2 + (64 << 20)
	if c < 256<<20 {
		c = 256 << 20
	}
	return (c + storage.SectorSize - 1) &^ (storage.SectorSize - 1)
}

// wtigerBackend serves the WiredTiger-style B-tree: cached pages at
// CacheFrac of the data, updates in place.
type wtigerBackend struct {
	stores []*wtiger.Store
}

func (b *wtigerBackend) writable() bool { return true }

func (b *wtigerBackend) dataBytes(fl Fleet) int64 {
	pages := int64(fl.StoreKeys)/int64(wtiger.LeafCap) + 64 // leaves + internal levels
	return pages * wtiger.PageSize * 2
}

func (b *wtigerBackend) capacity(fl Fleet) int64 {
	return deviceCapacity(b.dataBytes(fl))
}

func (b *wtigerBackend) build(p *sim.Proc, sys *core.System, devIdx int, fl Fleet) error {
	cache := int64(float64(b.dataBytes(fl)) * fl.CacheFrac)
	if cache < wtiger.PageSize {
		cache = wtiger.PageSize
	}
	st, err := wtiger.BuildOn(p, sys, sys.M.CPU, devIdx, wtiger.Config{
		Keys:       fl.StoreKeys,
		CacheBytes: cache,
		Path:       storePath,
	})
	if err != nil {
		return err
	}
	b.stores = append(b.stores, st)
	return nil
}

func (b *wtigerBackend) newServer(w *sim.Proc, sys *core.System, pr *kernel.Process, devIdx int, fl Fleet) (server, error) {
	io, err := sys.NewFileIO(w, pr, fl.Engine)
	if err != nil {
		return nil, err
	}
	conn, err := b.stores[devIdx].NewConn(w, io)
	if err != nil {
		return nil, err
	}
	return &wtigerServer{conn: conn}, nil
}

type wtigerServer struct {
	conn *wtiger.Conn
}

func (s *wtigerServer) do(w *sim.Proc, key uint64, write bool) error {
	if write {
		return s.conn.Update(w, key, wtiger.ValueOf(key^0x5a))
	}
	_, found, err := s.conn.Lookup(w, key)
	if err == nil && !found {
		err = fmt.Errorf("frontend: wtiger key %d missing", key)
	}
	return err
}

// kvellBackend serves the KVell slab: in-memory index, one I/O per
// request. The BypassD engine uses KVell's synchronous bypass worker;
// every other engine goes through KVell's native libaio path at queue
// depth 1 (one request per worker at a time, matching the tier's
// dispatch model).
type kvellBackend struct {
	stores []*kvell.Store
}

func (b *kvellBackend) writable() bool { return true }

func (b *kvellBackend) capacity(fl Fleet) int64 {
	slots := int64(fl.StoreKeys) + int64(fl.StoreKeys)/2 + 1024
	return deviceCapacity(slots * kvell.SlotSize)
}

func (b *kvellBackend) build(p *sim.Proc, sys *core.System, devIdx int, fl Fleet) error {
	st, err := kvell.BuildOn(p, sys, devIdx, kvell.Config{Items: fl.StoreKeys, Path: storePath})
	if err != nil {
		return err
	}
	b.stores = append(b.stores, st)
	return nil
}

func (b *kvellBackend) newServer(w *sim.Proc, sys *core.System, pr *kernel.Process, devIdx int, fl Fleet) (server, error) {
	st := b.stores[devIdx]
	var wk *kvell.Worker
	var err error
	if fl.Engine == core.EngineBypassD {
		wk, err = kvell.NewBypassWorker(w, sys.Lib(pr), st)
	} else {
		wk, err = kvell.NewAioWorker(w, sys, st, pr, 1)
	}
	if err != nil {
		return nil, err
	}
	return &kvellServer{wk: wk}, nil
}

type kvellServer struct {
	wk   *kvell.Worker
	reqs [1]kvell.Request
}

func (s *kvellServer) do(w *sim.Proc, key uint64, write bool) error {
	s.reqs[0] = kvell.Request{Key: key, Write: write}
	if write {
		s.reqs[0].Val = kvell.ValueOf(key ^ 0x5a)
	}
	return s.wk.Do(w, s.reqs[:])[0].Err
}

// bpfkvBackend serves the BPF-KV image: an uncached index descent
// plus data read per lookup. Read-only.
type bpfkvBackend struct {
	stores []*bpfkv.Store
}

func (b *bpfkvBackend) writable() bool { return false }

// bpfkvLevels matches the paper's 6-level index; Plan picks the
// smallest fanout that covers the key space.
const bpfkvLevels = 6

func (b *bpfkvBackend) capacity(fl Fleet) int64 {
	st, err := bpfkv.Plan(fl.StoreKeys, bpfkvLevels)
	if err != nil {
		return 256 << 20 // Plan re-runs in build and reports the error
	}
	return deviceCapacity(st.FileBytes)
}

func (b *bpfkvBackend) build(p *sim.Proc, sys *core.System, devIdx int, fl Fleet) error {
	st, err := bpfkv.Plan(fl.StoreKeys, bpfkvLevels)
	if err != nil {
		return err
	}
	if err := st.LoadFSOn(p, sys, devIdx, storePath); err != nil {
		return err
	}
	b.stores = append(b.stores, st)
	return nil
}

func (b *bpfkvBackend) newServer(w *sim.Proc, sys *core.System, pr *kernel.Process, devIdx int, fl Fleet) (server, error) {
	io, err := sys.NewFileIO(w, pr, fl.Engine)
	if err != nil {
		return nil, err
	}
	conn, err := b.stores[devIdx].NewConn(w, io)
	if err != nil {
		return nil, err
	}
	return &bpfkvServer{conn: conn}, nil
}

type bpfkvServer struct {
	conn *bpfkv.Conn
}

func (s *bpfkvServer) do(w *sim.Proc, key uint64, write bool) error {
	_, _, err := s.conn.Get(w, key)
	return err
}
