package frontend

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// workerOps is the calibrated per-worker service rate of the default
// fleet configuration (kvell over BypassD, requests/sec): the
// saturation anchor every builtin fleet and the T10 sweep size their
// offered load against. Measured at pool 8 over 2 devices, where the
// kvell slab serves one 1.5 KiB slot read per request in ~5µs
// end to end and scales linearly with the pool.
const workerOps = 190_000.0

// ServiceFleet builds the canonical service-tier fleet: a kvell-backed
// user population over BypassD with an offered load of frac times the
// pool's calibrated capacity and a 200µs sojourn SLO. The token
// bucket refills at 85% of capacity; CoDel derives its control-law
// constants from the SLO.
func ServiceFleet(policy Policy, frac float64, devices, pool int, users uint64, requests int) Fleet {
	capacity := workerOps * float64(pool)
	return Fleet{
		Name:      fmt.Sprintf("fleet-%s-%.1fx", policyLabel(policy), frac),
		Backend:   "kvell",
		Devices:   devices,
		Pool:      pool,
		Users:     users,
		Requests:  requests,
		RateOps:   frac * capacity,
		Admission: policy,
		TokenRate: 0.85 * capacity,
		SLO:       200 * sim.Microsecond,
		StoreKeys: 2048,
	}
}

func policyLabel(p Policy) string {
	if p == "" {
		return string(AdmitAll)
	}
	return string(p)
}

// PolicyName is the fleet's admission policy with the default made
// explicit.
func (fl Fleet) PolicyName() string { return policyLabel(fl.Admission) }

// Builtins lists the named fleets bypassd-bench can run directly: the
// three admission policies at 2x saturation, plus the diurnal and
// bursty load shapes at moderate load.
func Builtins() []Fleet {
	overload := func(p Policy) Fleet {
		return ServiceFleet(p, 2.0, 2, 8, 20_000, 30_000)
	}
	shaped := func(shape workload.Shape) Fleet {
		fl := ServiceFleet(AdmitCoDel, 0.8, 2, 8, 20_000, 30_000)
		fl.Name = "fleet-" + string(shape)
		fl.Shape = shape
		return fl
	}
	return []Fleet{
		overload(AdmitAll),
		overload(AdmitToken),
		overload(AdmitCoDel),
		shaped(workload.Diurnal),
		shaped(workload.Bursty),
	}
}

// ByName resolves a builtin fleet.
func ByName(name string) (Fleet, bool) {
	for _, fl := range Builtins() {
		if fl.Name == name {
			return fl, true
		}
	}
	return Fleet{}, false
}

// Load reads a fleet from a JSON file (the bypassd-bench -frontend
// config format; see EXPERIMENTS.md for the schema).
func Load(path string) (Fleet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Fleet{}, err
	}
	var fl Fleet
	if err := json.Unmarshal(data, &fl); err != nil {
		return Fleet{}, fmt.Errorf("frontend: %s: %w", path, err)
	}
	return fl, nil
}

// ReportTable renders a fleet run: one row per device plus a fleet
// row, with goodput, shed accounting, sojourn percentiles, SLO
// compliance, and user coverage.
func ReportTable(fl Fleet, res *Result) *stats.Table {
	fl = res.Fleet // the normalized fleet, defaults resolved
	tb := stats.NewTable(
		fmt.Sprintf("frontend: %s (%s over %s, %s admission, pool %d, %d users)",
			fl.Name, fl.Backend, fl.Engine, fl.PolicyName(), fl.Pool, fl.Users),
		"device", "offered", "admitted", "shed_%", "goodput_kops",
		"p50_us", "p99_us", "p999_us", "slo_met_%", "users", "peak_backlog", "bursts",
	)
	row := func(name string, offered, admitted, shed, completed, sloMet, users, bursts int64, h *stats.Histogram, start, end sim.Time, peak int) {
		s := h.Summarize()
		shedPct := 0.0
		if offered > 0 {
			shedPct = 100 * float64(shed) / float64(offered)
		}
		sloCol := "-"
		if res.Fleet.SLO > 0 && completed > 0 {
			sloCol = stats.Fmt(100 * float64(sloMet) / float64(completed))
		}
		tb.AddRow(
			name, offered, admitted, shedPct,
			stats.Throughput(completed, end-start)/1e3,
			float64(s.P50)/1e3, float64(s.P99)/1e3, float64(s.P999)/1e3,
			sloCol, users, peak, bursts,
		)
	}
	for _, d := range res.Devices {
		row(fmt.Sprintf("dev%d", d.Device), d.Offered, d.Admitted, d.Shed(), d.Completed,
			d.SLOMet, d.UsersServed, d.Bursts, d.Sojourn, d.Start, d.End, d.PeakBacklog)
	}
	start, end := res.Window()
	peak := 0
	for _, d := range res.Devices {
		if d.PeakBacklog > peak {
			peak = d.PeakBacklog
		}
	}
	row("fleet", res.Offered(), res.Admitted(), res.Shed(), res.Completed(),
		res.sum(func(d *DevResult) int64 { return d.SLOMet }), res.UsersServed(), res.Bursts(),
		res.Sojourn(), start, end, peak)
	return tb
}
