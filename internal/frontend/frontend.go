// Package frontend is the service tier above the shared-SSD fleet:
// it multiplexes millions of simulated users over a bounded pool of
// worker processes serving the repo's KV backends (WiredTiger, KVell,
// BPF-KV) end to end on the virtual clock.
//
// The paper's evaluation stops at processes sharing one device; this
// tier models the layer a real deployment puts on top — a front door
// that accepts an open-loop arrival stream (Zipf-skewed user
// popularity, diurnal or bursty load shapes, both from
// internal/workload), routes each request to the device that owns the
// user, and serves it through a worker process's own queue pair on
// that device. Because arrivals are open loop, the tier must decide
// what it cannot serve: admission control (token-bucket pacing,
// bounded backlogs, or CoDel-style sojourn-triggered dequeue drops)
// sheds load explicitly, so the fleet degrades by rejecting requests
// instead of by letting every admitted request's latency grow without
// bound.
//
// Determinism follows the tenants plane's contract: one fleet runs on
// one fresh simulation; each device's generator, admission state,
// fairness queues, and workers live on that device's event shard, and
// every random draw comes from a per-device rand.Source seeded from
// the fleet seed and the device index, consumed only by that device's
// generator. A fixed seed replays every arrival, shed decision, and
// completion instant exactly, at any host parallelism and any epoch
// worker count.
package frontend

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MaxPool bounds the worker pool: the whole point of the tier is that
// millions of users do not get millions of processes — they share a
// fixed fleet of queue pairs.
const MaxPool = 64

// fairnessClasses is the number of per-device fairness queues users
// hash into. Workers drain classes round-robin, so one hot user (or
// one hot fairness class) cannot monopolize a device's pool the way a
// single FIFO would let it.
const fairnessClasses = 32

// burstArrivals is the number of consecutive arrivals an injected
// tenant-storm spike compresses to a single instant (the tenancy
// plane's constant, so -faults tenant-storm stresses both tiers the
// same way).
const burstArrivals = 32

// Policy selects the admission-control policy at the front door.
type Policy string

// Supported admission policies.
const (
	// AdmitAll is the flat-admission baseline: every arrival is
	// enqueued, nothing is shed, and under overload the backlog — and
	// every admitted request's sojourn — grows without bound.
	AdmitAll Policy = "none"
	// AdmitToken paces admissions with a per-device token bucket
	// refilled at TokenRate: arrivals beyond the sustainable rate are
	// shed at the door, before they cost a queue slot.
	AdmitToken Policy = "token"
	// AdmitCoDel admits at the door but drops at dequeue when queueing
	// delay has exceeded its target for a full interval (CoDel's
	// control law), shedding exactly enough to pull sojourn back under
	// the target.
	AdmitCoDel Policy = "codel"
)

// ValidPolicy reports whether name is a supported admission policy
// ("" reads as AdmitAll).
func ValidPolicy(name Policy) bool {
	switch name {
	case "", AdmitAll, AdmitToken, AdmitCoDel:
		return true
	}
	return false
}

// Fleet describes one service-tier run: the user population, the
// offered load, the worker pool, and the admission policy in front of
// it. The zero values of optional fields read as the documented
// defaults.
type Fleet struct {
	Name string `json:"name"`

	// Backend selects the KV store every device serves: "wtiger",
	// "kvell", or "bpfkv".
	Backend string `json:"backend"`
	// Engine is the I/O interface worker processes use (default
	// bypassd). SPDK is rejected: it claims the device exclusively,
	// which a shared service tier cannot.
	Engine core.Engine `json:"engine,omitempty"`

	// Devices is the SSD count; users stripe across devices by
	// user % Devices (0 reads as 1).
	Devices int `json:"devices,omitempty"`
	// Pool is the total number of worker processes, striped
	// round-robin across devices. Each worker is its own kernel
	// process — own PASID, own queue pair(s) on its device.
	// 1 <= Pool <= MaxPool, Pool >= Devices.
	Pool int `json:"pool"`

	// Users is the distinct simulated user-ID population.
	Users uint64 `json:"users"`
	// Requests is the total number of arrivals to generate across the
	// fleet. Every user appears at least once when
	// Requests >= Users/(1-HotFrac) (the generator walks a bijective
	// permutation of each device's user partition underneath the
	// Zipf-hot traffic).
	Requests int `json:"requests"`
	// RateOps is the fleet-wide mean offered load, requests/sec.
	RateOps float64 `json:"rate_ops"`
	// Shape is the load shape over virtual time (steady, diurnal,
	// bursty; see workload.Shape).
	Shape workload.Shape `json:"shape,omitempty"`
	// HotFrac is the fraction of arrivals drawn from the Zipf
	// user-popularity distribution; the rest walk the user partition
	// for coverage. Default 0.2.
	HotFrac float64 `json:"hot_frac,omitempty"`
	// WriteFrac is the fraction of requests that are updates (bpfkv is
	// read-only and forces 0).
	WriteFrac float64 `json:"write_frac,omitempty"`

	// Admission is the policy at the front door (default AdmitAll).
	Admission Policy `json:"admission,omitempty"`
	// QueueCap bounds each device's admitted backlog; arrivals beyond
	// it are shed regardless of policy. 0 = unbounded (AdmitAll
	// ignores the cap: it is the no-admission baseline).
	QueueCap int `json:"queue_cap,omitempty"`
	// TokenRate is the fleet-wide token refill rate for AdmitToken,
	// requests/sec — set it just under measured capacity. Required
	// when Admission is "token".
	TokenRate float64 `json:"token_rate,omitempty"`
	// TokenBurst is the per-device bucket depth (default
	// 2 * per-device pool share, min 4).
	TokenBurst int `json:"token_burst,omitempty"`
	// SLO is the per-request sojourn target; 0 = none. AdmitCoDel
	// derives its control-law constants from it.
	SLO sim.Time `json:"slo_ns,omitempty"`

	// RouteNS is the dispatch cost a worker pays on the virtual clock
	// to claim and route one request (demux, user lookup, backend
	// handoff). Default 300ns; -1 = free.
	RouteNS sim.Time `json:"route_ns,omitempty"`

	// StoreKeys is the per-device backend key-space size (default
	// 4096). User IDs hash onto this key space: the tier serves a
	// large population over a bounded hot dataset.
	StoreKeys uint64 `json:"store_keys,omitempty"`
	// CacheFrac sizes the wtiger page cache as a fraction of the
	// store's data bytes (default 0.5); other backends ignore it.
	CacheFrac float64 `json:"cache_frac,omitempty"`
	// Arbiter is the per-device NVMe arbitration policy ("rr" default,
	// "wrr", "prio").
	Arbiter string `json:"arbiter,omitempty"`
}

// NumDevices is the fleet's device count with the default made
// explicit.
func (fl Fleet) NumDevices() int {
	if fl.Devices < 1 {
		return 1
	}
	return fl.Devices
}

// routeCost is the per-request dispatch cost with defaults resolved.
func (fl Fleet) routeCost() sim.Time {
	if fl.RouteNS < 0 {
		return 0
	}
	if fl.RouteNS == 0 {
		return 300 * sim.Nanosecond
	}
	return fl.RouteNS
}

// normalized validates the fleet and fills defaults.
func (fl Fleet) normalized() (Fleet, error) {
	ndev := fl.NumDevices()
	fl.Devices = ndev
	if fl.Pool < 1 || fl.Pool > MaxPool {
		return fl, fmt.Errorf("frontend: pool %d outside [1, %d]", fl.Pool, MaxPool)
	}
	if fl.Pool < ndev {
		return fl, fmt.Errorf("frontend: pool %d smaller than %d devices", fl.Pool, ndev)
	}
	if fl.Users < uint64(ndev) {
		return fl, fmt.Errorf("frontend: %d users cannot stripe across %d devices", fl.Users, ndev)
	}
	if fl.Requests < ndev {
		return fl, fmt.Errorf("frontend: %d requests across %d devices", fl.Requests, ndev)
	}
	if fl.RateOps <= 0 {
		return fl, fmt.Errorf("frontend: rate must be positive, got %g", fl.RateOps)
	}
	if !workload.ValidShape(fl.Shape) {
		return fl, fmt.Errorf("frontend: unknown load shape %q", fl.Shape)
	}
	if !ValidPolicy(fl.Admission) {
		return fl, fmt.Errorf("frontend: unknown admission policy %q", fl.Admission)
	}
	if fl.Admission == "" {
		fl.Admission = AdmitAll
	}
	if fl.Admission == AdmitToken && fl.TokenRate <= 0 {
		return fl, fmt.Errorf("frontend: token admission needs a positive token_rate")
	}
	if fl.HotFrac == 0 {
		fl.HotFrac = 0.2
	}
	if fl.HotFrac < 0 || fl.HotFrac >= 1 {
		return fl, fmt.Errorf("frontend: hot_frac %g outside [0, 1)", fl.HotFrac)
	}
	if fl.WriteFrac < 0 || fl.WriteFrac > 1 {
		return fl, fmt.Errorf("frontend: write_frac %g outside [0, 1]", fl.WriteFrac)
	}
	if fl.StoreKeys == 0 {
		fl.StoreKeys = 4096
	}
	if fl.CacheFrac <= 0 || fl.CacheFrac > 1 {
		fl.CacheFrac = 0.5
	}
	if fl.TokenBurst < 1 {
		fl.TokenBurst = 2 * (fl.Pool / ndev)
		if fl.TokenBurst < 4 {
			fl.TokenBurst = 4
		}
	}
	if fl.Engine == "" {
		fl.Engine = core.EngineBypassD
	}
	if fl.Engine == core.EngineSPDK {
		return fl, fmt.Errorf("frontend: spdk claims the device exclusively; the service tier needs a shared interface")
	}
	bk, err := backendByName(fl.Backend)
	if err != nil {
		return fl, err
	}
	if !bk.writable() {
		fl.WriteFrac = 0
	}
	return fl, nil
}

// DevResult is one device's slice of a fleet run.
type DevResult struct {
	Device int

	Offered     int64 // arrivals generated for this device
	Admitted    int64 // arrivals that entered the backlog
	ShedArrival int64 // rejected at the door (token / queue cap)
	ShedQueue   int64 // dropped at dequeue (CoDel)
	Completed   int64 // served end to end
	SLOMet      int64 // completed with sojourn <= SLO (when SLO > 0)
	UsersServed int64 // distinct users with >= 1 completed request
	Bursts      int64 // injected arrival spikes (faults.SiteTenantBurst)
	PeakBacklog int   // largest admitted backlog observed

	Start sim.Time // first arrival
	End   sim.Time // last completion

	// Sojourn is the arrival-to-completion distribution of completed
	// requests; shed requests do not appear (their cost is the shed
	// counters, not a latency sample).
	Sojourn *stats.Histogram
}

// Shed is the device's total rejected+dropped count.
func (d *DevResult) Shed() int64 { return d.ShedArrival + d.ShedQueue }

// Result aggregates a fleet run, per device and fleet-wide.
type Result struct {
	Fleet   Fleet
	Devices []*DevResult
}

// Offered is the fleet-wide arrival count.
func (r *Result) Offered() int64 { return r.sum(func(d *DevResult) int64 { return d.Offered }) }

// Admitted is the fleet-wide admitted count.
func (r *Result) Admitted() int64 { return r.sum(func(d *DevResult) int64 { return d.Admitted }) }

// Completed is the fleet-wide served count.
func (r *Result) Completed() int64 { return r.sum(func(d *DevResult) int64 { return d.Completed }) }

// Shed is the fleet-wide rejected+dropped count.
func (r *Result) Shed() int64 { return r.sum(func(d *DevResult) int64 { return d.Shed() }) }

// UsersServed is the fleet-wide distinct-user count over completed
// requests.
func (r *Result) UsersServed() int64 {
	return r.sum(func(d *DevResult) int64 { return d.UsersServed })
}

// Bursts is the fleet-wide injected-spike count.
func (r *Result) Bursts() int64 { return r.sum(func(d *DevResult) int64 { return d.Bursts }) }

func (r *Result) sum(f func(*DevResult) int64) int64 {
	var n int64
	for _, d := range r.Devices {
		n += f(d)
	}
	return n
}

// ShedPct is the shed fraction of offered load, in percent.
func (r *Result) ShedPct() float64 {
	if off := r.Offered(); off > 0 {
		return 100 * float64(r.Shed()) / float64(off)
	}
	return 0
}

// Window is the fleet's active span: first arrival to last
// completion.
func (r *Result) Window() (start, end sim.Time) {
	for i, d := range r.Devices {
		if i == 0 || (d.Start > 0 && d.Start < start) {
			start = d.Start
		}
		if d.End > end {
			end = d.End
		}
	}
	return start, end
}

// Goodput is completed requests/sec over the active window — the
// throughput the fleet actually delivered, after shedding.
func (r *Result) Goodput() float64 {
	start, end := r.Window()
	return stats.Throughput(r.Completed(), end-start)
}

// Sojourn merges the per-device sojourn histograms (device order, so
// the merge is deterministic).
func (r *Result) Sojourn() *stats.Histogram {
	h := stats.NewHistogram()
	for _, d := range r.Devices {
		h.Merge(d.Sojourn)
	}
	return h
}

// SLOCompliance is the fraction of completed requests inside the SLO,
// in percent; 100 when no SLO was set.
func (r *Result) SLOCompliance() float64 {
	if r.Fleet.SLO <= 0 {
		return 100
	}
	done := r.Completed()
	if done == 0 {
		return 100
	}
	return 100 * float64(r.sum(func(d *DevResult) int64 { return d.SLOMet })) / float64(done)
}

// request is one admitted arrival.
type request struct {
	at   sim.Time
	pidx uint64 // index into the device's user partition
	key  uint64
	write bool
}

// classQ is one fairness class's FIFO.
type classQ struct {
	q    []request
	head int
}

// devState is a device's generator→pool hand-off: fairness queues,
// admission state, and accounting. Only procs on the device's event
// shard touch it.
type devState struct {
	classes [fairnessClasses]classQ
	backlog int
	rr      int // next fairness class to scan
	genDone bool
	abort   bool
	more    *sim.Cond

	// Token bucket (AdmitToken).
	tokens   float64
	lastFill sim.Time

	// CoDel (AdmitCoDel).
	firstAbove sim.Time
	tripped    bool

	served []uint64 // bitset over the device's user partition
}

// dequeue pops the next request round-robin across fairness classes.
// Callers check backlog > 0 first.
func (ds *devState) dequeue() request {
	for {
		c := &ds.classes[ds.rr%fairnessClasses]
		ds.rr++
		if c.head < len(c.q) {
			req := c.q[c.head]
			c.head++
			if c.head == len(c.q) {
				c.q = c.q[:0]
				c.head = 0
			}
			ds.backlog--
			return req
		}
	}
}

// codelDrop runs the CoDel control law at dequeue: queueing delay
// above target for a full interval trips the controller; once
// tripped, every above-target request is shed and only requests still
// inside the target are served. Classic CoDel paces drops on a sqrt
// ramp and leaves drop mode the moment delay dips under target,
// relying on senders backing off — an open-loop front door gets no
// such help, and the fairness queues' round-robin dequeue order means
// one young request says nothing about the aged ones parked in other
// classes. So the tier sheds the whole excess while tripped and only
// re-arms when the backlog fully drains (see startWorker), the
// server-side CoDel adaptation.
func (ds *devState) codelDrop(now, at, target, interval sim.Time) bool {
	if ds.tripped {
		return now-at >= target
	}
	if now-at < target {
		ds.firstAbove = 0
		return false
	}
	if ds.firstAbove == 0 {
		ds.firstAbove = now + interval
		return false
	}
	if now >= ds.firstAbove {
		ds.tripped = true
		return true
	}
	return false
}

// partSize is the number of users device d owns under u % ndev
// striping.
func partSize(users uint64, ndev, d int) uint64 {
	n := users / uint64(ndev)
	if uint64(d) < users%uint64(ndev) {
		n++
	}
	return n
}

// reqShare is the number of arrivals device d generates.
func reqShare(requests, ndev, d int) int {
	n := requests / ndev
	if d < requests%ndev {
		n++
	}
	return n
}

// Run executes a fleet on one freshly booted system.
func Run(seed int64, fl Fleet) (*Result, error) {
	res, _, err := RunCountedWorkers(seed, fl, 1)
	return res, err
}

// RunWorkers is Run with the traffic phase executing on the given
// number of host workers (multi-device fleets only; the conservative
// epoch engine). Results are byte-identical at any worker count.
func RunWorkers(seed int64, fl Fleet, workers int) (*Result, error) {
	res, _, err := RunCountedWorkers(seed, fl, workers)
	return res, err
}

// RunCountedWorkers executes the fleet and additionally reports the
// number of simulator events dispatched (the throughput suite's
// numerator). Setup (mounts, store builds, pool processes) runs
// coupled; the epoch engine arms for the traffic phase on
// multi-device fleets, exactly like the tenants plane.
func RunCountedWorkers(seed int64, fl Fleet, workers int) (*Result, uint64, error) {
	fl, err := fl.normalized()
	if err != nil {
		return nil, 0, err
	}
	ndev := fl.Devices
	bk, err := backendByName(fl.Backend)
	if err != nil {
		return nil, 0, err
	}

	sys, err := core.NewN(bk.capacity(fl), ndev)
	if err != nil {
		return nil, 0, err
	}
	defer sys.Close()
	for _, n := range sys.M.Nodes {
		n.Dev.SetArbiter(device.ArbiterByName(fl.Arbiter))
	}

	res := &Result{Fleet: fl, Devices: make([]*DevResult, ndev)}
	states := make([]*devState, ndev)
	for d := 0; d < ndev; d++ {
		p := partSize(fl.Users, ndev, d)
		res.Devices[d] = &DevResult{Device: d, Sojourn: stats.NewHistogram()}
		states[d] = &devState{
			more:   sys.Sim.NewCond(),
			served: make([]uint64, (p+63)/64),
		}
	}

	var errMu sync.Mutex
	var runErr error
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}

	sys.Sim.Spawn("frontend-setup", func(p *sim.Proc) {
		// Coupled phase: per-device mounts, store builds, and the
		// worker-process pool, in device order.
		for d := 0; d < ndev; d++ {
			root := sys.NewProcessOn(ext4.Root, d)
			if err := root.Mkdir(p, "/frontend", 0o777); err != nil {
				fail(err)
				return
			}
			if err := bk.build(p, sys, d, fl); err != nil {
				fail(err)
				return
			}
			if err := root.Sync(p); err != nil {
				fail(err)
				return
			}
		}
		prs := make([]*kernel.Process, fl.Pool)
		for wi := 0; wi < fl.Pool; wi++ {
			prs[wi] = sys.NewProcessOn(ext4.Root, wi%ndev)
		}
		for d := 0; d < ndev; d++ {
			startDevice(sys, bk, fl, seed, d, states[d], res.Devices[d], fail)
		}
		for wi := 0; wi < fl.Pool; wi++ {
			startWorker(sys, bk, fl, wi, prs[wi], states[wi%ndev], res.Devices[wi%ndev], fail)
		}
		if ndev > 1 {
			sys.M.ArmParallel(workers)
		}
	})
	sys.Sim.Run()
	sys.M.DisarmParallel()
	if runErr != nil {
		return nil, 0, runErr
	}
	for d := 0; d < ndev; d++ {
		for _, word := range states[d].served {
			for ; word != 0; word &= word - 1 {
				res.Devices[d].UsersServed++
			}
		}
	}
	return res, sys.Sim.Processed(), nil
}

// startDevice spawns device d's arrival generator on its event shard.
// The generator owns the device's rng, its admission decisions, and
// its fairness queues' tails.
func startDevice(sys *core.System, bk backend, fl Fleet, seed int64, d int, ds *devState, dr *DevResult, fail func(error)) {
	shard := sys.M.Nodes[d].Shard
	ndev := fl.Devices
	part := partSize(fl.Users, ndev, d)
	reqs := reqShare(fl.Requests, ndev, d)
	mOffered := metrics.GetCounter("frontend_requests_total", "dev", fmt.Sprint(d))
	mShed := metrics.GetCounter("frontend_shed_total", "dev", fmt.Sprint(d))

	sys.Sim.SpawnOn(shard, fmt.Sprintf("frontend-gen-%d", d), func(g *sim.Proc) {
		rng := rand.New(rand.NewSource(seed*104729 + int64(d)*7919 + 29))
		stream, err := workload.NewStream(workload.StreamConfig{
			RateOps: fl.RateOps / float64(ndev),
			Shape:   fl.Shape,
		})
		if err != nil {
			fail(err)
			ds.genDone = true
			ds.more.Broadcast()
			return
		}
		zipf := workload.NewZipf(part, workload.DefaultZipfTheta)
		// Coverage walk: a seeded affine bijection over the device's
		// user partition, so the non-hot arrivals visit every user the
		// device owns before repeating.
		walkA := uint64(rng.Int63n(int64(part)))*2 + 1
		for gcd(walkA, part) != 1 {
			walkA += 2
		}
		walkB := uint64(rng.Int63n(int64(part)))
		var walkI, hotMark uint64

		tokenRate := fl.TokenRate / float64(ndev) // tokens/sec for this device
		ds.tokens = float64(fl.TokenBurst)
		inj := sys.M.Faults
		burst := 0
		for i := 0; i < reqs && !ds.abort; i++ {
			if burst > 0 {
				burst--
			} else {
				if gap := stream.Next(rng, g.Now()); gap > 0 {
					g.Sleep(gap)
				}
				if inj.Fire(faults.SiteTenantBurst) {
					burst = burstArrivals - 1
					dr.Bursts++
				}
			}
			now := g.Now()
			if dr.Start == 0 {
				dr.Start = now
			}
			// User pick: the deterministic hot cadence keeps the walk's
			// coverage guarantee exact at any seed.
			var pidx uint64
			if hot := uint64(float64(i+1) * fl.HotFrac); hot > hotMark {
				hotMark = hot
				pidx = zipf.NextScrambled(rng)
			} else {
				pidx = (walkA*walkI + walkB) % part
				walkI++
			}
			user := uint64(d) + uint64(ndev)*pidx
			write := fl.WriteFrac > 0 && rng.Float64() < fl.WriteFrac
			dr.Offered++
			mOffered.Inc()

			admit := true
			switch fl.Admission {
			case AdmitToken:
				ds.tokens += float64(now-ds.lastFill) * tokenRate / 1e9
				if ds.tokens > float64(fl.TokenBurst) {
					ds.tokens = float64(fl.TokenBurst)
				}
				ds.lastFill = now
				if fl.QueueCap > 0 && ds.backlog >= fl.QueueCap {
					admit = false
				} else if ds.tokens >= 1 {
					ds.tokens--
				} else {
					admit = false
				}
			case AdmitCoDel:
				admit = fl.QueueCap <= 0 || ds.backlog < fl.QueueCap
			}
			if !admit {
				dr.ShedArrival++
				mShed.Inc()
				continue
			}
			dr.Admitted++
			class := int((workload.Scramble(user) >> 32) % fairnessClasses)
			ds.classes[class].q = append(ds.classes[class].q, request{
				at:    now,
				pidx:  pidx,
				key:   workload.Scramble(user) % fl.StoreKeys,
				write: write,
			})
			ds.backlog++
			if ds.backlog > dr.PeakBacklog {
				dr.PeakBacklog = ds.backlog
			}
			ds.more.Signal()
		}
		ds.genDone = true
		ds.more.Broadcast()
	})
}

// startWorker spawns pool worker wi — its own kernel process and
// queue pair — on its device's event shard.
func startWorker(sys *core.System, bk backend, fl Fleet, wi int, pr *kernel.Process, ds *devState, dr *DevResult, fail func(error)) {
	d := wi % fl.Devices
	shard := sys.M.Nodes[d].Shard
	// CoDel constants, derived from the SLO. The controller's sojourn
	// sawtooth peaks near target + interval (delay grows ~1:1 with
	// time at overload until the interval hysteresis trips), so both
	// must fit inside the SLO with room for service time on top.
	target, interval := fl.SLO/4, fl.SLO/2
	if fl.SLO <= 0 {
		target = 50 * sim.Microsecond
		interval = 100 * sim.Microsecond
	}
	route := fl.routeCost()
	mDone := metrics.GetCounter("frontend_completed_total", "dev", fmt.Sprint(d))
	mShed := metrics.GetCounter("frontend_shed_total", "dev", fmt.Sprint(d))
	mSojourn := metrics.GetHistogram("frontend_sojourn_ns", "dev", fmt.Sprint(d))

	sys.Sim.SpawnOn(shard, fmt.Sprintf("frontend-w%d", wi), func(w *sim.Proc) {
		abort := func(err error) {
			fail(err)
			ds.abort = true
			ds.more.Broadcast()
		}
		srv, err := bk.newServer(w, sys, pr, d, fl)
		if err != nil {
			abort(err)
			return
		}
		for !ds.abort {
			if ds.backlog > 0 {
				req := ds.dequeue()
				if fl.Admission == AdmitCoDel && ds.codelDrop(w.Now(), req.at, target, interval) {
					dr.ShedQueue++
					mShed.Inc()
					continue
				}
				if route > 0 {
					w.Sleep(route)
				}
				if err := srv.do(w, req.key, req.write); err != nil {
					abort(fmt.Errorf("frontend: worker %d: %w", wi, err))
					return
				}
				now := w.Now()
				soj := now - req.at
				dr.Sojourn.Add(soj)
				dr.Completed++
				mDone.Inc()
				mSojourn.Observe(soj)
				if fl.SLO > 0 && soj <= fl.SLO {
					dr.SLOMet++
				}
				ds.served[req.pidx/64] |= 1 << (req.pidx % 64)
				if now > dr.End {
					dr.End = now
				}
				continue
			}
			// Empty queue: the overload (if any) has drained; re-arm the
			// CoDel controller.
			ds.tripped, ds.firstAbove = false, 0
			if ds.genDone {
				return
			}
			ds.more.Wait(w)
		}
	})
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
