package kernel

import (
	"repro/internal/ext4"
	"repro/internal/sim"
)

// Rename moves a file. The inode is stable, so BypassD mappings of
// the moved file remain valid across the rename.
func (pr *Process) Rename(p *sim.Proc, oldPath, newPath string) error {
	oldPath, err := pr.resolve(oldPath)
	if err != nil {
		return err
	}
	newPath, err = pr.resolve(newPath)
	if err != nil {
		return err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, pr.M.Cfg.OpenCost)
	return pr.node.FS.Rename(p, oldPath, newPath, pr.Cred)
}

// Relink atomically grafts the staging file's blocks onto the end of
// the target — SplitFS's relink, the §5.1 alternative fast-append
// mechanism. One metadata operation moves any amount of staged data;
// no bytes are copied.
func (pr *Process) Relink(p *sim.Proc, stagingFD, targetFD int) error {
	src, err := pr.fd(stagingFD)
	if err != nil {
		return err
	}
	dst, err := pr.fd(targetFD)
	if err != nil {
		return err
	}
	if !src.Writable || !dst.Writable {
		return ext4.ErrPerm
	}
	pr.enter(p)
	defer pr.exit(p)
	m := pr.M

	// Order the inode write locks by (device, number) to avoid
	// deadlock. Both descriptors were opened on pr's node, but the
	// ordering key is the machine-wide identity regardless.
	a, b := src.Ino, dst.Ino
	if a.Dev > b.Dev || (a.Dev == b.Dev && a.Ino > b.Ino) {
		a, b = b, a
	}
	la := m.writeLock(a)
	la.Acquire(p)
	var lb *sim.Resource
	if a != b {
		lb = m.writeLock(b)
		lb.Acquire(p)
	}
	defer func() {
		if lb != nil {
			lb.Release()
		}
		la.Release()
	}()

	// Relink is pure metadata: charge one VFS traversal.
	pr.vfsCharge(p, 0)
	if err := pr.node.FS.Relink(p, src.Ino, dst.Ino); err != nil {
		return err
	}
	// The staging file's mappings must stop resolving; the target's
	// grow in place.
	m.invalidateMappings(src.Ino)
	m.syncGrowth(dst.Ino)
	return nil
}
