package kernel

import (
	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/nvme"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// The BypassD kernel module: creates user-mapped queue pairs bound to
// the process PASID, registers DMA buffers, services fmap(), and
// implements revocation (paper §3.3, §3.6, §4.1).

// CreateUserQueue allocates a device queue pair, links it to the
// process's PASID, and "maps" it into userspace (the returned pair is
// used by UserLib without further kernel involvement).
func (pr *Process) CreateUserQueue(p *sim.Proc, depth int) (*nvme.QueuePair, error) {
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, 2*sim.Microsecond) // one-time setup cost
	q, err := pr.node.Dev.CreateQueue(pr.PASID, depth)
	if err != nil {
		return nil, err
	}
	// The queue inherits the process's tenant class at registration
	// time, the only moment the kernel sees a BypassD queue (§3.7).
	q.QoS = pr.QoS
	return q, nil
}

// AllocDMABuffer returns a pinned buffer UserLib uses for device
// transfers. Allocation happens once at library initialization, like
// SPDK's hugepage pool (paper §3.3).
func (pr *Process) AllocDMABuffer(p *sim.Proc, size int) []byte {
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, 1*sim.Microsecond)
	buf := device.GetDMABuf(size)
	// Track for recycling at machine teardown (core.System.Close).
	pr.M.mu.Lock()
	pr.M.dmaBufs = append(pr.M.dmaBufs, buf)
	pr.M.mu.Unlock()
	return buf
}

// OpenBypass opens path intending BypassD-interface access: the open
// is forwarded to the kernel and an fmap() follows (paper Table 3).
// If the kernel declines the fmap (VBA 0), the descriptor remains
// usable through the kernel interface — co-existence principle 4.
func (pr *Process) OpenBypass(p *sim.Proc, path string, write bool) (fd int, base uint64, err error) {
	path, err = pr.resolve(path)
	if err != nil {
		return 0, 0, err
	}
	pr.enter(p)
	m := pr.M
	m.CPU.Compute(p, m.Cfg.OpenCost)
	in, err := pr.node.FS.Lookup(p, path, pr.Cred)
	if err != nil {
		pr.exit(p)
		return 0, 0, err
	}
	if in.IsDir() {
		pr.exit(p)
		return 0, 0, ext4.ErrIsDir
	}
	if err := pr.node.FS.Access(in, pr.Cred, write); err != nil {
		pr.exit(p)
		return 0, 0, err
	}
	fd = pr.installFD(in, path, write)
	pr.exit(p)

	base, err = pr.Fmap(p, fd)
	if err != nil {
		return 0, 0, err
	}
	if base == 0 {
		// Kernel declined direct access: fall back to the kernel
		// interface on the same descriptor.
		in.KernelOpens++
	}
	return fd, base, nil
}

// Fmap maps the file's blocks into the process address space and
// attaches the shared file-table fragments (paper §3.2, §4.1). It
// returns the starting VBA, or 0 if the file is not eligible for
// direct access (revoked, or concurrently open through the kernel
// interface).
func (pr *Process) Fmap(p *sim.Proc, fd int) (uint64, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	m := pr.M
	pr.enter(p)
	defer pr.exit(p)

	in := f.Ino
	m.mu.Lock()
	rev := m.revoked[ikey(in)]
	m.mu.Unlock()
	if rev || in.KernelOpens > 0 {
		return 0, nil // VBA 0: use the kernel interface (paper §3.6)
	}
	if m.Faults.Fire(faults.SiteKernelFmapZero) {
		// Injected policy denial: the kernel declines direct access
		// this time; the caller uses the kernel interface.
		return 0, nil
	}
	if f.Bypass != nil {
		if !f.Bypass.Revoked {
			return f.Bypass.Base, nil // already mapped
		}
		// The descriptor still points at an attachment withdrawn by a
		// Revoke; re-map instead of returning the stale (detached)
		// base. The open-count the new attachment adds below replaces
		// the one the dead attachment still holds.
		f.Bypass = nil
		in.BypassOpens--
	}

	ft, built := pr.node.FS.FileTable(in)
	if built {
		// Cold fmap: population of the file table entries dominates
		// (Table 5 fit: ~5 ns per PTE + extent-tree setup).
		m.CPU.Compute(p, m.Cfg.FmapColdBase+sim.Time(ft.PTEs())*m.Cfg.FmapPerPTE)
	}
	span := ft.SpanBytes() // bytes actually covered by fragments
	// Reserve virtual headroom so in-place growth can attach new
	// fragments without moving the mapping (paper §4.1).
	reserved := 4 * span
	if reserved < 64<<20 {
		reserved = 64 << 20
	}
	base := pr.allocVBA(reserved)
	updates, err := ft.Attach(pr.Table, base, f.Writable)
	if err != nil {
		return 0, err
	}
	// Hardware discipline: every page-table splice is followed by an
	// IOMMU invalidation so no translation cache (IOTLB or the
	// paging-structure cache) can serve a path from before the update.
	m.invalidateRange(pr.node, pr.PASID, base, int64(span))
	// Warm fmap: a handful of pointer updates (Table 5 fit).
	m.CPU.Compute(p, m.Cfg.FmapBase+sim.Time(updates)*m.Cfg.FmapPerPMD)

	att := &Attachment{Proc: pr, key: ikey(in), Base: base, Span: span, Reserved: reserved, Writable: f.Writable}
	f.Bypass = att
	m.mu.Lock()
	m.attachments[att.key] = append(m.attachments[att.key], att)
	m.mu.Unlock()
	in.BypassOpens++
	return base, nil
}

// detachRegion removes every fragment pointer in [base, base+span),
// working even when the shared file table itself has been evicted.
func detachRegion(t *pagetable.Table, base, span uint64) {
	for off := uint64(0); off < span; off += pagetable.PMDSpan {
		t.DetachPMD(base + off)
	}
}

// funmap detaches one attachment (close path).
func (m *Machine) funmap(att *Attachment) {
	if !att.Revoked {
		if att.Region {
			m.regionDetach(att)
		} else {
			detachRegion(att.Proc.Table, att.Base, att.Span)
			m.invalidateRange(att.Proc.node, att.Proc.PASID, att.Base, int64(att.Span))
		}
	}
	m.removeAttachment(att)
}

func (m *Machine) removeAttachment(att *Attachment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.attachments[att.key]
	for i, a := range list {
		if a == att {
			m.attachments[att.key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(m.attachments[att.key]) == 0 {
		delete(m.attachments, att.key)
	}
}

// Revoke withdraws every process's direct access to the file: detach
// the FTEs and invalidate IOMMU state. Subsequent userspace I/O
// faults; UserLib re-issues fmap(), receives VBA 0, and falls back to
// the kernel interface (paper §3.6).
func (m *Machine) Revoke(in *ext4.Inode) {
	k := ikey(in)
	m.mu.Lock()
	m.revoked[k] = true
	list := m.attachments[k]
	delete(m.attachments, k)
	m.mu.Unlock()
	for _, att := range list {
		if att.Region {
			m.regionDetach(att)
		} else {
			detachRegion(att.Proc.Table, att.Base, att.Span)
			m.invalidateRange(att.Proc.node, att.Proc.PASID, att.Base, int64(att.Span))
		}
		att.Revoked = true
	}
}

// syncGrowth attaches newly created file-table fragments into every
// process that has the file mapped, extending the mapping in place.
// Growth within an existing 2 MiB fragment is already visible through
// the shared fragment; only fragment-boundary crossings need pointer
// updates. If a mapping's reserved region is exhausted, direct access
// is revoked and the process falls back to the kernel interface.
func (m *Machine) syncGrowth(in *ext4.Inode) {
	var ft *pagetable.FileTable
	var newSpan uint64
	var frags []*pagetable.Node
	if in.HasFileTable() {
		ft, _ = m.node(in).FS.FileTable(in)
		newSpan = ft.SpanBytes()
		frags = ft.Fragments()
	}
	var exhausted bool
	m.mu.Lock()
	list := append([]*Attachment(nil), m.attachments[ikey(in)]...)
	m.mu.Unlock()
	for _, att := range list {
		if att.Region {
			m.regionSync(in, att)
			continue
		}
		if ft == nil || newSpan <= att.Span {
			continue
		}
		if newSpan > att.Reserved {
			exhausted = true
			continue
		}
		for i := int(att.Span / pagetable.PMDSpan); i < len(frags); i++ {
			va := att.Base + uint64(i)*pagetable.PMDSpan
			if _, err := att.Proc.Table.AttachPMD(va, frags[i], att.Writable); err != nil {
				exhausted = true
				break
			}
		}
		// Invalidate the grown tail: like Fmap, an attach is a
		// page-table update and must not leave stale cached paths.
		m.invalidateRange(att.Proc.node, att.Proc.PASID, att.Base+att.Span, int64(newSpan-att.Span))
		att.Span = newSpan
	}
	if exhausted {
		m.Revoke(in)
	}
}

// invalidateMappings drops IOMMU translations for a file whose block
// layout changed (truncate); page-table FTEs were already updated via
// the shared fragments, while extent-table mappings re-register.
func (m *Machine) invalidateMappings(in *ext4.Inode) {
	m.mu.Lock()
	list := append([]*Attachment(nil), m.attachments[ikey(in)]...)
	m.mu.Unlock()
	for _, att := range list {
		if att.Region {
			m.regionSync(in, att)
			continue
		}
		m.invalidateRange(att.Proc.node, att.Proc.PASID, att.Base, int64(att.Span))
	}
}

// Restore lifts a revocation: subsequent fmap() calls may grant
// direct access again. Existing attachments stay detached — each
// process re-attaches on its next fault via the refmap path (§3.6).
func (m *Machine) Restore(in *ext4.Inode) {
	m.mu.Lock()
	delete(m.revoked, ikey(in))
	m.mu.Unlock()
}

// Revoked reports whether direct access to the inode is currently
// revoked (tests, Fig. 12 harness).
func (m *Machine) Revoked(in *ext4.Inode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.revoked[ikey(in)]
}
