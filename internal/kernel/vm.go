package kernel

import (
	"errors"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/iommu"
	"repro/internal/sim"
)

// Virtual machines (paper §5.2): the host carves an SR-IOV virtual
// function out of the SSD (block-level isolation) and hands it to a
// guest, which boots its own kernel, file system, and IOMMU context
// over the VF. Guest processes then use the BypassD interface exactly
// as on bare metal; the IOMMU performs a *nested* translation (guest
// VBA → guest LBA → host LBA), modelled as extra walk latency plus
// the VF's window shift at the device.
//
// As in the paper, file sharing across VMs is impossible: isolation
// is at the block level, below the file system.

// NewGuestMachine boots a guest over vf. The guest shares the host's
// CPU cores; nested is the extra VBA translation cost of the
// second-level walk (0 for the paper's ~550 ns single-level model; a
// few hundred ns is realistic for nested paging).
func NewGuestMachine(s *sim.Sim, cfg Config, host *Machine, vf *device.SSD, nested sim.Time) (*Machine, error) {
	m := &Machine{
		Sim:         s,
		CPU:         host.CPU, // guests timeshare the host's cores
		Cfg:         cfg,
		nodeByDev:   make(map[uint8]*DevNode, 1),
		attachments: make(map[inoKey][]*Attachment),
		revoked:     make(map[inoKey]bool),
		writeLocks:  make(map[inoKey]*sim.Resource),
		nextPASID:   100,
	}
	m.Dev = vf

	icfg := iommu.DefaultConfig()
	icfg.WalkLatency += nested
	icfg.MinTranslation += nested
	m.MMU = iommu.New(icfg)
	vf.AttachIOMMU(m.MMU)

	// Boot the guest file system inside the VF window, formatting on
	// first boot. The guest's clock is its VF's shard clock (the VF
	// shares its parent device's event shard).
	clock := s.ShardClock(vf.Config().Shard)
	boot := &ext4.Direct{St: vf.WindowedStore()}
	fs, err := ext4.Mount(nil, boot, vf.Config().DevID, clock)
	if err != nil {
		if !errors.Is(err, ext4.ErrBadFS) {
			return nil, err
		}
		if err := ext4.Mkfs(boot, ext4.DefaultOptions(vf.Config().CapacityBytes, vf.Config().DevID)); err != nil {
			return nil, err
		}
		if fs, err = ext4.Mount(nil, boot, vf.Config().DevID, clock); err != nil {
			return nil, err
		}
	}
	m.FS = fs

	q, err := vf.CreateQueue(0, 4096)
	if err != nil {
		return nil, err
	}
	// The guest is a one-node topology over its VF; guest procs share
	// the host's event shard (the VF is carved from the host device).
	n := &DevNode{Index: 0, Shard: vf.Config().Shard, MMU: m.MMU, Dev: vf, FS: fs}
	n.kq = &kernelQueue{m: m, n: n, q: q, waiters: make(map[uint16]*waiter)}
	fs.SetBlockIO(&kernelBIO{m: m, n: n})
	m.Nodes = []*DevNode{n}
	m.nodeByDev[vf.Config().DevID] = n
	m.kq = n.kq
	return m, nil
}
