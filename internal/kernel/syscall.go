package kernel

import (
	"fmt"

	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/sim"
)

// injectRevoke evaluates the revocation-storm site on a kernel entry
// that names an inode: when it fires, the kernel withdraws every
// process's direct access to the file, exactly as a policy revocation
// would (paper §3.6). UserLib recovers via refmap or falls back.
func (pr *Process) injectRevoke(f *FD) {
	if pr.M.Faults.Fire(faults.SiteKernelRevoke) {
		pr.M.Revoke(f.Ino)
	}
}

// pages returns the page count of an I/O for the per-page VFS cost.
func pages(n int) sim.Time {
	if n <= ext4.BlockSize {
		return 0
	}
	return sim.Time((n - 1) / ext4.BlockSize)
}

// vfsCharge charges the VFS+ext4 data-path cost for an n-byte I/O.
func (pr *Process) vfsCharge(p *sim.Proc, n int) {
	m := pr.M
	m.CPU.Compute(p, m.Cfg.VFSCost+pages(n)*m.Cfg.VFSPerPage)
}

// Pread reads through the synchronous kernel path (O_DIRECT
// semantics: DMA lands in the user buffer, no page-cache copy).
func (pr *Process) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.injectRevoke(f)
	pr.vfsCharge(p, len(buf))
	return pr.node.FS.ReadAt(p, f.Ino, off, buf)
}

// Pwrite writes through the synchronous kernel path. Appends (writes
// extending the file) allocate blocks and attach new FTEs via the
// shared file table, then go straight to the device without buffering
// (paper Table 3).
func (pr *Process) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	if !f.Writable {
		return 0, ext4.ErrPerm
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.injectRevoke(f)
	// ext4 holds the inode's i_rwsem exclusively across direct-I/O
	// write submission, serializing concurrent writers to one file.
	lock := pr.M.writeLock(f.Ino)
	lock.Acquire(p)
	pr.vfsCharge(p, len(data))
	n, err := pr.node.FS.WriteAt(p, f.Ino, off, data)
	pr.M.syncGrowth(f.Ino)
	lock.Release()
	return n, err
}

// Read reads at the descriptor offset, advancing it.
func (pr *Process) Read(p *sim.Proc, fd int, buf []byte) (int, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	n, err := pr.Pread(p, fd, buf, f.Offset)
	f.Offset += int64(n)
	return n, err
}

// Write writes at the descriptor offset, advancing it.
func (pr *Process) Write(p *sim.Proc, fd int, data []byte) (int, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	n, err := pr.Pwrite(p, fd, data, f.Offset)
	f.Offset += int64(n)
	return n, err
}

// Fallocate preallocates zeroed blocks up to size (paper §5.1's
// optimized-append primitive; Table 3 row fallocate).
func (pr *Process) Fallocate(p *sim.Proc, fd int, size int64) error {
	f, err := pr.fd(fd)
	if err != nil {
		return err
	}
	if !f.Writable {
		return ext4.ErrPerm
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.vfsCharge(p, 0)
	if err := pr.node.FS.Fallocate(p, f.Ino, size); err != nil {
		return err
	}
	pr.M.syncGrowth(f.Ino)
	return nil
}

// Ftruncate resizes the file; shrinking detaches FTEs for the freed
// blocks in every process that has the file mapped.
func (pr *Process) Ftruncate(p *sim.Proc, fd int, size int64) error {
	f, err := pr.fd(fd)
	if err != nil {
		return err
	}
	if !f.Writable {
		return ext4.ErrPerm
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.vfsCharge(p, 0)
	if err := pr.node.FS.Truncate(p, f.Ino, size); err != nil {
		return err
	}
	// Invalidate any cached IOMMU translations for truncated pages.
	pr.M.invalidateMappings(f.Ino)
	return nil
}

// Fsync flushes device queues and commits metadata — the sync point
// of paper §3.6. Deferred timestamps are applied first (paper §4.4).
func (pr *Process) Fsync(p *sim.Proc, fd int) error {
	f, err := pr.fd(fd)
	if err != nil {
		return err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.injectRevoke(f)
	if f.timesDirty {
		f.Ino.Mtime = p.Now()
		f.timesDirty = false
	}
	return pr.node.FS.Fsync(p, f.Ino)
}

// Sync is sync(2): flush the device and commit all dirty metadata.
func (pr *Process) Sync(p *sim.Proc) error {
	pr.enter(p)
	defer pr.exit(p)
	return pr.node.FS.Sync(p)
}

// Stat returns file metadata.
func (pr *Process) Stat(p *sim.Proc, path string) (*ext4.Inode, error) {
	path, err := pr.resolve(path)
	if err != nil {
		return nil, err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, pr.M.Cfg.OpenCost/2)
	return pr.node.FS.Lookup(p, path, pr.Cred)
}

// MarkTimesDirty records that a BypassD-interface data operation
// touched the file; the timestamp lands at close/fsync.
func (f *FD) MarkTimesDirty() { f.timesDirty = true }

// Size reports the inode's current size (UserLib tracks this to route
// appends to the kernel).
func (f *FD) Size() int64 { return f.Ino.Size }

// String implements fmt.Stringer for diagnostics.
func (f *FD) String() string {
	return fmt.Sprintf("fd{%s ino=%d size=%d bypass=%v}", f.Path, f.Ino.Ino, f.Ino.Size, f.Bypass != nil)
}
