package kernel

import (
	"fmt"

	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
)

// XRP baseline (Zhong et al., OSDI '22): a BPF function installed at
// the NVMe driver's completion hook parses each returned block and
// resubmits the next I/O of a chain directly from the driver, so a
// multi-hop traversal (B-tree descent) pays the syscall and
// VFS/block-layer costs only once. BypassD compares against it in
// Figs. 13-15.

// ChainFn inspects the buffer returned by step i and names the next
// read, or reports completion. Offsets are file-relative bytes and
// must be sector aligned (XRP only supports fixed on-disk layouts).
type ChainFn func(step int, buf []byte) (nextOff, nextLen int64, done bool)

// XRPChain performs a chained read: the first I/O traverses the full
// kernel path; each subsequent I/O costs one BPF execution plus a
// driver resubmission (no VFS, no block layer, no mode switches).
// buf must hold the largest step; each step's data is left in
// buf[:len] when fn runs. It returns the number of I/Os issued.
func (pr *Process) XRPChain(p *sim.Proc, fd int, off, length int64, buf []byte, fn ChainFn) (int, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	m := pr.M
	pr.enter(p)
	defer pr.exit(p)

	// First submission: full stack.
	pr.vfsCharge(p, int(length))
	m.CPU.Compute(p, m.Cfg.BlockLayer+m.Cfg.DriverSubmit)

	steps := 0
	// Chain steps consume segs synchronously before the next resolve,
	// so one scratch buffer serves the whole traversal.
	var segs []sectorSeg
	for {
		if off%storage.SectorSize != 0 || length%storage.SectorSize != 0 || length <= 0 {
			return steps, fmt.Errorf("kernel: xrp requires sector-aligned chain steps")
		}
		if off+length > f.Ino.Size {
			return steps, fmt.Errorf("kernel: xrp read beyond EOF (off=%d len=%d size=%d)", off, length, f.Ino.Size)
		}
		segs, err = resolveSectorsInto(segs, f.Ino, off, length)
		if err != nil {
			return steps, err
		}
		bufOff := int64(0)
		for _, s := range segs {
			n := s.Sectors * storage.SectorSize
			st := pr.node.kq.submitRetry(p, nvme.SQE{
				Opcode:  nvme.OpRead,
				SLBA:    s.Sector,
				Sectors: s.Sectors,
				Buf:     buf[bufOff : bufOff+n],
			})
			if !st.OK() {
				return steps, fmt.Errorf("kernel: xrp read at sector %d on %s: %v",
					s.Sector, pr.node.Dev.Config().Name, st)
			}
			bufOff += n
		}
		steps++

		nextOff, nextLen, done := fn(steps-1, buf[:length])
		if done {
			return steps, nil
		}
		// Resubmission from the driver completion hook.
		m.CPU.Compute(p, m.Cfg.XRPBpfExec+m.Cfg.DriverSubmit)
		off, length = nextOff, nextLen
	}
}
