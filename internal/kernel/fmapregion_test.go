package kernel

import (
	"bytes"
	"testing"

	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
)

func TestFmapRegionBasicAccess(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	data := make([]byte, 16384)
	for i := range data {
		data[i] = byte(i / 7)
	}
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", data)
		fd, err := openNoFmap(p, pr, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		base, err := pr.FmapRegion(p, fd)
		if err != nil || base == 0 {
			t.Errorf("FmapRegion: base=%d err=%v", base, err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + 8192, Sectors: 8, Buf: buf}); err != nil {
			t.Error(err)
			return
		}
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("region read: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		if !bytes.Equal(buf, data[8192:12288]) {
			t.Error("region-mapped read returned wrong data")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestFmapRegionMuchCheaperThanColdFmap(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	const size = 256 << 20
	var coldPT, coldRegion sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		fd, err := pr.Create(p, "/big", 0o666)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, size); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)
		in, _ := m.FS.Lookup(p, "/big", ext4.Root)
		in.DropFileTable()

		// Page-table cold fmap.
		pr2 := m.NewProcess(ext4.Root)
		fd2, _ := openNoFmap(p, pr2, "/big")
		start := p.Now()
		if b, err := pr2.Fmap(p, fd2); err != nil || b == 0 {
			t.Errorf("fmap: %v", err)
			return
		}
		coldPT = p.Now() - start

		// Extent-table registration.
		pr3 := m.NewProcess(ext4.Root)
		fd3, _ := openNoFmap(p, pr3, "/big")
		start = p.Now()
		if b, err := pr3.FmapRegion(p, fd3); err != nil || b == 0 {
			t.Errorf("fmapRegion: %v", err)
			return
		}
		coldRegion = p.Now() - start
	})
	s.Run()
	// Table 5: 256MB cold fmap ≈ 334µs; extent registration is O(1)
	// for a contiguous file: two orders of magnitude cheaper.
	if coldRegion*50 > coldPT {
		t.Fatalf("region fmap %v not ≫ cheaper than page-table cold fmap %v", coldRegion, coldPT)
	}
	s.Shutdown()
}

func TestFmapRegionPermissionAndRevocation(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	other := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, 8192))
		fd, _ := openNoFmap(p, pr, "/f")
		// Read-only region: writes denied.
		base, err := pr.FmapRegion(p, fd)
		if err != nil || base == 0 {
			t.Errorf("FmapRegion: %v", err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		do := func(op nvme.Opcode, vba uint64) nvme.Status {
			_ = q.Submit(nvme.SQE{Opcode: op, CID: 7, UseVBA: true, VBA: vba, Sectors: 8, Buf: buf})
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status
				}
				q.CQReady.Wait(p)
			}
		}
		if st := do(nvme.OpWrite, base); st != nvme.StatusAccessDenied {
			t.Errorf("write on RO region = %v, want access-denied", st)
			return
		}
		// Beyond the file: fault.
		if st := do(nvme.OpRead, base+1<<20); st != nvme.StatusTranslationFault {
			t.Errorf("read past region = %v, want translation-fault", st)
			return
		}
		// Revocation: kernel-interface open unregisters the region.
		if _, err := other.Open(p, "/f", false); err != nil {
			t.Error(err)
			return
		}
		if st := do(nvme.OpRead, base); st != nvme.StatusTranslationFault {
			t.Errorf("post-revocation region read = %v, want translation-fault", st)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestFmapRegionGrowth(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/grow", make([]byte, 4096))
		fd, err := pr.Open(p, "/grow", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Temporarily treat the fd as direct-access for the region map.
		f, _ := pr.FDInfo(fd)
		f.Ino.KernelOpens--
		base, err := pr.FmapRegion(p, fd)
		if err != nil || base == 0 {
			t.Errorf("FmapRegion: %v", err)
			return
		}
		// Grow via the kernel (append): region must re-register.
		if _, err := pr.Pwrite(p, fd, make([]byte, 8192), 4096); err != nil {
			t.Error(err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + 8192, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("read of grown region: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
	})
	s.Run()
	s.Shutdown()
}
