package kernel

import (
	"repro/internal/ext4"
	"repro/internal/iommu"
	"repro/internal/sim"
)

// FmapRegion: the §5.1 "alternate data structures" variant of fmap().
// Instead of populating page-table FTEs (O(pages), the dominant cost
// of a cold fmap on large files — Table 5), the kernel registers the
// file's extent list with the IOMMU's extent-table walker: O(extents)
// registration, typically a handful of entries.

// fmapRegionPerExtent is the registration cost per extent.
const fmapRegionPerExtent = 20 * sim.Nanosecond

// regionSegs converts an inode's extent map to IOMMU segments.
func regionSegs(in *ext4.Inode) []iommu.RegionSeg {
	segs := make([]iommu.RegionSeg, 0, len(in.Extents))
	for _, e := range in.Extents {
		segs = append(segs, iommu.RegionSeg{
			Off:    uint64(e.FileBlock) * ext4.BlockSize,
			Sector: int64(e.Start) * ext4.SectorsPerBlock,
			Bytes:  int64(e.Count) * ext4.BlockSize,
		})
	}
	return segs
}

// FmapRegion maps the file via an IOMMU extent table and returns the
// starting VBA (0 when direct access is not permitted, exactly like
// Fmap).
func (pr *Process) FmapRegion(p *sim.Proc, fd int) (uint64, error) {
	f, err := pr.fd(fd)
	if err != nil {
		return 0, err
	}
	m := pr.M
	pr.enter(p)
	defer pr.exit(p)

	in := f.Ino
	m.mu.Lock()
	rev := m.revoked[ikey(in)]
	m.mu.Unlock()
	if rev || in.KernelOpens > 0 {
		return 0, nil
	}
	if f.Bypass != nil {
		return f.Bypass.Base, nil
	}

	span := uint64(in.AllocatedBlocks()) * ext4.BlockSize
	reserved := 4 * span
	if reserved < 64<<20 {
		reserved = 64 << 20
	}
	base := pr.allocVBA(reserved)
	segs := regionSegs(in)
	m.CPU.Compute(p, m.Cfg.FmapBase+sim.Time(len(segs))*fmapRegionPerExtent)
	if err := m.registerRegion(pr.node, pr.PASID, pr.node.Dev.Config().DevID, base, reserved, f.Writable, segs); err != nil {
		return 0, err
	}

	att := &Attachment{
		Proc: pr, key: ikey(in), Base: base, Span: span, Reserved: reserved,
		Writable: f.Writable, Region: true,
	}
	f.Bypass = att
	m.mu.Lock()
	m.attachments[att.key] = append(m.attachments[att.key], att)
	m.mu.Unlock()
	in.BypassOpens++
	return base, nil
}

// registerRegion installs an extent-table mapping, mirroring the
// PASID discipline: coupled phases program every node's agent, an
// armed phase stays on the owning node's shard.
func (m *Machine) registerRegion(owner *DevNode, pasid uint32, devID uint8, base, reserved uint64, writable bool, segs []iommu.RegionSeg) error {
	if m.Sim.ParallelArmed() {
		return owner.MMU.RegisterRegion(pasid, devID, base, reserved, writable, segs)
	}
	var first error
	for _, n := range m.Nodes {
		if err := n.MMU.RegisterRegion(pasid, devID, base, reserved, writable, segs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// regionDetach tears down an extent-table mapping.
func (m *Machine) regionDetach(att *Attachment) {
	if m.Sim.ParallelArmed() {
		att.Proc.node.MMU.UnregisterRegion(att.Proc.PASID, att.Base)
		return
	}
	for _, n := range m.Nodes {
		n.MMU.UnregisterRegion(att.Proc.PASID, att.Base)
	}
}

// regionSync refreshes an extent-table mapping after the file's block
// layout changed (growth, truncation). Registration is cheap enough
// to redo wholesale.
func (m *Machine) regionSync(in *ext4.Inode, att *Attachment) {
	segs := regionSegs(in)
	newSpan := uint64(in.AllocatedBlocks()) * ext4.BlockSize
	if newSpan > att.Reserved {
		m.Revoke(in)
		return
	}
	if err := m.registerRegion(att.Proc.node, att.Proc.PASID, att.Proc.node.Dev.Config().DevID, att.Base, att.Reserved, att.Writable, segs); err != nil {
		m.Revoke(in)
		return
	}
	att.Span = newSpan
}
