package kernel

import (
	"bytes"
	"testing"

	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
)

func TestRenamePreservesBypassMapping(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x3c}, 8192)
		mkFile(t, p, pr, "/before", data)
		_, base, err := pr.OpenBypass(p, "/before", false)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: %v", err)
			return
		}
		// Rename while mapped: the inode (and its FTEs) are stable.
		if err := pr.Rename(p, "/before", "/after"); err != nil {
			t.Error(err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 8)
		buf := make([]byte, 4096)
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("read after rename: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		if !bytes.Equal(buf, data[:4096]) {
			t.Error("wrong data after rename")
		}
		// And the new path resolves while the old does not.
		if _, err := pr.Open(p, "/after", false); err != nil {
			t.Errorf("open new name: %v", err)
		}
		if _, err := pr.Open(p, "/before", false); err == nil {
			t.Error("old name still opens")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestRenameInsideContainer(t *testing.T) {
	s, m := newMachine(t)
	s.Spawn("app", func(p *sim.Proc) {
		c, err := m.NewContainerProcess(p, ext4.Root, "/ct")
		if err != nil {
			t.Error(err)
			return
		}
		mkFile(t, p, c, "/f", []byte("x"))
		if err := c.Rename(p, "/f", "/g"); err != nil {
			t.Error(err)
			return
		}
		// The rename happened under the container root.
		if _, err := m.FS.Lookup(p, "/ct/g", ext4.Root); err != nil {
			t.Errorf("container rename landed wrong: %v", err)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestRelinkSyscallGrowsMappedTarget(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/target", bytes.Repeat([]byte{1}, 4096))
		mkFile(t, p, pr, "/staging", bytes.Repeat([]byte{2}, 8192))

		tfd, base, err := pr.OpenBypass(p, "/target", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: %v", err)
			return
		}
		sfd, err := pr.Open(p, "/staging", true)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Relink(p, sfd, tfd); err != nil {
			t.Error(err)
			return
		}
		f, _ := pr.FDInfo(tfd)
		if f.Size() != 12288 {
			t.Errorf("target size = %d, want 12288", f.Size())
			return
		}
		// The grafted pages are reachable through the existing VBA
		// mapping immediately.
		q, _ := pr.CreateUserQueue(p, 8)
		buf := make([]byte, 4096)
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + 8192, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("read grafted page: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		if buf[0] != 2 {
			t.Errorf("grafted byte = %#x, want staging data", buf[0])
		}
	})
	s.Run()
	s.Shutdown()
}
