// Package kernel models the operating system of the BypassD
// reproduction: processes with PASIDs and page tables, the VFS/ext4
// syscall layer with the per-layer costs measured in the paper's
// Table 1, the block layer and NVMe driver, the standard I/O paths
// (synchronous, libaio, io_uring with SQPOLL), and the BypassD kernel
// module (user queue pairs, DMA buffers, fmap(), revocation).
//
// A machine fronts one or more SSDs behind a single shared IOMMU
// (paper §3.4: the file-table entries carry a DevID so a VBA minted
// for one device cannot reach another). Each device is a DevNode —
// the SSD, its mounted file system, and the kernel queue that submits
// on it — and each node's device procs run on their own event shard,
// merged deterministically by the simulator (DESIGN.md §14).
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/iommu"
	"repro/internal/metrics"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config carries the software-stack cost model. Defaults come from
// Table 1 and the Table 5 fits documented in DESIGN.md.
type Config struct {
	Cores int

	SyscallEnter sim.Time // user -> kernel mode switch
	SyscallExit  sim.Time // kernel -> user mode switch
	VFSCost      sim.Time // VFS + ext4 data path (4 KiB)
	VFSPerPage   sim.Time // extra per additional 4 KiB page
	BlockLayer   sim.Time // bio assembly, scheduling
	DriverSubmit sim.Time // NVMe driver submission

	OpenCost sim.Time // in-kernel cost of open() (Table 5 row 1)

	FmapBase     sim.Time // warm fmap fixed cost
	FmapPerPMD   sim.Time // per fragment pointer update (warm)
	FmapColdBase sim.Time // extent-tree population on cold fmap
	FmapPerPTE   sim.Time // per file-table entry built (cold)

	UringVFSCost sim.Time // kernel work per io_uring op (no switches)
	AioReap      sim.Time // per-event io_getevents cost
	XRPBpfExec   sim.Time // one BPF hook execution in the driver
}

// DefaultConfig returns the paper calibration.
func DefaultConfig() Config {
	return Config{
		Cores:        24,
		SyscallEnter: 160 * sim.Nanosecond,
		SyscallExit:  100 * sim.Nanosecond,
		VFSCost:      2810 * sim.Nanosecond,
		VFSPerPage:   15 * sim.Nanosecond,
		BlockLayer:   540 * sim.Nanosecond,
		DriverSubmit: 220 * sim.Nanosecond,
		OpenCost:     1020 * sim.Nanosecond,
		FmapBase:     390 * sim.Nanosecond,
		FmapPerPMD:   31 * sim.Nanosecond,
		FmapColdBase: 700 * sim.Nanosecond,
		FmapPerPTE:   5 * sim.Nanosecond,
		UringVFSCost: 2240 * sim.Nanosecond,
		AioReap:      100 * sim.Nanosecond,
		XRPBpfExec:   500 * sim.Nanosecond,
	}
}

// inoKey identifies an inode machine-wide. Inode numbers are
// per-device — two mounts can both hand out ino 12 — so every piece
// of kernel state keyed by inode (attachments, revocations, write
// locks) keys on (device, ino), never on the bare number.
type inoKey struct {
	dev uint8
	ino uint32
}

// ikey builds the machine-wide key for an inode.
func ikey(in *ext4.Inode) inoKey { return inoKey{dev: in.Dev, ino: in.Ino} }

// DevNode is one SSD of the machine's topology: the device, its
// mounted file system, and the kernel queue that submits on it. Each
// node's device procs run on their own simulator event shard, so an
// N-device machine advances N independent event streams that the
// scheduler merges deterministically by the global (at, seq) key.
type DevNode struct {
	Index int // position in Machine.Nodes
	Shard int // sim event shard the node's device procs run on
	// MMU is the node's translation agent. One IOMMU per node (one
	// per root complex, as on a real multi-socket machine) keeps the
	// whole ATS hot path — IOTLB, paging-structure cache, counters —
	// confined to the node's event shard, which is what lets shards
	// execute on separate host cores without locks. Every process
	// PASID is registered on every node's IOMMU (the kernel driver
	// programs each context table), so the cross-device DevID denial
	// (paper §3.4, Fig. 3) behaves exactly as with one shared agent.
	MMU *iommu.IOMMU
	Dev *device.SSD
	FS    *ext4.FS

	kq *kernelQueue
}

// Machine is a booted system: a device fleet + shared IOMMU, with a
// mounted file system per device.
type Machine struct {
	Sim *sim.Sim
	CPU *sim.CPUSet
	// Dev, MMU and FS alias node 0 — the historical single-device
	// surface. Every existing single-device caller keeps working
	// unchanged; multi-device callers go through Nodes.
	Dev *device.SSD
	MMU *iommu.IOMMU
	FS  *ext4.FS
	Cfg Config

	// Nodes is the device topology, in boot order. Node 0 runs on
	// event shard 0, so a one-node machine is byte-identical to the
	// pre-topology single-lane machine.
	Nodes []*DevNode

	// nodeByDev routes an inode (via Inode.Dev) back to its node.
	// Construction guarantees the mapping is injective: a duplicate
	// DevID is a boot error, because the FTE DevID check (paper §3.4,
	// Fig. 3) is a silent no-op between devices sharing an ID.
	nodeByDev map[uint8]*DevNode

	// Faults is the machine's fault plane, built from the globally
	// active profile at boot and shared with the devices, IOMMU and
	// file systems. Nil (the untriggered default) is inert.
	Faults *faults.Injector

	// BlockRetries counts transient device errors the kernel block
	// layer absorbed by resubmitting. Updated atomically: kernel block
	// I/O can retry on any node's shard.
	BlockRetries int64

	// Trace is the machine's span tracer, picked up from the globally
	// armed trace plane at boot (or attached later via EnableTrace).
	// Nil — the untriggered default — is inert.
	Trace *trace.Tracer

	kq *kernelQueue

	mBlockRetries *metrics.Counter

	nextPID   int
	nextPASID uint32

	// lookahead is the machine's provable epoch-window floor: the
	// smallest configured latency any kernel- or IOMMU-mediated
	// cross-shard interaction must pay. Derived and asserted positive
	// at multi-node boot; ArmParallel widens the actual window for
	// shard-confined traffic phases (the barrier causality check
	// enforces soundness either way).
	lookahead sim.Time

	// mu guards the machine-global control-plane maps below. The hot
	// data path never takes it; it exists for the short control-plane
	// window at the start of an armed traffic phase (per-tenant
	// library init: fmap, DMA-buffer registration) where processes on
	// different shards touch machine-wide bookkeeping concurrently.
	mu sync.Mutex

	// attachments tracks every fmap()ed (process, region) per inode
	// so the kernel can revoke direct access (paper §3.6).
	attachments map[inoKey][]*Attachment
	revoked     map[inoKey]bool

	// writeLocks models ext4's per-inode i_rwsem, held exclusively
	// during direct-I/O write submission. Concurrent writers to one
	// file serialize here — the bottleneck the paper observes for
	// KVell on YCSB A, which BypassD sidesteps by writing from
	// userspace (§6.5).
	writeLocks map[inoKey]*sim.Resource

	// dmaBufs tracks every pinned DMA buffer handed out on this
	// machine, recycled at teardown via ReleaseResources.
	dmaBufs [][]byte
}

// ReleaseResources returns the machine's recyclable structures — queue
// rings and pinned DMA buffers — to their shared pools. Only a
// teardown path that owns the machine (core.System.Close) may call it;
// the machine must not be used afterwards.
func (m *Machine) ReleaseResources() {
	for _, n := range m.Nodes {
		n.Dev.ReleaseResources()
		n.FS.ReleaseResources()
	}
	for i, b := range m.dmaBufs {
		device.PutDMABuf(b)
		m.dmaBufs[i] = nil
	}
	m.dmaBufs = nil
}

// Attachment is one process's fmap()ed view of a file.
type Attachment struct {
	Proc     *Process
	Base     uint64
	Span     uint64 // bytes currently attached
	Reserved uint64 // virtual region reserved for in-place growth
	Writable bool
	Revoked  bool
	// Region marks a §5.1 extent-table mapping (FmapRegion) rather
	// than page-table FTEs.
	Region bool

	key inoKey // owning inode, machine-wide
}

// NewMachine boots a single-device machine. If st is nil a fresh
// store is created and formatted; otherwise the existing image is
// mounted.
func NewMachine(s *sim.Sim, cfg Config, dcfg device.Config, st *storage.Store) (*Machine, error) {
	return NewMachineN(s, cfg, []device.Config{dcfg}, []*storage.Store{st})
}

// NewMachineN boots a machine over a device fleet sharing one IOMMU.
// The fleet's DevIDs are made unique before any device exists
// (device.AssignDevIDs): presets hardcode their IDs, so a fleet of N
// copies of one preset would otherwise collide and turn the Fig. 3
// cross-device VBA denial into a no-op. Device i > 0 gets a fresh
// event shard; device 0 stays on shard 0, which keeps a one-device
// boot byte-identical to the pre-topology machine. sts supplies
// per-device images (a nil slice, or nil entries, format fresh
// stores). dcfgs is modified in place (DevID/Shard assignment).
func NewMachineN(s *sim.Sim, cfg Config, dcfgs []device.Config, sts []*storage.Store) (*Machine, error) {
	if len(sts) != 0 && len(sts) != len(dcfgs) {
		return nil, fmt.Errorf("kernel: %d stores for %d devices", len(sts), len(dcfgs))
	}
	if err := device.AssignDevIDs(dcfgs); err != nil {
		return nil, err
	}
	m := &Machine{
		Sim:         s,
		Cfg:         cfg,
		nodeByDev:   make(map[uint8]*DevNode, len(dcfgs)),
		attachments: make(map[inoKey][]*Attachment),
		revoked:     make(map[inoKey]bool),
		writeLocks:  make(map[inoKey]*sim.Resource),
		nextPASID:   100,
	}
	m.Faults = faults.NewFromActive()

	names := make(map[string]bool, len(dcfgs))
	for i := range dcfgs {
		dcfg := dcfgs[i]
		if names[dcfg.Name] {
			// Same-preset fleet: disambiguate resource, trace, and
			// error-message names. The first occurrence — and thus any
			// single-device boot — keeps its preset name.
			dcfg.Name = fmt.Sprintf("%s.%d", dcfg.Name, i)
		}
		names[dcfg.Name] = true
		dcfg.Shard = 0
		if i > 0 {
			dcfg.Shard = s.AddShard()
		}
		dcfgs[i] = dcfg

		var st *storage.Store
		if len(sts) > 0 {
			st = sts[i]
		}
		fresh := st == nil
		if fresh {
			st = storage.NewBytes(dcfg.CapacityBytes)
		}
		// One IOMMU per node (see DevNode.MMU): the node's ATS traffic
		// stays on its own event shard.
		mmu := iommu.New(iommu.DefaultConfig())
		mmu.SetInjector(m.Faults)
		dev := device.NewWithStore(s, dcfg, st)
		dev.AttachIOMMU(mmu)
		dev.SetInjector(m.Faults)

		if fresh {
			if err := ext4.Mkfs(&ext4.Direct{St: st}, ext4.DefaultOptions(dcfg.CapacityBytes, dcfg.DevID)); err != nil {
				return nil, err
			}
		}
		// Boot-time mount goes through the untimed path; runtime I/O
		// then flows through the timed kernel BlockIO. The file
		// system's clock is the node's shard clock: in a parallel
		// epoch a shard legitimately runs ahead of the global clock,
		// and mtimes must follow the I/O that dirtied them.
		fs, err := ext4.Mount(nil, &ext4.Direct{St: st}, dcfg.DevID, s.ShardClock(dcfg.Shard))
		if err != nil {
			return nil, err
		}
		q, err := dev.CreateQueue(0, 4096)
		if err != nil {
			return nil, err
		}
		n := &DevNode{Index: i, Shard: dcfg.Shard, MMU: mmu, Dev: dev, FS: fs}
		n.kq = &kernelQueue{m: m, n: n, q: q, waiters: make(map[uint16]*waiter)}
		fs.SetBlockIO(&kernelBIO{m: m, n: n})
		fs.SetInjector(m.Faults)

		if prev, dup := m.nodeByDev[dcfg.DevID]; dup {
			return nil, fmt.Errorf("kernel: duplicate DevID %d (%s and %s)",
				dcfg.DevID, prev.Dev.Config().Name, dcfg.Name)
		}
		m.nodeByDev[dcfg.DevID] = n
		m.Nodes = append(m.Nodes, n)
	}
	n0 := m.Nodes[0]
	m.Dev, m.FS, m.MMU, m.kq = n0.Dev, n0.FS, n0.MMU, n0.kq
	// The CPU pool sizes one lane per event shard, so it must be
	// created after the device loop added every shard.
	m.CPU = s.NewCPUSet(cfg.Cores)
	if len(m.Nodes) > 1 {
		m.lookahead = m.lookaheadFloor()
		if m.lookahead <= 0 {
			return nil, fmt.Errorf("kernel: multi-node boot with a non-positive lookahead floor %d — every cross-shard interaction cost must be positive", m.lookahead)
		}
	}
	m.mBlockRetries = metrics.GetCounter("kernel_block_retries_total")
	if tr := trace.NewFromActive(dcfgs[0].Name); tr != nil {
		m.EnableTrace(tr)
	}
	return m, nil
}

// EnableTrace attaches a span tracer to the machine and its file
// systems. Harnesses that want attribution without arming the global
// plane (fio.Spec.Trace, the T6 experiment) call this with a
// standalone trace.NewTracer.
func (m *Machine) EnableTrace(tr *trace.Tracer) {
	m.Trace = tr
	for _, n := range m.Nodes {
		n.FS.SetTracer(tr)
	}
}

// node routes an inode to the topology node that owns it, via the
// device identity stamped on the inode at materialization.
func (m *Machine) node(in *ext4.Inode) *DevNode {
	if n, ok := m.nodeByDev[in.Dev]; ok {
		return n
	}
	// Inodes built outside a mount (tests) carry Dev 0; node 0 is the
	// only sensible home.
	return m.Nodes[0]
}

// writeLock returns the inode's i_rwsem equivalent. The lock lives on
// the inode's node shard: its holders and waiters are that node's
// writers, so accounting stays shard-local in a parallel run.
func (m *Machine) writeLock(in *ext4.Inode) *sim.Resource {
	k := ikey(in)
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.writeLocks[k]
	if !ok {
		l = m.Sim.NewResourceOn(m.node(in).Shard, fmt.Sprintf("i_rwsem-%d", k.ino), 1)
		m.writeLocks[k] = l
	}
	return l
}

// lookaheadFloor derives the provable epoch-window bound from the
// machine's cost model: the cheapest configured step any cross-shard
// interaction must pay before an event it causes can land on another
// shard. Kernel-mediated paths pay at least a mode switch or a block-
// layer step; device-mediated paths pay at least a PCIe round trip or
// the translation floor. The minimum positive of these bounds how far
// one shard may run ahead while coupled semantics are preserved.
func (m *Machine) lookaheadFloor() sim.Time {
	floor := sim.Time(0)
	consider := func(d sim.Time) {
		if d > 0 && (floor == 0 || d < floor) {
			floor = d
		}
	}
	consider(m.Cfg.SyscallEnter)
	consider(m.Cfg.BlockLayer)
	consider(m.Cfg.DriverSubmit)
	for _, n := range m.Nodes {
		icfg := n.MMU.Config()
		consider(icfg.PCIeRoundTrip)
		consider(icfg.MinTranslation)
	}
	return floor
}

// LookaheadFloor reports the machine's derived epoch-window floor
// (0 on a single-node machine, where the epoch engine never runs).
func (m *Machine) LookaheadFloor() sim.Time { return m.lookahead }

// ParallelWindow is the epoch width ArmParallel uses. It is far wider
// than the provable floor: an armed phase promises device-affine
// traffic (each tenant's generator, workers, queues, and device share
// one shard), so epochs exist only to amortize barriers, and the
// merge's causality check turns any broken promise into a hard panic
// instead of silent reordering.
const ParallelWindow = 50 * sim.Microsecond

// ArmParallel arms the simulator's conservative epoch engine for a
// shard-confined traffic phase and returns the worker count actually
// granted. On a single-node machine it is a no-op (returns 1). The
// request is degraded to one worker — epochs still run, so results
// stay invariant across worker counts — when a machine-wide observer
// that the parallel path cannot serve race-free is attached: an armed
// fault profile (shared rule state and PRNG) or a span tracer.
func (m *Machine) ArmParallel(workers int) int {
	if len(m.Nodes) < 2 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	if m.Faults.Active() || m.Trace != nil {
		workers = 1
	}
	m.Sim.SetWorkers(workers)
	w := ParallelWindow
	if w < m.lookahead {
		w = m.lookahead
	}
	m.Sim.SetLookahead(w)
	return workers
}

// DisarmParallel returns the simulator to coupled dispatch.
func (m *Machine) DisarmParallel() {
	m.Sim.SetLookahead(0)
	m.Sim.SetWorkers(1)
}

// invalidateRange drops pasid's cached translations for [va, va+bytes)
// on every IOMMU that may hold them. Coupled phases fan out to all
// nodes (a PASID is registered machine-wide, and a queue on any node
// may have translated for it — the Fig. 3 denial path walks, and a
// real kernel must shoot down every agent). While the epoch engine is
// armed, traffic is device-affine by contract, so only the owning
// node's agent can hold entries and the shoot-down stays shard-local.
func (m *Machine) invalidateRange(owner *DevNode, pasid uint32, va uint64, bytes int64) {
	if m.Sim.ParallelArmed() {
		owner.MMU.InvalidateRange(pasid, va, bytes)
		return
	}
	for _, n := range m.Nodes {
		n.MMU.InvalidateRange(pasid, va, bytes)
	}
}

// waiter tracks one in-flight kernel command.
type waiter struct {
	done   bool
	status nvme.Status
}

// kernelQueue multiplexes kernel-initiated commands over one device
// queue pair. Threads waiting for completions sleep (interrupt model)
// rather than burning CPU.
type kernelQueue struct {
	m       *Machine
	n       *DevNode
	q       *nvme.QueuePair
	waiters map[uint16]*waiter
	nextCID uint16

	// wFree recycles waiter boxes: the kernel issues one per command,
	// and a steady stream of block I/O would otherwise allocate one per
	// op forever. Single-goroutine, like everything under the scheduler.
	wFree []*waiter
}

// getWaiter hands out a reset waiter box for one in-flight command.
func (k *kernelQueue) getWaiter() *waiter {
	if n := len(k.wFree); n > 0 {
		w := k.wFree[n-1]
		k.wFree[n-1] = nil
		k.wFree = k.wFree[:n-1]
		*w = waiter{}
		return w
	}
	return &waiter{}
}

// putWaiter retires a waiter box once its command completed.
func (k *kernelQueue) putWaiter(w *waiter) { k.wFree = append(k.wFree, w) }

func (k *kernelQueue) allocCID() uint16 {
	for {
		k.nextCID++
		if _, busy := k.waiters[k.nextCID]; !busy {
			return k.nextCID
		}
	}
}

// drain moves posted completions into their waiters.
func (k *kernelQueue) drain() {
	for {
		c, ok := k.q.PopCQE()
		if !ok {
			return
		}
		if w := k.waiters[c.CID]; w != nil {
			w.done = true
			w.status = c.Status
		}
	}
}

// submitAndWait issues one command and blocks (interrupt-style) until
// it completes.
func (k *kernelQueue) submitAndWait(p *sim.Proc, e nvme.SQE) nvme.Status {
	cid := k.allocCID()
	e.CID = cid
	if e.Span == nil {
		// Pick up the span threaded through the proc by the layer that
		// owns the request (BIO, XRP, io_uring's poller); AIO sets
		// SQE.Span explicitly because it submits from a helper proc.
		e.Span = trace.SpanFrom(p)
	}
	w := k.getWaiter()
	k.waiters[cid] = w
	if err := k.q.Submit(e); err != nil {
		delete(k.waiters, cid)
		k.putWaiter(w)
		return nvme.StatusInternalError
	}
	for !w.done {
		k.drain()
		if w.done {
			break
		}
		k.q.CQReady.Wait(p)
	}
	delete(k.waiters, cid)
	e.Span.Complete(p.Now())
	st := w.status
	k.putWaiter(w)
	return st
}

// submitRetry is submitAndWait plus the block layer's bounded
// resubmission of transient failures (media error, timeout); every
// raw kernel submission path (block I/O, AIO, XRP) shares it so
// injected device faults degrade to retries, not EIO.
func (k *kernelQueue) submitRetry(p *sim.Proc, e nvme.SQE) nvme.Status {
	var st nvme.Status
	for attempt := 0; ; attempt++ {
		st = k.submitAndWait(p, e)
		if st.OK() || !st.Transient() || attempt >= blockRetries {
			return st
		}
		atomic.AddInt64(&k.m.BlockRetries, 1)
		k.m.mBlockRetries.Inc()
	}
}

// kernelBIO is the timed ext4.BlockIO for one node: it charges the
// block layer and driver costs, then performs the transfer through
// the node's device.
type kernelBIO struct {
	m *Machine
	n *DevNode
}

var _ ext4.BlockIO = (*kernelBIO)(nil)

func (b *kernelBIO) charge(p *sim.Proc) {
	b.m.CPU.Compute(p, b.m.Cfg.BlockLayer+b.m.Cfg.DriverSubmit)
}

// blockRetries bounds the block layer's resubmissions of a command
// that failed with a transient status (media error, timeout) before
// the error surfaces as EIO, matching the kernel's nvme retry path.
const blockRetries = 3

func (b *kernelBIO) io(p *sim.Proc, op nvme.Opcode, blk, n int64, buf []byte) error {
	if p == nil {
		panic("kernel: timed block I/O without a proc")
	}
	b.charge(p)
	st := b.n.kq.submitRetry(p, nvme.SQE{
		Opcode:  op,
		SLBA:    blk * ext4.SectorsPerBlock,
		Sectors: n * ext4.SectorsPerBlock,
		Buf:     buf,
	})
	if !st.OK() {
		return fmt.Errorf("kernel: block %s at %d on %s queue %d: %v",
			op, blk, b.n.Dev.Config().Name, b.n.kq.q.ID, st)
	}
	return nil
}

func (b *kernelBIO) ReadBlocks(p *sim.Proc, blk, n int64, buf []byte) error {
	return b.io(p, nvme.OpRead, blk, n, buf[:n*ext4.BlockSize])
}

func (b *kernelBIO) WriteBlocks(p *sim.Proc, blk, n int64, buf []byte) error {
	return b.io(p, nvme.OpWrite, blk, n, buf[:n*ext4.BlockSize])
}

func (b *kernelBIO) ZeroBlocks(p *sim.Proc, blk, n int64) error {
	return b.io(p, nvme.OpWriteZeroes, blk, n, nil)
}

func (b *kernelBIO) Flush(p *sim.Proc) error {
	if p == nil {
		panic("kernel: timed flush without a proc")
	}
	b.m.CPU.Compute(p, b.m.Cfg.DriverSubmit)
	if st := b.n.kq.submitAndWait(p, nvme.SQE{Opcode: nvme.OpFlush}); !st.OK() {
		return fmt.Errorf("kernel: flush: %v", st)
	}
	return nil
}
