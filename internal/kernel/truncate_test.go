package kernel

import (
	"testing"

	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// TestFtruncateDetachesFTEs verifies Table 3's ftruncate row: when
// blocks are deallocated, the corresponding FTEs are detached so the
// process can no longer reach those blocks from userspace.
func TestFtruncateDetachesFTEs(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/t", make([]byte, 8*4096))
		fd, base, err := pr.OpenBypass(p, "/t", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		read := func(page int64) nvme.Status {
			_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true,
				VBA: base + uint64(page)*4096, Sectors: 8, Buf: buf})
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status
				}
				q.CQReady.Wait(p)
			}
		}
		if st := read(5); !st.OK() {
			t.Errorf("pre-truncate read: %v", st)
			return
		}
		if err := pr.Ftruncate(p, fd, 2*4096); err != nil {
			t.Error(err)
			return
		}
		// Truncated pages fault; kept pages still resolve.
		if st := read(5); st != nvme.StatusTranslationFault {
			t.Errorf("read of truncated page = %v, want translation-fault", st)
			return
		}
		if st := read(1); !st.OK() {
			t.Errorf("read of kept page = %v", st)
			return
		}
		// Regrow via fallocate re-attaches FTEs for fresh (zeroed)
		// blocks.
		if err := pr.Fallocate(p, fd, 8*4096); err != nil {
			t.Error(err)
			return
		}
		if st := read(5); !st.OK() {
			t.Errorf("read after regrow = %v", st)
			return
		}
		for i, b := range buf {
			if b != 0 {
				t.Errorf("regrown page leaked byte %#x at %d", b, i)
				return
			}
		}
	})
	s.Run()
	s.Shutdown()
}
