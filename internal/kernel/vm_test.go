package kernel

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// carveGuests boots a host plus two guests on VF windows.
func carveGuests(t *testing.T, s *sim.Sim) (*Machine, *Machine, *Machine) {
	t.Helper()
	host, err := NewMachine(s, DefaultConfig(), device.OptaneP5800X(1<<30), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two 128 MiB VFs in the upper half of the device.
	mkGuest := func(name string, devID uint8, baseSector int64) *Machine {
		vf, err := device.Carve(s, host.Dev, name, devID, baseSector, (128<<20)/512)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGuestMachine(s, DefaultConfig(), host, vf, 300*sim.Nanosecond)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1 := mkGuest("vf1", 10, (512<<20)/512)
	g2 := mkGuest("vf2", 11, (768<<20)/512)
	return host, g1, g2
}

func TestGuestMachinesBootAndIsolate(t *testing.T) {
	s := sim.New()
	host, g1, g2 := carveGuests(t, s)
	s.Spawn("main", func(p *sim.Proc) {
		// Each guest writes its own file at the same path.
		for i, g := range []*Machine{g1, g2} {
			pr := g.NewProcess(ext4.Root)
			fd, err := pr.Create(p, "/vm-data", 0o644)
			if err != nil {
				t.Errorf("guest %d create: %v", i, err)
				return
			}
			payload := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if _, err := pr.Pwrite(p, fd, payload, 0); err != nil {
				t.Errorf("guest %d write: %v", i, err)
				return
			}
			if err := pr.Fsync(p, fd); err != nil {
				t.Errorf("guest %d fsync: %v", i, err)
				return
			}
			_ = pr.Close(p, fd)
		}
		// Each guest reads back its own bytes.
		for i, g := range []*Machine{g1, g2} {
			pr := g.NewProcess(ext4.Root)
			fd, err := pr.Open(p, "/vm-data", false)
			if err != nil {
				t.Errorf("guest %d open: %v", i, err)
				return
			}
			buf := make([]byte, 4096)
			if _, err := pr.Pread(p, fd, buf, 0); err != nil {
				t.Errorf("guest %d read: %v", i, err)
				return
			}
			if buf[0] != byte(i+1) {
				t.Errorf("guest %d saw %#x: cross-VM leakage", i, buf[0])
				return
			}
		}
		// The host's own namespace never saw either file.
		hostPr := host.NewProcess(ext4.Root)
		if _, err := hostPr.Open(p, "/vm-data", false); err == nil {
			t.Error("guest file visible in the host file system")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestGuestBypassDDirectPath(t *testing.T) {
	s := sim.New()
	_, g1, _ := carveGuests(t, s)
	var lat sim.Time
	s.Spawn("main", func(p *sim.Proc) {
		pr := g1.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/direct", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, 1<<20); err != nil {
			t.Error(err)
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)

		dfd, base, err := pr.OpenBypass(p, "/direct", true)
		if err != nil || base == 0 {
			t.Errorf("guest OpenBypass: base=%d err=%v", base, err)
			return
		}
		_ = dfd
		q, err := pr.CreateUserQueue(p, 16)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		start := p.Now()
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("guest VBA read: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		lat = p.Now() - start
	})
	s.Run()
	// Nested translation adds ~300ns over the bare-metal 4.57µs.
	if lat < 4700*sim.Nanosecond || lat > 5100*sim.Nanosecond {
		t.Fatalf("guest direct read = %v, want ~4.87µs (bare metal + nested walk)", lat)
	}
	s.Shutdown()
}

func TestGuestCannotEscapeWindow(t *testing.T) {
	s := sim.New()
	host, g1, _ := carveGuests(t, s)
	s.Spawn("main", func(p *sim.Proc) {
		// Plant host data below the VF window.
		secret := bytes.Repeat([]byte{0xEE}, 4096)
		if err := host.Dev.Store().WriteSectors(100, 8, secret); err != nil {
			t.Error(err)
			return
		}
		pr := g1.NewProcess(ext4.Root)
		q, err := pr.CreateUserQueue(p, 8)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		// Raw LBA beyond the VF capacity: rejected at the device.
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: g1.Dev.Sectors() + 100, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if c.Status != nvme.StatusLBAOutOfRange {
					t.Errorf("out-of-window read = %v, want lba-out-of-range", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		// Raw LBA 100 *within* the window maps to host sector
		// window+100, not host sector 100: the secret is unreachable.
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 2, SLBA: 100, Sectors: 8, Buf: buf})
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("in-window read failed: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		if bytes.Equal(buf, secret) {
			t.Error("guest read the host's sector 100 through its window")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestVFsContendForSharedChannels(t *testing.T) {
	s := sim.New()
	_, g1, g2 := carveGuests(t, s)
	// Saturate guest 2's VF; guest 1's latency must rise (same media).
	var quiet sim.Time
	s.Spawn("noisy", func(p *sim.Proc) {
		pr := g2.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/noise", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, 8<<20); err != nil {
			t.Error(err)
			return
		}
		q, _ := pr.CreateUserQueue(p, 256)
		buf := make([]byte, 4096)
		in := 0
		for i := 0; i < 1200; i++ {
			for in >= 32 {
				if _, ok := q.PopCQE(); ok {
					in--
					continue
				}
				q.CQReady.Wait(p)
			}
			_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: uint16(i), SLBA: int64(i%1000) * 8, Sectors: 8, Buf: buf})
			in++
		}
	})
	s.Spawn("quiet", func(p *sim.Proc) {
		pr := g1.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/q", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, 1<<20); err != nil {
			t.Error(err)
			return
		}
		_ = fd
		q, _ := pr.CreateUserQueue(p, 8)
		buf := make([]byte, 4096)
		p.Sleep(200 * sim.Microsecond) // let the noise build
		start := p.Now()
		_ = q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, SLBA: 0, Sectors: 8, Buf: buf})
		for {
			if _, ok := q.PopCQE(); ok {
				break
			}
			q.CQReady.Wait(p)
		}
		quiet = p.Now() - start
	})
	s.Run()
	if quiet < 4500*sim.Nanosecond {
		t.Fatalf("VF isolation too perfect: %v — VFs must share media channels", quiet)
	}
	s.Shutdown()
}
