package kernel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/iommu"
	"repro/internal/nvme"
	"repro/internal/sim"
)

const testCap = 1 << 30

func newMachine(t *testing.T) (*sim.Sim, *Machine) {
	t.Helper()
	s := sim.New()
	m, err := NewMachine(s, DefaultConfig(), device.OptaneP5800X(testCap), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// mkFile creates a file with the given content through the kernel.
func mkFile(t *testing.T, p *sim.Proc, pr *Process, path string, data []byte) {
	t.Helper()
	fd, err := pr.Create(p, path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if n, err := pr.Pwrite(p, fd, data, 0); err != nil || n != len(data) {
			t.Fatalf("pwrite: n=%d err=%v", n, err)
		}
	}
	if err := pr.Fsync(p, fd); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(p, fd); err != nil {
		t.Fatal(err)
	}
}

func TestTable1SyncReadLatency(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(data)

	var lat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", data)
		fd, err := pr.Open(p, "/f", false)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		start := p.Now()
		if n, err := pr.Pread(p, fd, buf, 4096); err != nil || n != 4096 {
			t.Errorf("pread: n=%d err=%v", n, err)
			return
		}
		lat = p.Now() - start
		if !bytes.Equal(buf, data[4096:8192]) {
			t.Error("sync read returned wrong data")
		}
	})
	s.Run()
	// Table 1: 160+2810+540+220+4020+100 = 7850 ns.
	if lat < 7700 || lat > 8000 {
		t.Fatalf("sync 4K read = %v, want ~7.85µs (Table 1)", lat)
	}
	s.Shutdown()
}

func TestOpenCostTable5(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	var openLat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, 4096))
		start := p.Now()
		fd, err := pr.Open(p, "/f", false)
		if err != nil {
			t.Error(err)
			return
		}
		openLat = p.Now() - start
		_ = pr.Close(p, fd)
	})
	s.Run()
	// Table 5 row 1: default open ~1.28µs for a warm dcache.
	if openLat < 1100 || openLat > 1500 {
		t.Fatalf("open = %v, want ~1.28µs", openLat)
	}
	s.Shutdown()
}

func TestFmapWarmVsColdTable5(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	const fileSize = 64 << 20 // 64 MiB
	var coldLat, warmLat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		// Build the file in chunks.
		fd, err := pr.Create(p, "/big", 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fallocate(p, fd, fileSize); err != nil {
			t.Error(err)
			return
		}
		if err := pr.Fsync(p, fd); err != nil {
			t.Error(err)
			return
		}
		if err := pr.Close(p, fd); err != nil {
			t.Error(err)
			return
		}
		// Drop the cached file table to force a cold fmap.
		in, err := m.FS.Lookup(p, "/big", ext4.Root)
		if err != nil {
			t.Error(err)
			return
		}
		in.DropFileTable()

		// cold fmap in a fresh process
		pr2 := m.NewProcess(ext4.Root)
		fd2, err := openNoFmap(p, pr2, "/big")
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		b, err := pr2.Fmap(p, fd2)
		coldLat = p.Now() - start
		if err != nil || b == 0 {
			t.Errorf("cold fmap: base=%d err=%v", b, err)
			return
		}
		// warm fmap in a third process
		pr3 := m.NewProcess(ext4.Root)
		fd3, err := openNoFmap(p, pr3, "/big")
		if err != nil {
			t.Error(err)
			return
		}
		start = p.Now()
		b, err = pr3.Fmap(p, fd3)
		warmLat = p.Now() - start
		if err != nil || b == 0 {
			t.Errorf("warm fmap: base=%d err=%v", b, err)
			return
		}
	})
	s.Run()
	// Table 5, 64 MiB: warm fmap ≈ 1.0µs (2.76-1.74), cold ≈ 84µs.
	if warmLat < 500 || warmLat > 3*sim.Microsecond {
		t.Fatalf("warm fmap = %v, want ~1-2µs", warmLat)
	}
	if coldLat < 60*sim.Microsecond || coldLat > 120*sim.Microsecond {
		t.Fatalf("cold fmap = %v, want ~84µs", coldLat)
	}
	s.Shutdown()
}

// openNoFmap opens through the kernel without counting as a
// kernel-interface open (mimics UserLib's open-then-fmap split so the
// fmap cost can be measured in isolation).
func openNoFmap(p *sim.Proc, pr *Process, path string) (int, error) {
	in, err := pr.M.FS.Lookup(p, path, pr.Cred)
	if err != nil {
		return 0, err
	}
	return pr.installFD(in, path, false), nil
}

func TestVBAAccessThroughUserQueue(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	data := make([]byte, 16384)
	rand.New(rand.NewSource(3)).Read(data)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", data)
		fd, base, err := pr.OpenBypass(p, "/f", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		q, err := pr.CreateUserQueue(p, 64)
		if err != nil {
			t.Error(err)
			return
		}
		// Read page 2 directly from userspace via VBA.
		buf := make([]byte, 4096)
		if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + 8192, Sectors: 8, Buf: buf}); err != nil {
			t.Error(err)
			return
		}
		var c nvme.CQE
		for {
			var ok bool
			if c, ok = q.PopCQE(); ok {
				break
			}
			q.CQReady.Wait(p)
		}
		if !c.Status.OK() {
			t.Errorf("VBA read status: %v", c.Status)
			return
		}
		if !bytes.Equal(buf, data[8192:12288]) {
			t.Error("VBA read returned wrong data")
		}
		_ = fd
	})
	s.Run()
	s.Shutdown()
}

func TestRevocationOnKernelInterfaceOpen(t *testing.T) {
	s, m := newMachine(t)
	alice := m.NewProcess(ext4.Cred{UID: 100, GID: 100})
	bob := m.NewProcess(ext4.Cred{UID: 0, GID: 0})
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, bob, "/shared", make([]byte, 8192))
		// Make it world-readable/writable for alice.
		in, _ := m.FS.Lookup(p, "/shared", ext4.Root)
		_ = in

		fd, base, err := alice.OpenBypass(p, "/shared", false)
		if err != nil || base == 0 {
			t.Errorf("alice OpenBypass: base=%d err=%v", base, err)
			return
		}
		q, _ := alice.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		submit := func() nvme.Status {
			if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 9, UseVBA: true, VBA: base, Sectors: 8, Buf: buf}); err != nil {
				t.Error(err)
				return nvme.StatusInternalError
			}
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status
				}
				q.CQReady.Wait(p)
			}
		}
		if st := submit(); !st.OK() {
			t.Errorf("pre-revocation read: %v", st)
			return
		}

		// Bob opens through the kernel interface: revocation.
		bfd, err := bob.Open(p, "/shared", false)
		if err != nil {
			t.Error(err)
			return
		}
		if st := submit(); st != nvme.StatusTranslationFault {
			t.Errorf("post-revocation read: %v, want translation-fault", st)
			return
		}
		// fmap() retry returns VBA 0 while the kernel open persists.
		if b, err := alice.Fmap(p, fd); err != nil || b != 0 {
			t.Errorf("fmap after revocation: base=%d err=%v, want 0", b, err)
			return
		}
		// Kernel interface still works for alice.
		if _, err := alice.Pread(p, fd, buf, 0); err != nil {
			t.Errorf("fallback pread: %v", err)
			return
		}
		_ = bob.Close(p, bfd)
	})
	s.Run()
	s.Shutdown()
}

func TestWorldCannotMapOthersFiles(t *testing.T) {
	s, m := newMachine(t)
	owner := m.NewProcess(ext4.Cred{UID: 0})
	thief := m.NewProcess(ext4.Cred{UID: 66, GID: 66})
	s.Spawn("app", func(p *sim.Proc) {
		fd, err := owner.Create(p, "/topsecret", 0o600)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := owner.Pwrite(p, fd, []byte("classified"), 0); err != nil {
			t.Error(err)
			return
		}
		_ = owner.Fsync(p, fd)
		_ = owner.Close(p, fd)
		if _, _, err := thief.OpenBypass(p, "/topsecret", false); err == nil {
			t.Error("thief opened a 0600 file owned by root")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestAppendGrowsMappingInPlace(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/grow", make([]byte, 4096))
		_, base, err := pr.OpenBypass(p, "/grow", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		// Append through the kernel: 3 MiB crosses a 2 MiB fragment
		// boundary, forcing syncGrowth to attach a new fragment.
		wfd, err := pr.Open(p, "/grow", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Note: kernel-interface open by the same process revokes
		// too (paper does not special-case same-process); so check
		// growth with a pure-bypass workflow instead via Pwrite on
		// the bypass fd.
		_ = wfd
	})
	s.Run()
	s.Shutdown()

	// Pure-bypass growth path: append via the kernel append syscall
	// on the same (bypass) descriptor.
	s2 := sim.New()
	m2, err := NewMachine(s2, DefaultConfig(), device.OptaneP5800X(testCap), nil)
	if err != nil {
		t.Fatal(err)
	}
	pr2 := m2.NewProcess(ext4.Root)
	s2.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr2, "/grow", make([]byte, 4096))
		fd, base, err := pr2.OpenBypass(p, "/grow", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		big := make([]byte, 3<<20)
		for i := range big {
			big[i] = 0x7e
		}
		if _, err := pr2.Pwrite(p, fd, big, 4096); err != nil {
			t.Error(err)
			return
		}
		// The new fragment must be reachable via VBA immediately.
		q, _ := pr2.CreateUserQueue(p, 16)
		buf := make([]byte, 4096)
		off := uint64(2 << 20) // second fragment
		if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base + off, Sectors: 8, Buf: buf}); err != nil {
			t.Error(err)
			return
		}
		for {
			if c, ok := q.PopCQE(); ok {
				if !c.Status.OK() {
					t.Errorf("read of grown region: %v", c.Status)
				}
				break
			}
			q.CQReady.Wait(p)
		}
		if buf[0] != 0x7e {
			t.Errorf("grown region byte = %#x, want 0x7e", buf[0])
		}
	})
	s2.Run()
	s2.Shutdown()
}

func TestAioQD1MatchesSyncShape(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	var aioLat, syncLat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, 1<<20))
		fd, _ := pr.Open(p, "/f", false)
		buf := make([]byte, 4096)

		start := p.Now()
		_, _ = pr.Pread(p, fd, buf, 0)
		syncLat = p.Now() - start

		ctx := pr.NewAioContext()
		start = p.Now()
		if err := ctx.Submit(p, []AioOp{{FD: fd, Off: 4096, Buf: buf}}); err != nil {
			t.Error(err)
			return
		}
		res := ctx.GetEvents(p, 1, 1)
		aioLat = p.Now() - start
		if len(res) != 1 || res[0].Err != nil {
			t.Errorf("aio result: %+v", res)
		}
	})
	s.Run()
	// libaio at QD1 ≈ sync plus an extra syscall pair (paper Fig. 6).
	if aioLat < syncLat || aioLat > syncLat+2*sim.Microsecond {
		t.Fatalf("aio QD1 = %v vs sync %v", aioLat, syncLat)
	}
	s.Shutdown()
}

func TestAioDeepQueueOverlaps(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	var elapsed sim.Time
	const ops = 64
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, ops*4096))
		fd, _ := pr.Open(p, "/f", false)
		ctx := pr.NewAioContext()
		batch := make([]AioOp, ops)
		bufs := make([][]byte, ops)
		for i := range batch {
			bufs[i] = make([]byte, 4096)
			batch[i] = AioOp{FD: fd, Off: int64(i) * 4096, Buf: bufs[i], Tag: i}
		}
		start := p.Now()
		if err := ctx.Submit(p, batch); err != nil {
			t.Error(err)
			return
		}
		got := 0
		for got < ops {
			got += len(ctx.GetEvents(p, 1, ops))
		}
		elapsed = p.Now() - start
	})
	s.Run()
	// At QD64 the run is bounded by CPU submission work (~3.6µs/op)
	// with device time overlapped — well under the 64 * 7.85µs ≈
	// 502µs a synchronous loop would take. This is exactly KVell_64's
	// throughput-for-latency trade (Fig. 16).
	if elapsed > 300*sim.Microsecond {
		t.Fatalf("QD64 batch took %v, expected deep-queue overlap", elapsed)
	}
	s.Shutdown()
}

func TestUringLatencyBetweenSyncAndUserspace(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	var lat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, 1<<20))
		fd, _ := pr.Open(p, "/f", false)
		u := pr.NewUring(p)
		defer u.Close()
		buf := make([]byte, 4096)
		// warm one op
		u.SubmitRead(p, fd, buf, 0, nil)
		u.Wait(p)
		start := p.Now()
		u.SubmitRead(p, fd, buf, 4096, nil)
		r := u.Wait(p)
		lat = p.Now() - start
		if r.Err != nil || r.N != 4096 {
			t.Errorf("uring read: %+v", r)
		}
	})
	s.Run()
	// io_uring beats sync (7.85µs) but trails userspace (~5µs).
	if lat < 6*sim.Microsecond || lat >= 7850*sim.Nanosecond {
		t.Fatalf("io_uring 4K read = %v, want between ~6µs and 7.85µs", lat)
	}
	s.Shutdown()
}

func TestXRPChainLatency(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	var lat sim.Time
	var steps int
	s.Spawn("app", func(p *sim.Proc) {
		// A 7-hop chain of 512 B nodes, each naming the next offset.
		data := make([]byte, 8*512)
		for hop := 0; hop < 7; hop++ {
			data[hop*512] = byte(hop + 1) // next hop index
		}
		mkFile(t, p, pr, "/chain", data)
		fd, _ := pr.Open(p, "/chain", false)
		buf := make([]byte, 512)
		start := p.Now()
		n, err := pr.XRPChain(p, fd, 0, 512, buf, func(step int, b []byte) (int64, int64, bool) {
			if step == 6 {
				return 0, 0, true
			}
			return int64(b[0]) * 512, 512, false
		})
		lat = p.Now() - start
		steps = n
		if err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if steps != 7 {
		t.Fatalf("steps = %d, want 7", steps)
	}
	// One full-stack entry (~3.8µs software) + 7 device reads
	// (~3.5µs each at 512B) + 6 cheap resubmits (~0.7µs each):
	// far below 7 full syscalls (7*7.3µs ≈ 51µs).
	if lat > 40*sim.Microsecond {
		t.Fatalf("xrp chain = %v, want well under sync-path 7x cost", lat)
	}
	if lat < 25*sim.Microsecond {
		t.Fatalf("xrp chain = %v, implausibly fast", lat)
	}
	s.Shutdown()
}

func TestTimestampsDeferredUntilClose(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/ts", make([]byte, 4096))
		fd, base, err := pr.OpenBypass(p, "/ts", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: %v", err)
			return
		}
		f, _ := pr.FDInfo(fd)
		before := f.Ino.Mtime
		p.Sleep(10 * sim.Millisecond)
		f.MarkTimesDirty() // UserLib records a userspace write happened
		if f.Ino.Mtime != before {
			t.Error("mtime updated before close")
		}
		p.Sleep(10 * sim.Millisecond)
		_ = pr.Close(p, fd)
		if f.Ino.Mtime == before {
			t.Error("mtime not updated at close")
		}
	})
	s.Run()
	s.Shutdown()
}

// TestRevokeInvalidatesTranslationCaches asserts the hardware
// invalidation discipline end to end: once the IOMMU has served (and
// cached) translations for a mapping — IOTLB leaf entries and the
// paging-structure cache's upper-level path — a kernel Revoke must
// leave no translation cache able to resolve the revoked range.
func TestRevokeInvalidatesTranslationCaches(t *testing.T) {
	s, m := newMachine(t)
	pr := m.NewProcess(ext4.Root)
	s.Spawn("app", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", make([]byte, 1<<20))
		_, base, err := pr.OpenBypass(p, "/f", false)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		req := iommu.Request{PASID: pr.PASID, DevID: m.Dev.Config().DevID, VBA: base, Bytes: 4096}
		// Warm every cache level: the first translation descends and
		// populates the PWC, the second is served from it.
		for i := 0; i < 2; i++ {
			if r := m.MMU.Translate(req); r.Status != iommu.OK {
				t.Errorf("warmup translation %d = %v", i, r.Status)
				return
			}
		}
		in, err := m.FS.Lookup(p, "/f", pr.Cred)
		if err != nil {
			t.Error(err)
			return
		}
		m.Revoke(in)
		if r := m.MMU.Translate(req); r.Status != iommu.Fault {
			t.Errorf("post-revoke translation = %v, want fault (stale cached path survived)", r.Status)
		}
	})
	s.Run()
	s.Shutdown()
}
