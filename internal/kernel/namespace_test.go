package kernel

import (
	"errors"
	"testing"

	"repro/internal/ext4"
	"repro/internal/sim"
)

func TestContainerIsolation(t *testing.T) {
	s, m := newMachine(t)
	s.Spawn("main", func(p *sim.Proc) {
		host := m.NewProcess(ext4.Root)
		mkFile(t, p, host, "/host-secret", []byte("host data"))

		c1, err := m.NewContainerProcess(p, ext4.Root, "/containers/c1")
		if err != nil {
			t.Error(err)
			return
		}
		c2, err := m.NewContainerProcess(p, ext4.Root, "/containers/c2")
		if err != nil {
			t.Error(err)
			return
		}

		// Each container sees its own namespace.
		mkFile(t, p, c1, "/data", []byte("container one"))
		mkFile(t, p, c2, "/data", []byte("container two"))
		buf := make([]byte, 13)
		fd, err := c1.Open(p, "/data", false)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c1.Pread(p, fd, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if string(buf) != "container one" {
			t.Errorf("c1 read %q", buf)
		}
		_ = c1.Close(p, fd)

		// The host sees them at their real paths.
		in, err := m.FS.Lookup(p, "/containers/c2/data", ext4.Root)
		if err != nil || in.Size != 13 {
			t.Errorf("host view of c2 file: %v", err)
		}

		// A container cannot reach host files...
		if _, err := c1.Open(p, "/host-secret", false); !errors.Is(err, ext4.ErrNotExist) {
			t.Errorf("container escaped via direct path: %v", err)
		}
		// ...not even with dot-dot tricks.
		if _, err := c1.Open(p, "/../host-secret", false); !errors.Is(err, ext4.ErrNotExist) {
			t.Errorf("container escaped via ..: %v", err)
		}
		if _, err := c1.Open(p, "/a/../../host-secret", false); !errors.Is(err, ext4.ErrNotExist) {
			t.Errorf("container escaped via nested ..: %v", err)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestContainerBypassDWorksUnmodified(t *testing.T) {
	// Paper §5.2: BypassD works readily with containers because the
	// kernel gates open()/fmap() — the direct path then needs no
	// extra checks.
	s, m := newMachine(t)
	s.Spawn("main", func(p *sim.Proc) {
		c, err := m.NewContainerProcess(p, ext4.Root, "/containers/app")
		if err != nil {
			t.Error(err)
			return
		}
		mkFile(t, p, c, "/db", make([]byte, 8192))
		fd, base, err := c.OpenBypass(p, "/db", true)
		if err != nil || base == 0 {
			t.Errorf("containerized OpenBypass: base=%d err=%v", base, err)
			return
		}
		_ = fd
		// And the mapping resolves to the file inside the container
		// root.
		in, err := m.FS.Lookup(p, "/containers/app/db", ext4.Root)
		if err != nil {
			t.Error(err)
			return
		}
		if in.BypassOpens != 1 {
			t.Errorf("BypassOpens = %d", in.BypassOpens)
		}
	})
	s.Run()
	s.Shutdown()
}

func TestContainerRootValidation(t *testing.T) {
	s, m := newMachine(t)
	s.Spawn("main", func(p *sim.Proc) {
		if _, err := m.NewContainerProcess(p, ext4.Root, "/"); err == nil {
			t.Error("container rooted at / accepted")
		}
		if _, err := m.NewContainerProcess(p, ext4.Root, "relative"); err == nil {
			t.Error("relative container root accepted")
		}
	})
	s.Run()
	s.Shutdown()
}
