package kernel

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Process is a simulated OS process: credentials, a PASID-bound page
// table, and a descriptor table. Threads of the process are sim.Procs
// that invoke syscalls with the process as context.
type Process struct {
	M     *Machine
	PID   int
	PASID uint32
	Cred  ext4.Cred
	Table *pagetable.Table
	// Root confines the process's file-system view to a subtree
	// (mount namespace, paper §5.2); empty = host namespace.
	Root string
	// QoS is the process's tenant service class. The BypassD kernel
	// module stamps it onto every user queue the process registers
	// (paper §3.7 delegates inter-process fairness to NVMe queue
	// arbitration; the class is what a QoS-aware arbiter consults).
	// Set it before the first CreateUserQueue; the zero value is the
	// default class.
	QoS nvme.QoS

	// node is the device the process fronts: its file-system view,
	// kernel submission queue, and user queues all live there. Cross-
	// device access from a VBA is what the IOMMU's DevID check denies.
	node *DevNode

	nextVBA uint64
	fds     map[int]*FD
	nextFD  int
}

// FD is an open file description.
type FD struct {
	Ino      *ext4.Inode
	Path     string
	Writable bool
	Offset   int64

	// Bypass is non-nil while the file is fmap()ed for BypassD-
	// interface access.
	Bypass *Attachment

	// timesDirty defers timestamp updates to close/fsync for
	// BypassD-interface files (paper §4.4).
	timesDirty bool
}

// NewProcess creates a process on device node 0 and registers its
// address space with the IOMMU.
func (m *Machine) NewProcess(cred ext4.Cred) *Process {
	return m.NewProcessOn(cred, 0)
}

// NewProcessOn creates a process bound to topology node devIdx: its
// file operations resolve on that node's file system and its I/O
// submits on that node's queues. Tenant placement (striping across a
// fleet) picks the node here; everything downstream routes through it.
func (m *Machine) NewProcessOn(cred ext4.Cred, devIdx int) *Process {
	if devIdx < 0 || devIdx >= len(m.Nodes) {
		panic(fmt.Sprintf("kernel: NewProcessOn(%d) on a %d-node machine", devIdx, len(m.Nodes)))
	}
	m.nextPID++
	m.nextPASID++
	pr := &Process{
		M:       m,
		PID:     m.nextPID,
		PASID:   m.nextPASID,
		Cred:    cred,
		Table:   pagetable.New(),
		node:    m.Nodes[devIdx],
		nextVBA: 0x5000_0000_0000, // fmap region base, PMD aligned
		fds:     make(map[int]*FD),
		nextFD:  3,
	}
	// The driver programs every node's context table: a queue on any
	// node can then walk this process's page table, which is what the
	// cross-device DevID denial (paper §3.4) exercises. Registration
	// is boot/setup-plane work; the per-node IOMMU caches themselves
	// fill only from each node's own shard.
	for _, n := range m.Nodes {
		n.MMU.RegisterPASID(pr.PASID, pr.Table)
	}
	return pr
}

// Dev returns the SSD of the node the process is bound to.
func (pr *Process) Dev() *device.SSD { return pr.node.Dev }

// Node reports the topology index the process is bound to.
func (pr *Process) Node() int { return pr.node.Index }

// Exit closes all descriptors and unregisters the address space.
func (pr *Process) Exit(p *sim.Proc) {
	for fd := range pr.fds {
		_ = pr.Close(p, fd)
	}
	for _, n := range pr.M.Nodes {
		n.MMU.UnregisterPASID(pr.PASID)
	}
}

// enter/exit charge the privilege-mode switches around a syscall.
func (pr *Process) enter(p *sim.Proc) { pr.M.CPU.Compute(p, pr.M.Cfg.SyscallEnter) }
func (pr *Process) exit(p *sim.Proc)  { pr.M.CPU.Compute(p, pr.M.Cfg.SyscallExit) }

// allocVBA reserves a PMD-aligned virtual region of span bytes.
func (pr *Process) allocVBA(span uint64) uint64 {
	base := pr.nextVBA
	span = (span + pagetable.PMDSpan - 1) &^ uint64(pagetable.PMDSpan-1)
	if span == 0 {
		span = pagetable.PMDSpan
	}
	pr.nextVBA += span
	return base
}

// fd resolves a descriptor number.
func (pr *Process) fd(fd int) (*FD, error) {
	f, ok := pr.fds[fd]
	if !ok {
		return nil, fmt.Errorf("kernel: bad file descriptor %d", fd)
	}
	return f, nil
}

// FDInfo exposes the descriptor for UserLib (which shims the libc
// layer and needs the inode's size and the mapping base).
func (pr *Process) FDInfo(fd int) (*FD, error) { return pr.fd(fd) }

// Open opens path through the kernel interface. If another process
// holds the file fmap()ed for direct access, that access is revoked
// (paper §4.5.2: no concurrent BypassD- and kernel-interface access).
func (pr *Process) Open(p *sim.Proc, path string, write bool) (int, error) {
	path, err := pr.resolve(path)
	if err != nil {
		return 0, err
	}
	pr.enter(p)
	defer pr.exit(p)
	fd, _, err := pr.openLocked(p, path, write, false)
	return fd, err
}

// Create creates (or truncates) a file and opens it kernel-interface.
func (pr *Process) Create(p *sim.Proc, path string, perm uint16) (int, error) {
	path, err := pr.resolve(path)
	if err != nil {
		return 0, err
	}
	pr.enter(p)
	defer pr.exit(p)
	m := pr.M
	m.CPU.Compute(p, m.Cfg.OpenCost)
	in, err := pr.node.FS.Create(p, path, perm, pr.Cred)
	if err != nil {
		if err == ext4.ErrExist {
			fd, _, err2 := pr.openLocked(p, path, true, true)
			if err2 != nil {
				return 0, err2
			}
			f, _ := pr.fd(fd)
			if terr := pr.node.FS.Truncate(p, f.Ino, 0); terr != nil {
				return 0, terr
			}
			return fd, nil
		}
		return 0, err
	}
	in.KernelOpens++
	return pr.installFD(in, path, true), nil
}

// openLocked is the shared open path; charged is true when the caller
// already charged OpenCost.
func (pr *Process) openLocked(p *sim.Proc, path string, write, charged bool) (int, *ext4.Inode, error) {
	m := pr.M
	if !charged {
		m.CPU.Compute(p, m.Cfg.OpenCost)
	}
	in, err := pr.node.FS.Lookup(p, path, pr.Cred)
	if err != nil {
		return 0, nil, err
	}
	if in.IsDir() {
		return 0, nil, ext4.ErrIsDir
	}
	if err := pr.node.FS.Access(in, pr.Cred, write); err != nil {
		return 0, nil, err
	}
	in.KernelOpens++
	// Kernel-interface access while others hold the file via the
	// BypassD interface: revoke their direct access.
	if in.BypassOpens > 0 {
		m.Revoke(in)
	}
	return pr.installFD(in, path, write), in, nil
}

func (pr *Process) installFD(in *ext4.Inode, path string, write bool) int {
	fd := pr.nextFD
	pr.nextFD++
	pr.fds[fd] = &FD{Ino: in, Path: path, Writable: write}
	return fd
}

// Close releases a descriptor, detaching any BypassD mapping and
// applying deferred timestamp updates (paper §4.4: timestamps update
// at close/fsync).
func (pr *Process) Close(p *sim.Proc, fd int) error {
	f, err := pr.fd(fd)
	if err != nil {
		return err
	}
	pr.enter(p)
	defer pr.exit(p)
	m := pr.M
	if f.Bypass != nil {
		m.funmap(f.Bypass)
		f.Bypass = nil
		f.Ino.BypassOpens--
	} else {
		f.Ino.KernelOpens--
	}
	if f.timesDirty {
		f.Ino.Mtime = p.Now()
		// Commit lazily: the dirty inode flushes at the next sync
		// point, as mmap()ed files do.
	}
	if f.Ino.BypassOpens == 0 && f.Ino.KernelOpens == 0 {
		m.mu.Lock()
		delete(m.revoked, ikey(f.Ino))
		m.mu.Unlock()
	}
	delete(pr.fds, fd)
	return nil
}

// Unlink removes a file.
func (pr *Process) Unlink(p *sim.Proc, path string) error {
	path, err := pr.resolve(path)
	if err != nil {
		return err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, pr.M.Cfg.OpenCost)
	return pr.node.FS.Unlink(p, path, pr.Cred)
}

// Mkdir creates a directory.
func (pr *Process) Mkdir(p *sim.Proc, path string, perm uint16) error {
	path, err := pr.resolve(path)
	if err != nil {
		return err
	}
	pr.enter(p)
	defer pr.exit(p)
	pr.M.CPU.Compute(p, pr.M.Cfg.OpenCost)
	_, err = pr.node.FS.Mkdir(p, path, perm, pr.Cred)
	return err
}
