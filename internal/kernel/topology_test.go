package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
)

// A fleet built from N copies of one preset is the duplicate-DevID
// trap: every copy hardcodes the same ID, so the Fig. 3 cross-device
// VBA check would compare equal IDs and silently pass. Topology boot
// must hand each device a unique identity — and the denial must then
// actually fire between two same-preset SSDs.
func TestSamePresetFleetDeniesCrossDeviceVBA(t *testing.T) {
	s := sim.New()
	dcfgs := []device.Config{
		device.OptaneP5800X(testCap),
		device.OptaneP5800X(testCap), // same preset, same hardcoded DevID
	}
	m, err := NewMachineN(s, DefaultConfig(), dcfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	id0 := m.Nodes[0].Dev.Config().DevID
	id1 := m.Nodes[1].Dev.Config().DevID
	if id0 == id1 {
		t.Fatalf("same-preset fleet booted with duplicate DevID %d", id0)
	}
	if id0 == 0 || id1 == 0 {
		t.Fatalf("fleet booted with zero DevID (%d, %d)", id0, id1)
	}
	if n0, n1 := m.Nodes[0].Dev.Config().Name, m.Nodes[1].Dev.Config().Name; n0 == n1 {
		t.Fatalf("same-preset fleet kept duplicate device name %q", n0)
	}

	pr := m.NewProcessOn(ext4.Root, 0)
	data := make([]byte, 16384)
	rand.New(rand.NewSource(5)).Read(data)
	s.Spawn("attacker", func(p *sim.Proc) {
		mkFile(t, p, pr, "/f", data)
		_, base, err := pr.OpenBypass(p, "/f", true)
		if err != nil || base == 0 {
			t.Errorf("OpenBypass: base=%d err=%v", base, err)
			return
		}
		// Legitimate path: the owning device serves the VBA.
		own, err := pr.CreateUserQueue(p, 8)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		do := func(q *nvme.QueuePair) nvme.Status {
			if err := q.Submit(nvme.SQE{Opcode: nvme.OpRead, CID: 1, UseVBA: true, VBA: base, Sectors: 8, Buf: buf}); err != nil {
				t.Error(err)
				return nvme.StatusInternalError
			}
			for {
				if c, ok := q.PopCQE(); ok {
					return c.Status
				}
				q.CQReady.Wait(p)
			}
		}
		if st := do(own); !st.OK() {
			t.Errorf("read on owning device: %v", st)
			return
		}
		// Malicious path: same PASID, same VBA, the *other* same-preset
		// device's queue. With the pre-fix duplicate IDs this read
		// would have translated and leaked device 1's sectors.
		evil, err := m.Nodes[1].Dev.CreateQueue(pr.PASID, 8)
		if err != nil {
			t.Error(err)
			return
		}
		if st := do(evil); st != nvme.StatusAccessDenied {
			t.Errorf("cross-device VBA read = %v, want access-denied", st)
		}
	})
	s.Run()
	if got := m.Nodes[1].Dev.Stats().BytesRead; got != 0 {
		t.Fatalf("second device moved %d bytes despite denial", got)
	}
	s.Shutdown()
	m.ReleaseResources()
}

// Mixed-preset fleets already carry distinct hardcoded IDs; boot must
// keep them (single-device boots depend on this for byte-identity
// with the pre-topology machine).
func TestMixedPresetFleetKeepsPresetDevIDs(t *testing.T) {
	s := sim.New()
	dcfgs := []device.Config{device.OptaneP5800X(testCap), device.ZSSD(testCap)}
	want := []uint8{dcfgs[0].DevID, dcfgs[1].DevID}
	m, err := NewMachineN(s, DefaultConfig(), dcfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range m.Nodes {
		if got := n.Dev.Config().DevID; got != want[i] {
			t.Errorf("node %d DevID = %d, want preset's %d", i, got, want[i])
		}
	}
	s.Shutdown()
	m.ReleaseResources()
}

func TestFleetBootErrors(t *testing.T) {
	s := sim.New()
	if _, err := NewMachineN(s, DefaultConfig(), nil, nil); err == nil {
		t.Error("empty fleet booted")
	}
	if _, err := NewMachineN(s, DefaultConfig(),
		[]device.Config{device.OptaneP5800X(testCap), device.OptaneP5800X(testCap)},
		make([]*storage.Store, 1)); err == nil {
		t.Error("store/device count mismatch accepted")
	}
	s.Shutdown()
}
