package kernel

import (
	"fmt"
	"strings"

	"repro/internal/ext4"
	"repro/internal/sim"
)

// Mount namespaces (paper §5.2 "Containers"): BypassD supports
// sharing an SSD between containers with no extra mechanism because
// access control is the kernel's job. A containerized process gets an
// isolated view of the file system — its paths resolve under a
// per-process root — and since fmap() only maps files the kernel let
// the process open, the hardware enforcement composes for free.

// NewContainerProcess creates a process whose file-system view is
// confined under root (which is created if missing). The credential
// applies inside the container as usual.
func (m *Machine) NewContainerProcess(p *sim.Proc, cred ext4.Cred, root string) (*Process, error) {
	if !strings.HasPrefix(root, "/") || root == "/" {
		return nil, fmt.Errorf("kernel: container root %q must be a non-root absolute path", root)
	}
	root = strings.TrimSuffix(root, "/")
	// mkdir -p the container root.
	partial := ""
	for _, c := range strings.Split(strings.TrimPrefix(root, "/"), "/") {
		partial += "/" + c
		if _, err := m.FS.Lookup(p, partial, ext4.Root); err != nil {
			if _, err := m.FS.Mkdir(p, partial, 0o755, ext4.Root); err != nil {
				return nil, err
			}
		}
	}
	pr := m.NewProcess(cred)
	pr.Root = root
	return pr, nil
}

// resolve maps a process-visible path to the global namespace. Path
// normalization in the FS layer strips ".." segments before they are
// joined, so a container cannot climb out of its root.
func (pr *Process) resolve(path string) (string, error) {
	if !strings.HasPrefix(path, "/") {
		return "", fmt.Errorf("kernel: path %q not absolute", path)
	}
	if pr.Root == "" {
		return path, nil
	}
	// Normalize the container-relative path first so ".." cannot
	// escape the root.
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			comps = append(comps, c)
		}
	}
	return pr.Root + "/" + strings.Join(comps, "/"), nil
}
