package kernel

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// io_uring in SQPOLL mode with fixed buffers, the paper's strongest
// kernel-side baseline (§6.3): the application writes submission
// entries into a shared ring without any syscall; a dedicated kernel
// thread polls the ring and executes the I/O; the application polls
// the completion ring. The polling thread costs a core — with one
// ring per application thread, io_uring needs twice the cores of the
// other systems, which is why Fig. 9 shows it collapsing past 12
// threads on the 24-thread machine.

// UringResult is one completion.
type UringResult struct {
	Tag interface{}
	N   int
	Err error
}

type uringReq struct {
	fd    int
	write bool
	off   int64
	buf   []byte
	tag   interface{}
	span  *trace.IOSpan // submitter's span, carried across the ring
}

// Uring is one ring pair with its SQPOLL kernel thread.
type Uring struct {
	pr     *Process
	sq     []uringReq
	cq     []UringResult
	sqCond *sim.Cond
	cqCond *sim.Cond
	closed bool
}

// NewUring sets up a ring and starts its kernel polling thread.
func (pr *Process) NewUring(p *sim.Proc) *Uring {
	pr.enter(p)
	pr.M.CPU.Compute(p, 5*sim.Microsecond) // ring setup + buffer registration
	pr.exit(p)
	u := &Uring{
		pr:     pr,
		sqCond: pr.M.Sim.NewCond(),
		cqCond: pr.M.Sim.NewCond(),
	}
	p.Spawn("sqpoll", u.poll) // shard-local: the poller lives on the submitter's node
	return u
}

// poll is the SQPOLL kernel thread: it spins on the submission ring
// and — in IOPOLL fashion — keeps its core through the device wait,
// so each application thread effectively costs two cores. The
// descheduling penalty past 12 threads on the 24-thread machine is
// Fig. 9's io_uring collapse.
func (u *Uring) poll(p *sim.Proc) {
	m := u.pr.M
	m.CPU.Occupy(p)
	defer m.CPU.Vacate(p)
	for {
		if u.closed {
			return
		}
		if len(u.sq) == 0 {
			u.sqCond.Wait(p)
			m.CPU.Penalty(p)
			continue
		}
		req := u.sq[0]
		u.sq = u.sq[1:]

		// The poller already owns its core (Occupy): raw time, not
		// Compute, or its demand would double-count.
		p.Sleep(m.Cfg.UringVFSCost)
		f, err := u.pr.fd(req.fd)
		var n int
		if err == nil {
			// Thread the submitter's span through the FS → block →
			// NVMe path for the duration of this request.
			p.SetTraceCtx(req.span)
			if req.write {
				lock := m.writeLock(f.Ino)
				lock.Acquire(p)
				n, err = u.pr.node.FS.WriteAt(p, f.Ino, req.off, req.buf)
				m.syncGrowth(f.Ino)
				lock.Release()
			} else {
				n, err = u.pr.node.FS.ReadAt(p, f.Ino, req.off, req.buf)
			}
			p.SetTraceCtx(nil)
		}
		u.cq = append(u.cq, UringResult{Tag: req.tag, N: n, Err: err})
		u.cqCond.Broadcast()
		m.CPU.Penalty(p)
	}
}

// SubmitRead queues a read without entering the kernel.
func (u *Uring) SubmitRead(p *sim.Proc, fd int, buf []byte, off int64, tag interface{}) {
	u.submit(p, uringReq{fd: fd, off: off, buf: buf, tag: tag})
}

// SubmitWrite queues a write without entering the kernel.
func (u *Uring) SubmitWrite(p *sim.Proc, fd int, data []byte, off int64, tag interface{}) {
	u.submit(p, uringReq{fd: fd, write: true, off: off, buf: data, tag: tag})
}

func (u *Uring) submit(p *sim.Proc, r uringReq) {
	u.pr.M.CPU.Compute(p, 50*sim.Nanosecond) // SQE store + doorbell-free publish
	r.span = trace.SpanFrom(p)
	u.sq = append(u.sq, r)
	u.sqCond.Broadcast()
}

// Wait busy-polls the completion ring for one result.
func (u *Uring) Wait(p *sim.Proc) UringResult {
	m := u.pr.M
	for len(u.cq) == 0 {
		m.CPU.BusyWait(p, u.cqCond)
	}
	r := u.cq[0]
	u.cq = u.cq[1:]
	return r
}

// TryReap pops a completion if one is ready.
func (u *Uring) TryReap() (UringResult, bool) {
	if len(u.cq) == 0 {
		return UringResult{}, false
	}
	r := u.cq[0]
	u.cq = u.cq[1:]
	return r, true
}

// Close stops the polling thread.
func (u *Uring) Close() {
	u.closed = true
	u.sqCond.Broadcast()
}
