package kernel

import (
	"fmt"

	"repro/internal/ext4"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Linux-native AIO (io_submit/io_getevents) over O_DIRECT files.
// Submission walks the full VFS/block/driver stack synchronously (as
// libaio does); completion is interrupt-driven and reaped by
// io_getevents. At queue depth 1 the latency matches the synchronous
// path plus the extra syscall pair (paper Fig. 6); at high queue
// depth it trades latency for throughput (the KVell configuration,
// Fig. 16).

// AioOp describes one asynchronous I/O.
type AioOp struct {
	FD    int
	Write bool
	Off   int64
	Buf   []byte
	Tag   interface{} // opaque cookie returned in the result
}

// AioResult is one reaped completion.
type AioResult struct {
	Tag interface{}
	N   int
	Err error
}

// AioContext is an AIO completion context (io_setup).
type AioContext struct {
	pr       *Process
	inflight int
	done     []AioResult
	cond     *sim.Cond

	// reqFree recycles the per-op helper state (and its resolved
	// segment buffer) so a deep-queue submitter like KVell allocates
	// nothing per I/O in steady state.
	reqFree []*aioReq
}

// aioReq carries one submitted op to its helper proc via SpawnArg —
// the per-op closure this replaces was a top allocation site.
type aioReq struct {
	c    *AioContext
	op   AioOp
	segs []sectorSeg
	sp   *trace.IOSpan
}

// NewAioContext creates a context.
func (pr *Process) NewAioContext() *AioContext {
	return &AioContext{pr: pr, cond: pr.M.Sim.NewCond()}
}

// getReq hands out a request box for one submitted op.
func (c *AioContext) getReq() *aioReq {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &aioReq{c: c}
}

// putReq retires a request box, keeping its segment buffer for reuse.
func (c *AioContext) putReq(r *aioReq) {
	r.op = AioOp{}
	r.sp = nil
	c.reqFree = append(c.reqFree, r)
}

// Inflight reports submitted-but-unreaped operations.
func (c *AioContext) Inflight() int { return c.inflight + len(c.done) }

// Submit issues a batch (io_submit): one syscall, full kernel
// submission work per op, returns without waiting.
func (c *AioContext) Submit(p *sim.Proc, ops []AioOp) error {
	pr := c.pr
	pr.enter(p)
	defer pr.exit(p)
	for _, op := range ops {
		f, err := pr.fd(op.FD)
		if err != nil {
			return err
		}
		if op.Off%storage.SectorSize != 0 || int64(len(op.Buf))%storage.SectorSize != 0 {
			return fmt.Errorf("kernel: aio requires sector-aligned O_DIRECT I/O")
		}
		if op.Write && !f.Writable {
			return ext4.ErrPerm
		}
		// AIO does not extend files: writes must stay within the
		// allocated range (KVell preallocates its slabs).
		if op.Off+int64(len(op.Buf)) > f.Ino.AllocatedBlocks()*ext4.BlockSize {
			return fmt.Errorf("kernel: aio beyond allocated range of %s", f.Path)
		}
		var lock *sim.Resource
		if op.Write {
			// i_rwsem: serialize write submission to the same inode.
			lock = pr.M.writeLock(f.Ino)
			lock.Acquire(p)
		}
		pr.vfsCharge(p, len(op.Buf))
		pr.M.CPU.Compute(p, pr.M.Cfg.BlockLayer+pr.M.Cfg.DriverSubmit)

		req := c.getReq()
		segs, err := resolveSectorsInto(req.segs, f.Ino, op.Off, int64(len(op.Buf)))
		if lock != nil {
			lock.Release()
		}
		if err != nil {
			c.putReq(req)
			return err
		}
		c.inflight++
		req.op = op
		req.segs = segs
		// The span belongs to the submitting proc; capture it here so
		// the helper proc's submissions mark the right request.
		req.sp = trace.SpanFrom(p)
		p.SpawnArg("aio-op", aioRun, req)
	}
	return nil
}

// aioRun is the shared helper-proc body: execute one submitted op's
// device commands, post its result, and retire the request box.
func aioRun(w *sim.Proc, arg any) {
	req := arg.(*aioReq)
	c := req.c
	pr := c.pr
	opcode := nvme.OpRead
	if req.op.Write {
		opcode = nvme.OpWrite
	}
	var bad error
	bufOff := int64(0)
	for _, s := range req.segs {
		n := s.Sectors * storage.SectorSize
		st := pr.node.kq.submitRetry(w, nvme.SQE{
			Opcode:  opcode,
			SLBA:    s.Sector,
			Sectors: s.Sectors,
			Buf:     req.op.Buf[bufOff : bufOff+n],
			Span:    req.sp,
		})
		if !st.OK() {
			bad = fmt.Errorf("kernel: aio %v at sector %d on %s: %v",
				opcode, s.Sector, pr.node.Dev.Config().Name, st)
			break
		}
		bufOff += n
	}
	c.inflight--
	n := len(req.op.Buf)
	if bad != nil {
		n = 0
	}
	c.done = append(c.done, AioResult{Tag: req.op.Tag, N: n, Err: bad})
	c.putReq(req)
	c.cond.Broadcast()
}

// GetEvents reaps between min and max completions (io_getevents),
// sleeping (not spinning) while fewer than min are ready.
func (c *AioContext) GetEvents(p *sim.Proc, min, max int) []AioResult {
	pr := c.pr
	pr.enter(p)
	defer pr.exit(p)
	if avail := c.inflight + len(c.done); min > avail {
		min = avail
	}
	for len(c.done) < min {
		c.cond.Wait(p)
	}
	n := len(c.done)
	if n > max {
		n = max
	}
	out := make([]AioResult, n)
	copy(out, c.done)
	c.done = c.done[n:]
	pr.M.CPU.Compute(p, sim.Time(n)*pr.M.Cfg.AioReap)
	return out
}

// sectorSeg is a contiguous device range.
type sectorSeg struct {
	Sector  int64
	Sectors int64
}

// resolveSectors maps a byte range of a file to device sectors using
// the inode's extent tree.
func resolveSectors(in *ext4.Inode, off, length int64) ([]sectorSeg, error) {
	return resolveSectorsInto(nil, in, off, length)
}

// resolveSectorsInto is resolveSectors appending into a caller-reused
// buffer (from segs[:0]); synchronous resubmission loops such as XRP
// chains use it to avoid one allocation per hop.
func resolveSectorsInto(segs []sectorSeg, in *ext4.Inode, off, length int64) ([]sectorSeg, error) {
	segs = segs[:0]
	for length > 0 {
		fb := off / ext4.BlockSize
		disk, ok := in.LookupBlock(fb)
		if !ok {
			return nil, fmt.Errorf("kernel: unmapped file block %d", fb)
		}
		inner := off % ext4.BlockSize
		n := ext4.BlockSize - inner
		if n > length {
			n = length
		}
		sec := disk*ext4.SectorsPerBlock + inner/storage.SectorSize
		cnt := n / storage.SectorSize
		if len(segs) > 0 && segs[len(segs)-1].Sector+segs[len(segs)-1].Sectors == sec {
			segs[len(segs)-1].Sectors += cnt
		} else {
			segs = append(segs, sectorSeg{Sector: sec, Sectors: cnt})
		}
		off += n
		length -= n
	}
	return segs, nil
}
