package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntryEncoding(t *testing.T) {
	e := MakeFTE(0x123456789, 7)
	if !e.Present() || !e.RW() || !e.FT() {
		t.Fatalf("FTE flags wrong: %#x", uint64(e))
	}
	if e.LBA() != 0x123456789 {
		t.Fatalf("LBA = %#x, want 0x123456789", e.LBA())
	}
	if e.DevID() != 7 {
		t.Fatalf("DevID = %d, want 7", e.DevID())
	}

	p := MakePTE(0xabcde, false)
	if !p.Present() || p.RW() || p.FT() {
		t.Fatalf("PTE flags wrong: %#x", uint64(p))
	}
	if p.PFN() != 0xabcde {
		t.Fatalf("PFN = %#x", p.PFN())
	}
}

func TestEntryEncodingProperty(t *testing.T) {
	f := func(rawLBA uint64, dev uint8) bool {
		lba := int64(rawLBA % (1 << 36))
		e := MakeFTE(lba, dev)
		return e.LBA() == lba && e.DevID() == dev && e.FT() && e.Present()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFTEOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("huge LBA did not panic")
		}
	}()
	MakeFTE(1<<36, 0)
}

func TestMapWalkUnmap(t *testing.T) {
	tab := New()
	va := uint64(0x7000_0040_2000)
	tab.Map(va, MakeFTE(800, 1))
	r := tab.Walk(va)
	if !r.Found || r.Entry.LBA() != 800 || !r.EffRW {
		t.Fatalf("walk = %+v", r)
	}
	if r.Levels != 4 {
		t.Fatalf("levels = %d, want 4", r.Levels)
	}
	if !tab.Unmap(va) {
		t.Fatal("unmap reported no entry")
	}
	if tab.Walk(va).Found {
		t.Fatal("walk found entry after unmap")
	}
	if tab.Unmap(va) {
		t.Fatal("double unmap reported an entry")
	}
}

func TestWalkMissAtEachLevel(t *testing.T) {
	tab := New()
	if r := tab.Walk(0x1000); r.Found || r.Levels != 1 {
		t.Fatalf("empty table walk = %+v", r)
	}
	tab.Map(0x1000, MakeFTE(1, 0))
	// Same PT, different page: miss at leaf (4 levels touched).
	if r := tab.Walk(0x2000); r.Found || r.Levels != 4 {
		t.Fatalf("leaf miss walk = %+v", r)
	}
	// Different PGD slot: only the top level is touched.
	if r := tab.Walk(uint64(1) << 40); r.Found || r.Levels != 1 {
		t.Fatalf("high va walk = %+v", r)
	}
}

func TestWalkOutOfRange(t *testing.T) {
	tab := New()
	if r := tab.Walk(MaxVA); r.Found {
		t.Fatal("walk beyond canonical range found entry")
	}
}

func TestAttachPMDAndEffectivePermissions(t *testing.T) {
	// One shared fragment, two processes with different rights.
	frag := &Node{}
	frag.SetEntry(3, MakeFTE(4096, 2))

	rw := New()
	ro := New()
	base := uint64(16 * PMDSpan)
	if _, err := rw.AttachPMD(base, frag, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.AttachPMD(base, frag, false); err != nil {
		t.Fatal(err)
	}

	va := base + 3*PageSize
	r1 := rw.Walk(va)
	if !r1.Found || !r1.EffRW || r1.Entry.LBA() != 4096 {
		t.Fatalf("rw walk = %+v", r1)
	}
	r2 := ro.Walk(va)
	if !r2.Found || r2.EffRW {
		t.Fatalf("ro walk = %+v (EffRW should be false)", r2)
	}

	// Patching the shared fragment is visible through both tables.
	frag.SetEntry(9, MakeFTE(9999, 2))
	if r := ro.Walk(base + 9*PageSize); !r.Found || r.Entry.LBA() != 9999 {
		t.Fatalf("shared patch not visible: %+v", r)
	}
}

func TestAttachAlignment(t *testing.T) {
	tab := New()
	if _, err := tab.AttachPMD(PageSize, &Node{}, true); err == nil {
		t.Fatal("unaligned attach succeeded")
	}
}

func TestDetachPMDRevokes(t *testing.T) {
	frag := &Node{}
	frag.SetEntry(0, MakeFTE(100, 0))
	tab := New()
	base := uint64(4 * PMDSpan)
	if _, err := tab.AttachPMD(base, frag, true); err != nil {
		t.Fatal(err)
	}
	if !tab.Walk(base).Found {
		t.Fatal("walk failed before detach")
	}
	if !tab.DetachPMD(base) {
		t.Fatal("detach reported nothing attached")
	}
	if tab.Walk(base).Found {
		t.Fatal("walk succeeded after detach (revocation broken)")
	}
	if tab.DetachPMD(base) {
		t.Fatal("double detach reported an attachment")
	}
}

func TestFileTableBuild(t *testing.T) {
	lbas := []int64{8, 16, -1, 32}
	ft := BuildFileTable(3, lbas)
	if ft.Pages() != 4 {
		t.Fatalf("pages = %d, want 4", ft.Pages())
	}
	if ft.PTEs() != 3 {
		t.Fatalf("PTEs = %d, want 3 (one hole)", ft.PTEs())
	}
	if len(ft.Fragments()) != 1 {
		t.Fatalf("frags = %d, want 1", len(ft.Fragments()))
	}
}

func TestFileTableMultiFragment(t *testing.T) {
	ft := NewFileTable(0)
	pages := EntriesPer*2 + 10 // spills into a third fragment
	for i := 0; i < pages; i++ {
		ft.SetPage(i, int64(i*8))
	}
	if got := len(ft.Fragments()); got != 3 {
		t.Fatalf("fragments = %d, want 3", got)
	}
	if ft.SpanBytes() != 3*PMDSpan {
		t.Fatalf("span = %d", ft.SpanBytes())
	}

	tab := New()
	base := uint64(0x4000_0000_0000)
	updates, err := ft.Attach(tab, base, true)
	if err != nil {
		t.Fatal(err)
	}
	if updates < 3 {
		t.Fatalf("updates = %d, want >= 3 (one per fragment)", updates)
	}
	// Check a page in each fragment.
	for _, pg := range []int{0, EntriesPer + 5, 2*EntriesPer + 9} {
		r := tab.Walk(base + uint64(pg)*PageSize)
		if !r.Found || r.Entry.LBA() != int64(pg*8) {
			t.Fatalf("page %d walk = %+v", pg, r)
		}
	}
	// Unmapped page within span.
	if r := tab.Walk(base + uint64(2*EntriesPer+10)*PageSize); r.Found {
		t.Fatal("hole page resolved")
	}

	ft.Detach(tab, base)
	if tab.Walk(base).Found {
		t.Fatal("walk succeeded after Detach")
	}
}

func TestFileTableTruncate(t *testing.T) {
	ft := NewFileTable(0)
	for i := 0; i < 20; i++ {
		ft.SetPage(i, int64(i))
	}
	ft.Truncate(5)
	if ft.Pages() != 5 {
		t.Fatalf("pages after truncate = %d, want 5", ft.Pages())
	}
	if ft.PTEs() != 5 {
		t.Fatalf("PTEs after truncate = %d, want 5", ft.PTEs())
	}
	// Growing again reuses cleared slots.
	ft.SetPage(7, 70)
	if ft.Pages() != 8 || ft.PTEs() != 6 {
		t.Fatalf("pages/PTEs = %d/%d after regrow", ft.Pages(), ft.PTEs())
	}
}

func TestClearPage(t *testing.T) {
	ft := BuildFileTable(0, []int64{8, 16, 24})
	ft.ClearPage(1)
	if ft.PTEs() != 2 {
		t.Fatalf("PTEs = %d, want 2", ft.PTEs())
	}
	ft.ClearPage(99) // out of range: no-op
	ft.ClearPage(-1)
}

// Property: walking any page mapped through a file table returns the
// exact LBA that was set.
func TestFileTableWalkProperty(t *testing.T) {
	f := func(seedPages []uint16) bool {
		if len(seedPages) == 0 {
			return true
		}
		ft := NewFileTable(5)
		want := map[int]int64{}
		for i, sp := range seedPages {
			pg := int(sp) % 2048
			lba := int64(i*8 + 8)
			ft.SetPage(pg, lba)
			want[pg] = lba
		}
		tab := New()
		base := uint64(0x2000_0000_0000)
		if _, err := ft.Attach(tab, base, true); err != nil {
			return false
		}
		for pg, lba := range want {
			r := tab.Walk(base + uint64(pg)*PageSize)
			if !r.Found || r.Entry.LBA() != lba || r.Entry.DevID() != 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// buildRandomTable assembles a deliberately messy table from a seed:
// sparse and dense file-table fragments, holes inside fragments,
// detached PMDs, regular (non-FT) PTE leaves, and read-only
// attachments — every shape the WalkRange fast path must reproduce.
func buildRandomTable(seed int64) (*Table, uint64, int) {
	rng := rand.New(rand.NewSource(seed))
	tab := New()
	base := uint64(0x2000_0000_0000)
	regions := 2 + rng.Intn(5) // 2 MiB regions covered by the scan
	for ri := 0; ri < regions; ri++ {
		va := base + uint64(ri)*PMDSpan
		switch rng.Intn(5) {
		case 0: // never attached: upper levels dead-end
		case 1: // dense fragment
			ft := NewFileTable(7)
			for pg := 0; pg < EntriesPer; pg++ {
				ft.SetPage(pg, int64(pg*8+8))
			}
			_, _ = ft.Attach(tab, va, rng.Intn(2) == 0)
		case 2: // sparse fragment with holes
			ft := NewFileTable(7)
			for pg := 0; pg < EntriesPer; pg++ {
				if rng.Intn(3) == 0 {
					ft.SetPage(pg, int64(pg*8+8))
				} else {
					ft.growTo(pg + 1)
				}
			}
			_, _ = ft.Attach(tab, va, true)
		case 3: // attached then detached (revocation)
			ft := NewFileTable(7)
			ft.SetPage(0, 8)
			_, _ = ft.Attach(tab, va, true)
			tab.DetachPMD(va)
		case 4: // regular PTE leaves mixed with FTEs
			for pg := 0; pg < EntriesPer; pg += 1 + rng.Intn(7) {
				pva := va + uint64(pg)*PageSize
				if rng.Intn(2) == 0 {
					tab.Map(pva, MakePTE(uint64(pg)+100, rng.Intn(2) == 0))
				} else {
					tab.Map(pva, MakeFTE(int64(pg*8+8), 7))
				}
			}
		}
	}
	return tab, base, regions * EntriesPer
}

// Property: WalkRange over randomized sparse/dense tables — holes,
// detached PMDs, mixed FTE/PTE leaves — is result-identical to
// per-page Walk, including the Levels accounting on misses.
func TestWalkRangeMatchesWalkProperty(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		tab, base, pages := buildRandomTable(seed)
		// Start the scan off-region-alignment sometimes to cover
		// partial leading leaf windows.
		rng := rand.New(rand.NewSource(seed * 77))
		start := base + uint64(rng.Intn(EntriesPer))*PageSize
		n := 1 + rng.Intn(pages)
		got := make([]WalkResult, 0, n)
		tab.WalkRange(start, n, func(i int, r WalkResult) bool {
			if i != len(got) {
				t.Fatalf("seed %d: visit index %d out of order", seed, i)
			}
			got = append(got, r)
			return true
		})
		if len(got) != n {
			t.Fatalf("seed %d: visited %d of %d pages", seed, len(got), n)
		}
		for i, r := range got {
			want := tab.Walk(start + uint64(i)*PageSize)
			if r != want {
				t.Fatalf("seed %d page %d: WalkRange %+v != Walk %+v", seed, i, r, want)
			}
		}
	}
}

// WalkRange must stop the moment visit returns false.
func TestWalkRangeEarlyStop(t *testing.T) {
	ft := NewFileTable(7)
	for pg := 0; pg < 8; pg++ {
		ft.SetPage(pg, int64(pg*8+8))
	}
	tab := New()
	base := uint64(0x2000_0000_0000)
	if _, err := ft.Attach(tab, base, true); err != nil {
		t.Fatal(err)
	}
	visits := 0
	tab.WalkRange(base, 8, func(i int, r WalkResult) bool {
		visits++
		return i < 2
	})
	if visits != 3 {
		t.Fatalf("visits = %d, want 3 (stop after visit returns false at i=2)", visits)
	}
}

// WalkRange beyond the canonical user half fails like Walk does.
func TestWalkRangeOutOfRange(t *testing.T) {
	tab := New()
	start := MaxVA - 2*PageSize
	var got []WalkResult
	tab.WalkRange(start, 4, func(i int, r WalkResult) bool {
		got = append(got, r)
		return true
	})
	for i, r := range got {
		want := tab.Walk(start + uint64(i)*PageSize)
		if r != want {
			t.Fatalf("page %d: %+v != %+v", i, r, want)
		}
	}
	if len(got) != 4 {
		t.Fatalf("visited %d pages, want 4", len(got))
	}
}
