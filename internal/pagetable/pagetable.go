// Package pagetable implements x86-64-style 4-level radix page tables
// extended with BypassD's File Table Entries (FTEs).
//
// An FTE is a leaf page-table entry that carries a device Logical
// Block Address (in 512 B sectors) plus a device ID in place of a
// physical frame number, distinguished by the FT bit (paper Fig. 3).
// The kernel file system builds *shared* file-table fragments —
// bottom-up radix subtrees whose leaves are FTEs — and attaches them
// into a process's private page table at PMD (2 MiB) granularity
// during fmap() (paper Fig. 4, §4.1).
//
// Per-open access rights live in the private attachment entry: shared
// FTE leaves always carry R/W, and the effective permission of a walk
// is the AND of the R/W bits along the path, exactly as the paper
// describes for processes opening the same file with different modes.
package pagetable

import (
	"fmt"
	"sync"
)

// Virtual-memory geometry.
const (
	PageSize   = 4096            // bytes mapped by one leaf entry
	PageShift  = 12              //
	EntriesPer = 512             // entries per table node
	PMDSpan    = PageSize * 512  // 2 MiB: bytes mapped by one leaf node
	PUDSpan    = PMDSpan * 512   // 1 GiB
	VABits     = 48              // canonical virtual address width
	MaxVA      = uint64(1) << 47 // user half of the canonical space

	// sectorsPerPage is the LBA stride between consecutive mapped
	// pages (512-byte device sectors per 4 KiB page), used by SetRun.
	sectorsPerPage = PageSize / 512
)

// Entry is a page-table entry. Bit layout (simulation-defined but in
// the spirit of x86-64 + paper Fig. 3):
//
//	bit 0      present
//	bit 1      writable (R/W)
//	bit 2      user
//	bits 12-47 payload: PFN for regular entries, LBA sector for FTEs
//	bits 48-55 DevID (FTEs only)
//	bit 58     FT — file table entry marker
type Entry uint64

// Entry flag bits.
const (
	FlagPresent Entry = 1 << 0
	FlagRW      Entry = 1 << 1
	FlagUser    Entry = 1 << 2
	FlagFT      Entry = 1 << 58

	payloadShift       = 12
	payloadMask  Entry = ((1 << 36) - 1) << payloadShift
	devIDShift         = 48
	devIDMask    Entry = 0xff << devIDShift
)

// MakeFTE builds a file table entry mapping one 4 KiB file page to the
// device sector lba on device devID. Shared FTEs always carry R/W;
// restrictive permissions are applied at the attachment point.
func MakeFTE(lba int64, devID uint8) Entry {
	if lba < 0 || lba >= 1<<36 {
		panic(fmt.Sprintf("pagetable: LBA %d out of range", lba))
	}
	return FlagPresent | FlagRW | FlagUser | FlagFT |
		Entry(lba)<<payloadShift | Entry(devID)<<devIDShift
}

// MakePTE builds a regular page table entry for physical frame pfn.
func MakePTE(pfn uint64, rw bool) Entry {
	e := FlagPresent | FlagUser | Entry(pfn)<<payloadShift
	if rw {
		e |= FlagRW
	}
	return e
}

// Present reports whether the entry is valid.
func (e Entry) Present() bool { return e&FlagPresent != 0 }

// RW reports whether the entry permits writes.
func (e Entry) RW() bool { return e&FlagRW != 0 }

// FT reports whether the entry is a file table entry.
func (e Entry) FT() bool { return e&FlagFT != 0 }

// LBA returns the device sector payload of an FTE.
func (e Entry) LBA() int64 { return int64((e & payloadMask) >> payloadShift) }

// PFN returns the physical frame payload of a regular PTE.
func (e Entry) PFN() uint64 { return uint64((e & payloadMask) >> payloadShift) }

// DevID returns the device identifier of an FTE.
func (e Entry) DevID() uint8 { return uint8((e & devIDMask) >> devIDShift) }

// Node is one radix-tree node: 512 entries plus, for non-leaf levels,
// the corresponding child pointers (the simulation's stand-in for the
// physical frames the entries would reference).
type Node struct {
	entries [EntriesPer]Entry
	// children is allocated lazily: leaf nodes (file-table fragments,
	// PT leaves) never populate it, keeping them pointer-free — the
	// garbage collector skips their 4 KiB entry arrays entirely.
	children *[EntriesPer]*Node
}

// child returns child i, or nil when no child array exists.
func (n *Node) child(i int) *Node {
	if n.children == nil {
		return nil
	}
	return n.children[i]
}

// setChild stores child i, allocating the child array on first use.
func (n *Node) setChild(i int, c *Node) {
	if n.children == nil {
		if c == nil {
			return
		}
		n.children = new([EntriesPer]*Node)
	}
	n.children[i] = c
}

// nodePool recycles Nodes across the thousands of systems an
// experiment sweep boots. Nodes are cleared on Put, so a pooled node
// is indistinguishable from a fresh one and holds no references.
var nodePool sync.Pool

// getNode returns a zeroed node, recycled when one is free.
func getNode() *Node {
	if v := nodePool.Get(); v != nil {
		return v.(*Node)
	}
	return &Node{}
}

// putNode clears n and returns it to the pool. Only whole-machine
// teardown may call it (via FileTable.Release): any table still
// holding n as a child would alias the next tenant.
func putNode(n *Node) {
	clear(n.entries[:])
	n.children = nil
	nodePool.Put(n)
}

// Entry returns entry i of the node.
func (n *Node) Entry(i int) Entry { return n.entries[i] }

// SetEntry stores entry i of a leaf node.
func (n *Node) SetEntry(i int, e Entry) { n.entries[i] = e }

// index extracts the 9-bit table index for level lvl (4=PGD .. 1=PT).
func index(va uint64, lvl int) int {
	return int(va >> uint(PageShift+9*(lvl-1)) & (EntriesPer - 1))
}

// Table is a process page table tree.
type Table struct {
	root *Node
}

// New returns an empty page table.
func New() *Table { return &Table{root: &Node{}} }

// WalkResult describes the outcome of a page walk.
type WalkResult struct {
	Entry  Entry // the leaf entry (zero if !Found)
	EffRW  bool  // AND of R/W bits along the walk path
	Levels int   // table levels touched (for latency modelling)
	Found  bool  // a present leaf entry was reached
}

// Walk resolves va to its leaf entry, tracking the effective
// permission along the path.
func (t *Table) Walk(va uint64) WalkResult {
	if va >= MaxVA {
		return WalkResult{Levels: 1}
	}
	n := t.root
	effRW := true
	for lvl := 4; lvl >= 2; lvl-- {
		i := index(va, lvl)
		e := n.entries[i]
		c := n.child(i)
		if !e.Present() || c == nil {
			return WalkResult{Levels: 5 - lvl}
		}
		effRW = effRW && e.RW()
		n = c
	}
	leaf := n.entries[index(va, 1)]
	if !leaf.Present() {
		return WalkResult{Levels: 4}
	}
	return WalkResult{
		Entry:  leaf,
		EffRW:  effRW && leaf.RW(),
		Levels: 4,
		Found:  true,
	}
}

// LeafFor descends the three upper levels and returns the resident
// leaf node covering va's 2 MiB region plus the AND of the R/W bits
// along the descent. ok is false when the descent dead-ends; levels
// reports the table levels touched either way, matching Walk's
// accounting (a reachable leaf counts the leaf-entry load as the
// fourth level).
//
// Exposing the node lets callers stay resident in it — the IOMMU's
// segment walker and paging-structure cache stream all 512 entries of
// a 2 MiB region from one descent instead of re-walking per page.
func (t *Table) LeafFor(va uint64) (leaf *Node, effRW bool, levels int, ok bool) {
	if va >= MaxVA {
		return nil, false, 1, false
	}
	n := t.root
	effRW = true
	for lvl := 4; lvl >= 2; lvl-- {
		i := index(va, lvl)
		e := n.entries[i]
		c := n.child(i)
		if !e.Present() || c == nil {
			return nil, false, 5 - lvl, false
		}
		effRW = effRW && e.RW()
		n = c
	}
	return n, effRW, 4, true
}

// WalkRange resolves pages consecutive pages starting at va, invoking
// visit(i, r) with a result identical to Walk(va + i*PageSize) for
// each. It descends root→leaf once per 512-entry leaf node (2 MiB
// region) and streams entries from the resident node, so an N-page
// scan costs ceil(N/512) descents instead of N. visit returning false
// stops the scan.
func (t *Table) WalkRange(va uint64, pages int, visit func(i int, r WalkResult) bool) {
	for i := 0; i < pages; {
		pva := va + uint64(i)*PageSize
		if pva >= MaxVA {
			// Out-of-range pages fail identically to Walk. Regions are
			// 2 MiB aligned and MaxVA is region aligned, so once past
			// the boundary every remaining page is out of range too.
			for ; i < pages; i++ {
				if !visit(i, WalkResult{Levels: 1}) {
					return
				}
			}
			return
		}
		leaf, effRW, levels, ok := t.LeafFor(pva)
		idx := int(pva >> PageShift & (EntriesPer - 1))
		n := EntriesPer - idx
		if n > pages-i {
			n = pages - i
		}
		if !ok {
			// The upper-level indexes are shared by every page of the
			// region, so the per-page Walk would dead-end identically.
			r := WalkResult{Levels: levels}
			for j := 0; j < n; j++ {
				if !visit(i+j, r) {
					return
				}
			}
			i += n
			continue
		}
		for j := 0; j < n; j++ {
			e := leaf.entries[idx+j]
			r := WalkResult{Levels: 4}
			if e.Present() {
				r = WalkResult{Entry: e, EffRW: effRW && e.RW(), Levels: 4, Found: true}
			}
			if !visit(i+j, r) {
				return
			}
		}
		i += n
	}
}

// ensurePath builds intermediate nodes down to the leaf table
// containing va and returns that leaf node. Intermediate pointer
// entries are created present+RW+user.
func (t *Table) ensurePath(va uint64) *Node {
	n := t.root
	for lvl := 4; lvl >= 2; lvl-- {
		i := index(va, lvl)
		c := n.child(i)
		if c == nil {
			c = &Node{}
			n.setChild(i, c)
			n.entries[i] = FlagPresent | FlagRW | FlagUser
		}
		n = c
	}
	return n
}

// Map installs a leaf entry for va, creating intermediate levels.
func (t *Table) Map(va uint64, e Entry) {
	if va >= MaxVA {
		panic(fmt.Sprintf("pagetable: va %#x out of range", va))
	}
	t.ensurePath(va).entries[index(va, 1)] = e
}

// Unmap clears the leaf entry for va, reporting whether one existed.
func (t *Table) Unmap(va uint64) bool {
	n := t.root
	for lvl := 4; lvl >= 2; lvl-- {
		i := index(va, lvl)
		if n = n.child(i); n == nil {
			return false
		}
	}
	i := index(va, 1)
	had := n.entries[i].Present()
	n.entries[i] = 0
	return had
}

// AttachPMD splices a shared leaf node (one 2 MiB file-table fragment)
// into the table at va, which must be PMD-aligned. The R/W bit of the
// private PMD entry encodes this process's access right for the
// fragment (paper §4.1: per-open permissions live in the private part
// of the tree). It returns the number of intermediate entries created,
// for fmap() cost accounting.
func (t *Table) AttachPMD(va uint64, frag *Node, rw bool) (created int, err error) {
	if va%PMDSpan != 0 {
		return 0, fmt.Errorf("pagetable: attach va %#x not 2MiB aligned", va)
	}
	if va >= MaxVA {
		return 0, fmt.Errorf("pagetable: va %#x out of range", va)
	}
	n := t.root
	for lvl := 4; lvl >= 3; lvl-- {
		i := index(va, lvl)
		c := n.child(i)
		if c == nil {
			c = &Node{}
			n.setChild(i, c)
			n.entries[i] = FlagPresent | FlagRW | FlagUser
			created++
		}
		n = c
	}
	i := index(va, 2)
	e := FlagPresent | FlagUser
	if rw {
		e |= FlagRW
	}
	n.entries[i] = e
	n.setChild(i, frag)
	return created, nil
}

// DetachPMD removes the fragment attached at va, reporting whether one
// was present. Detaching makes every VBA in the 2 MiB range fault in
// the IOMMU — this is the revocation primitive (paper §3.6).
func (t *Table) DetachPMD(va uint64) bool {
	if va%PMDSpan != 0 {
		return false
	}
	n := t.root
	for lvl := 4; lvl >= 3; lvl-- {
		i := index(va, lvl)
		if n = n.child(i); n == nil {
			return false
		}
	}
	i := index(va, 2)
	had := n.child(i) != nil
	n.setChild(i, nil)
	n.entries[i] = 0
	return had
}

// FileTable is the shared, pre-populated set of leaf fragments mapping
// one file's blocks, cached in the file's VFS inode (paper §4.1). Each
// fragment covers 2 MiB of the file. Because fragments are shared by
// every process that fmap()s the file, extending the file patches all
// mappings at once.
type FileTable struct {
	DevID uint8
	frags []*Node
	pages int
	// present counts mapped entries so PTEs() — charged on every
	// cold fmap — does not rescan the whole table.
	present int
}

// NewFileTable returns an empty file table for a file on devID.
func NewFileTable(devID uint8) *FileTable {
	return &FileTable{DevID: devID}
}

// BuildFileTable constructs a file table from per-page sector
// addresses. A negative LBA leaves a hole (unmapped page).
func BuildFileTable(devID uint8, lbas []int64) *FileTable {
	ft := NewFileTable(devID)
	for i, lba := range lbas {
		if lba >= 0 {
			ft.SetPage(i, lba)
		} else {
			ft.growTo(i + 1)
		}
	}
	return ft
}

func (ft *FileTable) growTo(pages int) {
	for pages > len(ft.frags)*EntriesPer {
		ft.frags = append(ft.frags, getNode())
	}
	if pages > ft.pages {
		ft.pages = pages
	}
}

// Release returns the table's fragments to the node pool. Only a
// teardown path that owns the whole machine may call it: processes
// with the file fmap()ed still hold the fragments as PMD children,
// and any later walk would alias recycled nodes.
func (ft *FileTable) Release() {
	for i, f := range ft.frags {
		putNode(f)
		ft.frags[i] = nil
	}
	ft.frags = nil
	ft.pages = 0
	ft.present = 0
}

// SetPage maps file page idx to device sector lba, growing the
// fragment list as needed.
func (ft *FileTable) SetPage(idx int, lba int64) {
	if idx < 0 {
		panic("pagetable: negative page index")
	}
	ft.growTo(idx + 1)
	slot := &ft.frags[idx/EntriesPer].entries[idx%EntriesPer]
	if !slot.Present() {
		ft.present++
	}
	*slot = MakeFTE(lba, ft.DevID)
}

// SetRun maps n consecutive file pages starting at idx to consecutive
// sectors starting at lba, the common shape of an extent. It fills
// fragment arrays directly instead of re-deriving the fragment and
// flag bits per page.
func (ft *FileTable) SetRun(idx int, lba int64, n int) {
	if n <= 0 {
		return
	}
	if idx < 0 {
		panic("pagetable: negative page index")
	}
	if lba < 0 || lba+int64(n)*sectorsPerPage > 1<<36 {
		panic(fmt.Sprintf("pagetable: LBA run [%d,+%d) out of range", lba, n))
	}
	ft.growTo(idx + n)
	fte := MakeFTE(lba, ft.DevID)
	const step = Entry(sectorsPerPage) << payloadShift
	for n > 0 {
		frag := ft.frags[idx/EntriesPer]
		i := idx % EntriesPer
		run := EntriesPer - i
		if run > n {
			run = n
		}
		for k := i; k < i+run; k++ {
			if !frag.entries[k].Present() {
				ft.present++
			}
			frag.entries[k] = fte
			fte += step
		}
		idx += run
		n -= run
	}
}

// ClearPage unmaps file page idx (block deallocated). Present pages
// beyond remain mapped; Pages() is unchanged.
func (ft *FileTable) ClearPage(idx int) {
	if idx < 0 || idx >= len(ft.frags)*EntriesPer {
		return
	}
	slot := &ft.frags[idx/EntriesPer].entries[idx%EntriesPer]
	if slot.Present() {
		ft.present--
	}
	*slot = 0
}

// Truncate drops all pages at or beyond page idx.
func (ft *FileTable) Truncate(idx int) {
	for i := idx; i < ft.pages; i++ {
		ft.ClearPage(i)
	}
	if idx < ft.pages {
		ft.pages = idx
	}
}

// Pages reports the number of file pages covered (including holes).
func (ft *FileTable) Pages() int { return ft.pages }

// Fragments returns the shared leaf nodes, each covering 2 MiB.
func (ft *FileTable) Fragments() []*Node { return ft.frags }

// PTEs reports the count of present entries, for cold-fmap cost and
// memory-overhead accounting (8 bytes per entry, paper §6.3).
func (ft *FileTable) PTEs() int { return ft.present }

// SpanBytes reports the virtual-region size needed to attach the
// table: the file size rounded up to 2 MiB fragments.
func (ft *FileTable) SpanBytes() uint64 {
	return uint64(len(ft.frags)) * PMDSpan
}

// Attach splices every fragment of the file table into t starting at
// base (PMD-aligned), with the given access right. It returns the
// total intermediate entries created plus one pointer update per
// fragment, the work a warm fmap() performs.
func (ft *FileTable) Attach(t *Table, base uint64, rw bool) (updates int, err error) {
	if base%PMDSpan != 0 {
		return 0, fmt.Errorf("pagetable: base %#x not 2MiB aligned", base)
	}
	for i, frag := range ft.frags {
		created, err := t.AttachPMD(base+uint64(i)*PMDSpan, frag, rw)
		if err != nil {
			return updates, err
		}
		updates += created + 1
	}
	return updates, nil
}

// Detach removes every fragment of the file table from t at base.
func (ft *FileTable) Detach(t *Table, base uint64) {
	for i := range ft.frags {
		t.DetachPMD(base + uint64(i)*PMDSpan)
	}
}
