package ycsb

import (
	"testing"
)

func TestMixProportions(t *testing.T) {
	const n = 100000
	for name, wl := range Workloads {
		g := NewGenerator(wl, 1<<20, 1)
		counts := map[OpType]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Type]++
		}
		check := func(op OpType, want float64) {
			got := float64(counts[op]) / n
			if got < want-0.02 || got > want+0.02 {
				t.Errorf("workload %s %v fraction = %.3f, want %.2f", name, op, got, want)
			}
		}
		check(Read, wl.ReadProp)
		check(Update, wl.UpdateProp)
		check(Insert, wl.InsertProp)
		check(Scan, wl.ScanProp)
		check(ReadModifyWrite, wl.RMWProp)
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(C, 1<<20, 7)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Top-1% of distinct keys should absorb a large share of
	// requests (zipf theta=0.99 concentrates mass heavily).
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	total, top := 0, 0
	for _, f := range freqs {
		total += f
	}
	// max frequency alone should far exceed uniform expectation.
	max := 0
	for _, f := range freqs {
		if f > max {
			max = f
		}
	}
	uniformExpect := float64(n) / (1 << 20)
	if float64(max) < 50*uniformExpect {
		t.Fatalf("zipfian not skewed: max key freq %d vs uniform %.1f", max, uniformExpect)
	}
	_ = top
	_ = total
}

func TestUniformIsNotSkewed(t *testing.T) {
	wl := C
	wl.Dist = Uniform
	g := NewGenerator(wl, 1000, 7)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) > 3*float64(n)/1000 {
		t.Fatalf("uniform distribution skewed: max %d", max)
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(D, 10000, 3)
	recent := 0
	const n = 50000
	reads := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Type != Read {
			continue
		}
		reads++
		if op.Key >= g.Records()-g.Records()/10 {
			recent++
		}
	}
	if float64(recent)/float64(reads) < 0.5 {
		t.Fatalf("latest distribution: only %.2f of reads in newest 10%%", float64(recent)/float64(reads))
	}
}

func TestInsertsGrowKeySpace(t *testing.T) {
	g := NewGenerator(D, 1000, 9)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Type == Insert {
			if op.Key < 1000 {
				t.Fatalf("insert reused existing key %d", op.Key)
			}
			if seen[op.Key] {
				t.Fatalf("insert key %d repeated", op.Key)
			}
			seen[op.Key] = true
		}
		if op.Key >= g.Records() {
			t.Fatalf("key %d beyond key space %d", op.Key, g.Records())
		}
	}
	if g.Records() == 1000 {
		t.Fatal("no inserts happened in workload D")
	}
}

func TestScanLengths(t *testing.T) {
	g := NewGenerator(E, 10000, 4)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Type == Scan {
			if op.ScanLen < 1 || op.ScanLen > E.MaxScanLen {
				t.Fatalf("scan length %d out of [1,%d]", op.ScanLen, E.MaxScanLen)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(A, 10000, 42)
	g2 := NewGenerator(A, 10000, 42)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("generators with the same seed diverged")
		}
	}
}

func TestKeysInRange(t *testing.T) {
	for _, wl := range Workloads {
		g := NewGenerator(wl, 5000, 11)
		for i := 0; i < 20000; i++ {
			op := g.Next()
			if op.Key >= g.Records() {
				t.Fatalf("workload %s key %d out of range %d", wl.Name, op.Key, g.Records())
			}
		}
	}
}
