// Package ycsb generates YCSB workloads A-F (Cooper et al.), the
// request streams driving the paper's WiredTiger and KVell
// experiments (Figs. 13, 14, 16). The zipfian generator follows the
// standard YCSB implementation (Gray et al.'s algorithm with
// theta = 0.99 and scrambled key order).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType is a workload operation kind.
type OpType int

// Operation kinds.
const (
	Read OpType = iota
	Update
	Insert
	Scan
	ReadModifyWrite
)

func (t OpType) String() string {
	switch t {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Scan:
		return "scan"
	case ReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("op(%d)", int(t))
	}
}

// Op is one generated request.
type Op struct {
	Type    OpType
	Key     uint64
	ScanLen int
}

// Dist selects the request distribution.
type Dist string

// Distributions.
const (
	Zipfian Dist = "zipfian"
	Uniform Dist = "uniform"
	Latest  Dist = "latest"
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Dist
	MaxScanLen int
}

// The six core workloads.
var (
	A = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian}
	B = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian}
	C = Workload{Name: "C", ReadProp: 1.0, Dist: Zipfian}
	D = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest}
	E = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: Zipfian, MaxScanLen: 100}
	F = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian}
)

// Workloads maps names to definitions.
var Workloads = map[string]Workload{
	"A": A, "B": B, "C": C, "D": D, "E": E, "F": F,
}

const theta = 0.99

// zipfGen samples ranks in [0, n) with zipfian skew (YCSB
// parameters).
type zipfGen struct {
	n     uint64
	zetan float64
	zeta2 float64
	alpha float64
	eta   float64
}

func zeta(n uint64, th float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), th)
	}
	return sum
}

func newZipf(n uint64) *zipfGen {
	z := &zipfGen{n: n}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func (z *zipfGen) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// fnv64 scrambles ranks so hot keys spread over the key space.
func fnv64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// Generator produces a deterministic request stream.
type Generator struct {
	wl      Workload
	rng     *rand.Rand
	zipf    *zipfGen
	records uint64 // grows with inserts
}

// NewGenerator creates a generator over records existing keys.
func NewGenerator(wl Workload, records uint64, seed int64) *Generator {
	if records == 0 {
		panic("ycsb: empty key space")
	}
	g := &Generator{
		wl:      wl,
		rng:     rand.New(rand.NewSource(seed)),
		records: records,
	}
	if wl.Dist == Zipfian || wl.Dist == Latest {
		g.zipf = newZipf(records)
	}
	return g
}

// Records reports the current key-space size (grows on inserts).
func (g *Generator) Records() uint64 { return g.records }

// nextKey samples a key for read-like operations.
func (g *Generator) nextKey() uint64 {
	switch g.wl.Dist {
	case Uniform:
		return uint64(g.rng.Int63n(int64(g.records)))
	case Latest:
		// Most popular = most recently inserted.
		r := g.zipf.next(g.rng)
		if r >= g.records {
			r = g.records - 1
		}
		return g.records - 1 - r
	default: // zipfian, scrambled
		return fnv64(g.zipf.next(g.rng)) % g.records
	}
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	wl := g.wl
	switch {
	case p < wl.ReadProp:
		return Op{Type: Read, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp:
		return Op{Type: Update, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp+wl.RMWProp:
		return Op{Type: ReadModifyWrite, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp+wl.RMWProp+wl.ScanProp:
		ln := 1
		if wl.MaxScanLen > 1 {
			ln = 1 + g.rng.Intn(wl.MaxScanLen)
		}
		return Op{Type: Scan, Key: g.nextKey(), ScanLen: ln}
	default:
		k := g.records
		g.records++
		return Op{Type: Insert, Key: k}
	}
}
