// Package ycsb generates YCSB workloads A-F (Cooper et al.), the
// request streams driving the paper's WiredTiger and KVell
// experiments (Figs. 13, 14, 16). The zipfian generator is the
// standard YCSB implementation (Gray et al.'s algorithm with
// theta = 0.99 and scrambled key order), shared with the service
// tier through internal/workload so both draw from one seeded
// implementation.
package ycsb

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// OpType is a workload operation kind.
type OpType int

// Operation kinds.
const (
	Read OpType = iota
	Update
	Insert
	Scan
	ReadModifyWrite
)

func (t OpType) String() string {
	switch t {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Scan:
		return "scan"
	case ReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("op(%d)", int(t))
	}
}

// Op is one generated request.
type Op struct {
	Type    OpType
	Key     uint64
	ScanLen int
}

// Dist selects the request distribution.
type Dist string

// Distributions.
const (
	Zipfian Dist = "zipfian"
	Uniform Dist = "uniform"
	Latest  Dist = "latest"
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Dist
	MaxScanLen int
}

// The six core workloads.
var (
	A = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian}
	B = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian}
	C = Workload{Name: "C", ReadProp: 1.0, Dist: Zipfian}
	D = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest}
	E = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: Zipfian, MaxScanLen: 100}
	F = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian}
)

// Workloads maps names to definitions.
var Workloads = map[string]Workload{
	"A": A, "B": B, "C": C, "D": D, "E": E, "F": F,
}

const theta = workload.DefaultZipfTheta

// Generator produces a deterministic request stream.
type Generator struct {
	wl      Workload
	rng     *rand.Rand
	zipf    *workload.Zipf
	records uint64 // grows with inserts
}

// NewGenerator creates a generator over records existing keys.
func NewGenerator(wl Workload, records uint64, seed int64) *Generator {
	if records == 0 {
		panic("ycsb: empty key space")
	}
	g := &Generator{
		wl:      wl,
		rng:     rand.New(rand.NewSource(seed)),
		records: records,
	}
	if wl.Dist == Zipfian || wl.Dist == Latest {
		g.zipf = workload.NewZipf(records, theta)
	}
	return g
}

// Records reports the current key-space size (grows on inserts).
func (g *Generator) Records() uint64 { return g.records }

// nextKey samples a key for read-like operations.
func (g *Generator) nextKey() uint64 {
	switch g.wl.Dist {
	case Uniform:
		return uint64(g.rng.Int63n(int64(g.records)))
	case Latest:
		// Most popular = most recently inserted.
		r := g.zipf.Next(g.rng)
		if r >= g.records {
			r = g.records - 1
		}
		return g.records - 1 - r
	default: // zipfian, scrambled
		return workload.Scramble(g.zipf.Next(g.rng)) % g.records
	}
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	wl := g.wl
	switch {
	case p < wl.ReadProp:
		return Op{Type: Read, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp:
		return Op{Type: Update, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp+wl.RMWProp:
		return Op{Type: ReadModifyWrite, Key: g.nextKey()}
	case p < wl.ReadProp+wl.UpdateProp+wl.RMWProp+wl.ScanProp:
		ln := 1
		if wl.MaxScanLen > 1 {
			ln = 1 + g.rng.Intn(wl.MaxScanLen)
		}
		return Op{Type: Scan, Key: g.nextKey(), ScanLen: ln}
	default:
		k := g.records
		g.records++
		return Op{Type: Insert, Key: k}
	}
}
