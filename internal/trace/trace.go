// Package trace is the per-request span plane of the observability
// stack: each I/O carries an IOSpan from the submitting interface
// (UserLib VBA path, kernel BIO/AIO/io_uring/XRP, SPDK) through
// IOMMU/ATS translation and device media access to completion, all
// timestamped on the virtual clock (sim.Time, never time.Now), so a
// trace of a deterministic run is itself deterministic — byte-identical
// at any -j, like the experiment reports.
//
// The span model mirrors the paper's Fig. 5 latency decomposition.
// An IOSpan partitions its end-to-end duration into four phases:
//
//	submit    — software time before/around the device: syscall + VFS +
//	            block layer on kernel paths, UserLib overhead + copies
//	            on the direct path, retries/backoff, queueing.
//	            Computed as the residual (total − other phases), so the
//	            partition sums exactly.
//	translate — address translation the request had to wait for: the
//	            IOMMU/ATS walk on VBA requests (reads serialize it;
//	            overlapped writes only count the exposed portion).
//	media     — device service time on the channel (plus injected
//	            delays), i.e. the service window minus translate.
//	complete  — completion latency: device-posts-CQE to
//	            submitter-observes-CQE (interrupt/reap on kernel paths,
//	            busy-poll on direct paths).
//
// Machines are single-threaded under the cooperative scheduler, so a
// Tracer (one per machine) needs no locks; only the process-global
// collector that gathers tracers for rendering takes a mutex. Like the
// faults and metrics planes, tracing is activated process-globally and
// machines pick it up at boot via NewFromActive — a nil *Tracer (and a
// nil *IOSpan) is inert, so disabled runs execute the same code paths
// with nil no-ops and stay byte-identical to a build without tracing.
package trace

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// PhaseNames orders the Fig. 5 phases as rendered everywhere.
var PhaseNames = [4]string{"submit", "translate", "media", "complete"}

// Span is one completed event on a machine's virtual timeline.
type Span struct {
	Name  string
	Cat   string
	Tid   int
	Start sim.Time
	Dur   sim.Time
	// IsIO marks an I/O root span; Phases then holds its Fig. 5
	// breakdown in PhaseNames order (submit, translate, media,
	// complete), summing exactly to Dur.
	IsIO   bool
	Phases [4]sim.Time
}

// Attribution accumulates Fig. 5-style phase totals for one interface.
type Attribution struct {
	Ops       int64
	Submit    sim.Time
	Translate sim.Time
	Media     sim.Time
	Complete  sim.Time
}

// Total is the summed end-to-end time across all attributed ops.
func (a *Attribution) Total() sim.Time {
	return a.Submit + a.Translate + a.Media + a.Complete
}

// engineMetrics caches the metrics handles one engine's spans feed.
type engineMetrics struct {
	ops *metrics.Counter
	ns  [4]*metrics.Counter
	lat *metrics.Histogram
}

// Tracer records spans for one machine. All methods are nil-safe and
// none of them advances or charges virtual time, so attaching a tracer
// cannot perturb what it measures. A Tracer must only be used from its
// machine's cooperative procs (exactly one runs at a time): it keeps
// no locks.
type Tracer struct {
	label    string
	max      int
	events   []Span
	dropped  int64
	tids     map[uint64]int
	tidNames []string
	attr     map[string]*Attribution
	em       map[string]*engineMetrics

	// spanFree recycles finished IOSpans: Finish is each span's unique
	// release point, so StartIO can hand the object to the next op
	// without allocating. Single-goroutine like the rest of the tracer.
	spanFree []*IOSpan
}

// NewTracer returns a standalone tracer (not registered with the
// global collector) — used by harnesses that read attribution
// directly, e.g. the T6 experiment and fio.Spec.Trace.
func NewTracer(label string) *Tracer {
	return &Tracer{
		label: label,
		max:   defaultMaxEvents,
		tids:  make(map[uint64]int),
		attr:  make(map[string]*Attribution),
		em:    make(map[string]*engineMetrics),
	}
}

// Label names the tracer's machine ("process" in the rendered trace).
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Events returns the recorded spans (read-only; rendering and tests).
func (t *Tracer) Events() []Span {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped counts spans discarded after the event cap was reached.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// tid interns p into a stable per-tracer thread id (1-based, in order
// of first use — deterministic because procs run cooperatively). The
// key is the proc's logical spawn ID, not the pointer: the scheduler
// recycles Proc objects across spawns, and pointer identity would
// merge unrelated threads.
func (t *Tracer) tid(p *sim.Proc) int {
	if id, ok := t.tids[p.ID()]; ok {
		return id
	}
	id := len(t.tidNames) + 1
	t.tids[p.ID()] = id
	t.tidNames = append(t.tidNames, p.Name())
	return id
}

func (t *Tracer) add(s Span) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, s)
}

// Emit records a plain (non-I/O) span, e.g. an ext4 journal commit.
func (t *Tracer) Emit(p *sim.Proc, name, cat string, start, dur sim.Time) {
	if t == nil {
		return
	}
	t.add(Span{Name: name, Cat: cat, Tid: t.tid(p), Start: start, Dur: dur})
}

// Attribution returns the accumulated phase totals for one interface
// (nil if that interface recorded no spans).
func (t *Tracer) Attribution(engine string) *Attribution {
	if t == nil {
		return nil
	}
	return t.attr[engine]
}

func (t *Tracer) attribution(engine string) *Attribution {
	a, ok := t.attr[engine]
	if !ok {
		a = &Attribution{}
		t.attr[engine] = a
	}
	return a
}

func (t *Tracer) engineMetrics(engine string) *engineMetrics {
	em, ok := t.em[engine]
	if ok {
		return em
	}
	if metrics.Active() != nil {
		em = &engineMetrics{
			ops: metrics.GetCounter("io_ops_total", "engine", engine),
			lat: metrics.GetHistogram("io_latency_ns", "engine", engine),
		}
		for i, ph := range PhaseNames {
			em.ns[i] = metrics.GetCounter("io_ns_total", "engine", engine, "phase", ph)
		}
	}
	t.em[engine] = em
	return em
}

// IOSpan is the per-request context threaded from the submitting
// interface through the NVMe queue pair to the device and back. It is
// carried on nvme.SQE.Span and on sim.Proc's trace slot (SpanFrom).
// All methods are nil-safe. Timeline marks:
//
//	StartIO      submitter, before any software cost
//	ServiceStart device, when a channel starts serving the command
//	ServiceEnd   device, when service ends (translate = exposed
//	             translation ns inside that window)
//	Complete     submitter, on observing the CQE
//	Finish       submitter, after the whole op (incl. retries/chunks)
//
// A retried or multi-SQE op re-marks ServiceStart..Complete once per
// command; phases accumulate and everything in between lands in the
// residual submit phase.
type IOSpan struct {
	tr     *Tracer
	engine string
	op     string
	tid    int
	start  sim.Time

	winStart   sim.Time
	serviceEnd sim.Time // -1 when no unconsumed service window
	translate  sim.Time
	media      sim.Time
	complete   sim.Time
}

// StartIO opens an I/O root span for one application-visible op,
// recycling a finished span when one is free.
func (t *Tracer) StartIO(p *sim.Proc, engine, op string) *IOSpan {
	if t == nil {
		return nil
	}
	var sp *IOSpan
	if n := len(t.spanFree); n > 0 {
		sp = t.spanFree[n-1]
		t.spanFree[n-1] = nil
		t.spanFree = t.spanFree[:n-1]
	} else {
		sp = &IOSpan{}
	}
	*sp = IOSpan{
		tr:         t,
		engine:     engine,
		op:         op,
		tid:        t.tid(p),
		start:      p.Now(),
		serviceEnd: -1,
	}
	return sp
}

// SpanFrom returns the IOSpan carried in p's trace slot, if any.
func SpanFrom(p *sim.Proc) *IOSpan {
	if sp, ok := p.TraceCtx().(*IOSpan); ok {
		return sp
	}
	return nil
}

// ServiceStart marks a device channel beginning to serve the command.
func (sp *IOSpan) ServiceStart(now sim.Time) {
	if sp != nil {
		sp.winStart = now
	}
}

// ServiceEnd closes a device service window. translate is the portion
// of the window the request spent exposed to address translation (the
// full walk latency on reads and serialized writes, only the
// non-overlapped excess on overlapped writes); the remainder of the
// window is media time.
func (sp *IOSpan) ServiceEnd(now, translate sim.Time) {
	if sp == nil {
		return
	}
	win := now - sp.winStart
	if translate > win {
		translate = win
	}
	if translate < 0 {
		translate = 0
	}
	sp.translate += translate
	sp.media += win - translate
	sp.serviceEnd = now
}

// Complete marks the submitter observing the command's CQE; the gap
// since ServiceEnd is completion latency (interrupt wakeup or
// busy-poll granularity).
func (sp *IOSpan) Complete(now sim.Time) {
	if sp == nil || sp.serviceEnd < 0 {
		return
	}
	sp.complete += now - sp.serviceEnd
	sp.serviceEnd = -1
}

// Finish closes the root span: the residual (total minus the marked
// phases) becomes submit time, the span and its per-phase child events
// are recorded, and the engine's attribution and metrics are fed.
func (sp *IOSpan) Finish(now sim.Time) {
	if sp == nil || sp.tr == nil {
		// nil span (tracing off) or a double Finish on a recycled span:
		// releasing twice would alias two in-flight ops on one object.
		return
	}
	t := sp.tr
	dur := now - sp.start
	submit := dur - sp.translate - sp.media - sp.complete
	if submit < 0 {
		submit = 0
	}
	phases := [4]sim.Time{submit, sp.translate, sp.media, sp.complete}
	t.add(Span{
		Name:   sp.op,
		Cat:    sp.engine,
		Tid:    sp.tid,
		Start:  sp.start,
		Dur:    dur,
		IsIO:   true,
		Phases: phases,
	})
	// Child events lay the phases out sequentially under the root so
	// trace viewers show the breakdown without reading args.
	at := sp.start
	for i, ph := range phases {
		if ph <= 0 {
			continue
		}
		t.add(Span{Name: PhaseNames[i], Cat: sp.engine, Tid: sp.tid, Start: at, Dur: ph})
		at += ph
	}

	a := t.attribution(sp.engine)
	a.Ops++
	a.Submit += submit
	a.Translate += sp.translate
	a.Media += sp.media
	a.Complete += sp.complete

	if em := t.engineMetrics(sp.engine); em != nil {
		em.ops.Inc()
		em.lat.Observe(dur)
		for i, c := range em.ns {
			c.Add(int64(phases[i]))
		}
	}

	*sp = IOSpan{} // tr=nil marks the span released
	t.spanFree = append(t.spanFree, sp)
}

// --- process-global activation and collection -----------------------

// Options configures the global trace plane.
type Options struct {
	// MaxEvents bounds the spans each machine's tracer retains;
	// <= 0 means the default (100000). Overflow is counted as dropped
	// and reported in the rendered trace.
	MaxEvents int
}

const defaultMaxEvents = 100000

type activeState struct {
	max int
}

var (
	activeOpts atomic.Pointer[activeState]

	collectMu sync.Mutex
	collected []*Tracer
)

// Activate arms tracing process-globally: machines booted afterwards
// register a tracer (NewFromActive) with the collector. Any previously
// collected tracers are discarded.
func Activate(o Options) {
	if o.MaxEvents <= 0 {
		o.MaxEvents = defaultMaxEvents
	}
	collectMu.Lock()
	collected = nil
	collectMu.Unlock()
	activeOpts.Store(&activeState{max: o.MaxEvents})
}

// Deactivate disarms tracing; machines booted afterwards get a nil
// (inert) tracer. Already collected tracers remain renderable.
func Deactivate() { activeOpts.Store(nil) }

// Enabled reports whether tracing is armed.
func Enabled() bool { return activeOpts.Load() != nil }

// NewFromActive returns a collector-registered tracer when tracing is
// armed, else nil. Called once per machine at boot.
func NewFromActive(label string) *Tracer {
	st := activeOpts.Load()
	if st == nil {
		return nil
	}
	t := NewTracer(label)
	t.max = st.max
	collectMu.Lock()
	collected = append(collected, t)
	collectMu.Unlock()
	return t
}

// --- rendering ------------------------------------------------------

// Render serializes every collected tracer as Chrome trace-event JSON
// (load via chrome://tracing or Perfetto). Must be called after the
// run completes. Determinism at any -j: machine boot order varies
// under parallel sweeps, so each tracer renders to a pid-independent
// canonical form, tracers are sorted by (label, content), and pids are
// assigned after the sort — the bytes cannot depend on boot order.
func Render() ([]byte, error) {
	collectMu.Lock()
	trs := append([]*Tracer(nil), collected...)
	collectMu.Unlock()
	return RenderTracers(trs)
}

// RenderTracers serializes the given tracers (see Render).
func RenderTracers(trs []*Tracer) ([]byte, error) {
	sorted := append([]*Tracer(nil), trs...)
	sort.Slice(sorted, func(i, j int) bool { return cmpTracer(sorted[i], sorted[j]) < 0 })

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	for pid, t := range sorted {
		pid := pid + 1
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jsonString(t.label)))
		for i, name := range t.tidNames {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, i+1, jsonString(name)))
		}
		for _, s := range t.events {
			emit(renderSpan(pid, s))
		}
		if t.dropped > 0 {
			emit(fmt.Sprintf(`{"name":"dropped_events","ph":"M","pid":%d,"tid":0,"args":{"count":%d}}`,
				pid, t.dropped))
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return b.Bytes(), nil
}

// renderSpan emits one "X" complete event; ts/dur are microseconds in
// the Chrome trace format, printed with fixed precision so the exact
// nanosecond survives.
func renderSpan(pid int, s Span) string {
	var args string
	if s.IsIO {
		args = fmt.Sprintf(`,"args":{"submit_ns":%d,"translate_ns":%d,"media_ns":%d,"complete_ns":%d}`,
			s.Phases[0], s.Phases[1], s.Phases[2], s.Phases[3])
	}
	return fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%d.%03d,"dur":%d.%03d%s}`,
		jsonString(s.Name), jsonString(s.Cat), pid, s.Tid,
		s.Start/1000, s.Start%1000, s.Dur/1000, s.Dur%1000, args)
}

// cmpTracer orders tracers by label then canonical content so the
// rendered pid assignment is independent of machine boot order. Fully
// identical tracers compare equal — their relative order is then
// irrelevant to the output bytes.
func cmpTracer(a, b *Tracer) int {
	if c := strings.Compare(a.label, b.label); c != 0 {
		return c
	}
	for i := 0; i < len(a.events) && i < len(b.events); i++ {
		if c := cmpSpan(a.events[i], b.events[i]); c != 0 {
			return c
		}
	}
	if c := len(a.events) - len(b.events); c != 0 {
		return c
	}
	for i := 0; i < len(a.tidNames) && i < len(b.tidNames); i++ {
		if c := strings.Compare(a.tidNames[i], b.tidNames[i]); c != 0 {
			return c
		}
	}
	if c := len(a.tidNames) - len(b.tidNames); c != 0 {
		return c
	}
	return int(a.dropped - b.dropped)
}

func cmpSpan(a, b Span) int {
	if a.Start != b.Start {
		return int64Cmp(int64(a.Start), int64(b.Start))
	}
	if a.Tid != b.Tid {
		return a.Tid - b.Tid
	}
	if a.Dur != b.Dur {
		return int64Cmp(int64(a.Dur), int64(b.Dur))
	}
	if c := strings.Compare(a.Name, b.Name); c != 0 {
		return c
	}
	if c := strings.Compare(a.Cat, b.Cat); c != 0 {
		return c
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return int64Cmp(int64(a.Phases[i]), int64(b.Phases[i]))
		}
	}
	if a.IsIO != b.IsIO {
		if a.IsIO {
			return 1
		}
		return -1
	}
	return 0
}

func int64Cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// WriteFile renders the collected trace to path.
func WriteFile(path string) error {
	out, err := Render()
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// CollectedEvents sums event and dropped counts across collected
// tracers (progress reporting).
func CollectedEvents() (events, dropped int64) {
	collectMu.Lock()
	defer collectMu.Unlock()
	for _, t := range collected {
		events += int64(len(t.events))
		dropped += t.dropped
	}
	return events, dropped
}

// jsonString escapes s as a JSON string literal (ASCII subset of what
// encoding/json does; enough for proc/engine/op names).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
