package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Label() != "" || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer should read empty")
	}
	if tr.Attribution("x") != nil {
		t.Fatal("nil tracer attribution should be nil")
	}
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		sp := tr.StartIO(p, "eng", "read")
		if sp != nil {
			t.Error("nil tracer must hand out nil spans")
		}
		// Every mark on a nil span is a no-op.
		sp.ServiceStart(p.Now())
		sp.ServiceEnd(p.Now(), 0)
		sp.Complete(p.Now())
		sp.Finish(p.Now())
		tr.Emit(p, "n", "c", 0, 1)
	})
	s.Run()
}

func TestSpanFromEmptyProc(t *testing.T) {
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		if SpanFrom(p) != nil {
			t.Error("fresh proc should carry no span")
		}
		p.SetTraceCtx("not a span")
		if SpanFrom(p) != nil {
			t.Error("non-span ctx should read as nil")
		}
	})
	s.Run()
}

// TestIOSpanPhasePartition walks one span through the full mark
// sequence and checks the Fig. 5 partition: translate and media from
// the service window, complete from the CQE gap, submit as the exact
// residual — phases summing to the duration.
func TestIOSpanPhasePartition(t *testing.T) {
	tr := NewTracer("m")
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		sp := tr.StartIO(p, "eng", "read")
		p.Sleep(100) // software submit cost
		sp.ServiceStart(p.Now())
		p.Sleep(300)                // device service window
		sp.ServiceEnd(p.Now(), 120) // 120ns exposed translation
		p.Sleep(50)                 // completion observation gap
		sp.Complete(p.Now())
		sp.Complete(p.Now() + 1000) // double-complete must not count
		p.Sleep(25)                 // post-completion software cost
		sp.Finish(p.Now())
	})
	s.Run()

	events := tr.Events()
	if len(events) != 5 { // root + 4 phase children
		t.Fatalf("events = %d, want 5: %+v", len(events), events)
	}
	root := events[0]
	if !root.IsIO || root.Dur != 475 {
		t.Fatalf("root = %+v, want IsIO dur=475", root)
	}
	want := [4]sim.Time{125, 120, 180, 50} // submit residual, translate, media, complete
	if root.Phases != want {
		t.Fatalf("phases = %v, want %v", root.Phases, want)
	}
	var sum sim.Time
	for _, ph := range root.Phases {
		sum += ph
	}
	if sum != root.Dur {
		t.Fatalf("phases sum %v != dur %v", sum, root.Dur)
	}
	// Children lay the phases out sequentially.
	at := root.Start
	for i, e := range events[1:] {
		if e.Start != at || e.Dur != want[i] || e.Name != PhaseNames[i] {
			t.Fatalf("child %d = %+v, want %s at %v dur %v", i, e, PhaseNames[i], at, want[i])
		}
		at += e.Dur
	}

	a := tr.Attribution("eng")
	if a == nil || a.Ops != 1 || a.Submit != 125 || a.Translate != 120 || a.Media != 180 || a.Complete != 50 {
		t.Fatalf("attribution = %+v", a)
	}
	if a.Total() != 475 {
		t.Fatalf("attribution total = %v", a.Total())
	}
}

func TestServiceEndClampsTranslate(t *testing.T) {
	tr := NewTracer("m")
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		sp := tr.StartIO(p, "eng", "write")
		sp.ServiceStart(p.Now())
		p.Sleep(100)
		sp.ServiceEnd(p.Now(), 500) // more than the window: clamp
		sp.Complete(p.Now())
		sp.Finish(p.Now())
	})
	s.Run()
	a := tr.Attribution("eng")
	if a.Translate != 100 || a.Media != 0 {
		t.Fatalf("clamped attribution = %+v", a)
	}
}

func TestEventCapCountsDropped(t *testing.T) {
	tr := NewTracer("m")
	tr.max = 3
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			tr.Emit(p, "e", "c", p.Now(), 1)
		}
	})
	s.Run()
	if len(tr.Events()) != 3 || tr.Dropped() != 7 {
		t.Fatalf("events=%d dropped=%d, want 3/7", len(tr.Events()), tr.Dropped())
	}
	out, err := RenderTracers([]*Tracer{tr})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"dropped_events"`) {
		t.Fatalf("render missing dropped marker:\n%s", out)
	}
}

// TestRenderOrderIndependent pins the -j determinism mechanism: the
// rendered bytes must not depend on the order machines booted in.
func TestRenderOrderIndependent(t *testing.T) {
	mk := func(label string, base sim.Time) *Tracer {
		tr := NewTracer(label)
		s := sim.New()
		s.Spawn("app", func(p *sim.Proc) {
			p.Sleep(base)
			tr.Emit(p, "op", "c", p.Now(), 10)
		})
		s.Run()
		return tr
	}
	a, b, c := mk("alpha", 10), mk("beta", 20), mk("alpha", 30)
	x, err := RenderTracers([]*Tracer{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	y, err := RenderTracers([]*Tracer{c, b, a})
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Fatalf("render depends on tracer order:\n%s\nvs\n%s", x, y)
	}
}

func TestActivateCollectsAndResets(t *testing.T) {
	Activate(Options{MaxEvents: 5})
	defer Deactivate()
	if !Enabled() {
		t.Fatal("not enabled after Activate")
	}
	tr := NewFromActive("mach")
	if tr == nil || tr.max != 5 {
		t.Fatalf("NewFromActive = %+v", tr)
	}
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) { tr.Emit(p, "e", "c", 0, 1) })
	s.Run()
	if ev, _ := CollectedEvents(); ev != 1 {
		t.Fatalf("collected = %d, want 1", ev)
	}
	// Re-activation discards previously collected tracers.
	Activate(Options{})
	if ev, _ := CollectedEvents(); ev != 0 {
		t.Fatalf("collected after re-activate = %d, want 0", ev)
	}
	Deactivate()
	if NewFromActive("x") != nil {
		t.Fatal("NewFromActive must be nil when disarmed")
	}
}

func TestJSONStringEscaping(t *testing.T) {
	got := jsonString("a\"b\\c\x01d")
	if got != "\"a\\\"b\\\\c\\u0001d\"" {
		t.Fatalf("escaped = %s", got)
	}
}

// TestSpanPoolReuseNoAliasing pins the span free list's contract:
// Finish is a span's unique release point, a double Finish on a
// recycled pointer must not corrupt the next tenant, and a recycled
// span must carry none of its previous life's phase marks.
func TestSpanPoolReuseNoAliasing(t *testing.T) {
	tr := NewTracer("pool")
	s := sim.New()
	s.Spawn("app", func(p *sim.Proc) {
		sp1 := tr.StartIO(p, "eng", "read")
		sp1.ServiceStart(p.Now())
		p.Sleep(100)
		sp1.ServiceEnd(p.Now(), 80)
		sp1.Finish(p.Now())

		// sp1 is now free; the next StartIO recycles it.
		sp2 := tr.StartIO(p, "eng", "write")
		if sp2 != sp1 {
			t.Error("span not recycled through the free list")
		}
		// A stale Finish on the old pointer must be inert: sp1 == sp2,
		// and finishing the in-flight span twice would double-record.
		// Finish emits one root (IsIO) span plus per-phase child
		// events, so count roots only.
		roots := func() int {
			n := 0
			for _, e := range tr.Events() {
				if e.IsIO {
					n++
				}
			}
			return n
		}
		before := roots()
		p.Sleep(50)
		sp2.Finish(p.Now())
		if got := roots(); got != before+1 {
			t.Errorf("first Finish recorded %d root spans, want 1", got-before)
		}
		sp1.Finish(p.Now()) // double release via the aliased pointer
		if got := roots(); got != before+1 {
			t.Errorf("double Finish recorded an extra root span")
		}

		// The recycled span's next life starts clean: no leftover
		// phase marks from the previous tenant.
		sp3 := tr.StartIO(p, "eng", "fsync")
		start := p.Now()
		p.Sleep(10)
		sp3.Finish(p.Now())
		var last Span
		for _, e := range tr.Events() {
			if e.IsIO {
				last = e
			}
		}
		if last.Name != "fsync" || last.Start != start || last.Dur != 10 {
			t.Errorf("recycled span carried stale state: %+v", last)
		}
		for i, ph := range [4]string{"submit", "translate", "media", "complete"} {
			want := sim.Time(0)
			if i == 0 {
				want = 10 // residual: whole span is submit time
			}
			if last.Phases[i] != want {
				t.Errorf("phase %s = %v, want %v (stale mark leaked)", ph, last.Phases[i], want)
			}
		}
	})
	s.Run()
	s.Shutdown()
}
