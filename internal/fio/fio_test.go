package fio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestSingleThread4KReadLatencies(t *testing.T) {
	want := map[core.Engine][2]sim.Time{ // [lo, hi] bounds
		core.EngineSync:    {7600, 8200},
		core.EngineLibaio:  {7600, 9200},
		core.EngineUring:   {6000, 7800},
		core.EngineSPDK:    {4300, 4900},
		core.EngineBypassD: {4800, 5600},
	}
	for e, bounds := range want {
		res, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
			Name: "main", Engine: e, BS: 4096, Threads: 1,
			OpsPerThread: 50, FileBytes: 16 << 20,
		}})
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		m := res["main"].Lat.Mean()
		if m < bounds[0] || m > bounds[1] {
			t.Errorf("%s 4K read mean = %v, want [%v, %v]", e, m, bounds[0], bounds[1])
		}
	}
}

func TestWritesSeeNoTranslationOverhead(t *testing.T) {
	run := func(e core.Engine) sim.Time {
		res, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
			Name: "w", Engine: e, Write: true, BS: 4096, Threads: 1,
			OpsPerThread: 50, FileBytes: 16 << 20,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res["w"].Lat.Mean()
	}
	spdk, byp := run(core.EngineSPDK), run(core.EngineBypassD)
	// Paper §4.3: writes overlap VBA translation with the data
	// transfer, so the bypassd-spdk gap shrinks to the library
	// interception cost, well under the 550ns read gap.
	gap := byp - spdk
	if gap > 300*sim.Nanosecond {
		t.Fatalf("write gap bypassd-spdk = %v, want < 300ns (translation hidden)", gap)
	}
}

func TestThroughputScalesUntilSaturation(t *testing.T) {
	iops := map[int]float64{}
	for _, threads := range []int{1, 8} {
		res, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
			Name: "r", Engine: core.EngineBypassD, BS: 4096, Threads: threads,
			OpsPerThread: 200, FileBytes: 8 << 20,
		}})
		if err != nil {
			t.Fatal(err)
		}
		iops[threads] = res["r"].IOPS()
	}
	if iops[8] < 4*iops[1] {
		t.Fatalf("scaling broken: 1T=%.0f 8T=%.0f", iops[1], iops[8])
	}
	// Device ceiling ~1.49M IOPS.
	if iops[8] > 1.6e6 {
		t.Fatalf("8T IOPS %.0f exceeds device ceiling", iops[8])
	}
}

func TestVBAFixedLatencySweep(t *testing.T) {
	bw := func(delay sim.Time) float64 {
		res, err := Run(Spec{VBAFixedLatency: delay}, []Group{{
			Name: "r", Engine: core.EngineBypassD, BS: 4096, Threads: 1,
			OpsPerThread: 100, FileBytes: 16 << 20,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res["r"].Bandwidth()
	}
	noDelay, slow := bw(0), bw(1350*sim.Nanosecond)
	if noDelay <= slow {
		t.Fatalf("bandwidth should drop with translation latency: %0.f vs %0.f", noDelay, slow)
	}
	// Even at 1.35µs translation, bypassd beats sync (Fig. 8).
	resSync, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
		Name: "r", Engine: core.EngineSync, BS: 4096, Threads: 1,
		OpsPerThread: 100, FileBytes: 16 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if slow <= resSync["r"].Bandwidth() {
		t.Fatalf("bypassd@1.35µs (%.0f) should still beat sync (%.0f)", slow, resSync["r"].Bandwidth())
	}
}

func TestMultiProcessSharing(t *testing.T) {
	// Fig. 10: multiple writer processes share the device with
	// bypassd; spdk refuses.
	res, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
		Name: "w", Engine: core.EngineBypassD, Write: true, BS: 4096,
		Threads: 4, OpsPerThread: 100, FileBytes: 8 << 20, ProcessPerThread: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res["w"].Ops != 400 {
		t.Fatalf("ops = %d, want 400", res["w"].Ops)
	}
	_, err = Run(Spec{VBAFixedLatency: -1}, []Group{{
		Name: "w", Engine: core.EngineSPDK, Write: true, BS: 4096,
		Threads: 4, OpsPerThread: 100, FileBytes: 8 << 20, ProcessPerThread: true,
	}})
	if err == nil {
		t.Fatal("spdk multi-process run should fail")
	}
}

func TestBackgroundGroupStopsWithForeground(t *testing.T) {
	res, err := Run(Spec{VBAFixedLatency: -1}, []Group{
		{
			Name: "fg", Engine: core.EngineBypassD, BS: 4096, Threads: 1,
			OpsPerThread: 100, FileBytes: 8 << 20,
		},
		{
			Name: "bg", Engine: core.EngineSync, BS: 4096, Threads: 2,
			OpsPerThread: 0, FileBytes: 8 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res["fg"].Ops != 100 {
		t.Fatalf("fg ops = %d", res["fg"].Ops)
	}
	if res["bg"].Ops == 0 {
		t.Fatal("background group did no work")
	}
	// Foreground latency under contention exceeds the idle latency.
	if res["fg"].Lat.Mean() < 5*sim.Microsecond {
		t.Fatalf("fg latency %v implausibly low under background load", res["fg"].Lat.Mean())
	}
}

func TestBreakdownStatsPresentForBypassD(t *testing.T) {
	res, err := Run(Spec{VBAFixedLatency: -1}, []Group{{
		Name: "r", Engine: core.EngineBypassD, BS: 65536, Threads: 1,
		OpsPerThread: 20, FileBytes: 16 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := res["r"]
	if r.DeviceNS == 0 || r.UserNS == 0 {
		t.Fatalf("breakdown missing: dev=%v user=%v", r.DeviceNS, r.UserNS)
	}
	// Fig. 7: at 64K most non-device time is the user copy.
	perOpUser := r.UserNS / sim.Time(r.Ops)
	if perOpUser < 3*sim.Microsecond {
		t.Fatalf("user time per 64K op = %v, want multi-µs copy", perOpUser)
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := Run(Spec{}, []Group{{Name: "x", Engine: core.EngineSync, BS: 100, Threads: 1, OpsPerThread: 1, FileBytes: 1 << 20}}); err == nil {
		t.Fatal("unaligned bs accepted")
	}
	if _, err := Run(Spec{}, []Group{{Name: "x", Engine: core.EngineSync, BS: 4096, Threads: 1, FileBytes: 1 << 20}}); err == nil {
		t.Fatal("all-background spec accepted")
	}
}
