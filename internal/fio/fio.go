// Package fio is the microbenchmark runner behind the paper's Figs.
// 6-11: a flexible I/O tester in the spirit of fio, driving any of
// the compared engines with random reads/writes at configurable block
// sizes, thread counts, and process layouts, and reporting latency
// histograms and throughput.
package fio

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Group is one set of identical workers.
type Group struct {
	Name         string
	Engine       core.Engine
	Write        bool
	BS           int   // block size in bytes (sector aligned)
	Threads      int   //
	OpsPerThread int   // 0 = background: run until all finite groups finish
	FileBytes    int64 // per-worker private file
	// ProcessPerThread gives each worker its own process (and
	// address space), the Fig. 10 multi-process sharing layout.
	ProcessPerThread bool
	StartDelay       sim.Time
}

// GroupResult aggregates one group's measurements.
type GroupResult struct {
	Lat      *stats.Histogram
	Ops      int64
	Bytes    int64
	Start    sim.Time
	End      sim.Time
	UserNS   sim.Time // BypassD-only: library+copy time (Fig. 7)
	DeviceNS sim.Time // BypassD-only: submit-to-completion time
	// Phases is the Fig. 5 latency attribution for this group's engine
	// (submit/translate/media/complete); nil unless tracing was on.
	Phases *trace.Attribution
}

// Elapsed returns the measurement window.
func (r *GroupResult) Elapsed() sim.Time { return r.End - r.Start }

// IOPS returns operations per second.
func (r *GroupResult) IOPS() float64 { return stats.Throughput(r.Ops, r.Elapsed()) }

// Bandwidth returns bytes per second.
func (r *GroupResult) Bandwidth() float64 { return stats.BytesPerSec(r.Bytes, r.Elapsed()) }

// Spec is a complete experiment.
type Spec struct {
	Capacity int64 // device size; 0 = auto-size from the groups
	// VBAFixedLatency overrides the IOMMU translation delay
	// (Fig. 8); negative keeps the computed model.
	VBAFixedLatency sim.Time
	CacheFTEs       bool
	// PWCEntries sizes the IOMMU's paging-structure cache for ablation
	// sweeps: 0 keeps the default, negative disables the cache.
	PWCEntries int
	// PWCHitWalkLatency / PWCMinTranslation model a PWC hit as a
	// cheaper walk (DESIGN.md §10). Zero keeps the default sentinels
	// (PWC hits charged like full walks — the byte-identity default);
	// negative forces the sentinel explicitly.
	PWCHitWalkLatency sim.Time
	PWCMinTranslation sim.Time
	Seed              int64
	// Trace attaches a span tracer to the machine even when the global
	// trace plane is off, so GroupResult.Phases is populated.
	Trace bool
}

// SetupFile creates and preallocates one benchmark file for an
// engine: an SPDK region registration for EngineSPDK (the raw driver
// has no file system), a created + fallocated ext4 file otherwise.
// Shared by the fio and tenants harnesses.
func SetupFile(p *sim.Proc, sys *core.System, root *kernel.Process, path string, engine core.Engine, bytes int64) error {
	if engine == core.EngineSPDK {
		d, err := sys.SPDK()
		if err != nil {
			return err
		}
		_, err = d.CreateFile(path, bytes)
		return err
	}
	fd, err := root.Create(p, path, 0o666)
	if err != nil {
		return err
	}
	if err := root.Fallocate(p, fd, bytes); err != nil {
		return err
	}
	return root.Close(p, fd)
}

// Run executes the groups on one freshly booted system.
func Run(spec Spec, groups []Group) (map[string]*GroupResult, error) {
	capacity := spec.Capacity
	if capacity == 0 {
		var need int64 = 64 << 20
		for _, g := range groups {
			need += g.FileBytes * int64(g.Threads)
		}
		capacity = need*3/2 + (64 << 20)
		capacity = (capacity + storage.SectorSize - 1) &^ (storage.SectorSize - 1)
	}
	sys, err := core.New(capacity)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	sys.M.MMU.SetFixedVBALatency(spec.VBAFixedLatency)
	sys.M.MMU.SetCacheFTEs(spec.CacheFTEs)
	if spec.PWCEntries != 0 || spec.PWCHitWalkLatency != 0 || spec.PWCMinTranslation != 0 {
		cfg := sys.M.MMU.Config()
		entries := cfg.PWCEntries
		if spec.PWCEntries > 0 {
			entries = spec.PWCEntries
		} else if spec.PWCEntries < 0 {
			entries = 0
		}
		hitWalk, minTrans := cfg.PWCHitWalkLatency, cfg.PWCMinTranslation
		if spec.PWCHitWalkLatency != 0 {
			hitWalk = spec.PWCHitWalkLatency
		}
		if spec.PWCMinTranslation != 0 {
			minTrans = spec.PWCMinTranslation
		}
		sys.M.MMU.SetPWCConfig(entries, hitWalk, minTrans)
	}
	if spec.Trace && sys.M.Trace == nil {
		sys.M.EnableTrace(trace.NewTracer("fio"))
	}

	results := make(map[string]*GroupResult)
	for _, g := range groups {
		if g.BS <= 0 || g.BS%storage.SectorSize != 0 {
			return nil, fmt.Errorf("fio: group %s block size %d not sector aligned", g.Name, g.BS)
		}
		if g.FileBytes < int64(g.BS) {
			return nil, fmt.Errorf("fio: group %s file smaller than block size", g.Name)
		}
		if g.Engine == core.EngineSPDK && g.ProcessPerThread && g.Threads > 1 {
			// Fig. 10's empty SPDK bars: the userspace driver maps
			// the whole device into one process; a second process
			// cannot attach.
			return nil, fmt.Errorf("fio: spdk cannot be shared across processes")
		}
		results[g.Name] = &GroupResult{Lat: stats.NewHistogram()}
	}

	var setupErr error
	finite := 0
	for _, g := range groups {
		if g.OpsPerThread > 0 {
			finite += g.Threads
		}
	}
	if finite == 0 {
		return nil, fmt.Errorf("fio: at least one group must have finite ops")
	}

	done := 0
	stop := false
	started := 0
	total := 0
	for _, g := range groups {
		total += g.Threads
	}
	startCond := sys.Sim.NewCond()

	sys.Sim.Spawn("fio-setup", func(p *sim.Proc) {
		root := sys.NewProcess(ext4.Root)
		if err := root.Mkdir(p, "/fio", 0o777); err != nil {
			setupErr = err
			return
		}
		for gi, g := range groups {
			for ti := 0; ti < g.Threads; ti++ {
				path := fmt.Sprintf("/fio/g%d-w%d", gi, ti)
				if err := SetupFile(p, sys, root, path, g.Engine, g.FileBytes); err != nil {
					setupErr = err
					return
				}
			}
		}
		if err := root.Sync(p); err != nil {
			setupErr = err
			return
		}

		// Launch the workers.
		for gi, g := range groups {
			g := g
			res := results[g.Name]
			var shared = sys.NewProcess(ext4.Root)
			for ti := 0; ti < g.Threads; ti++ {
				ti := ti
				path := fmt.Sprintf("/fio/g%d-w%d", gi, ti)
				proc := shared
				if g.ProcessPerThread {
					proc = sys.NewProcess(ext4.Root)
				}
				seed := spec.Seed*7919 + int64(gi)*104729 + int64(ti)
				sys.Sim.Spawn("fio-"+g.Name, func(w *sim.Proc) {
					io, err := sys.NewFileIO(w, proc, g.Engine)
					if err != nil {
						setupErr = err
						started++
						if started == total {
							startCond.Broadcast()
						}
						return
					}
					fd, err := io.Open(w, path, true)
					if err != nil {
						setupErr = err
						started++
						if started == total {
							startCond.Broadcast()
						}
						return
					}
					rng := rand.New(rand.NewSource(seed))
					// Pooled worker buffer; cleared so written file
					// content matches a fresh zero-filled allocation.
					buf := device.GetDMABuf(g.BS)
					defer device.PutDMABuf(buf)
					clear(buf)
					blocks := g.FileBytes / int64(g.BS)

					started++
					if started == total {
						startCond.Broadcast()
					} else {
						startCond.Wait(w)
					}
					if setupErr != nil {
						return
					}
					if g.StartDelay > 0 {
						w.Sleep(g.StartDelay)
					}
					if res.Start == 0 {
						res.Start = w.Now()
					}

					var devBase, userBase sim.Time
					if th, ok := core.BypassThread(io); ok {
						devBase, userBase = th.DeviceNS, th.UserNS
					}
					for op := 0; ; op++ {
						if g.OpsPerThread > 0 {
							if op >= g.OpsPerThread {
								break
							}
						} else if stop {
							break
						}
						off := rng.Int63n(blocks) * int64(g.BS)
						t0 := w.Now()
						var err error
						if g.Write {
							_, err = io.Pwrite(w, fd, buf, off)
						} else {
							_, err = io.Pread(w, fd, buf, off)
						}
						if err != nil {
							setupErr = fmt.Errorf("fio %s worker %d: %w", g.Name, ti, err)
							break
						}
						res.Lat.Add(w.Now() - t0)
						res.Ops++
						res.Bytes += int64(g.BS)
					}
					if th, ok := core.BypassThread(io); ok {
						res.DeviceNS += th.DeviceNS - devBase
						res.UserNS += th.UserNS - userBase
					}
					if end := w.Now(); end > res.End {
						res.End = end
					}
					if g.OpsPerThread > 0 {
						done++
						if done == finite {
							stop = true
						}
					}
				})
			}
		}
	})
	sys.Sim.Run()
	if setupErr != nil {
		return nil, setupErr
	}
	if tr := sys.M.Trace; tr != nil {
		for _, g := range groups {
			if a := tr.Attribution(string(g.Engine)); a != nil {
				results[g.Name].Phases = a
			}
		}
	}
	return results, nil
}
