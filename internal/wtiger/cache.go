package wtiger

import (
	"container/list"

	"repro/internal/sim"
)

// pageCache is a byte-budgeted LRU page cache guarded by a single
// lock. The lock hold time per access is the engine's cache-access
// cost; at high thread counts this serialization becomes the
// bottleneck and hides the benefit of faster I/O, exactly the effect
// the paper reports for WiredTiger at 8-16 threads (§6.4).
type pageCache struct {
	lock   *sim.Resource
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *cacheEnt
	byPage map[int64]*list.Element
}

type cacheEnt struct {
	pg   int64
	data []byte
}

func newPageCache(s *sim.Sim, budget int64) *pageCache {
	return &pageCache{
		lock:   s.NewResource("wt-cache", 1),
		budget: budget,
		lru:    list.New(),
		byPage: make(map[int64]*list.Element),
	}
}

// newPageCacheOn pins the cache lock to the store's device shard, so
// a multi-SSD caller (the frontend service tier) can run one store
// per device under the parallel epoch engine: each lock's holders and
// waiters all live on that device's shard.
func newPageCacheOn(s *sim.Sim, shard int, budget int64) *pageCache {
	return &pageCache{
		lock:   s.NewResourceOn(shard, "wt-cache", 1),
		budget: budget,
		lru:    list.New(),
		byPage: make(map[int64]*list.Element),
	}
}

// get probes the cache, charging the lock-held access cost.
func (c *pageCache) get(p *sim.Proc, pg int64, cost sim.Time, cpu *sim.CPUSet) ([]byte, bool) {
	c.lock.Acquire(p)
	cpu.Compute(p, cost)
	el, ok := c.byPage[pg]
	var data []byte
	if ok {
		c.lru.MoveToFront(el)
		data = el.Value.(*cacheEnt).data
	}
	c.lock.Release()
	return data, ok
}

// put inserts or refreshes a page, evicting LRU pages past budget.
func (c *pageCache) put(p *sim.Proc, pg int64, data []byte, cost sim.Time, cpu *sim.CPUSet) {
	c.lock.Acquire(p)
	cpu.Compute(p, cost)
	if el, ok := c.byPage[pg]; ok {
		el.Value.(*cacheEnt).data = data
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&cacheEnt{pg: pg, data: data})
		c.byPage[pg] = el
		c.used += int64(len(data))
		for c.used > c.budget && c.lru.Len() > 1 {
			victim := c.lru.Back()
			ent := victim.Value.(*cacheEnt)
			c.lru.Remove(victim)
			delete(c.byPage, ent.pg)
			c.used -= int64(len(ent.data))
		}
	}
	c.lock.Release()
}

// Len reports cached pages (tests).
func (c *pageCache) Len() int { return c.lru.Len() }
