package wtiger

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/sim"
)

const testKeys = 50000

func buildStore(t *testing.T, cacheBytes int64) (*core.System, *Store) {
	t.Helper()
	sys, err := core.New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	var st *Store
	sys.Sim.Spawn("build", func(p *sim.Proc) {
		s, err := Build(p, sys, sys.M.CPU, Config{Keys: testKeys, CacheBytes: cacheBytes, Path: "/wt.db"})
		if err != nil {
			t.Error(err)
			return
		}
		st = s
	})
	sys.Sim.Run()
	if st == nil {
		t.Fatal("build failed")
	}
	return sys, st
}

func TestBuildGeometry(t *testing.T) {
	_, st := buildStore(t, 1<<20)
	if st.Levels < 3 {
		t.Fatalf("levels = %d, want >= 3 for %d keys", st.Levels, testKeys)
	}
	wantLeaves := (testKeys + uint64(LeafCap) - 1) / uint64(LeafCap)
	if st.Pages < int64(wantLeaves) {
		t.Fatalf("pages = %d < leaves %d", st.Pages, wantLeaves)
	}
}

func TestLookupAllModes(t *testing.T) {
	for _, mode := range []string{"sync", "bypassd", "xrp"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			sys, st := buildStore(t, 1<<20)
			sys.Sim.Spawn("reader", func(p *sim.Proc) {
				pr := sys.NewProcess(ext4.Root)
				var c *Conn
				var err error
				switch mode {
				case "xrp":
					c, err = st.NewXRPConn(p, pr)
				default:
					io, e2 := sys.NewFileIO(p, pr, core.Engine(mode))
					if e2 != nil {
						t.Error(e2)
						return
					}
					c, err = st.NewConn(p, io)
				}
				if err != nil {
					t.Error(err)
					return
				}
				for _, k := range []uint64{0, 1, 777, testKeys/2 + 3, testKeys - 1} {
					v, ok, err := c.Lookup(p, k)
					if err != nil || !ok {
						t.Errorf("lookup %d: ok=%v err=%v", k, ok, err)
						return
					}
					if v != ValueOf(k) {
						t.Errorf("lookup %d returned wrong value", k)
					}
				}
				if _, ok, _ := c.Lookup(p, testKeys+99); ok {
					t.Error("found a key that was never inserted")
				}
			})
			sys.Sim.Run()
			sys.Sim.Shutdown()
		})
	}
}

func TestUpdatePersistsAndInvalidatesCache(t *testing.T) {
	sys, st := buildStore(t, 1<<20)
	sys.Sim.Spawn("writer", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		io, err := sys.NewFileIO(p, pr, core.EngineBypassD)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := st.NewConn(p, io)
		if err != nil {
			t.Error(err)
			return
		}
		nv := ValueOf(999999)
		if err := c.Update(p, 1234, nv); err != nil {
			t.Error(err)
			return
		}
		v, ok, err := c.Lookup(p, 1234)
		if err != nil || !ok || v != nv {
			t.Errorf("lookup after update: ok=%v v=%v err=%v", ok, v, err)
		}
		// Neighbor keys untouched.
		v2, ok, _ := c.Lookup(p, 1235)
		if !ok || v2 != ValueOf(1235) {
			t.Error("update clobbered neighbor")
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestInsertDelta(t *testing.T) {
	sys, st := buildStore(t, 1<<20)
	sys.Sim.Spawn("w", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		io, _ := sys.NewFileIO(p, pr, core.EngineSync)
		c, err := st.NewConn(p, io)
		if err != nil {
			t.Error(err)
			return
		}
		nk := uint64(testKeys + 5)
		before := st.IOs
		c.Insert(p, nk, ValueOf(nk))
		v, ok, err := c.Lookup(p, nk)
		if err != nil || !ok || v != ValueOf(nk) {
			t.Errorf("delta lookup: ok=%v err=%v", ok, err)
		}
		if st.IOs != before {
			t.Errorf("insert+delta-lookup did %d I/Os, want 0", st.IOs-before)
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestScan(t *testing.T) {
	sys, st := buildStore(t, 1<<20)
	sys.Sim.Spawn("s", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		io, _ := sys.NewFileIO(p, pr, core.EngineSync)
		c, err := st.NewConn(p, io)
		if err != nil {
			t.Error(err)
			return
		}
		n, err := c.Scan(p, 100, 50)
		if err != nil || n != 50 {
			t.Errorf("scan: n=%d err=%v", n, err)
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestCacheImprovesHitRatio(t *testing.T) {
	sys, st := buildStore(t, 4<<20)
	sys.Sim.Spawn("r", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		io, _ := sys.NewFileIO(p, pr, core.EngineSync)
		c, err := st.NewConn(p, io)
		if err != nil {
			t.Error(err)
			return
		}
		// Repeatedly read a hot set: second pass should hit.
		for pass := 0; pass < 2; pass++ {
			for k := uint64(0); k < 200; k++ {
				if _, ok, err := c.Lookup(p, k); !ok || err != nil {
					t.Errorf("lookup %d: %v", k, err)
					return
				}
			}
		}
	})
	sys.Sim.Run()
	if st.CacheHitRatio() < 0.5 {
		t.Fatalf("hit ratio = %.2f, want > 0.5 on repeated hot set", st.CacheHitRatio())
	}
	sys.Sim.Shutdown()
}

func TestXRPDescendsFewerKernelCrossings(t *testing.T) {
	// With a cold cache, an XRP lookup should be faster than the
	// sync path (one kernel entry vs one per level) but slower than
	// pure userspace.
	lat := map[string]sim.Time{}
	for _, mode := range []string{"sync", "xrp", "bypassd"} {
		sys, st := buildStore(t, PageSize) // effectively no cache
		mode := mode
		sys.Sim.Spawn("r", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			var c *Conn
			var err error
			switch mode {
			case "xrp":
				c, err = st.NewXRPConn(p, pr)
			default:
				io, e2 := sys.NewFileIO(p, pr, core.Engine(mode))
				if e2 != nil {
					t.Error(e2)
					return
				}
				c, err = st.NewConn(p, io)
			}
			if err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			const ops = 20
			for i := 0; i < ops; i++ {
				k := uint64(i * 997 % testKeys)
				if _, ok, err := c.Lookup(p, k); !ok || err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
			lat[mode] = (p.Now() - start) / ops
		})
		sys.Sim.Run()
		sys.Sim.Shutdown()
	}
	t.Logf("cold-cache lookup latency: %v", lat)
	if !(lat["bypassd"] < lat["xrp"] && lat["xrp"] < lat["sync"]) {
		t.Fatalf("ordering bypassd < xrp < sync violated: %v", lat)
	}
}
