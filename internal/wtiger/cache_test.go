package wtiger

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func newCacheEnv(budget int64) (*sim.Sim, *sim.CPUSet, *pageCache) {
	s := sim.New()
	return s, s.NewCPUSet(4), newPageCache(s, budget)
}

func TestCacheHitMissAndEviction(t *testing.T) {
	s, cpu, c := newCacheEnv(3 * PageSize)
	s.Spawn("t", func(p *sim.Proc) {
		for pg := int64(0); pg < 5; pg++ {
			data := make([]byte, PageSize)
			data[0] = byte(pg)
			c.put(p, pg, data, 10, cpu)
		}
		// Budget of 3 pages: 0 and 1 evicted (LRU).
		if c.Len() != 3 {
			t.Errorf("len = %d, want 3", c.Len())
		}
		if _, ok := c.get(p, 0, 10, cpu); ok {
			t.Error("page 0 survived past budget")
		}
		if d, ok := c.get(p, 4, 10, cpu); !ok || d[0] != 4 {
			t.Error("newest page missing")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestCacheLRUTouchOrder(t *testing.T) {
	s, cpu, c := newCacheEnv(2 * PageSize)
	s.Spawn("t", func(p *sim.Proc) {
		c.put(p, 1, make([]byte, PageSize), 0, cpu)
		c.put(p, 2, make([]byte, PageSize), 0, cpu)
		// Touch 1 so 2 becomes the LRU victim.
		if _, ok := c.get(p, 1, 0, cpu); !ok {
			t.Error("page 1 missing")
		}
		c.put(p, 3, make([]byte, PageSize), 0, cpu)
		if _, ok := c.get(p, 2, 0, cpu); ok {
			t.Error("page 2 should have been the LRU victim")
		}
		if _, ok := c.get(p, 1, 0, cpu); !ok {
			t.Error("recently touched page 1 evicted")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestCacheReplaceUpdatesContent(t *testing.T) {
	s, cpu, c := newCacheEnv(4 * PageSize)
	s.Spawn("t", func(p *sim.Proc) {
		a := make([]byte, PageSize)
		a[0] = 1
		c.put(p, 7, a, 0, cpu)
		b := make([]byte, PageSize)
		b[0] = 2
		c.put(p, 7, b, 0, cpu)
		if c.Len() != 1 {
			t.Errorf("len = %d after replace", c.Len())
		}
		if d, _ := c.get(p, 7, 0, cpu); d[0] != 2 {
			t.Error("replace kept stale content")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestCacheLockSerializesAccess(t *testing.T) {
	s, cpu, c := newCacheEnv(16 * PageSize)
	const holders = 4
	var ends []sim.Time
	for i := 0; i < holders; i++ {
		s.Spawn(fmt.Sprintf("h%d", i), func(p *sim.Proc) {
			c.put(p, 1, make([]byte, PageSize), 1000, cpu) // 1µs under lock
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	// Four 1µs critical sections serialize: last finishes at ~4µs.
	var max sim.Time
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	if max < 4000 {
		t.Fatalf("cache lock did not serialize: last end %v", max)
	}
	s.Shutdown()
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	prev := encodeKey(0)
	for _, k := range []uint64{1, 2, 255, 256, 1 << 20, 1 << 40, ^uint64(0)} {
		cur := encodeKey(k)
		if string(prev[:]) >= string(cur[:]) {
			t.Fatalf("encoding not order preserving at %d", k)
		}
		prev = cur
	}
}

func TestSearchInternalBoundaries(t *testing.T) {
	// Build an internal page with keys 0, 100, 200 -> children 1,2,3.
	pg := make([]byte, PageSize)
	pg[0] = kindInternal
	pg[1], pg[2] = 3, 0 // count=3 little endian
	for i, k := range []uint64{0, 100, 200} {
		off := pageHeader + i*internalEnt
		ek := encodeKey(k)
		copy(pg[off:], ek[:])
		pg[off+KeySize] = byte(i + 1)
	}
	cases := []struct {
		key   uint64
		child int64
	}{
		{0, 1}, {50, 1}, {99, 1}, {100, 2}, {150, 2}, {200, 3}, {1 << 30, 3},
	}
	for _, c := range cases {
		if got := searchInternal(pg, encodeKey(c.key)); got != c.child {
			t.Errorf("searchInternal(%d) = %d, want %d", c.key, got, c.child)
		}
	}
}
