// Package wtiger implements a WiredTiger-like storage engine for the
// paper's production-workload experiments (Figs. 13 and 14): a B-tree
// over a single file with 512-byte pages (matching the Optane block
// size, as the paper configures), an in-memory page cache with a
// byte budget and a contended access lock, delta-buffered inserts,
// and three read paths — the kernel interface, the BypassD interface,
// and XRP in-driver chained descent.
package wtiger

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Geometry (paper §6.4: 512 B pages, 16 B keys and values).
const (
	PageSize = 512
	KeySize  = 16
	ValSize  = 16

	pageHeader  = 3 // kind byte + count uint16
	internalEnt = KeySize + 4
	leafEnt     = KeySize + ValSize

	kindLeaf     = 'L'
	kindInternal = 'I'
)

// LeafCap and InternalCap are entries per page.
var (
	LeafCap     = (PageSize - pageHeader) / leafEnt
	InternalCap = (PageSize - pageHeader) / internalEnt
)

// encodeKey produces the fixed 16-byte big-endian key so byte order
// matches numeric order.
func encodeKey(k uint64) [KeySize]byte {
	var b [KeySize]byte
	binary.BigEndian.PutUint64(b[8:], k)
	return b
}

// Store is the shared engine state: tree metadata, page cache, and
// insert delta. Threads access it through per-thread Conns.
type Store struct {
	Path   string
	Pages  int64
	Root   int64
	Levels int // tree height including the leaf level
	Keys   uint64

	cache *pageCache
	delta map[uint64][ValSize]byte

	// CacheAccessCost is charged under the cache lock per page
	// probe/insert — the contention point that caps scaling at high
	// thread counts (paper §6.4).
	CacheAccessCost sim.Time
	cpu             *sim.CPUSet

	// Stats.
	CacheHits, CacheMisses int64
	IOs                    int64
}

// Config for building a store.
type Config struct {
	Keys       uint64
	CacheBytes int64
	Path       string
}

// Build bulk-loads a B-tree with keys 0..Keys-1 into a new file using
// the kernel interface, and returns the shared Store. Values are a
// deterministic function of the key so reads can be verified.
func Build(p *sim.Proc, sys *core.System, cpu *sim.CPUSet, cfg Config) (*Store, error) {
	return BuildOn(p, sys, cpu, 0, cfg)
}

// BuildOn is Build on topology node devIdx: the store's file, and
// every I/O its connections issue, live on that device. Multi-SSD
// callers (the frontend service tier) build one store per device;
// node 0 is exactly the historical Build.
func BuildOn(p *sim.Proc, sys *core.System, cpu *sim.CPUSet, devIdx int, cfg Config) (*Store, error) {
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("wtiger: empty store")
	}
	img, root, levels, pages := buildImage(cfg.Keys)

	pr := sys.NewProcessOn(ext4.Root, devIdx)
	fd, err := pr.Create(p, cfg.Path, 0o666)
	if err != nil {
		return nil, err
	}
	const chunk = 1 << 20
	for off := 0; off < len(img); off += chunk {
		end := off + chunk
		if end > len(img) {
			end = len(img)
		}
		if _, err := pr.Pwrite(p, fd, img[off:end], int64(off)); err != nil {
			return nil, err
		}
	}
	if err := pr.Fsync(p, fd); err != nil {
		return nil, err
	}
	if err := pr.Close(p, fd); err != nil {
		return nil, err
	}
	return &Store{
		Path:            cfg.Path,
		Pages:           pages,
		Root:            root,
		Levels:          levels,
		Keys:            cfg.Keys,
		cache:           newPageCacheOn(sys.Sim, sys.M.Nodes[devIdx].Shard, cfg.CacheBytes),
		delta:           make(map[uint64][ValSize]byte),
		CacheAccessCost: 250 * sim.Nanosecond,
		cpu:             cpu,
	}, nil
}

// Reattach rebuilds the in-memory store state over an existing image
// (after booting from a snapshot). Tree metadata must match the
// original Build.
func (st *Store) Reattach(sys *core.System, cpu *sim.CPUSet, cacheBytes int64) *Store {
	return &Store{
		Path:            st.Path,
		Pages:           st.Pages,
		Root:            st.Root,
		Levels:          st.Levels,
		Keys:            st.Keys,
		cache:           newPageCache(sys.Sim, cacheBytes),
		delta:           make(map[uint64][ValSize]byte),
		CacheAccessCost: st.CacheAccessCost,
		cpu:             cpu,
	}
}

// ValueOf is the deterministic value stored for key k at build time.
func ValueOf(k uint64) [ValSize]byte {
	var v [ValSize]byte
	binary.LittleEndian.PutUint64(v[:], k*2654435761)
	binary.LittleEndian.PutUint64(v[8:], ^k)
	return v
}

// buildImage constructs the file image bottom-up.
func buildImage(keys uint64) (img []byte, root int64, levels int, pages int64) {
	type levelPage struct {
		firstKey [KeySize]byte
		pageNo   int64
	}
	var file [][]byte
	appendPage := func(pg []byte) int64 {
		file = append(file, pg)
		return int64(len(file) - 1)
	}
	// Page 0: reserved header.
	appendPage(make([]byte, PageSize))

	// Leaves.
	var level []levelPage
	for start := uint64(0); start < keys; start += uint64(LeafCap) {
		pg := make([]byte, PageSize)
		pg[0] = kindLeaf
		n := uint64(LeafCap)
		if start+n > keys {
			n = keys - start
		}
		binary.LittleEndian.PutUint16(pg[1:], uint16(n))
		for i := uint64(0); i < n; i++ {
			off := pageHeader + int(i)*leafEnt
			k := encodeKey(start + i)
			copy(pg[off:], k[:])
			v := ValueOf(start + i)
			copy(pg[off+KeySize:], v[:])
		}
		no := appendPage(pg)
		level = append(level, levelPage{firstKey: encodeKey(start), pageNo: no})
	}
	levels = 1

	// Internal levels.
	for len(level) > 1 {
		var next []levelPage
		for start := 0; start < len(level); start += InternalCap {
			pg := make([]byte, PageSize)
			pg[0] = kindInternal
			n := InternalCap
			if start+n > len(level) {
				n = len(level) - start
			}
			binary.LittleEndian.PutUint16(pg[1:], uint16(n))
			for i := 0; i < n; i++ {
				off := pageHeader + i*internalEnt
				copy(pg[off:], level[start+i].firstKey[:])
				binary.LittleEndian.PutUint32(pg[off+KeySize:], uint32(level[start+i].pageNo))
			}
			no := appendPage(pg)
			next = append(next, levelPage{firstKey: level[start].firstKey, pageNo: no})
		}
		level = next
		levels++
	}
	root = level[0].pageNo
	pages = int64(len(file))
	img = make([]byte, pages*PageSize)
	for i, pg := range file {
		copy(img[int64(i)*PageSize:], pg)
	}
	return img, root, levels, pages
}

// searchInternal finds the child page for key in an internal page.
func searchInternal(pg []byte, key [KeySize]byte) int64 {
	n := int(binary.LittleEndian.Uint16(pg[1:]))
	lo, hi := 0, n-1
	// Find the last entry with firstKey <= key.
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		off := pageHeader + mid*internalEnt
		if bytes.Compare(pg[off:off+KeySize], key[:]) <= 0 {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	off := pageHeader + best*internalEnt
	return int64(binary.LittleEndian.Uint32(pg[off+KeySize:]))
}

// searchLeaf finds key's value slot in a leaf page.
func searchLeaf(pg []byte, key [KeySize]byte) (int, bool) {
	n := int(binary.LittleEndian.Uint16(pg[1:]))
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		off := pageHeader + mid*leafEnt
		switch bytes.Compare(pg[off:off+KeySize], key[:]) {
		case 0:
			return off + KeySize, true
		case -1:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return 0, false
}

// Mode selects a Conn's read path.
type Mode int

// Read paths.
const (
	ModeFileIO Mode = iota // any core.FileIO engine (sync, bypassd, ...)
	ModeXRP                // kernel-interface descent chained in the driver
)

// Conn is a per-thread connection.
type Conn struct {
	st   *Store
	mode Mode

	io core.FileIO
	fd int

	pr  *kernel.Process
	kfd int

	pageBuf []byte
}

// NewConn opens the store through a FileIO engine.
func (st *Store) NewConn(p *sim.Proc, io core.FileIO) (*Conn, error) {
	fd, err := io.Open(p, st.Path, true)
	if err != nil {
		return nil, err
	}
	return &Conn{st: st, mode: ModeFileIO, io: io, fd: fd, pageBuf: make([]byte, PageSize)}, nil
}

// NewXRPConn opens the store for XRP-accelerated descents.
func (st *Store) NewXRPConn(p *sim.Proc, pr *kernel.Process) (*Conn, error) {
	fd, err := pr.Open(p, st.Path, true)
	if err != nil {
		return nil, err
	}
	return &Conn{st: st, mode: ModeXRP, pr: pr, kfd: fd, pageBuf: make([]byte, PageSize)}, nil
}

// readPage fetches a page via the connection's I/O path.
func (c *Conn) readPage(p *sim.Proc, pg int64, buf []byte) error {
	c.st.IOs++
	var err error
	if c.mode == ModeXRP {
		_, err = c.pr.Pread(p, c.kfd, buf[:PageSize], pg*PageSize)
	} else {
		_, err = c.io.Pread(p, c.fd, buf[:PageSize], pg*PageSize)
	}
	return err
}

// writePage persists a page.
func (c *Conn) writePage(p *sim.Proc, pg int64, buf []byte) error {
	c.st.IOs++
	var err error
	if c.mode == ModeXRP {
		_, err = c.pr.Pwrite(p, c.kfd, buf[:PageSize], pg*PageSize)
	} else {
		_, err = c.io.Pwrite(p, c.fd, buf[:PageSize], pg*PageSize)
	}
	return err
}

// getPage returns the page via cache, fetching on miss. The returned
// slice must not be modified without re-inserting.
func (c *Conn) getPage(p *sim.Proc, pg int64) ([]byte, error) {
	st := c.st
	if data, ok := st.cache.get(p, pg, st.CacheAccessCost, st.cpu); ok {
		st.CacheHits++
		return data, nil
	}
	st.CacheMisses++
	buf := make([]byte, PageSize)
	if err := c.readPage(p, pg, buf); err != nil {
		return nil, err
	}
	st.cache.put(p, pg, buf, st.CacheAccessCost, st.cpu)
	return buf, nil
}

// descend walks from the root to the leaf containing key, returning
// the leaf page and its page number.
func (c *Conn) descend(p *sim.Proc, key [KeySize]byte) ([]byte, int64, error) {
	st := c.st
	pg := st.Root
	for {
		// Probe the cache at every level.
		data, ok := st.cache.get(p, pg, st.CacheAccessCost, st.cpu)
		if ok {
			st.CacheHits++
		} else {
			st.CacheMisses++
			if c.mode == ModeXRP {
				return c.xrpDescend(p, pg, key)
			}
			buf := make([]byte, PageSize)
			if err := c.readPage(p, pg, buf); err != nil {
				return nil, 0, err
			}
			st.cache.put(p, pg, buf, st.CacheAccessCost, st.cpu)
			data = buf
		}
		if data[0] == kindLeaf {
			return data, pg, nil
		}
		pg = searchInternal(data, key)
	}
}

// xrpDescend continues a descent from page pg entirely inside the
// NVMe driver: one kernel entry, chained resubmissions. Pages touched
// by the chain are fed to the cache (XRP's WiredTiger port keeps the
// engine cache populated; without this every descent would restart
// from an uncached root).
func (c *Conn) xrpDescend(p *sim.Proc, pg int64, key [KeySize]byte) ([]byte, int64, error) {
	st := c.st
	cur := pg
	leafPg := pg
	buf := make([]byte, PageSize)
	n, err := c.pr.XRPChain(p, c.kfd, pg*PageSize, PageSize, buf, func(step int, b []byte) (int64, int64, bool) {
		snapshot := make([]byte, PageSize)
		copy(snapshot, b[:PageSize])
		st.cache.put(p, cur, snapshot, st.CacheAccessCost, st.cpu)
		if b[0] == kindLeaf {
			leafPg = cur
			return 0, 0, true
		}
		cur = searchInternal(b, key)
		return cur * PageSize, PageSize, false
	})
	if err != nil {
		return nil, 0, err
	}
	st.IOs += int64(n)
	leaf := make([]byte, PageSize)
	copy(leaf, buf)
	return leaf, leafPg, nil
}

// Lookup returns the value for key.
func (c *Conn) Lookup(p *sim.Proc, key uint64) ([ValSize]byte, bool, error) {
	if v, ok := c.st.delta[key]; ok {
		// Recently inserted: served from the in-memory delta, no I/O
		// (why YCSB D barely touches the device, paper §6.4).
		c.st.cpu.Compute(p, c.st.CacheAccessCost)
		return v, true, nil
	}
	ek := encodeKey(key)
	leaf, _, err := c.descend(p, ek)
	if err != nil {
		return [ValSize]byte{}, false, err
	}
	off, ok := searchLeaf(leaf, ek)
	if !ok {
		return [ValSize]byte{}, false, nil
	}
	var v [ValSize]byte
	copy(v[:], leaf[off:])
	return v, true, nil
}

// Update overwrites key's value in place (read leaf, patch, write
// back — 512 B aligned, so BypassD serves it from userspace).
func (c *Conn) Update(p *sim.Proc, key uint64, val [ValSize]byte) error {
	if _, ok := c.st.delta[key]; ok {
		c.st.delta[key] = val
		return nil
	}
	ek := encodeKey(key)
	leaf, pg, err := c.descend(p, ek)
	if err != nil {
		return err
	}
	off, ok := searchLeaf(leaf, ek)
	if !ok {
		return fmt.Errorf("wtiger: update of missing key %d", key)
	}
	patched := make([]byte, PageSize)
	copy(patched, leaf)
	copy(patched[off:], val[:])
	if err := c.writePage(p, pg, patched); err != nil {
		return err
	}
	c.st.cache.put(p, pg, patched, c.st.CacheAccessCost, c.st.cpu)
	return nil
}

// Insert buffers a new key in the in-memory delta (LSM-style level
// zero); it is flushed outside the measured window.
func (c *Conn) Insert(p *sim.Proc, key uint64, val [ValSize]byte) {
	c.st.cpu.Compute(p, c.st.CacheAccessCost)
	c.st.delta[key] = val
}

// Scan reads n consecutive keys starting at key, touching successive
// leaf pages.
func (c *Conn) Scan(p *sim.Proc, key uint64, n int) (int, error) {
	ek := encodeKey(key)
	leaf, pg, err := c.descend(p, ek)
	if err != nil {
		return 0, err
	}
	got := int(binary.LittleEndian.Uint16(leaf[1:]))
	for got < n {
		pg++
		if pg >= c.st.Pages {
			break
		}
		next, err := c.getPage(p, pg)
		if err != nil {
			return got, err
		}
		if next[0] != kindLeaf {
			break
		}
		got += int(binary.LittleEndian.Uint16(next[1:]))
	}
	if got > n {
		got = n
	}
	return got, nil
}

// CacheHitRatio reports the cache hit fraction.
func (st *Store) CacheHitRatio() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}
