package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// runTenancy runs a tenancy experiment in quick mode and returns the
// rendered report.
func runTenancy(t *testing.T, id string, parallelism int) (*Report, string) {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	rep, err := exp.Run(Options{Quick: true, Seed: 42, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range rep.Tables {
		sb.WriteString(tb.String())
	}
	return rep, sb.String()
}

// TestT7ArbiterSeparation: even in quick mode, WRR and prio must beat
// flat RR on the victim's p99 column at the highest hog count — the
// tentpole acceptance criterion, checked at the table layer. Columns:
// hogs, victim, arbiter, p50, p99, ...
func TestT7ArbiterSeparation(t *testing.T) {
	rep, _ := runTenancy(t, "T7", 1)
	tb := rep.Tables[0]
	p99 := map[string]float64{}
	for _, row := range tb.Rows {
		if row[0] != "8" || row[1] != "bypassd" {
			continue
		}
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("p99 cell %q: %v", row[4], err)
		}
		p99[row[2]] = v
	}
	if len(p99) != 3 {
		t.Fatalf("found %d arbiter rows at hogs=8, want 3", len(p99))
	}
	if p99["wrr"] >= p99["rr"] {
		t.Errorf("victim p99: wrr %.1fµs !< rr %.1fµs", p99["wrr"], p99["rr"])
	}
	if p99["prio"] >= p99["rr"] {
		t.Errorf("victim p99: prio %.1fµs !< rr %.1fµs", p99["prio"], p99["rr"])
	}
}

// TestTenancyParallelByteIdentical: T7 and T8 replay byte-identically
// at -j1 vs -j8 (the registry-wide parallel check covers this too;
// this pins the new tables explicitly per the tenancy acceptance
// criteria) and across same-seed runs.
func TestTenancyParallelByteIdentical(t *testing.T) {
	for _, id := range []string{"T7", "T8"} {
		_, a := runTenancy(t, id, 1)
		_, b := runTenancy(t, id, 8)
		if a != b {
			t.Errorf("%s: -j1 and -j8 reports differ:\n%s\nvs\n%s", id, a, b)
		}
		_, c := runTenancy(t, id, 1)
		if a != c {
			t.Errorf("%s: same-seed replay diverged", id)
		}
	}
}
