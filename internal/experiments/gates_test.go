package experiments

import (
	"testing"

	"repro/internal/stats"
)

// TestStatisticalGates is the CI enforcement of the evaluation's tail
// claims (ISSUE 7 acceptance): each gate runs its two table cells
// across 5 independent seeds and the 95% confidence intervals must
// separate — a point-estimate ordering that only holds for a lucky
// seed fails here.
func TestStatisticalGates(t *testing.T) {
	for _, g := range Gates() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			res, err := g.Run(Options{Quick: true, Seed: 1, Parallelism: 2})
			if err != nil {
				t.Fatalf("gate error: %v", err)
			}
			if !res.Pass {
				t.Fatalf("claim %q does not hold: %s", g.Claim, res.Detail)
			}
			if len(res.Samples) != 2 {
				t.Fatalf("want samples for both sides, got %d", len(res.Samples))
			}
			for side, xs := range res.Samples {
				if len(xs) != 5 {
					t.Fatalf("side %s ran %d trials, want 5", side, len(xs))
				}
			}
			if len(res.Repro) != 2 {
				t.Fatalf("want one repro spec per side, got %v", res.Repro)
			}
			for _, spec := range res.Repro {
				sp, err := ParseReproSpec(spec)
				if err != nil {
					t.Fatalf("gate emitted unparseable repro spec %q: %v", spec, err)
				}
				if sp.ID == "" || len(sp.Match) == 0 {
					t.Fatalf("repro spec %q does not pin a cell", spec)
				}
			}
		})
	}
}

func TestGateByName(t *testing.T) {
	if _, ok := GateByName("t7-arbiter-p99"); !ok {
		t.Fatal("t7-arbiter-p99 not found")
	}
	if _, ok := GateByName("no-such-gate"); ok {
		t.Fatal("bogus gate resolved")
	}
}

// TestGateReproRoundTrip is the acceptance check for the repro tool:
// a cell the T7 gate flags must replay to the exact recorded value
// when re-run from its spec — same cell, same derived seed, same
// byte-rendered p99.
func TestGateReproRoundTrip(t *testing.T) {
	o := Options{Quick: true, Seed: 1, Parallelism: 2}
	res, err := gateT7Arbiter(o)
	if err != nil {
		t.Fatal(err)
	}
	// Repro[0] is the wrr side's worst trial.
	sp, err := ParseReproSpec(res.Repro[0])
	if err != nil {
		t.Fatalf("parse %q: %v", res.Repro[0], err)
	}
	run, err := RunRepro(sp, 1)
	if err != nil {
		t.Fatalf("replay %q: %v", res.Repro[0], err)
	}
	if want := (Options{Seed: sp.Seed}).TrialSeed(sp.Trial); run.DerivedSeed != want {
		t.Fatalf("derived seed %d, want %d", run.DerivedSeed, want)
	}
	if len(run.Matches) != 1 {
		t.Fatalf("spec %q matched %d rows, want exactly the flagged cell", res.Repro[0], len(run.Matches))
	}
	m := run.Matches[0]
	p99Col := -1
	for i, h := range m.Headers {
		if h == "p99 (µs)" {
			p99Col = i
		}
	}
	if p99Col < 0 {
		t.Fatalf("no p99 column in %v", m.Headers)
	}
	recorded := res.Samples["wrr"][sp.Trial]
	if got, want := m.Row[p99Col], stats.Fmt(recorded); got != want {
		t.Fatalf("replayed p99 %q != recorded trial value %q (trial %d, seed %d)",
			got, want, sp.Trial, run.DerivedSeed)
	}
}
