package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

// faultTestIDs is a small, fast subset of experiments that exercises
// the userlib direct path, the kernel path, and SPDK under injection.
var faultTestIDs = []string{"F5", "F6"}

func runWithFaults(t *testing.T, id, profile string, seed int64, par int) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res := (&Runner{Parallelism: 1}).Run([]Experiment{e},
		Options{Quick: true, Seed: seed, Parallelism: par, Faults: profile})
	if res[0].Err != nil {
		t.Fatalf("%s under %q: %v", id, profile, res[0].Err)
	}
	return res[0].Report.String()
}

// TestFaultedRunsReplay is the PR's determinism criterion: with a
// fixed seed and profile, two runs of the same experiment render
// byte-identical reports.
func TestFaultedRunsReplay(t *testing.T) {
	for _, profile := range []string{"flaky-media", "revoke-storm"} {
		for _, id := range faultTestIDs {
			a := runWithFaults(t, id, profile, 7, 1)
			b := runWithFaults(t, id, profile, 7, 1)
			if a != b {
				t.Errorf("%s under %q: two runs with the same seed differ:\n--- first ---\n%s\n--- second ---\n%s",
					id, profile, a, b)
			}
		}
	}
}

// TestFaultedRunsParallelismInvariant extends the byte-identical
// guarantee to faulted runs: sweep-cell parallelism must not change a
// faulted report, because each cell's machines own private injectors.
func TestFaultedRunsParallelismInvariant(t *testing.T) {
	for _, id := range faultTestIDs {
		seq := runWithFaults(t, id, "chaos", 3, 1)
		par := runWithFaults(t, id, "chaos", 3, 8)
		if seq != par {
			t.Errorf("%s under chaos: report differs between -j 1 and -j 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq, par)
		}
	}
}

// TestRevokeStormParallelTranslation drives the translation fast path
// (WalkRange streaming, PWC lookups, indexed IOTLB invalidation)
// concurrently with fmap attach / revoke detach across parallel sweep
// cells under the revoke-storm profile. Each cell owns a private
// machine, so under -race this guards the fast path's data-sharing
// discipline (resident *Node pointers must never leak across cells);
// it also pins -j invariance for the revoke-heavy workload.
func TestRevokeStormParallelTranslation(t *testing.T) {
	for _, id := range faultTestIDs {
		seq := runWithFaults(t, id, "revoke-storm", 11, 1)
		par := runWithFaults(t, id, "revoke-storm", 11, 8)
		if seq != par {
			t.Errorf("%s under revoke-storm: report differs between -j 1 and -j 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq, par)
		}
	}
}

// TestCleanRunUnaffectedByPriorFaults guards the "disabled injector is
// structurally invisible" property: a clean run after a faulted run is
// byte-identical to a clean run before any profile was ever armed.
func TestCleanRunUnaffectedByPriorFaults(t *testing.T) {
	e, ok := ByID("F6")
	if !ok {
		t.Fatal("F6 not registered")
	}
	clean := func() string {
		res := (&Runner{Parallelism: 1}).Run([]Experiment{e},
			Options{Quick: true, Seed: 1, Parallelism: 1})
		if res[0].Err != nil {
			t.Fatalf("clean run: %v", res[0].Err)
		}
		return res[0].Report.String()
	}
	before := clean()
	faulted := runWithFaults(t, "F6", "chaos", 1, 1)
	after := clean()
	if before != after {
		t.Errorf("clean report changed after a faulted run:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
	if faulted == before && faults.GlobalTotal() == 0 {
		t.Log("chaos profile injected nothing into F6 (report identical); counters also zero")
	}
}

// TestRunUnknownFaultProfile: a typo'd profile must fail every
// experiment rather than silently running un-faulted.
func TestRunUnknownFaultProfile(t *testing.T) {
	e, _ := ByID("F5")
	res := (&Runner{Parallelism: 1}).Run([]Experiment{e},
		Options{Quick: true, Seed: 1, Faults: "no-such-profile"})
	if res[0].Err == nil {
		t.Fatal("expected error for unknown profile")
	}
	if !strings.Contains(res[0].Err.Error(), "no-such-profile") {
		t.Fatalf("error %q does not name the bad profile", res[0].Err)
	}
	if faults.ActiveName() != "" {
		t.Fatalf("profile %q left active after failed Activate", faults.ActiveName())
	}
}

// TestFaultCountersSurface: a profile with certain-fire rules must
// record global counters an operator can inspect after the run.
func TestFaultCountersSurface(t *testing.T) {
	_ = runWithFaults(t, "F6", "flaky-media", 42, 1)
	// Runner deactivates on return but counters persist until the next
	// Activate resets them.
	total := faults.GlobalTotal()
	counts := faults.GlobalCounts()
	if total == 0 {
		t.Fatal("flaky-media run recorded no injected faults")
	}
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != total {
		t.Fatalf("per-site counts sum to %d, total says %d", sum, total)
	}
}
