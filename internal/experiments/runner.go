package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// RunResult is one experiment's outcome under a Runner.
type RunResult struct {
	Experiment Experiment
	Report     *Report
	Err        error
	Wall       time.Duration
}

// Runner executes a set of experiments over a worker pool. Workers
// pull the next unstarted experiment from a shared index (dynamic
// scheduling: a worker that finishes a short harness immediately
// steals the next one rather than idling behind a long one), and
// results are returned in the callers' submission order, so rendering
// them is byte-identical to a sequential run.
//
// Every experiment boots its own simulated systems and shares no
// mutable state with the others, which is what makes this safe — the
// same shared-nothing argument BypassD itself makes for per-thread
// queue pairs (§6.3).
type Runner struct {
	// Parallelism is the worker-pool size; <= 0 means GOMAXPROCS.
	Parallelism int
	// OnStart, when set, is called as each experiment begins
	// (serialized; use for progress output).
	OnStart func(e Experiment)
	// OnDone, when set, is called as each experiment finishes
	// (serialized, completion order — not submission order).
	OnDone func(r RunResult)

	mu sync.Mutex // serializes OnStart/OnDone
}

// Run executes exps with the given options and returns one result per
// experiment, index-aligned with exps regardless of completion order.
// When o.Faults names a profile, it is armed for the whole run (every
// machine any experiment boots) and disarmed afterwards; an unknown
// profile fails every experiment up front rather than running
// un-faulted.
func (r *Runner) Run(exps []Experiment, o Options) []RunResult {
	if o.Faults != "" {
		if err := faults.Activate(o.Faults, o.Seed); err != nil {
			results := make([]RunResult, len(exps))
			for i, e := range exps {
				results[i] = RunResult{Experiment: e, Err: err}
			}
			return results
		}
		defer faults.Deactivate()
	}
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]RunResult, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			results[i] = r.runOne(e, o)
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				results[i] = r.runOne(exps[i], o)
			}
		}()
	}
	wg.Wait()
	return results
}

func (r *Runner) runOne(e Experiment, o Options) RunResult {
	if r.OnStart != nil {
		r.mu.Lock()
		r.OnStart(e)
		r.mu.Unlock()
	}
	start := time.Now()
	rep, err := e.Run(o)
	res := RunResult{Experiment: e, Report: rep, Err: err, Wall: time.Since(start)}
	if r.OnDone != nil {
		r.mu.Lock()
		r.OnDone(res)
		r.mu.Unlock()
	}
	return res
}
