package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/fio"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("F10", "Aggregate write bandwidth with multiple writer processes (Fig. 10)", runF10)
	register("F11", "Read latency with background reader processes (Fig. 11)", runF11)
	register("F12", "Throughput timeline across access revocation (Fig. 12)", runF12)
}

func runF10(o Options) (*Report, error) {
	procs := []int{1, 2, 4, 8, 16}
	ops := 300
	if o.Quick {
		procs = []int{1, 4}
		ops = 80
	}
	engines := []core.Engine{core.EngineSync, core.EngineLibaio, core.EngineUring, core.EngineSPDK, core.EngineBypassD}
	type cell struct {
		n   int
		eng core.Engine
	}
	var cells []cell
	for _, n := range procs {
		for _, e := range engines {
			cells = append(cells, cell{n, e})
		}
	}
	type point struct {
		bw float64
		na bool // the paper's empty SPDK bars: no multi-process sharing
	}
	points, err := sweepMap(o, len(cells), func(i int) (point, error) {
		c := cells[i]
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
			Name: "w", Engine: c.eng, Write: true, BS: 4096, Threads: c.n,
			OpsPerThread: ops, FileBytes: 16 << 20, ProcessPerThread: true,
		}})
		if err != nil {
			if c.eng == core.EngineSPDK && c.n > 1 {
				return point{na: true}, nil
			}
			return point{}, err
		}
		return point{bw: res["w"].Bandwidth() / 1e6}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 10: aggregate 4KB write bandwidth, private file per process",
		"processes", "engine", "bandwidth (MB/s)")
	for i, c := range cells {
		if points[i].na {
			tb.AddRow(c.n, string(c.eng), "n/a (cannot share)")
		} else {
			tb.AddRow(c.n, string(c.eng), points[i].bw)
		}
	}
	return &Report{ID: "F10", Title: "device sharing bandwidth", Tables: []*stats.Table{tb},
		Notes: []string{"bypassd sustains the highest aggregate bandwidth at every process count"}}, nil
}

func runF11(o Options) (*Report, error) {
	readers := []int{0, 1, 2, 4, 8, 12, 16}
	ops := 300
	if o.Quick {
		readers = []int{0, 4, 16}
		ops = 80
	}
	type cell struct {
		n   int
		eng core.Engine
	}
	var cells []cell
	for _, n := range readers {
		for _, e := range []core.Engine{core.EngineSync, core.EngineBypassD} {
			cells = append(cells, cell{n, e})
		}
	}
	lats, err := sweepMap(o, len(cells), func(i int) (float64, error) {
		c := cells[i]
		groups := []fio.Group{{
			Name: "fg", Engine: c.eng, BS: 4096, Threads: 1,
			OpsPerThread: ops, FileBytes: 16 << 20, ProcessPerThread: true,
		}}
		if c.n > 0 {
			groups = append(groups, fio.Group{
				Name: "bg", Engine: core.EngineSync, BS: 4096, Threads: c.n,
				OpsPerThread: 0, FileBytes: 16 << 20, ProcessPerThread: true,
			})
		}
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, groups)
		if err != nil {
			return 0, err
		}
		return res["fg"].Lat.Mean().Micros(), nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 11: 4KB random read latency vs background readers",
		"background readers", "system", "latency (µs)")
	for i, c := range cells {
		tb.AddRow(c.n, string(c.eng), lats[i])
	}
	return &Report{ID: "F11", Title: "device-side fairness", Tables: []*stats.Table{tb},
		Notes: []string{"round-robin queue arbitration keeps bypassd below sync at every load point"}}, nil
}

// runF12 traces one reader's throughput across a revocation event:
// it starts on the BypassD interface; partway through, a second
// process opens the file through the kernel interface; the kernel
// revokes direct access and the reader falls back (paper §3.6).
func runF12(o Options) (*Report, error) {
	duration := 8 * sim.Second
	revokeAt := 5 * sim.Second
	bucket := 500 * sim.Millisecond
	if o.Quick {
		duration = 400 * sim.Millisecond
		revokeAt = 250 * sim.Millisecond
		bucket = 50 * sim.Millisecond
	}

	sys, err := core.New(1 << 30)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	series := stats.NewSeries(bucket)
	var runErr error
	var directBefore, fellBack bool

	sys.Sim.Spawn("f12", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/shared", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, 64<<20); err != nil {
			runErr = err
			return
		}
		if err := pr.Fsync(p, fd); err != nil {
			runErr = err
			return
		}
		if err := pr.Close(p, fd); err != nil {
			runErr = err
			return
		}

		start := p.Now()
		end := start + duration

		// The interfering process: opens kernel-interface at the
		// revocation point.
		other := sys.NewProcess(ext4.Root)
		sys.Sim.Spawn("interferer", func(q *sim.Proc) {
			q.Sleep(revokeAt)
			if _, err := other.Open(q, "/shared", false); err != nil {
				runErr = err
			}
		})

		// The measured reader.
		reader := sys.NewProcess(ext4.Root)
		lib := sys.Lib(reader)
		th, err := lib.NewThread(p)
		if err != nil {
			runErr = err
			return
		}
		rfd, err := lib.Open(p, "/shared", false)
		if err != nil {
			runErr = err
			return
		}
		st, _ := lib.State(rfd)
		directBefore = st.Direct()
		buf := make([]byte, 4096)
		rngOff := int64(0)
		for p.Now() < end {
			off := (rngOff * 127) % (64 << 20 / 4096) * 4096
			rngOff++
			if _, err := th.Pread(p, rfd, buf, off); err != nil {
				runErr = err
				return
			}
			series.Record(p.Now()-start, 1)
		}
		fellBack = !st.Direct()
	})
	sys.Sim.Run()
	if runErr != nil {
		return nil, runErr
	}
	if !directBefore || !fellBack {
		return nil, fmt.Errorf("F12: revocation flow broken (direct=%v fellBack=%v)", directBefore, fellBack)
	}

	tb := stats.NewTable("Fig. 12: read throughput over time (revocation at the marked point)",
		"time (s)", "throughput (Kops/s)", "interface")
	buckets := series.Buckets()
	if n := len(buckets); n > 0 && buckets[n-1] == 0 {
		buckets = buckets[:n-1] // drop the empty edge bucket
	}
	for i := range buckets {
		t := sim.Time(i) * bucket
		iface := "bypassd"
		if t >= revokeAt {
			iface = "kernel (revoked)"
		}
		tb.AddRow(fmt.Sprintf("%.2f", t.Seconds()), series.Rate(i)/1000, iface)
	}
	return &Report{ID: "F12", Title: "revocation timeline", Tables: []*stats.Table{tb},
		Notes: []string{"throughput steps down at revocation and stays at the kernel-interface level"}}, nil
}
