package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSweepMapPreservesOrder(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		got, err := sweepMap(Options{Parallelism: par}, 17, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != 17 {
			t.Fatalf("par=%d: len=%d", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: got[%d]=%d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestSweepMapEmpty(t *testing.T) {
	got, err := sweepMap(Options{Parallelism: 8}, 0, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSweepMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		_, err := sweepMap(Options{Parallelism: par}, 10, func(i int) (int, error) {
			if i == 3 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("par=%d: err=%v, want wrapped boom", par, err)
		}
	}
}

func TestSweepMapStopsAfterFailure(t *testing.T) {
	var calls atomic.Int64
	_, err := sweepMap(Options{Parallelism: 2}, 1000, func(i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("expected early stop, ran all %d cells", n)
	}
}

func TestRunnerIndexAligned(t *testing.T) {
	// Experiments that finish in reverse submission order must still
	// report in submission order.
	var exps []Experiment
	for i := 0; i < 6; i++ {
		i := i
		exps = append(exps, Experiment{
			ID: fmt.Sprintf("X%d", i),
			Run: func(o Options) (*Report, error) {
				time.Sleep(time.Duration(6-i) * time.Millisecond)
				return &Report{ID: fmt.Sprintf("X%d", i)}, nil
			},
		})
	}
	var done atomic.Int64
	r := &Runner{Parallelism: 6, OnDone: func(RunResult) { done.Add(1) }}
	results := r.Run(exps, Options{})
	if len(results) != 6 {
		t.Fatalf("len=%d", len(results))
	}
	for i, res := range results {
		want := fmt.Sprintf("X%d", i)
		if res.Err != nil || res.Report.ID != want {
			t.Fatalf("results[%d] = %v (err %v), want %s", i, res.Report, res.Err, want)
		}
		if res.Experiment.ID != want {
			t.Fatalf("results[%d].Experiment = %s, want %s", i, res.Experiment.ID, want)
		}
	}
	if done.Load() != 6 {
		t.Fatalf("OnDone fired %d times, want 6", done.Load())
	}
}

func TestRunnerKeepsErrorsPerExperiment(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok", Run: func(Options) (*Report, error) { return &Report{ID: "ok"}, nil }},
		{ID: "bad", Run: func(Options) (*Report, error) { return nil, boom }},
	}
	results := (&Runner{Parallelism: 2}).Run(exps, Options{})
	if results[0].Err != nil || results[0].Report.ID != "ok" {
		t.Fatalf("results[0] = %+v", results[0])
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("results[1].Err = %v", results[1].Err)
	}
}

// TestParallelReportsByteIdentical is the PR's core acceptance
// criterion: for every registered experiment, the rendered report at
// Parallelism 8 must equal the sequential one byte for byte.
func TestParallelReportsByteIdentical(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			seq, err := e.Run(Options{Quick: true, Seed: 1, Parallelism: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := e.Run(Options{Quick: true, Seed: 1, Parallelism: 8})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if seq.String() != par.String() {
				t.Errorf("report differs between -j 1 and -j 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.String(), par.String())
			}
		})
	}
}

func TestHeadline(t *testing.T) {
	rep := runQuick(t, "F5")
	h := rep.Headline()
	if h == "" {
		t.Fatal("empty headline")
	}
	if want := "translations=1"; len(h) < len(want) || h[:len(want)] != want {
		t.Fatalf("headline = %q, want prefix %q", h, want)
	}
	empty := &Report{}
	if empty.Headline() != "" {
		t.Fatalf("empty report headline = %q", empty.Headline())
	}
}
