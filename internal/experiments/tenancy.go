package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tenants"
)

func init() {
	register("T7", "Noisy neighbor: victim tail latency vs. bandwidth hogs, arbiter ablation", runT7)
	register("T8", "SLO compliance vs. offered load, shared device (open-loop tenants)", runT8)
}

// optaneIOPS is the device's 4 KiB read saturation point (Fig. 9),
// the denominator for T8's offered-load fractions.
const optaneIOPS = 1.49e6

// runT7 pits one latency-sensitive 4 KiB tenant against a growing
// pack of large-block bandwidth hogs under each arbitration policy —
// the sharing evaluation the paper's symmetric fio jobs (Figs. 10/11)
// do not cover. The same seed drives every cell, so the arbiter
// columns are paired: identical arrival processes, different policy.
func runT7(o Options) (*Report, error) {
	hogCounts := []int{1, 4, 8, 16}
	victimOps, hogOps := 1000, 1000
	if o.Quick {
		hogCounts = []int{1, 8}
		victimOps, hogOps = 250, 250
	}
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	arbiters := []string{"rr", "wrr", "prio"}
	type cell struct {
		hogs int
		eng  core.Engine
		arb  string
	}
	var cells []cell
	for _, h := range hogCounts {
		for _, e := range engines {
			for _, a := range arbiters {
				cells = append(cells, cell{h, e, a})
			}
		}
	}
	type point struct {
		s          stats.Summary
		compliance float64
		hogMBps    float64
	}
	points, err := sweepMap(o, len(cells), func(i int) (point, error) {
		c := cells[i]
		sc := tenants.NoisyNeighbor(c.arb, c.hogs, victimOps, hogOps)
		sc.Tenants[0].Engine = c.eng
		res, err := tenants.Run(o.Seed, sc)
		if err != nil {
			return point{}, err
		}
		victim := res[0]
		var hogMBps float64
		for _, r := range res[1:] {
			hogMBps += r.Bandwidth() / 1e6
		}
		return point{
			s:          victim.Sojourn.Summarize(),
			compliance: victim.Compliance(),
			hogMBps:    hogMBps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("T7: victim 4KB read sojourn vs. noisy neighbors (open loop, 30µs SLO)",
		"hogs", "victim", "arbiter",
		"p50 (µs)", "p99 (µs)", "p999 (µs)", "SLO met (%)", "hogs (MB/s)")
	for i, c := range cells {
		p := points[i]
		tb.AddRow(c.hogs, string(c.eng), c.arb,
			float64(p.s.P50)/1e3, float64(p.s.P99)/1e3, float64(p.s.P999)/1e3,
			fmt.Sprintf("%.1f", p.compliance), p.hogMBps)
	}
	return &Report{ID: "T7", Title: "noisy-neighbor arbitration ablation", Tables: []*stats.Table{tb},
		Notes: []string{
			"flat RR serves every backlogged hog queue between victim grants; weighted-fair and priority arbitration hold the victim's p99 near its uncontended service time until the device itself saturates",
			"the victim's weight-16/priority-0 class rides its BypassD queues via nvme.QoS; the sync victim shares the kernel's single queue-0 class (paper §3.7's delegation has no per-tenant handle there)",
		}}, nil
}

// runT8 sweeps total offered load across equal tenants and reports
// SLO compliance — the open-loop saturation story: compliance holds
// until the knee, then collapses as queueing delay grows without
// bound.
func runT8(o Options) (*Report, error) {
	fractions := []float64{0.2, 0.5, 0.8, 0.95, 1.1}
	opsPer := 1500
	if o.Quick {
		fractions = []float64{0.3, 0.9}
		opsPer = 300
	}
	const nTenants = 4
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	type cell struct {
		frac float64
		eng  core.Engine
	}
	var cells []cell
	for _, f := range fractions {
		for _, e := range engines {
			cells = append(cells, cell{f, e})
		}
	}
	type point struct {
		achieved   float64
		s          stats.Summary
		compliance float64
	}
	points, err := sweepMap(o, len(cells), func(i int) (point, error) {
		c := cells[i]
		sc := tenants.SLOLoad(c.eng, nTenants, c.frac*optaneIOPS, opsPer)
		res, err := tenants.Run(o.Seed, sc)
		if err != nil {
			return point{}, err
		}
		agg := stats.NewHistogram()
		var ops, met int64
		var start, end = res[0].Start, res[0].End
		for _, r := range res {
			agg.Merge(r.Sojourn)
			ops += r.Ops
			met += r.Compliant
			if r.Start < start {
				start = r.Start
			}
			if r.End > end {
				end = r.End
			}
		}
		return point{
			achieved:   stats.Throughput(ops, end-start) / 1e3,
			s:          agg.Summarize(),
			compliance: 100 * float64(met) / float64(ops),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("T8: SLO compliance vs. offered load (4 tenants, 4KB reads, 25µs SLO)",
		"offered (kIOPS)", "engine", "achieved (kIOPS)", "p50 (µs)", "p99 (µs)", "SLO met (%)")
	for i, c := range cells {
		p := points[i]
		tb.AddRow(fmt.Sprintf("%.0f", c.frac*optaneIOPS/1e3), string(c.eng),
			p.achieved, float64(p.s.P50)/1e3, float64(p.s.P99)/1e3,
			fmt.Sprintf("%.1f", p.compliance))
	}
	return &Report{ID: "T8", Title: "SLO compliance vs. offered load", Tables: []*stats.Table{tb},
		Notes: []string{
			"open-loop arrivals keep offering load past the knee, so past ~95% of the Fig. 9 saturation point the backlog — and p99 — grows with run length instead of plateauing",
			"bypassd's lower per-op latency buys compliance headroom below the knee, but its reads serialize ATS translation before media (§3.4), so its IOPS ceiling sits ~12% under the physical-address kernel path's and its compliance collapses at a lower offered load",
		}}, nil
}
