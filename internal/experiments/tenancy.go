package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tenants"
)

func init() {
	register("T7", "Noisy neighbor: victim tail latency vs. bandwidth hogs, arbiter ablation", runT7)
	register("T8", "SLO compliance vs. offered load, shared device (open-loop tenants)", runT8)
}

// optaneIOPS is the device's 4 KiB read saturation point (Fig. 9),
// the denominator for T8's offered-load fractions.
const optaneIOPS = 1.49e6

// t7Ops is the per-tenant arrival count for a T7 cell; shared with
// the statistical gates so a gate's trial re-runs exactly the table
// cell's workload.
func t7Ops(quick bool) (victimOps, hogOps int) {
	if quick {
		return 250, 250
	}
	return 1000, 1000
}

// runT7 pits one latency-sensitive 4 KiB tenant against a growing
// pack of large-block bandwidth hogs under each arbitration policy —
// the sharing evaluation the paper's symmetric fio jobs (Figs. 10/11)
// do not cover. The same seed drives every cell, so the arbiter
// columns are paired: identical arrival processes, different policy.
func runT7(o Options) (*Report, error) {
	hogCounts := []int{1, 4, 8, 16}
	if o.Quick {
		hogCounts = []int{1, 8}
	}
	victimOps, hogOps := t7Ops(o.Quick)
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	arbiters := []string{"rr", "wrr", "prio"}
	type cell struct {
		hogs int
		eng  core.Engine
		arb  string
	}
	var cells []cell
	for _, h := range hogCounts {
		for _, e := range engines {
			for _, a := range arbiters {
				cells = append(cells, cell{h, e, a})
			}
		}
	}
	type point struct {
		s          stats.Summary
		compliance float64
		hogMBps    float64
	}
	points, err := trialMap(o, len(cells), func(i int, seed int64) (point, error) {
		c := cells[i]
		sc := tenants.NoisyNeighbor(c.arb, c.hogs, victimOps, hogOps)
		sc.Tenants[0].Engine = c.eng
		res, err := tenants.RunWorkers(seed, sc, o.workers())
		if err != nil {
			return point{}, err
		}
		victim := res[0]
		var hogMBps float64
		for _, r := range res[1:] {
			hogMBps += r.Bandwidth() / 1e6
		}
		return point{
			s:          victim.Sojourn.Summarize(),
			compliance: victim.Compliance(),
			hogMBps:    hogMBps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	const title = "T7: victim 4KB read sojourn vs. noisy neighbors (open loop, 30µs SLO)"
	notes := []string{
		"flat RR serves every backlogged hog queue between victim grants; weighted-fair and priority arbitration hold the victim's p99 near its uncontended service time until the device itself saturates",
		"the victim's weight-16/priority-0 class rides its BypassD queues via nvme.QoS; the sync victim shares the kernel's single queue-0 class (paper §3.7's delegation has no per-tenant handle there)",
	}
	if o.trials() == 1 {
		tb := stats.NewTable(title,
			"hogs", "victim", "arbiter",
			"p50 (µs)", "p99 (µs)", "p999 (µs)", "SLO met (%)", "hogs (MB/s)")
		for i, c := range cells {
			p := points[i][0]
			tb.AddRow(c.hogs, string(c.eng), c.arb,
				float64(p.s.P50)/1e3, float64(p.s.P99)/1e3, float64(p.s.P999)/1e3,
				fmt.Sprintf("%.1f", p.compliance), p.hogMBps)
		}
		return &Report{ID: "T7", Title: "noisy-neighbor arbitration ablation", Tables: []*stats.Table{tb},
			Notes: notes}, nil
	}

	tb := stats.NewTable(trialTitle(title, o),
		"hogs", "victim", "arbiter",
		"p50 (µs)", "p99 (µs)", "p99 ci95", "p99 span (µs)",
		"p999 (µs)", "p999 span (µs)", "SLO met (%)", "slo ci95", "hogs (MB/s)")
	for i, c := range cells {
		summaries := make([]stats.Summary, len(points[i]))
		var comp, mbps stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			comp.Add(p.compliance)
			mbps.Add(p.hogMBps)
		}
		ts := stats.AggregateSummaries(summaries)
		tb.AddRow(c.hogs, string(c.eng), c.arb,
			ts.P50.Mean()/1e3,
			ts.P99.Mean()/1e3, ciCell(&ts.P99, 1e3), spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			ts.P999.Mean()/1e3, spanCell(ts.P999Lo, ts.P999Hi, 1e3),
			fmt.Sprintf("%.1f", comp.Mean()), ciCell(&comp, 1),
			mbps.Mean())
	}
	return &Report{ID: "T7", Title: "noisy-neighbor arbitration ablation", Tables: []*stats.Table{tb},
		Notes: append(notes, trialNote(o))}, nil
}

// t8Params is the T8 sweep scale, shared with the statistical gates.
func t8Params(quick bool) (fractions []float64, opsPer int) {
	if quick {
		return []float64{0.3, 0.9}, 300
	}
	return []float64{0.2, 0.5, 0.8, 0.95, 1.1}, 1500
}

// t8GateFraction is the offered-load fraction the T8 statistical gate
// runs at: high enough that BypassD (whose IOPS ceiling sits ~12%
// below the raw-LBA engines', §3.4) is past its knee while the sync
// path is not — and always a fraction the mode's table actually
// sweeps, so the gate's repro spec lands on a real row.
func t8GateFraction(quick bool) float64 {
	if quick {
		return 0.9
	}
	return 0.95
}

// runT8 sweeps total offered load across equal tenants and reports
// SLO compliance — the open-loop saturation story: compliance holds
// until the knee, then collapses as queueing delay grows without
// bound.
func runT8(o Options) (*Report, error) {
	fractions, opsPer := t8Params(o.Quick)
	const nTenants = 4
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	type cell struct {
		frac float64
		eng  core.Engine
	}
	var cells []cell
	for _, f := range fractions {
		for _, e := range engines {
			cells = append(cells, cell{f, e})
		}
	}
	type point struct {
		achieved   float64
		s          stats.Summary
		compliance float64
	}
	points, err := trialMap(o, len(cells), func(i int, seed int64) (point, error) {
		c := cells[i]
		sc := tenants.SLOLoad(c.eng, nTenants, c.frac*optaneIOPS, opsPer)
		res, err := tenants.RunWorkers(seed, sc, o.workers())
		if err != nil {
			return point{}, err
		}
		agg := stats.NewHistogram()
		var ops, met int64
		var start, end = res[0].Start, res[0].End
		for _, r := range res {
			agg.Merge(r.Sojourn)
			ops += r.Ops
			met += r.Compliant
			if r.Start < start {
				start = r.Start
			}
			if r.End > end {
				end = r.End
			}
		}
		return point{
			achieved:   stats.Throughput(ops, end-start) / 1e3,
			s:          agg.Summarize(),
			compliance: 100 * float64(met) / float64(ops),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	const title = "T8: SLO compliance vs. offered load (4 tenants, 4KB reads, 25µs SLO)"
	notes := []string{
		"open-loop arrivals keep offering load past the knee, so past ~95% of the Fig. 9 saturation point the backlog — and p99 — grows with run length instead of plateauing",
		"bypassd's lower per-op latency buys compliance headroom below the knee, but its reads serialize ATS translation before media (§3.4), so its IOPS ceiling sits ~12% under the physical-address kernel path's and its compliance collapses at a lower offered load",
	}
	if o.trials() == 1 {
		tb := stats.NewTable(title,
			"offered (kIOPS)", "engine", "achieved (kIOPS)", "p50 (µs)", "p99 (µs)", "SLO met (%)")
		for i, c := range cells {
			p := points[i][0]
			tb.AddRow(fmt.Sprintf("%.0f", c.frac*optaneIOPS/1e3), string(c.eng),
				p.achieved, float64(p.s.P50)/1e3, float64(p.s.P99)/1e3,
				fmt.Sprintf("%.1f", p.compliance))
		}
		return &Report{ID: "T8", Title: "SLO compliance vs. offered load", Tables: []*stats.Table{tb},
			Notes: notes}, nil
	}

	tb := stats.NewTable(trialTitle(title, o),
		"offered (kIOPS)", "engine", "achieved (kIOPS)", "achieved ci95",
		"p50 (µs)", "p99 (µs)", "p99 ci95", "p99 span (µs)",
		"p999 (µs)", "p999 span (µs)", "SLO met (%)", "slo ci95")
	for i, c := range cells {
		summaries := make([]stats.Summary, len(points[i]))
		var ach, comp stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			ach.Add(p.achieved)
			comp.Add(p.compliance)
		}
		ts := stats.AggregateSummaries(summaries)
		tb.AddRow(fmt.Sprintf("%.0f", c.frac*optaneIOPS/1e3), string(c.eng),
			ach.Mean(), ciCell(&ach, 1),
			ts.P50.Mean()/1e3,
			ts.P99.Mean()/1e3, ciCell(&ts.P99, 1e3), spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			ts.P999.Mean()/1e3, spanCell(ts.P999Lo, ts.P999Hi, 1e3),
			fmt.Sprintf("%.1f", comp.Mean()), ciCell(&comp, 1))
	}
	return &Report{ID: "T8", Title: "SLO compliance vs. offered load", Tables: []*stats.Table{tb},
		Notes: append(notes, trialNote(o))}, nil
}
