package experiments

import (
	"fmt"

	"repro/internal/bpfkv"
	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/kvell"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wtiger"
	"repro/internal/ycsb"
)

func init() {
	register("F13", "WiredTiger YCSB throughput scaling with threads (Fig. 13)", runF13)
	register("F14", "WiredTiger throughput vs cache size, normalized to sync (Fig. 14)", runF14)
	register("F15", "BPF-KV avg and p99.9 lookup latency vs threads (Fig. 15)", runF15)
	register("F16", "KVell throughput and latency under YCSB (Fig. 16)", runF16)
}

// wtSystems are Fig. 13/14's compared systems.
var wtSystems = []string{"sync", "xrp", "bypassd"}

// runWT executes one WiredTiger configuration and returns Kops/s.
func runWT(o Options, system string, wl ycsb.Workload, threads int, keys uint64, cacheBytes int64, opsPerThread int) (float64, error) {
	sys, err := core.New(1 << 30)
	if err != nil {
		return 0, err
	}
	defer sys.Close()

	var runErr error
	var start, end sim.Time
	totalOps := 0
	started := 0
	barrier := sys.Sim.NewCond()

	sys.Sim.Spawn("wt-main", func(p *sim.Proc) {
		st, err := wtiger.Build(p, sys, sys.M.CPU, wtiger.Config{
			Keys: keys, CacheBytes: cacheBytes, Path: "/wt.db",
		})
		if err != nil {
			runErr = err
			return
		}
		pr := sys.NewProcess(ext4.Root)
		for t := 0; t < threads; t++ {
			t := t
			sys.Sim.Spawn("wt-worker", func(w *sim.Proc) {
				var conn *wtiger.Conn
				var err error
				switch system {
				case "xrp":
					conn, err = st.NewXRPConn(w, pr)
				default:
					io, e2 := sys.NewFileIO(w, pr, core.Engine(system))
					if e2 != nil {
						err = e2
					} else {
						conn, err = st.NewConn(w, io)
					}
				}
				started++
				if err != nil {
					runErr = err
					if started == threads {
						barrier.Broadcast()
					}
					return
				}
				if started == threads {
					barrier.Broadcast()
				} else {
					barrier.Wait(w)
				}
				if runErr != nil {
					return
				}
				gen := ycsb.NewGenerator(wl, keys, o.Seed*131+int64(t))
				// Warm the cache to steady state before measuring
				// (the paper's runs measure a warmed store).
				warm := opsPerThread
				if start == 0 {
					start = w.Now() // provisional; reset after warmup
				}
				measuring := false
				for i := 0; i < warm+opsPerThread; i++ {
					if i == warm {
						measuring = true
						if t == 0 {
							start = w.Now()
						}
					}
					op := gen.Next()
					var err error
					switch op.Type {
					case ycsb.Read:
						_, _, err = conn.Lookup(w, op.Key)
					case ycsb.Update:
						err = conn.Update(w, op.Key, wtiger.ValueOf(op.Key+1))
					case ycsb.Insert:
						conn.Insert(w, op.Key, wtiger.ValueOf(op.Key))
					case ycsb.Scan:
						_, err = conn.Scan(w, op.Key, op.ScanLen)
					case ycsb.ReadModifyWrite:
						_, _, err = conn.Lookup(w, op.Key)
						if err == nil {
							err = conn.Update(w, op.Key, wtiger.ValueOf(op.Key+2))
						}
					}
					if err != nil {
						runErr = fmt.Errorf("wt %s op %v key %d: %w", system, op.Type, op.Key, err)
						return
					}
					if measuring {
						totalOps++
					}
				}
				if e := w.Now(); e > end {
					end = e
				}
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		return 0, runErr
	}
	if end <= start {
		return 0, fmt.Errorf("wt: empty measurement window")
	}
	return stats.Throughput(int64(totalOps), end-start) / 1000, nil
}

func wtScale(o Options) (keys uint64, cacheFrac float64, ops int) {
	if o.Quick {
		return 60_000, 0.13, 200
	}
	return 400_000, 0.13, 1500
}

func runF13(o Options) (*Report, error) {
	threads := []int{1, 2, 4, 8, 16}
	workloads := []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.D, ycsb.E, ycsb.F}
	if o.Quick {
		threads = []int{1, 4}
		workloads = []ycsb.Workload{ycsb.A, ycsb.C, ycsb.D}
	}
	keys, frac, ops := wtScale(o)
	dataBytes := int64(keys/uint64OfLeafCap()) * wtiger.PageSize * 12 / 10
	cache := int64(float64(dataBytes) * frac)

	type cell struct {
		wl  ycsb.Workload
		n   int
		sys string
	}
	var cells []cell
	for _, wl := range workloads {
		for _, n := range threads {
			for _, sysName := range wtSystems {
				cells = append(cells, cell{wl, n, sysName})
			}
		}
	}
	kops, err := sweepMap(o, len(cells), func(i int) (float64, error) {
		c := cells[i]
		k, err := runWT(o, c.sys, c.wl, c.n, keys, cache, ops)
		if err != nil {
			return 0, fmt.Errorf("F13 %s/%s/%d: %w", c.wl.Name, c.sys, c.n, err)
		}
		return k, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 13: WiredTiger YCSB throughput (Kops/s)",
		"workload", "threads", "sync", "xrp", "bypassd")
	for i := 0; i < len(cells); i += len(wtSystems) {
		c := cells[i]
		row := []interface{}{c.wl.Name, c.n}
		for j := range wtSystems {
			row = append(row, kops[i+j])
		}
		tb.AddRow(row...)
	}
	return &Report{ID: "F13", Title: "WiredTiger scaling", Tables: []*stats.Table{tb},
		Notes: []string{
			"bypassd > xrp > sync on A/B/C/E/F; ~parity on insert-heavy D (little I/O)",
			"gains shrink at high thread counts as the cache lock becomes the bottleneck",
		}}, nil
}

func uint64OfLeafCap() uint64 { return uint64(wtiger.LeafCap) }

func runF14(o Options) (*Report, error) {
	keys, _, ops := wtScale(o)
	dataBytes := int64(keys/uint64OfLeafCap()) * wtiger.PageSize * 12 / 10
	// Paper cache points 2/4/6 GB against a 46 GB store.
	fracs := []float64{2.0 / 46, 4.0 / 46, 6.0 / 46}
	labels := []string{"2GB-equiv", "4GB-equiv", "6GB-equiv"}
	workloads := []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.D, ycsb.E, ycsb.F}
	if o.Quick {
		workloads = []ycsb.Workload{ycsb.B, ycsb.C}
		fracs = fracs[:2]
		labels = labels[:2]
	}

	type cell struct {
		wl    ycsb.Workload
		label string
		cache int64
		sys   string
	}
	var cells []cell
	for _, wl := range workloads {
		for i, frac := range fracs {
			cache := int64(float64(dataBytes) * frac)
			for _, sysName := range wtSystems {
				cells = append(cells, cell{wl, labels[i], cache, sysName})
			}
		}
	}
	kops, err := sweepMap(o, len(cells), func(i int) (float64, error) {
		c := cells[i]
		k, err := runWT(o, c.sys, c.wl, 1, keys, c.cache, ops)
		if err != nil {
			return 0, fmt.Errorf("F14 %s/%s: %w", c.wl.Name, c.sys, err)
		}
		return k, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 14: WiredTiger single-thread throughput vs cache size (normalized to sync)",
		"workload", "cache", "sync", "xrp", "bypassd")
	for i := 0; i < len(cells); i += len(wtSystems) {
		c := cells[i]
		tb.AddRow(c.wl.Name, c.label, 1.0, kops[i+1]/kops[i], kops[i+2]/kops[i])
	}
	return &Report{ID: "F14", Title: "cache sensitivity", Tables: []*stats.Table{tb},
		Notes: []string{"xrp's edge shrinks as the cache grows; bypassd improves every I/O regardless of cache size"}}, nil
}

// runBPFKV executes one Fig. 15 configuration.
func runBPFKV(o Options, mode string, threads int, objects uint64, opsPerThread int) (avg, p999 sim.Time, err error) {
	sys, err := core.New(1 << 30)
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()
	st, err := bpfkv.Plan(objects, 6)
	if err != nil {
		return 0, 0, err
	}

	hist := stats.NewHistogram()
	var runErr error
	started := 0
	barrier := sys.Sim.NewCond()

	sys.Sim.Spawn("kv-main", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		if mode == "spdk" {
			d, err := sys.SPDK()
			if err != nil {
				runErr = err
				return
			}
			q, err := d.NewQueue(p)
			if err != nil {
				runErr = err
				return
			}
			if err := st.LoadSPDK(p, d, q, "/kv.db"); err != nil {
				runErr = err
				return
			}
		} else {
			if err := st.LoadFS(p, sys, "/kv.db"); err != nil {
				runErr = err
				return
			}
		}
		for t := 0; t < threads; t++ {
			t := t
			sys.Sim.Spawn("kv-worker", func(w *sim.Proc) {
				var conn *bpfkv.Conn
				var err error
				switch mode {
				case "xrp":
					conn, err = st.NewXRPConn(w, pr)
				default:
					io, e2 := sys.NewFileIO(w, pr, core.Engine(mode))
					if e2 != nil {
						err = e2
					} else {
						conn, err = st.NewConn(w, io)
					}
				}
				started++
				if err != nil {
					runErr = err
					if started == threads {
						barrier.Broadcast()
					}
					return
				}
				if started == threads {
					barrier.Broadcast()
				} else {
					barrier.Wait(w)
				}
				if runErr != nil {
					return
				}
				rng := newXorshift(uint64(o.Seed)*2654435761 + uint64(t) + 1)
				for i := 0; i < opsPerThread; i++ {
					key := rng.next() % objects
					t0 := w.Now()
					if _, _, err := conn.Get(w, key); err != nil {
						runErr = err
						return
					}
					hist.Add(w.Now() - t0)
				}
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		return 0, 0, runErr
	}
	return hist.Mean(), hist.Percentile(99.9), nil
}

type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 1
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func runF15(o Options) (*Report, error) {
	threads := []int{1, 2, 4, 8, 16, 24}
	objects := uint64(150_000)
	ops := 400
	if o.Quick {
		threads = []int{1, 4}
		objects = 50_000
		ops = 80
	}
	modes := []string{"sync", "xrp", "spdk", "bypassd"}
	type cell struct {
		n    int
		mode string
	}
	var cells []cell
	for _, n := range threads {
		for _, m := range modes {
			cells = append(cells, cell{n, m})
		}
	}
	type point struct{ avg, p999 sim.Time }
	points, err := sweepMap(o, len(cells), func(i int) (point, error) {
		c := cells[i]
		avg, p999, err := runBPFKV(o, c.mode, c.n, objects, ops)
		if err != nil {
			return point{}, fmt.Errorf("F15 %s/%d: %w", c.mode, c.n, err)
		}
		return point{avg, p999}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 15: BPF-KV lookup latency (7 I/Os per lookup)",
		"threads", "system", "avg (µs)", "p99.9 (µs)")
	for i, c := range cells {
		tb.AddRow(c.n, c.mode, points[i].avg.Micros(), points[i].p999.Micros())
	}
	return &Report{ID: "F15", Title: "BPF-KV latency", Tables: []*stats.Table{tb},
		Notes: []string{
			"spdk < bypassd < xrp << sync at low threads; bypassd ≈ spdk + 7×0.55µs",
		}}, nil
}

// runKVell executes one Fig. 16 configuration.
func runKVell(o Options, mode string, wl ycsb.Workload, threads int, items uint64, opsPerThread int) (kops float64, meanLat sim.Time, err error) {
	sys, err := core.New(2 << 30)
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()

	hist := stats.NewHistogram()
	var runErr error
	var start, end sim.Time
	totalOps := 0
	started := 0
	barrier := sys.Sim.NewCond()

	sys.Sim.Spawn("kvell-main", func(p *sim.Proc) {
		st, err := kvell.Build(p, sys, kvell.Config{Items: items, Path: "/kvell.db"})
		if err != nil {
			runErr = err
			return
		}
		pr := sys.NewProcess(ext4.Root)
		for t := 0; t < threads; t++ {
			t := t
			sys.Sim.Spawn("kvell-worker", func(w *sim.Proc) {
				var worker *kvell.Worker
				var err error
				qd := 1
				switch mode {
				case "kvell_1":
					worker, err = kvell.NewAioWorker(w, sys, st, pr, 1)
				case "kvell_64":
					qd = 64
					worker, err = kvell.NewAioWorker(w, sys, st, pr, 64)
				default:
					worker, err = kvell.NewBypassWorker(w, sys.Lib(pr), st)
				}
				started++
				if err != nil {
					runErr = err
					if started == threads {
						barrier.Broadcast()
					}
					return
				}
				if started == threads {
					barrier.Broadcast()
				} else {
					barrier.Wait(w)
				}
				if runErr != nil {
					return
				}
				if start == 0 {
					start = w.Now()
				}
				gen := ycsb.NewGenerator(wl, items, o.Seed*997+int64(t))
				for done := 0; done < opsPerThread; {
					batch := qd
					if batch > opsPerThread-done {
						batch = opsPerThread - done
					}
					reqs := make([]kvell.Request, batch)
					for i := range reqs {
						op := gen.Next()
						switch op.Type {
						case ycsb.Update:
							reqs[i] = kvell.Request{Write: true, Key: op.Key, Val: kvell.ValueOf(op.Key + 1)}
						default:
							reqs[i] = kvell.Request{Key: op.Key}
						}
					}
					for _, res := range worker.Do(w, reqs) {
						if res.Err != nil {
							runErr = res.Err
							return
						}
						hist.Add(res.Latency)
					}
					done += batch
					totalOps += batch
				}
				if e := w.Now(); e > end {
					end = e
				}
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		return 0, 0, runErr
	}
	if end <= start {
		return 0, 0, fmt.Errorf("kvell: empty window")
	}
	return stats.Throughput(int64(totalOps), end-start) / 1000, hist.Mean(), nil
}

func runF16(o Options) (*Report, error) {
	threads := []int{1, 2, 4, 8, 16}
	items := uint64(30_000)
	ops := 512
	workloads := []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C}
	if o.Quick {
		threads = []int{1, 4}
		items = 8_000
		ops = 128
	}
	modes := []string{"kvell_1", "kvell_64", "bypassd"}
	type cell struct {
		wl   ycsb.Workload
		n    int
		mode string
	}
	var cells []cell
	for _, wl := range workloads {
		for _, n := range threads {
			for _, m := range modes {
				cells = append(cells, cell{wl, n, m})
			}
		}
	}
	type point struct {
		kops float64
		lat  sim.Time
	}
	points, err := sweepMap(o, len(cells), func(i int) (point, error) {
		c := cells[i]
		kops, lat, err := runKVell(o, c.mode, c.wl, c.n, items, ops)
		if err != nil {
			return point{}, fmt.Errorf("F16 %s/%s/%d: %w", c.wl.Name, c.mode, c.n, err)
		}
		return point{kops, lat}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 16: KVell YCSB throughput and latency",
		"workload", "threads", "system", "Kops/s", "mean latency (µs)")
	for i, c := range cells {
		tb.AddRow(c.wl.Name, c.n, c.mode, points[i].kops, points[i].lat.Micros())
	}
	return &Report{ID: "F16", Title: "KVell", Tables: []*stats.Table{tb},
		Notes: []string{
			"kvell_64 trades latency for throughput; bypassd restores low latency and beats kvell_1 throughput",
			"on write-heavy A, bypassd approaches kvell_64 by dodging the ext4 per-inode write lock",
		}}, nil
}
