package experiments

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/fio"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/userlib"
)

func init() {
	register("A1", "Ablation: caching FTEs in the IOTLB (paper §4.3, Fig. 8's 350ns point)", runA1)
	register("A2", "Ablation: per-thread vs shared queue pairs (paper §6.3)", runA2)
	register("A3", "Ablation: kernel appends vs §5.1 optimized appends", runA3)
	register("A4", "Ablation: overlapping write translation with data transfer (paper §4.3)", runA4)
	register("A5", "Extension: non-blocking writes (paper §5.1)", runA5)
	register("A6", "Extension: extent-table IOMMU walker vs page-table FTEs (paper §5.1)", runA6)
}

func runA1(o Options) (*Report, error) {
	ops := 200
	if o.Quick {
		ops = 60
	}
	variants := []bool{false, true}
	type point struct{ lat, bw float64 }
	points, err := sweepMap(o, len(variants), func(i int) (point, error) {
		// A 1 MiB working set fits the 256-entry IOTLB, giving the
		// caching variant its best case.
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, CacheFTEs: variants[i], Seed: o.Seed}, []fio.Group{{
			Name: "m", Engine: core.EngineBypassD, BS: 4096, Threads: 1,
			OpsPerThread: ops, FileBytes: 1 << 20,
		}})
		if err != nil {
			return point{}, err
		}
		return point{res["m"].Lat.Mean().Micros(), res["m"].Bandwidth() / 1e9}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("A1: 4KB random read with and without FTE caching",
		"FTE caching", "latency (µs)", "bandwidth (GB/s)")
	for i, caching := range variants {
		label := "off (paper default)"
		if caching {
			label = "on"
		}
		tb.AddRow(label, points[i].lat, points[i].bw)
	}

	// Paging-structure-cache sweep: the same workload with the PWC
	// disabled, at the byte-identity default (hits priced like full
	// walks), and with hits modeled as a single leaf fetch (~183ns/3
	// levels saved off the walk and off the 550ns floor).
	pwcSpecs := []struct {
		label string
		spec  fio.Spec
	}{
		{"disabled", fio.Spec{VBAFixedLatency: -1, PWCEntries: -1}},
		{"32 entries, hits priced as full walks (default)", fio.Spec{VBAFixedLatency: -1}},
		{"32 entries, 61ns hit walk / 430ns floor", fio.Spec{
			VBAFixedLatency:   -1,
			PWCHitWalkLatency: 61 * sim.Nanosecond,
			PWCMinTranslation: 430 * sim.Nanosecond,
		}},
	}
	pwcPoints, err := sweepMap(o, len(pwcSpecs), func(i int) (point, error) {
		spec := pwcSpecs[i].spec
		spec.Seed = o.Seed
		res, err := fio.Run(spec, []fio.Group{{
			Name: "m", Engine: core.EngineBypassD, BS: 4096, Threads: 1,
			OpsPerThread: ops, FileBytes: 1 << 20,
		}})
		if err != nil {
			return point{}, err
		}
		return point{res["m"].Lat.Mean().Micros(), res["m"].Bandwidth() / 1e9}, nil
	})
	if err != nil {
		return nil, err
	}
	tp := stats.NewTable("A1b: 4KB random read vs paging-structure cache model",
		"PWC", "latency (µs)", "bandwidth (GB/s)")
	for i, v := range pwcSpecs {
		tp.AddRow(v.label, pwcPoints[i].lat, pwcPoints[i].bw)
	}

	return &Report{ID: "A1", Title: "IOTLB FTE caching", Tables: []*stats.Table{tb, tp},
		Notes: []string{
			"difference is small: caching FTEs in the IOTLB is not critical (paper §6.3)",
			"default PWC pricing reproduces the pre-PWC figures byte-for-byte (DESIGN.md §10)",
		}}, nil
}

// runA2 compares per-thread queues with one shared, locked queue at 8
// threads.
func runA2(o Options) (*Report, error) {
	ops := 150
	if o.Quick {
		ops = 50
	}
	const threads = 8
	variants := []bool{false, true}
	type point struct {
		lat  sim.Time
		iops float64
	}
	points, err := sweepMap(o, len(variants), func(i int) (point, error) {
		lat, iops, err := runSharedQueues(o, variants[i], threads, ops)
		if err != nil {
			return point{}, err
		}
		return point{lat, iops}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("A2: 4KB reads, 8 threads: per-thread vs shared queue pairs",
		"queues", "latency (µs)", "IOPS (K)")
	for i, shared := range variants {
		label := "per-thread (paper design)"
		if shared {
			label = "one shared + lock"
		}
		tb.AddRow(label, points[i].lat.Micros(), points[i].iops/1000)
	}
	return &Report{ID: "A2", Title: "queue-per-thread ablation", Tables: []*stats.Table{tb},
		Notes: []string{"sharing queues serializes the data path and inflates latency (paper §6.3 scaling rationale)"}}, nil
}

func runSharedQueues(o Options, shared bool, threads, ops int) (sim.Time, float64, error) {
	sys, err := core.New(1 << 30)
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()

	hist := stats.NewHistogram()
	var runErr error
	var start, end sim.Time
	total := 0
	started := 0
	barrier := sys.Sim.NewCond()

	sys.Sim.Spawn("a2", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/a2", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, 64<<20); err != nil {
			runErr = err
			return
		}
		if err := pr.Fsync(p, fd); err != nil {
			runErr = err
			return
		}
		if err := pr.Close(p, fd); err != nil {
			runErr = err
			return
		}

		worker := sys.NewProcess(ext4.Root)
		cfg := userlib.DefaultConfig()
		cfg.ShareQueues = shared
		lib := userlib.New(worker, cfg)
		for t := 0; t < threads; t++ {
			t := t
			sys.Sim.Spawn("a2-worker", func(w *sim.Proc) {
				th, err := lib.NewThread(w)
				var lfd int
				if err == nil {
					lfd, err = lib.Open(w, "/a2", false)
				}
				started++
				if err != nil {
					runErr = err
					if started == threads {
						barrier.Broadcast()
					}
					return
				}
				if started == threads {
					barrier.Broadcast()
				} else {
					barrier.Wait(w)
				}
				if runErr != nil {
					return
				}
				if start == 0 {
					start = w.Now()
				}
				rng := newXorshift(uint64(t + 1))
				buf := make([]byte, 4096)
				for i := 0; i < ops; i++ {
					off := int64(rng.next()%(64<<20/4096)) * 4096
					t0 := w.Now()
					if _, err := th.Pread(w, lfd, buf, off); err != nil {
						runErr = err
						return
					}
					hist.Add(w.Now() - t0)
					total++
				}
				if e := w.Now(); e > end {
					end = e
				}
			})
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		return 0, 0, runErr
	}
	return hist.Mean(), stats.Throughput(int64(total), end-start), nil
}

// runA3 compares the three append strategies: kernel appends (paper
// default), §5.1's fallocate+overwrite optimization, and the SplitFS
// relink approach the paper names as the more intrusive alternative.
func runA3(o Options) (*Report, error) {
	appends := 400
	if o.Quick {
		appends = 100
	}
	strategies := []string{"kernel", "optimized", "relink"}
	lats, err := sweepMap(o, len(strategies), func(ci int) (sim.Time, error) {
		strategy := strategies[ci]
		sys, err := core.New(1 << 30)
		if err != nil {
			return 0, err
		}
		hist := stats.NewHistogram()
		var runErr error
		sys.Sim.Spawn("a3", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			fd0, err := pr.Create(p, "/log", 0o666)
			if err != nil {
				runErr = err
				return
			}
			_ = pr.Close(p, fd0)
			lib := sys.Lib(pr)
			th, err := lib.NewThread(p)
			if err != nil {
				runErr = err
				return
			}
			fd, err := lib.Open(p, "/log", true)
			if err != nil {
				runErr = err
				return
			}
			var appender *userlib.StagingAppender
			if strategy == "relink" {
				appender, err = lib.NewStagingAppender(p, th, fd, "/log.stg", 64*4096)
				if err != nil {
					runErr = err
					return
				}
			}
			rec := make([]byte, 4096)
			for i := 0; i < appends; i++ {
				t0 := p.Now()
				switch strategy {
				case "optimized":
					_, err = th.OptimizedAppend(p, fd, rec, 4<<20)
				case "relink":
					_, err = appender.Append(p, rec)
				default:
					_, err = th.Write(p, fd, rec)
				}
				if err != nil {
					runErr = err
					return
				}
				hist.Add(p.Now() - t0)
			}
		})
		sys.Sim.Run()
		sys.Close()
		if runErr != nil {
			return 0, runErr
		}
		return hist.Mean(), nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("A3: 4KB append latency",
		"strategy", "mean latency (µs)")
	for i, strategy := range strategies {
		label := map[string]string{
			"kernel":    "kernel appends (paper default)",
			"optimized": "fallocate + userspace overwrites (§5.1)",
			"relink":    "staging file + relink (SplitFS-style, §5.1)",
		}[strategy]
		tb.AddRow(label, lats[i].Micros())
	}
	return &Report{ID: "A3", Title: "append strategies", Tables: []*stats.Table{tb},
		Notes: []string{"preallocation turns most appends into direct userspace overwrites"}}, nil
}

// runA4 toggles the device's write-translation overlap.
func runA4(o Options) (*Report, error) {
	ops := 200
	if o.Quick {
		ops = 60
	}
	variants := []bool{false, true}
	lats, err := sweepMap(o, len(variants), func(i int) (sim.Time, error) {
		return runA4Once(o, variants[i], ops)
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("A4: 4KB overwrite latency vs write-translation handling",
		"write translation", "latency (µs)")
	for i, serialize := range variants {
		label := "overlapped with transfer (paper design)"
		if serialize {
			label = "serialized before transfer"
		}
		tb.AddRow(label, lats[i].Micros())
	}
	return &Report{ID: "A4", Title: "write translation overlap", Tables: []*stats.Table{tb},
		Notes: []string{"overlap hides the full VBA translation on the write path (paper §4.3)"}}, nil
}

func runA4Once(o Options, serialize bool, ops int) (sim.Time, error) {
	s := sim.New()
	dcfg := device.OptaneP5800X(1 << 30)
	dcfg.SerializeWriteTranslation = serialize
	m, err := kernel.NewMachine(s, kernel.DefaultConfig(), dcfg, nil)
	if err != nil {
		return 0, err
	}
	defer s.Shutdown()
	hist := stats.NewHistogram()
	var runErr error
	s.Spawn("a4", func(p *sim.Proc) {
		pr := m.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/a4", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, 16<<20); err != nil {
			runErr = err
			return
		}
		if err := pr.Fsync(p, fd); err != nil {
			runErr = err
			return
		}
		if err := pr.Close(p, fd); err != nil {
			runErr = err
			return
		}
		lib := userlib.New(pr, userlib.DefaultConfig())
		th, err := lib.NewThread(p)
		if err != nil {
			runErr = err
			return
		}
		lfd, err := lib.Open(p, "/a4", true)
		if err != nil {
			runErr = err
			return
		}
		buf := make([]byte, 4096)
		rng := newXorshift(uint64(o.Seed) + 5)
		for i := 0; i < ops; i++ {
			off := int64(rng.next()%(16<<20/4096)) * 4096
			t0 := p.Now()
			if _, err := th.Pwrite(p, lfd, buf, off); err != nil {
				runErr = err
				return
			}
			hist.Add(p.Now() - t0)
		}
	})
	s.Run()
	if runErr != nil {
		return 0, runErr
	}
	return hist.Mean(), nil
}

// runA5 measures the §5.1 non-blocking write enhancement: a single
// thread streaming 4 KiB overwrites synchronously vs. at queue depth
// 16 with read-side range consistency.
func runA5(o Options) (*Report, error) {
	writes := 256
	if o.Quick {
		writes = 96
	}
	sys, err := core.New(1 << 30)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	var syncThr, asyncThr float64
	var runErr error
	sys.Sim.Spawn("a5", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd0, err := pr.Create(p, "/a5", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd0, int64(writes)*4096); err != nil {
			runErr = err
			return
		}
		_ = pr.Fsync(p, fd0)
		_ = pr.Close(p, fd0)

		lib := sys.Lib(pr)
		th, err := lib.NewThread(p)
		if err != nil {
			runErr = err
			return
		}
		fd, err := lib.Open(p, "/a5", true)
		if err != nil {
			runErr = err
			return
		}
		buf := make([]byte, 4096)

		start := p.Now()
		for i := 0; i < writes; i++ {
			if _, err := th.Pwrite(p, fd, buf, int64(i)*4096); err != nil {
				runErr = err
				return
			}
		}
		syncThr = float64(writes) / (p.Now() - start).Seconds()

		w, err := lib.NewAsyncWriter(p, 16, 4096)
		if err != nil {
			runErr = err
			return
		}
		start = p.Now()
		for i := 0; i < writes; i++ {
			if _, err := w.Pwrite(p, fd, buf, int64(i)*4096); err != nil {
				runErr = err
				return
			}
		}
		if err := w.Drain(p); err != nil {
			runErr = err
			return
		}
		asyncThr = float64(writes) / (p.Now() - start).Seconds()
	})
	sys.Sim.Run()
	if runErr != nil {
		return nil, runErr
	}
	tb := stats.NewTable("A5: 4KB overwrite throughput, 1 thread",
		"write mode", "Kops/s")
	tb.AddRow("synchronous (paper default)", syncThr/1000)
	tb.AddRow("non-blocking, depth 16 (§5.1)", asyncThr/1000)
	return &Report{ID: "A5", Title: "non-blocking writes", Tables: []*stats.Table{tb},
		Notes: []string{"reads overlapping buffered writes wait for retirement (consistency rule)"}}, nil
}

// runA6 contrasts the two fmap translation structures on a large
// file: setup cost and per-read latency.
func runA6(o Options) (*Report, error) {
	size := int64(256 << 20)
	reads := 150
	if o.Quick {
		size = 64 << 20
		reads = 60
	}
	variants := []bool{false, true}
	type point struct{ fmapT, lat sim.Time }
	points, err := sweepMap(o, len(variants), func(ci int) (point, error) {
		extent := variants[ci]
		sys, err := core.New(size*2 + (256 << 20))
		if err != nil {
			return point{}, err
		}
		var fmapT sim.Time
		var lat sim.Time
		var runErr error
		sys.Sim.Spawn("a6", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			fd0, err := pr.Create(p, "/a6", 0o666)
			if err != nil {
				runErr = err
				return
			}
			if err := pr.Fallocate(p, fd0, size); err != nil {
				runErr = err
				return
			}
			_ = pr.Fsync(p, fd0)
			_ = pr.Close(p, fd0)
			in, _ := sys.M.FS.Lookup(p, "/a6", ext4.Root)
			in.DropFileTable()

			cfg := userlib.DefaultConfig()
			cfg.ExtentFmap = extent
			lib := userlib.New(sys.NewProcess(ext4.Root), cfg)
			th, err := lib.NewThread(p)
			if err != nil {
				runErr = err
				return
			}
			start := p.Now()
			fd, err := lib.Open(p, "/a6", false)
			if err != nil {
				runErr = err
				return
			}
			fmapT = p.Now() - start

			buf := make([]byte, 4096)
			rng := newXorshift(uint64(o.Seed) + 11)
			start = p.Now()
			for i := 0; i < reads; i++ {
				off := int64(rng.next()%uint64(size/4096)) * 4096
				if _, err := th.Pread(p, fd, buf, off); err != nil {
					runErr = err
					return
				}
			}
			lat = (p.Now() - start) / sim.Time(reads)
		})
		sys.Sim.Run()
		sys.Close()
		if runErr != nil {
			return point{}, runErr
		}
		return point{fmapT, lat}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("A6: translation structure for a large file",
		"structure", "cold fmap (µs)", "4KB read latency (µs)")
	for i, extent := range variants {
		label := "page-table FTEs (paper design)"
		if extent {
			label = "IOMMU extent table (§5.1 alternative)"
		}
		tb.AddRow(label, points[i].fmapT.Micros(), points[i].lat.Micros())
	}
	return &Report{ID: "A6", Title: "translation structures", Tables: []*stats.Table{tb},
		Notes: []string{"extent tables make fmap O(extents); reads stay within ~100ns of the FTE walk"}}, nil
}
