package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/userlib"
)

func init() {
	register("S2", "Supplemental: BypassD inside VMs via SR-IOV virtual functions (§5.2)", runS2)
}

// runS2 boots a host plus two guest machines on carved VF windows and
// measures the guest-side BypassD read latency against bare metal:
// the only added cost is the nested IOMMU walk, and the two guests
// share the device's media channels.
func runS2(o Options) (*Report, error) {
	ops := 200
	if o.Quick {
		ops = 60
	}

	// Two independent simulated worlds: the host+guests system and the
	// bare-metal reference. Fan them out as sweep cells.
	type point struct {
		guest1, guest2, guestSync sim.Time // cell 0
		bareSync, bareByp         sim.Time // cell 1
	}
	points, err := sweepMap(o, 2, func(i int) (point, error) {
		if i == 1 {
			bareSync, bareByp, err := runS1Device(o, device.OptaneP5800X(1<<30), ops)
			return point{bareSync: bareSync, bareByp: bareByp}, err
		}
		g1, g2, gs, err := runS2Guests(o, ops)
		return point{guest1: g1, guest2: g2, guestSync: gs}, err
	})
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("S2: 4KB BypassD read latency, bare metal vs guest VMs",
		"configuration", "latency (µs)")
	tb.AddRow("bare metal, sync kernel path", points[1].bareSync.Micros())
	tb.AddRow("bare metal, bypassd", points[1].bareByp.Micros())
	tb.AddRow("guest VM 1, bypassd (nested walk)", points[0].guest1.Micros())
	tb.AddRow("guest VM 2, bypassd (nested walk)", points[0].guest2.Micros())
	tb.AddRow("guest VM 1, sync kernel path", points[0].guestSync.Micros())
	return &Report{ID: "S2", Title: "VMs on virtual functions", Tables: []*stats.Table{tb},
		Notes: []string{
			"guests keep the userspace fast path; the nested IOMMU walk adds ~0.3µs",
			"isolation is block-level (SR-IOV windows): no file sharing across VMs, as the paper states",
		}}, nil
}

// runS2Guests boots the host plus two guest machines and returns each
// guest's BypassD read latency and guest 1's sync-path reference.
func runS2Guests(o Options, ops int) (guest1, guest2, guestSync sim.Time, err error) {
	s := sim.New()
	defer s.Shutdown()
	host, err := kernel.NewMachine(s, kernel.DefaultConfig(), device.OptaneP5800X(1<<30), nil)
	if err != nil {
		return 0, 0, 0, err
	}
	const nested = 300 * sim.Nanosecond
	mkGuest := func(name string, devID uint8, baseMB int64) (*kernel.Machine, error) {
		vf, err := device.Carve(s, host.Dev, name, devID, baseMB<<20/512, (192<<20)/512)
		if err != nil {
			return nil, err
		}
		return kernel.NewGuestMachine(s, kernel.DefaultConfig(), host, vf, nested)
	}
	g1, err := mkGuest("vf1", 10, 512)
	if err != nil {
		return 0, 0, 0, err
	}
	g2, err := mkGuest("vf2", 11, 768)
	if err != nil {
		return 0, 0, 0, err
	}

	lat := make([]sim.Time, 2)
	var runErr error
	done := 0
	for i, g := range []*kernel.Machine{g1, g2} {
		i, g := i, g
		s.Spawn(fmt.Sprintf("guest%d", i), func(p *sim.Proc) {
			defer func() { done++ }()
			pr := g.NewProcess(ext4.Root)
			fd, err := pr.Create(p, "/data", 0o644)
			if err != nil {
				runErr = err
				return
			}
			if err := pr.Fallocate(p, fd, 16<<20); err != nil {
				runErr = err
				return
			}
			_ = pr.Fsync(p, fd)
			_ = pr.Close(p, fd)

			lib := userlib.New(g.NewProcess(ext4.Root), userlib.DefaultConfig())
			th, err := lib.NewThread(p)
			if err != nil {
				runErr = err
				return
			}
			lfd, err := lib.Open(p, "/data", false)
			if err != nil {
				runErr = err
				return
			}
			rng := newXorshift(uint64(o.Seed) + uint64(i) + 31)
			buf := make([]byte, 4096)
			start := p.Now()
			for n := 0; n < ops; n++ {
				off := int64(rng.next()%(16<<20/4096)) * 4096
				if _, err := th.Pread(p, lfd, buf, off); err != nil {
					runErr = err
					return
				}
			}
			lat[i] = (p.Now() - start) / sim.Time(ops)
		})
	}
	s.Run()
	if runErr != nil {
		return 0, 0, 0, runErr
	}
	if done != 2 {
		return 0, 0, 0, fmt.Errorf("S2: %d/2 guests finished", done)
	}

	var sync1 sim.Time
	{
		// Guest sync-path reference (same VF, kernel interface).
		pr := g1.NewProcess(ext4.Root)
		s.Spawn("sync-ref", func(p *sim.Proc) {
			fd, err := pr.Open(p, "/data", false)
			if err != nil {
				runErr = err
				return
			}
			buf := make([]byte, 4096)
			rng := newXorshift(uint64(o.Seed) + 77)
			start := p.Now()
			for n := 0; n < ops; n++ {
				off := int64(rng.next()%(16<<20/4096)) * 4096
				if _, err := pr.Pread(p, fd, buf, off); err != nil {
					runErr = err
					return
				}
			}
			sync1 = (p.Now() - start) / sim.Time(ops)
		})
		s.Run()
		if runErr != nil {
			return 0, 0, 0, runErr
		}
	}
	return lat[0], lat[1], sync1, nil
}
