package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tenants"
)

// runWorkers renders an experiment's tables at a given shard-worker
// count (Options.Workers — the epoch engine inside each multi-device
// cell, not the sweep-cell pool).
func runWorkers(t *testing.T, id string, workers int) string {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	rep, err := exp.Run(Options{Quick: true, Seed: 42, Parallelism: 1, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range rep.Tables {
		sb.WriteString(tb.String())
	}
	return sb.String()
}

// TestReportsWorkerInvariant is the tentpole acceptance gate at the
// table layer: the tenancy and frontend reports must render
// byte-identically at every worker count. T9's and T10's multi-device
// cells actually exercise the epoch engine; T7/T8 are single-device
// and must ignore the knob.
func TestReportsWorkerInvariant(t *testing.T) {
	for _, id := range []string{"T7", "T8", "T9", "T10"} {
		ref := runWorkers(t, id, 1)
		for _, w := range []int{2, 8} {
			if got := runWorkers(t, id, w); got != ref {
				t.Errorf("%s: report at -workers %d differs from -workers 1:\n%s\nvs\n%s", id, w, got, ref)
			}
		}
	}
}

// TestScaleOutMetricsWorkerInvariant compares full metrics snapshots
// of a 4-device tenant storm across worker counts: every counter and
// histogram the run touches — tenant ops, sojourn histograms, IOMMU
// and device series — must land on identical values, not just the
// rendered rows.
func TestScaleOutMetricsWorkerInvariant(t *testing.T) {
	snapshot := func(workers int) (string, uint64) {
		metrics.Activate()
		defer metrics.Deactivate()
		sc := tenants.ScaleOut(4, 200, 200)
		res, events, err := tenants.RunCountedWorkers(42, sc, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].Ops == 0 {
			t.Fatal("scale-out run produced no work")
		}
		return metrics.Active().Render(), events
	}
	refRender, refEvents := snapshot(1)
	for _, w := range []int{2, 8} {
		render, events := snapshot(w)
		if events != refEvents {
			t.Errorf("workers %d processed %d events, want %d", w, events, refEvents)
		}
		if render != refRender {
			t.Errorf("workers %d metrics snapshot differs from sequential:\n%s\nvs\n%s", w, render, refRender)
		}
	}
}
