package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/stats"
	"repro/internal/tenants"
)

// A Gate is a tail-latency claim from the evaluation promoted to a
// CI-enforceable statistical test: it re-runs the exact table cells
// the claim is about across independent seeded trials and requires
// the 95% confidence intervals of the two sides to separate — not
// merely the point estimates to order correctly. Gates run in go test
// and make check, so a claim that only holds for a lucky seed fails
// the build.
type Gate struct {
	Name  string
	Claim string
	Run   func(Options) (*GateResult, error)
}

// GateResult carries the verdict plus everything needed to chase a
// failure: the per-trial samples for each side and repro-tool specs
// (see ReproSpec) that replay the worst trial of each side.
type GateResult struct {
	Name    string
	Pass    bool
	Detail  string
	Samples map[string][]float64
	Repro   []string
}

// gateTrials pins the trial count a gate runs at: at least the 5
// independent seeds the claims are stated over, more if the caller
// asked for more.
func gateTrials(o Options) Options {
	if o.Trials < 5 {
		o.Trials = 5
	}
	return o
}

// Gates returns every statistical gate in a stable order.
func Gates() []Gate {
	return []Gate{
		{
			Name:  "t7-arbiter-p99",
			Claim: "WRR victim p99 CI upper bound < flat-RR lower bound (8 hogs, bypassd victim)",
			Run:   gateT7Arbiter,
		},
		{
			Name:  "t8-saturation-knee",
			Claim: "past bypassd's IOPS knee, bypassd p99 CI lower bound > sync upper bound",
			Run:   gateT8Knee,
		},
		{
			Name:  "f6-read-latency",
			Claim: "bypassd 4KB read mean latency CI upper bound < 0.75× sync lower bound",
			Run:   gateF6Latency,
		},
		{
			Name:  "f9-uring-collapse",
			Claim: "io_uring IOPS at 16 threads CI upper bound < its 8-thread lower bound",
			Run:   gateF9Collapse,
		},
	}
}

// GateByName resolves a gate.
func GateByName(name string) (Gate, bool) {
	for _, g := range Gates() {
		if g.Name == name {
			return g, true
		}
	}
	return Gate{}, false
}

// worstTrial returns the index of the largest (hi=true) or smallest
// sample — the trial a failing gate most wants replayed.
func worstTrial(xs []float64, hi bool) int {
	best := 0
	for i, x := range xs {
		if (hi && x > xs[best]) || (!hi && x < xs[best]) {
			best = i
		}
	}
	return best
}

// separated renders the shared verdict detail: side a's upper bound
// against side b's lower bound (after scaling b's bound by factor).
func separated(aName string, a *stats.Welford, bName string, b *stats.Welford, factor float64) (bool, string) {
	up, lo := a.Upper95(), factor*b.Lower95()
	pass := up < lo
	rel := ""
	if factor != 1 {
		rel = fmt.Sprintf("%.2f×", factor)
	}
	return pass, fmt.Sprintf("%s mean %s upper95 %s %s %slower95 %s (%s mean %s) over %d trials",
		aName, stats.Fmt(a.Mean()), stats.Fmt(up), map[bool]string{true: "<", false: ">="}[pass],
		rel, stats.Fmt(lo), bName, stats.Fmt(b.Mean()), a.Count())
}

func gateT7Arbiter(o Options) (*GateResult, error) {
	o = gateTrials(o)
	const hogs = 8
	victimOps, hogOps := t7Ops(o.Quick)
	arbs := []string{"rr", "wrr"}
	pts, err := trialMap(o, len(arbs), func(i int, seed int64) (float64, error) {
		sc := tenants.NoisyNeighbor(arbs[i], hogs, victimOps, hogOps)
		sc.Tenants[0].Engine = core.EngineBypassD
		res, err := tenants.RunWorkers(seed, sc, o.workers())
		if err != nil {
			return 0, err
		}
		return float64(res[0].Sojourn.Summarize().P99) / 1e3, nil
	})
	if err != nil {
		return nil, err
	}
	var rr, wrr stats.Welford
	for _, x := range pts[0] {
		rr.Add(x)
	}
	for _, x := range pts[1] {
		wrr.Add(x)
	}
	pass, detail := separated("wrr p99µs", &wrr, "rr p99µs", &rr, 1)
	return &GateResult{
		Name: "t7-arbiter-p99", Pass: pass, Detail: detail,
		Samples: map[string][]float64{"rr": pts[0], "wrr": pts[1]},
		Repro: []string{
			reproFor(o, "T7", "hogs=8,victim=bypassd,arbiter=wrr", worstTrial(pts[1], true)),
			reproFor(o, "T7", "hogs=8,victim=bypassd,arbiter=rr", worstTrial(pts[0], false)),
		},
	}, nil
}

func gateT8Knee(o Options) (*GateResult, error) {
	o = gateTrials(o)
	frac := t8GateFraction(o.Quick)
	_, opsPer := t8Params(o.Quick)
	const nTenants = 4
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	pts, err := trialMap(o, len(engines), func(i int, seed int64) (float64, error) {
		sc := tenants.SLOLoad(engines[i], nTenants, frac*optaneIOPS, opsPer)
		res, err := tenants.RunWorkers(seed, sc, o.workers())
		if err != nil {
			return 0, err
		}
		agg := stats.NewHistogram()
		for _, r := range res {
			agg.Merge(r.Sojourn)
		}
		return float64(agg.Summarize().P99) / 1e3, nil
	})
	if err != nil {
		return nil, err
	}
	var sync, byp stats.Welford
	for _, x := range pts[0] {
		sync.Add(x)
	}
	for _, x := range pts[1] {
		byp.Add(x)
	}
	// Direction flips vs the other gates: bypassd must be WORSE here
	// (it saturates first, §3.4), so sync's upper bound caps below
	// bypassd's lower bound.
	pass, detail := separated("sync p99µs", &sync, "bypassd p99µs", &byp, 1)
	offered := fmt.Sprintf("%.0f", frac*optaneIOPS/1e3)
	return &GateResult{
		Name: "t8-saturation-knee", Pass: pass, Detail: detail,
		Samples: map[string][]float64{"sync": pts[0], "bypassd": pts[1]},
		Repro: []string{
			reproFor(o, "T8", "offered="+offered+",engine=bypassd", worstTrial(pts[1], false)),
			reproFor(o, "T8", "offered="+offered+",engine=sync", worstTrial(pts[0], true)),
		},
	}, nil
}

func gateF6Latency(o Options) (*GateResult, error) {
	o = gateTrials(o)
	engines := []core.Engine{core.EngineSync, core.EngineBypassD}
	pts, err := trialMap(o, len(engines), func(i int, seed int64) (float64, error) {
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: seed}, []fio.Group{{
			Name: "m", Engine: engines[i], BS: 4096, Threads: 1,
			OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
		}})
		if err != nil {
			return 0, err
		}
		return res["m"].Lat.Mean().Micros(), nil
	})
	if err != nil {
		return nil, err
	}
	var sync, byp stats.Welford
	for _, x := range pts[0] {
		sync.Add(x)
	}
	for _, x := range pts[1] {
		byp.Add(x)
	}
	pass, detail := separated("bypassd latµs", &byp, "sync latµs", &sync, 0.75)
	return &GateResult{
		Name: "f6-read-latency", Pass: pass, Detail: detail,
		Samples: map[string][]float64{"sync": pts[0], "bypassd": pts[1]},
		Repro: []string{
			reproFor(o, "F6", "block_size=4KB,engine=bypassd", worstTrial(pts[1], true)),
			reproFor(o, "F6", "block_size=4KB,engine=sync", worstTrial(pts[0], false)),
		},
	}, nil
}

func gateF9Collapse(o Options) (*GateResult, error) {
	o = gateTrials(o)
	threads := []int{8, 16}
	ops := f9Ops(o.Quick)
	pts, err := trialMap(o, len(threads), func(i int, seed int64) (float64, error) {
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: seed}, []fio.Group{{
			Name: "m", Engine: core.EngineUring, BS: 4096, Threads: threads[i],
			OpsPerThread: ops, FileBytes: 16 << 20,
		}})
		if err != nil {
			return 0, err
		}
		return res["m"].IOPS() / 1000, nil
	})
	if err != nil {
		return nil, err
	}
	var t8, t16 stats.Welford
	for _, x := range pts[0] {
		t8.Add(x)
	}
	for _, x := range pts[1] {
		t16.Add(x)
	}
	pass, detail := separated("16T kIOPS", &t16, "8T kIOPS", &t8, 1)
	return &GateResult{
		Name: "f9-uring-collapse", Pass: pass, Detail: detail,
		Samples: map[string][]float64{"8T": pts[0], "16T": pts[1]},
		Repro: []string{
			reproFor(o, "F9", "threads=16,engine=io_uring", worstTrial(pts[1], true)),
			reproFor(o, "F9", "threads=8,engine=io_uring", worstTrial(pts[0], false)),
		},
	}, nil
}

// reproFor renders the canonical repro spec for one trial of a gate's
// table cell.
func reproFor(o Options, id, match string, trial int) string {
	s := fmt.Sprintf("%s:%s@seed=%d", id, match, o.Seed)
	if trial > 0 {
		s += fmt.Sprintf(",trial=%d", trial)
	}
	if o.Quick {
		return s
	}
	return s + ",full"
}
