package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestT9ScaleOutSpeedup is the tentpole acceptance criterion at the
// table layer: with one victim+hog pair per device, aggregate IOPS at
// 4 devices must be at least 2x the single-device machine — the
// shared IOMMU and host cores must not serialize the fleet.
func TestT9ScaleOutSpeedup(t *testing.T) {
	rep, _ := runTenancy(t, "T9", 1)
	tb := rep.Tables[0]
	agg := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("agg cell %q: %v", row[2], err)
		}
		agg[row[0]] = v
	}
	for _, d := range []string{"1", "2", "4"} {
		if _, ok := agg[d]; !ok {
			t.Fatalf("no row for %s devices: %v", d, tb.Rows)
		}
	}
	if agg["4"] < 2*agg["1"] {
		t.Errorf("aggregate kIOPS at 4 devices = %.1f, want >= 2x single-device %.1f", agg["4"], agg["1"])
	}
	if agg["2"] <= agg["1"] {
		t.Errorf("aggregate kIOPS at 2 devices = %.1f did not exceed single-device %.1f", agg["2"], agg["1"])
	}
}

// TestT9ParallelByteIdentical: the N-device event lanes merge by the
// global (at, seq) key, so the whole device ladder must render
// byte-identically at -j1 and -j8 and across same-seed replays.
func TestT9ParallelByteIdentical(t *testing.T) {
	_, a := runTenancy(t, "T9", 1)
	_, b := runTenancy(t, "T9", 8)
	if a != b {
		t.Errorf("T9: -j1 and -j8 reports differ:\n%s\nvs\n%s", a, b)
	}
	_, c := runTenancy(t, "T9", 1)
	if a != c {
		t.Errorf("T9: same-seed replay diverged")
	}
}

// Options.Devices narrows the ladder to one cell (the -devices flag);
// other experiments must ignore it entirely.
func TestT9DevicesOverride(t *testing.T) {
	e, _ := ByID("T9")
	rep, err := e.Run(Options{Quick: true, Seed: 42, Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "2" {
		t.Fatalf("Devices=2 rows = %v, want the single 2-device cell", tb.Rows)
	}
	// The narrowed cell carries no speedup baseline.
	if !strings.Contains(tb.String(), "-") {
		t.Fatalf("narrowed cell should render speedup as '-':\n%s", tb.String())
	}

	t7, _ := ByID("T7")
	with, err := t7.Run(Options{Quick: true, Seed: 42, Devices: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := t7.Run(Options{Quick: true, Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if with.String() != without.String() {
		t.Fatalf("T7 output changed under Options.Devices:\n%s\nvs\n%s", with.String(), without.String())
	}
}
