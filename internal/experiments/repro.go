package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ReproKV is one column=value constraint a repro spec matches table
// rows against.
type ReproKV struct {
	Key   string // normalized header key: lowercase, unit suffix stripped
	Value string // exact rendered cell text
}

// ReproSpec names one table cell of one experiment at one seed — the
// coordinates a statistical gate (or a suspicious report reader)
// records so `bypassd-repro` can replay exactly that anomaly.
//
// Grammar:
//
//	ID[:key=value[,key=value...]][@opt[,opt...]]
//
// where ID is an experiment (T7, F9, ...), each key=value pins a
// table column (keys use '_' for spaces: block_size=4KB), and opts
// are seed=N, trial=K, trials=N, faults=NAME, and full. trial=K
// replays the single k-th trial of a multi-trial run at its derived
// seed; trials=N instead re-runs the whole N-trial aggregation.
// Omitted opts default to seed=1, trial 0, single trial, no faults,
// quick mode — matching the CLI defaults the tables were built with.
//
// Because trial k's workload seed is Seed + k*stride, a single-trial
// spec has aliases: seed=1000004 names the same replay as
// seed=1,trial=1. Specs are canonicalized to the (base seed, trial
// index) form — base seed in [1, stride] — at parse and render time,
// so equal replays compare equal as strings and a cell's identity is
// unambiguous in logs and gate reports.
type ReproSpec struct {
	ID     string
	Match  []ReproKV
	Seed   int64
	Trial  int
	Trials int
	Faults string
	Full   bool
}

// ParseReproSpec parses the spec grammar above. The parser is
// deliberately independent of the experiment registry so specs for
// harnesses that don't exist yet still round-trip (RunRepro is where
// unknown IDs fail).
func ParseReproSpec(in string) (ReproSpec, error) {
	sp := ReproSpec{Seed: 1}
	s := strings.TrimSpace(in)
	head, opts, hasOpts := strings.Cut(s, "@")
	id, matches, hasMatches := strings.Cut(head, ":")
	if err := validIdent(id, "experiment id"); err != nil {
		return ReproSpec{}, err
	}
	sp.ID = id
	if hasMatches {
		if matches == "" {
			return ReproSpec{}, fmt.Errorf("repro spec %q: empty match section after ':'", in)
		}
		for _, kv := range strings.Split(matches, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" || v == "" {
				return ReproSpec{}, fmt.Errorf("repro spec %q: match %q is not key=value", in, kv)
			}
			if strings.ContainsAny(v, "=") {
				return ReproSpec{}, fmt.Errorf("repro spec %q: match value %q contains '='", in, v)
			}
			sp.Match = append(sp.Match, ReproKV{
				Key:   strings.ToLower(strings.ReplaceAll(k, "_", " ")),
				Value: v,
			})
		}
	}
	if !hasOpts {
		return sp, nil
	}
	if opts == "" {
		return ReproSpec{}, fmt.Errorf("repro spec %q: empty options section after '@'", in)
	}
	for _, opt := range strings.Split(opts, ",") {
		k, v, hasVal := strings.Cut(opt, "=")
		switch {
		case k == "full" && !hasVal:
			sp.Full = true
		case k == "seed" && hasVal:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return ReproSpec{}, fmt.Errorf("repro spec %q: bad seed %q", in, v)
			}
			sp.Seed = n
		case k == "trial" && hasVal:
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return ReproSpec{}, fmt.Errorf("repro spec %q: bad trial %q", in, v)
			}
			sp.Trial = n
		case k == "trials" && hasVal:
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return ReproSpec{}, fmt.Errorf("repro spec %q: bad trials %q", in, v)
			}
			if n == 1 {
				n = 0 // trials=1 is the single-trial default; canonical form omits it
			}
			sp.Trials = n
		case k == "faults" && hasVal:
			if err := validIdent(v, "faults profile"); err != nil {
				return ReproSpec{}, err
			}
			sp.Faults = v
		default:
			return ReproSpec{}, fmt.Errorf("repro spec %q: unknown option %q (want seed=, trial=, trials=, faults=, full)", in, opt)
		}
	}
	sp.normalize()
	return sp, nil
}

// normalize rewrites an aliased single-trial spec to its canonical
// (base seed, trial index) coordinates. TrialSeed(Trial) is invariant
// under the rewrite: moving q strides out of the seed and into the
// trial index names the same derived seed, so the replay is
// unchanged. Multi-trial specs (trials=N) aggregate from the base
// seed directly and have no alias to fold.
func (s *ReproSpec) normalize() {
	if s.Trials > 1 || s.Seed <= trialSeedStride {
		return
	}
	q := (s.Seed - 1) / trialSeedStride
	if q > int64(math.MaxInt-s.Trial) {
		return // folding would overflow the trial index; leave the alias alone
	}
	s.Seed -= q * trialSeedStride
	s.Trial += int(q)
}

func validIdent(s, what string) error {
	if s == "" {
		return fmt.Errorf("empty %s", what)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("%s %q: invalid character %q", what, s, r)
		}
	}
	return nil
}

// String renders the canonical form of the spec: seed always written
// and folded to its (base seed, trial index) form, zero trial /
// single trial / no faults / quick omitted, match keys with spaces
// spelled '_'. Parsing a canonical string and re-rendering it is the
// identity (FuzzReproSpec pins this).
func (s ReproSpec) String() string {
	s.normalize()
	var b strings.Builder
	b.WriteString(s.ID)
	for i, kv := range s.Match {
		if i == 0 {
			b.WriteString(":")
		} else {
			b.WriteString(",")
		}
		b.WriteString(strings.ReplaceAll(kv.Key, " ", "_"))
		b.WriteString("=")
		b.WriteString(kv.Value)
	}
	fmt.Fprintf(&b, "@seed=%d", s.Seed)
	if s.Trial > 0 {
		fmt.Fprintf(&b, ",trial=%d", s.Trial)
	}
	if s.Trials > 1 {
		fmt.Fprintf(&b, ",trials=%d", s.Trials)
	}
	if s.Faults != "" {
		fmt.Fprintf(&b, ",faults=%s", s.Faults)
	}
	if s.Full {
		b.WriteString(",full")
	}
	return b.String()
}

// MatchedCell is one table row a repro spec's constraints selected.
type MatchedCell struct {
	Table   string
	Headers []string
	Row     []string
}

// ReproRun is the replayed result: the full report (so surrounding
// context is visible) plus just the rows the spec pinned.
type ReproRun struct {
	Spec        ReproSpec
	DerivedSeed int64 // the workload seed the replay actually ran at
	Report      *Report
	Matches     []MatchedCell
}

// RunRepro replays the experiment a spec names and selects the rows it
// pins. Single-trial specs run at the derived seed TrialSeed(trial) —
// reproducing one trial of a multi-trial table, or (trial 0) the
// historical single-trial row. trials=N specs re-run the whole
// aggregation instead. Faults are armed exactly as the Runner arms
// them, so fault-profile anomalies replay too.
func RunRepro(sp ReproSpec, parallelism int) (*ReproRun, error) {
	e, ok := ByID(sp.ID)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (have: %s)", sp.ID, strings.Join(IDs(), " "))
	}
	o := Options{Quick: !sp.Full, Seed: sp.Seed, Parallelism: parallelism, Faults: sp.Faults}
	derived := sp.Seed
	if sp.Trials > 1 {
		o.Trials = sp.Trials
	} else {
		derived = o.TrialSeed(sp.Trial)
		o.Seed = derived
	}
	res := (&Runner{Parallelism: parallelism}).Run([]Experiment{e}, o)
	if res[0].Err != nil {
		return nil, res[0].Err
	}
	run := &ReproRun{Spec: sp, DerivedSeed: derived, Report: res[0].Report}
	for _, tb := range run.Report.Tables {
		keys := make([]string, len(tb.Headers))
		for i, h := range tb.Headers {
			keys[i] = headerKey(h)
		}
		for _, row := range tb.Rows {
			if rowMatches(sp.Match, keys, row) {
				run.Matches = append(run.Matches, MatchedCell{Table: tb.Title, Headers: tb.Headers, Row: row})
			}
		}
	}
	if len(sp.Match) > 0 && len(run.Matches) == 0 {
		return nil, fmt.Errorf("spec %s matched no rows of %s (check keys against headers: %s)",
			sp, sp.ID, strings.Join(run.Report.Tables[0].Headers, ", "))
	}
	return run, nil
}

// headerKey normalizes a table header for spec matching: lowercase,
// unit annotation stripped — "SLO met (%)" and "p99 (µs)" match as
// "slo met" and "p99".
func headerKey(h string) string {
	h = strings.ToLower(h)
	if i := strings.Index(h, " ("); i >= 0 {
		h = h[:i]
	}
	return h
}

func rowMatches(match []ReproKV, keys []string, row []string) bool {
	for _, kv := range match {
		found := false
		for i, k := range keys {
			if k == kv.Key && i < len(row) {
				if strings.TrimSpace(row[i]) != kv.Value {
					return false
				}
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
