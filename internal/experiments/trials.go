package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// trialSeedStride spaces the derived per-trial seeds far apart so the
// per-cell generators — which further mix the seed with sweep
// coordinates and tenant indices — never see colliding streams
// between neighboring trials.
const trialSeedStride = 1_000_003

// TrialSeed derives the workload seed for trial k of a run based at
// Seed. Trial 0 is the base seed itself, so single-trial runs
// reproduce the historical tables byte for byte; trial k steps by
// k*trialSeedStride. The derivation depends only on (Seed, k) — never
// on execution order — which is what keeps multi-trial reports
// byte-identical at any Parallelism, and what lets the repro tool
// replay exactly one flagged trial from its coordinates.
func (o Options) TrialSeed(k int) int64 {
	if k <= 0 {
		return o.Seed
	}
	return o.Seed + int64(k)*trialSeedStride
}

// trials normalizes Options.Trials: anything below 2 is the single
// historical trial.
func (o Options) trials() int {
	if o.Trials <= 1 {
		return 1
	}
	return o.Trials
}

// trialMap fans cells × trials through the sweep runner: cell c's
// trial k evaluates fn(c, o.TrialSeed(k)), and the returned per-cell
// slices are trial-ordered. The fan-out is flattened into one
// sweepMap call, so trials share the Parallelism worker pool with
// sweep cells and inherit its determinism argument unchanged.
func trialMap[T any](o Options, cells int, fn func(cell int, seed int64) (T, error)) ([][]T, error) {
	n := o.trials()
	flat, err := sweepMap(o, cells*n, func(i int) (T, error) {
		return fn(i/n, o.TrialSeed(i%n))
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, cells)
	for c := range out {
		out[c] = flat[c*n : (c+1)*n]
	}
	return out, nil
}

// ciCell renders a Welford accumulator's 95% CI half-width as a
// "±x" table cell, with values divided by scale (e.g. 1e3 for
// ns → µs columns).
func ciCell(w *stats.Welford, scale float64) string {
	return "±" + stats.Fmt(w.CI95()/scale)
}

// spanCell renders a min..max spread cell, divided by scale.
func spanCell(lo, hi sim.Time, scale float64) string {
	return stats.Fmt(float64(lo)/scale) + ".." + stats.Fmt(float64(hi)/scale)
}

// trialTitle tags a multi-trial table title with the trial count.
func trialTitle(title string, o Options) string {
	return fmt.Sprintf("%s — %d trials, 95%% CI", title, o.trials())
}

// trialNote explains the seed-derivation invariant and the new
// columns on every multi-trial table.
func trialNote(o Options) string {
	return fmt.Sprintf("each cell ran %d independent trials (trial k reruns the cell with seed %d+k·%d); "+
		"value columns are cross-trial means, ± columns are two-sided 95%% Student-t confidence half-widths, "+
		"span columns are the min..max observed across trials",
		o.trials(), o.Seed, trialSeedStride)
}
