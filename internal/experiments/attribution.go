package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/fio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("T6", "Latency attribution by interface: submit/translate/media/complete (Fig. 5 analogue)", runT6)
}

// runT6 reproduces the paper's Fig. 5-style attribution: where does a
// 4KB random read's latency go on each interface? Every cell runs
// with tracing forced on for its own machine, so the table is
// identical whether or not the global trace plane is active. The
// phase sums are cross-checked against the end-to-end latency
// histogram: per-interface, the attributed mean must match the
// measured mean within 1%.
func runT6(o Options) (*Report, error) {
	type iface struct {
		display string
		engine  core.Engine // "" marks the XRP cell (custom harness)
	}
	cells := []iface{
		{"BypassD", core.EngineBypassD},
		{"BIO", core.EngineSync},
		{"AIO", core.EngineLibaio},
		{"SPDK", core.EngineSPDK},
		{"XRP", ""},
	}
	ops := microOps(o.Quick)
	results, err := sweepMap(o, len(cells), func(i int) (t6Result, error) {
		c := cells[i]
		if c.engine == "" {
			return runT6XRP(o, ops)
		}
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed, Trace: true}, []fio.Group{{
			Name: "m", Engine: c.engine, BS: 4096, Threads: 1,
			OpsPerThread: ops, FileBytes: 64 << 20,
		}})
		if err != nil {
			return t6Result{}, fmt.Errorf("T6 %s: %w", c.display, err)
		}
		r := res["m"]
		if r.Phases == nil {
			return t6Result{}, fmt.Errorf("T6 %s: no attribution collected", c.display)
		}
		return t6Result{attr: *r.Phases, mean: r.Lat.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("Fig. 5 analogue: 4KB random read latency attribution per interface",
		"interface", "submit (µs)", "translate (µs)", "media (µs)", "complete (µs)", "total (µs)", "e2e mean (µs)")
	for i, c := range cells {
		r := results[i]
		a := r.attr
		if a.Ops == 0 {
			return nil, fmt.Errorf("T6 %s: attribution recorded no operations", c.display)
		}
		n := sim.Time(a.Ops)
		attrMean := a.Total() / n
		// Acceptance check: the phase partition must account for the
		// end-to-end histogram within 1% per interface.
		if diff := math.Abs(float64(attrMean) - float64(r.mean)); diff > 0.01*float64(r.mean) {
			return nil, fmt.Errorf("T6 %s: attributed mean %v diverges from measured mean %v by more than 1%%",
				c.display, attrMean, r.mean)
		}
		tb.AddRow(c.display,
			(a.Submit / n).Micros(),
			(a.Translate / n).Micros(),
			(a.Media / n).Micros(),
			(a.Complete / n).Micros(),
			attrMean.Micros(),
			r.mean.Micros())
	}
	return &Report{ID: "T6", Title: "latency attribution", Tables: []*stats.Table{tb},
		Notes: []string{
			"submit = request build + queueing residual; translate = address translation on the device path",
			"bypassd translation overlaps DMA on writes and rides the IOTLB on reads, so its translate share stays small",
			"attributed totals are cross-checked against the e2e histogram mean (must agree within 1%)",
		}}, nil
}

// t6Result is one interface's attribution plus its measured mean.
type t6Result struct {
	attr trace.Attribution
	mean sim.Time
}

// runT6XRP measures the XRP baseline with a hand-rolled harness: the
// FileIO interface doesn't expose chained reads, so the cell drives
// Process.XRPChain directly with single-step chains (a plain 4KB read
// through the XRP resubmission interface).
func runT6XRP(o Options, ops int) (t6Result, error) {
	const fileBytes = 64 << 20
	sys, err := core.New(256 << 20)
	if err != nil {
		return t6Result{}, err
	}
	defer sys.Close()
	if sys.M.Trace == nil {
		sys.M.EnableTrace(trace.NewTracer("xrp"))
	}
	tr := sys.M.Trace

	lat := stats.NewHistogram()
	var runErr error
	sys.Sim.Spawn("t6-xrp", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/xrp", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, fileBytes); err != nil {
			runErr = err
			return
		}
		if err := pr.Sync(p); err != nil {
			runErr = err
			return
		}
		rng := rand.New(rand.NewSource(o.Seed*7919 + 9973))
		buf := make([]byte, 4096)
		blocks := int64(fileBytes / 4096)
		for op := 0; op < ops; op++ {
			off := rng.Int63n(blocks) * 4096
			t0 := p.Now()
			sp := tr.StartIO(p, "xrp", "read")
			p.SetTraceCtx(sp)
			_, err := pr.XRPChain(p, fd, off, 4096, buf,
				func(step int, b []byte) (int64, int64, bool) { return 0, 0, true })
			p.SetTraceCtx(nil)
			sp.Finish(p.Now())
			if err != nil {
				runErr = err
				return
			}
			lat.Add(p.Now() - t0)
		}
		if err := pr.Close(p, fd); err != nil {
			runErr = err
		}
	})
	sys.Sim.Run()
	if runErr != nil {
		return t6Result{}, fmt.Errorf("T6 XRP: %w", runErr)
	}
	a := tr.Attribution("xrp")
	if a == nil {
		return t6Result{}, fmt.Errorf("T6 XRP: no attribution collected")
	}
	return t6Result{attr: *a, mean: lat.Mean()}, nil
}
