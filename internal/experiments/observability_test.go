package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// runObserved runs the given experiments with the trace and metrics
// planes armed and returns (rendered reports, rendered trace, rendered
// metrics).
func runObserved(t *testing.T, parallelism int, ids ...string) (string, string, string) {
	t.Helper()
	trace.Activate(trace.Options{})
	reg := metrics.Activate()
	defer trace.Deactivate()
	defer metrics.Deactivate()

	var reports strings.Builder
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		rep, err := e.Run(Options{Quick: true, Seed: 1, Parallelism: parallelism})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		reports.WriteString(rep.String())
	}
	tr, err := trace.Render()
	if err != nil {
		t.Fatalf("trace render: %v", err)
	}
	return reports.String(), string(tr), reg.Render()
}

// TestObservabilityByteIdenticalAcrossParallelism extends the PR 1
// invariant to the observability plane: the rendered trace and the
// metrics registry must be byte-identical at -j 1 and -j 8, not just
// the reports.
func TestObservabilityByteIdenticalAcrossParallelism(t *testing.T) {
	ids := []string{"T6", "F6"}
	rep1, tr1, m1 := runObserved(t, 1, ids...)
	rep8, tr8, m8 := runObserved(t, 8, ids...)
	if rep1 != rep8 {
		t.Errorf("reports differ between -j 1 and -j 8")
	}
	if tr1 != tr8 {
		t.Errorf("trace differs between -j 1 and -j 8")
	}
	if m1 != m8 {
		t.Errorf("metrics differ between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", m1, m8)
	}
	if !strings.Contains(tr1, `"ph":"X"`) || !strings.Contains(tr1, `"process_name"`) {
		t.Fatalf("trace has no spans:\n%.400s", tr1)
	}
	if !strings.Contains(m1, "io_ops_total") || !strings.Contains(m1, "device_ops_total") {
		t.Fatalf("metrics registry missing expected series:\n%s", m1)
	}
}

// TestTracingDoesNotPerturbReports checks the observer effect is zero:
// a run with the trace and metrics planes armed renders exactly the
// same report as a clean run (tracing charges no virtual time).
func TestTracingDoesNotPerturbReports(t *testing.T) {
	e, ok := ByID("F6")
	if !ok {
		t.Fatal("F6 not registered")
	}
	clean, err := e.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	trace.Activate(trace.Options{})
	metrics.Activate()
	defer trace.Deactivate()
	defer metrics.Deactivate()
	observed, err := e.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.String() != observed.String() {
		t.Errorf("tracing perturbed the report:\n--- clean ---\n%s--- observed ---\n%s",
			clean.String(), observed.String())
	}
}

// TestT6Shape pins the Fig. 5-analogue attribution: the direct paths
// (BypassD, SPDK) spend far less in submit than the kernel interfaces,
// only BypassD pays visible translation, and media time — the same
// device — matches across all five.
func TestT6Shape(t *testing.T) {
	rep := runQuick(t, "T6")
	tb := rep.Tables[0]
	submit := func(iface string) float64 { return num(t, cell(t, tb, "submit (µs)", iface)) }
	media := func(iface string) float64 { return num(t, cell(t, tb, "media (µs)", iface)) }

	if b, s := submit("BypassD"), submit("BIO"); b > s/3 {
		t.Fatalf("BypassD submit %v not well below BIO %v", b, s)
	}
	if d, a := submit("SPDK"), submit("AIO"); d > a/3 {
		t.Fatalf("SPDK submit %v not well below AIO %v", d, a)
	}
	if tr := num(t, cell(t, tb, "translate (µs)", "BypassD")); tr <= 0 {
		t.Fatalf("BypassD translate = %v, want > 0 (ATS walk)", tr)
	}
	for _, iface := range []string{"BIO", "AIO", "SPDK", "XRP"} {
		if tr := num(t, cell(t, tb, "translate (µs)", iface)); tr != 0 {
			t.Fatalf("%s translate = %v, want 0 (physical addressing)", iface, tr)
		}
	}
	base := media("BypassD")
	for _, iface := range []string{"BIO", "AIO", "SPDK", "XRP"} {
		if m := media(iface); m < 0.9*base || m > 1.1*base {
			t.Fatalf("%s media %v diverges from BypassD media %v (same device!)", iface, m, base)
		}
	}
	// The cross-check column: attributed total == e2e mean (runT6
	// enforces 1%; the rendered values should agree to the shown
	// precision too).
	for _, iface := range []string{"BypassD", "BIO", "AIO", "SPDK", "XRP"} {
		tot := num(t, cell(t, tb, "total (µs)", iface))
		mean := num(t, cell(t, tb, "e2e mean (µs)", iface))
		if diff := tot - mean; diff < -0.05 || diff > 0.05 {
			t.Fatalf("%s: total %v vs e2e mean %v", iface, tot, mean)
		}
	}
}
