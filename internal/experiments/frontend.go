package experiments

import (
	"fmt"

	"repro/internal/frontend"
	"repro/internal/stats"
)

func init() {
	register("T10", "Service tier: goodput, shed rate, and sojourn tail vs. offered load, pool size, and admission policy", runT10)
}

// t10Cell is one point of the T10 sweep.
type t10Cell struct {
	frac   float64 // offered load as a multiple of calibrated pool capacity
	pool   int
	policy frontend.Policy
}

// t10Cells enumerates the sweep: under- and over-saturation, each
// pool size, each admission policy — flat admission is the failing
// baseline the two real policies are judged against.
func t10Cells(o Options) (cells []t10Cell, devices int, users uint64, requests int) {
	pools := []int{16, 64}
	devices, users = 4, 1<<20
	if o.Quick {
		pools, devices, users = []int{8}, 2, 6000
	}
	if o.Devices > 0 {
		devices = o.Devices
	}
	// The coverage walk guarantees every user appears once when the
	// non-hot arrivals (1 - HotFrac = 80%) cover the population; 13/10
	// leaves a 4% margin on top.
	requests = int(users) * 13 / 10
	for _, frac := range []float64{0.5, 2.0} {
		for _, pool := range pools {
			for _, policy := range []frontend.Policy{frontend.AdmitAll, frontend.AdmitToken, frontend.AdmitCoDel} {
				cells = append(cells, t10Cell{frac: frac, pool: pool, policy: policy})
			}
		}
	}
	return cells, devices, users, requests
}

// runT10 drives the frontend service tier through the offered-load x
// pool x admission sweep: every cell multiplexes the full user
// population (2^20 distinct simulated users in full mode) over its
// bounded worker pool against per-device kvell stores on BypassD. At
// half saturation all three policies look alike; at 2x the flat
// baseline's sojourn grows with the backlog while token pacing and
// CoDel shed the excess and keep the admitted tail inside the SLO.
func runT10(o Options) (*Report, error) {
	cells, devices, users, requests := t10Cells(o)
	type point struct {
		offeredK float64
		goodputK float64
		shedPct  float64
		s        stats.Summary
		sloPct   float64
		users    int64
	}
	points, err := trialMap(o, len(cells), func(i int, seed int64) (point, error) {
		c := cells[i]
		fl := frontend.ServiceFleet(c.policy, c.frac, devices, c.pool, users, requests)
		res, err := frontend.RunWorkers(seed, fl, o.workers())
		if err != nil {
			return point{}, err
		}
		return point{
			offeredK: fl.RateOps / 1e3,
			goodputK: res.Goodput() / 1e3,
			shedPct:  res.ShedPct(),
			s:        res.Sojourn().Summarize(),
			sloPct:   res.SLOCompliance(),
			users:    res.UsersServed(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("T10: service tier over %d SSDs (%d users, kvell/bypassd, 200µs SLO)", devices, users)
	notes := []string{
		"offered load is a multiple of the pool's calibrated capacity (190 kops per worker); goodput counts completed requests over the active window, after shedding",
		"the flat 'none' policy is the baseline: at 2.0x it admits everything and its sojourn tail is pure backlog; token pacing sheds at the door for the lowest tail, CoDel sheds at dequeue for the highest goodput still inside the SLO",
		"the largest pool oversubscribes each SSD (the calibration anchor is linear in workers, the device is not): there the token bucket's rate estimate exceeds deliverable capacity and its admitted tail collapses with the backlog, while CoDel keys on measured delay and still holds the SLO — rate-based admission is only as good as its capacity estimate",
		"every cell is one deterministic schedule: per-device generators own every random draw, so the table is byte-identical at any -j and any -workers",
	}
	if o.trials() == 1 {
		tb := stats.NewTable(title,
			"offered (kops)", "pool", "policy", "goodput (kops)", "shed (%)",
			"p50 (µs)", "p99 (µs)", "p999 (µs)", "SLO met (%)", "users")
		for i, c := range cells {
			p := points[i][0]
			tb.AddRow(
				p.offeredK, c.pool, string(c.policy), p.goodputK,
				fmt.Sprintf("%.1f", p.shedPct),
				float64(p.s.P50)/1e3, float64(p.s.P99)/1e3, float64(p.s.P999)/1e3,
				fmt.Sprintf("%.1f", p.sloPct), p.users,
			)
		}
		return &Report{ID: "T10", Title: "frontend service tier", Tables: []*stats.Table{tb},
			Notes: notes}, nil
	}

	tb := stats.NewTable(trialTitle(title, o),
		"offered (kops)", "pool", "policy", "goodput (kops)", "goodput ci95",
		"shed (%)", "p99 (µs)", "p99 ci95", "p99 span (µs)", "SLO met (%)", "slo ci95", "users")
	for i, c := range cells {
		summaries := make([]stats.Summary, len(points[i]))
		var good, shed, slo, served stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			good.Add(p.goodputK)
			shed.Add(p.shedPct)
			slo.Add(p.sloPct)
			served.Add(float64(p.users))
		}
		ts := stats.AggregateSummaries(summaries)
		tb.AddRow(
			points[i][0].offeredK, c.pool, string(c.policy),
			good.Mean(), ciCell(&good, 1),
			fmt.Sprintf("%.1f", shed.Mean()),
			ts.P99.Mean()/1e3, ciCell(&ts.P99, 1e3), spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			fmt.Sprintf("%.1f", slo.Mean()), ciCell(&slo, 1),
			int64(served.Mean()),
		)
	}
	return &Report{ID: "T10", Title: "frontend service tier", Tables: []*stats.Table{tb},
		Notes: append(notes, trialNote(o))}, nil
}
