package experiments

import (
	"os"
	"strings"
	"testing"
)

// trialedIDs are the harnesses with a multi-trial rendering path.
var trialedIDs = []string{"T7", "T8", "F6", "F9"}

func TestTrialSeedDerivation(t *testing.T) {
	o := Options{Seed: 42}
	if got := o.TrialSeed(0); got != 42 {
		t.Fatalf("TrialSeed(0) = %d, want the base seed", got)
	}
	if got := o.TrialSeed(3); got != 42+3*trialSeedStride {
		t.Fatalf("TrialSeed(3) = %d", got)
	}
	// Derivation is a pure function of (Seed, k): Parallelism and
	// Trials settings must not leak into it.
	alt := Options{Seed: 42, Trials: 9, Parallelism: 8}
	for k := 0; k < 5; k++ {
		if o.TrialSeed(k) != alt.TrialSeed(k) {
			t.Fatalf("TrialSeed(%d) depends on non-seed options", k)
		}
	}
	if (Options{}).trials() != 1 || (Options{Trials: -3}).trials() != 1 || (Options{Trials: 7}).trials() != 7 {
		t.Fatal("trials() normalization broken")
	}
}

// Cross-seed determinism: a multi-trial table must render
// byte-identically at -j1 and -j8, and across two runs of the same
// seed — the trial fan-out inherits the sweep runner's "seeds come
// from coordinates, never execution order" invariant.
func TestMultiTrialTablesDeterministic(t *testing.T) {
	render := func(par int) string {
		var b strings.Builder
		for _, id := range trialedIDs {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			rep, err := e.Run(Options{Quick: true, Seed: 5, Trials: 3, Parallelism: par})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			b.WriteString(rep.String())
		}
		return b.String()
	}
	j1 := render(1)
	j8 := render(8)
	if j1 != j8 {
		t.Fatalf("multi-trial tables differ between -j1 and -j8:\n-j1:\n%s\n-j8:\n%s", j1, j8)
	}
	if again := render(8); again != j8 {
		t.Fatal("multi-trial tables differ between two same-seed runs")
	}
	for _, want := range []string{"3 trials, 95% CI", "ci95", "±", "span"} {
		if !strings.Contains(j1, want) {
			t.Fatalf("multi-trial rendering missing %q:\n%s", want, j1)
		}
	}
}

// Backward compatibility: Trials unset (0) and Trials=1 must both
// take the historical single-trial path, byte for byte, with none of
// the CI columns.
func TestTrialsDefaultByteIdentical(t *testing.T) {
	for _, id := range trialedIDs {
		e, _ := ByID(id)
		def, err := e.Run(Options{Quick: true, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		one, err := e.Run(Options{Quick: true, Seed: 1, Trials: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if def.String() != one.String() {
			t.Fatalf("%s: Trials=0 and Trials=1 disagree:\n%s\nvs\n%s", id, def.String(), one.String())
		}
		if strings.Contains(def.String(), "ci95") || strings.Contains(def.String(), "trials") {
			t.Fatalf("%s: single-trial table grew trial columns:\n%s", id, def.String())
		}
	}
}

// The committed full-scale report is the compatibility contract: the
// default (single-trial) path must still reproduce its tables. T1,
// T4, and F5 are pinned because they are mode- and scale-independent
// (constant calibration tables); T2 counts lines of code and so
// legitimately drifts with every PR.
func TestDefaultPathMatchesCommittedResults(t *testing.T) {
	data, err := os.ReadFile("../../docs/results-full.md")
	if err != nil {
		t.Fatalf("committed results missing: %v", err)
	}
	doc := string(data)
	for _, id := range []string{"T1", "T4", "F5"} {
		marker := "### " + id + " — "
		start := strings.Index(doc, marker)
		if start < 0 {
			t.Fatalf("results-full.md has no section %q", marker)
		}
		block := doc[start:]
		if end := strings.Index(block[1:], "\n### "); end >= 0 {
			block = block[:1+end]
		}
		e, _ := ByID(id)
		rep, err := e.Run(Options{Quick: false, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got, want := strings.TrimRight(rep.String(), "\n"), strings.TrimRight(block, "\n"); got != want {
			t.Fatalf("%s: default output diverged from docs/results-full.md:\ngot:\n%s\nwant:\n%s", id, got, want)
		}
	}
}
