package experiments

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/tenants"
)

func init() {
	register("T9", "Scale-out: aggregate IOPS and victim tail vs. device count (multi-SSD topology)", runT9)
}

// t9Counts is the device-count ladder a T9 run sweeps.
func t9Counts(o Options) []int {
	if o.Devices > 0 {
		return []int{o.Devices}
	}
	if o.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// t9Ops is the per-tenant arrival count for a T9 cell.
func t9Ops(quick bool) (victimOps, hogOps int) {
	if quick {
		return 250, 250
	}
	return 1000, 1000
}

// runT9 grows the machine from one SSD to eight, keeping the offered
// load per device fixed (one 4 KiB victim + one 64 KiB hog each, the
// T7 pairing) — weak scaling. The fleet shares one IOMMU and the host
// cores; queues, arbitration, and media are per-device, so aggregate
// throughput should track the device count while each victim's p99
// stays where the single-device machine put it. Every cell runs on
// the same seed, so the device-count rows are paired: identical
// per-tenant arrival processes, more devices.
func runT9(o Options) (*Report, error) {
	counts := t9Counts(o)
	victimOps, hogOps := t9Ops(o.Quick)
	type point struct {
		aggKIOPS float64
		aggMBps  float64
		s        stats.Summary // merged victim sojourn
		comp     float64       // victim SLO compliance
	}
	points, err := trialMap(o, len(counts), func(i int, seed int64) (point, error) {
		devices := counts[i]
		sc := tenants.ScaleOut(devices, victimOps, hogOps)
		res, err := tenants.RunWorkers(seed, sc, o.workers())
		if err != nil {
			return point{}, err
		}
		var ops, bytes int64
		start, end := res[0].Start, res[0].End
		victims := stats.NewHistogram()
		var met, vops int64
		for ti, r := range res {
			ops += r.Ops
			bytes += r.Bytes
			if r.Start < start {
				start = r.Start
			}
			if r.End > end {
				end = r.End
			}
			if ti < devices { // victims come first in ScaleOut order
				victims.Merge(r.Sojourn)
				met += r.Compliant
				vops += r.Ops
			}
		}
		return point{
			aggKIOPS: stats.Throughput(ops, end-start) / 1e3,
			aggMBps:  stats.BytesPerSec(bytes, end-start) / 1e6,
			s:        victims.Summarize(),
			comp:     100 * float64(met) / float64(vops),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	const title = "T9: weak scaling across SSDs (victim+hog per device, wrr, 30µs victim SLO)"
	notes := []string{
		"per-device offered load is constant, so aggregate IOPS tracking the device count is the pass condition: the shared IOMMU and host cores are not the bottleneck at this scale",
		"each device's event stream runs on its own simulator shard merged by the global (at, seq) key, so the 8-device cell replays byte-for-byte at any host parallelism",
	}
	if o.trials() == 1 {
		tb := stats.NewTable(title,
			"devices", "tenants", "agg (kIOPS)", "agg (MB/s)", "speedup",
			"victim p50 (µs)", "victim p99 (µs)", "SLO met (%)")
		base := points[0][0].aggKIOPS
		for i, d := range counts {
			p := points[i][0]
			speedup := "-"
			if counts[0] == 1 && base > 0 {
				speedup = fmt.Sprintf("%.2fx", p.aggKIOPS/base)
			}
			tb.AddRow(d, 2*d, p.aggKIOPS, p.aggMBps, speedup,
				float64(p.s.P50)/1e3, float64(p.s.P99)/1e3,
				fmt.Sprintf("%.1f", p.comp))
		}
		return &Report{ID: "T9", Title: "multi-SSD scale-out", Tables: []*stats.Table{tb},
			Notes: notes}, nil
	}

	tb := stats.NewTable(trialTitle(title, o),
		"devices", "tenants", "agg (kIOPS)", "agg ci95", "speedup",
		"victim p50 (µs)", "victim p99 (µs)", "p99 ci95", "p99 span (µs)", "SLO met (%)", "slo ci95")
	var base float64
	for i, d := range counts {
		summaries := make([]stats.Summary, len(points[i]))
		var agg, comp stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			agg.Add(p.aggKIOPS)
			comp.Add(p.comp)
		}
		if i == 0 {
			base = agg.Mean()
		}
		ts := stats.AggregateSummaries(summaries)
		speedup := "-"
		if counts[0] == 1 && base > 0 {
			speedup = fmt.Sprintf("%.2fx", agg.Mean()/base)
		}
		tb.AddRow(d, 2*d, agg.Mean(), ciCell(&agg, 1), speedup,
			ts.P50.Mean()/1e3,
			ts.P99.Mean()/1e3, ciCell(&ts.P99, 1e3), spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			fmt.Sprintf("%.1f", comp.Mean()), ciCell(&comp, 1))
	}
	return &Report{ID: "T9", Title: "multi-SSD scale-out", Tables: []*stats.Table{tb},
		Notes: append(notes, trialNote(o))}, nil
}
