// Package experiments contains one harness per table and figure of
// the paper's evaluation (§6), plus the ablations called out in
// DESIGN.md. Each experiment boots fresh simulated systems, runs the
// workload, and renders the same rows/series the paper reports.
//
// Absolute numbers come from a calibrated simulator, so they are not
// expected to equal the paper's testbed measurements; the shapes —
// who wins, by what factor, where crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks op counts and sweep points so the full suite
	// runs in seconds (used by tests); the default (false) runs the
	// paper-scale sweeps.
	Quick bool
	// Seed randomizes workloads deterministically.
	Seed int64
	// Parallelism bounds the number of sweep cells an experiment may
	// run concurrently (each cell boots its own simulated system).
	// Values <= 1 run cells sequentially. Results are byte-identical
	// at any setting: every cell is seeded from Seed plus its sweep
	// coordinates, and rows render in sweep order after all cells
	// finish.
	Parallelism int
	// Faults names a fault-injection profile (faults.Profiles) armed
	// for every machine the experiments boot; "" disables injection.
	// Injector streams are seeded from Seed, so a fixed (Seed, Faults)
	// pair replays byte-for-byte at any Parallelism.
	Faults string
	// Devices narrows the topology-aware experiments to one device
	// count: T9 runs only the N-device cell instead of its 1→8 ladder.
	// 0 (the default) sweeps the ladder. Other experiments ignore it —
	// their single-device machines are the paper's testbed.
	Devices int
	// Trials is the number of independent seeded repetitions each
	// sweep cell runs. <= 1 runs the single historical trial and keeps
	// every table byte-identical to earlier releases. With N > 1, the
	// trial-aware harnesses (T7, T8, F6, F9) run each cell once per
	// seed TrialSeed(k) — derived from Seed and the trial index k,
	// never from execution order — and report cross-seed statistics:
	// mean ± 95% Student-t confidence intervals and p99/p999 spread
	// columns. Trials share the Parallelism worker pool with sweep
	// cells, and reports stay byte-identical at any -j.
	Trials int
	// Workers sets how many host goroutines execute the event shards
	// of each multi-device scenario's traffic phase (the simulator's
	// conservative epoch engine; DESIGN.md §15). It is orthogonal to
	// Parallelism: Parallelism runs whole sweep cells concurrently,
	// Workers parallelizes the inside of one multi-device cell.
	// Results are byte-identical at any value; <= 1 runs the epoch
	// schedule on one goroutine. Single-device cells ignore it.
	Workers int
}

// workers normalizes the Workers option.
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Headline summarizes the report's first data row — the experiment's
// leading metric — as "col=val ..." for machine-readable run logs.
func (r *Report) Headline() string {
	if len(r.Tables) == 0 {
		return ""
	}
	t := r.Tables[0]
	if len(t.Rows) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range t.Rows[0] {
		if i > 0 {
			b.WriteString(" ")
		}
		h := ""
		if i < len(t.Headers) {
			h = t.Headers[i]
		}
		fmt.Fprintf(&b, "%s=%s", h, c)
	}
	return b.String()
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered harness.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// All returns every experiment in a stable order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1 < T2 < T4 < T5 < F5 < ... < F16 < A*.
func orderKey(id string) string {
	if len(id) < 2 {
		return "z" + id
	}
	var class string
	switch id[0] {
	case 'T':
		class = "0"
	case 'F':
		class = "1"
	case 'A':
		class = "2"
	default:
		class = "3"
	}
	return fmt.Sprintf("%s%03s", class, id[1:])
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment IDs in run order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}
