package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/iommu"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("F5", "IOMMU overhead vs translations per ATS request (Fig. 5)", runF5)
	register("F6", "FIO single-threaded random-access latency vs bandwidth (Fig. 6)", runF6)
	register("F7", "Random read latency breakdown (Fig. 7)", runF7)
	register("F8", "Effect of VBA translation latency on read bandwidth (Fig. 8)", runF8)
	register("F9", "Random read latency and IOPS vs thread count (Fig. 9)", runF9)
}

func runF5(o Options) (*Report, error) {
	u := iommu.New(iommu.DefaultConfig())
	tb := stats.NewTable("Fig. 5: IOMMU overhead vs translations per request",
		"translations", "overhead (ns)")
	for n := 1; n <= 12; n++ {
		tb.AddRow(n, int64(u.WalkOverhead(n)))
	}
	return &Report{ID: "F5", Title: "ATS translation scaling", Tables: []*stats.Table{tb},
		Notes: []string{"flat 1-2, small step at 3, flat to 8 (one cacheline holds 8 PTEs)"}}, nil
}

// blockSizes is the Fig. 6/7/8 sweep.
func blockSizes(quick bool) []int {
	if quick {
		return []int{4096, 65536}
	}
	return []int{4096, 8192, 16384, 32768, 65536, 131072}
}

func microOps(quick bool) int {
	if quick {
		return 60
	}
	return 400
}

func runF6(o Options) (*Report, error) {
	rep := &Report{ID: "F6", Title: "single-thread latency vs bandwidth"}
	for _, write := range []bool{false, true} {
		kind := "read"
		if write {
			kind = "write"
		}
		tb := stats.NewTable(fmt.Sprintf("Fig. 6: random %s, 1 thread, QD1", kind),
			"block size", "engine", "latency (µs)", "bandwidth (GB/s)")
		for _, bs := range blockSizes(o.Quick) {
			for _, e := range core.AllEngines {
				res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
					Name: "m", Engine: e, Write: write, BS: bs, Threads: 1,
					OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
				}})
				if err != nil {
					return nil, fmt.Errorf("F6 %s %s bs=%d: %w", kind, e, bs, err)
				}
				r := res["m"]
				tb.AddRow(sizeLabel(int64(bs)), string(e),
					r.Lat.Mean().Micros(), r.Bandwidth()/1e9)
			}
		}
		rep.Tables = append(rep.Tables, tb)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: bypassd ≈ spdk (+~0.55µs reads, ~0 writes); ~30% below sync/libaio; io_uring between")
	return rep, nil
}

func runF7(o Options) (*Report, error) {
	tb := stats.NewTable("Fig. 7: random read latency breakdown",
		"block size", "system", "user (µs)", "kernel (µs)", "device (µs)", "total (µs)")
	for _, bs := range blockSizes(o.Quick) {
		for _, e := range []core.Engine{core.EngineSync, core.EngineBypassD} {
			res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
				Name: "m", Engine: e, BS: bs, Threads: 1,
				OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
			}})
			if err != nil {
				return nil, err
			}
			r := res["m"]
			total := r.Lat.Mean()
			var user, kern, dev sim.Time
			if e == core.EngineBypassD {
				// Instrumented in UserLib: device = submit..complete
				// (incl. VBA translation); user = the rest.
				dev = r.DeviceNS / sim.Time(r.Ops)
				user = total - dev
			} else {
				// Sync path: software layers are the calibrated
				// constants; the rest is device time.
				cfg := kernel.DefaultConfig()
				kern = cfg.VFSCost + cfg.BlockLayer + cfg.DriverSubmit +
					sim.Time((bs-1)/4096)*cfg.VFSPerPage
				user = cfg.SyscallEnter + cfg.SyscallExit
				dev = total - kern - user
			}
			tb.AddRow(sizeLabel(int64(bs)), string(e), user.Micros(), kern.Micros(), dev.Micros(), total.Micros())
		}
	}
	return &Report{ID: "F7", Title: "latency breakdown", Tables: []*stats.Table{tb},
		Notes: []string{"bypassd 'user' is dominated by the user↔DMA copy at large blocks"}}, nil
}

func runF8(o Options) (*Report, error) {
	delays := []sim.Time{0, 350, 550, 950, 1350}
	tb := stats.NewTable("Fig. 8: single-thread read bandwidth vs VBA translation latency",
		"block size", "translation (ns)", "bandwidth (GB/s)")
	for _, bs := range blockSizes(o.Quick) {
		for _, d := range delays {
			res, err := fio.Run(fio.Spec{VBAFixedLatency: d, Seed: o.Seed}, []fio.Group{{
				Name: "m", Engine: core.EngineBypassD, BS: bs, Threads: 1,
				OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
			}})
			if err != nil {
				return nil, err
			}
			tb.AddRow(sizeLabel(int64(bs)), int64(d), res["m"].Bandwidth()/1e9)
		}
		// sync reference
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
			Name: "m", Engine: core.EngineSync, BS: bs, Threads: 1,
			OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
		}})
		if err != nil {
			return nil, err
		}
		tb.AddRow(sizeLabel(int64(bs)), "sync", res["m"].Bandwidth()/1e9)
	}
	return &Report{ID: "F8", Title: "translation latency sensitivity", Tables: []*stats.Table{tb},
		Notes: []string{"even at 1350ns, bypassd stays well above sync (paper Fig. 8)"}}, nil
}

func runF9(o Options) (*Report, error) {
	threads := []int{1, 2, 4, 8, 12, 16, 20, 24}
	if o.Quick {
		threads = []int{1, 8, 16}
	}
	tb := stats.NewTable("Fig. 9: 4KB random read scaling",
		"threads", "engine", "latency (µs)", "IOPS (K)")
	for _, n := range threads {
		for _, e := range core.AllEngines {
			ops := 300
			if o.Quick {
				ops = 80
			}
			res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
				Name: "m", Engine: e, BS: 4096, Threads: n,
				OpsPerThread: ops, FileBytes: 16 << 20,
			}})
			if err != nil {
				return nil, err
			}
			r := res["m"]
			tb.AddRow(n, string(e), r.Lat.Mean().Micros(), r.IOPS()/1000)
		}
	}
	return &Report{ID: "F9", Title: "thread scaling", Tables: []*stats.Table{tb},
		Notes: []string{
			"bypassd/spdk flat until device saturation (~8 threads), kernel paths saturate ~12",
			"io_uring collapses past 12 threads: SQPOLL needs a second core per thread",
		}}, nil
}
