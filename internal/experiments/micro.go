package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/iommu"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("F5", "IOMMU overhead vs translations per ATS request (Fig. 5)", runF5)
	register("F6", "FIO single-threaded random-access latency vs bandwidth (Fig. 6)", runF6)
	register("F7", "Random read latency breakdown (Fig. 7)", runF7)
	register("F8", "Effect of VBA translation latency on read bandwidth (Fig. 8)", runF8)
	register("F9", "Random read latency and IOPS vs thread count (Fig. 9)", runF9)
}

func runF5(o Options) (*Report, error) {
	u := iommu.New(iommu.DefaultConfig())
	tb := stats.NewTable("Fig. 5: IOMMU overhead vs translations per request",
		"translations", "overhead (ns)")
	for n := 1; n <= 12; n++ {
		tb.AddRow(n, int64(u.WalkOverhead(n)))
	}
	return &Report{ID: "F5", Title: "ATS translation scaling", Tables: []*stats.Table{tb},
		Notes: []string{"flat 1-2, small step at 3, flat to 8 (one cacheline holds 8 PTEs)"}}, nil
}

// blockSizes is the Fig. 6/7/8 sweep.
func blockSizes(quick bool) []int {
	if quick {
		return []int{4096, 65536}
	}
	return []int{4096, 8192, 16384, 32768, 65536, 131072}
}

func microOps(quick bool) int {
	if quick {
		return 60
	}
	return 400
}

func runF6(o Options) (*Report, error) {
	type cell struct {
		write bool
		bs    int
		eng   core.Engine
	}
	var cells []cell
	for _, write := range []bool{false, true} {
		for _, bs := range blockSizes(o.Quick) {
			for _, e := range core.AllEngines {
				cells = append(cells, cell{write, bs, e})
			}
		}
	}
	type point struct {
		lat, bw float64
		s       stats.Summary
	}
	points, err := trialMap(o, len(cells), func(i int, seed int64) (point, error) {
		c := cells[i]
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: seed}, []fio.Group{{
			Name: "m", Engine: c.eng, Write: c.write, BS: c.bs, Threads: 1,
			OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
		}})
		if err != nil {
			kind := "read"
			if c.write {
				kind = "write"
			}
			return point{}, fmt.Errorf("F6 %s %s bs=%d: %w", kind, c.eng, c.bs, err)
		}
		r := res["m"]
		return point{r.Lat.Mean().Micros(), r.Bandwidth() / 1e9, r.Lat.Summarize()}, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "F6", Title: "single-thread latency vs bandwidth"}
	var tb *stats.Table
	lastWrite := false
	for i, c := range cells {
		if tb == nil || c.write != lastWrite {
			kind := "read"
			if c.write {
				kind = "write"
			}
			title := fmt.Sprintf("Fig. 6: random %s, 1 thread, QD1", kind)
			if o.trials() == 1 {
				tb = stats.NewTable(title,
					"block size", "engine", "latency (µs)", "bandwidth (GB/s)")
			} else {
				tb = stats.NewTable(trialTitle(title, o),
					"block size", "engine", "latency (µs)", "lat ci95",
					"p99 (µs)", "p99 span (µs)", "bandwidth (GB/s)", "bw ci95")
			}
			rep.Tables = append(rep.Tables, tb)
			lastWrite = c.write
		}
		if o.trials() == 1 {
			p := points[i][0]
			tb.AddRow(sizeLabel(int64(c.bs)), string(c.eng), p.lat, p.bw)
			continue
		}
		summaries := make([]stats.Summary, len(points[i]))
		var lat, bw stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			lat.Add(p.lat)
			bw.Add(p.bw)
		}
		ts := stats.AggregateSummaries(summaries)
		tb.AddRow(sizeLabel(int64(c.bs)), string(c.eng),
			lat.Mean(), ciCell(&lat, 1),
			ts.P99.Mean()/1e3, spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			bw.Mean(), ciCell(&bw, 1))
	}
	rep.Notes = append(rep.Notes,
		"expected shape: bypassd ≈ spdk (+~0.55µs reads, ~0 writes); ~30% below sync/libaio; io_uring between")
	if o.trials() > 1 {
		rep.Notes = append(rep.Notes, trialNote(o))
	}
	return rep, nil
}

func runF7(o Options) (*Report, error) {
	type cell struct {
		bs  int
		eng core.Engine
	}
	var cells []cell
	for _, bs := range blockSizes(o.Quick) {
		for _, e := range []core.Engine{core.EngineSync, core.EngineBypassD} {
			cells = append(cells, cell{bs, e})
		}
	}
	type split struct{ user, kern, dev, total sim.Time }
	splits, err := sweepMap(o, len(cells), func(i int) (split, error) {
		c := cells[i]
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: o.Seed}, []fio.Group{{
			Name: "m", Engine: c.eng, BS: c.bs, Threads: 1,
			OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
		}})
		if err != nil {
			return split{}, err
		}
		r := res["m"]
		s := split{total: r.Lat.Mean()}
		if c.eng == core.EngineBypassD {
			// Instrumented in UserLib: device = submit..complete
			// (incl. VBA translation); user = the rest.
			s.dev = r.DeviceNS / sim.Time(r.Ops)
			s.user = s.total - s.dev
		} else {
			// Sync path: software layers are the calibrated
			// constants; the rest is device time.
			cfg := kernel.DefaultConfig()
			s.kern = cfg.VFSCost + cfg.BlockLayer + cfg.DriverSubmit +
				sim.Time((c.bs-1)/4096)*cfg.VFSPerPage
			s.user = cfg.SyscallEnter + cfg.SyscallExit
			s.dev = s.total - s.kern - s.user
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 7: random read latency breakdown",
		"block size", "system", "user (µs)", "kernel (µs)", "device (µs)", "total (µs)")
	for i, c := range cells {
		s := splits[i]
		tb.AddRow(sizeLabel(int64(c.bs)), string(c.eng), s.user.Micros(), s.kern.Micros(), s.dev.Micros(), s.total.Micros())
	}
	return &Report{ID: "F7", Title: "latency breakdown", Tables: []*stats.Table{tb},
		Notes: []string{"bypassd 'user' is dominated by the user↔DMA copy at large blocks"}}, nil
}

func runF8(o Options) (*Report, error) {
	delays := []sim.Time{0, 350, 550, 950, 1350}
	type cell struct {
		bs    int
		delay sim.Time // -1 marks the sync reference row
	}
	var cells []cell
	for _, bs := range blockSizes(o.Quick) {
		for _, d := range delays {
			cells = append(cells, cell{bs, d})
		}
		cells = append(cells, cell{bs, -1})
	}
	bws, err := sweepMap(o, len(cells), func(i int) (float64, error) {
		c := cells[i]
		g := fio.Group{
			Name: "m", Engine: core.EngineBypassD, BS: c.bs, Threads: 1,
			OpsPerThread: microOps(o.Quick), FileBytes: 64 << 20,
		}
		delay := c.delay
		if c.delay < 0 { // sync reference
			g.Engine = core.EngineSync
			delay = -1
		}
		res, err := fio.Run(fio.Spec{VBAFixedLatency: delay, Seed: o.Seed}, []fio.Group{g})
		if err != nil {
			return 0, err
		}
		return res["m"].Bandwidth() / 1e9, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig. 8: single-thread read bandwidth vs VBA translation latency",
		"block size", "translation (ns)", "bandwidth (GB/s)")
	for i, c := range cells {
		if c.delay < 0 {
			tb.AddRow(sizeLabel(int64(c.bs)), "sync", bws[i])
		} else {
			tb.AddRow(sizeLabel(int64(c.bs)), int64(c.delay), bws[i])
		}
	}
	return &Report{ID: "F8", Title: "translation latency sensitivity", Tables: []*stats.Table{tb},
		Notes: []string{"even at 1350ns, bypassd stays well above sync (paper Fig. 8)"}}, nil
}

// f9Ops is the per-thread op count of an F9 cell, shared with the
// statistical gates.
func f9Ops(quick bool) int {
	if quick {
		return 80
	}
	return 300
}

func runF9(o Options) (*Report, error) {
	threads := []int{1, 2, 4, 8, 12, 16, 20, 24}
	if o.Quick {
		threads = []int{1, 8, 16}
	}
	ops := f9Ops(o.Quick)
	type cell struct {
		n   int
		eng core.Engine
	}
	var cells []cell
	for _, n := range threads {
		for _, e := range core.AllEngines {
			cells = append(cells, cell{n, e})
		}
	}
	type point struct {
		lat, iops float64
		s         stats.Summary
	}
	points, err := trialMap(o, len(cells), func(i int, seed int64) (point, error) {
		c := cells[i]
		res, err := fio.Run(fio.Spec{VBAFixedLatency: -1, Seed: seed}, []fio.Group{{
			Name: "m", Engine: c.eng, BS: 4096, Threads: c.n,
			OpsPerThread: ops, FileBytes: 16 << 20,
		}})
		if err != nil {
			return point{}, err
		}
		r := res["m"]
		return point{r.Lat.Mean().Micros(), r.IOPS() / 1000, r.Lat.Summarize()}, nil
	})
	if err != nil {
		return nil, err
	}
	notes := []string{
		"bypassd/spdk flat until device saturation (~8 threads), kernel paths saturate ~12",
		"io_uring collapses past 12 threads: SQPOLL needs a second core per thread",
	}
	const title = "Fig. 9: 4KB random read scaling"
	if o.trials() == 1 {
		tb := stats.NewTable(title,
			"threads", "engine", "latency (µs)", "IOPS (K)")
		for i, c := range cells {
			p := points[i][0]
			tb.AddRow(c.n, string(c.eng), p.lat, p.iops)
		}
		return &Report{ID: "F9", Title: "thread scaling", Tables: []*stats.Table{tb}, Notes: notes}, nil
	}

	tb := stats.NewTable(trialTitle(title, o),
		"threads", "engine", "latency (µs)", "lat ci95",
		"p99 (µs)", "p99 span (µs)", "IOPS (K)", "iops ci95")
	for i, c := range cells {
		summaries := make([]stats.Summary, len(points[i]))
		var lat, iops stats.Welford
		for t, p := range points[i] {
			summaries[t] = p.s
			lat.Add(p.lat)
			iops.Add(p.iops)
		}
		ts := stats.AggregateSummaries(summaries)
		tb.AddRow(c.n, string(c.eng),
			lat.Mean(), ciCell(&lat, 1),
			ts.P99.Mean()/1e3, spanCell(ts.P99Lo, ts.P99Hi, 1e3),
			iops.Mean(), ciCell(&iops, 1))
	}
	return &Report{ID: "F9", Title: "thread scaling", Tables: []*stats.Table{tb},
		Notes: append(notes, trialNote(o))}, nil
}
