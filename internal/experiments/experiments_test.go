package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(rep.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T4", "T5", "T6", "T7", "T8", "T9", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "A1", "A2", "A3", "A4", "A5", "A6", "S1", "S2"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
	// Order: tables first, then figures, then ablations.
	ids := IDs()
	if ids[0] != "T1" || ids[len(ids)-1] != "S2" {
		t.Fatalf("ordering wrong: %v", ids)
	}
}

// cell finds the first row matching all keys and returns column col.
func cell(t *testing.T, tb *stats.Table, col string, keys ...string) string {
	t.Helper()
	ci := -1
	for i, h := range tb.Headers {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not in %v", col, tb.Headers)
	}
rows:
	for _, row := range tb.Rows {
		for _, k := range keys {
			found := false
			for _, c := range row {
				if c == k {
					found = true
					break
				}
			}
			if !found {
				continue rows
			}
		}
		return row[ci]
	}
	t.Fatalf("no row matching %v in table %q", keys, tb.Title)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric", s)
	}
	return v
}

func TestT1Shape(t *testing.T) {
	rep := runQuick(t, "T1")
	tb := rep.Tables[0]
	total := num(t, cell(t, tb, "time (ns)", "Total"))
	device := num(t, cell(t, tb, "time (ns)", "Device time"))
	if total < 7500 || total > 8200 {
		t.Fatalf("total = %v, want ~7850", total)
	}
	share := device / total
	if share < 0.45 || share > 0.58 {
		t.Fatalf("device share = %.2f, want ~0.51", share)
	}
}

func TestT4Shape(t *testing.T) {
	rep := runQuick(t, "T4")
	tb := rep.Tables[0]
	off := num(t, cell(t, tb, "latency (ns)", "IOMMU off"))
	hit := num(t, cell(t, tb, "latency (ns)", "IOMMU on; constant src and dest (IOTLB hit)"))
	miss := num(t, cell(t, tb, "latency (ns)", "IOMMU on; varying src, const dest (IOTLB miss)"))
	if !(off < hit && hit < miss) {
		t.Fatalf("ordering off<hit<miss violated: %v %v %v", off, hit, miss)
	}
	if miss-hit < 150 || miss-hit > 250 {
		t.Fatalf("walk cost = %v, want ~183", miss-hit)
	}
}

func TestT5Shape(t *testing.T) {
	rep := runQuick(t, "T5")
	tb := rep.Tables[0]
	for _, size := range []string{"4KB", "64MB", "1GB"} {
		open := num(t, cell(t, tb, "open (µs)", size))
		warm := num(t, cell(t, tb, "open+warm fmap (µs)", size))
		cold := num(t, cell(t, tb, "open+cold fmap (µs)", size))
		if !(open < warm && warm < cold) {
			t.Fatalf("%s: open<warm<cold violated: %v %v %v", size, open, warm, cold)
		}
	}
	// Cold fmap grows ~linearly: 1GB within 2x of 16x the 64MB cost.
	cold64 := num(t, cell(t, tb, "open+cold fmap (µs)", "64MB"))
	cold1g := num(t, cell(t, tb, "open+cold fmap (µs)", "1GB"))
	if cold1g < 8*cold64 || cold1g > 32*cold64 {
		t.Fatalf("cold fmap scaling: 64MB=%v 1GB=%v", cold64, cold1g)
	}
	// Magnitudes near Table 5.
	if cold64 < 60 || cold64 > 120 {
		t.Fatalf("cold 64MB = %vµs, paper 85.5µs", cold64)
	}
}

func TestF5Shape(t *testing.T) {
	rep := runQuick(t, "F5")
	tb := rep.Tables[0]
	l1 := num(t, cell(t, tb, "overhead (ns)", "1"))
	l2 := num(t, cell(t, tb, "overhead (ns)", "2"))
	l3 := num(t, cell(t, tb, "overhead (ns)", "3"))
	l8 := num(t, cell(t, tb, "overhead (ns)", "8"))
	if l1 != l2 || l3 <= l2 || l8 != l3 {
		t.Fatalf("Fig5 shape broken: %v %v %v %v", l1, l2, l3, l8)
	}
}

func TestF6Shape(t *testing.T) {
	rep := runQuick(t, "F6")
	read := rep.Tables[0]
	sync4k := num(t, cell(t, read, "latency (µs)", "4KB", "sync"))
	byp4k := num(t, cell(t, read, "latency (µs)", "4KB", "bypassd"))
	spdk4k := num(t, cell(t, read, "latency (µs)", "4KB", "spdk"))
	if !(spdk4k < byp4k && byp4k < sync4k) {
		t.Fatalf("4K read ordering: spdk=%v byp=%v sync=%v", spdk4k, byp4k, sync4k)
	}
	if byp4k > 0.75*sync4k {
		t.Fatalf("bypassd improvement too small: %v vs %v", byp4k, sync4k)
	}
	// Bandwidth grows with block size.
	bwSmall := num(t, cell(t, read, "bandwidth (GB/s)", "4KB", "bypassd"))
	bwBig := num(t, cell(t, read, "bandwidth (GB/s)", "64KB", "bypassd"))
	if bwBig < 2*bwSmall {
		t.Fatalf("bandwidth not growing with bs: %v -> %v", bwSmall, bwBig)
	}
}

func TestF7Shape(t *testing.T) {
	rep := runQuick(t, "F7")
	tb := rep.Tables[0]
	// sync 4K: kernel ≈ 3.57µs; bypassd 4K: no kernel time.
	k := num(t, cell(t, tb, "kernel (µs)", "4KB", "sync"))
	if k < 3.3 || k > 3.9 {
		t.Fatalf("sync kernel time = %v, want ~3.57", k)
	}
	bk := num(t, cell(t, tb, "kernel (µs)", "4KB", "bypassd"))
	if bk != 0 {
		t.Fatalf("bypassd kernel time = %v, want 0", bk)
	}
	// At 64K, bypassd user time (copy) is multi-µs.
	bu := num(t, cell(t, tb, "user (µs)", "64KB", "bypassd"))
	if bu < 3 {
		t.Fatalf("bypassd 64K user time = %v, want > 3µs (copy)", bu)
	}
}

func TestF8Shape(t *testing.T) {
	rep := runQuick(t, "F8")
	tb := rep.Tables[0]
	noDelay := num(t, cell(t, tb, "bandwidth (GB/s)", "4KB", "0"))
	slow := num(t, cell(t, tb, "bandwidth (GB/s)", "4KB", "1350"))
	syncBW := num(t, cell(t, tb, "bandwidth (GB/s)", "4KB", "sync"))
	if !(noDelay > slow && slow > syncBW) {
		t.Fatalf("F8 ordering broken: %v > %v > %v", noDelay, slow, syncBW)
	}
}

func TestF9Shape(t *testing.T) {
	rep := runQuick(t, "F9")
	tb := rep.Tables[0]
	// At 1 thread bypassd beats sync on latency.
	b1 := num(t, cell(t, tb, "latency (µs)", "1", "bypassd"))
	s1 := num(t, cell(t, tb, "latency (µs)", "1", "sync"))
	if b1 >= s1 {
		t.Fatalf("1-thread latency: bypassd %v >= sync %v", b1, s1)
	}
	// At 16 threads io_uring collapses (SQPOLL core exhaustion).
	u8 := num(t, cell(t, tb, "IOPS (K)", "8", "io_uring"))
	u16 := num(t, cell(t, tb, "IOPS (K)", "16", "io_uring"))
	if u16 > u8*1.35 {
		t.Fatalf("io_uring did not degrade past 12 threads: 8T=%v 16T=%v", u8, u16)
	}
	// bypassd reaches device saturation region by 16 threads.
	b16 := num(t, cell(t, tb, "IOPS (K)", "16", "bypassd"))
	if b16 < 1200 {
		t.Fatalf("bypassd 16T IOPS = %vK, want near 1.49M ceiling", b16)
	}
}

func TestF10Shape(t *testing.T) {
	rep := runQuick(t, "F10")
	tb := rep.Tables[0]
	// SPDK cannot run multi-process.
	if got := cell(t, tb, "bandwidth (MB/s)", "4", "spdk"); !strings.Contains(got, "n/a") {
		t.Fatalf("spdk 4-process cell = %q, want n/a", got)
	}
	// bypassd aggregate bandwidth beats sync at 4 processes.
	b := num(t, cell(t, tb, "bandwidth (MB/s)", "4", "bypassd"))
	s := num(t, cell(t, tb, "bandwidth (MB/s)", "4", "sync"))
	if b <= s {
		t.Fatalf("4-process write BW: bypassd %v <= sync %v", b, s)
	}
}

func TestF11Shape(t *testing.T) {
	rep := runQuick(t, "F11")
	tb := rep.Tables[0]
	for _, n := range []string{"0", "4", "16"} {
		b := num(t, cell(t, tb, "latency (µs)", n, "bypassd"))
		s := num(t, cell(t, tb, "latency (µs)", n, "sync"))
		if b >= s {
			t.Fatalf("%s readers: bypassd %v >= sync %v", n, b, s)
		}
	}
}

func TestF12Shape(t *testing.T) {
	rep := runQuick(t, "F12")
	tb := rep.Tables[0]
	var before, after []float64
	for _, row := range tb.Rows {
		v := num(t, row[1])
		if strings.Contains(row[2], "bypassd") {
			before = append(before, v)
		} else {
			after = append(after, v)
		}
	}
	if len(before) < 2 || len(after) < 2 {
		t.Fatalf("timeline too short: %d/%d", len(before), len(after))
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs[1 : len(xs)-1] { // drop edge buckets
			s += x
		}
		return s / float64(len(xs)-2)
	}
	if len(before) < 3 || len(after) < 3 {
		t.Skip("not enough buckets for steady-state comparison")
	}
	if avg(after) > 0.8*avg(before) {
		t.Fatalf("no throughput drop at revocation: before=%.0f after=%.0f", avg(before), avg(after))
	}
}

func TestF13Shape(t *testing.T) {
	rep := runQuick(t, "F13")
	tb := rep.Tables[0]
	// Read-only workload C at 1 thread: bypassd > xrp > sync.
	s := num(t, cell(t, tb, "sync", "C", "1"))
	x := num(t, cell(t, tb, "xrp", "C", "1"))
	b := num(t, cell(t, tb, "bypassd", "C", "1"))
	if !(b > x && x > s) {
		t.Fatalf("C/1T ordering: sync=%v xrp=%v bypassd=%v", s, x, b)
	}
	// Insert-heavy D benefits least: its reads concentrate on
	// recently inserted (memory-resident) keys. At simulator scale
	// the latest-distribution tail is relatively fatter than at the
	// paper's 1B keys, so D keeps a modest gain rather than parity;
	// the relative ordering is the reproduced shape.
	sd := num(t, cell(t, tb, "sync", "D", "1"))
	bd := num(t, cell(t, tb, "bypassd", "D", "1"))
	gainC := b / s
	gainD := bd / sd
	if gainD >= gainC {
		t.Fatalf("D gain (%.2f) should be below C gain (%.2f)", gainD, gainC)
	}
}

func TestF15Shape(t *testing.T) {
	rep := runQuick(t, "F15")
	tb := rep.Tables[0]
	s := num(t, cell(t, tb, "avg (µs)", "1", "sync"))
	x := num(t, cell(t, tb, "avg (µs)", "1", "xrp"))
	b := num(t, cell(t, tb, "avg (µs)", "1", "bypassd"))
	d := num(t, cell(t, tb, "avg (µs)", "1", "spdk"))
	if !(d < b && b < x && x < s) {
		t.Fatalf("F15 ordering: spdk=%v bypassd=%v xrp=%v sync=%v", d, b, x, s)
	}
	if gap := b - d; gap < 3 || gap > 5.5 {
		t.Fatalf("bypassd-spdk gap = %vµs, want ~4µs (7 translations)", gap)
	}
}

func TestF16Shape(t *testing.T) {
	rep := runQuick(t, "F16")
	tb := rep.Tables[0]
	k64lat := num(t, cell(t, tb, "mean latency (µs)", "C", "1", "kvell_64"))
	blat := num(t, cell(t, tb, "mean latency (µs)", "C", "1", "bypassd"))
	if blat*10 > k64lat {
		t.Fatalf("bypassd latency %v not orders below kvell_64 %v", blat, k64lat)
	}
	k1thr := num(t, cell(t, tb, "Kops/s", "C", "1", "kvell_1"))
	bthr := num(t, cell(t, tb, "Kops/s", "C", "1", "bypassd"))
	if bthr <= k1thr {
		t.Fatalf("bypassd thr %v <= kvell_1 %v", bthr, k1thr)
	}
	k64thr := num(t, cell(t, tb, "Kops/s", "C", "4", "kvell_64"))
	b4thr := num(t, cell(t, tb, "Kops/s", "C", "4", "bypassd"))
	if k64thr <= b4thr {
		t.Fatalf("kvell_64 thr %v <= bypassd %v on read-heavy C", k64thr, b4thr)
	}
}

func TestAblations(t *testing.T) {
	a1 := runQuick(t, "A1")
	on := num(t, cell(t, a1.Tables[0], "latency (µs)", "on"))
	off := num(t, cell(t, a1.Tables[0], "latency (µs)", "off (paper default)"))
	if on >= off {
		t.Fatalf("A1: caching should reduce latency slightly: on=%v off=%v", on, off)
	}
	if off-on > 0.5 {
		t.Fatalf("A1: caching matters too much (%v vs %v); paper says not critical", on, off)
	}

	a2 := runQuick(t, "A2")
	per := num(t, cell(t, a2.Tables[0], "latency (µs)", "per-thread (paper design)"))
	sh := num(t, cell(t, a2.Tables[0], "latency (µs)", "one shared + lock"))
	if sh <= per*1.5 {
		t.Fatalf("A2: shared queue should hurt at 8 threads: per=%v shared=%v", per, sh)
	}

	a3 := runQuick(t, "A3")
	kern := num(t, cell(t, a3.Tables[0], "mean latency (µs)", "kernel appends (paper default)"))
	opt := num(t, cell(t, a3.Tables[0], "mean latency (µs)", "fallocate + userspace overwrites (§5.1)"))
	if opt >= kern {
		t.Fatalf("A3: optimized appends not faster: %v vs %v", opt, kern)
	}

	a4 := runQuick(t, "A4")
	ov := num(t, cell(t, a4.Tables[0], "latency (µs)", "overlapped with transfer (paper design)"))
	ser := num(t, cell(t, a4.Tables[0], "latency (µs)", "serialized before transfer"))
	if ser-ov < 0.4 || ser-ov > 0.7 {
		t.Fatalf("A4: serialization should add ~0.55µs: overlap=%v serial=%v", ov, ser)
	}

	a5 := runQuick(t, "A5")
	syncW := num(t, cell(t, a5.Tables[0], "Kops/s", "synchronous (paper default)"))
	asyncW := num(t, cell(t, a5.Tables[0], "Kops/s", "non-blocking, depth 16 (§5.1)"))
	if asyncW < 2*syncW {
		t.Fatalf("A5: async writes should pipeline: sync=%v async=%v", syncW, asyncW)
	}

	a6 := runQuick(t, "A6")
	ptFmap := num(t, cell(t, a6.Tables[0], "cold fmap (µs)", "page-table FTEs (paper design)"))
	exFmap := num(t, cell(t, a6.Tables[0], "cold fmap (µs)", "IOMMU extent table (§5.1 alternative)"))
	if exFmap*20 > ptFmap {
		t.Fatalf("A6: extent fmap %v not ≫ cheaper than page-table fmap %v", exFmap, ptFmap)
	}
	ptLat := num(t, cell(t, a6.Tables[0], "4KB read latency (µs)", "page-table FTEs (paper design)"))
	exLat := num(t, cell(t, a6.Tables[0], "4KB read latency (µs)", "IOMMU extent table (§5.1 alternative)"))
	if exLat > ptLat+0.2 {
		t.Fatalf("A6: extent-walk read latency regressed: %v vs %v", exLat, ptLat)
	}
}

func TestT2CountsLines(t *testing.T) {
	rep := runQuick(t, "T2")
	total := 0.0
	for _, row := range rep.Tables[0].Rows {
		total += num(t, row[1])
	}
	if total < 5000 {
		t.Fatalf("T2 counted only %.0f lines", total)
	}
}

func TestReportString(t *testing.T) {
	rep := runQuick(t, "F5")
	s := rep.String()
	if !strings.Contains(s, "F5") || !strings.Contains(s, "translations") {
		t.Fatalf("report rendering broken:\n%s", s)
	}
}

func TestS1DeviceGenerality(t *testing.T) {
	rep := runQuick(t, "S1")
	tb := rep.Tables[0]
	impOf := func(dev string) float64 {
		return num(t, cell(t, tb, "improvement", dev))
	}
	tlc := impOf("tlc-nvme (~80µs reads)")
	zssd := impOf("z-ssd (~12µs reads)")
	opt := impOf("optane (~4µs reads)")
	// The faster the device, the larger BypassD's relative win.
	if !(tlc < zssd && zssd < opt) {
		t.Fatalf("improvement should grow with device speed: tlc=%v zssd=%v optane=%v", tlc, zssd, opt)
	}
	if tlc > 10 {
		t.Fatalf("tlc improvement %v%% too large: software is negligible at 80µs", tlc)
	}
	if opt < 25 {
		t.Fatalf("optane improvement %v%% too small", opt)
	}
}

func TestS2VMSupport(t *testing.T) {
	rep := runQuick(t, "S2")
	tb := rep.Tables[0]
	bareByp := num(t, cell(t, tb, "latency (µs)", "bare metal, bypassd"))
	g1 := num(t, cell(t, tb, "latency (µs)", "guest VM 1, bypassd (nested walk)"))
	g2 := num(t, cell(t, tb, "latency (µs)", "guest VM 2, bypassd (nested walk)"))
	gsync := num(t, cell(t, tb, "latency (µs)", "guest VM 1, sync kernel path"))
	// Nested translation adds ~0.3µs over bare metal, far below the
	// kernel path even inside the VM.
	for _, g := range []float64{g1, g2} {
		if g < bareByp+0.1 || g > bareByp+0.7 {
			t.Fatalf("guest bypassd = %v, want bare %v + ~0.3", g, bareByp)
		}
		if g >= gsync {
			t.Fatalf("guest bypassd %v not below guest sync %v", g, gsync)
		}
	}
}
