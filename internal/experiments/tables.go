package experiments

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/iommu"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("T1", "Latency breakdown of 4KB read() on Optane SSD (Table 1)", runT1)
	register("T2", "Lines of code of the reproduction (Table 2 analogue)", runT2)
	register("T4", "IOMMU translation overheads: IOAT DMA copy latency (Table 4)", runT4)
	register("T5", "fmap() overheads by file size (Table 5)", runT5)
}

// runT1 measures one synchronous 4 KiB read and decomposes it using
// the calibrated layer costs.
func runT1(o Options) (*Report, error) {
	sys, err := core.New(1 << 30)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	var total sim.Time
	var runErr error
	sys.Sim.Spawn("t1", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/t1", 0o644)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, 1<<20); err != nil {
			runErr = err
			return
		}
		if err := pr.Fsync(p, fd); err != nil {
			runErr = err
			return
		}
		buf := make([]byte, 4096)
		if _, err := pr.Pread(p, fd, buf, 0); err != nil { // warm extents
			runErr = err
			return
		}
		start := p.Now()
		if _, err := pr.Pread(p, fd, buf, 4096); err != nil {
			runErr = err
			return
		}
		total = p.Now() - start
	})
	sys.Sim.Run()
	if runErr != nil {
		return nil, runErr
	}

	cfg := sys.M.Cfg
	device := total - cfg.SyscallEnter - cfg.VFSCost - cfg.BlockLayer - cfg.DriverSubmit - cfg.SyscallExit
	tb := stats.NewTable("Table 1: 4KB read() latency breakdown", "layer", "time (ns)", "% of total")
	row := func(name string, t sim.Time) {
		tb.AddRow(name, int64(t), fmt.Sprintf("%.0f%%", 100*float64(t)/float64(total)))
	}
	row("Kernel user mode switch", cfg.SyscallEnter)
	row("VFS + ext4", cfg.VFSCost)
	row("Block I/O layer", cfg.BlockLayer)
	row("NVMe driver", cfg.DriverSubmit)
	row("Device time", device)
	row("User kernel mode switch", cfg.SyscallExit)
	tb.AddRow("Total", int64(total), "100%")
	return &Report{ID: "T1", Title: "4KB sync read breakdown", Tables: []*stats.Table{tb},
		Notes: []string{"paper: 7850 ns total, 51% device time"}}, nil
}

// runT2 counts Go lines per component of this repository, the
// analogue of the paper's implementation-size table.
func runT2(o Options) (*Report, error) {
	root := "."
	if _, err := os.Stat("go.mod"); err != nil {
		// Invoked from a package directory during `go test`: walk up.
		for _, up := range []string{"..", "../..", "../../.."} {
			if _, err := os.Stat(filepath.Join(up, "go.mod")); err == nil {
				root = up
				break
			}
		}
	}
	counts := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		comp := "misc"
		if parts := strings.Split(filepath.ToSlash(rel), "/"); len(parts) >= 2 {
			comp = parts[0] + "/" + parts[1]
		}
		counts[comp] += strings.Count(string(data), "\n")
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Table 2 analogue: lines of Go per component", "component", "lines")
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	for _, k := range sortStrings(keys) {
		tb.AddRow(k, counts[k])
	}
	return &Report{ID: "T2", Title: "implementation size", Tables: []*stats.Table{tb}}, nil
}

func sortStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// runT4 reproduces the IOAT DMA experiment.
func runT4(o Options) (*Report, error) {
	u := iommu.New(iommu.DefaultConfig())
	e := iommu.NewDMAEngine(u)

	tb := stats.NewTable("Table 4: IOAT DMA copy latency", "configuration", "latency (ns)")
	e.Enabled = false
	tb.AddRow("IOMMU off", int64(e.Copy(1, 0x1000, 0x2000)))
	e.Enabled = true
	e.FlushTLB()
	_ = e.Copy(1, 0x1000, 0x2000) // warm
	tb.AddRow("IOMMU on; constant src and dest (IOTLB hit)", int64(e.Copy(1, 0x1000, 0x2000)))
	// Varying source: every copy misses on src.
	var miss sim.Time
	for i := 0; i < 8; i++ {
		miss = e.Copy(1, uint64(0x100000+i*0x1000), 0x2000)
	}
	tb.AddRow("IOMMU on; varying src, const dest (IOTLB miss)", int64(miss))
	return &Report{ID: "T4", Title: "IOMMU translation overheads", Tables: []*stats.Table{tb},
		Notes: []string{"paper: 1120 / 1134 / 1317 ns"}}, nil
}

// runT5 measures open, open+warm fmap, and open+cold fmap.
func runT5(o Options) (*Report, error) {
	sizes := []int64{4 << 10, 1 << 20, 64 << 20, 256 << 20, 1 << 30}
	if !o.Quick {
		sizes = append(sizes, 16<<30)
	}
	type point struct{ open, warm, cold sim.Time }
	points, err := sweepMap(o, len(sizes), func(ci int) (point, error) {
		size := sizes[ci]
		capacity := size*2 + (256 << 20)
		sys, err := core.New(capacity)
		if err != nil {
			return point{}, err
		}
		var openT, warmT, coldT sim.Time
		var runErr error
		sys.Sim.Spawn("t5", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			fd, err := pr.Create(p, "/big", 0o666)
			if err != nil {
				runErr = err
				return
			}
			if err := pr.Fallocate(p, fd, size); err != nil {
				runErr = err
				return
			}
			if err := pr.Fsync(p, fd); err != nil {
				runErr = err
				return
			}
			if err := pr.Close(p, fd); err != nil {
				runErr = err
				return
			}

			// Row 1: plain open.
			pr1 := sys.NewProcess(ext4.Root)
			start := p.Now()
			ofd, err := pr1.Open(p, "/big", false)
			if err != nil {
				runErr = err
				return
			}
			openT = p.Now() - start
			if err := pr1.Close(p, ofd); err != nil {
				runErr = err
				return
			}

			// Row 3: cold fmap (file table not cached).
			in, err := sys.M.FS.Lookup(p, "/big", ext4.Root)
			if err != nil {
				runErr = err
				return
			}
			in.DropFileTable()
			pr2 := sys.NewProcess(ext4.Root)
			start = p.Now()
			_, base, err := pr2.OpenBypass(p, "/big", false)
			if err != nil || base == 0 {
				runErr = fmt.Errorf("cold fmap: base=%d err=%v", base, err)
				return
			}
			coldT = p.Now() - start

			// Row 2: warm fmap (file table cached in the inode).
			pr3 := sys.NewProcess(ext4.Root)
			start = p.Now()
			_, base, err = pr3.OpenBypass(p, "/big", false)
			if err != nil || base == 0 {
				runErr = fmt.Errorf("warm fmap: base=%d err=%v", base, err)
				return
			}
			warmT = p.Now() - start
		})
		sys.Sim.Run()
		sys.Close()
		if runErr != nil {
			return point{}, runErr
		}
		return point{openT, warmT, coldT}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Table 5: fmap() overheads", "file size", "open (µs)", "open+warm fmap (µs)", "open+cold fmap (µs)")
	for i, size := range sizes {
		tb.AddRow(sizeLabel(size), points[i].open.Micros(), points[i].warm.Micros(), points[i].cold.Micros())
	}
	return &Report{ID: "T5", Title: "fmap() overheads", Tables: []*stats.Table{tb},
		Notes: []string{"paper 64MB row: 1.74 / 2.76 / 85.51 µs"}}, nil
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
