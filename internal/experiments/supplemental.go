package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/userlib"
)

func init() {
	register("S1", "Supplemental: BypassD's benefit across device generations (§1/§2 motivation)", runS1)
}

// runS1 quantifies the paper's motivating claim — "as devices get
// faster, the relative [software] overhead will only worsen" — by
// measuring the sync-vs-BypassD gap on three device classes: a
// mainstream TLC SSD, a low-latency NAND device (Z-SSD class), and
// the Optane-class device of the evaluation.
func runS1(o Options) (*Report, error) {
	ops := 150
	if o.Quick {
		ops = 50
	}
	devices := []struct {
		label string
		cfg   device.Config
	}{
		{"tlc-nvme (~80µs reads)", device.TLCFlash(1 << 30)},
		{"z-ssd (~12µs reads)", device.ZSSD(1 << 30)},
		{"optane (~4µs reads)", device.OptaneP5800X(1 << 30)},
	}
	type point struct{ syncLat, bypLat sim.Time }
	points, err := sweepMap(o, len(devices), func(i int) (point, error) {
		syncLat, bypLat, err := runS1Device(o, devices[i].cfg, ops)
		if err != nil {
			return point{}, fmt.Errorf("S1 %s: %w", devices[i].label, err)
		}
		return point{syncLat, bypLat}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("S1: 4KB random read, sync vs bypassd, by device class",
		"device", "sync (µs)", "bypassd (µs)", "improvement")
	for i, d := range devices {
		p := points[i]
		imp := 100 * (1 - float64(p.bypLat)/float64(p.syncLat))
		tb.AddRow(d.label, p.syncLat.Micros(), p.bypLat.Micros(), fmt.Sprintf("%.0f%%", imp))
	}
	return &Report{ID: "S1", Title: "device generality", Tables: []*stats.Table{tb},
		Notes: []string{"the software stack is a fixed ~3.8µs tax: negligible on TLC, dominant on Optane"}}, nil
}

func runS1Device(o Options, dcfg device.Config, ops int) (syncLat, bypLat sim.Time, err error) {
	s := sim.New()
	defer s.Shutdown()
	m, err := kernel.NewMachine(s, kernel.DefaultConfig(), dcfg, nil)
	if err != nil {
		return 0, 0, err
	}
	var runErr error
	s.Spawn("s1", func(p *sim.Proc) {
		pr := m.NewProcess(ext4.Root)
		fd, err := pr.Create(p, "/s1", 0o666)
		if err != nil {
			runErr = err
			return
		}
		if err := pr.Fallocate(p, fd, 16<<20); err != nil {
			runErr = err
			return
		}
		_ = pr.Fsync(p, fd)
		_ = pr.Close(p, fd)

		rng := newXorshift(uint64(o.Seed) + 99)
		buf := make([]byte, 4096)

		sfd, err := pr.Open(p, "/s1", false)
		if err != nil {
			runErr = err
			return
		}
		start := p.Now()
		for i := 0; i < ops; i++ {
			off := int64(rng.next()%(16<<20/4096)) * 4096
			if _, err := pr.Pread(p, sfd, buf, off); err != nil {
				runErr = err
				return
			}
		}
		syncLat = (p.Now() - start) / sim.Time(ops)
		_ = pr.Close(p, sfd)

		lib := userlib.New(m.NewProcess(ext4.Root), userlib.DefaultConfig())
		th, err := lib.NewThread(p)
		if err != nil {
			runErr = err
			return
		}
		bfd, err := lib.Open(p, "/s1", false)
		if err != nil {
			runErr = err
			return
		}
		start = p.Now()
		for i := 0; i < ops; i++ {
			off := int64(rng.next()%(16<<20/4096)) * 4096
			if _, err := th.Pread(p, bfd, buf, off); err != nil {
				runErr = err
				return
			}
		}
		bypLat = (p.Now() - start) / sim.Time(ops)
	})
	s.Run()
	return syncLat, bypLat, runErr
}
