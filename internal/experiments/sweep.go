package experiments

import (
	"sync"
	"sync/atomic"
)

// sweepMap evaluates fn(i) for every i in [0, n) and returns the
// results in index order. With o.Parallelism > 1, up to that many
// cells run concurrently, each typically booting its own simulated
// system; determinism is unaffected because each cell derives its
// seed from o.Seed and i, never from execution order, and the caller
// renders the returned slice in index order.
//
// On error the lowest-index observed failure is returned. Cells
// already running are not cancelled — they are short — but no new
// cells start after a failure is observed.
func sweepMap[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := o.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
