package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseReproSpec(t *testing.T) {
	cases := []struct {
		in   string
		want ReproSpec
	}{
		{"T7", ReproSpec{ID: "T7", Seed: 1}},
		{"T7@seed=9", ReproSpec{ID: "T7", Seed: 9}},
		{
			"T7:hogs=8,victim=bypassd,arbiter=wrr@seed=1,trial=3",
			ReproSpec{ID: "T7", Seed: 1, Trial: 3, Match: []ReproKV{
				{"hogs", "8"}, {"victim", "bypassd"}, {"arbiter", "wrr"},
			}},
		},
		{
			"F6:block_size=4KB,engine=bypassd@seed=-2,trials=5,faults=chaos,full",
			ReproSpec{ID: "F6", Seed: -2, Trials: 5, Faults: "chaos", Full: true, Match: []ReproKV{
				{"block size", "4KB"}, {"engine", "bypassd"},
			}},
		},
		// Keys are case-insensitive and '_' means ' '.
		{"T8:Offered=1341@seed=1", ReproSpec{ID: "T8", Seed: 1, Match: []ReproKV{{"offered", "1341"}}}},
		{"  T9  ", ReproSpec{ID: "T9", Seed: 1}},
	}
	for _, c := range cases {
		got, err := ParseReproSpec(c.in)
		if err != nil {
			t.Errorf("ParseReproSpec(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseReproSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	bad := []string{
		"",              // no id
		"T7:",           // empty match section
		"T7:hogs",       // match without '='
		"T7:hogs=",      // empty value
		"T7:=8",         // empty key
		"T7:a=b=c",      // '=' in value
		"T7@",           // empty options
		"T7@bogus=1",    // unknown option
		"T7@trial=-1",   // negative trial
		"T7@trials=0",   // trials below 1
		"T7@seed=abc",   // non-numeric seed
		"T7@full=yes",   // full takes no value
		"T7@faults=a b", // faults name with space
		"bad id@seed=1", // space in id
	}
	for _, in := range bad {
		if sp, err := ParseReproSpec(in); err == nil {
			t.Errorf("ParseReproSpec(%q) = %+v, want error", in, sp)
		}
	}
}

func TestReproSpecCanonical(t *testing.T) {
	cases := map[string]string{
		"T7":                              "T7@seed=1",
		"T7@seed=1,trial=0,trials=1":      "T7@seed=1",
		"t7:Block_Size=4KB@full,seed=3":   "t7:block_size=4KB@seed=3,full",
		"T8:offered=1341@trial=2,seed=-4": "T8:offered=1341@seed=-4,trial=2",
	}
	for in, want := range cases {
		sp, err := ParseReproSpec(in)
		if err != nil {
			t.Fatalf("ParseReproSpec(%q): %v", in, err)
		}
		if got := sp.String(); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
		// Canonical form is a fixed point.
		again, err := ParseReproSpec(sp.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", sp.String(), err)
		}
		if again.String() != sp.String() {
			t.Errorf("canonical %q not a fixed point: reparses to %q", sp.String(), again.String())
		}
	}
}

// A single-trial spec's workload seed is Seed + Trial*stride, so
// seed=1000004 and seed=1,trial=1 name the same replay. Parsing must
// fold the aliased form to canonical (base seed, trial index)
// coordinates — and leave multi-trial specs, which aggregate from the
// base seed, alone.
func TestReproSpecSeedAliasing(t *testing.T) {
	aliased, err := ParseReproSpec("T7@seed=1000004")
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := ParseReproSpec("T7@seed=1,trial=1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aliased, canonical) {
		t.Fatalf("aliased spec %+v != canonical %+v", aliased, canonical)
	}
	if aliased.Seed != 1 || aliased.Trial != 1 {
		t.Fatalf("seed=1000004 folded to (seed=%d, trial=%d), want (1, 1)", aliased.Seed, aliased.Trial)
	}
	if got := aliased.String(); got != "T7@seed=1,trial=1" {
		t.Fatalf("canonical render = %q, want %q", got, "T7@seed=1,trial=1")
	}

	cases := map[string]string{
		// q strides fold out of the seed and into the trial index.
		"T7@seed=1000004":                  "T7@seed=1,trial=1",
		"T7@seed=2000007,trial=2":          "T7@seed=1,trial=4",
		"T7@seed=1000003":                  "T7@seed=1000003", // stride itself is a base seed
		"T7@seed=1000004,trial=0":          "T7@seed=1,trial=1",
		"T8:engine=sync@seed=3000010,full": "T8:engine=sync@seed=1,trial=3,full",
		// Multi-trial specs aggregate from the base seed: no fold.
		"T8@seed=1000004,trials=3": "T8@seed=1000004,trials=3",
		// Negative and small seeds are already canonical.
		"T7@seed=-2000007": "T7@seed=-2000007",
		"T7@seed=7":        "T7@seed=7",
	}
	for in, want := range cases {
		sp, err := ParseReproSpec(in)
		if err != nil {
			t.Fatalf("ParseReproSpec(%q): %v", in, err)
		}
		if got := sp.String(); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}

	// The fold preserves the derived workload seed — the whole point.
	o := Options{Seed: 1}
	if got := o.TrialSeed(aliased.Trial); got != 1000004 {
		t.Fatalf("derived seed after fold = %d, want 1000004", got)
	}

	// A seed too large to fold (trial index would overflow) parses and
	// round-trips untouched rather than wrapping negative.
	huge := "T7@seed=9223372036854775807,trial=9223372036854775807"
	sp, err := ParseReproSpec(huge)
	if err != nil {
		t.Fatalf("ParseReproSpec(%q): %v", huge, err)
	}
	if sp.Trial <= 0 {
		t.Fatalf("overflow guard failed: trial = %d", sp.Trial)
	}
	again, err := ParseReproSpec(sp.String())
	if err != nil || !reflect.DeepEqual(sp, again) {
		t.Fatalf("huge spec does not round-trip: %+v vs %+v (err %v)", sp, again, err)
	}
}

func TestRunReproErrors(t *testing.T) {
	if _, err := RunRepro(ReproSpec{ID: "Z9", Seed: 1}, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown id error missing, got %v", err)
	}
	sp, err := ParseReproSpec("T7:hogs=777@seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRepro(sp, 1); err == nil || !strings.Contains(err.Error(), "matched no rows") {
		t.Fatalf("no-match error missing, got %v", err)
	}
}

// A trials=N spec replays the whole aggregation: the matched row must
// come from the multi-trial table, CI columns included.
func TestRunReproAggregated(t *testing.T) {
	sp, err := ParseReproSpec("T7:hogs=8,victim=bypassd,arbiter=wrr@seed=1,trials=3")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunRepro(sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if run.DerivedSeed != 1 {
		t.Fatalf("aggregated replay must run at the base seed, got %d", run.DerivedSeed)
	}
	if len(run.Matches) != 1 {
		t.Fatalf("matched %d rows, want 1", len(run.Matches))
	}
	if !strings.Contains(run.Matches[0].Table, "3 trials") {
		t.Fatalf("matched table %q is not the aggregated one", run.Matches[0].Table)
	}
	found := false
	for _, h := range run.Matches[0].Headers {
		if h == "p99 ci95" {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggregated row missing CI column: %v", run.Matches[0].Headers)
	}
}

func TestHeaderKey(t *testing.T) {
	cases := map[string]string{
		"p99 (µs)":    "p99",
		"SLO met (%)": "slo met",
		"arbiter":     "arbiter",
		"p99 ci95":    "p99 ci95",
	}
	for in, want := range cases {
		if got := headerKey(in); got != want {
			t.Errorf("headerKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzReproSpec: the parser must never panic, and any input it
// accepts must canonicalize to a fixed point — parse(s).String()
// reparses to the same canonical string. This is what lets gates
// embed specs in test output and tooling pass them around without a
// second escaping layer.
func FuzzReproSpec(f *testing.F) {
	for _, s := range []string{
		"T7",
		"T7:hogs=8,victim=bypassd,arbiter=wrr@seed=1,trial=3",
		"F6:block_size=4KB,engine=bypassd@seed=1",
		"T8:offered=1341,engine=sync@seed=-7,trials=5,faults=chaos,full",
		"F9:threads=16,engine=io_uring@seed=1,full",
		"T7@seed=9223372036854775807",
		"T7@seed=1000004",
		"T7@seed=2000007,trial=2",
		"T8:engine=sync@seed=1000004,trials=3",
		"T7@seed=9223372036854775807,trial=9223372036854775807",
		"x:a=b", ":", "@", "a@full", "a:b=c@seed=1,seed=2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseReproSpec(in)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		canon := sp.String()
		sp2, err := ParseReproSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q fails to reparse: %v", canon, in, err)
		}
		if got := sp2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("reparse of %q changed the spec: %+v vs %+v", canon, sp, sp2)
		}
	})
}
