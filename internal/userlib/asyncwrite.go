package userlib

import (
	"fmt"

	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Non-blocking writes (paper §5.1 "Enhancements"): a write returns as
// soon as its data has been copied into a pinned staging slot and the
// command submitted; completion is reaped opportunistically. The
// consistency cost the paper warns about is paid on the read side:
// reads that overlap a buffered, unprocessed write must observe the
// latest data, which this implementation guarantees with per-file
// range tracking in the spirit of CrossFS's per-inode range locks —
// an overlapping read waits for the covering writes to retire.

// asyncSlot is one in-flight write's staging buffer.
type asyncSlot struct {
	cid  uint16
	buf  []byte
	fs   *FileState
	off  int64
	n    int64
	busy bool
}

// AsyncWriter issues non-blocking writes on its own queue pair.
type AsyncWriter struct {
	lib   *Lib
	q     *nvme.QueuePair
	slots []*asyncSlot
	byCID map[uint16]*asyncSlot
	cid   uint16

	inflight int
	retired  *sim.Cond // signalled whenever a write completes

	// Writes accepted and completed (stats).
	Submitted int64
	Completed int64
	Errors    int64
}

// NewAsyncWriter allocates depth staging slots of slotBytes each.
func (l *Lib) NewAsyncWriter(p *sim.Proc, depth, slotBytes int) (*AsyncWriter, error) {
	if depth < 1 {
		return nil, fmt.Errorf("userlib: async depth %d", depth)
	}
	q, err := l.Proc.CreateUserQueue(p, depth*2)
	if err != nil {
		return nil, err
	}
	w := &AsyncWriter{
		lib:     l,
		q:       q,
		byCID:   make(map[uint16]*asyncSlot),
		retired: l.Proc.M.Sim.NewCond(),
	}
	dma := l.Proc.AllocDMABuffer(p, depth*slotBytes)
	for i := 0; i < depth; i++ {
		w.slots = append(w.slots, &asyncSlot{buf: dma[i*slotBytes : (i+1)*slotBytes]})
	}
	return w, nil
}

// reap drains posted completions, releasing slots and their ranges.
func (w *AsyncWriter) reap() {
	for {
		c, ok := w.q.PopCQE()
		if !ok {
			return
		}
		slot := w.byCID[c.CID]
		if slot == nil {
			continue
		}
		delete(w.byCID, c.CID)
		if !c.Status.OK() {
			w.Errors++
		}
		slot.fs.rangeClear(slot.off, slot.n)
		slot.fs = nil
		slot.busy = false
		w.inflight--
		w.Completed++
		w.retired.Broadcast()
	}
}

// freeSlot returns an idle slot, waiting for a retirement if all are
// in flight (this wait is the submission-side backpressure).
func (w *AsyncWriter) freeSlot(p *sim.Proc) *asyncSlot {
	m := w.lib.Proc.M
	for {
		w.reap()
		for _, s := range w.slots {
			if !s.busy {
				return s
			}
		}
		m.CPU.BusyWait(p, w.q.CQReady)
	}
}

// Pwrite issues a non-blocking overwrite. It returns once the data is
// staged and submitted; durability requires Drain or Fsync. Appends
// and kernel-interface files fall back to the synchronous path.
func (w *AsyncWriter) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	l := w.lib
	fs, err := l.state(fd)
	if err != nil {
		return 0, err
	}
	n := int64(len(data))
	if !fs.Direct() || off+n > fs.Size ||
		off%storage.SectorSize != 0 || n%storage.SectorSize != 0 {
		// Metadata-modifying, unaligned, or revoked: synchronous path.
		th, err := l.NewThread(p)
		if err != nil {
			return 0, err
		}
		return th.Pwrite(p, fd, data, off)
	}
	m := l.Proc.M
	m.CPU.Compute(p, l.cfg.LibOverhead)

	slot := w.freeSlot(p)
	if n > int64(len(slot.buf)) {
		return 0, fmt.Errorf("userlib: async write %d exceeds slot size %d", n, len(slot.buf))
	}
	m.CPU.Compute(p, l.copyCost(int(n)))
	copy(slot.buf[:n], data)

	w.cid++
	slot.cid = w.cid
	slot.fs = fs
	slot.off = off
	slot.n = n
	slot.busy = true
	fs.rangeAdd(off, n, w)
	if err := w.q.Submit(nvme.SQE{
		Opcode:  nvme.OpWrite,
		CID:     slot.cid,
		UseVBA:  true,
		VBA:     fs.Base + uint64(off),
		Sectors: n / storage.SectorSize,
		Buf:     slot.buf[:n],
	}); err != nil {
		fs.rangeClear(off, n)
		slot.busy = false
		slot.fs = nil
		return 0, err
	}
	w.byCID[slot.cid] = slot
	w.inflight++
	w.Submitted++
	if f, err := l.Proc.FDInfo(fd); err == nil {
		f.MarkTimesDirty()
	}
	return int(n), nil
}

// Drain blocks until every submitted write has retired, then reports
// the first error class encountered, if any.
func (w *AsyncWriter) Drain(p *sim.Proc) error {
	m := w.lib.Proc.M
	for w.inflight > 0 {
		w.reap()
		if w.inflight == 0 {
			break
		}
		m.CPU.BusyWait(p, w.q.CQReady)
	}
	if w.Errors > 0 {
		return fmt.Errorf("userlib: %d async writes failed", w.Errors)
	}
	return nil
}

// Inflight reports outstanding writes.
func (w *AsyncWriter) Inflight() int { return w.inflight }

// --- per-file pending-write ranges -----------------------------------

// pendingRange marks [off, off+n) as covered by an unretired write.
type pendingRange struct {
	off, n int64
	w      *AsyncWriter
}

// rangeAdd registers an in-flight write range on the file.
func (fs *FileState) rangeAdd(off, n int64, w *AsyncWriter) {
	fs.pending = append(fs.pending, pendingRange{off: off, n: n, w: w})
}

// rangeClear removes one pending range.
func (fs *FileState) rangeClear(off, n int64) {
	for i, r := range fs.pending {
		if r.off == off && r.n == n {
			fs.pending = append(fs.pending[:i], fs.pending[i+1:]...)
			return
		}
	}
}

// overlapsPending returns a writer whose in-flight write intersects
// [off, off+n), or nil.
func (fs *FileState) overlapsPending(off, n int64) *AsyncWriter {
	for _, r := range fs.pending {
		if off < r.off+r.n && r.off < off+n {
			return r.w
		}
	}
	return nil
}

// waitRange blocks until [off, off+n) has no in-flight writes.
func (fs *FileState) waitRange(p *sim.Proc, cpu *sim.CPUSet, off, n int64) {
	for {
		w := fs.overlapsPending(off, n)
		if w == nil {
			return
		}
		w.reap()
		if fs.overlapsPending(off, n) == nil {
			return
		}
		cpu.BusyWait(p, w.q.CQReady)
	}
}
