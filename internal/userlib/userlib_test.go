package userlib

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
)

const testCap = 1 << 30

type env struct {
	s *sim.Sim
	m *kernel.Machine
	l *Lib
}

func newEnv(t *testing.T) *env {
	t.Helper()
	s := sim.New()
	m, err := kernel.NewMachine(s, kernel.DefaultConfig(), device.OptaneP5800X(testCap), nil)
	if err != nil {
		t.Fatal(err)
	}
	pr := m.NewProcess(ext4.Root)
	return &env{s: s, m: m, l: New(pr, DefaultConfig())}
}

// seed creates a file with data through the kernel.
func (e *env) seed(t *testing.T, p *sim.Proc, path string, data []byte) {
	t.Helper()
	fd, err := e.l.Proc.Create(p, path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := e.l.Proc.Pwrite(p, fd, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.l.Proc.Fsync(p, fd); err != nil {
		t.Fatal(err)
	}
	if err := e.l.Proc.Close(p, fd); err != nil {
		t.Fatal(err)
	}
}

func TestDirectReadLatencyAndData(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(data)
	var lat sim.Time
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", data)
		th, err := e.l.NewThread(p)
		if err != nil {
			t.Error(err)
			return
		}
		fd, err := e.l.Open(p, "/f", false)
		if err != nil {
			t.Error(err)
			return
		}
		fs, _ := e.l.State(fd)
		if !fs.Direct() {
			t.Error("expected direct interface")
			return
		}
		buf := make([]byte, 4096)
		start := p.Now()
		n, err := th.Pread(p, fd, buf, 8192)
		lat = p.Now() - start
		if err != nil || n != 4096 {
			t.Errorf("pread: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(buf, data[8192:12288]) {
			t.Error("direct read returned wrong data")
		}
	})
	e.s.Run()
	// ~150 lib + 550 translation + 4020 device + ~440 copy ≈ 5.2µs —
	// well under the 7.85µs sync path, slightly above SPDK.
	if lat < 4800 || lat > 5600 {
		t.Fatalf("bypassd 4K read = %v, want ~5.2µs", lat)
	}
	if e.l.DirectOps != 1 || e.l.FallbackOps != 0 {
		t.Fatalf("ops = %d direct / %d fallback", e.l.DirectOps, e.l.FallbackOps)
	}
	e.s.Shutdown()
}

func TestOverwriteDirectAppendViaKernel(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 8192))
		th, _ := e.l.NewThread(p)
		fd, err := e.l.Open(p, "/f", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Aligned overwrite: direct.
		w := bytes.Repeat([]byte{0xcd}, 4096)
		if n, err := th.Pwrite(p, fd, w, 4096); err != nil || n != 4096 {
			t.Errorf("overwrite: n=%d err=%v", n, err)
			return
		}
		if e.l.DirectOps != 1 {
			t.Errorf("overwrite not direct (direct=%d)", e.l.DirectOps)
		}
		// Append: kernel route, then visible to direct reads.
		app := bytes.Repeat([]byte{0xee}, 4096)
		if n, err := th.Pwrite(p, fd, app, 8192); err != nil || n != 4096 {
			t.Errorf("append: n=%d err=%v", n, err)
			return
		}
		if e.l.FallbackOps != 1 {
			t.Errorf("append did not go to kernel (fallback=%d)", e.l.FallbackOps)
		}
		fs, _ := e.l.State(fd)
		if fs.Size != 12288 {
			t.Errorf("tracked size = %d, want 12288", fs.Size)
		}
		got := make([]byte, 12288)
		if n, err := th.Pread(p, fd, got, 0); err != nil || n != 12288 {
			t.Errorf("read back: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(got[4096:8192], w) || !bytes.Equal(got[8192:], app) {
			t.Error("data mismatch after overwrite+append")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestPartialWriteRMW(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		base := bytes.Repeat([]byte{0x11}, 4096)
		e.seed(t, p, "/f", base)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/f", true)
		patch := []byte("tiny")
		if n, err := th.Pwrite(p, fd, patch, 100); err != nil || n != 4 {
			t.Errorf("partial write: n=%d err=%v", n, err)
			return
		}
		got := make([]byte, 4096)
		if _, err := th.Pread(p, fd, got, 0); err != nil {
			t.Error(err)
			return
		}
		want := append([]byte{}, base...)
		copy(want[100:], patch)
		if !bytes.Equal(got, want) {
			t.Error("partial write clobbered surrounding bytes")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestPartialWritesToSameSectorSerialize(t *testing.T) {
	e := newEnv(t)
	var order []string
	e.s.Spawn("main", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 4096))
		fd, err := e.l.Open(p, "/f", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Two threads write sub-sector ranges of the same sector.
		done := 0
		for i := 0; i < 2; i++ {
			i := i
			e.s.Spawn("writer", func(w *sim.Proc) {
				th, _ := e.l.NewThread(w)
				data := []byte{byte(i + 1)}
				if _, err := th.Pwrite(w, fd, data, int64(i*8)); err != nil {
					t.Error(err)
				}
				order = append(order, "done")
				done++
			})
		}
		_ = done
	})
	e.s.Run()
	if len(order) != 2 {
		t.Fatalf("writers finished = %d", len(order))
	}
	// Both single-byte writes must have landed (no lost update).
	var final [16]byte
	e2 := e
	s := e2.s
	_ = s
	checkSim := sim.New()
	_ = checkSim
	// Re-read through a fresh thread in the same sim is not possible
	// after Run; verify via the raw store instead.
	in, err := e.m.FS.Lookup(nil, "/f", ext4.Root)
	if err != nil {
		t.Fatal(err)
	}
	disk, ok := in.LookupBlock(0)
	if !ok {
		t.Fatal("no block 0")
	}
	buf := make([]byte, 512)
	if err := e.m.Dev.Store().ReadSectors(disk*ext4.SectorsPerBlock, 1, buf); err != nil {
		t.Fatal(err)
	}
	copy(final[:], buf)
	if final[0] != 1 || final[8] != 2 {
		t.Fatalf("lost update: bytes = %v", final[:9])
	}
	e.s.Shutdown()
}

func TestRevocationFallback(t *testing.T) {
	e := newEnv(t)
	other := e.m.NewProcess(ext4.Root)
	e.s.Spawn("app", func(p *sim.Proc) {
		data := make([]byte, 8192)
		for i := range data {
			data[i] = byte(i)
		}
		e.seed(t, p, "/shared", data)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/shared", false)
		buf := make([]byte, 4096)
		if _, err := th.Pread(p, fd, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if e.l.DirectOps != 1 {
			t.Error("first read not direct")
		}
		// Another process opens kernel-interface: revoke.
		ofd, err := other.Open(p, "/shared", false)
		if err != nil {
			t.Error(err)
			return
		}
		// Next read: fault -> refmap -> VBA 0 -> kernel fallback.
		if n, err := th.Pread(p, fd, buf, 4096); err != nil || n != 4096 {
			t.Errorf("fallback read: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(buf, data[4096:]) {
			t.Error("fallback read wrong data")
		}
		if e.l.Refmaps != 1 || e.l.FallbackOps != 1 {
			t.Errorf("refmaps=%d fallbacks=%d, want 1/1", e.l.Refmaps, e.l.FallbackOps)
		}
		fs, _ := e.l.State(fd)
		if fs.Direct() {
			t.Error("state still direct after revocation")
		}
		// Subsequent reads stay on the kernel path without faulting.
		if _, err := th.Pread(p, fd, buf, 0); err != nil {
			t.Error(err)
		}
		if e.l.FallbackOps != 2 {
			t.Errorf("fallbacks=%d, want 2", e.l.FallbackOps)
		}
		_ = other.Close(p, ofd)
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestLargeReadStreamsThroughDMABuffer(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 3<<20) // 3 MiB > 1 MiB DMA buffer
	rand.New(rand.NewSource(9)).Read(data)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/big", data)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/big", false)
		got := make([]byte, len(data))
		n, err := th.Pread(p, fd, got, 0)
		if err != nil || n != len(data) {
			t.Errorf("large read: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("large read mismatch")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestOptimizedAppend(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/log", nil)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/log", true)
		rec := bytes.Repeat([]byte{0xab}, 512)
		for i := 0; i < 16; i++ {
			if _, err := th.OptimizedAppend(p, fd, rec, 1<<20); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
		// Only the first append should have needed fallocate; the
		// rest are direct overwrites.
		if e.l.DirectOps < 15 {
			t.Errorf("direct ops = %d, want >= 15", e.l.DirectOps)
		}
		got := make([]byte, 16*512)
		if _, err := th.Pread(p, fd, got, 0); err != nil {
			t.Error(err)
			return
		}
		for i, b := range got {
			if b != 0xab {
				t.Errorf("byte %d = %#x", i, b)
				return
			}
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestSequentialReadWriteOffsets(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", []byte("abcdefgh"))
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/f", false)
		buf := make([]byte, 4)
		n1, _ := th.Read(p, fd, buf)
		first := string(buf[:n1])
		n2, _ := th.Read(p, fd, buf)
		second := string(buf[:n2])
		if first != "abcd" || second != "efgh" {
			t.Errorf("sequential reads = %q, %q", first, second)
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestFsyncDirect(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 4096))
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/f", true)
		if _, err := th.Pwrite(p, fd, bytes.Repeat([]byte{9}, 4096), 0); err != nil {
			t.Error(err)
			return
		}
		if err := th.Fsync(p, fd); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := e.l.Close(p, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

// Regression: backoff doubled its delay without a cap, so a large
// retry count overflowed sim.Time into a negative duration and the
// simulator panicked on the negative sleep. The delay must now clamp
// at Config.MaxBackoff for any retry index.
func TestBackoffClampsAtMaxBackoff(t *testing.T) {
	e := newEnv(t)
	for n := 1; n <= 200; n++ {
		d := e.l.backoff(n)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v: overflowed past the cap", n, d)
		}
		if d > e.l.cfg.MaxBackoff {
			t.Fatalf("backoff(%d) = %v exceeds cap %v", n, d, e.l.cfg.MaxBackoff)
		}
	}
	if got := e.l.backoff(200); got != e.l.cfg.MaxBackoff {
		t.Fatalf("backoff(200) = %v, want the cap %v", got, e.l.cfg.MaxBackoff)
	}

	// A custom cap is honored, the sequence never decreases, and an
	// unset cap falls back to the default.
	cfg := DefaultConfig()
	cfg.MaxBackoff = 40 * sim.Microsecond
	l := New(e.l.Proc, cfg)
	var prev sim.Time
	for n := 1; n <= 20; n++ {
		d := l.backoff(n)
		if d < prev {
			t.Fatalf("backoff(%d) = %v decreased from %v", n, d, prev)
		}
		prev = d
	}
	if got := l.backoff(100); got != 40*sim.Microsecond {
		t.Fatalf("backoff with 40µs cap = %v", got)
	}
	if New(e.l.Proc, Config{}).cfg.MaxBackoff != defaultMaxBackoff {
		t.Fatal("zero MaxBackoff should clamp to the default")
	}
}
