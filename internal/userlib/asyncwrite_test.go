package userlib

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestAsyncWriteThroughputAndDrain(t *testing.T) {
	e := newEnv(t)
	const writes = 64
	var asyncElapsed, syncElapsed sim.Time
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, writes*4096))
		fd, err := e.l.Open(p, "/f", true)
		if err != nil {
			t.Error(err)
			return
		}
		buf := bytes.Repeat([]byte{0x5a}, 4096)

		// Synchronous baseline.
		th, _ := e.l.NewThread(p)
		start := p.Now()
		for i := 0; i < writes; i++ {
			if _, err := th.Pwrite(p, fd, buf, int64(i)*4096); err != nil {
				t.Error(err)
				return
			}
		}
		syncElapsed = p.Now() - start

		// Non-blocking writes at depth 16.
		w, err := e.l.NewAsyncWriter(p, 16, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		start = p.Now()
		for i := 0; i < writes; i++ {
			if _, err := w.Pwrite(p, fd, buf, int64(i)*4096); err != nil {
				t.Error(err)
				return
			}
		}
		if err := w.Drain(p); err != nil {
			t.Error(err)
			return
		}
		asyncElapsed = p.Now() - start
		if w.Submitted != writes || w.Completed != writes || w.Inflight() != 0 {
			t.Errorf("accounting: submitted=%d completed=%d inflight=%d",
				w.Submitted, w.Completed, w.Inflight())
		}
	})
	e.s.Run()
	// Depth-16 pipelining over 6 device channels must clearly beat
	// one-at-a-time synchronous writes.
	if asyncElapsed*2 > syncElapsed {
		t.Fatalf("async writes not overlapped: async=%v sync=%v", asyncElapsed, syncElapsed)
	}
	e.s.Shutdown()
}

func TestAsyncWriteReadConsistency(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 64*4096))
		fd, _ := e.l.Open(p, "/f", true)
		w, err := e.l.NewAsyncWriter(p, 32, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		th, _ := e.l.NewThread(p)
		buf := make([]byte, 4096)
		// Issue a burst of async writes, then immediately read one of
		// the written ranges WITHOUT draining: the read must return
		// the new data (§5.1 consistency requirement).
		for i := 0; i < 16; i++ {
			data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if _, err := w.Pwrite(p, fd, data, int64(i)*4096); err != nil {
				t.Error(err)
				return
			}
		}
		if n, err := th.Pread(p, fd, buf, 5*4096); err != nil || n != 4096 {
			t.Errorf("read during async burst: n=%d err=%v", n, err)
			return
		}
		for i, b := range buf {
			if b != 6 {
				t.Errorf("stale read at byte %d: %#x (read overtook buffered write)", i, b)
				return
			}
		}
		if err := w.Drain(p); err != nil {
			t.Error(err)
		}
		// Non-overlapping reads proceed without waiting for writes.
		if _, err := th.Pread(p, fd, buf, 40*4096); err != nil {
			t.Error(err)
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestAsyncWriteFallbacks(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 8192))
		fd, _ := e.l.Open(p, "/f", true)
		w, err := e.l.NewAsyncWriter(p, 4, 8192)
		if err != nil {
			t.Error(err)
			return
		}
		// Append: routed synchronously through the kernel.
		if n, err := w.Pwrite(p, fd, make([]byte, 4096), 8192); err != nil || n != 4096 {
			t.Errorf("append via async writer: n=%d err=%v", n, err)
			return
		}
		if w.Submitted != 0 {
			t.Errorf("append counted as async (submitted=%d)", w.Submitted)
		}
		// Unaligned: synchronous RMW.
		if n, err := w.Pwrite(p, fd, []byte("odd"), 100); err != nil || n != 3 {
			t.Errorf("unaligned via async writer: n=%d err=%v", n, err)
			return
		}
		// Oversized for the slot: explicit error.
		if _, err := w.Pwrite(p, fd, make([]byte, 12288), 0); err == nil {
			t.Error("oversized async write accepted")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestAsyncWriteBackpressure(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/f", make([]byte, 256*4096))
		fd, _ := e.l.Open(p, "/f", true)
		w, err := e.l.NewAsyncWriter(p, 2, 4096) // tiny depth
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for i := 0; i < 32; i++ {
			if _, err := w.Pwrite(p, fd, buf, int64(i)*4096); err != nil {
				t.Error(err)
				return
			}
			if w.Inflight() > 2 {
				t.Errorf("inflight %d exceeds depth 2", w.Inflight())
				return
			}
		}
		if err := w.Drain(p); err != nil {
			t.Error(err)
		}
	})
	e.s.Run()
	e.s.Shutdown()
}
