package userlib

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestStagingAppenderEndToEnd(t *testing.T) {
	e := newEnv(t)
	const records = 24
	rec := bytes.Repeat([]byte{0xd5}, 4096)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/log", nil)
		th, err := e.l.NewThread(p)
		if err != nil {
			t.Error(err)
			return
		}
		fd, err := e.l.Open(p, "/log", true)
		if err != nil {
			t.Error(err)
			return
		}
		// 32 KiB staging chunk: a relink every 8 appends.
		a, err := e.l.NewStagingAppender(p, th, fd, "/log.staging", 8*4096)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < records; i++ {
			if n, err := a.Append(p, rec); err != nil || n != 4096 {
				t.Errorf("append %d: n=%d err=%v", i, n, err)
				return
			}
		}
		if err := a.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if a.Relinks < 3 {
			t.Errorf("relinks = %d, want >= 3", a.Relinks)
		}
		// The target sees every record, readable through the direct
		// path.
		f, _ := e.l.Proc.FDInfo(fd)
		if f.Size() != records*4096 {
			t.Errorf("target size = %d, want %d", f.Size(), records*4096)
			return
		}
		got := make([]byte, 4096)
		for i := 0; i < records; i++ {
			if _, err := th.Pread(p, fd, got, int64(i)*4096); err != nil {
				t.Errorf("read back %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, rec) {
				t.Errorf("record %d corrupted", i)
				return
			}
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestStagingAppenderValidation(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/log", nil)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/log", true)
		if _, err := e.l.NewStagingAppender(p, th, fd, "/s", 1000); err == nil {
			t.Error("unaligned chunk accepted")
		}
		a, err := e.l.NewStagingAppender(p, th, fd, "/s2", 4*4096)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := a.Append(p, make([]byte, 100)); err == nil {
			t.Error("unaligned append accepted")
		}
		if _, err := a.Append(p, make([]byte, 8*4096)); err == nil {
			t.Error("append larger than chunk accepted")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestStagingAppendsStayInUserspace(t *testing.T) {
	e := newEnv(t)
	e.s.Spawn("app", func(p *sim.Proc) {
		e.seed(t, p, "/log", nil)
		th, _ := e.l.NewThread(p)
		fd, _ := e.l.Open(p, "/log", true)
		a, err := e.l.NewStagingAppender(p, th, fd, "/stg", 64*4096)
		if err != nil {
			t.Error(err)
			return
		}
		before := e.l.DirectOps
		rec := make([]byte, 4096)
		for i := 0; i < 32; i++ {
			if _, err := a.Append(p, rec); err != nil {
				t.Error(err)
				return
			}
		}
		// Every staged append is a direct userspace overwrite.
		if e.l.DirectOps-before != 32 {
			t.Errorf("direct ops = %d, want 32", e.l.DirectOps-before)
		}
	})
	e.s.Run()
	e.s.Shutdown()
}
