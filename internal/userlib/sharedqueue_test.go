package userlib

import (
	"testing"

	"repro/internal/device"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestSharedQueueSerializes(t *testing.T) {
	s := sim.New()
	m, err := kernel.NewMachine(s, kernel.DefaultConfig(), device.OptaneP5800X(1<<30), nil)
	if err != nil {
		t.Fatal(err)
	}
	pr := m.NewProcess(ext4.Root)
	cfg := DefaultConfig()
	cfg.ShareQueues = true
	l := New(pr, cfg)
	var lats []sim.Time
	s.Spawn("main", func(p *sim.Proc) {
		fd0, _ := pr.Create(p, "/f", 0o666)
		_ = pr.Fallocate(p, fd0, 16<<20)
		_ = pr.Fsync(p, fd0)
		_ = pr.Close(p, fd0)
		for i := 0; i < 4; i++ {
			s.Spawn("w", func(w *sim.Proc) {
				th, err := l.NewThread(w)
				if err != nil {
					t.Error(err)
					return
				}
				if th.lock == nil {
					t.Error("no lock on shared thread")
				}
				fd, err := l.Open(w, "/f", false)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 4096)
				st := w.Now()
				if _, err := th.Pread(w, fd, buf, 0); err != nil {
					t.Error(err)
				}
				lats = append(lats, w.Now()-st)
			})
		}
	})
	s.Run()
	if len(lats) != 4 {
		t.Fatalf("lats = %v", lats)
	}
	// With one shared queue+lock, concurrent reads must serialize:
	// at least one latency well above a solo op.
	max := lats[0]
	for _, l := range lats {
		if l > max {
			max = l
		}
	}
	if max < 9*sim.Microsecond {
		t.Fatalf("no serialization on shared queue: %v", lats)
	}
	s.Shutdown()
}
