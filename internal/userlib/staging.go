package userlib

import (
	"fmt"

	"repro/internal/sim"
)

// StagingAppender implements the SplitFS-style append path the paper
// names in §5.1: appends land in a preallocated staging file as
// userspace overwrites (no kernel on the data path), and a periodic
// relink() grafts the staged blocks onto the target with one metadata
// operation and zero data movement.
type StagingAppender struct {
	lib       *Lib
	th        *Thread
	targetFD  int
	stagingFD int
	chunk     int64 // staging capacity between relinks
	staged    int64 // bytes currently staged

	Relinks int64 // metadata grafts performed (stats)
}

// NewStagingAppender prepares a staging file of chunk bytes next to
// the target. The target must currently end on a block boundary (it
// grows in whole staged chunks).
func (l *Lib) NewStagingAppender(p *sim.Proc, th *Thread, targetFD int, stagingPath string, chunk int64) (*StagingAppender, error) {
	if chunk <= 0 || chunk%4096 != 0 {
		return nil, fmt.Errorf("userlib: staging chunk %d must be a positive block multiple", chunk)
	}
	if _, err := l.state(targetFD); err != nil {
		return nil, err
	}
	cfd, err := l.Proc.Create(p, stagingPath, 0o600)
	if err != nil {
		return nil, err
	}
	if err := l.Proc.Fallocate(p, cfd, chunk); err != nil {
		return nil, err
	}
	if err := l.Proc.Close(p, cfd); err != nil {
		return nil, err
	}
	sfd, err := l.Open(p, stagingPath, true)
	if err != nil {
		return nil, err
	}
	return &StagingAppender{
		lib: l, th: th, targetFD: targetFD, stagingFD: sfd, chunk: chunk,
	}, nil
}

// Append stages data from userspace and relinks when the staging file
// fills. Data must be block-aligned in length for the relink to keep
// the target block-aligned.
func (a *StagingAppender) Append(p *sim.Proc, data []byte) (int, error) {
	if int64(len(data))%4096 != 0 {
		return 0, fmt.Errorf("userlib: staged appends must be 4KiB-aligned")
	}
	if int64(len(data)) > a.chunk {
		return 0, fmt.Errorf("userlib: append %d exceeds staging chunk %d", len(data), a.chunk)
	}
	if a.staged+int64(len(data)) > a.chunk {
		if err := a.Flush(p); err != nil {
			return 0, err
		}
	}
	n, err := a.th.Pwrite(p, a.stagingFD, data, a.staged)
	if err != nil {
		return n, err
	}
	a.staged += int64(n)
	return n, nil
}

// Flush relinks all staged blocks into the target and re-preallocates
// the staging file.
func (a *StagingAppender) Flush(p *sim.Proc) error {
	if a.staged == 0 {
		return nil
	}
	// Trim the staging file to exactly the staged bytes so only they
	// move, then relink.
	if err := a.lib.Proc.Ftruncate(p, a.stagingFD, a.staged); err != nil {
		return err
	}
	if err := a.lib.Proc.Relink(p, a.stagingFD, a.targetFD); err != nil {
		return err
	}
	a.Relinks++
	a.staged = 0
	// Track the target's new size in UserLib state.
	if fs, err := a.lib.state(a.targetFD); err == nil {
		if f, err := a.lib.Proc.FDInfo(a.targetFD); err == nil {
			fs.Size = f.Size()
		}
	}
	// Refill the staging file for the next round.
	if err := a.lib.Proc.Fallocate(p, a.stagingFD, a.chunk); err != nil {
		return err
	}
	if fs, err := a.lib.state(a.stagingFD); err == nil {
		fs.Size = a.chunk
	}
	return nil
}
