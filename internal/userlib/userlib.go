// Package userlib implements BypassD's UserLib: the userspace shim
// that intercepts file system calls, routes metadata operations to the
// kernel, and issues data operations directly to the device on queue
// pairs mapped into the process (paper §3.2, §4.2).
//
// Per-thread queue pairs and DMA buffers avoid synchronization on the
// data path (paper §6.3 "Scaling"). Reads and aligned overwrites go
// straight to the device using Virtual Block Addresses; appends and
// other metadata-modifying operations are forwarded to the kernel
// (paper Table 3). On a translation fault the library re-issues
// fmap(); a zero VBA means access was revoked and the file falls back
// to the kernel interface (paper §3.6).
package userlib

import (
	"fmt"

	"repro/internal/ext4"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config tunes the library's cost model and resources.
type Config struct {
	// LibOverhead is the per-operation software cost: interception,
	// VBA computation, SQE construction, completion handling.
	LibOverhead sim.Time
	// CopyBase/CopyBW model memcpy between user and DMA buffers
	// (Fig. 7's dominant "user" component).
	CopyBase sim.Time
	CopyBW   float64 // bytes per nanosecond
	// QueueDepth sizes each thread's queue pair.
	QueueDepth int
	// DMABufBytes sizes each thread's pinned buffer.
	DMABufBytes int
	// ShareQueues makes all threads share one queue pair and DMA
	// buffer behind a lock — the ablation for the paper's claim that
	// private per-thread queues avoid synchronization costs (§6.3).
	ShareQueues bool
	// ExtentFmap maps files through the IOMMU's extent-table walker
	// (§5.1 alternate-data-structure enhancement) instead of
	// page-table FTEs.
	ExtentFmap bool

	// MaxRetries bounds the direct path's recovery attempts per
	// operation — transient-error resubmissions and refmaps alike —
	// before the file degrades to the kernel interface. <= 0 means
	// the default (3).
	MaxRetries int
	// RetryBackoff is the first retry's delay; each further retry
	// doubles it. <= 0 means the default (5 µs).
	RetryBackoff sim.Time
	// MaxBackoff caps the doubled delay. Without the cap a large
	// MaxRetries overflows sim.Time into a negative sleep (which the
	// scheduler rejects by panicking). <= 0 means the default (1 ms).
	MaxBackoff sim.Time
}

// Retry defaults, applied by New when the Config leaves them unset.
const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 5 * sim.Microsecond
	defaultMaxBackoff   = 1 * sim.Millisecond
)

// DefaultConfig returns the calibration documented in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		LibOverhead:  150 * sim.Nanosecond,
		CopyBase:     60 * sim.Nanosecond,
		CopyBW:       10.7,
		QueueDepth:   256,
		DMABufBytes:  1 << 20,
		MaxRetries:   defaultMaxRetries,
		RetryBackoff: defaultRetryBackoff,
	}
}

// FileState is UserLib's view of an open file (paper §3.2: flags,
// offset, size, starting VBA, ongoing partial writes).
type FileState struct {
	FD       int
	Path     string
	Base     uint64 // starting VBA; 0 = kernel interface
	Writable bool
	Size     int64
	Offset   int64

	// partial write serialization (paper §4.5.1)
	partialOffsets map[int64]int
	partialCond    *sim.Cond

	// in-flight non-blocking writes (§5.1 extension)
	pending []pendingRange
}

// Stats counts fault-path events on the direct path (the ISSUE-2
// degradation counters; experiments report behaviour under faults
// with these).
type Stats struct {
	// Retries counts recovery attempts that kept the op on the direct
	// path: backoff-resubmits after transient errors and successful
	// refmaps after translation faults.
	Retries int64
	// Fallbacks counts degradation events: direct-path ops abandoned
	// to the kernel interface after a fault (retry exhaustion or a
	// revoked mapping). The file stays on the kernel interface.
	Fallbacks int64
	// InjectedFaults counts fault-plane events observed on the direct
	// path: injected backpressure plus transient device statuses
	// (which only the fault plane produces).
	InjectedFaults int64
}

// Lib is the per-process library instance shared by all threads.
type Lib struct {
	Proc  *kernel.Process
	cfg   Config
	files map[int]*FileState

	// Stats for the harness.
	DirectOps   int64 // served via the BypassD interface
	FallbackOps int64 // served via the kernel interface
	Refmaps     int64 // fmap() retries after faults
	Stats       Stats // fault-path event counters

	// Metrics handles mirroring the counters above (nil-inert when no
	// registry is active); kept in lockstep by the count* helpers.
	mDirect, mKernel   *metrics.Counter
	mRefmaps, mRetries *metrics.Counter
	mDegrades          *metrics.Counter
	mInjected          *metrics.Counter

	shared      *Thread   // shared-queue ablation state
	sharedReady *sim.Cond // signalled once the shared queue exists
	sharedErr   error     // why shared-queue setup failed, if it did
}

// Counter helpers keep the exported tallies and the metrics plane in
// lockstep from every site that records an event.
func (l *Lib) countDirect()   { l.DirectOps++; l.mDirect.Inc() }
func (l *Lib) countFallback() { l.FallbackOps++; l.mKernel.Inc() }
func (l *Lib) countRetry()    { l.Stats.Retries++; l.mRetries.Inc() }
func (l *Lib) countDegrade()  { l.Stats.Fallbacks++; l.mDegrades.Inc() }
func (l *Lib) countInjected() { l.Stats.InjectedFaults++; l.mInjected.Inc() }

// New creates the library instance for a process.
func New(pr *kernel.Process, cfg Config) *Lib {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = defaultMaxBackoff
	}
	return &Lib{
		Proc:      pr,
		cfg:       cfg,
		files:     make(map[int]*FileState),
		mDirect:   metrics.GetCounter("userlib_ops_total", "path", "direct"),
		mKernel:   metrics.GetCounter("userlib_ops_total", "path", "kernel"),
		mRefmaps:  metrics.GetCounter("userlib_refmaps_total"),
		mRetries:  metrics.GetCounter("userlib_retries_total"),
		mDegrades: metrics.GetCounter("userlib_degrades_total"),
		mInjected: metrics.GetCounter("userlib_injected_faults_total"),
	}
}

// devName names the device the library talks to (error context).
func (l *Lib) devName() string { return l.Proc.Dev().Config().Name }

// Thread is per-application-thread state: a private queue pair and
// DMA buffer, so threads never contend on the data path. In the
// shared-queue ablation, threads alias one queue behind a lock.
type Thread struct {
	Lib  *Lib
	q    *nvme.QueuePair
	dma  []byte
	cid  uint16
	lock *sim.Resource // non-nil only when queues are shared

	// DeviceNS accumulates submit-to-completion time; UserNS the
	// library-side time (Fig. 7 breakdown).
	DeviceNS sim.Time
	UserNS   sim.Time
}

// NewThread initializes the thread's queues and DMA buffer through
// the BypassD kernel module (paper §3.3).
func (l *Lib) NewThread(p *sim.Proc) (*Thread, error) {
	if l.cfg.ShareQueues {
		return l.sharedThread(p)
	}
	q, err := l.Proc.CreateUserQueue(p, l.cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	return &Thread{
		Lib: l,
		q:   q,
		dma: l.Proc.AllocDMABuffer(p, l.cfg.DMABufBytes),
	}, nil
}

// sharedThread hands out aliases of one process-wide queue pair,
// creating it exactly once even when threads race through the
// blocking setup calls.
func (l *Lib) sharedThread(p *sim.Proc) (*Thread, error) {
	if l.shared == nil {
		t := &Thread{Lib: l, lock: l.Proc.M.Sim.NewResource("userlib-shared-q", 1)}
		l.shared = t
		l.sharedReady = l.Proc.M.Sim.NewCond()
		q, err := l.Proc.CreateUserQueue(p, l.cfg.QueueDepth)
		if err != nil {
			l.shared = nil
			l.sharedErr = fmt.Errorf("userlib: shared queue setup on dev %s: %w", l.devName(), err)
			l.sharedReady.Broadcast()
			return nil, l.sharedErr
		}
		t.q = q
		t.dma = l.Proc.AllocDMABuffer(p, l.cfg.DMABufBytes)
		l.sharedReady.Broadcast()
		return t, nil
	}
	for l.shared != nil && l.shared.dma == nil {
		l.sharedReady.Wait(p)
	}
	if l.shared == nil {
		// Re-report the creator's failure to every waiter with the
		// original device context intact.
		return nil, fmt.Errorf("userlib: shared queue setup failed: %w", l.sharedErr)
	}
	return &Thread{Lib: l, q: l.shared.q, dma: l.shared.dma, lock: l.shared.lock}, nil
}

// acquire/release guard the shared queue and DMA buffer.
func (t *Thread) acquire(p *sim.Proc) {
	if t.lock != nil {
		t.lock.Acquire(p)
	}
}

func (t *Thread) release() {
	if t.lock != nil {
		t.lock.Release()
	}
}

// copyCost models one memcpy of n bytes.
func (l *Lib) copyCost(n int) sim.Time {
	return l.cfg.CopyBase + sim.Time(float64(n)/l.cfg.CopyBW)
}

// Open intercepts open(): forward to the kernel and fmap() for the
// BypassD interface. The returned fd works regardless of whether
// direct access was granted.
func (l *Lib) Open(p *sim.Proc, path string, write bool) (int, error) {
	var fd int
	var base uint64
	var err error
	if l.cfg.ExtentFmap {
		fd, err = l.Proc.Open(p, path, write)
		if err != nil {
			return 0, err
		}
		// Open counted as kernel-interface; hand it to the direct
		// path instead.
		if f, e2 := l.Proc.FDInfo(fd); e2 == nil {
			f.Ino.KernelOpens--
		}
		base, err = l.Proc.FmapRegion(p, fd)
		if err != nil {
			return 0, err
		}
		if base == 0 {
			if f, e2 := l.Proc.FDInfo(fd); e2 == nil {
				f.Ino.KernelOpens++
			}
		}
	} else {
		fd, base, err = l.Proc.OpenBypass(p, path, write)
		if err != nil {
			return 0, err
		}
	}
	f, err := l.Proc.FDInfo(fd)
	if err != nil {
		return 0, err
	}
	l.files[fd] = &FileState{
		FD:             fd,
		Path:           path,
		Base:           base,
		Writable:       write,
		Size:           f.Size(),
		partialOffsets: make(map[int64]int),
		partialCond:    l.Proc.M.Sim.NewCond(),
	}
	return fd, nil
}

// state resolves library state for fd.
func (l *Lib) state(fd int) (*FileState, error) {
	fs, ok := l.files[fd]
	if !ok {
		return nil, fmt.Errorf("userlib: fd %d not opened through UserLib", fd)
	}
	return fs, nil
}

// State exposes the file state (tests, Fig. 12 harness).
func (l *Lib) State(fd int) (*FileState, error) { return l.state(fd) }

// Direct reports whether fd currently uses the BypassD interface.
func (fs *FileState) Direct() bool { return fs.Base > 0 }

// doVBA submits one VBA command and busy-polls its completion,
// recording the device span. Callers in shared-queue mode hold the
// queue lock around the op including its DMA-buffer copies.
func (t *Thread) doVBA(p *sim.Proc, op nvme.Opcode, vba uint64, buf []byte) nvme.Status {
	t.cid++
	e := nvme.SQE{
		Opcode:  op,
		CID:     t.cid,
		UseVBA:  true,
		VBA:     vba,
		Sectors: int64(len(buf)) / storage.SectorSize,
		Buf:     buf,
		Span:    trace.SpanFrom(p),
	}
	start := p.Now()
	if err := t.q.Submit(e); err != nil {
		return nvme.StatusInternalError
	}
	m := t.Lib.Proc.M
	for {
		if c, ok := t.q.PopCQE(); ok {
			t.DeviceNS += p.Now() - start
			e.Span.Complete(p.Now())
			return c.Status
		}
		m.CPU.BusyWait(p, t.q.CQReady)
	}
}

// backoff returns the exponential delay before retry n (1-based),
// clamped to MaxBackoff. The clamp is checked before each doubling so
// a large n cannot overflow sim.Time into a negative sleep.
func (l *Lib) backoff(n int) sim.Time {
	d := l.cfg.RetryBackoff
	for i := 1; i < n; i++ {
		if d >= l.cfg.MaxBackoff/2 {
			return l.cfg.MaxBackoff
		}
		d *= 2
	}
	if d > l.cfg.MaxBackoff {
		d = l.cfg.MaxBackoff
	}
	return d
}

// degrade routes the file to the kernel interface permanently (the
// fallback leg of the §3.6 state machine) and counts the event.
func (l *Lib) degrade(fs *FileState) {
	fs.Base = 0
	l.countDegrade()
}

// opError wraps a direct-path failure with the device name, queue ID
// and NVMe status so injected faults are diagnosable from test output.
func (t *Thread) opError(op string, fs *FileState, off int64, st nvme.Status) error {
	return fmt.Errorf("userlib: %s %s at %d (dev %s, queue %d): nvme status %v",
		op, fs.Path, off, t.Lib.devName(), t.q.ID, st)
}

// vbaRetry runs one direct-path command through the bounded
// retry-with-backoff state machine:
//
//	submit ──ok──────────────────────────────▶ done (direct)
//	   │ transient (media error, timeout, backpressure)
//	   │      └─ retries left: sleep backoff, resubmit
//	   │ translation fault / access denied
//	   │      └─ refmaps left: re-issue fmap(), resubmit
//	   │                └─ fmap() returns VBA 0 ─▶ fallback (permanent)
//	   └─ budget exhausted ──▶ degrade: fs.Base = 0, fallback (permanent)
//
// fellBack=true tells the caller to route this op — and, since
// fs.Base is now 0, every later op on the file — through the kernel.
// A non-OK status with fellBack=false is a hard error (the caller
// reports it via opError). The VBA is recomputed from fs.Base each
// attempt because refmap may move the mapping.
func (t *Thread) vbaRetry(p *sim.Proc, fs *FileState, op nvme.Opcode, alignedOff int64, dma []byte) (st nvme.Status, fellBack bool) {
	l := t.Lib
	inj := l.Proc.M.Faults
	retries, refmaps := 0, 0
	for {
		if inj.Fire(faults.SiteQueueFull) {
			// Injected submission backpressure: treat exactly like a
			// full ring — back off, then resubmit.
			l.countInjected()
			if retries >= l.cfg.MaxRetries {
				l.degrade(fs)
				return nvme.StatusCommandTimeout, true
			}
			retries++
			l.countRetry()
			p.Sleep(l.backoff(retries))
			continue
		}
		st = t.doVBA(p, op, fs.Base+uint64(alignedOff), dma)
		switch {
		case st.OK():
			return st, false
		case st == nvme.StatusTranslationFault || st == nvme.StatusAccessDenied:
			// Revocation or a spurious IOMMU fault: re-issue fmap()
			// and resubmit (paper §3.6).
			if refmaps >= l.cfg.MaxRetries || inj.Fire(faults.SiteRefmapExhaust) {
				l.degrade(fs)
				return st, true
			}
			refmaps++
			if !t.refmap(p, fs) {
				// fmap() returned VBA 0: access revoked; refmap
				// already cleared fs.Base.
				l.countDegrade()
				return st, true
			}
			l.countRetry()
		case st.Transient():
			// Media error or command timeout — only the fault plane
			// produces these.
			l.countInjected()
			if retries >= l.cfg.MaxRetries {
				l.degrade(fs)
				return st, true
			}
			retries++
			l.countRetry()
			p.Sleep(l.backoff(retries))
		default:
			return st, false // hard error: caller reports it
		}
	}
}

// refmap re-issues fmap() after a fault. A zero VBA means revoked:
// the file permanently falls back to the kernel interface (§3.6).
func (t *Thread) refmap(p *sim.Proc, fs *FileState) bool {
	t.Lib.Refmaps++
	t.Lib.mRefmaps.Inc()
	fmap := t.Lib.Proc.Fmap
	if t.Lib.cfg.ExtentFmap {
		fmap = t.Lib.Proc.FmapRegion
	}
	base, err := fmap(p, fs.FD)
	if err != nil || base == 0 {
		fs.Base = 0
		return false
	}
	fs.Base = base
	return true
}

// Pread intercepts pread(): direct VBA read with sector-granularity
// alignment handled in the DMA buffer.
func (t *Thread) Pread(p *sim.Proc, fd int, buf []byte, off int64) (int, error) {
	l := t.Lib
	fs, err := l.state(fd)
	if err != nil {
		return 0, err
	}
	if !fs.Direct() {
		l.countFallback()
		return l.Proc.Pread(p, fd, buf, off)
	}
	if off >= fs.Size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > fs.Size {
		n = fs.Size - off
	}
	m := l.Proc.M
	m.CPU.Compute(p, l.cfg.LibOverhead)

	alignedOff := off &^ (storage.SectorSize - 1)
	alignedEnd := (off + n + storage.SectorSize - 1) &^ (storage.SectorSize - 1)
	span := alignedEnd - alignedOff
	if span > int64(len(t.dma)) {
		// Large transfers stream through the DMA buffer in chunks.
		var done int64
		for done < n {
			chunk := n - done
			if chunk > int64(len(t.dma))/2 {
				chunk = int64(len(t.dma)) / 2
			}
			c, err := t.Pread(p, fd, buf[done:done+chunk], off+done)
			if err != nil {
				return int(done), err
			}
			done += int64(c)
		}
		return int(done), nil
	}

	// Reads must see the latest data even if it sits in an
	// unprocessed non-blocking write (§5.1).
	fs.waitRange(p, m.CPU, alignedOff, span)

	t.acquire(p)
	dma := t.dma[:span]
	st, fellBack := t.vbaRetry(p, fs, nvme.OpRead, alignedOff, dma)
	if fellBack {
		t.release()
		l.countFallback()
		return l.Proc.Pread(p, fd, buf, off)
	}
	if !st.OK() {
		t.release()
		return 0, t.opError("read", fs, off, st)
	}
	uStart := p.Now()
	m.CPU.Compute(p, l.copyCost(int(n)))
	copy(buf[:n], dma[off-alignedOff:])
	t.UserNS += p.Now() - uStart
	t.release()
	l.countDirect()
	return int(n), nil
}

// Pwrite intercepts pwrite(). Overwrites go direct; appends route to
// the kernel (paper Table 3); sub-sector writes serialize and use
// read-modify-write (paper §4.5.1).
func (t *Thread) Pwrite(p *sim.Proc, fd int, data []byte, off int64) (int, error) {
	l := t.Lib
	fs, err := l.state(fd)
	if err != nil {
		return 0, err
	}
	if !fs.Writable {
		return 0, ext4.ErrPerm
	}
	if !fs.Direct() {
		l.countFallback()
		n, err := l.Proc.Pwrite(p, fd, data, off)
		if off+int64(n) > fs.Size {
			fs.Size = off + int64(n)
		}
		return n, err
	}
	n := int64(len(data))
	if off+n > fs.Size {
		// Append: modifies metadata, so the kernel handles it and
		// issues the write directly to the device without buffering.
		l.countFallback()
		w, err := l.Proc.Pwrite(p, fd, data, off)
		if off+int64(w) > fs.Size {
			fs.Size = off + int64(w)
		}
		return w, err
	}

	m := l.Proc.M
	m.CPU.Compute(p, l.cfg.LibOverhead)

	aligned := off%storage.SectorSize == 0 && n%storage.SectorSize == 0
	if !aligned {
		return t.partialWrite(p, fs, data, off)
	}
	if n > int64(len(t.dma)) {
		var done int64
		for done < n {
			chunk := n - done
			if chunk > int64(len(t.dma)) {
				chunk = int64(len(t.dma))
			}
			c, err := t.Pwrite(p, fd, data[done:done+chunk], off+done)
			if err != nil {
				return int(done), err
			}
			done += int64(c)
		}
		return int(done), nil
	}

	t.acquire(p)
	uStart := p.Now()
	m.CPU.Compute(p, l.copyCost(int(n)))
	dma := t.dma[:n]
	copy(dma, data)
	t.UserNS += p.Now() - uStart

	st, fellBack := t.vbaRetry(p, fs, nvme.OpWrite, off, dma)
	if fellBack {
		t.release()
		l.countFallback()
		return l.Proc.Pwrite(p, fd, data, off)
	}
	t.release()
	if !st.OK() {
		return 0, t.opError("write", fs, off, st)
	}
	if f, err := l.Proc.FDInfo(fd); err == nil {
		f.MarkTimesDirty()
	}
	l.countDirect()
	return int(n), nil
}

// partialWrite serializes sub-sector writes to the same sectors and
// performs read-modify-write (paper §4.5.1: "UserLib serializes
// partial writes to the same file to avoid data inconsistencies").
func (t *Thread) partialWrite(p *sim.Proc, fs *FileState, data []byte, off int64) (int, error) {
	l := t.Lib
	n := int64(len(data))
	first := off / storage.SectorSize
	last := (off + n - 1) / storage.SectorSize

	overlaps := func() bool {
		for s := first; s <= last; s++ {
			if fs.partialOffsets[s] > 0 {
				return true
			}
		}
		return false
	}
	for overlaps() {
		fs.partialCond.Wait(p)
	}
	for s := first; s <= last; s++ {
		fs.partialOffsets[s]++
	}
	defer func() {
		for s := first; s <= last; s++ {
			fs.partialOffsets[s]--
			if fs.partialOffsets[s] == 0 {
				delete(fs.partialOffsets, s)
			}
		}
		fs.partialCond.Broadcast()
	}()

	alignedOff := first * storage.SectorSize
	span := (last - first + 1) * storage.SectorSize
	t.acquire(p)
	defer t.release()
	dma := t.dma[:span]
	st, fellBack := t.vbaRetry(p, fs, nvme.OpRead, alignedOff, dma)
	if !fellBack && st.OK() {
		m := l.Proc.M
		uStart := p.Now()
		m.CPU.Compute(p, l.copyCost(int(n)))
		copy(dma[off-alignedOff:], data)
		t.UserNS += p.Now() - uStart
		st, fellBack = t.vbaRetry(p, fs, nvme.OpWrite, alignedOff, dma)
	}
	if fellBack {
		// The RMW lost its mapping mid-flight: the kernel path writes
		// the sub-sector payload itself (the partial-offset locks held
		// here still exclude concurrent overlapping partials).
		l.countFallback()
		return l.Proc.Pwrite(p, fs.FD, data, off)
	}
	if !st.OK() {
		return 0, t.opError("rmw", fs, off, st)
	}
	l.countDirect()
	return int(n), nil
}

// Read/Write advance the shared file offset (all threads of the
// process see a consistent view, paper §4.5.1).
func (t *Thread) Read(p *sim.Proc, fd int, buf []byte) (int, error) {
	fs, err := t.Lib.state(fd)
	if err != nil {
		return 0, err
	}
	n, err := t.Pread(p, fd, buf, fs.Offset)
	fs.Offset += int64(n)
	return n, err
}

// Write appends at the shared offset.
func (t *Thread) Write(p *sim.Proc, fd int, data []byte) (int, error) {
	fs, err := t.Lib.state(fd)
	if err != nil {
		return 0, err
	}
	n, err := t.Pwrite(p, fd, data, fs.Offset)
	fs.Offset += int64(n)
	return n, err
}

// Fsync flushes the thread's queues (NVMe flush) for durability, then
// lets the kernel flush file metadata (paper Table 3).
func (t *Thread) Fsync(p *sim.Proc, fd int) error {
	t.acquire(p)
	t.cid++
	sp := trace.SpanFrom(p)
	if err := t.q.Submit(nvme.SQE{Opcode: nvme.OpFlush, CID: t.cid, Span: sp}); err != nil {
		t.release()
		return err
	}
	m := t.Lib.Proc.M
	for {
		if c, ok := t.q.PopCQE(); ok {
			sp.Complete(p.Now())
			if !c.Status.OK() {
				t.release()
				return fmt.Errorf("userlib: flush (dev %s, queue %d): nvme status %v",
					t.Lib.devName(), t.q.ID, c.Status)
			}
			break
		}
		m.CPU.BusyWait(p, t.q.CQReady)
	}
	t.release()
	return t.Lib.Proc.Fsync(p, fd)
}

// Close forwards to the kernel, which detaches the file tables.
func (l *Lib) Close(p *sim.Proc, fd int) error {
	delete(l.files, fd)
	return l.Proc.Close(p, fd)
}

// OptimizedAppend implements §5.1: preallocate blocks with
// fallocate() in large chunks, then issue the append as a userspace
// overwrite into the preallocated region.
func (t *Thread) OptimizedAppend(p *sim.Proc, fd int, data []byte, chunk int64) (int, error) {
	l := t.Lib
	fs, err := l.state(fd)
	if err != nil {
		return 0, err
	}
	if !fs.Direct() {
		return t.Write(p, fd, data)
	}
	end := fs.Offset + int64(len(data))
	if f, err := l.Proc.FDInfo(fd); err == nil && end > f.Size() {
		target := (end + chunk - 1) / chunk * chunk
		if err := l.Proc.Fallocate(p, fd, target); err != nil {
			return 0, err
		}
		fs.Size = target
	} else if end > fs.Size {
		fs.Size = end
	}
	n, err := t.Pwrite(p, fd, data, fs.Offset)
	fs.Offset += int64(n)
	return n, err
}
