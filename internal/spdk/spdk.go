// Package spdk implements the SPDK-like baseline: a userspace NVMe
// driver with no file system and no kernel on the data path. It maps
// the device's raw LBA space into the process, so it achieves the
// lowest possible latency — and, exactly as the paper argues (§2),
// it cannot be shared: the process claims the whole device, and any
// "file" is just a named range of raw sectors with no permission
// enforcement.
package spdk

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config is the userspace driver cost model.
type Config struct {
	LibOverhead sim.Time // request build + completion handling
	CopyBase    sim.Time
	CopyBW      float64 // bytes per nanosecond
	QueueDepth  int
	DMABufBytes int
}

// DefaultConfig mirrors UserLib's costs minus interception overhead.
func DefaultConfig() Config {
	return Config{
		LibOverhead: 100 * sim.Nanosecond,
		CopyBase:    60 * sim.Nanosecond,
		CopyBW:      10.7,
		QueueDepth:  256,
		DMABufBytes: 1 << 20,
	}
}

// Region names a contiguous run of raw sectors ("file" without a file
// system — applications carve the device themselves, as SPDK apps
// must).
type Region struct {
	Sector  int64
	Sectors int64
}

// Bytes reports the region size.
func (r Region) Bytes() int64 { return r.Sectors * storage.SectorSize }

// Driver is an exclusive userspace claim on a device.
type Driver struct {
	cpu *sim.CPUSet
	dev *device.SSD
	cfg Config

	files map[string]Region
	next  int64 // allocation cursor in sectors

	// dmaBufs tracks queue DMA buffers for recycling at teardown
	// (core.System.Close → ReleaseResources).
	dmaBufs [][]byte
}

// ReleaseResources returns the driver's DMA buffers to the shared
// pool. Only a teardown path that owns the whole machine may call it.
func (d *Driver) ReleaseResources() {
	for i, b := range d.dmaBufs {
		device.PutDMABuf(b)
		d.dmaBufs[i] = nil
	}
	d.dmaBufs = nil
}

// Claim takes exclusive ownership of the device. It fails if any
// other driver holds it — device sharing is structurally impossible.
func Claim(cpu *sim.CPUSet, dev *device.SSD, cfg Config) (*Driver, error) {
	if err := dev.Claim("spdk"); err != nil {
		return nil, err
	}
	return &Driver{cpu: cpu, dev: dev, cfg: cfg, files: make(map[string]Region)}, nil
}

// Release gives the device back.
func (d *Driver) Release() { d.dev.Release("spdk") }

// CreateFile carves a fresh region of the raw device for name. There
// are no permissions and no metadata: anyone holding the driver can
// read every sector of the device.
func (d *Driver) CreateFile(name string, bytes int64) (Region, error) {
	sectors := (bytes + storage.SectorSize - 1) / storage.SectorSize
	if d.next+sectors > d.dev.Sectors() {
		return Region{}, fmt.Errorf("spdk: device full")
	}
	r := Region{Sector: d.next, Sectors: sectors}
	d.next += sectors
	d.files[name] = r
	return r, nil
}

// Lookup resolves a previously created region.
func (d *Driver) Lookup(name string) (Region, bool) {
	r, ok := d.files[name]
	return r, ok
}

// Queue is a per-thread queue pair + DMA buffer.
type Queue struct {
	d   *Driver
	q   *nvme.QueuePair
	dma []byte
	cid uint16
}

// NewQueue sets up a thread's I/O channel.
func (d *Driver) NewQueue(p *sim.Proc) (*Queue, error) {
	q, err := d.dev.CreateQueue(0, d.cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	p.Sleep(2 * sim.Microsecond) // queue mapping setup
	dma := device.GetDMABuf(d.cfg.DMABufBytes)
	d.dmaBufs = append(d.dmaBufs, dma)
	return &Queue{d: d, q: q, dma: dma}, nil
}

func (d *Driver) copyCost(n int) sim.Time {
	return d.cfg.CopyBase + sim.Time(float64(n)/d.cfg.CopyBW)
}

// doRetries bounds resubmissions of commands that completed with a
// transient status (media error, timeout), as a real SPDK application
// would retry before reporting I/O failure.
const doRetries = 3

// do submits one raw command and busy-polls completion.
func (q *Queue) do(p *sim.Proc, op nvme.Opcode, sector int64, buf []byte) error {
	sp := trace.SpanFrom(p)
	for attempt := 0; ; attempt++ {
		q.cid++
		if err := q.q.Submit(nvme.SQE{
			Opcode:  op,
			CID:     q.cid,
			SLBA:    sector,
			Sectors: int64(len(buf)) / storage.SectorSize,
			Buf:     buf,
			Span:    sp,
		}); err != nil {
			return err
		}
		var c nvme.CQE
		for {
			var ok bool
			if c, ok = q.q.PopCQE(); ok {
				break
			}
			q.d.cpu.BusyWait(p, q.q.CQReady)
		}
		sp.Complete(p.Now())
		if c.Status.OK() {
			return nil
		}
		if c.Status.Transient() && attempt < doRetries {
			continue
		}
		return fmt.Errorf("spdk: %v at sector %d (queue %d): nvme status %v", op, sector, q.q.ID, c.Status)
	}
}

// ReadAt reads sector-aligned data from a region.
func (q *Queue) ReadAt(p *sim.Proc, r Region, buf []byte, off int64) (int, error) {
	if off%storage.SectorSize != 0 || int64(len(buf))%storage.SectorSize != 0 {
		return 0, fmt.Errorf("spdk: unaligned I/O")
	}
	if off+int64(len(buf)) > r.Bytes() {
		return 0, fmt.Errorf("spdk: read beyond region")
	}
	q.d.cpu.Compute(p, q.d.cfg.LibOverhead)
	n := len(buf)
	if n > len(q.dma) {
		n = len(q.dma)
	}
	done := 0
	for done < len(buf) {
		chunk := len(buf) - done
		if chunk > n {
			chunk = n
		}
		dma := q.dma[:chunk]
		if err := q.do(p, nvme.OpRead, r.Sector+(off+int64(done))/storage.SectorSize, dma); err != nil {
			return done, err
		}
		q.d.cpu.Compute(p, q.d.copyCost(chunk))
		copy(buf[done:done+chunk], dma)
		done += chunk
	}
	return done, nil
}

// WriteAt writes sector-aligned data to a region.
func (q *Queue) WriteAt(p *sim.Proc, r Region, data []byte, off int64) (int, error) {
	if off%storage.SectorSize != 0 || int64(len(data))%storage.SectorSize != 0 {
		return 0, fmt.Errorf("spdk: unaligned I/O")
	}
	if off+int64(len(data)) > r.Bytes() {
		return 0, fmt.Errorf("spdk: write beyond region")
	}
	q.d.cpu.Compute(p, q.d.cfg.LibOverhead)
	done := 0
	for done < len(data) {
		chunk := len(data) - done
		if chunk > len(q.dma) {
			chunk = len(q.dma)
		}
		dma := q.dma[:chunk]
		q.d.cpu.Compute(p, q.d.copyCost(chunk))
		copy(dma, data[done:done+chunk])
		if err := q.do(p, nvme.OpWrite, r.Sector+(off+int64(done))/storage.SectorSize, dma); err != nil {
			return done, err
		}
		done += chunk
	}
	return done, nil
}

// Flush issues an NVMe flush.
func (q *Queue) Flush(p *sim.Proc) error {
	q.cid++
	sp := trace.SpanFrom(p)
	if err := q.q.Submit(nvme.SQE{Opcode: nvme.OpFlush, CID: q.cid, Span: sp}); err != nil {
		return err
	}
	for {
		if c, ok := q.q.PopCQE(); ok {
			sp.Complete(p.Now())
			if !c.Status.OK() {
				return fmt.Errorf("spdk: flush: %v", c.Status)
			}
			return nil
		}
		q.d.cpu.BusyWait(p, q.q.CQReady)
	}
}
