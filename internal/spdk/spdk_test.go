package spdk

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func setup(t *testing.T, s *sim.Sim) (*sim.CPUSet, *device.SSD) {
	t.Helper()
	return s.NewCPUSet(24), device.New(s, device.OptaneP5800X(1<<30))
}

func TestExclusiveClaim(t *testing.T) {
	s := sim.New()
	cpu, dev := setup(t, s)
	d1, err := Claim(cpu, dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Claim(cpu, dev, DefaultConfig()); err == nil {
		t.Fatal("second claim succeeded: SPDK must not share the device")
	}
	d1.Release()
	if _, err := Claim(cpu, dev, DefaultConfig()); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	s.Shutdown()
}

func TestRawReadWriteAndLatency(t *testing.T) {
	s := sim.New()
	cpu, dev := setup(t, s)
	d, err := Claim(cpu, dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.CreateFile("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var lat sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		q, err := d.NewQueue(p)
		if err != nil {
			t.Error(err)
			return
		}
		w := bytes.Repeat([]byte{0x42}, 4096)
		if _, err := q.WriteAt(p, r, w, 8192); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		start := p.Now()
		if _, err := q.ReadAt(p, r, buf, 8192); err != nil {
			t.Error(err)
			return
		}
		lat = p.Now() - start
		if !bytes.Equal(buf, w) {
			t.Error("data mismatch")
		}
	})
	s.Run()
	// SPDK 4K read: ~100 lib + 4020 device + ~440 copy ≈ 4.6µs —
	// the floor BypassD approaches within its 550ns translation.
	if lat < 4300 || lat > 4900 {
		t.Fatalf("spdk 4K read = %v, want ~4.6µs", lat)
	}
	s.Shutdown()
}

func TestRegionBounds(t *testing.T) {
	s := sim.New()
	cpu, dev := setup(t, s)
	d, _ := Claim(cpu, dev, DefaultConfig())
	r, _ := d.CreateFile("small", 4096)
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.NewQueue(p)
		buf := make([]byte, 8192)
		if _, err := q.ReadAt(p, r, buf, 0); err == nil {
			t.Error("read beyond region succeeded")
		}
		if _, err := q.ReadAt(p, r, buf[:100], 0); err == nil {
			t.Error("unaligned read succeeded")
		}
	})
	s.Run()
	s.Shutdown()
}

func TestNoIsolationBetweenRegions(t *testing.T) {
	// Documented (anti-)property: with SPDK, "files" are not
	// protected from each other — the driver can read any region.
	s := sim.New()
	cpu, dev := setup(t, s)
	d, _ := Claim(cpu, dev, DefaultConfig())
	a, _ := d.CreateFile("a", 4096)
	b, _ := d.CreateFile("b", 4096)
	s.Spawn("app", func(p *sim.Proc) {
		q, _ := d.NewQueue(p)
		secret := bytes.Repeat([]byte{0x99}, 4096)
		if _, err := q.WriteAt(p, a, secret, 0); err != nil {
			t.Error(err)
			return
		}
		// Read "b"'s region with an offset trick via raw do():
		// region b is adjacent; a whole-device region exposes a.
		all := Region{Sector: 0, Sectors: dev.Sectors()}
		buf := make([]byte, 4096)
		if _, err := q.ReadAt(p, all, buf, a.Sector*512); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf, secret) {
			t.Error("expected to read a's data through raw access (no protection in SPDK)")
		}
		_ = b
	})
	s.Run()
	s.Shutdown()
}
