package kvell

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/sim"
)

const testItems = 4000

func build(t *testing.T) (*core.System, *Store) {
	t.Helper()
	sys, err := core.New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	var st *Store
	sys.Sim.Spawn("build", func(p *sim.Proc) {
		s, err := Build(p, sys, Config{Items: testItems, Path: "/kvell.db"})
		if err != nil {
			t.Error(err)
			return
		}
		st = s
	})
	sys.Sim.Run()
	if st == nil {
		t.Fatal("build failed")
	}
	return sys, st
}

func TestReadsReturnBuiltValues(t *testing.T) {
	sys, st := build(t)
	sys.Sim.Spawn("r", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		w, err := NewAioWorker(p, sys, st, pr, 8)
		if err != nil {
			t.Error(err)
			return
		}
		reqs := []Request{{Key: 0}, {Key: 17}, {Key: testItems - 1}}
		for _, res := range w.Do(p, reqs) {
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
		}
		out := w.Do(p, reqs)
		for i, res := range out {
			if res.Val != ValueOf(reqs[i].Key) {
				t.Errorf("key %d wrong value", reqs[i].Key)
			}
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestWriteThenReadBothModes(t *testing.T) {
	sys, st := build(t)
	sys.Sim.Spawn("w", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		aio, err := NewAioWorker(p, sys, st, pr, 4)
		if err != nil {
			t.Error(err)
			return
		}
		nv := ValueOf(999999)
		res := aio.Do(p, []Request{{Write: true, Key: 42, Val: nv}})
		if res[0].Err != nil {
			t.Error(res[0].Err)
			return
		}
		// Read it back through the BypassD worker.
		pr2 := sys.NewProcess(ext4.Root)
		byp, err := NewBypassWorker(p, sys.Lib(pr2), st)
		if err != nil {
			t.Error(err)
			return
		}
		got := byp.Do(p, []Request{{Key: 42}})
		if got[0].Err != nil || got[0].Val != nv {
			t.Errorf("bypass read after aio write: err=%v match=%v", got[0].Err, got[0].Val == nv)
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestInsertAllocatesFreshSlot(t *testing.T) {
	sys, st := build(t)
	sys.Sim.Spawn("w", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		w, err := NewAioWorker(p, sys, st, pr, 1)
		if err != nil {
			t.Error(err)
			return
		}
		k := uint64(testItems + 7)
		nv := ValueOf(k)
		if res := w.Do(p, []Request{{Write: true, Insert: true, Key: k, Val: nv}}); res[0].Err != nil {
			t.Error(res[0].Err)
			return
		}
		got := w.Do(p, []Request{{Key: k}})
		if got[0].Err != nil || got[0].Val != nv {
			t.Errorf("insert readback failed: %v", got[0].Err)
		}
	})
	sys.Sim.Run()
	if st.nextSlot != testItems+1 {
		t.Fatalf("nextSlot = %d", st.nextSlot)
	}
	sys.Sim.Shutdown()
}

func TestMissingKey(t *testing.T) {
	sys, st := build(t)
	sys.Sim.Spawn("r", func(p *sim.Proc) {
		pr := sys.NewProcess(ext4.Root)
		w, _ := NewAioWorker(p, sys, st, pr, 1)
		res := w.Do(p, []Request{{Key: 1 << 40}})
		if res[0].Err == nil {
			t.Error("missing key returned no error")
		}
	})
	sys.Sim.Run()
	sys.Sim.Shutdown()
}

func TestQueueDepthTradeoff(t *testing.T) {
	// KVell_64 achieves higher throughput than KVell_1 at much
	// higher per-request latency; BypassD restores low latency
	// (Fig. 16).
	type outcome struct {
		thr float64
		lat sim.Time
	}
	const ops = 256
	run := func(mode string) outcome {
		sys, st := build(t)
		var o outcome
		sys.Sim.Spawn("run", func(p *sim.Proc) {
			pr := sys.NewProcess(ext4.Root)
			var w *Worker
			var err error
			switch mode {
			case "kvell1":
				w, err = NewAioWorker(p, sys, st, pr, 1)
			case "kvell64":
				w, err = NewAioWorker(p, sys, st, pr, 64)
			default:
				w, err = NewBypassWorker(p, sys.Lib(pr), st)
			}
			if err != nil {
				t.Error(err)
				return
			}
			reqs := make([]Request, ops)
			for i := range reqs {
				reqs[i] = Request{Key: uint64(i*31) % testItems}
			}
			start := p.Now()
			var total sim.Time
			for _, res := range w.Do(p, reqs) {
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				total += res.Latency
			}
			o.thr = float64(ops) / (p.Now() - start).Seconds()
			o.lat = total / ops
		})
		sys.Sim.Run()
		sys.Sim.Shutdown()
		return o
	}
	k1, k64, byp := run("kvell1"), run("kvell64"), run("bypassd")
	t.Logf("kvell1=%+v kvell64=%+v bypassd=%+v", k1, k64, byp)
	if k64.thr <= k1.thr {
		t.Fatalf("QD64 throughput %.0f <= QD1 %.0f", k64.thr, k1.thr)
	}
	if k64.lat <= 5*k1.lat {
		t.Fatalf("QD64 latency %v not far above QD1 %v", k64.lat, k1.lat)
	}
	if byp.lat >= k64.lat/10 {
		t.Fatalf("bypassd latency %v not order(s) below kvell64 %v", byp.lat, k64.lat)
	}
	if byp.thr <= k1.thr {
		t.Fatalf("bypassd throughput %.0f <= kvell1 %.0f", byp.thr, k1.thr)
	}
}
