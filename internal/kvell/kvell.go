// Package kvell reimplements KVell (Lepers et al., SOSP '19) as used
// in the paper's Fig. 16: a share-nothing-in-spirit persistent KV
// store that keeps a full index in memory, stores items unsorted in
// fixed-size on-disk slots, performs no disk-order maintenance, and
// batches I/O at a configurable queue depth through libaio. High
// queue depths buy throughput at the cost of per-request latency; the
// paper adds a synchronous BypassD mode that restores low latency.
package kvell

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/userlib"
)

// Geometry: 16 B keys + 1 KiB values (paper §6.5), padded to a
// sector multiple so slots are always sector aligned.
const (
	KeySize  = 16
	ValSize  = 1024
	SlotSize = 1536 // 3 sectors: key + value + header, padded
)

// Store is the shared store state: in-memory index over on-disk
// slots in one slab file.
type Store struct {
	Path      string
	Items     uint64
	Capacity  uint64 // total slots in the slab (inserts use the tail)
	FileBytes int64

	index    map[uint64]uint64 // key -> slot
	nextSlot uint64

	// IndexCost is the in-memory index probe cost per operation.
	IndexCost sim.Time
	cpu       *sim.CPUSet
}

// ValueOf is the deterministic build-time payload for key k.
func ValueOf(k uint64) [ValSize]byte {
	var v [ValSize]byte
	binary.LittleEndian.PutUint64(v[:], k^0xabcdef)
	binary.LittleEndian.PutUint64(v[ValSize-8:], k)
	return v
}

func encodeSlot(key uint64, val [ValSize]byte) []byte {
	buf := make([]byte, SlotSize)
	binary.LittleEndian.PutUint64(buf[:], key)
	copy(buf[KeySize:], val[:])
	return buf
}

// Build creates and populates the slab file with items 0..Items-1,
// with headroom for inserts.
func Build(p *sim.Proc, sys *core.System, cfg Config) (*Store, error) {
	return BuildOn(p, sys, 0, cfg)
}

// BuildOn is Build on topology node devIdx, for multi-SSD callers
// that keep one slab per device; node 0 is exactly the historical
// Build.
func BuildOn(p *sim.Proc, sys *core.System, devIdx int, cfg Config) (*Store, error) {
	if cfg.Items == 0 {
		return nil, fmt.Errorf("kvell: empty store")
	}
	capacity := cfg.Items + cfg.Items/2 + 1024 // insert headroom
	st := &Store{
		Path:      cfg.Path,
		Items:     cfg.Items,
		Capacity:  capacity,
		FileBytes: int64(capacity) * SlotSize,
		index:     make(map[uint64]uint64, cfg.Items),
		nextSlot:  cfg.Items,
		IndexCost: 200 * sim.Nanosecond,
		cpu:       sys.M.CPU,
	}
	pr := sys.NewProcessOn(ext4.Root, devIdx)
	fd, err := pr.Create(p, cfg.Path, 0o666)
	if err != nil {
		return nil, err
	}
	if err := pr.Fallocate(p, fd, st.FileBytes); err != nil {
		return nil, err
	}
	// Populate initial items in 1 MiB batches.
	const slotsPerBatch = (1 << 20) / SlotSize
	batch := make([]byte, slotsPerBatch*SlotSize)
	for start := uint64(0); start < cfg.Items; start += slotsPerBatch {
		n := uint64(slotsPerBatch)
		if start+n > cfg.Items {
			n = cfg.Items - start
		}
		for i := uint64(0); i < n; i++ {
			copy(batch[i*SlotSize:], encodeSlot(start+i, ValueOf(start+i)))
		}
		if _, err := pr.Pwrite(p, fd, batch[:n*SlotSize], int64(start)*SlotSize); err != nil {
			return nil, err
		}
	}
	for k := uint64(0); k < cfg.Items; k++ {
		st.index[k] = k
	}
	if err := pr.Fsync(p, fd); err != nil {
		return nil, err
	}
	if err := pr.Close(p, fd); err != nil {
		return nil, err
	}
	return st, nil
}

// Config for building a store.
type Config struct {
	Items uint64
	Path  string
}

// Request is one client operation.
type Request struct {
	Write bool
	Key   uint64
	Val   [ValSize]byte
	// Insert allocates a fresh slot instead of overwriting.
	Insert bool
}

// Result carries a completed request's latency and outcome.
type Result struct {
	Latency sim.Time
	Val     [ValSize]byte
	Found   bool
	Err     error
}

// Worker processes batches against the store. Mode is either batched
// libaio at a queue depth (KVell proper) or synchronous BypassD.
type Worker struct {
	st *Store
	qd int

	// libaio mode
	pr  *kernel.Process
	ctx *kernel.AioContext
	fd  int

	// bypassd mode
	th  *userlib.Thread
	bfd int

	bufs [][]byte
}

// NewAioWorker creates a KVell worker with the given queue depth.
func NewAioWorker(p *sim.Proc, sys *core.System, st *Store, pr *kernel.Process, qd int) (*Worker, error) {
	if qd < 1 {
		return nil, fmt.Errorf("kvell: queue depth %d", qd)
	}
	fd, err := pr.Open(p, st.Path, true)
	if err != nil {
		return nil, err
	}
	w := &Worker{st: st, qd: qd, pr: pr, ctx: pr.NewAioContext(), fd: fd}
	for i := 0; i < qd; i++ {
		w.bufs = append(w.bufs, make([]byte, SlotSize))
	}
	return w, nil
}

// NewBypassWorker creates the synchronous BypassD variant.
func NewBypassWorker(p *sim.Proc, lib *userlib.Lib, st *Store) (*Worker, error) {
	th, err := lib.NewThread(p)
	if err != nil {
		return nil, err
	}
	fd, err := lib.Open(p, st.Path, true)
	if err != nil {
		return nil, err
	}
	return &Worker{st: st, qd: 1, th: th, bfd: fd, bufs: [][]byte{make([]byte, SlotSize)}}, nil
}

// slotFor resolves (or allocates) the slot for a request.
func (w *Worker) slotFor(p *sim.Proc, r *Request) (uint64, bool) {
	w.st.cpu.Compute(p, w.st.IndexCost)
	if r.Insert {
		if w.st.nextSlot >= w.st.Capacity {
			return 0, false
		}
		slot := w.st.nextSlot
		w.st.nextSlot++
		w.st.index[r.Key] = slot
		return slot, true
	}
	slot, ok := w.st.index[r.Key]
	return slot, ok
}

// Do processes a batch of up to the worker's queue depth, returning
// per-request results. Latency is measured from batch start (requests
// wait for their whole batch, the KVell trade-off).
func (w *Worker) Do(p *sim.Proc, reqs []Request) []Result {
	if len(reqs) == 0 {
		return nil
	}
	if w.th != nil {
		return w.doBypass(p, reqs)
	}
	out := make([]Result, len(reqs))
	for start := 0; start < len(reqs); start += w.qd {
		end := start + w.qd
		if end > len(reqs) {
			end = len(reqs)
		}
		w.doAioBatch(p, reqs[start:end], out[start:end])
	}
	return out
}

func (w *Worker) doAioBatch(p *sim.Proc, reqs []Request, out []Result) {
	batchStart := p.Now()
	ops := make([]kernel.AioOp, 0, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		slot, ok := w.slotFor(p, r)
		if !ok {
			out[i] = Result{Err: fmt.Errorf("kvell: key %d not found", r.Key), Latency: 0}
			continue
		}
		buf := w.bufs[i%len(w.bufs)]
		if r.Write {
			copy(buf, encodeSlot(r.Key, r.Val))
		}
		ops = append(ops, kernel.AioOp{
			FD:    w.fd,
			Write: r.Write,
			Off:   int64(slot) * SlotSize,
			Buf:   buf,
			Tag:   i,
		})
	}
	if err := w.ctx.Submit(p, ops); err != nil {
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
		return
	}
	got := 0
	for got < len(ops) {
		for _, ev := range w.ctx.GetEvents(p, 1, len(ops)) {
			i := ev.Tag.(int)
			res := Result{Latency: p.Now() - batchStart, Err: ev.Err, Found: true}
			if !reqs[i].Write && ev.Err == nil {
				copy(res.Val[:], w.bufs[i%len(w.bufs)][KeySize:])
			}
			out[i] = res
			got++
		}
	}
}

func (w *Worker) doBypass(p *sim.Proc, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		start := p.Now()
		slot, ok := w.slotFor(p, r)
		if !ok {
			out[i] = Result{Err: fmt.Errorf("kvell: key %d not found", r.Key)}
			continue
		}
		buf := w.bufs[0]
		var err error
		if r.Write {
			copy(buf, encodeSlot(r.Key, r.Val))
			_, err = w.th.Pwrite(p, w.bfd, buf, int64(slot)*SlotSize)
		} else {
			_, err = w.th.Pread(p, w.bfd, buf, int64(slot)*SlotSize)
		}
		res := Result{Latency: p.Now() - start, Err: err, Found: true}
		if !r.Write && err == nil {
			copy(res.Val[:], buf[KeySize:])
		}
		out[i] = res
	}
	return out
}

// Sector sanity: slots must stay sector aligned.
var _ = [1]struct{}{}[SlotSize%storage.SectorSize]
