package ext4

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func TestRenameSameDir(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/a", 0o644, Root)
	if _, err := fs.WriteAt(nil, in, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/a", "/b", Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(nil, "/a", Root); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still resolves: %v", err)
	}
	got, err := fs.Lookup(nil, "/b", Root)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ino != in.Ino {
		t.Fatalf("inode changed across rename: %d -> %d", in.Ino, got.Ino)
	}
	buf := make([]byte, 7)
	if _, err := fs.ReadAt(nil, got, 0, buf); err != nil || string(buf) != "payload" {
		t.Fatalf("content lost: %q %v", buf, err)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenameAcrossDirsAndReplace(t *testing.T) {
	fs, st := newFS(t)
	if _, err := fs.Mkdir(nil, "/d1", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(nil, "/d2", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	src, _ := fs.Create(nil, "/d1/f", 0o644, Root)
	if _, err := fs.WriteAt(nil, src, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	victim, _ := fs.Create(nil, "/d2/f", 0o644, Root)
	if _, err := fs.WriteAt(nil, victim, 0, bytes.Repeat([]byte{9}, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/d1/f", "/d2/f", Root); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(nil, "/d2/f", Root)
	if err != nil || got.Ino != src.Ino {
		t.Fatalf("replaced rename broken: %v", err)
	}
	if _, err := fs.Lookup(nil, "/d1/f", Root); !errors.Is(err, ErrNotExist) {
		t.Fatal("source entry survived")
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err) // victim's blocks must be accounted (freed)
	}
	// Remount durability.
	fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Lookup(nil, "/d2/f", Root); err != nil {
		t.Fatal(err)
	}
}

func TestRenameOntoItselfAndErrors(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.Create(nil, "/x", 0o644, Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/x", "/x", Root); err != nil {
		t.Fatalf("self-rename: %v", err)
	}
	if err := fs.Rename(nil, "/missing", "/y", Root); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename of missing = %v", err)
	}
	if _, err := fs.Mkdir(nil, "/dir", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/x", "/dir", Root); !errors.Is(err, ErrIsDir) {
		t.Fatalf("rename over dir = %v", err)
	}
	bob := Cred{UID: 9, GID: 9}
	if err := fs.Rename(nil, "/x", "/z", bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("unprivileged rename = %v", err)
	}
}

func TestRelinkMovesBlocksWithoutCopy(t *testing.T) {
	fs, _ := newFS(t)
	dst, _ := fs.Create(nil, "/target", 0o644, Root)
	if _, err := fs.WriteAt(nil, dst, 0, bytes.Repeat([]byte{1}, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	src, _ := fs.Create(nil, "/staging", 0o644, Root)
	staged := bytes.Repeat([]byte{2}, 3*BlockSize)
	if _, err := fs.WriteAt(nil, src, 0, staged); err != nil {
		t.Fatal(err)
	}
	srcBlocks := src.BlockMap()

	writesBefore := fs.bio.(*Direct).St.(*storage.Store).WriteCount
	if err := fs.Relink(nil, src, dst); err != nil {
		t.Fatal(err)
	}
	// Relink is metadata-only: no data sectors rewritten.
	if got := fs.bio.(*Direct).St.(*storage.Store).WriteCount; got != writesBefore {
		t.Fatalf("relink moved data: %d sector writes", got-writesBefore)
	}
	if dst.Size != 5*BlockSize || src.Size != 0 {
		t.Fatalf("sizes after relink: dst=%d src=%d", dst.Size, src.Size)
	}
	// The grafted blocks are the staging file's old blocks.
	m := dst.BlockMap()
	for i, b := range srcBlocks {
		if m[2+i] != b {
			t.Fatalf("block %d not grafted: %d != %d", i, m[2+i], b)
		}
	}
	got := make([]byte, 5*BlockSize)
	if _, err := fs.ReadAt(nil, dst, 0, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*BlockSize; i++ {
		if got[i] != 1 {
			t.Fatalf("target prefix corrupted at %d", i)
		}
	}
	if !bytes.Equal(got[2*BlockSize:], staged) {
		t.Fatal("staged data not visible in target")
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelinkRequiresAlignedTarget(t *testing.T) {
	fs, _ := newFS(t)
	dst, _ := fs.Create(nil, "/t", 0o644, Root)
	if _, err := fs.WriteAt(nil, dst, 0, []byte("odd")); err != nil {
		t.Fatal(err)
	}
	src, _ := fs.Create(nil, "/s", 0o644, Root)
	if _, err := fs.WriteAt(nil, src, 0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Relink(nil, src, dst); err == nil {
		t.Fatal("relink onto unaligned target accepted")
	}
}

func TestRelinkUpdatesFileTables(t *testing.T) {
	fs, _ := newFS(t)
	dst, _ := fs.Create(nil, "/t", 0o644, Root)
	if _, err := fs.WriteAt(nil, dst, 0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	src, _ := fs.Create(nil, "/s", 0o644, Root)
	if _, err := fs.WriteAt(nil, src, 0, make([]byte, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	dft, _ := fs.FileTable(dst)
	sft, _ := fs.FileTable(src)
	if err := fs.Relink(nil, src, dst); err != nil {
		t.Fatal(err)
	}
	if dft.Pages() != 3 {
		t.Fatalf("target file table pages = %d, want 3", dft.Pages())
	}
	if sft.Pages() != 0 {
		t.Fatalf("staging file table pages = %d, want 0", sft.Pages())
	}
	disk, _ := dst.LookupBlock(2)
	if dft.Fragments()[0].Entry(2).LBA() != disk*SectorsPerBlock {
		t.Fatal("target FTE for grafted page wrong")
	}
}

func TestRenameIntoOwnSubtreeRejected(t *testing.T) {
	// Found by FuzzRename: moving a directory under itself orphaned
	// the directory while its blocks stayed allocated (fsck bitmap
	// mismatch).
	fs, _ := newFS(t)
	if _, err := fs.Mkdir(nil, "/d", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(nil, "/d/sub", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	for _, dst := range []string{"/d/x", "/d/sub/x", "/d/./x", "/d/sub/../sub/x"} {
		if err := fs.Rename(nil, "/d", dst, Root); !errors.Is(err, ErrInvalidMove) {
			t.Fatalf("Rename /d -> %s: err = %v, want ErrInvalidMove", dst, err)
		}
	}
	// A sibling directory move stays legal.
	if _, err := fs.Mkdir(nil, "/e", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/d/sub", "/e/sub", Root); err != nil {
		t.Fatalf("legal dir move: %v", err)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatalf("fsck: %v", err)
	}
}
