package ext4

import (
	"fmt"

	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Access checks whether c may open in for reading (and writing when
// write is set), mirroring the kernel's credential check at open().
func (fs *FS) Access(in *Inode, c Cred, write bool) error {
	want := uint16(4)
	if write {
		want |= 2
	}
	if !in.allows(c, want) {
		return ErrPerm
	}
	return nil
}

// ReadAt reads up to len(buf) bytes from byte offset off, returning
// the count read (short at EOF).
func (fs *FS) ReadAt(p *sim.Proc, in *Inode, off int64, buf []byte) (int, error) {
	if in.IsDir() && in.Size == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset")
	}
	if off >= in.Size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > in.Size {
		n = in.Size - off
	}
	var done int64
	for done < n {
		pos := off + done
		fb := pos / BlockSize
		disk, ok := in.LookupBlock(fb)
		if !ok {
			return int(done), fmt.Errorf("%w: unmapped block %d of inode %d", ErrBadFS, fb, in.Ino)
		}
		// Extend the run while file blocks stay disk-contiguous.
		lastNeeded := (pos + (n - done) - 1) / BlockSize
		runBlocks := int64(1)
		for fb+runBlocks <= lastNeeded {
			nxt, ok := in.LookupBlock(fb + runBlocks)
			if !ok || nxt != disk+runBlocks {
				break
			}
			runBlocks++
		}
		inner := pos % BlockSize
		avail := runBlocks*BlockSize - inner
		want := n - done
		if want > avail {
			want = avail
		}
		if inner == 0 && want%BlockSize == 0 {
			if err := fs.bio.ReadBlocks(p, disk, want/BlockSize, buf[done:done+want]); err != nil {
				return int(done), err
			}
		} else {
			tmp := make([]byte, runBlocks*BlockSize)
			if err := fs.bio.ReadBlocks(p, disk, runBlocks, tmp); err != nil {
				return int(done), err
			}
			copy(buf[done:done+want], tmp[inner:])
		}
		done += want
	}
	return int(done), nil
}

// ensureAllocated grows the file's block coverage to blocks,
// zero-filling fresh allocations for confidentiality (paper §5.3)
// unless the caller promises to overwrite them fully.
// It returns the index of the first newly allocated file block.
func (fs *FS) ensureAllocated(p *sim.Proc, in *Inode, blocks int64, zero bool) (int64, error) {
	oldAlloc := in.AllocatedBlocks()
	if blocks <= oldAlloc {
		return oldAlloc, nil
	}
	goal := int64(-1)
	if n := len(in.Extents); n > 0 {
		last := in.Extents[n-1]
		goal = int64(last.Start) + int64(last.Count)
	}
	exts, err := fs.allocBlocks(blocks-oldAlloc, goal)
	if err != nil {
		return oldAlloc, err
	}
	for _, e := range exts {
		if zero {
			if err := fs.bio.ZeroBlocks(p, int64(e.Start), int64(e.Count)); err != nil {
				return oldAlloc, err
			}
		}
		in.appendExtent(int64(e.Start), int64(e.Count))
	}
	// Keep the cached file table in sync so every process that has
	// the file fmap()ed sees the new blocks immediately (shared
	// fragments, paper §4.1).
	if in.ft != nil {
		// Walk the extent list once instead of one LookupBlock binary
		// search per page; extents are sorted by FileBlock.
		for _, e := range in.Extents {
			lo, hi := int64(e.FileBlock), int64(e.FileBlock)+int64(e.Count)
			if hi <= oldAlloc || lo >= blocks {
				continue
			}
			if lo < oldAlloc {
				lo = oldAlloc
			}
			if hi > blocks {
				hi = blocks
			}
			disk := int64(e.Start) + (lo - int64(e.FileBlock))
			in.ft.SetRun(int(lo), disk*SectorsPerBlock, int(hi-lo))
		}
	}
	fs.markDirty(in)
	return oldAlloc, nil
}

// WriteAt writes data at byte offset off, allocating and zeroing
// blocks as needed, and extends the file size.
func (fs *FS) WriteAt(p *sim.Proc, in *Inode, off int64, data []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset")
	}
	if len(data) == 0 {
		return 0, nil
	}
	end := off + int64(len(data))
	needBlocks := (end + BlockSize - 1) / BlockSize
	oldAlloc, err := fs.ensureAllocated(p, in, needBlocks, false)
	if err != nil {
		return 0, err
	}
	// Zero any fully skipped new blocks (sparse write past EOF).
	firstTouched := off / BlockSize
	if oldAlloc < firstTouched {
		for fb := oldAlloc; fb < firstTouched; fb++ {
			disk, _ := in.LookupBlock(fb)
			if err := fs.bio.ZeroBlocks(p, disk, 1); err != nil {
				return 0, err
			}
		}
	}

	var done int64
	n := int64(len(data))
	for done < n {
		pos := off + done
		fb := pos / BlockSize
		disk, ok := in.LookupBlock(fb)
		if !ok {
			return int(done), fmt.Errorf("%w: unmapped block %d", ErrBadFS, fb)
		}
		lastNeeded := (pos + (n - done) - 1) / BlockSize
		runBlocks := int64(1)
		for fb+runBlocks <= lastNeeded {
			nxt, ok := in.LookupBlock(fb + runBlocks)
			if !ok || nxt != disk+runBlocks {
				break
			}
			runBlocks++
		}
		inner := pos % BlockSize
		avail := runBlocks*BlockSize - inner
		want := n - done
		if want > avail {
			want = avail
		}
		if inner == 0 && want%BlockSize == 0 {
			if err := fs.bio.WriteBlocks(p, disk, want/BlockSize, data[done:done+want]); err != nil {
				return int(done), err
			}
		} else {
			// Read-modify-write: only the partial boundary blocks
			// need their old contents, and only if they predate this
			// call (fresh blocks read as zero, which tmp already is).
			tmp := make([]byte, runBlocks*BlockSize)
			end := inner + want
			headIdx, tailIdx := int64(0), (end-1)/BlockSize
			readBoundary := func(idx int64) error {
				if fb+idx >= oldAlloc {
					return nil
				}
				return fs.bio.ReadBlocks(p, disk+idx, 1, tmp[idx*BlockSize:(idx+1)*BlockSize])
			}
			if inner != 0 {
				if err := readBoundary(headIdx); err != nil {
					return int(done), err
				}
			}
			if end%BlockSize != 0 && (tailIdx != headIdx || inner == 0) {
				if err := readBoundary(tailIdx); err != nil {
					return int(done), err
				}
			}
			copy(tmp[inner:], data[done:done+want])
			if err := fs.bio.WriteBlocks(p, disk, runBlocks, tmp); err != nil {
				return int(done), err
			}
		}
		done += want
	}
	if end > in.Size {
		in.Size = end
		fs.markDirty(in)
	}
	in.Mtime = fs.now()
	return int(done), nil
}

// Fallocate extends the file to size bytes, allocating zeroed blocks
// — the §5.1 optimized-append primitive.
func (fs *FS) Fallocate(p *sim.Proc, in *Inode, size int64) error {
	if size <= in.Size {
		return nil
	}
	blocks := (size + BlockSize - 1) / BlockSize
	if _, err := fs.ensureAllocated(p, in, blocks, true); err != nil {
		return err
	}
	in.Size = size
	in.Mtime = fs.now()
	fs.markDirty(in)
	return nil
}

// Truncate sets the file size, freeing blocks on shrink (deferred, so
// in-flight direct I/O cannot race with reallocation) and allocating
// zeroed blocks on growth.
func (fs *FS) Truncate(p *sim.Proc, in *Inode, size int64) error {
	if size < 0 {
		return fmt.Errorf("ext4: negative size")
	}
	switch {
	case size > in.Size:
		return fs.Fallocate(p, in, size)
	case size == in.Size:
		return nil
	}
	keepBlocks := (size + BlockSize - 1) / BlockSize
	freed := in.truncateExtents(keepBlocks)
	fs.deferFree(freed)
	if in.ft != nil {
		in.ft.Truncate(int(keepBlocks))
	}
	// Zero the tail of the final partial block so a later regrow
	// cannot expose stale bytes.
	if size%BlockSize != 0 {
		if disk, ok := in.LookupBlock(size / BlockSize); ok {
			tmp := make([]byte, BlockSize)
			if err := fs.bio.ReadBlocks(p, disk, 1, tmp); err != nil {
				return err
			}
			for i := size % BlockSize; i < BlockSize; i++ {
				tmp[i] = 0
			}
			if err := fs.bio.WriteBlocks(p, disk, 1, tmp); err != nil {
				return err
			}
		}
	}
	in.Size = size
	in.Mtime = fs.now()
	fs.markDirty(in)
	return nil
}

// Fsync makes the file durable: device flush, then metadata commit.
// This is the sync point at which deferred block frees become
// reusable (paper §3.6).
func (fs *FS) Fsync(p *sim.Proc, in *Inode) error {
	if err := fs.bio.Flush(p); err != nil {
		return err
	}
	return fs.Commit(p)
}

// Sync makes all outstanding data and metadata durable, like
// sync(2): device flush followed by a journal commit.
func (fs *FS) Sync(p *sim.Proc) error {
	if err := fs.bio.Flush(p); err != nil {
		return err
	}
	return fs.Commit(p)
}

// Unmount commits outstanding metadata.
func (fs *FS) Unmount(p *sim.Proc) error { return fs.Sync(p) }

// FileTable returns the inode's cached shared file table, building it
// from the extent map on first use. The second result reports whether
// this call built it (a cold fmap); the kernel charges the per-PTE
// construction cost in that case (Table 5).
func (fs *FS) FileTable(in *Inode) (ft *pagetable.FileTable, built bool) {
	if in.ft != nil {
		return in.ft, false
	}
	in.ft = pagetable.NewFileTable(fs.devID)
	for _, e := range in.Extents {
		in.ft.SetRun(int(e.FileBlock), int64(e.Start)*SectorsPerBlock, int(e.Count))
	}
	return in.ft, true
}

// HasFileTable reports whether the inode's file table is cached
// (warm) without building it.
func (in *Inode) HasFileTable() bool { return in.ft != nil }

// DropFileTable evicts the cached file table (tests/experiments).
func (in *Inode) DropFileTable() { in.ft = nil }
