package ext4

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Directories store a flat sequence of entries in their file data:
// ino(u32) nameLen(u16) name. Directory updates rewrite the entry
// list; directories are small compared to the data files the paper's
// workloads use.

// DirEntry is one directory entry.
type DirEntry struct {
	Ino  uint32
	Name string
}

// Cred identifies the caller for permission checks.
type Cred struct {
	UID uint16
	GID uint16
}

// Root is the superuser credential.
var Root = Cred{UID: 0, GID: 0}

// allows reports whether c may access in with the requested rwx bits
// (4=read, 2=write, 1=exec).
func (in *Inode) allows(c Cred, want uint16) bool {
	if c.UID == 0 {
		return true
	}
	perm := in.Perm()
	var bits uint16
	switch {
	case c.UID == in.UID:
		bits = perm >> 6
	case c.GID == in.GID:
		bits = perm >> 3
	default:
		bits = perm
	}
	return bits&want == want
}

// ReadDir returns the entries of directory in. Entries are cached in
// memory (the dcache) once read; the caller receives a fresh copy.
func (fs *FS) ReadDir(p *sim.Proc, in *Inode) ([]DirEntry, error) {
	if !in.IsDir() {
		return nil, ErrNotDir
	}
	if cached, ok := fs.dirCache[in.Ino]; ok {
		return append([]DirEntry(nil), cached...), nil
	}
	data := make([]byte, in.Size)
	if _, err := fs.ReadAt(p, in, 0, data); err != nil {
		return nil, err
	}
	var out []DirEntry
	le := binary.LittleEndian
	for off := 0; off+6 <= len(data); {
		ino := le.Uint32(data[off:])
		nl := int(le.Uint16(data[off+4:]))
		off += 6
		if off+nl > len(data) {
			return nil, fmt.Errorf("%w: torn directory entry", ErrBadFS)
		}
		out = append(out, DirEntry{Ino: ino, Name: string(data[off : off+nl])})
		off += nl
	}
	fs.dirCache[in.Ino] = out
	return append([]DirEntry(nil), out...), nil
}

// writeDir replaces directory in's entry list.
func (fs *FS) writeDir(p *sim.Proc, in *Inode, entries []DirEntry) error {
	var buf []byte
	var scratch [6]byte
	le := binary.LittleEndian
	for _, e := range entries {
		le.PutUint32(scratch[0:], e.Ino)
		le.PutUint16(scratch[4:], uint16(len(e.Name)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, e.Name...)
	}
	if int64(len(buf)) < in.Size {
		if err := fs.Truncate(p, in, int64(len(buf))); err != nil {
			return err
		}
	}
	if len(buf) > 0 {
		if _, err := fs.WriteAt(p, in, 0, buf); err != nil {
			return err
		}
	}
	fs.dirCache[in.Ino] = append([]DirEntry(nil), entries...)
	return nil
}

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("ext4: path %q not absolute", path)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			if len(c) > MaxNameLen {
				return nil, ErrNameTooBig
			}
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// namei resolves path to an inode, enforcing execute permission on
// every traversed directory.
func (fs *FS) namei(p *sim.Proc, path string, c Cred) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	in, err := fs.GetInode(p, RootIno)
	if err != nil {
		return nil, err
	}
	for _, name := range comps {
		if !in.IsDir() {
			return nil, ErrNotDir
		}
		if !in.allows(c, 1) {
			return nil, ErrPerm
		}
		entries, err := fs.ReadDir(p, in)
		if err != nil {
			return nil, err
		}
		var next uint32
		for _, e := range entries {
			if e.Name == name {
				next = e.Ino
				break
			}
		}
		if next == 0 {
			return nil, ErrNotExist
		}
		if in, err = fs.GetInode(p, next); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// nameiParent resolves the parent directory of path and returns it
// with the final component.
func (fs *FS) nameiParent(p *sim.Proc, path string, c Cred) (*Inode, string, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", fmt.Errorf("ext4: cannot operate on /")
	}
	parentPath := "/" + strings.Join(comps[:len(comps)-1], "/")
	parent, err := fs.namei(p, parentPath, c)
	if err != nil {
		return nil, "", err
	}
	if !parent.IsDir() {
		return nil, "", ErrNotDir
	}
	return parent, comps[len(comps)-1], nil
}

// create makes a new inode linked at path.
func (fs *FS) create(p *sim.Proc, path string, mode uint16, c Cred) (*Inode, error) {
	parent, name, err := fs.nameiParent(p, path, c)
	if err != nil {
		return nil, err
	}
	if !parent.allows(c, 3) { // write + exec on parent
		return nil, ErrPerm
	}
	entries, err := fs.ReadDir(p, parent)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.Name == name {
			return nil, ErrExist
		}
	}
	ino, err := fs.allocInode()
	if err != nil {
		return nil, err
	}
	now := fs.now()
	in := &Inode{
		Ino:   ino,
		Mode:  mode,
		UID:   c.UID,
		GID:   c.GID,
		Links: 1,
		Atime: now,
		Mtime: now,
		Ctime: now,
	}
	if in.IsDir() {
		in.Links = 2
	}
	in.Dev = fs.devID
	fs.inodes[ino] = in
	fs.markDirty(in)

	entries = append(entries, DirEntry{Ino: ino, Name: name})
	if err := fs.writeDir(p, parent, entries); err != nil {
		return nil, err
	}
	parent.Mtime = now
	fs.markDirty(parent)
	return in, nil
}

// Create makes a regular file.
func (fs *FS) Create(p *sim.Proc, path string, perm uint16, c Cred) (*Inode, error) {
	return fs.create(p, path, ModeFile|(perm&PermMask), c)
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(p *sim.Proc, path string, perm uint16, c Cred) (*Inode, error) {
	return fs.create(p, path, ModeDir|(perm&PermMask), c)
}

// Lookup resolves a path without opening it.
func (fs *FS) Lookup(p *sim.Proc, path string, c Cred) (*Inode, error) {
	return fs.namei(p, path, c)
}

// Unlink removes the link at path. The inode's blocks are deferred-
// freed when the last link drops (open-file lifetime is the kernel's
// concern; the simulation's workloads close before unlinking).
func (fs *FS) Unlink(p *sim.Proc, path string, c Cred) error {
	parent, name, err := fs.nameiParent(p, path, c)
	if err != nil {
		return err
	}
	if !parent.allows(c, 3) {
		return ErrPerm
	}
	entries, err := fs.ReadDir(p, parent)
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range entries {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrNotExist
	}
	in, err := fs.GetInode(p, entries[idx].Ino)
	if err != nil {
		return err
	}
	if in.IsDir() {
		sub, err := fs.ReadDir(p, in)
		if err != nil {
			return err
		}
		if len(sub) > 0 {
			return ErrNotEmpty
		}
	}
	entries = append(entries[:idx], entries[idx+1:]...)
	if err := fs.writeDir(p, parent, entries); err != nil {
		return err
	}
	parent.Mtime = fs.now()
	fs.markDirty(parent)

	in.Links--
	if in.IsDir() || in.Links == 0 {
		fs.deferFree(in.truncateExtents(0))
		if in.ft != nil {
			in.ft.Truncate(0)
		}
		fs.freeInode(in)
	} else {
		fs.markDirty(in)
	}
	return nil
}
